# The canonical check: what CI runs, and what a change must pass before
# merging. `make check` == the full lint gate (gofmt + vet + tixlint) +
# build + race-enabled tests + a cancellation/fault stress pass + the
# replicated-serving chaos drills + a coverage floor on the sharded
# execution layer + a short fuzz smoke over the snapshot loader + a
# five-second open-loop load smoke with the result cache enabled + the
# hot-path bench gate against the committed BENCH_10.json baseline.

GO ?= go

.PHONY: check lint lint-changed tixlint vet build test race bench bench-json bench-hotpath bench-gate fmt-check stress chaos cover fuzz-smoke loadsmoke

check: lint build race stress chaos cover fuzz-smoke loadsmoke bench-gate

# The static-analysis gate: formatting, go vet, and the project's own
# analyzers (see cmd/tixlint and DESIGN.md §9 + §14). tixlint compares
# per-analyzer finding counts against the committed ratchet baseline
# (all zeros), so any new finding — at any severity — fails the gate;
# re-baseline deliberately with `go run ./cmd/tixlint -ratchet
# .tixlint-ratchet.json -ratchet-write ./...`.
lint: fmt-check vet tixlint

tixlint:
	$(GO) run ./cmd/tixlint -ratchet .tixlint-ratchet.json ./...

# Fast pre-merge scope: the whole-program analysis still runs (the
# flow-aware analyzers need every package), but only findings in files
# changed since BASE_REF (plus untracked files) are reported.
BASE_REF ?= origin/main
lint-changed:
	$(GO) run ./cmd/tixlint -changed $(BASE_REF) ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Re-run the cancellation, resource-limit and fault-injection suites a few
# times under the race detector: these tests coordinate goroutines through
# the shared Guard (and the shard fan-out shares one Guard across worker
# goroutines), so repetition shakes out scheduling-dependent bugs. The
# shard differential-equivalence suite runs here too — its results must be
# schedule-independent by construction.
stress:
	$(GO) test -race -count=3 -run 'Cancel|Deadline|Limit|Fault|Guard|Shard' \
		./internal/exec ./internal/db ./internal/server ./internal/shard

# The replicated-serving chaos drills (DESIGN.md §12): a 3-replica fleet
# with one replica killed or delayed mid-traffic must show zero
# client-visible errors, the full breaker lifecycle in metrics, and
# bounded tail latency; ingestion races injected faults and client
# disconnects without leaving partial index state. Always under -race —
# the fleet's hedging and loser-draining are racy by construction.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestIngest' \
		./internal/fleet ./internal/server

# Coverage floor for the sharded execution layer: the differential +
# persistence + stress suites must keep internal/shard above 70%.
cover:
	@$(GO) test -cover ./internal/shard | awk '{ \
		for (i = 1; i <= NF; i++) if ($$i ~ /^[0-9.]+%$$/) pct = substr($$i, 1, length($$i)-1); \
		print; \
		if (pct + 0 < 70) { print "coverage below 70% floor for internal/shard"; exit 1 } }'

# Ten seconds of coverage-guided fuzzing each over db.Load (corrupted
# snapshots), postings.FuzzBlockDecode (corrupted block payloads and skip
# tables), and postings.FuzzMemtableMerge (merged memtable/segment views
# vs. the flat oracle): enough to catch regressions in the
# corrupted-input and merge-cursor handling without slowing CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzLoad -fuzztime=10s ./internal/db
	$(GO) test -run '^$$' -fuzz=FuzzBlockDecode -fuzztime=10s ./internal/postings
	$(GO) test -run '^$$' -fuzz=FuzzBatchDecode -fuzztime=10s ./internal/postings
	$(GO) test -run '^$$' -fuzz=FuzzMemtableMerge -fuzztime=10s ./internal/postings
	$(GO) test -run '^$$' -fuzz=FuzzCacheKey -fuzztime=10s ./internal/rescache

# A five-second open-loop load smoke with the result cache on and ingest
# churn in the mix: fails on any request error, and the JSON report
# (tixload.json) is the artifact CI uploads for trend diffing.
loadsmoke:
	$(GO) run ./cmd/tixload -docs 60 -qps 400 -duration 5s \
		-cache-bytes 4194304 -ingest-every 100 -json tixload.json
	@echo "wrote tixload.json"

# Quick perf snapshot in the machine-readable format (see README).
bench:
	$(GO) run ./cmd/tixbench -small -table 1 -runs 1 -json

# The perf-trajectory artifact: every table (including the index
# memory/decode accounting and the ingest experiment) on the small
# corpus, as JSON. CI uploads the file so successive PRs can be diffed.
# The shards experiment's extra planted pair is scaled to what 150
# articles can absorb (the default 150,000 only fits the full corpus).
# Override BENCH_OUT to write a different trajectory file.
BENCH_OUT ?= BENCH_10.json
bench-json:
	$(GO) run ./cmd/tixbench -small -articles 150 -runs 1 -shard-freq 2000 -json > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# Regenerate the hot-path baseline: both rig tiers (the 20k-doc gate tier
# and the million-document tier), with ns/op + allocs/op + bytes/op per
# method, as the committed BENCH_10.json the gate compares against. The
# 1M tier takes a few minutes; run after intentional perf changes.
bench-hotpath:
	$(GO) run ./cmd/tixbench -table hotpath -json > BENCH_10.json
	@echo "wrote BENCH_10.json"

# The perf regression gate (wired into `make check`): re-measure the
# cheap gate tier and compare against the committed baseline, normalized
# by the in-file calibration loop; fails on >10% normalized-time or
# allocs/op regression.
bench-gate:
	$(GO) run ./cmd/tixbench -gate BENCH_10.json

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

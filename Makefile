# The canonical check: what CI runs, and what a change must pass before
# merging. `make check` == vet + build + race-enabled tests.

GO ?= go

.PHONY: check vet build test race bench fmt-check

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick perf snapshot in the machine-readable format (see README).
bench:
	$(GO) run ./cmd/tixbench -small -table 1 -runs 1 -json

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The canonical check: what CI runs, and what a change must pass before
# merging. `make check` == vet + build + race-enabled tests + a
# cancellation/fault stress pass + a short fuzz smoke over the snapshot
# loader.

GO ?= go

.PHONY: check vet build test race bench fmt-check stress fuzz-smoke

check: vet build race stress fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Re-run the cancellation, resource-limit and fault-injection suites a few
# times under the race detector: these tests coordinate goroutines through
# the shared Guard, so repetition shakes out scheduling-dependent bugs.
stress:
	$(GO) test -race -count=3 -run 'Cancel|Deadline|Limit|Fault|Guard' \
		./internal/exec ./internal/db ./internal/server

# Ten seconds of coverage-guided fuzzing over db.Load: enough to catch
# regressions in the loader's corrupted-input handling without slowing CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzLoad -fuzztime=10s ./internal/db

# Quick perf snapshot in the machine-readable format (see README).
bench:
	$(GO) run ./cmd/tixbench -small -table 1 -runs 1 -json

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

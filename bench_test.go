// Package repro's benchmark suite regenerates every table and figure of
// the paper's evaluation (Sec. 6) as testing.B benchmarks, one family per
// table:
//
//	BenchmarkTable1  — Table 1: 2-term queries, freq sweep, simple scoring
//	BenchmarkTable2  — Table 2: same sweep, complex scoring (+ Enhanced)
//	BenchmarkTable3  — Table 3: term1 fixed at 1,000, term2 swept
//	BenchmarkTable4  — Table 4: 2..n terms at freq ≈ 1,500
//	BenchmarkTable5  — Table 5: 13 phrases, PhraseFinder vs Comp3
//	BenchmarkPick    — Sec. 6 Pick experiment, 200 → 55,000 input nodes
//
// plus the ablation benchmarks called out in DESIGN.md §5. The benchmarks
// run over the reduced SmallConfig corpus so `go test -bench=.` stays
// quick; cmd/tixbench runs the full-scale sweeps and prints the paper's
// row/column layout.
package repro

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/storage"
)

var (
	corpusOnce sync.Once
	corpus     *bench.Corpus
	corpusErr  error
)

func benchCorpus(b *testing.B) *bench.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		corpus, corpusErr = bench.Build(bench.SmallConfig())
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	return corpus
}

func runTermMethod(b *testing.B, c *bench.Corpus, method bench.Method, terms []string, complex bool) {
	b.Helper()
	mode := exec.ChildCountNavigate
	if method == bench.MEnhancedTermJoin {
		mode = exec.ChildCountIndexed
	}
	q := exec.TermQuery{Terms: terms, Complex: complex, Scorer: exec.DefaultScorer{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := storage.NewAccessor(c.Index.Store())
		var run func(exec.Emit) error
		switch method {
		case bench.MComp1:
			run = (&exec.Comp1{Index: c.Index, Acc: acc, Query: q}).Run
		case bench.MComp2:
			run = (&exec.Comp2{Index: c.Index, Acc: acc, Query: q}).Run
		case bench.MGenMeet:
			run = (&exec.GenMeet{Index: c.Index, Acc: acc, Query: q}).Run
		default:
			run = (&exec.TermJoin{Index: c.Index, Acc: acc, Query: q, ChildCounts: mode}).Run
		}
		n := 0
		if err := run(func(exec.ScoredNode) { n++ }); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no results")
		}
	}
}

func termMethods(complex bool) []bench.Method {
	ms := []bench.Method{bench.MComp1, bench.MComp2, bench.MGenMeet, bench.MTermJoin}
	if complex {
		ms = append(ms, bench.MEnhancedTermJoin)
	}
	return ms
}

func benchTable12(b *testing.B, complex bool) {
	c := benchCorpus(b)
	for _, f := range bench.SmallConfig().Table1Freqs {
		t1, t2, err := c.PairTerms(f)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range termMethods(complex) {
			b.Run(string(m)+"/freq="+itoa(f), func(b *testing.B) {
				runTermMethod(b, c, m, []string{t1, t2}, complex)
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (simple scoring).
func BenchmarkTable1(b *testing.B) { benchTable12(b, false) }

// BenchmarkTable2 regenerates Table 2 (complex scoring + Enhanced).
func BenchmarkTable2(b *testing.B) { benchTable12(b, true) }

// BenchmarkTable3 regenerates Table 3: term1 fixed at frequency 1,000.
func BenchmarkTable3(b *testing.B) {
	c := benchCorpus(b)
	fixed, _, err := c.PairTerms(1000)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range bench.SmallConfig().Table3Term2Freqs {
		_, t2, err := c.PairTerms(f)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range termMethods(true) {
			b.Run(string(m)+"/term2freq="+itoa(f), func(b *testing.B) {
				runTermMethod(b, c, m, []string{fixed, t2}, true)
			})
		}
	}
}

// BenchmarkTable4 regenerates Table 4: query size sweep at freq ≈ 1,500.
func BenchmarkTable4(b *testing.B) {
	c := benchCorpus(b)
	for n := 2; n <= bench.SmallConfig().Table4Terms; n++ {
		terms, err := c.Table4Terms(n)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range termMethods(true) {
			b.Run(string(m)+"/terms="+itoa(n), func(b *testing.B) {
				runTermMethod(b, c, m, terms, true)
			})
		}
	}
}

// BenchmarkTable5 regenerates Table 5: PhraseFinder vs Comp3 per phrase.
func BenchmarkTable5(b *testing.B) {
	c := benchCorpus(b)
	for _, row := range bench.Table5Rows {
		t1, t2, _, _, err := c.Table5Phrase(row)
		if err != nil {
			b.Fatal(err)
		}
		phrase := []string{t1, t2}
		b.Run("PhraseFinder/query="+itoa(row.Query), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pf := &exec.PhraseFinder{Index: c.Index, Phrase: phrase}
				n := 0
				if err := pf.Run(func(exec.PhraseMatch) { n++ }); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Comp3/query="+itoa(row.Query), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c3 := &exec.Comp3{Index: c.Index, Acc: storage.NewAccessor(c.Index.Store()), Phrase: phrase}
				n := 0
				if err := c3.Run(func(exec.PhraseMatch) { n++ }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPick regenerates the Pick experiment: parent/child redundancy
// elimination over growing inputs (200 → 55,000 nodes in the paper).
func BenchmarkPick(b *testing.B) {
	for _, size := range bench.PickSizes {
		input := bench.PickInput(size, 7)
		b.Run("size="+itoa(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exec.StackPick(input, exec.DefaultPickFuncs(0.8))
			}
		})
	}
}

// BenchmarkAblationAncestorWalk measures the stack discipline of TermJoin
// (each element pushed once) against re-deriving the full ancestor chain
// per occurrence (DESIGN.md §5).
func BenchmarkAblationAncestorWalk(b *testing.B) {
	c := benchCorpus(b)
	t1, t2, err := c.PairTerms(1000)
	if err != nil {
		b.Fatal(err)
	}
	q := exec.TermQuery{Terms: []string{t1, t2}, Scorer: exec.DefaultScorer{}}
	for _, mode := range []struct {
		name string
		full bool
	}{{"StackDiscipline", false}, {"FullWalkPerOccurrence", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tj := &exec.TermJoin{
					Index:            c.Index,
					Acc:              storage.NewAccessor(c.Index.Store()),
					Query:            q,
					FullAncestorWalk: mode.full,
				}
				if err := tj.Run(func(exec.ScoredNode) {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationChildCount measures the child-count index of Enhanced
// TermJoin against store navigation under complex scoring (DESIGN.md §5).
func BenchmarkAblationChildCount(b *testing.B) {
	c := benchCorpus(b)
	t1, t2, err := c.PairTerms(1000)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		cc   exec.ChildCountMode
	}{{"Navigate", exec.ChildCountNavigate}, {"Indexed", exec.ChildCountIndexed}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tj := &exec.TermJoin{
					Index:       c.Index,
					Acc:         storage.NewAccessor(c.Index.Store()),
					Query:       exec.TermQuery{Terms: []string{t1, t2}, Complex: true, Scorer: exec.DefaultScorer{}},
					ChildCounts: mode.cc,
				}
				if err := tj.Run(func(exec.ScoredNode) {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHistogram measures the histogram-assisted relevance
// threshold of Sec. 5.3 against an exact sort-based quantile.
func BenchmarkAblationHistogram(b *testing.B) {
	c := benchCorpus(b)
	t1, t2, err := c.PairTerms(1000)
	if err != nil {
		b.Fatal(err)
	}
	tj := &exec.TermJoin{
		Index: c.Index,
		Acc:   storage.NewAccessor(c.Index.Store()),
		Query: exec.TermQuery{Terms: []string{t1, t2}, Scorer: exec.DefaultScorer{}},
	}
	scored, err := exec.Collect(tj.Run)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := exec.NewScoreHistogram(scored, 64)
			_ = h.ThresholdForTopFraction(0.05)
		}
	})
	b.Run("ExactSort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tk := exec.NewTopK(len(scored)/20 + 1)
			for _, n := range scored {
				tk.Offer(n)
			}
			res := tk.Results()
			_ = res[len(res)-1].Score
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Command tixbench regenerates the experimental evaluation of the paper
// (Sec. 6): Tables 1–5 and the Pick timing experiment, over the synthetic
// INEX-like corpus with control terms planted at the frequencies each
// table sweeps.
//
// Usage:
//
//	tixbench [-table all|1|2|3|4|5|pick] [-articles N] [-seed S] [-runs R] [-json]
//
// With -json, the selected tables are emitted to stdout as one JSON array
// of table objects (id, caption, columns, rows with per-cell seconds,
// result counts, and store access stats) — the machine-readable record a
// perf trajectory is diffed against.
//
// Absolute seconds are machine-dependent; the shapes to compare against
// the paper are the orderings and ratios (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		table    = flag.String("table", "all", "which experiment: all, 1, 2, 3, 4, 5, pick")
		articles = flag.Int("articles", 5000, "synthetic corpus size in articles (~90 elements each)")
		seed     = flag.Int64("seed", 42, "corpus generation seed")
		runs     = flag.Int("runs", 3, "timed runs per cell (trimmed mean)")
		small    = flag.Bool("small", false, "use the reduced test-scale configuration")
		csv      = flag.Bool("csv", false, "emit CSV instead of the aligned table layout")
		jsonF    = flag.Bool("json", false, "emit machine-readable JSON instead of the aligned table layout")
		access   = flag.Bool("access", false, "also print per-cell store node-read counts")
	)
	flag.Parse()
	csvOut = *csv
	jsonOut = *jsonF
	accessOut = *access
	if err := run(*table, *articles, *seed, *runs, *small); err != nil {
		fmt.Fprintln(os.Stderr, "tixbench:", err)
		os.Exit(1)
	}
}

func run(table string, articles int, seed int64, runs int, small bool) error {
	bench.Runs = runs

	cfg := bench.DefaultConfig()
	if small {
		cfg = bench.SmallConfig()
	}
	cfg.Articles = articles
	cfg.Seed = seed
	if table == "pick" {
		// The Pick experiment needs no corpus.
		return writeTables(nil, []string{"pick"}, seed)
	}

	fmt.Fprintf(os.Stderr, "building corpus (%d articles, seed %d)...\n", cfg.Articles, cfg.Seed)
	c, err := bench.Build(cfg)
	if err != nil {
		return err
	}
	st := c.Index
	fmt.Fprintf(os.Stderr, "corpus ready: %d nodes, %d terms, %d occurrences\n",
		st.Store().NumNodes(), st.NumTerms(), st.TotalOccurrences())

	var which []string
	if table == "all" {
		which = []string{"1", "2", "3", "4", "5", "pick", "ablation"}
	} else {
		which = strings.Split(table, ",")
	}
	return writeTables(c, which, seed)
}

func writeTables(c *bench.Corpus, which []string, seed int64) error {
	var jsonTables []*bench.Table
	for _, w := range which {
		var t *bench.Table
		var err error
		switch strings.TrimSpace(w) {
		case "1":
			t, err = c.Table1()
		case "2":
			t, err = c.Table2()
		case "3":
			t, err = c.Table3()
		case "4":
			t, err = c.Table4()
		case "5":
			t, err = c.Table5()
		case "pick":
			t, err = bench.PickTable(seed, nil)
		case "ablation":
			t, err = c.Ablations()
		default:
			return fmt.Errorf("unknown table %q", w)
		}
		if err != nil {
			return err
		}
		if jsonOut {
			jsonTables = append(jsonTables, t)
			continue
		}
		if csvOut {
			fmt.Printf("# %s: %s\n", t.ID, t.Caption)
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
			continue
		}
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
		if accessOut {
			if err := t.WriteAccess(os.Stdout); err != nil {
				return err
			}
		}
		printShape(t)
	}
	if jsonOut {
		return bench.WriteAllJSON(os.Stdout, jsonTables)
	}
	return nil
}

// Rendering modes (set from flags).
var (
	csvOut    bool
	jsonOut   bool
	accessOut bool
)

// printShape summarizes the qualitative comparisons the paper draws from
// each table.
func printShape(t *bench.Table) {
	switch t.ID {
	case "table1", "table2", "table3", "table4":
		last := t.Rows[len(t.Rows)-1]
		if r, ok := last.Ratio(bench.MComp1, bench.MTermJoin); ok {
			fmt.Printf("   shape: Comp1/TermJoin at max x = %.1fx\n", r)
		}
		if r, ok := last.Ratio(bench.MComp2, bench.MTermJoin); ok {
			fmt.Printf("   shape: Comp2/TermJoin at max x = %.1fx\n", r)
		}
		if r, ok := last.Ratio(bench.MGenMeet, bench.MTermJoin); ok {
			fmt.Printf("   shape: GenMeet/TermJoin at max x = %.1fx\n", r)
		}
		if r, ok := last.Ratio(bench.MTermJoin, bench.MEnhancedTermJoin); ok {
			fmt.Printf("   shape: TermJoin/Enhanced at max x = %.1fx\n", r)
		}
	case "table5":
		worst, best := 0.0, 1e18
		for _, row := range t.Rows {
			if r, ok := row.Ratio(bench.MComp3, bench.MPhraseFinder); ok {
				if r > worst {
					worst = r
				}
				if r < best {
					best = r
				}
			}
		}
		fmt.Printf("   shape: Comp3/PhraseFinder ratio range = %.1fx .. %.1fx\n", best, worst)
	}
	fmt.Println()
}

// Command tixbench regenerates the experimental evaluation of the paper
// (Sec. 6): Tables 1–5 and the Pick timing experiment, over the synthetic
// INEX-like corpus with control terms planted at the frequencies each
// table sweeps.
//
// Usage:
//
//	tixbench [-table all|1|2|3|4|5|pick|shards|index|ingest] [-articles N] [-seed S] [-runs R] [-json]
//	tixbench -table shards -shards 1,2,4,8 -json
//
// The "index" table reports the block-compressed index itself: the
// postings-memory accounting (encoded vs raw bytes and the compression
// ratio), corpus build time, and full-vocabulary decode throughput.
//
// The "ingest" table measures the live-mutation path: per-document add
// throughput into an empty database, the same run under a concurrent
// search loop, and the cost of compacting the resulting memtable/segment
// stack back to one flat index. Each row self-checks against a
// bulk-loaded oracle.
//
// The "shards" experiment splits the corpus into parts, loads them into
// sharded databases at each requested shard count, and times the parallel
// TermJoin fan-out (scored merge included) — including a planted
// high-frequency pair (-shard-freq) beyond the Table 1 sweep. On a
// single-core host expect parity rather than speedup.
//
// With -json, the selected tables are emitted to stdout as one JSON array
// of table objects (id, caption, columns, rows with per-cell seconds,
// result counts, and store access stats) — the machine-readable record a
// perf trajectory is diffed against.
//
// Absolute seconds are machine-dependent; the shapes to compare against
// the paper are the orderings and ratios (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		table    = flag.String("table", "all", "which experiment: all, 1, 2, 3, 4, 5, pick, shards, index, ingest, hotpath (or hotpath-<tier>)")
		gateFile = flag.String("gate", "", "bench-gate mode: re-run the gate hotpath tier and compare against this baseline JSON; exits nonzero on >10% regression")
		articles = flag.Int("articles", 5000, "synthetic corpus size in articles (~90 elements each)")
		seed     = flag.Int64("seed", 42, "corpus generation seed")
		runs     = flag.Int("runs", 3, "timed runs per cell (trimmed mean)")
		small    = flag.Bool("small", false, "use the reduced test-scale configuration")
		csv      = flag.Bool("csv", false, "emit CSV instead of the aligned table layout")
		jsonF    = flag.Bool("json", false, "emit machine-readable JSON instead of the aligned table layout")
		access   = flag.Bool("access", false, "also print per-cell store node-read counts")
		shards   = flag.String("shards", "", "comma-separated shard counts for the shards experiment (default 1,2,4,8)")
		shardFq  = flag.Int("shard-freq", 150000, "frequency of the extra planted pair for the shards experiment (0 = none)")
	)
	flag.Parse()
	csvOut = *csv
	jsonOut = *jsonF
	accessOut = *access
	counts, err := parseCounts(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tixbench:", err)
		os.Exit(1)
	}
	shardCounts = counts
	if *gateFile != "" {
		if err := runGate(*gateFile, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tixbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *articles, *seed, *runs, *small, *shardFq); err != nil {
		fmt.Fprintln(os.Stderr, "tixbench:", err)
		os.Exit(1)
	}
}

// runGate re-measures the cheap hotpath tier and compares it against the
// committed baseline (the regression gate `make check` runs).
func runGate(baseline string, seed int64) error {
	f, err := os.Open(baseline)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(os.Stderr, "bench gate: re-measuring hotpath gate tier against %s...\n", baseline)
	return bench.RunGate(f, "gate", seed, os.Stderr)
}

func run(table string, articles int, seed int64, runs int, small bool, shardFreq int) error {
	bench.Runs = runs

	cfg := bench.DefaultConfig()
	if small {
		cfg = bench.SmallConfig()
	}
	cfg.Articles = articles
	cfg.Seed = seed
	cfg.Runs = runs
	if table == "all" || strings.Contains(table, "shards") {
		cfg.ShardFreq = shardFreq
	}
	if table == "pick" {
		// The Pick experiment needs no corpus.
		return writeTables(nil, []string{"pick"}, seed)
	}
	if table == "hotpath" || strings.HasPrefix(table, "hotpath-") {
		// The hot-path rig streams its own corpus per tier; "hotpath" runs
		// every tier, "hotpath-<name>" just one.
		which := strings.Split(table, ",")
		if table == "hotpath" {
			which = which[:0]
			for _, t := range bench.HotpathTiers {
				which = append(which, "hotpath-"+t.Name)
			}
		}
		return writeTables(nil, which, seed)
	}

	fmt.Fprintf(os.Stderr, "building corpus (%d articles, seed %d)...\n", cfg.Articles, cfg.Seed)
	c, err := bench.Build(cfg)
	if err != nil {
		return err
	}
	st := c.Index
	fmt.Fprintf(os.Stderr, "corpus ready: %d nodes, %d terms, %d occurrences\n",
		st.Store().NumNodes(), st.NumTerms(), st.TotalOccurrences())

	var which []string
	if table == "all" {
		which = []string{"1", "2", "3", "4", "5", "pick", "ablation", "shards", "index", "ingest"}
	} else {
		which = strings.Split(table, ",")
	}
	return writeTables(c, which, seed)
}

func writeTables(c *bench.Corpus, which []string, seed int64) error {
	var jsonTables []*bench.Table
	for _, w := range which {
		var t *bench.Table
		var err error
		switch strings.TrimSpace(w) {
		case "1":
			t, err = c.Table1()
		case "2":
			t, err = c.Table2()
		case "3":
			t, err = c.Table3()
		case "4":
			t, err = c.Table4()
		case "5":
			t, err = c.Table5()
		case "pick":
			t, err = bench.PickTable(seed, nil)
		case "ablation":
			t, err = c.Ablations()
		case "shards":
			t, err = c.ShardTable(shardCounts)
		case "index":
			t, err = c.IndexTable()
		case "ingest":
			t, err = c.IngestTable()
		default:
			name, ok := strings.CutPrefix(strings.TrimSpace(w), "hotpath-")
			if !ok {
				return fmt.Errorf("unknown table %q", w)
			}
			var spec bench.HotpathTierSpec
			if spec, err = bench.HotpathTier(name); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "building hotpath tier %q (%d docs, streamed)...\n", spec.Name, spec.Docs)
			t, err = bench.HotpathTable(spec, seed)
		}
		if err != nil {
			return err
		}
		if jsonOut {
			jsonTables = append(jsonTables, t)
			continue
		}
		if csvOut {
			fmt.Printf("# %s: %s\n", t.ID, t.Caption)
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
			continue
		}
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
		if accessOut {
			if err := t.WriteAccess(os.Stdout); err != nil {
				return err
			}
		}
		printShape(t)
	}
	if jsonOut {
		return bench.WriteAllJSON(os.Stdout, jsonTables)
	}
	return nil
}

// Rendering modes (set from flags).
var (
	csvOut      bool
	jsonOut     bool
	accessOut   bool
	shardCounts []int
)

// parseCounts parses the -shards list ("" = bench.ShardCounts default).
func parseCounts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n := 0
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// printShape summarizes the qualitative comparisons the paper draws from
// each table.
func printShape(t *bench.Table) {
	switch t.ID {
	case "table1", "table2", "table3", "table4":
		last := t.Rows[len(t.Rows)-1]
		if r, ok := last.Ratio(bench.MComp1, bench.MTermJoin); ok {
			fmt.Printf("   shape: Comp1/TermJoin at max x = %.1fx\n", r)
		}
		if r, ok := last.Ratio(bench.MComp2, bench.MTermJoin); ok {
			fmt.Printf("   shape: Comp2/TermJoin at max x = %.1fx\n", r)
		}
		if r, ok := last.Ratio(bench.MGenMeet, bench.MTermJoin); ok {
			fmt.Printf("   shape: GenMeet/TermJoin at max x = %.1fx\n", r)
		}
		if r, ok := last.Ratio(bench.MTermJoin, bench.MEnhancedTermJoin); ok {
			fmt.Printf("   shape: TermJoin/Enhanced at max x = %.1fx\n", r)
		}
	case "shards":
		if len(t.Columns) >= 2 {
			last := t.Rows[len(t.Rows)-1]
			if r, ok := last.Ratio(t.Columns[0], t.Columns[len(t.Columns)-1]); ok {
				fmt.Printf("   shape: %s/%s at max frequency = %.2fx\n",
					t.Columns[0], t.Columns[len(t.Columns)-1], r)
			}
		}
	case "table5":
		worst, best := 0.0, 1e18
		for _, row := range t.Rows {
			if r, ok := row.Ratio(bench.MComp3, bench.MPhraseFinder); ok {
				if r > worst {
					worst = r
				}
				if r < best {
					best = r
				}
			}
		}
		fmt.Printf("   shape: Comp3/PhraseFinder ratio range = %.1fx .. %.1fx\n", best, worst)
	}
	fmt.Println()
}

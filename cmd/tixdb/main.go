// Command tixdb is a small command-line front end to the TIX database:
// load XML documents, inspect statistics, and run extended-XQuery queries
// (the Sec. 4 dialect), term searches, and phrase searches.
//
// Usage:
//
//	tixdb -load a.xml -load b.xml -query 'For $a in document("a.xml")//p …'
//	tixdb -load a.xml -terms "search,engine" -topk 5
//	tixdb -load a.xml -phrase "information retrieval"
//	tixdb -load a.xml -stats
//	tixdb -open db.tix -delete a.xml -save db.tix   # retire a document
//	tixdb -demo                # run the paper's Query 2 on the Fig. 1 data
//
// -delete (repeatable) removes documents by name after loading; combined
// with -save the written snapshot contains only the surviving corpus, with
// its index compacted.
//
// With -timeout, evaluation is abandoned cooperatively once the deadline
// passes and the process exits with status 2 (distinct from status 1 for
// ordinary errors), so scripts can tell "query too slow" from "query
// wrong".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/fixture"
	"repro/internal/shard"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var loads, deletes multiFlag
	flag.Var(&loads, "load", "XML file to load (repeatable)")
	flag.Var(&deletes, "delete", "document name to delete after loading (repeatable)")
	var (
		query   = flag.String("query", "", "extended-XQuery query to evaluate")
		terms   = flag.String("terms", "", "comma-separated terms for a TermJoin search")
		phrase  = flag.String("phrase", "", "space-separated phrase for a PhraseFinder search")
		topk    = flag.Int("topk", 10, "result limit for -terms")
		complex = flag.Bool("complex", false, "use the complex scoring function with -terms")
		stats   = flag.Bool("stats", false, "print database statistics")
		demo    = flag.Bool("demo", false, "load the paper's Figure 1 database and run Query 2")
		stem    = flag.Bool("stem", true, "index with the light plural stemmer")
		save    = flag.String("save", "", "write the database (with its index) to this file")
		open    = flag.String("open", "", "open a database file written with -save")
		shards  = flag.Int("shards", 0, "number of corpus shards queried in parallel (0 = keep an opened file's layout, else 1)")
		explain = flag.Bool("explain", false, "print the physical plan for -query instead of running it")
		timeout = flag.Duration("timeout", 0, "abandon evaluation after this duration and exit with status 2 (0 = none)")
	)
	flag.Parse()
	if err := run(loads, deletes, *query, *terms, *phrase, *topk, *complex, *stats, *demo, *stem, *save, *open, *shards, *explain, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "tixdb:", err)
		if errors.Is(err, exec.ErrDeadlineExceeded) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(loads, deletes []string, query, terms, phrase string, topk int, complex, stats, demo, stem bool, save, open string, shards int, explain bool, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var d *shard.DB
	if open != "" {
		var err error
		d, err = shard.OpenFile(open)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "opened %s (%d shard(s))\n", open, d.Shards())
		if shards > 0 && shards != d.Shards() {
			d, err = d.Reshard(shards, d.Strategy())
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "resharded into %d shard(s)\n", shards)
		}
	} else {
		d = shard.New(shard.Options{Shards: shards, Stemming: stem})
	}
	if demo {
		if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
			return err
		}
		if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
			return err
		}
		if query == "" {
			query = `
For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
Pick $a using PickFoo($a)
Sortby(score)
Threshold $a/@score > 4 stop after 5`
			fmt.Println("running the paper's Query 2:")
			fmt.Println(query)
			fmt.Println()
		}
	}
	for _, path := range loads {
		if err := d.LoadFile(path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %s\n", path)
	}
	if !demo && len(loads) == 0 && open == "" {
		return fmt.Errorf("nothing loaded; use -load, -open or -demo")
	}
	for _, name := range deletes {
		if err := d.Delete(name); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "deleted %s\n", name)
	}
	if save != "" {
		d.Warm() // persist the indexes too
		if d.Shards() == 1 {
			// Keep single-shard snapshots in the legacy v1 format so they
			// stay readable by older builds; OpenFile accepts both.
			if err := d.Segment(0).SaveFile(save); err != nil {
				return err
			}
		} else if err := d.SaveFile(save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved %s\n", save)
	}

	if stats {
		st := d.Stats()
		fmt.Printf("documents:   %d\n", st.Documents)
		fmt.Printf("nodes:       %d\n", st.Nodes)
		fmt.Printf("elements:    %d\n", st.Elements)
		fmt.Printf("terms:       %d\n", st.Terms)
		fmt.Printf("occurrences: %d\n", st.Occurrences)
	}

	if explain && query != "" {
		plan, err := d.Explain(query)
		if err != nil {
			return err
		}
		fmt.Println(plan)
		return nil
	}
	if query != "" {
		rendered, results, err := d.QueryRenderedContext(ctx, query)
		if err != nil {
			return err
		}
		fmt.Printf("%d result(s)\n", len(results))
		for i, r := range results {
			fmt.Printf("--- result %d: <%s> score=%.2f ---\n", i+1, r.Node.Tag, r.Score)
			fmt.Print(rendered[i])
		}
	}

	if terms != "" {
		list := strings.Split(terms, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		results, err := d.TermSearchContext(ctx, list, db.TermSearchOptions{TopK: topk, Complex: complex})
		if err != nil {
			return err
		}
		fmt.Printf("%d result(s) for terms %v\n", len(results), list)
		for i, r := range results {
			fmt.Printf("%2d. <%s> doc=%d ord=%d score=%.3f\n", i+1, d.NameOf(r), r.Doc, r.Ord, r.Score)
		}
	}

	if phrase != "" {
		words := strings.Fields(phrase)
		ms, err := d.PhraseSearchContext(ctx, words)
		if err != nil {
			return err
		}
		fmt.Printf("%d occurrence(s) of %q\n", len(ms), phrase)
		for i, m := range ms {
			if i >= topk {
				fmt.Printf("... and %d more\n", len(ms)-topk)
				break
			}
			n := d.Materialize(m.Doc, m.Node)
			text := n.AllText()
			if len(text) > 70 {
				text = text[:67] + "..."
			}
			fmt.Printf("%2d. doc=%d node=%d pos=%d: %s\n", i+1, m.Doc, m.Node, m.Pos, text)
		}
	}
	return nil
}

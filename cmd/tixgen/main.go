// Command tixgen generates a synthetic INEX-like XML corpus (the stand-in
// for the paper's 500 MB IEEE article collection) and writes it to a file,
// optionally planting control terms at exact frequencies.
//
// Usage:
//
//	tixgen -articles 500 -seed 7 -out corpus.xml
//	tixgen -articles 500 -plant "searchterm:1000,other:250" -out corpus.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/synth"
	"repro/internal/xmltree"
)

func main() {
	var (
		articles = flag.Int("articles", 100, "number of articles")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "", "output file (default stdout)")
		plant    = flag.String("plant", "", "control terms as term:freq,term:freq,…")
		vocab    = flag.Int("vocab", 4000, "background vocabulary size")
	)
	flag.Parse()
	if err := run(*articles, *seed, *out, *plant, *vocab); err != nil {
		fmt.Fprintln(os.Stderr, "tixgen:", err)
		os.Exit(1)
	}
}

func run(articles int, seed int64, out, plant string, vocab int) error {
	cfg := synth.DefaultConfig()
	cfg.Articles = articles
	cfg.Seed = seed
	cfg.VocabSize = vocab
	if plant != "" {
		cfg.ControlTerms = map[string]int{}
		for _, spec := range strings.Split(plant, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), ":", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad plant spec %q (want term:freq)", spec)
			}
			freq, err := strconv.Atoi(parts[1])
			if err != nil || freq <= 0 {
				return fmt.Errorf("bad frequency in %q", spec)
			}
			cfg.ControlTerms[parts[0]] = freq
		}
	}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := xmltree.WriteXML(w, corpus.Root, false); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d paragraphs, %d words\n", corpus.Paragraphs, corpus.Words)
	return nil
}

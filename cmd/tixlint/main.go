// Command tixlint runs the project's static-analysis suite: twelve
// analyzers over go/ast + go/types that mechanically enforce the
// invariants PRs 2–8 introduced by convention. The per-package checks
// cover deterministic iteration, exec.Guard consultation,
// errors.Is-compatible error handling, context hygiene, seeded
// randomness, cancellation-aware waits, atomic-access hygiene,
// cache-key completeness, and alias-free accessors; the flow-aware
// program-scope checks cover the module-wide lock-acquisition graph,
// goroutine shutdown paths, and tix_* metric-name ownership.
//
// Usage:
//
//	tixlint [flags] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 clean, 1 findings at or above -severity (or a ratchet
// regression), 2 load failure or bad usage.
//
// Two CI modes:
//
//	tixlint -changed origin/main ./...
//
// runs the whole suite (cross-package analyzers need the whole program)
// but reports only diagnostics in files that differ from the ref, plus
// untracked files — the fast pre-merge scope.
//
//	tixlint -ratchet .tixlint-ratchet.json ./...
//
// compares per-analyzer finding counts against the committed baseline
// and fails only on regressions; -ratchet-write re-records the baseline
// after a deliberate change.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut      = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		severity     = flag.String("severity", "warning", "minimum severity that fails the run: info, warning, or error")
		list         = flag.Bool("list", false, "list the registered analyzers and exit")
		analyzers    = flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
		dir          = flag.String("C", ".", "directory of the module to analyze")
		changed      = flag.String("changed", "", "report only findings in files changed since this git ref (plus untracked files)")
		ratchetPath  = flag.String("ratchet", "", "compare per-analyzer finding counts against this baseline file; fail only on regressions")
		ratchetWrite = flag.Bool("ratchet-write", false, "with -ratchet: record the current counts as the new baseline")
	)
	flag.Parse()

	if *list {
		lint.WriteList(os.Stdout)
		return
	}
	if *changed != "" && *ratchetPath != "" {
		fmt.Fprintln(os.Stderr, "tixlint: -changed and -ratchet are mutually exclusive: the ratchet pins whole-module counts, which a changed-files subset cannot reproduce")
		os.Exit(2)
	}
	if *ratchetWrite && *ratchetPath == "" {
		fmt.Fprintln(os.Stderr, "tixlint: -ratchet-write requires -ratchet FILE")
		os.Exit(2)
	}

	threshold, err := lint.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	selected := lint.Analyzers()
	fullSet := true
	if *analyzers != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range selected {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*analyzers, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "tixlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		fullSet = len(selected) == len(byName)
	}

	prog, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tixlint: %v\n", err)
		os.Exit(2)
	}

	runner := &lint.Runner{Analyzers: selected, CheckUnused: fullSet}
	diags, stale := runner.RunAll(prog)

	if *changed != "" {
		set, cerr := lint.ChangedFiles(*dir, *changed)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "tixlint: %v\n", cerr)
			os.Exit(2)
		}
		diags = lint.FilterChanged(diags, set)
		stale = lint.FilterStaleChanged(stale, set)
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, lint.ReportAll(diags, stale, prog.LoadErrors)); err != nil {
			fmt.Fprintf(os.Stderr, "tixlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, e := range prog.LoadErrors {
			fmt.Fprintf(os.Stderr, "tixlint: load: %s\n", e)
		}
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	if len(prog.LoadErrors) > 0 {
		os.Exit(2)
	}

	if *ratchetPath != "" {
		counts := lint.CountByAnalyzer(diags)
		if *ratchetWrite {
			if err := lint.WriteRatchet(*ratchetPath, counts); err != nil {
				fmt.Fprintf(os.Stderr, "tixlint: %v\n", err)
				os.Exit(2)
			}
			return
		}
		base, err := lint.ReadRatchet(*ratchetPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tixlint: %v\n", err)
			os.Exit(2)
		}
		regressions := lint.CheckRatchet(base, counts)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "tixlint: ratchet: %s\n", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		return
	}

	if failsThreshold(diags, threshold) {
		os.Exit(1)
	}
}

func failsThreshold(diags []lint.Diagnostic, threshold lint.Severity) bool {
	for _, d := range diags {
		if d.Severity >= threshold {
			return true
		}
	}
	return false
}

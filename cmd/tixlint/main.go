// Command tixlint runs the project's static-analysis suite: six
// analyzers over go/ast + go/types that mechanically enforce the
// invariants PRs 2–3 introduced by convention (deterministic iteration,
// exec.Guard consultation, errors.Is-compatible error handling, context
// hygiene, seeded randomness, cancellation-aware waits in library
// retry paths).
//
// Usage:
//
//	tixlint [flags] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 clean, 1 findings at or above -severity, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		severity  = flag.String("severity", "warning", "minimum severity that fails the run: info, warning, or error")
		list      = flag.Bool("list", false, "list the registered analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
		dir       = flag.String("C", ".", "directory of the module to analyze")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	threshold, err := lint.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	selected := lint.Analyzers()
	fullSet := true
	if *analyzers != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range selected {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*analyzers, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "tixlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		fullSet = len(selected) == len(byName)
	}

	prog, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tixlint: %v\n", err)
		os.Exit(2)
	}

	runner := &lint.Runner{Analyzers: selected, CheckUnused: fullSet}
	diags := runner.Run(prog)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, lint.Report(diags, prog.LoadErrors)); err != nil {
			fmt.Fprintf(os.Stderr, "tixlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, e := range prog.LoadErrors {
			fmt.Fprintf(os.Stderr, "tixlint: load: %s\n", e)
		}
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	switch {
	case len(prog.LoadErrors) > 0:
		os.Exit(2)
	case failsThreshold(diags, threshold):
		os.Exit(1)
	}
}

func failsThreshold(diags []lint.Diagnostic, threshold lint.Severity) bool {
	for _, d := range diags {
		if d.Severity >= threshold {
			return true
		}
	}
	return false
}

// Command tixload drives a TIX database with an open-loop, zipfian query
// workload and reports latency percentiles, throughput, and result-cache
// effectiveness as machine-readable JSON.
//
//	tixload -docs 200 -qps 2000 -duration 10s -cache-bytes 8388608
//	tixload -zipf-s 1.0 -mix terms=0.5,topk=0.3,phrase=0.2 -json report.json
//	tixload -ingest-every 50 -cache-bytes 8388608   # mutation churn mixin
//
// The driver is open-loop: arrivals are scheduled on a fixed clock from
// the offered rate (-qps) regardless of completions, and each request's
// latency is measured from its *scheduled* arrival, so queue delay under
// overload is charged to the server, not hidden by coordinated omission.
//
// The query population (-queries distinct requests, split across the
// -mix families) is drawn per-arrival from a zipfian distribution with
// exponent -zipf-s over the population ranks, so a small hot set repeats
// heavily — the regime a result cache (-cache-bytes; see
// internal/rescache) is built for. With -ingest-every K every K-th
// arrival is a document Add instead of a query, bumping the corpus
// generation and exactly invalidating the cache mid-run.
//
// The corpus is synthetic (see internal/synth): -docs small INEX-like
// documents with control terms (ctla, ctlb, ctlc) and a planted
// ctla-ctlb phrase adjacency, generated deterministically from -seed.
//
// Output: a single JSON report on stdout (or -json FILE) with the
// resolved config, offered/completed/error counts, achieved throughput,
// per-family and overall p50/p90/p99/max latencies (exact, from the full
// sample set), and the cache's hit/miss/eviction counters with the
// resulting hit rate. A human-readable summary goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/synth"
)

type options struct {
	docs        int
	shards      int
	cacheBytes  int64
	qps         float64
	duration    time.Duration
	queries     int
	zipfS       float64
	mix         string
	ingestEvery int
	seed        int64
	workers     int
	jsonPath    string
	dumpMetrics bool
}

func main() {
	var o options
	flag.IntVar(&o.docs, "docs", 200, "synthetic corpus size in documents")
	flag.IntVar(&o.shards, "shards", 1, "shard count for the backend under load")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", 0, "result-cache budget in bytes (0 = cache off)")
	flag.Float64Var(&o.qps, "qps", 2000, "offered load in requests/sec (open loop)")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "measurement duration")
	flag.IntVar(&o.queries, "queries", 512, "distinct query population size")
	flag.Float64Var(&o.zipfS, "zipf-s", 1.0, "zipf exponent over query ranks (higher = hotter hot set)")
	flag.StringVar(&o.mix, "mix", "terms=0.5,topk=0.3,phrase=0.2", "query family mix as family=fraction pairs (terms, topk, phrase)")
	flag.IntVar(&o.ingestEvery, "ingest-every", 0, "every k-th arrival is a document Add instead of a query (0 = read-only)")
	flag.Int64Var(&o.seed, "seed", 42, "corpus and workload generation seed")
	flag.IntVar(&o.workers, "workers", 32, "request executor pool size")
	flag.StringVar(&o.jsonPath, "json", "", "write the JSON report to this file instead of stdout")
	flag.BoolVar(&o.dumpMetrics, "metrics", false, "dump the latency histogram registry (server /metrics text format) to stderr")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "tixload:", err)
		os.Exit(1)
	}
}

// zipf is an inverse-CDF sampler over ranks 0..n-1 with weight
// 1/(rank+1)^s. Unlike math/rand's Zipf it accepts any s > 0, in
// particular the classic s = 1.0.
type zipf struct {
	cum []float64 // cumulative, normalized
}

func newZipf(n int, s float64) *zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipf{cum: cum}
}

func (z *zipf) rank(r *rand.Rand) int {
	return sort.SearchFloat64s(z.cum, r.Float64())
}

// request is one entry of the query population.
type request struct {
	family string
	run    func(ctx context.Context, d *shard.DB) error
}

func parseMix(s string) (map[string]float64, error) {
	mix := make(map[string]float64)
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		name, frac, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want family=fraction)", part)
		}
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad mix fraction %q", frac)
		}
		switch name {
		case "terms", "topk", "phrase":
		default:
			return nil, fmt.Errorf("unknown query family %q (want terms, topk, phrase)", name)
		}
		mix[name] += f
		total += f
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive fractions", s)
	}
	for k, v := range mix {
		mix[k] = v / total
	}
	return mix, nil
}

// buildPopulation assembles the distinct query set: ranks are assigned to
// families by the mix fractions, parameters drawn from the seeded rng.
// Terms come from the planted control vocabulary plus hot background
// words, so every query has a non-empty posting footprint.
func buildPopulation(n int, mix map[string]float64, rng *rand.Rand) []request {
	control := []string{"ctla", "ctlb", "ctlc"}
	word := func() string {
		if rng.Intn(2) == 0 {
			return control[rng.Intn(len(control))]
		}
		return fmt.Sprintf("w%06d", 1+rng.Intn(40)) // hot zipf head of the background vocabulary
	}
	// Deterministic family assignment by cumulative fraction of rank.
	fams := []string{"terms", "topk", "phrase"}
	pop := make([]request, 0, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		fam := fams[len(fams)-1]
		acc := 0.0
		for _, f := range fams {
			acc += mix[f]
			if x < acc {
				fam = f
				break
			}
		}
		switch fam {
		case "terms":
			terms := []string{word()}
			if rng.Intn(2) == 0 {
				terms = append(terms, word())
			}
			pop = append(pop, request{family: fam, run: func(ctx context.Context, d *shard.DB) error {
				_, err := d.TermSearchContext(ctx, terms, db.TermSearchOptions{})
				return err
			}})
		case "topk":
			terms := []string{word(), word()}
			k := 5 + rng.Intn(20)
			pop = append(pop, request{family: fam, run: func(ctx context.Context, d *shard.DB) error {
				_, err := d.TermSearchContext(ctx, terms, db.TermSearchOptions{Complex: true, TopK: k})
				return err
			}})
		case "phrase":
			phrase := []string{"ctla", "ctlb"} // planted adjacency
			if rng.Intn(4) == 0 {
				phrase = []string{word(), word()}
			}
			pop = append(pop, request{family: fam, run: func(ctx context.Context, d *shard.DB) error {
				_, err := d.PhraseSearchContext(ctx, phrase)
				return err
			}})
		}
	}
	// Shuffle so the zipf head spans all families rather than only the
	// first fraction's.
	rng.Shuffle(len(pop), func(i, j int) { pop[i], pop[j] = pop[j], pop[i] })
	return pop
}

func buildCorpus(o options) (*shard.DB, error) {
	d := shard.New(shard.Options{Shards: o.shards, CacheBytes: o.cacheBytes, Metrics: metrics.NewRegistry()})
	for i := 0; i < o.docs; i++ {
		cfg := synth.DefaultConfig()
		cfg.Articles = 2
		cfg.SectionsPerArticle = [2]int{1, 3}
		cfg.Seed = o.seed + int64(i)
		cfg.ControlTerms = map[string]int{"ctla": 12, "ctlb": 8, "ctlc": 4}
		cfg.Phrases = []synth.PhraseSpec{{T1: "ctla", T2: "ctlb", Together: 3}}
		c, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := d.LoadTree(fmt.Sprintf("doc%06d.xml", i), c.Root); err != nil {
			return nil, err
		}
	}
	d.Warm()
	return d, nil
}

// famStats is the latency digest of one query family.
type famStats struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func digest(samples []float64) famStats {
	if len(samples) == 0 {
		return famStats{}
	}
	sort.Float64s(samples)
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return famStats{
		Count:  int64(len(samples)),
		MeanMs: sum / float64(len(samples)),
		P50Ms:  q(0.50),
		P90Ms:  q(0.90),
		P99Ms:  q(0.99),
		MaxMs:  samples[len(samples)-1],
	}
}

type cacheReport struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	GenMiss   int64   `json:"gen_miss"`
	Bytes     int64   `json:"bytes"`
	Entries   int64   `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

type report struct {
	Docs        int                 `json:"docs"`
	Shards      int                 `json:"shards"`
	CacheBytes  int64               `json:"cache_bytes"`
	OfferedQPS  float64             `json:"offered_qps"`
	DurationSec float64             `json:"duration_sec"`
	Queries     int                 `json:"queries"`
	ZipfS       float64             `json:"zipf_s"`
	Mix         string              `json:"mix"`
	IngestEvery int                 `json:"ingest_every"`
	Seed        int64               `json:"seed"`
	Workers     int                 `json:"workers"`
	Offered     int64               `json:"offered"`
	Completed   int64               `json:"completed"`
	Ingested    int64               `json:"ingested"`
	Errors      int64               `json:"errors"`
	ElapsedSec  float64             `json:"elapsed_sec"`
	AchievedQPS float64             `json:"achieved_qps"`
	Overall     famStats            `json:"overall"`
	Families    map[string]famStats `json:"families"`
	Cache       *cacheReport        `json:"cache,omitempty"`
}

// arrival is one scheduled request: the clock time it was due and the
// population rank it resolved to (-1 = ingest mixin).
type arrival struct {
	due  time.Time
	rank int
	seq  int64
}

func run(o options) error {
	if o.qps <= 0 || o.duration <= 0 || o.queries <= 0 || o.workers <= 0 {
		return fmt.Errorf("qps, duration, queries, and workers must be positive")
	}
	mix, err := parseMix(o.mix)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "building corpus (%d docs, %d shard(s), cache %d bytes)...\n", o.docs, o.shards, o.cacheBytes)
	d, err := buildCorpus(o)
	if err != nil {
		return err
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(o.seed))
	pop := buildPopulation(o.queries, mix, rng)
	z := newZipf(len(pop), o.zipfS)

	offered := int64(math.Floor(o.qps * o.duration.Seconds()))
	interval := time.Duration(float64(time.Second) / o.qps)
	queue := make(chan arrival, offered)

	// Latency samples per family, sharded per worker to avoid contention;
	// merged after the run. Histograms land in the registry for parity
	// with the server's /metrics format.
	reg := metrics.NewRegistry()
	type sample struct {
		family string
		ms     float64
	}
	perWorker := make([][]sample, o.workers)
	var errs, ingested, completed int64
	var counterMu sync.Mutex

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]sample, 0, 1024)
			var localErrs, localIngested, localCompleted int64
			for a := range queue {
				if wait := time.Until(a.due); wait > 0 {
					time.Sleep(wait)
				}
				var fam string
				var err error
				if a.rank < 0 {
					fam = "ingest"
					err = d.Add(fmt.Sprintf("load%09d.xml", a.seq), fmt.Sprintf("<d><t>fresh w%06d ctla</t></d>", a.seq%40+1))
				} else {
					req := pop[a.rank]
					fam = req.family
					err = req.run(ctx, d)
				}
				ms := float64(time.Since(a.due)) / float64(time.Millisecond)
				reg.Histogram("tix_load_latency_" + fam).Observe(ms / 1e3)
				local = append(local, sample{family: fam, ms: ms})
				if err != nil {
					localErrs++
				} else if fam == "ingest" {
					localIngested++
				} else {
					localCompleted++
				}
			}
			perWorker[w] = local
			counterMu.Lock()
			errs += localErrs
			ingested += localIngested
			completed += localCompleted
			counterMu.Unlock()
		}(w)
	}

	fmt.Fprintf(os.Stderr, "offering %d requests over %s (%.0f qps, zipf s=%.2f over %d queries)...\n",
		offered, o.duration, o.qps, o.zipfS, len(pop))
	start := time.Now()
	dispatchRng := rand.New(rand.NewSource(o.seed + 1))
	for i := int64(0); i < offered; i++ {
		a := arrival{due: start.Add(time.Duration(i) * interval), seq: i}
		if o.ingestEvery > 0 && i%int64(o.ingestEvery) == int64(o.ingestEvery-1) {
			a.rank = -1
		} else {
			a.rank = z.rank(dispatchRng)
		}
		queue <- a // never blocks: capacity == offered (open loop preserved)
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)
	d.WaitCompaction()

	byFam := make(map[string][]float64)
	var all []float64
	for _, ws := range perWorker {
		for _, s := range ws {
			byFam[s.family] = append(byFam[s.family], s.ms)
			all = append(all, s.ms)
		}
	}
	rep := report{
		Docs: o.docs, Shards: o.shards, CacheBytes: o.cacheBytes,
		OfferedQPS: o.qps, DurationSec: o.duration.Seconds(),
		Queries: o.queries, ZipfS: o.zipfS, Mix: o.mix,
		IngestEvery: o.ingestEvery, Seed: o.seed, Workers: o.workers,
		Offered: offered, Completed: completed, Ingested: ingested, Errors: errs,
		ElapsedSec:  elapsed.Seconds(),
		AchievedQPS: float64(completed+ingested) / elapsed.Seconds(),
		Overall:     digest(all),
		Families:    make(map[string]famStats, len(byFam)),
	}
	for fam, samples := range byFam {
		rep.Families[fam] = digest(samples)
	}
	if c := d.ResultCache(); c != nil {
		st := c.Stats()
		cr := cacheReport{
			Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
			GenMiss: st.GenMiss, Bytes: st.Bytes, Entries: st.Entries,
		}
		if lookups := st.Hits + st.Misses; lookups > 0 {
			cr.HitRate = float64(st.Hits) / float64(lookups)
		}
		rep.Cache = &cr
	}

	out := os.Stdout
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "done: %d completed, %d ingested, %d errors in %.2fs (%.0f qps achieved)\n",
		completed, ingested, errs, elapsed.Seconds(), rep.AchievedQPS)
	fmt.Fprintf(os.Stderr, "latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		rep.Overall.P50Ms, rep.Overall.P90Ms, rep.Overall.P99Ms, rep.Overall.MaxMs)
	if rep.Cache != nil {
		fmt.Fprintf(os.Stderr, "cache: %.1f%% hit rate (%d hits / %d misses), %d evictions, %d bytes\n",
			100*rep.Cache.HitRate, rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Evictions, rep.Cache.Bytes)
	}
	if o.dumpMetrics {
		if err := reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if errs > 0 {
		return fmt.Errorf("%d requests failed", errs)
	}
	return nil
}

// Command tixserve serves a TIX database over HTTP (see internal/server
// for the API):
//
//	tixserve -load articles.xml -load reviews.xml -addr :8080
//	tixserve -open db.tix -addr :8080
//
// Example request:
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/terms -d '{"terms":["search","engine"],"topK":5}'
//	curl -s localhost:8080/metrics
//
// The server exposes per-query metrics on /metrics, a liveness probe on
// /healthz, and (with -pprof) the net/http/pprof profiling endpoints. It
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight queries.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/db"
	"repro/internal/server"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var loads multiFlag
	flag.Var(&loads, "load", "XML file to load (repeatable)")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		open    = flag.String("open", "", "database file written by tixdb -save")
		stem    = flag.Bool("stem", true, "index with the light plural stemmer")
		maxR    = flag.Int("max-results", 100, "per-request result cap")
		maxBody = flag.Int64("max-body", 1<<20, "per-request body size cap in bytes")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		quiet   = flag.Bool("quiet", false, "disable per-request logging")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()
	if err := run(loads, *addr, *open, *stem, *maxR, *maxBody, *pprofOn, *quiet, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "tixserve:", err)
		os.Exit(1)
	}
}

func run(loads []string, addr, open string, stem bool, maxResults int, maxBody int64, pprofOn, quiet bool, drain time.Duration) error {
	var d *db.DB
	if open != "" {
		var err error
		d, err = db.LoadDBFile(open)
		if err != nil {
			return err
		}
	} else {
		d = db.New(db.Options{Stemming: stem})
	}
	for _, path := range loads {
		if err := d.LoadFile(path); err != nil {
			return err
		}
	}
	if len(loads) == 0 && open == "" {
		return fmt.Errorf("nothing to serve; use -load or -open")
	}
	st := d.Stats() // force index construction before serving
	fmt.Fprintf(os.Stderr, "serving %d document(s), %d nodes, %d terms on %s\n",
		st.Documents, st.Nodes, st.Terms, addr)
	s := server.New(d)
	s.MaxResults = maxResults
	s.MaxBodyBytes = maxBody
	s.EnablePprof = pprofOn
	if !quiet {
		s.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := s.ListenAndServeContext(ctx, addr, drain)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tixserve: signal received, drained and stopped")
	}
	return err
}

// Command tixserve serves a TIX database over HTTP (see internal/server
// for the API):
//
//	tixserve -load articles.xml -load reviews.xml -addr :8080
//	tixserve -open db.tix -addr :8080
//
// Example request:
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/terms -d '{"terms":["search","engine"],"topK":5}'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/db"
	"repro/internal/server"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var loads multiFlag
	flag.Var(&loads, "load", "XML file to load (repeatable)")
	var (
		addr = flag.String("addr", ":8080", "listen address")
		open = flag.String("open", "", "database file written by tixdb -save")
		stem = flag.Bool("stem", true, "index with the light plural stemmer")
		maxR = flag.Int("max-results", 100, "per-request result cap")
	)
	flag.Parse()
	if err := run(loads, *addr, *open, *stem, *maxR); err != nil {
		fmt.Fprintln(os.Stderr, "tixserve:", err)
		os.Exit(1)
	}
}

func run(loads []string, addr, open string, stem bool, maxResults int) error {
	var d *db.DB
	if open != "" {
		var err error
		d, err = db.LoadDBFile(open)
		if err != nil {
			return err
		}
	} else {
		d = db.New(db.Options{Stemming: stem})
	}
	for _, path := range loads {
		if err := d.LoadFile(path); err != nil {
			return err
		}
	}
	if len(loads) == 0 && open == "" {
		return fmt.Errorf("nothing to serve; use -load or -open")
	}
	st := d.Stats() // force index construction before serving
	fmt.Fprintf(os.Stderr, "serving %d document(s), %d nodes, %d terms on %s\n",
		st.Documents, st.Nodes, st.Terms, addr)
	s := server.New(d)
	s.MaxResults = maxResults
	return s.ListenAndServe(addr)
}

// Command tixserve serves a TIX database over HTTP (see internal/server
// for the API):
//
//	tixserve -load articles.xml -load reviews.xml -addr :8080
//	tixserve -open db.tix -addr :8080
//	tixserve -open db.tix -shards 8 -addr :8080
//
// With -shards N the corpus is partitioned across N independent segments
// and every query fans out across them in parallel (see internal/shard);
// results are merged under the same ordering contract as a single store,
// so the API output is identical for any shard count.
//
// Example request:
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/terms -d '{"terms":["search","engine"],"topK":5}'
//	curl -s localhost:8080/metrics
//
// The server exposes per-query metrics on /metrics, a liveness probe on
// /healthz, and (with -pprof) the net/http/pprof profiling endpoints. It
// shuts down gracefully on SIGINT/SIGTERM, draining in-flight queries.
//
// With -ingest the document mutation endpoints are enabled and the corpus
// can be grown, replaced, and shrunk while the server answers queries:
//
//	curl -s -X POST localhost:8080/docs -d '{"name":"new.xml","xml":"<a>hi</a>"}'
//	curl -s -X PUT localhost:8080/docs/new.xml -d '{"xml":"<a>bye</a>"}'
//	curl -s -X DELETE localhost:8080/docs/new.xml
//
// Without the flag those endpoints answer 501, keeping the default server
// read-only.
//
// Queries run under per-request resource budgets: -query-timeout bounds
// wall-clock evaluation time (408 on expiry), -max-accesses bounds store
// reads per query (422 on exhaustion), and a client disconnect cancels the
// scan. The -fault-every/-fault-latency flags inject deterministic storage
// faults and latency for resilience testing; injected faults surface as
// 503 responses, never crashes.
//
// With -replicas N the corpus is loaded into N identical backends behind
// a self-healing serving tier (see internal/fleet): per-replica circuit
// breakers eject failing replicas and re-admit them after probing,
// replica faults are retried on healthy twins, and slow primaries are
// hedged after -hedge-after (or the live p95, whichever is larger).
// Traffic readiness is on /readyz, distinct from the /healthz liveness
// probe. Fault flags can target a single replica for self-healing drills:
//
//	tixserve -load articles.xml -replicas 3 -fault-replica 0 -fault-every 50
//
// With -cache-bytes N each replica keeps a generation-keyed result cache
// (see internal/rescache) of at most N bytes: repeated term, phrase, and
// query requests are answered from memory while any mutation instantly
// and exactly invalidates, because the corpus generation is part of every
// key. Cache traffic is visible on /metrics as tix_rescache_*.
//
// The -rate-limit and -max-inflight flags enable admission control:
// per-client token buckets (429 when exhausted) in front of a global
// concurrency gate that sheds rather than queues unboundedly (503).
// Rejections are typed JSON errors with Retry-After hints.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// options gathers the parsed flags.
type options struct {
	loads        []string
	addr         string
	open         string
	shards       int
	stem         bool
	maxResults   int
	maxBody      int64
	ingest       bool
	pprofOn      bool
	quiet        bool
	drain        time.Duration
	queryTimeout time.Duration
	maxAccesses  int64
	faultEvery   int64
	faultLatency time.Duration
	faultLatEvry int64
	faultSeed    int64
	replicas     int
	hedgeAfter   time.Duration
	faultReplica int
	rateLimit    float64
	maxInflight  int
	cacheBytes   int64
}

func main() {
	var o options
	var loads multiFlag
	flag.Var(&loads, "load", "XML file to load (repeatable)")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.open, "open", "", "database file written by tixdb -save (legacy or sharded format)")
	flag.IntVar(&o.shards, "shards", 0, "number of corpus shards queried in parallel (0 = keep an opened file's layout, else 1)")
	flag.BoolVar(&o.stem, "stem", true, "index with the light plural stemmer")
	flag.IntVar(&o.maxResults, "max-results", 100, "per-request result cap")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "per-request body size cap in bytes")
	flag.BoolVar(&o.ingest, "ingest", false, "enable the document mutation endpoints (POST/PUT/DELETE /docs)")
	flag.BoolVar(&o.pprofOn, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.BoolVar(&o.quiet, "quiet", false, "disable per-request logging")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful shutdown drain timeout")
	flag.DurationVar(&o.queryTimeout, "query-timeout", 0, "per-query evaluation deadline (0 = none); expiry returns 408")
	flag.Int64Var(&o.maxAccesses, "max-accesses", 0, "per-query store-access budget (0 = none); exhaustion returns 422")
	flag.Int64Var(&o.faultEvery, "fault-every", 0, "inject a storage fault every k-th store access (0 = off; testing)")
	flag.DurationVar(&o.faultLatency, "fault-latency", 0, "injected latency per matching store access (testing)")
	flag.Int64Var(&o.faultLatEvry, "fault-latency-every", 0, "apply -fault-latency every k-th store access (0 = off)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 0, "offset for the deterministic fault schedule")
	flag.IntVar(&o.replicas, "replicas", 1, "number of identical backend replicas behind the self-healing serving tier")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 25*time.Millisecond, "hedge-delay floor before a request is duplicated to a second replica (negative = no hedging)")
	flag.IntVar(&o.faultReplica, "fault-replica", -1, "restrict fault injection to one replica index (-1 = all; self-healing drills)")
	flag.Float64Var(&o.rateLimit, "rate-limit", 0, "per-client sustained requests/sec; exhaustion returns 429 (0 = off)")
	flag.IntVar(&o.maxInflight, "max-inflight", 0, "global concurrent-request gate; overload sheds with 503 (0 = off)")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", 0, "per-replica result-cache budget in bytes; generation-keyed, exact (0 = off)")
	flag.Parse()
	o.loads = loads
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "tixserve:", err)
		os.Exit(1)
	}
}

// buildReplica constructs one fully-loaded backend from the corpus flags.
func buildReplica(o options) (*shard.DB, error) {
	var d *shard.DB
	if o.open != "" {
		var err error
		d, err = shard.OpenFile(o.open)
		if err != nil {
			return nil, err
		}
		if o.shards > 0 && o.shards != d.Shards() {
			d, err = d.Reshard(o.shards, d.Strategy())
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "resharded %s into %d shard(s)\n", o.open, o.shards)
		}
	} else {
		d = shard.New(shard.Options{Shards: o.shards, Stemming: o.stem, CacheBytes: o.cacheBytes})
	}
	if o.cacheBytes > 0 && d.ResultCache() == nil {
		// The -open path constructs the facade itself; attach the cache
		// after the fact.
		d.EnableResultCache(o.cacheBytes)
	}
	d.SetLimits(exec.Limits{MaxAccesses: o.maxAccesses})
	for _, path := range o.loads {
		if err := d.LoadFile(path); err != nil {
			return nil, err
		}
	}
	d.Stats() // force index construction before serving
	return d, nil
}

func run(o options) error {
	if len(o.loads) == 0 && o.open == "" && !o.ingest {
		return fmt.Errorf("nothing to serve; use -load, -open, or -ingest to start empty")
	}
	if o.replicas < 1 {
		o.replicas = 1
	}

	// Every replica loads the same corpus in the same order, so document
	// numbering agrees across the tier and any replica can serve any
	// request.
	replicas := make([]*shard.DB, 0, o.replicas)
	for i := 0; i < o.replicas; i++ {
		d, err := buildReplica(o)
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		replicas = append(replicas, d)
	}

	if o.faultEvery > 0 || (o.faultLatency > 0 && o.faultLatEvry > 0) {
		inj := func() *storage.FaultInjector {
			return &storage.FaultInjector{
				FailEvery:    o.faultEvery,
				Latency:      o.faultLatency,
				LatencyEvery: o.faultLatEvry,
				Seed:         o.faultSeed,
			}
		}
		armed := "all replicas"
		if o.faultReplica >= 0 {
			if o.faultReplica >= len(replicas) {
				return fmt.Errorf("-fault-replica %d out of range (replicas: %d)", o.faultReplica, len(replicas))
			}
			replicas[o.faultReplica].SetFaults(inj())
			armed = fmt.Sprintf("replica %d", o.faultReplica)
		} else {
			for _, d := range replicas {
				d.SetFaults(inj())
			}
		}
		fmt.Fprintf(os.Stderr, "fault injection armed on %s: every=%d latency=%s/%d seed=%d\n",
			armed, o.faultEvery, o.faultLatency, o.faultLatEvry, o.faultSeed)
	}

	var backend server.Backend = replicas[0]
	if o.replicas > 1 {
		bs := make([]fleet.Backend, len(replicas))
		for i, d := range replicas {
			bs[i] = d
		}
		f, err := fleet.New(fleet.Config{
			HedgeAfter:  o.hedgeAfter,
			PanicErrors: []error{shard.ErrPanic},
		}, bs...)
		if err != nil {
			return err
		}
		backend = f
		fmt.Fprintf(os.Stderr, "serving tier: %d replicas, hedge-after=%s, health-checked routing on\n",
			o.replicas, o.hedgeAfter)
	}

	st := backend.Stats()
	fmt.Fprintf(os.Stderr, "serving %d document(s), %d nodes, %d terms on %s (%d shard(s), %s)\n",
		st.Documents, st.Nodes, st.Terms, o.addr, replicas[0].Shards(), replicas[0].Strategy())
	s := server.New(backend)
	if o.rateLimit > 0 || o.maxInflight > 0 {
		s.Admission = fleet.NewAdmission(fleet.AdmissionConfig{
			RatePerSec:  o.rateLimit,
			MaxInflight: o.maxInflight,
			Metrics:     backend.MetricsRegistry(),
		})
		fmt.Fprintf(os.Stderr, "admission control: rate-limit=%g/s max-inflight=%d\n",
			o.rateLimit, o.maxInflight)
	}
	s.MaxResults = o.maxResults
	s.MaxBodyBytes = o.maxBody
	s.EnablePprof = o.pprofOn
	s.EnableIngest = o.ingest
	s.QueryTimeout = o.queryTimeout
	if o.ingest {
		fmt.Fprintln(os.Stderr, "ingestion enabled: POST /docs, PUT /docs/{name}, DELETE /docs/{name}")
	}
	if !o.quiet {
		s.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := s.ListenAndServeContext(ctx, o.addr, o.drain)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tixserve: signal received, drained and stopped")
	}
	return err
}

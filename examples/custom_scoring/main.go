// Custom scoring: the paper stresses that TIX takes user-defined scoring
// functions rather than hard-wiring heuristics (Sec. 2–3). This example
// runs the same term query under four scorers — the simple weighted sum,
// tf·idf (the "realistic" choice named in Sec. 5.1), a conditional scorer
// (score 0 unless the primary term occurs, Sec. 3.1), and a [0,1]-
// normalized scorer — and compares the rankings. It also contrasts
// ScoreSim with the vector-space cosine similarity for join conditions.
package main

import (
	"fmt"
	"log"

	"repro/internal/exec"
	"repro/internal/fixture"
	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

func main() {
	store := storage.NewStore()
	articles, err := fixture.Articles()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.AddTree("articles.xml", articles); err != nil {
		log.Fatal(err)
	}
	tok := tokenize.NewStemming()
	idx := index.Build(store, tok)
	terms := []string{"search", "engine", "internet"}

	type variant struct {
		name   string
		scorer exec.Scorer
	}
	variants := []variant{
		{"weighted-sum", exec.DefaultScorer{
			SimpleFn: scoring.SimpleScorer{Weights: []float64{0.8, 0.8, 0.6}},
		}},
		{"tf-idf", tfidfScorer{scoring.TFIDFScorer{IDF: []float64{
			idx.IDF("search"), idx.IDF("engine"), idx.IDF("internet"),
		}}}},
		{"conditional", condScorer{scoring.ConditionalScorer{
			Base:     scoring.SimpleScorer{Weights: []float64{0.8, 0.8, 0.6}},
			Required: []int{0}, // zero unless "search" occurs
		}}},
		{"normalized", normScorer{scoring.NormalizedScorer{
			Base: scoring.SimpleScorer{Weights: []float64{0.8, 0.8, 0.6}},
			Half: 3,
		}}},
	}

	doc := store.Doc(0)
	for _, v := range variants {
		tj := &exec.TermJoin{
			Index: idx,
			Acc:   storage.NewAccessor(store),
			Query: exec.TermQuery{Terms: terms, Scorer: v.scorer},
		}
		tk := exec.NewTopK(3)
		if err := tj.Run(tk.Emit()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s:", v.name)
		for _, n := range tk.Results() {
			fmt.Printf("  <%s>=%.3f", store.Tags.Name(doc.Nodes[n.Ord].Tag), n.Score)
		}
		fmt.Println()
	}

	// Join-condition scoring: count-same (ScoreSim) vs cosine similarity.
	a := parse(`<t>Internet Technologies</t>`)
	b := parse(`<t>Internet Technologies</t>`)
	c := parse(`<t>WWW Technologies and more besides</t>`)
	fmt.Println()
	fmt.Printf("ScoreSim(identical) = %.0f   CosineSim(identical) = %.2f\n",
		scoring.ScoreSim(tok, a, b), scoring.CosineSim(tok, a, b))
	fmt.Printf("ScoreSim(partial)   = %.0f   CosineSim(partial)   = %.2f\n",
		scoring.ScoreSim(tok, a, c), scoring.CosineSim(tok, a, c))
	fmt.Println("\ncount-same grows with shared words; cosine also discounts length,")
	fmt.Println("so the partial match scores much lower under cosine.")
}

func parse(src string) *xmltree.Node {
	n, err := xmltree.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

// Adapters: the exec.Scorer interface carries both scoring modes; these
// wire the simple-mode extension scorers in.
type tfidfScorer struct{ s scoring.TFIDFScorer }

func (t tfidfScorer) Simple(counts []int) float64 { return t.s.Score(counts) }
func (t tfidfScorer) Complex(counts []int, occs []scoring.Occ, nz, total int) float64 {
	return t.s.Score(counts)
}

type condScorer struct{ s scoring.ConditionalScorer }

func (c condScorer) Simple(counts []int) float64 { return c.s.Score(counts) }
func (c condScorer) Complex(counts []int, occs []scoring.Occ, nz, total int) float64 {
	return c.s.Score(counts)
}

type normScorer struct{ s scoring.NormalizedScorer }

func (n normScorer) Simple(counts []int) float64 { return n.s.Score(counts) }
func (n normScorer) Complex(counts []int, occs []scoring.Occ, nz, total int) float64 {
	return n.s.Score(counts)
}

// Granularity selection: the problem Sec. 2 of the paper motivates.
// Relevance lives at nested granularities — whole articles, chapters,
// sections, paragraphs — and returning either only whole documents or only
// leaf paragraphs loses information. This example scores a generated
// corpus with TermJoin, then shows how the stack-based Pick operator
// (Fig. 12) selects an irredundant set of components, and how the score
// histogram (the Sec. 5.3 auxiliary data) turns "the top 5% most relevant"
// into a concrete Pick threshold without sorting.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

func main() {
	cfg := synth.DefaultConfig()
	cfg.Articles = 200
	cfg.Seed = 11
	cfg.ControlTerms = map[string]int{"xmlquery": 400, "ranking": 300}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	store := storage.NewStore()
	if _, err := store.AddTree("corpus.xml", corpus.Root); err != nil {
		log.Fatal(err)
	}
	idx := index.Build(store, tokenize.New())

	// Score every element containing the query terms.
	tj := &exec.TermJoin{
		Index: idx,
		Acc:   storage.NewAccessor(store),
		Query: exec.TermQuery{
			Terms:  []string{"xmlquery", "ranking"},
			Scorer: exec.DefaultScorer{SimpleFn: scoring.SimpleScorer{Weights: []float64{0.8, 0.6}}},
		},
	}
	scored, err := exec.Collect(tj.Run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d elements carry relevance across granularities:\n", len(scored))
	byTag := map[string]int{}
	doc := store.Doc(0)
	for _, n := range scored {
		byTag[store.Tags.Name(doc.Nodes[n.Ord].Tag)]++
	}
	tags := make([]string, 0, len(byTag))
	for t := range byTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	for _, t := range tags {
		fmt.Printf("  <%s>: %d scored elements\n", t, byTag[t])
	}

	// The histogram converts a fraction into a relevance threshold.
	hist := exec.NewScoreHistogram(scored, 64)
	threshold := hist.ThresholdForTopFraction(0.05)
	fmt.Printf("\nhistogram: top 5%% of %d scores ⇒ relevance threshold %.2f (≈%d nodes)\n",
		hist.Total(), threshold, hist.CountAbove(threshold))

	// Pick the irredundant component set with that threshold.
	sort.Slice(scored, func(i, j int) bool { return scored[i].Ord < scored[j].Ord })
	stream := make([]exec.PickNode, len(scored))
	for i, n := range scored {
		rec := doc.Nodes[n.Ord]
		stream[i] = exec.PickNode{
			Ord: n.Ord, Start: rec.Start, End: rec.End, Level: rec.Level,
			Score: n.Score, HasScore: true,
		}
	}
	picked := exec.StackPick(stream, exec.DefaultPickFuncs(threshold))
	fmt.Printf("\nPick returns %d irredundant components (from %d scored elements):\n",
		len(picked), len(scored))
	byTag = map[string]int{}
	for _, p := range picked {
		byTag[store.Tags.Name(doc.Nodes[p.Ord].Tag)]++
	}
	tags = tags[:0]
	for t := range byTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	for _, t := range tags {
		fmt.Printf("  <%s>: %d picked\n", t, byTag[t])
	}

	// The parent/child exclusion property: no picked component contains
	// another picked component at an adjacent level.
	set := map[int32]bool{}
	for _, p := range picked {
		set[p.Ord] = true
	}
	violations := 0
	for _, p := range picked {
		parent := doc.Nodes[p.Ord].Parent
		if parent != storage.NoNode && set[parent] {
			violations++
		}
	}
	fmt.Printf("\nparent/child redundancy violations: %d\n", violations)
}

// Paper figures: reproduces the worked example of the paper's Sections 3
// and 5 on its Figure 1 database, printing the scored trees of Figures 5
// (selection witnesses), 6 (projection), 7 (join) and 8 (projection
// followed by Pick) so the reproduction can be compared against the paper
// side by side.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/algebra"
	"repro/internal/fixture"
	"repro/internal/pattern"
	"repro/internal/scoring"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

var tok = tokenize.NewStemming()

func query2Pattern() *pattern.Pattern {
	p := pattern.NewPattern(1)
	author := p.Root.Child(2, pattern.PC)
	author.Child(3, pattern.PC)
	p.Root.Child(4, pattern.ADStar)
	p.Formula = pattern.Conj(
		pattern.TagEq(1, "article"),
		pattern.TagEq(2, "author"),
		pattern.TagEq(3, "sname"),
		pattern.ContentEq(3, "Doe"),
		pattern.IsElement(4),
	)
	return p
}

func query2Scores() *algebra.ScoreSet {
	return &algebra.ScoreSet{
		Primary: map[int]algebra.NodeScorer{
			4: func(n *xmltree.Node) float64 {
				return scoring.ScoreFoo(tok, n, fixture.PrimaryPhrases, fixture.SecondaryPhrases)
			},
		},
		Secondary: map[int]algebra.ScoreExpr{1: algebra.VarScore(4)},
	}
}

func main() {
	articles, err := fixture.Articles()
	if err != nil {
		log.Fatal(err)
	}
	c := algebra.FromXML(articles)
	p := query2Pattern()
	s := query2Scores()

	fmt.Println("=== Figure 5: three representative selection witnesses ===")
	sel := algebra.Select(c, p, s)
	// Pick the witnesses the paper shows: $4 = p#a18, section#a16, article.
	want := map[string]float64{"p": 0.8, "section": 3.6, "article": 5.6}
	shown := map[string]bool{}
	for _, w := range sel {
		n4 := w.NodesOfVar(4)[0]
		if target, ok := want[n4.Tag]; ok && !shown[n4.Tag] {
			if sc, _ := w.Score(n4); math.Abs(sc-target) < 1e-9 {
				shown[n4.Tag] = true
				fmt.Printf("--- witness with $4 = <%s>[%.1f] ---\n%s", n4.Tag, sc, w)
			}
		}
	}

	fmt.Println("=== Figure 6: projection with PL = {$1, $3, $4} ===")
	proj := algebra.Project(c, p, s, []int{1, 3, 4}, algebra.ProjectOptions{DropZeroIR: true})
	fmt.Print(proj[0])

	fmt.Println()
	fmt.Println("=== Figure 8: projection followed by Pick ===")
	picked := algebra.Pick(proj, algebra.DefaultCriterion(0.8), s)
	fmt.Print(picked[0])

	fmt.Println()
	fmt.Println("=== Figure 7: one result of the Query 3 join ===")
	reviews, err := fixture.Reviews()
	if err != nil {
		log.Fatal(err)
	}
	jp := pattern.NewPattern(1)
	art := jp.Root.Child(2, pattern.AD)
	art.Child(3, pattern.PC)
	au := art.Child(4, pattern.PC)
	au.Child(5, pattern.PC)
	art.Child(6, pattern.ADStar)
	rev := jp.Root.Child(7, pattern.AD)
	rev.Child(8, pattern.PC)
	jp.Formula = pattern.Conj(
		pattern.TagEq(1, algebra.ProdRootTag),
		pattern.TagEq(2, "article"),
		pattern.TagEq(3, "article-title"),
		pattern.TagEq(4, "author"),
		pattern.TagEq(5, "sname"),
		pattern.ContentEq(5, "Doe"),
		pattern.IsElement(6),
		pattern.TagEq(7, "review"),
		pattern.TagEq(8, "title"),
	)
	js := &algebra.ScoreSet{
		Primary: map[int]algebra.NodeScorer{
			6: func(n *xmltree.Node) float64 {
				return scoring.ScoreFoo(tok, n, fixture.PrimaryPhrases, fixture.SecondaryPhrases)
			},
		},
		Join: map[string]algebra.JoinScorer{
			"joinScore": func(b pattern.Binding) float64 {
				return scoring.ScoreSim(tok, b[3], b[8])
			},
		},
		Secondary: map[int]algebra.ScoreExpr{
			2: algebra.VarScore(6),
			1: func(e algebra.ScoreEnv) float64 {
				return scoring.ScoreBar(e.Named["joinScore"], e.Var[6])
			},
		},
	}
	joined := algebra.Join(algebra.FromXML(articles), algebra.FromXML(reviews), jp, js)
	for _, w := range joined {
		n6 := w.NodesOfVar(6)[0]
		n7 := w.NodesOfVar(7)[0]
		id, _ := n7.Attr("id")
		if n6.Tag == "p" && id == "1" {
			if sc, _ := w.Score(n6); sc == 0.8 {
				fmt.Print(w)
				break
			}
		}
	}
	if len(joined) == 0 {
		log.Fatal("join produced nothing")
	}
}

// Phrase search: PhraseFinder over a generated corpus. The example plants
// a control phrase at a known frequency, finds it with the offset-aware
// PhraseFinder access method (Sec. 5.1.2), cross-checks against the Comp3
// composite baseline, and shows how phrase matches feed TermJoin as a
// pseudo-term so whole phrases participate in relevance scoring.
package main

import (
	"fmt"
	"log"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

func main() {
	// A corpus with "vector space" planted 80 times as an adjacent phrase
	// (each term also occurs alone).
	cfg := synth.DefaultConfig()
	cfg.Articles = 120
	cfg.Seed = 7
	cfg.ControlTerms = map[string]int{"vector": 200, "space": 150}
	cfg.Phrases = []synth.PhraseSpec{{T1: "vector", T2: "space", Together: 80}}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	store := storage.NewStore()
	if _, err := store.AddTree("corpus.xml", corpus.Root); err != nil {
		log.Fatal(err)
	}
	idx := index.Build(store, tokenize.New())
	fmt.Printf("corpus: %d nodes, vector=%d space=%d occurrences\n",
		store.NumNodes(), idx.TermFreq("vector"), idx.TermFreq("space"))

	// PhraseFinder: offsets verified during the posting intersection.
	pf := &exec.PhraseFinder{Index: idx, Phrase: []string{"vector", "space"}}
	matches, err := exec.CollectPhrase(pf.Run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PhraseFinder: %d occurrences of \"vector space\"\n", len(matches))

	// The composite baseline re-fetches candidate text; same answer, more
	// store traffic.
	acc := storage.NewAccessor(store)
	c3 := &exec.Comp3{Index: idx, Acc: acc, Phrase: []string{"vector", "space"}}
	m3, err := exec.CollectPhrase(c3.Run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Comp3:        %d occurrences, store traffic: %s\n", len(m3), acc.Stats.String())

	// Feed the phrase into TermJoin as a pseudo-term: every element is
	// scored by how many whole-phrase occurrences its subtree contains.
	tj := &exec.TermJoin{
		Index: idx,
		Acc:   storage.NewAccessor(store),
		Query: exec.TermQuery{
			Terms:        []string{"vector space"},
			PostingLists: [][]index.Posting{exec.PhrasePostings(matches)},
			Scorer:       exec.DefaultScorer{SimpleFn: scoring.SimpleScorer{}},
		},
	}
	topk := exec.NewTopK(5)
	if err := tj.Run(topk.Emit()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop elements by phrase count:")
	for i, n := range topk.Results() {
		doc := store.Doc(n.Doc)
		fmt.Printf("%2d. <%s> ord=%d phrase-count=%.0f\n",
			i+1, store.Tags.Name(doc.Nodes[n.Ord].Tag), n.Ord, n.Score)
	}
}

// Quickstart: load two small XML documents, build the index, and run an
// IR-style query with relevance scoring, granularity selection (Pick), and
// thresholding — the minimal end-to-end tour of the TIX reproduction.
package main

import (
	"fmt"
	"log"

	"repro/internal/db"
	"repro/internal/xmltree"
)

const articles = `
<article>
  <article-title>Internet Technologies</article-title>
  <author id="first"><fname>Jane</fname><sname>Doe</sname></author>
  <chapter><ct>Caching and Replication</ct></chapter>
  <chapter><ct>Streaming Video</ct></chapter>
  <chapter>
    <ct>Search and Retrieval</ct>
    <section><section-title>Search Engine Basics</section-title></section>
    <section><section-title>Information Retrieval Techniques</section-title></section>
    <section>
      <section-title>Examples</section-title>
      <p>Here are some IR based search engines:</p>
      <p>search engine NewsInEssence uses a new information retrieval technology</p>
      <p>semantic information retrieval techniques are also being incorporated into some search engines</p>
    </section>
  </chapter>
</article>`

func main() {
	// A database with the light stemmer, matching the paper's examples.
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", articles); err != nil {
		log.Fatal(err)
	}

	st := d.Stats()
	fmt.Printf("loaded %d document(s): %d nodes, %d distinct terms\n\n",
		st.Documents, st.Nodes, st.Terms)

	// The paper's Query 1: find document components about "search engine";
	// relevance to "internet" and "information retrieval" is desirable but
	// not necessary. Pick selects the right granularity; Threshold keeps
	// high-scoring results.
	results, err := d.Query(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Pick $a using PickFoo($a)
		Sortby(score)
		Threshold $a/@score > 1 stop after 3
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top %d component(s):\n", len(results))
	for i, r := range results {
		fmt.Printf("\n#%d <%s> score=%.2f\n", i+1, r.Node.Tag, r.Score)
		fmt.Print(xmltree.XMLString(r.Node))
	}
}

// Similarity join: the paper's Query 3 — find relevant components in
// articles.xml, and for articles containing them, find reviews from
// reviews.xml whose titles are similar. The join condition itself is
// scored (ScoreSim counts shared title words), and the final score
// combines the similarity with the component's relevance through ScoreBar
// (Fig. 9), exactly as the scored pattern tree of Fig. 4 prescribes.
package main

import (
	"fmt"
	"log"

	"repro/internal/db"
	"repro/internal/fixture"
	"repro/internal/xmltree"
)

func main() {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		log.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		log.Fatal(err)
	}

	results, err := d.SimilarityJoin(db.SimilarityJoinSpec{
		LeftDoc:   "articles.xml",
		RightDoc:  "reviews.xml",
		LeftRoot:  "article",
		RightRoot: "review",
		LeftKey:   "article-title",
		RightKey:  "title",
		Primary:   []string{"search engine"},
		Secondary: []string{"internet", "information retrieval"},
		MinSim:    1, // "Threshold simScore > 1" of Fig. 10
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d joined result(s), best first:\n", len(results))
	for i, r := range results {
		if i >= 5 {
			fmt.Printf("... and %d more\n", len(results)-5)
			break
		}
		reviewTitle := ""
		if t := r.Right.FirstTag("title"); t != nil {
			reviewTitle = t.AllText()
		}
		fmt.Printf("\n#%d combined=%.2f (component=%.2f, title-sim=%.0f)\n",
			i+1, r.Score, r.ComponentScore, r.Sim)
		fmt.Printf("   review: %q\n", reviewTitle)
		fmt.Printf("   component <%s>:\n", r.Component.Tag)
		if r.Component.Tag == "p" {
			fmt.Printf("   %s\n", r.Component.AllText())
		} else {
			fmt.Print(xmltree.XMLString(r.Component))
		}
	}
}

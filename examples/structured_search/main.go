// Structured search: the paper's Query 2 — an IR-style search restricted
// by a structural database predicate (articles whose author is named
// "Doe"). Demonstrates how the extended-XQuery dialect mixes boolean
// structural filtering (what databases are good at) with relevance-ranked
// retrieval (what IR is good at), and how the Pick operator chooses the
// result granularity: the answer is a chapter, not the whole article and
// not individual paragraphs.
package main

import (
	"fmt"
	"log"

	"repro/internal/db"
	"repro/internal/fixture"
	"repro/internal/xmltree"
)

func main() {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		log.Fatal(err)
	}

	query := `
		For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Pick $a using PickFoo($a)
		Return <result><score>$a/@score</score>{ $a }</result>
		Sortby(score)
		Threshold $a/@score > 4 stop after 5
	`
	fmt.Println("Query 2 (Fig. 10 of the paper):")
	fmt.Println(query)

	results, err := d.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("result %d: <%s> score=%.2f\n", i+1, r.Node.Tag, r.Score)
		fmt.Print(xmltree.XMLString(r.Node))
	}

	// Contrast: the same search without the Pick clause returns every
	// relevant granularity — the whole article, the chapter, sections and
	// paragraphs, with overlapping content.
	noPick, err := d.Query(`
		For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Sortby(score)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout Pick, %d overlapping results:\n", len(noPick))
	for _, r := range noPick {
		fmt.Printf("  <%s> score=%.2f\n", r.Node.Tag, r.Score)
	}

	// And the structural predicate alone filters precisely: an author
	// named Smith matches nothing.
	smith, err := d.Query(`
		For $a in document("articles.xml")//article[/author/sname/text()="Smith"]/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {})
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith author=Smith the same search returns %d results\n", len(smith))
}

// Package algebra implements TIX, the bulk algebra for querying text in XML
// (Sec. 3 of the paper). TIX operators manipulate collections of scored
// data trees: rooted ordered labeled trees in which every node may carry a
// real-valued score (Definition 1); the score of a tree is the score of its
// root.
//
// The operators implemented here are the logical layer: Scored Selection
// (σ), Scored Projection (π), Product/Scored Join (×, ⋈), Threshold (τ),
// Pick (ρ), Union and Group. They are defined for clarity and serve as the
// executable specification that the physical access methods of
// internal/exec (TermJoin, PhraseFinder, the stack-based Pick) are tested
// against. The physical operators produce the same results at scale.
package algebra

import (
	"fmt"
	"sort"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// ScoredTree is a scored data tree (Definition 1). Scores lives beside the
// tree so that plain xmltree values remain the single tree representation
// throughout the system; a node absent from Scores has a null score (the
// traditional unscored data tree is the special case of an empty map).
// VarNodes records which nodes each pattern variable produced, for
// operators (Threshold, Pick) whose conditions reference query IR-nodes; a
// node may appear under several variables (e.g. an article bound by both
// $1 and, through an ad* edge, $4).
type ScoredTree struct {
	Root     *xmltree.Node
	Scores   map[*xmltree.Node]float64
	VarNodes map[int][]*xmltree.Node
}

// NewScoredTree wraps an unscored data tree.
func NewScoredTree(root *xmltree.Node) *ScoredTree {
	return &ScoredTree{
		Root:     root,
		Scores:   map[*xmltree.Node]float64{},
		VarNodes: map[int][]*xmltree.Node{},
	}
}

// Score returns the score of n and whether n carries one.
func (t *ScoredTree) Score(n *xmltree.Node) (float64, bool) {
	s, ok := t.Scores[n]
	return s, ok
}

// RootScore returns the score of the tree (the score of its root), or 0 if
// the root is unscored.
func (t *ScoredTree) RootScore() float64 { return t.Scores[t.Root] }

// SetScore assigns a score to n.
func (t *ScoredTree) SetScore(n *xmltree.Node, s float64) { t.Scores[n] = s }

// NodesOfVar returns the nodes of the tree bound to pattern variable v, in
// the order they were recorded (document order for selection/projection
// outputs).
func (t *ScoredTree) NodesOfVar(v int) []*xmltree.Node { return t.VarNodes[v] }

// AddVarNode records that n was bound to variable v, once.
func (t *ScoredTree) AddVarNode(v int, n *xmltree.Node) {
	for _, m := range t.VarNodes[v] {
		if m == n {
			return
		}
	}
	t.VarNodes[v] = append(t.VarNodes[v], n)
}

// IsIRNode reports whether n carries a score in this tree.
func (t *ScoredTree) IsIRNode(n *xmltree.Node) bool {
	_, ok := t.Scores[n]
	return ok
}

// String renders the tree with scores for diagnostics.
func (t *ScoredTree) String() string {
	var rec func(n *xmltree.Node, d int) string
	rec = func(n *xmltree.Node, d int) string {
		pad := ""
		for i := 0; i < d; i++ {
			pad += "  "
		}
		label := n.Tag
		if n.Kind == xmltree.Text {
			label = fmt.Sprintf("%q", n.Text)
		}
		s := pad + label
		if sc, ok := t.Scores[n]; ok {
			s += fmt.Sprintf("[%.2f]", sc)
		}
		s += "\n"
		for _, c := range n.Children {
			s += rec(c, d+1)
		}
		return s
	}
	return rec(t.Root, 0)
}

// Collection is an ordered collection of scored data trees — the carrier of
// every TIX operator.
type Collection []*ScoredTree

// FromXML wraps data trees into an unscored collection.
func FromXML(roots ...*xmltree.Node) Collection {
	out := make(Collection, len(roots))
	for i, r := range roots {
		out[i] = NewScoredTree(r)
	}
	return out
}

// SortByRootScore orders the collection by descending root score (the
// Sortby(score) clause of the XQuery extension). Ties preserve the prior
// order (stable).
func (c Collection) SortByRootScore() Collection {
	out := append(Collection(nil), c...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].RootScore() > out[j].RootScore() })
	return out
}

// NodeScorer scores a data node from its content (a primary IR-node's
// scoring function, e.g. ScoreFoo applied over alltext()).
type NodeScorer func(*xmltree.Node) float64

// JoinScorer scores a join condition match from the full binding (e.g.
// ScoreSim over two bound title nodes).
type JoinScorer func(pattern.Binding) float64

// ScoreEnv carries already-computed scores during evaluation of secondary
// scoring rules: per-variable scores and named join-condition scores.
type ScoreEnv struct {
	Var   map[int]float64
	Named map[string]float64
}

// ScoreExpr computes a secondary IR-node's score from the environment (e.g.
// $1.score = $4.score, or $1.score = ScoreBar($joinScore, $6.score)).
type ScoreExpr func(ScoreEnv) float64

// VarScore returns the ScoreExpr that copies another variable's score —
// the most common secondary rule ($1.score = $4.score). Under projection,
// where a variable has many matches, the environment holds the highest
// score among them, per Sec. 3.2.2.
func VarScore(v int) ScoreExpr {
	return func(e ScoreEnv) float64 { return e.Var[v] }
}

// NamedScore returns the ScoreExpr that reads a named join score.
func NamedScore(name string) ScoreExpr {
	return func(e ScoreEnv) float64 { return e.Named[name] }
}

// ScoreSet is the S component of a scored pattern tree (Definition 2): how
// to compute the scores of IR-nodes. Variables in Primary are primary
// query IR-nodes (an IR-style predicate applies to the node directly);
// variables in Secondary are secondary IR-nodes whose scores derive from
// other scores. Join holds scoring functions attached to join conditions,
// producing named scores ($joinScore in Fig. 4).
type ScoreSet struct {
	Primary   map[int]NodeScorer
	Secondary map[int]ScoreExpr
	Join      map[string]JoinScorer
}

// IsIRVar reports whether v is an IR variable (primary or secondary).
func (s *ScoreSet) IsIRVar(v int) bool {
	if s == nil {
		return false
	}
	if _, ok := s.Primary[v]; ok {
		return true
	}
	_, ok := s.Secondary[v]
	return ok
}

// evalBinding computes every score for one embedding: primary scores from
// the bound nodes, join scores from the binding, then secondary scores in
// ascending variable order (so chains that follow variable order resolve).
func (s *ScoreSet) evalBinding(b pattern.Binding) ScoreEnv {
	env := ScoreEnv{Var: map[int]float64{}, Named: map[string]float64{}}
	if s == nil {
		return env
	}
	for v, fn := range s.Primary {
		if n, ok := b[v]; ok {
			env.Var[v] = fn(n)
		}
	}
	for name, fn := range s.Join {
		env.Named[name] = fn(b)
	}
	vars := make([]int, 0, len(s.Secondary))
	for v := range s.Secondary {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		env.Var[v] = s.Secondary[v](env)
	}
	return env
}

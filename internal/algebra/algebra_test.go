package algebra

import (
	"math"
	"testing"

	"repro/internal/fixture"
	"repro/internal/pattern"
	"repro/internal/scoring"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// tok reproduces the paper's matching behaviour ("search engines" counts as
// an occurrence of "search engine").
var tok = tokenize.NewStemming()

// query2Pattern is the scored pattern tree of Figure 3 (T and F), with $4
// restricted to elements as the XQuery descendant-or-self::* step implies.
func query2Pattern() *pattern.Pattern {
	p := pattern.NewPattern(1)
	author := p.Root.Child(2, pattern.PC)
	author.Child(3, pattern.PC)
	p.Root.Child(4, pattern.ADStar)
	p.Formula = pattern.Conj(
		pattern.TagEq(1, "article"),
		pattern.TagEq(2, "author"),
		pattern.TagEq(3, "sname"),
		pattern.ContentEq(3, "Doe"),
		pattern.IsElement(4),
	)
	return p
}

// query2Scores is the S component of Figure 3: $4 is a primary IR-node
// scored by ScoreFoo; $1 is a secondary IR-node with $1.score = $4.score.
func query2Scores() *ScoreSet {
	return &ScoreSet{
		Primary: map[int]NodeScorer{
			4: func(n *xmltree.Node) float64 {
				return scoring.ScoreFoo(tok, n, fixture.PrimaryPhrases, fixture.SecondaryPhrases)
			},
		},
		Secondary: map[int]ScoreExpr{1: VarScore(4)},
	}
}

func findByOrd(t *ScoredTree, tag string, i int) *xmltree.Node {
	nodes := t.Root.FindTag(tag)
	if i < len(nodes) {
		return nodes[i]
	}
	return nil
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSelectQuery2ReproducesFigure5(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	c := FromXML(articles)
	out := Select(c, query2Pattern(), query2Scores())

	// One witness per element of the article ($4 over elements).
	elems := articles.FindAll(func(n *xmltree.Node) bool { return n.Kind == xmltree.Element })
	if len(out) != len(elems) {
		t.Fatalf("witnesses = %d, want %d", len(out), len(elems))
	}

	ps := fixture.Paragraphs(articles)
	sec16 := fixture.ExamplesSection(articles)
	ch10 := fixture.ThirdChapter(articles)

	// Index witnesses by the source Ord of their $4 binding.
	byOrd := map[int32]*ScoredTree{}
	for _, w := range out {
		n4 := w.NodesOfVar(4)[0]
		byOrd[n4.Ord] = w
	}

	cases := []struct {
		name string
		ord  int32
		want float64
	}{
		{"p#a18", ps[0].Ord, 0.8},      // Fig. 5(a)
		{"p#a19", ps[1].Ord, 1.4},      // Fig. 6 scores
		{"p#a20", ps[2].Ord, 1.4},      //
		{"sec#a16", sec16.Ord, 3.6},    // Fig. 5(b)
		{"ch#a10", ch10.Ord, 5.0},      // Fig. 6/8
		{"article", articles.Ord, 5.6}, // Fig. 5(c)
	}
	for _, cse := range cases {
		w := byOrd[cse.ord]
		if w == nil {
			t.Fatalf("%s: no witness", cse.name)
		}
		n4 := w.NodesOfVar(4)[0]
		got, ok := w.Score(n4)
		if !ok || !approx(got, cse.want) {
			t.Errorf("%s: $4 score = %v (%v), want %v", cse.name, got, ok, cse.want)
		}
		// Secondary: the witness root (article) carries $4's score.
		if rs := w.RootScore(); !approx(rs, cse.want) {
			t.Errorf("%s: root score = %v, want %v", cse.name, rs, cse.want)
		}
		// Witness structure: root is the article, containing author→sname.
		if w.Root.Tag != "article" {
			t.Errorf("%s: witness root = %s", cse.name, w.Root.Tag)
		}
		if w.Root.FirstTag("sname") == nil {
			t.Errorf("%s: witness lost sname", cse.name)
		}
	}

	// Fig. 5(a) structure check: article → {author→sname, p}; chapter and
	// section are elided because they are not bound.
	w := byOrd[ps[0].Ord]
	if len(w.Root.Children) != 2 {
		t.Errorf("witness(a18) children = %d, want 2 (author, p)", len(w.Root.Children))
	}
	if w.Root.FirstTag("chapter") != nil || w.Root.FirstTag("section") != nil {
		t.Errorf("witness(a18) must elide unbound interior nodes")
	}
}

func TestProjectQuery2ReproducesFigure6(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	out := Project(FromXML(articles), query2Pattern(), query2Scores(),
		[]int{1, 3, 4}, ProjectOptions{DropZeroIR: true})
	if len(out) != 1 {
		t.Fatalf("projection output = %d trees, want 1", len(out))
	}
	pt := out[0]

	// Root is the article with the secondary score 5.6 (the highest $4
	// score it can achieve).
	if pt.Root.Tag != "article" {
		t.Fatalf("root = %s", pt.Root.Tag)
	}
	if !approx(pt.RootScore(), 5.6) {
		t.Errorf("root score = %v, want 5.6", pt.RootScore())
	}

	// Exactly the 12 nodes of Fig. 6.
	count := 0
	pt.Root.Walk(func(*xmltree.Node) bool { count++; return true })
	if count != 12 {
		t.Errorf("projected tree size = %d, want 12\n%s", count, pt)
	}

	// Scores per Fig. 6.
	checks := []struct {
		tag  string
		idx  int
		want float64
	}{
		{"article-title", 0, 0.6},
		{"chapter", 0, 5.0},
		{"section", 0, 0.8},
		{"section", 1, 0.6},
		{"section", 2, 3.6},
		{"section-title", 0, 0.8},
		{"section-title", 1, 0.6},
		{"p", 0, 0.8},
		{"p", 1, 1.4},
		{"p", 2, 1.4},
	}
	for _, c := range checks {
		n := findByOrd(pt, c.tag, c.idx)
		if n == nil {
			t.Fatalf("%s[%d] missing from projection\n%s", c.tag, c.idx, pt)
		}
		got, ok := pt.Score(n)
		if !ok || !approx(got, c.want) {
			t.Errorf("%s[%d] score = %v (%v), want %v", c.tag, c.idx, got, ok, c.want)
		}
	}

	// sname retained without a score ($3 is not an IR-node); author not in
	// PL and hence dropped, so sname hangs directly off the article.
	sname := pt.Root.FirstTag("sname")
	if sname == nil {
		t.Fatalf("sname missing")
	}
	if _, ok := pt.Score(sname); ok {
		t.Errorf("sname must not carry a score")
	}
	if sname.Parent != pt.Root {
		t.Errorf("sname should collapse onto article, parent = %v", sname.Parent)
	}
	if pt.Root.FirstTag("author") != nil {
		t.Errorf("author must be projected away")
	}
	// Zero-scored elements (e.g. the first two chapters) are dropped.
	if got := len(pt.Root.FindTag("chapter")); got != 1 {
		t.Errorf("chapters in projection = %d, want 1", got)
	}
}

func TestPickReproducesFigure8(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	projected := Project(FromXML(articles), query2Pattern(), query2Scores(),
		[]int{1, 3, 4}, ProjectOptions{DropZeroIR: true})
	pt := projected[0]

	picked := PickedNodes(pt, DefaultCriterion(0.8))
	var tags []string
	for _, n := range picked {
		tags = append(tags, n.Tag)
	}
	// Picked set: chapter #a10, section-title #a13, p #a18, #a19, #a20.
	want := []string{"chapter", "section-title", "p", "p", "p"}
	if len(tags) != len(want) {
		t.Fatalf("picked = %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("picked = %v, want %v", tags, want)
		}
	}

	out := Pick(projected, DefaultCriterion(0.8), query2Scores())
	rt := out[0]
	// Structure of Fig. 8: article root with sname and the chapter; the
	// section-title and paragraphs hoist under the chapter; sections #a12,
	// #a14, #a16 and article-title #a2 are gone.
	if rt.Root.Tag != "article" {
		t.Fatalf("root = %s", rt.Root.Tag)
	}
	if rt.Root.FirstTag("section") != nil {
		t.Errorf("sections must be eliminated\n%s", rt)
	}
	if rt.Root.FirstTag("article-title") != nil {
		t.Errorf("article-title must be eliminated (score 0.6 < 0.8)\n%s", rt)
	}
	ch := rt.Root.FirstTag("chapter")
	if ch == nil {
		t.Fatalf("chapter missing\n%s", rt)
	}
	if got := len(ch.FindTag("p")); got != 3 {
		t.Errorf("paragraphs under chapter = %d, want 3", got)
	}
	if got := len(ch.FindTag("section-title")); got != 1 {
		t.Errorf("section-titles under chapter = %d, want 1", got)
	}
	if rt.Root.FirstTag("sname") == nil {
		t.Errorf("sname (non-IR content) must remain")
	}
	// Rescoring: with the article's own 5.6 match pruned, the root score
	// becomes the best remaining $4 score, 5.0 (Fig. 8).
	if !approx(rt.RootScore(), 5.0) {
		t.Errorf("root score after pick = %v, want 5.0", rt.RootScore())
	}
	if s, _ := rt.Score(ch); !approx(s, 5.0) {
		t.Errorf("chapter score = %v, want 5.0", s)
	}
}

// TestExample31Pipeline follows Example 3.1: projection, pick, selection,
// threshold — the top result is the chapter #a10.
func TestExample31Pipeline(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	projected := Project(FromXML(articles), query2Pattern(), query2Scores(),
		[]int{1, 3, 4}, ProjectOptions{DropZeroIR: true})
	pickedC := Pick(projected, DefaultCriterion(0.8), query2Scores())

	// Selection over the picked tree: one result per remaining primary
	// IR-node. Use a pattern binding $4 to any scored element under the
	// root.
	sel := pattern.NewPattern(1)
	sel.Root.Child(4, pattern.ADStar)
	selFormula := pattern.Conj(pattern.TagEq(1, "article"), pattern.IsElement(4))
	sel.Formula = selFormula
	scores := &ScoreSet{
		Primary: map[int]NodeScorer{4: func(n *xmltree.Node) float64 {
			return scoring.ScoreFoo(tok, n, fixture.PrimaryPhrases, fixture.SecondaryPhrases)
		}},
		Secondary: map[int]ScoreExpr{1: VarScore(4)},
	}
	// Rescore from original content is impossible on the pruned tree (text
	// was projected away), so score by looking up the pick output's scores:
	// bind and reuse recorded scores.
	pt := pickedC[0]
	results := Select(pickedC, sel, &ScoreSet{
		Primary: map[int]NodeScorer{4: func(n *xmltree.Node) float64 {
			// Scores survive on the pick output's nodes.
			for sn, s := range pt.Scores {
				if sn.Ord == n.Ord {
					return s
				}
			}
			return 0
		}},
		Secondary: scores.Secondary,
	})
	// Five primary IR-nodes remain (chapter, section-title, 3 paragraphs)
	// plus the article root itself (rescored to 5.0 but still an element
	// match for $4).
	top := TopTrees(results, 1)
	if len(top) != 1 {
		t.Fatalf("no top result")
	}
	n4 := top[0].NodesOfVar(4)[0]
	if n4.Tag != "chapter" && n4.Tag != "article" {
		t.Errorf("top result = %s[%f], want the chapter (or its equal-scored article root)", n4.Tag, top[0].RootScore())
	}
	if !approx(top[0].RootScore(), 5.0) {
		t.Errorf("top score = %f, want 5.0", top[0].RootScore())
	}
}

// TestJoinReproducesFigure7 runs Query 3's join: articles × reviews with a
// title-similarity join score and ScoreBar root scoring.
func TestJoinReproducesFigure7(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	reviews := mustParse(fixture.ReviewsXML)

	p := pattern.NewPattern(1)
	art := p.Root.Child(2, pattern.PC)
	art.Child(3, pattern.PC)
	au := art.Child(4, pattern.PC)
	au.Child(5, pattern.PC)
	art.Child(6, pattern.ADStar)
	rev := p.Root.Child(7, pattern.AD)
	rev.Child(8, pattern.PC)
	p.Formula = pattern.Conj(
		pattern.TagEq(1, ProdRootTag),
		pattern.TagEq(2, "article"),
		pattern.TagEq(3, "article-title"),
		pattern.TagEq(4, "author"),
		pattern.TagEq(5, "sname"),
		pattern.ContentEq(5, "Doe"),
		pattern.IsElement(6),
		pattern.TagEq(7, "review"),
		pattern.TagEq(8, "title"),
	)
	scores := &ScoreSet{
		Primary: map[int]NodeScorer{
			6: func(n *xmltree.Node) float64 {
				return scoring.ScoreFoo(tok, n, fixture.PrimaryPhrases, fixture.SecondaryPhrases)
			},
		},
		Join: map[string]JoinScorer{
			"joinScore": func(b pattern.Binding) float64 {
				return scoring.ScoreSim(tok, b[3], b[8])
			},
		},
		Secondary: map[int]ScoreExpr{
			2: VarScore(6),
			1: func(e ScoreEnv) float64 { return scoring.ScoreBar(e.Named["joinScore"], e.Var[6]) },
		},
	}
	out := Join(FromXML(articles), FromXML(reviews), p, scores)
	if len(out) == 0 {
		t.Fatalf("join produced nothing")
	}

	// Find the Fig. 7 result: $6 = p#a18 (score 0.8) with review id=1
	// (identical title, ScoreSim = 2) → root 2.8.
	found := false
	for _, w := range out {
		n6 := w.NodesOfVar(6)[0]
		n7 := w.NodesOfVar(7)[0]
		id, _ := n7.Attr("id")
		if n6.Tag == "p" && id == "1" {
			if s, _ := w.Score(n6); approx(s, 0.8) {
				if !approx(w.RootScore(), 2.8) {
					t.Errorf("Fig.7 root score = %v, want 2.8", w.RootScore())
				}
				if w.Root.Tag != ProdRootTag {
					t.Errorf("root tag = %s", w.Root.Tag)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Errorf("Fig. 7 witness (p#a18 × review 1) not found among %d results", len(out))
	}

	// Review 2 shares one (stemmed) title word → joinScore 1; paired with
	// p#a18 the root scores 1.8.
	for _, w := range out {
		n6 := w.NodesOfVar(6)[0]
		n7 := w.NodesOfVar(7)[0]
		id, _ := n7.Attr("id")
		if n6.Tag == "p" && id == "2" {
			if s, _ := w.Score(n6); approx(s, 0.8) {
				if !approx(w.RootScore(), 1.8) {
					t.Errorf("review-2 root score = %v, want 1.8", w.RootScore())
				}
			}
		}
	}
}

func TestProductShape(t *testing.T) {
	a := FromXML(mustParse(`<a><x>1</x></a>`), mustParse(`<a><x>2</x></a>`))
	b := FromXML(mustParse(`<b/>`))
	out := Product(a, b)
	if len(out) != 2 {
		t.Fatalf("product size = %d, want 2", len(out))
	}
	for _, tr := range out {
		if tr.Root.Tag != ProdRootTag || len(tr.Root.Children) != 2 {
			t.Errorf("bad product tree: %s", tr)
		}
		if err := xmltree.Validate(tr.Root); err != nil {
			t.Errorf("product tree not renumbered: %v", err)
		}
	}
	// Deep copies: mutating an output must not affect inputs.
	out[0].Root.Children[0].FirstTag("x").Children[0].Text = "mutated"
	if a[0].Root.FirstTag("x").AllText() != "1" {
		t.Errorf("product aliased its input")
	}
}

func TestThresholdV(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	sel := Select(FromXML(articles), query2Pattern(), query2Scores())
	out := Threshold(sel, []ThresholdCond{V(4, 4.0)})
	// Only article (5.6) and chapter (5.0) exceed 4.0.
	if len(out) != 2 {
		t.Fatalf("threshold V=4 kept %d, want 2", len(out))
	}
	for _, w := range out {
		if s, _ := w.Score(w.NodesOfVar(4)[0]); s <= 4.0 {
			t.Errorf("kept score %v <= 4", s)
		}
	}
}

func TestThresholdK(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	sel := Select(FromXML(articles), query2Pattern(), query2Scores())
	out := Threshold(sel, []ThresholdCond{K(4, 3)})
	// Top 3 $4 scores: 5.6, 5.0, 3.6.
	if len(out) != 3 {
		t.Fatalf("threshold K=3 kept %d, want 3", len(out))
	}
	scoresSeen := map[float64]bool{}
	for _, w := range out {
		s, _ := w.Score(w.NodesOfVar(4)[0])
		scoresSeen[math.Round(s*10)/10] = true
	}
	for _, want := range []float64{5.6, 5.0, 3.6} {
		if !scoresSeen[want] {
			t.Errorf("top-3 missing score %v (have %v)", want, scoresSeen)
		}
	}
	// K=0 keeps nothing.
	if got := Threshold(sel, []ThresholdCond{K(4, 0)}); len(got) != 0 {
		t.Errorf("K=0 kept %d", len(got))
	}
	// K larger than population keeps everything.
	if got := Threshold(sel, []ThresholdCond{K(4, 10000)}); len(got) != len(sel) {
		t.Errorf("huge K kept %d, want %d", len(got), len(sel))
	}
}

func TestThresholdMultipleConds(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	sel := Select(FromXML(articles), query2Pattern(), query2Scores())
	out := Threshold(sel, []ThresholdCond{V(4, 4.0), K(4, 1)})
	if len(out) != 1 {
		t.Fatalf("V∧K kept %d, want 1", len(out))
	}
	if s, _ := out[0].Score(out[0].NodesOfVar(4)[0]); !approx(s, 5.6) {
		t.Errorf("winner score %v", s)
	}
}

func TestUnionPlainAndMerged(t *testing.T) {
	mk := func(tag string, ord int32, score float64) *ScoredTree {
		n := xmltree.NewElement(tag)
		xmltree.Number(n)
		n.Ord = ord
		st := NewScoredTree(n)
		st.SetScore(n, score)
		return st
	}
	a := Collection{mk("x", 1, 1.0), mk("x", 2, 2.0)}
	b := Collection{mk("x", 2, 3.0), mk("x", 5, 4.0)}
	plain := Union(a, b, nil)
	if len(plain) != 4 {
		t.Fatalf("plain union = %d", len(plain))
	}
	merged := Union(a, b, WeightedSum(1, 1))
	if len(merged) != 3 {
		t.Fatalf("merged union = %d, want 3", len(merged))
	}
	var got []float64
	for _, t2 := range merged {
		got = append(got, t2.RootScore())
	}
	// ord1: 1.0 (left only, untouched); ord2: 2+3=5; ord5: 0+4=4.
	want := map[float64]bool{1.0: true, 5.0: true, 4.0: true}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected merged score %v in %v", g, got)
		}
	}
}

func TestSortByRootScoreStable(t *testing.T) {
	mk := func(score float64) *ScoredTree {
		n := xmltree.NewElement("x")
		xmltree.Number(n)
		st := NewScoredTree(n)
		st.SetScore(n, score)
		return st
	}
	a, b, c := mk(1), mk(3), mk(3)
	sorted := Collection{a, b, c}.SortByRootScore()
	if sorted[0] != b || sorted[1] != c || sorted[2] != a {
		t.Errorf("sort wrong/unstable")
	}
}

func TestPickWorthyRootSubsumes(t *testing.T) {
	// Root with two relevant children is worth returning; the final flush
	// returns the root and only its same-class survivors, so the children
	// are subsumed (Fig. 12's ending).
	root := mustParse(`<r><a>x</a><a>y</a></r>`)
	st := NewScoredTree(root)
	for _, n := range root.FindTag("a") {
		st.SetScore(n, 1.0)
	}
	st.SetScore(root, 1.0)
	picked := PickedNodes(st, DefaultCriterion(0.8))
	if len(picked) != 1 || picked[0] != root {
		t.Fatalf("picked = %v, want just the worthy root", picked)
	}
}

func TestPickHorizontalDedup(t *testing.T) {
	// Unworthy root (2 of 4 scored children relevant — exactly 50%, not
	// more) emits the two relevant same-class siblings; horizontal dedup
	// keeps only the first.
	root := mustParse(`<r><a>x</a><a>y</a><a>z</a><a>w</a></r>`)
	st := NewScoredTree(root)
	as := root.FindTag("a")
	st.SetScore(as[0], 1.0)
	st.SetScore(as[1], 1.0)
	st.SetScore(as[2], 0.1)
	st.SetScore(as[3], 0.1)
	st.SetScore(root, 1.0)
	pc := DefaultCriterion(0.8)
	picked := PickedNodes(st, pc)
	if len(picked) != 2 {
		t.Fatalf("picked = %d nodes, want the 2 relevant siblings", len(picked))
	}
	pc.HorizontalDedup = true
	picked = PickedNodes(st, pc)
	if len(picked) != 1 || picked[0] != as[0] {
		t.Fatalf("with dedup picked = %v, want just the first sibling", picked)
	}
}

func TestScoredTreeBasics(t *testing.T) {
	root := mustParse(`<a><b/></a>`)
	st := NewScoredTree(root)
	if st.RootScore() != 0 {
		t.Errorf("unscored root score = %v", st.RootScore())
	}
	if _, ok := st.Score(root); ok {
		t.Errorf("unscored node reports a score")
	}
	st.SetScore(root, 2.5)
	if s, ok := st.Score(root); !ok || s != 2.5 {
		t.Errorf("SetScore failed")
	}
	st.AddVarNode(1, root)
	st.AddVarNode(1, root) // dedup
	if len(st.NodesOfVar(1)) != 1 {
		t.Errorf("AddVarNode did not dedup")
	}
	if !st.IsIRNode(root) || st.IsIRNode(root.Children[0]) {
		t.Errorf("IsIRNode wrong")
	}
	if st.String() == "" {
		t.Errorf("empty String()")
	}
}

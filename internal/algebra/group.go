package algebra

import (
	"sort"

	"repro/internal/xmltree"
)

// GroupRootTag is the tag of the synthetic root created by GroupBy, after
// TAX's grouping operator which TIX inherits.
const GroupRootTag = "tix_group_root"

// GroupBy is the TAX-style grouping operator over a collection: input
// trees are partitioned by the grouping basis (an empty basis — a key
// function returning the same value for every tree — yields a single
// group), and each group becomes one output tree whose synthetic group
// root has the group's members as ordered subtrees. The ordering function
// orders members within their group; a nil order keeps input order.
//
// Scores and variable annotations of the members carry over; the group
// root itself is unscored.
func GroupBy(c Collection, key func(*ScoredTree) string, order func(a, b *ScoredTree) bool) Collection {
	if key == nil {
		key = func(*ScoredTree) string { return "" }
	}
	var keys []string
	groups := map[string][]*ScoredTree{}
	for _, t := range c {
		k := key(t)
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], t)
	}
	sort.Strings(keys)
	out := make(Collection, 0, len(keys))
	for _, k := range keys {
		members := groups[k]
		if order != nil {
			sort.SliceStable(members, func(i, j int) bool { return order(members[i], members[j]) })
		}
		root := xmltree.NewElement(GroupRootTag)
		st := NewScoredTree(root)
		for _, m := range members {
			cm, mapping := deepCloneWithMap(m.Root)
			root.AppendChild(cm)
			copyAnnotations(st, m, mapping)
		}
		xmltree.Number(root)
		out = append(out, st)
	}
	return out
}

// ByScoreDesc is the ordering function that sorts group members by
// descending root score.
func ByScoreDesc(a, b *ScoredTree) bool { return a.RootScore() > b.RootScore() }

// LeftmostK is the projection that retains only the leftmost k subtrees of
// a group root (the paper's expression of rank-based thresholding,
// Sec. 3.3.1: "a projection is then applied to retain the leftmost K
// subtrees, which correspond to the top-K results").
func LeftmostK(t *ScoredTree, k int) *ScoredTree {
	if k < 0 {
		k = 0
	}
	root := xmltree.NewElement(t.Root.Tag)
	root.Attrs = append([]xmltree.Attr(nil), t.Root.Attrs...)
	st := NewScoredTree(root)
	for i, c := range t.Root.Children {
		if i >= k {
			break
		}
		cm, mapping := deepCloneWithMap(c)
		root.AppendChild(cm)
		for n, s := range t.Scores {
			if cl, ok := mapping[n]; ok {
				st.Scores[cl] = s
			}
		}
		for v, nodes := range t.VarNodes {
			for _, n := range nodes {
				if cl, ok := mapping[n]; ok {
					st.AddVarNode(v, cl)
				}
			}
		}
	}
	xmltree.Number(root)
	return st
}

// TopKViaGrouping expresses the Threshold operator's K condition through
// grouping, as Sec. 3.3.1 describes: group the whole collection with an
// empty grouping basis ordered by score, keep the leftmost k subtrees, and
// return them as a collection again. Modulo output order (best first), the
// result is the same set of trees Threshold(c, K(v, k)) retains when every
// tree carries exactly one data IR-node for v.
func TopKViaGrouping(c Collection, k int) Collection {
	grouped := GroupBy(c, nil, ByScoreDesc)
	if len(grouped) == 0 {
		return nil
	}
	top := LeftmostK(grouped[0], k)
	// Ungroup: each child of the group root becomes a collection member.
	out := make(Collection, 0, len(top.Root.Children))
	for _, child := range top.Root.Children {
		st := NewScoredTree(child)
		child.Parent = nil
		for n, s := range top.Scores {
			if child.Contains(n) {
				st.Scores[n] = s
			}
		}
		for v, nodes := range top.VarNodes {
			for _, n := range nodes {
				if child.Contains(n) {
					st.AddVarNode(v, n)
				}
			}
		}
		out = append(out, st)
	}
	return out
}

package algebra

import (
	"math"
	"testing"

	"repro/internal/fixture"
	"repro/internal/xmltree"
)

func mkScored(tag string, score float64) *ScoredTree {
	n := xmltree.NewElement(tag)
	n.AppendChild(xmltree.NewText(tag))
	xmltree.Number(n)
	st := NewScoredTree(n)
	st.SetScore(n, score)
	st.AddVarNode(1, n)
	return st
}

func TestGroupByEmptyBasis(t *testing.T) {
	c := Collection{mkScored("a", 1), mkScored("b", 3), mkScored("c", 2)}
	out := GroupBy(c, nil, ByScoreDesc)
	if len(out) != 1 {
		t.Fatalf("groups = %d, want 1", len(out))
	}
	g := out[0]
	if g.Root.Tag != GroupRootTag {
		t.Errorf("root tag = %s", g.Root.Tag)
	}
	if len(g.Root.Children) != 3 {
		t.Fatalf("members = %d", len(g.Root.Children))
	}
	// Ordered by descending score: b, c, a.
	wantTags := []string{"b", "c", "a"}
	for i, w := range wantTags {
		if g.Root.Children[i].Tag != w {
			t.Errorf("member %d = %s, want %s", i, g.Root.Children[i].Tag, w)
		}
	}
	// Scores carried over onto the clones.
	if s, ok := g.Score(g.Root.Children[0]); !ok || s != 3 {
		t.Errorf("member score = %v, %v", s, ok)
	}
	if _, ok := g.Score(g.Root); ok {
		t.Errorf("group root must be unscored")
	}
	if err := xmltree.Validate(g.Root); err != nil {
		t.Errorf("group tree not renumbered: %v", err)
	}
}

func TestGroupByKey(t *testing.T) {
	c := Collection{mkScored("a", 1), mkScored("b", 2), mkScored("a", 3)}
	out := GroupBy(c, func(t *ScoredTree) string { return t.Root.Tag }, nil)
	if len(out) != 2 {
		t.Fatalf("groups = %d, want 2", len(out))
	}
	// Keys sorted: "a" then "b".
	if len(out[0].Root.Children) != 2 || len(out[1].Root.Children) != 1 {
		t.Errorf("group sizes wrong: %d, %d", len(out[0].Root.Children), len(out[1].Root.Children))
	}
	// nil order keeps input order within the group.
	if s, _ := out[0].Score(out[0].Root.Children[0]); s != 1 {
		t.Errorf("input order not preserved: %f", s)
	}
}

func TestLeftmostK(t *testing.T) {
	c := Collection{mkScored("a", 1), mkScored("b", 3), mkScored("c", 2)}
	g := GroupBy(c, nil, ByScoreDesc)[0]
	top2 := LeftmostK(g, 2)
	if len(top2.Root.Children) != 2 {
		t.Fatalf("children = %d", len(top2.Root.Children))
	}
	if top2.Root.Children[0].Tag != "b" || top2.Root.Children[1].Tag != "c" {
		t.Errorf("leftmost-2 = %s, %s", top2.Root.Children[0].Tag, top2.Root.Children[1].Tag)
	}
	if s, ok := top2.Score(top2.Root.Children[0]); !ok || s != 3 {
		t.Errorf("score lost: %v %v", s, ok)
	}
	if got := LeftmostK(g, 0); len(got.Root.Children) != 0 {
		t.Errorf("k=0 children = %d", len(got.Root.Children))
	}
	if got := LeftmostK(g, -1); len(got.Root.Children) != 0 {
		t.Errorf("negative k children = %d", len(got.Root.Children))
	}
	if got := LeftmostK(g, 10); len(got.Root.Children) != 3 {
		t.Errorf("oversize k children = %d", len(got.Root.Children))
	}
}

// TestTopKViaGroupingEqualsThresholdK verifies the Sec. 3.3.1 equivalence:
// K-based thresholding is expressible as grouping with an empty basis
// ordered by score followed by a leftmost-K projection.
func TestTopKViaGroupingEqualsThresholdK(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	sel := Select(FromXML(articles), query2Pattern(), query2Scores())
	for _, k := range []int{1, 3, 5, 100} {
		viaGrouping := TopKViaGrouping(sel, k)
		viaThreshold := Threshold(sel, []ThresholdCond{K(4, k)})
		if len(viaGrouping) != len(viaThreshold) {
			t.Fatalf("k=%d: grouping %d vs threshold %d trees", k, len(viaGrouping), len(viaThreshold))
		}
		// Same multiset of root scores.
		count := map[float64]int{}
		for _, tr := range viaThreshold {
			count[round(tr.RootScore())]++
		}
		for _, tr := range viaGrouping {
			count[round(tr.RootScore())]--
		}
		for s, n := range count {
			if n != 0 {
				t.Errorf("k=%d: score %v multiplicity off by %d", k, s, n)
			}
		}
		// Grouping output is best-first.
		for i := 1; i < len(viaGrouping); i++ {
			if viaGrouping[i].RootScore() > viaGrouping[i-1].RootScore() {
				t.Errorf("k=%d: not best-first at %d", k, i)
			}
		}
	}
	if got := TopKViaGrouping(nil, 3); got != nil {
		t.Errorf("empty input should stay empty")
	}
}

func round(f float64) float64 { return math.Round(f*1000) / 1000 }

func TestTopKViaGroupingPreservesVarNodes(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	sel := Select(FromXML(articles), query2Pattern(), query2Scores())
	top := TopKViaGrouping(sel, 2)
	for i, tr := range top {
		if len(tr.NodesOfVar(4)) != 1 {
			t.Errorf("tree %d lost its $4 annotation", i)
		}
		n3 := tr.NodesOfVar(3)
		if len(n3) != 1 {
			t.Errorf("tree %d lost its $3 annotation", i)
			continue
		}
		// Witness trees elide unbound children (the sname's text node is
		// not part of the witness, as in Fig. 5), so the content check
		// goes through provenance.
		if n3[0].Origin().AllText() != "Doe" {
			t.Errorf("tree %d: $3 provenance = %q", i, n3[0].Origin().AllText())
		}
	}
}

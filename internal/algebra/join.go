package algebra

import (
	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// ProdRootTag is the tag of the synthetic root created by Product, as in
// the paper's Fig. 4 and Fig. 7 ($1.tag = tix_prod_root).
const ProdRootTag = "tix_prod_root"

// Product is the product operator C1 × C2 of Sec. 3.2.3: each output tree
// has a tix_prod_root whose two children are the roots of one tree from
// each input collection. Input trees are deep-copied so output trees are
// independently mutable; scores and variable annotations carry over.
func Product(c1, c2 Collection) Collection {
	out := make(Collection, 0, len(c1)*len(c2))
	for _, a := range c1 {
		for _, b := range c2 {
			root := xmltree.NewElement(ProdRootTag)
			ca, mapA := deepCloneWithMap(a.Root)
			cb, mapB := deepCloneWithMap(b.Root)
			root.AppendChild(ca)
			root.AppendChild(cb)
			xmltree.Number(root)
			st := NewScoredTree(root)
			copyAnnotations(st, a, mapA)
			copyAnnotations(st, b, mapB)
			out = append(out, st)
		}
	}
	return out
}

// Join is the scored join operator C1 ⋈_P C2: a scored selection over the
// product of the two inputs. The pattern is matched against each product
// tree; its root variable typically constrains tag = tix_prod_root. Join
// conditions between the two sides appear in the pattern formula, and the
// scoring set may attach named scores to them (Fig. 4's $joinScore).
func Join(c1, c2 Collection, pat *pattern.Pattern, scores *ScoreSet) Collection {
	return Select(Product(c1, c2), pat, scores)
}

func deepCloneWithMap(n *xmltree.Node) (*xmltree.Node, map[*xmltree.Node]*xmltree.Node) {
	m := map[*xmltree.Node]*xmltree.Node{}
	var rec func(*xmltree.Node) *xmltree.Node
	rec = func(o *xmltree.Node) *xmltree.Node {
		cl := shallowClone(o)
		m[o] = cl
		for _, c := range o.Children {
			cl.AppendChild(rec(c))
		}
		return cl
	}
	return rec(n), m
}

func copyAnnotations(dst *ScoredTree, src *ScoredTree, m map[*xmltree.Node]*xmltree.Node) {
	for n, s := range src.Scores {
		if cl, ok := m[n]; ok {
			dst.Scores[cl] = s
		}
	}
	for v, nodes := range src.VarNodes {
		for _, n := range nodes {
			if cl, ok := m[n]; ok {
				dst.AddVarNode(v, cl)
			}
		}
	}
}

// Union merges two collections (the set-union access method of Example
// 5.2). Trees from both inputs appear in the output; when mergeScores is
// non-nil and two trees (one from each side) share the same source root —
// judged by document provenance (Ord and region) — they are merged into a
// single tree whose root score is mergeScores(scoreA, scoreB). With a nil
// mergeScores, Union is plain concatenation.
func Union(c1, c2 Collection, mergeScores func(a, b float64) float64) Collection {
	if mergeScores == nil {
		out := make(Collection, 0, len(c1)+len(c2))
		out = append(out, c1...)
		out = append(out, c2...)
		return out
	}
	type key struct {
		ord        int32
		start, end uint32
	}
	keyOf := func(t *ScoredTree) key {
		return key{t.Root.Ord, t.Root.Start, t.Root.End}
	}
	byKey := map[key]*ScoredTree{}
	var out Collection
	for _, t := range c1 {
		byKey[keyOf(t)] = t
		out = append(out, t)
	}
	for _, t := range c2 {
		if prev, ok := byKey[keyOf(t)]; ok {
			prev.SetScore(prev.Root, mergeScores(prev.RootScore(), t.RootScore()))
			continue
		}
		// Only in the right input: merge with a zero left score.
		t.SetScore(t.Root, mergeScores(0, t.RootScore()))
		out = append(out, t)
	}
	return out
}

// WeightedSum returns a score-merging function computing w1·a + w2·b, the
// weighted-addition combiner of Examples 5.1 and 5.2.
func WeightedSum(w1, w2 float64) func(a, b float64) float64 {
	return func(a, b float64) float64 { return w1*a + w2*b }
}

package algebra

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

func TestSelectEmptyInputs(t *testing.T) {
	p := pattern.NewPattern(1)
	p.Formula = pattern.TagEq(1, "a")
	if got := Select(nil, p, nil); len(got) != 0 {
		t.Errorf("empty collection selected %d", len(got))
	}
	c := FromXML(mustParse(`<b/>`))
	if got := Select(c, p, nil); len(got) != 0 {
		t.Errorf("non-matching selected %d", len(got))
	}
}

func TestSelectNilScoreSet(t *testing.T) {
	c := FromXML(mustParse(`<a><b/></a>`))
	p := pattern.NewPattern(1)
	p.Root.Child(2, pattern.PC)
	p.Formula = pattern.Conj(pattern.TagEq(1, "a"), pattern.TagEq(2, "b"))
	got := Select(c, p, nil)
	if len(got) != 1 {
		t.Fatalf("witnesses = %d", len(got))
	}
	// No scores anywhere, but variable annotations present.
	if len(got[0].Scores) != 0 {
		t.Errorf("nil score set produced scores")
	}
	if len(got[0].NodesOfVar(2)) != 1 {
		t.Errorf("var annotation missing")
	}
}

func TestSelectWithDisjunctiveFormula(t *testing.T) {
	c := FromXML(mustParse(`<r><a/><b/><c/></r>`))
	p := pattern.NewPattern(1)
	p.Formula = pattern.Or{L: pattern.TagEq(1, "a"), R: pattern.TagEq(1, "b")}
	got := Select(c, p, nil)
	if len(got) != 2 {
		t.Errorf("disjunctive selection = %d, want 2", len(got))
	}
}

func TestProjectWithoutDropZero(t *testing.T) {
	// Zero-scored IR matches are retained when DropZeroIR is off.
	c := FromXML(mustParse(`<r><p>hit</p><p>miss</p></r>`))
	p := pattern.NewPattern(1)
	p.Root.Child(2, pattern.AD)
	p.Formula = pattern.Conj(pattern.TagEq(1, "r"), pattern.TagEq(2, "p"))
	scores := &ScoreSet{
		Primary: map[int]NodeScorer{2: func(n *xmltree.Node) float64 {
			if n.AllText() == "hit" {
				return 1
			}
			return 0
		}},
		Secondary: map[int]ScoreExpr{1: VarScore(2)},
	}
	kept := Project(c, p, scores, []int{1, 2}, ProjectOptions{})
	if len(kept) != 1 {
		t.Fatalf("projection output = %d", len(kept))
	}
	if got := len(kept[0].Root.FindTag("p")); got != 2 {
		t.Errorf("kept p = %d, want 2 (zero retained)", got)
	}
	dropped := Project(c, p, scores, []int{1, 2}, ProjectOptions{DropZeroIR: true})
	if got := len(dropped[0].Root.FindTag("p")); got != 1 {
		t.Errorf("dropped p = %d, want 1", got)
	}
}

func TestProjectNoMatchesProducesNothing(t *testing.T) {
	c := FromXML(mustParse(`<r><p>x</p></r>`))
	p := pattern.NewPattern(1)
	p.Formula = pattern.TagEq(1, "zzz")
	if got := Project(c, p, nil, []int{1}, ProjectOptions{}); len(got) != 0 {
		t.Errorf("no-match projection = %d trees", len(got))
	}
}

func TestProjectDisjointRootsWrapped(t *testing.T) {
	// PL retains only the two p's (not the root): the projection wraps the
	// forest under a synthetic root.
	c := FromXML(mustParse(`<r><p>x</p><p>y</p></r>`))
	p := pattern.NewPattern(1)
	p.Root.Child(2, pattern.AD)
	p.Formula = pattern.Conj(pattern.TagEq(1, "r"), pattern.TagEq(2, "p"))
	out := Project(c, p, nil, []int{2}, ProjectOptions{})
	if len(out) != 1 {
		t.Fatalf("projection output = %d", len(out))
	}
	if out[0].Root.Tag != "tix_proj_root" {
		t.Errorf("forest root = %s", out[0].Root.Tag)
	}
	if len(out[0].Root.Children) != 2 {
		t.Errorf("forest children = %d", len(out[0].Root.Children))
	}
}

func TestJoinEmptySides(t *testing.T) {
	p := pattern.NewPattern(1)
	p.Formula = pattern.TagEq(1, ProdRootTag)
	a := FromXML(mustParse(`<x/>`))
	if got := Join(a, nil, p, nil); len(got) != 0 {
		t.Errorf("join with empty right = %d", len(got))
	}
	if got := Join(nil, a, p, nil); len(got) != 0 {
		t.Errorf("join with empty left = %d", len(got))
	}
}

func TestScoreEnvSecondaryChain(t *testing.T) {
	// Secondary rules evaluate in ascending variable order, so $3 can
	// depend on $2 which depends on the primary $1. Each variable binds a
	// distinct node so per-node scores are unambiguous.
	c := FromXML(mustParse(`<a><b>x</b><c/></a>`))
	p := pattern.NewPattern(1)
	p.Root.Child(2, pattern.PC)
	p.Root.Child(3, pattern.PC)
	p.Formula = pattern.Conj(pattern.TagEq(1, "a"), pattern.TagEq(2, "b"), pattern.TagEq(3, "c"))
	scores := &ScoreSet{
		Primary: map[int]NodeScorer{1: func(*xmltree.Node) float64 { return 2 }},
		Secondary: map[int]ScoreExpr{
			2: func(e ScoreEnv) float64 { return e.Var[1] * 10 },
			3: func(e ScoreEnv) float64 { return e.Var[2] + 1 },
		},
	}
	got := Select(c, p, scores)
	if len(got) != 1 {
		t.Fatalf("witnesses = %d", len(got))
	}
	w := got[0]
	if s, _ := w.Score(w.NodesOfVar(2)[0]); s != 20 {
		t.Errorf("$2 = %v, want 20", s)
	}
	if s, _ := w.Score(w.NodesOfVar(3)[0]); s != 21 {
		t.Errorf("$3 = %v, want 21", s)
	}
}

func TestIsIRVar(t *testing.T) {
	s := &ScoreSet{
		Primary:   map[int]NodeScorer{4: func(*xmltree.Node) float64 { return 0 }},
		Secondary: map[int]ScoreExpr{1: VarScore(4)},
	}
	if !s.IsIRVar(4) || !s.IsIRVar(1) {
		t.Errorf("IR vars not recognized")
	}
	if s.IsIRVar(2) {
		t.Errorf("non-IR var recognized")
	}
	var nilSet *ScoreSet
	if nilSet.IsIRVar(1) {
		t.Errorf("nil score set must report false")
	}
}

func TestNamedScoreExpr(t *testing.T) {
	env := ScoreEnv{Named: map[string]float64{"joinScore": 2.5}}
	if got := NamedScore("joinScore")(env); got != 2.5 {
		t.Errorf("NamedScore = %v", got)
	}
	if got := NamedScore("missing")(env); got != 0 {
		t.Errorf("missing named score = %v", got)
	}
}

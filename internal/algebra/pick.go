package algebra

import (
	"sort"

	"repro/internal/xmltree"
)

// PickCriterion is the pick-criterion PC of the Pick operator ρ_{P,PC}(C)
// (Sec. 3.3.2). It decomposes the way the paper's Sec. 5.3 observes most
// criteria do:
//
//   - Relevant: the relevance-score threshold for data IR-nodes (the
//     "score at least 0.8" part of PickFoo);
//   - DetWorth: whether a node is worth returning given its subtree (the
//     ">50% of child nodes are relevant" part);
//   - SameClass: whether two nodes belong to the same return class (the
//     odd/even level-parity rule of the Sec. 5.3 example) — used for
//     vertical (parent/child) redundancy elimination: when an ancestor is
//     determined not worth returning, surviving candidates in its subtree
//     that share its class are redundant and dropped, while those of a
//     different class are returned;
//   - HorizontalDedup: optionally keep only the first returned candidate
//     among same-class siblings (the "return only the first author" kind
//     of horizontal redundancy elimination).
type PickCriterion struct {
	Relevant        func(score float64) bool
	DetWorth        func(t *ScoredTree, n *xmltree.Node) bool
	SameClass       func(a, b *xmltree.Node) bool
	HorizontalDedup bool
}

// DefaultCriterion returns the PC used throughout the paper's examples
// (PickFoo of Fig. 9 with the Sec. 5.3 classes): relevance means score ≥
// threshold; an interior node is worth returning when more than half of
// its scored children are relevant, a leaf when it is itself relevant; and
// two nodes share a class when their levels have equal parity.
func DefaultCriterion(threshold float64) PickCriterion {
	return PickCriterion{
		Relevant: func(s float64) bool { return s >= threshold },
		DetWorth: func(t *ScoredTree, n *xmltree.Node) bool {
			if len(n.Children) == 0 {
				s, ok := t.Score(n)
				return ok && s >= threshold
			}
			relevant, total := 0, 0
			for _, c := range n.Children {
				s, ok := t.Score(c)
				if !ok {
					continue
				}
				total++
				if s >= threshold {
					relevant++
				}
			}
			if total == 0 {
				s, ok := t.Score(n)
				return ok && s >= threshold
			}
			return float64(relevant)/float64(total) > 0.5
		},
		SameClass: func(a, b *xmltree.Node) bool { return a.Level%2 == b.Level%2 },
	}
}

// PickedNodes runs the pick decision procedure on one scored tree and
// returns the set of nodes determined worth returning, in document order.
//
// The procedure mirrors the stack-based algorithm of Fig. 12 (implemented
// physically in internal/exec): candidates (relevant IR-nodes) survive
// upward while their ancestors keep being worth returning; when an
// ancestor is determined NOT worth returning, the surviving candidates in
// its subtree are finalized — those in a different return class are
// returned, those in the same class are eliminated as redundant. Survivors
// remaining after the root is processed are returned.
func PickedNodes(t *ScoredTree, pc PickCriterion) []*xmltree.Node {
	result := map[*xmltree.Node]bool{}
	var rec func(n *xmltree.Node) []*xmltree.Node
	rec = func(n *xmltree.Node) []*xmltree.Node {
		var alive []*xmltree.Node
		for _, c := range n.Children {
			alive = append(alive, rec(c)...)
		}
		score, isIR := t.Score(n)
		if !isIR {
			return alive // non-IR nodes are transparent to picking
		}
		if pc.DetWorth(t, n) {
			if pc.Relevant(score) {
				alive = append(alive, n)
			}
			return alive
		}
		for _, x := range alive {
			if !pc.SameClass(x, n) {
				result[x] = true
			}
		}
		return nil
	}
	// Final flush (the ending of Fig. 12): survivors remaining after the
	// root closes are "potentially worth returning"; the algorithm
	// arbitrarily outputs the top node and then only the nodes in its
	// class, which keeps the parent/child exclusion property — two nodes
	// at adjacent levels are never both returned.
	if surv := rec(t.Root); len(surv) > 0 {
		rep := surv[len(surv)-1]
		result[rep] = true
		for _, x := range surv {
			if pc.SameClass(x, rep) {
				result[x] = true
			}
		}
	}

	out := make([]*xmltree.Node, 0, len(result))
	for n := range result {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	if pc.HorizontalDedup {
		out = dedupSiblings(out, pc)
	}
	return out
}

// dedupSiblings keeps, per parent, only the first picked node of each
// class in document order.
func dedupSiblings(picked []*xmltree.Node, pc PickCriterion) []*xmltree.Node {
	var out []*xmltree.Node
	type slot struct {
		parent *xmltree.Node
		rep    *xmltree.Node
	}
	var reps []slot
	for _, n := range picked {
		dup := false
		for _, s := range reps {
			if s.parent == n.Parent && pc.SameClass(s.rep, n) {
				dup = true
				break
			}
		}
		if !dup {
			reps = append(reps, slot{n.Parent, n})
			out = append(out, n)
		}
	}
	return out
}

// Pick is the Pick operator ρ_{P,PC}(C): for each input tree it returns a
// tree from which redundant IR-nodes have been eliminated. Kept nodes are
// the picked IR-nodes, all non-IR nodes (structural/projection content),
// and the root; children of removed nodes are hoisted to their nearest
// kept ancestor, as in Fig. 8.
//
// When rescore is non-nil, secondary scores are recomputed after pruning
// (the paper: "this score changes dynamically when the set of $4-matching
// data IR-nodes is changed … due to the pruning by Pick"): each primary
// variable's environment entry becomes the maximum score among its
// remaining matches.
func Pick(c Collection, pc PickCriterion, rescore *ScoreSet) Collection {
	out := make(Collection, 0, len(c))
	for _, t := range c {
		out = append(out, pickOne(t, pc, rescore))
	}
	return out
}

func pickOne(t *ScoredTree, pc PickCriterion, rescore *ScoreSet) *ScoredTree {
	picked := map[*xmltree.Node]bool{}
	for _, n := range PickedNodes(t, pc) {
		picked[n] = true
	}
	keep := func(n *xmltree.Node) bool {
		if n == t.Root {
			return true
		}
		if !t.IsIRNode(n) {
			return true
		}
		return picked[n]
	}

	clones := map[*xmltree.Node]*xmltree.Node{}
	var build func(n *xmltree.Node, parentClone *xmltree.Node)
	var root *xmltree.Node
	build = func(n *xmltree.Node, parentClone *xmltree.Node) {
		attach := parentClone
		if keep(n) {
			cl := shallowClone(n)
			clones[n] = cl
			if parentClone == nil {
				root = cl
			} else {
				parentClone.AppendChild(cl)
			}
			attach = cl
		}
		for _, c := range n.Children {
			build(c, attach)
		}
	}
	build(t.Root, nil)

	nt := NewScoredTree(root)
	for n, s := range t.Scores {
		if cl, ok := clones[n]; ok {
			nt.Scores[cl] = s
		}
	}
	for v, nodes := range t.VarNodes {
		isPrimary := rescore != nil && rescore.Primary != nil
		if isPrimary {
			_, isPrimary = rescore.Primary[v]
		}
		for _, n := range nodes {
			cl, ok := clones[n]
			if !ok {
				continue
			}
			// A surviving node keeps a primary IR-variable annotation only
			// if it was actually picked: the root, kept for structure, no
			// longer counts as a $4 match once pick pruned it, so the
			// dynamic rescoring below sees only the remaining matches.
			if isPrimary && t.IsIRNode(n) && !picked[n] {
				continue
			}
			nt.AddVarNode(v, cl)
		}
	}
	if rescore != nil && len(rescore.Secondary) > 0 {
		env := ScoreEnv{Var: map[int]float64{}, Named: map[string]float64{}}
		for v := range rescore.Primary {
			best := 0.0
			for _, n := range nt.NodesOfVar(v) {
				if s, ok := nt.Score(n); ok && s > best {
					best = s
				}
			}
			env.Var[v] = best
		}
		vars := make([]int, 0, len(rescore.Secondary))
		for v := range rescore.Secondary {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		for _, v := range vars {
			env.Var[v] = rescore.Secondary[v](env)
			for _, n := range nt.NodesOfVar(v) {
				nt.SetScore(n, env.Var[v])
			}
		}
	}
	return nt
}

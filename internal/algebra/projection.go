package algebra

import (
	"sort"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// ProjectOptions tunes the scored projection operator.
type ProjectOptions struct {
	// DropZeroIR removes IR nodes whose score is zero from the output, as
	// in the paper's Fig. 6 ("zero-score nodes are removed"). Non-IR nodes
	// in the projection list are always retained.
	DropZeroIR bool
}

// Project is the scored projection operator π_{P,PL}(C) of Sec. 3.2.2: for
// each input tree it returns one output tree retaining the nodes bound (in
// any embedding) to a variable in the projection list pl, collapsed onto
// their nearest retained ancestor.
//
// Scores: data nodes matching a primary query IR-node are scored by the
// node's scoring function, independently of other matches. Data nodes
// matching a secondary query IR-node get the highest score they can
// achieve — their score expression evaluated over an environment in which
// each primary variable holds the maximum score among its matches.
//
// Input trees with no embedding contribute no output tree.
func Project(c Collection, pat *pattern.Pattern, scores *ScoreSet, pl []int, opts ProjectOptions) Collection {
	inPL := map[int]bool{}
	for _, v := range pl {
		inPL[v] = true
	}
	var out Collection
	for _, t := range c {
		bindings := pat.Match(t.Root)
		if len(bindings) == 0 {
			continue
		}
		out = append(out, projectOne(bindings, scores, inPL, opts))
	}
	return out
}

func projectOne(bindings []pattern.Binding, scores *ScoreSet, inPL map[int]bool, opts ProjectOptions) *ScoredTree {
	// Gather retained data nodes, the variables that bound them, and the
	// per-variable primary score maxima.
	type nodeInfo struct {
		vars  map[int]bool
		score float64
		isIR  bool
	}
	info := map[*xmltree.Node]*nodeInfo{}
	maxPrimary := map[int]float64{}
	for _, b := range bindings {
		for v, n := range b {
			if !inPL[v] {
				continue
			}
			ni := info[n]
			if ni == nil {
				ni = &nodeInfo{vars: map[int]bool{}}
				info[n] = ni
			}
			ni.vars[v] = true
		}
		if scores != nil {
			for v, fn := range scores.Primary {
				if n, ok := b[v]; ok && inPL[v] {
					s := fn(n)
					if ni := info[n]; ni != nil {
						ni.score, ni.isIR = s, true
					}
					if s > maxPrimary[v] {
						maxPrimary[v] = s
					}
				}
			}
		}
	}
	// Secondary scores: environment holds each primary variable's maximum.
	if scores != nil && len(scores.Secondary) > 0 {
		env := ScoreEnv{Var: map[int]float64{}, Named: map[string]float64{}}
		for v, s := range maxPrimary {
			env.Var[v] = s
		}
		vars := make([]int, 0, len(scores.Secondary))
		for v := range scores.Secondary {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		for _, v := range vars {
			env.Var[v] = scores.Secondary[v](env)
		}
		for _, ni := range info {
			for v := range ni.vars {
				if _, sec := scores.Secondary[v]; sec {
					ni.score, ni.isIR = env.Var[v], true
				}
			}
		}
	}

	// Drop zero-scored IR nodes if requested. A node is only dropped when
	// every projection-list variable that bound it is an IR variable: a
	// node retained through a non-IR variable (Fig. 6's sname via $3) stays
	// even if it also happens to be a zero-scored ad* match.
	retained := make([]*xmltree.Node, 0, len(info))
	for n, ni := range info {
		if opts.DropZeroIR && ni.isIR && ni.score == 0 {
			onlyIR := true
			for v := range ni.vars {
				if !scores.IsIRVar(v) {
					onlyIR = false
					break
				}
			}
			if onlyIR {
				delete(info, n)
				continue
			}
			// Keep the node but as plain content, not a zero-scored IR node.
			ni.isIR = false
		}
		retained = append(retained, n)
	}
	sort.Slice(retained, func(i, j int) bool { return retained[i].Start < retained[j].Start })

	// Nest retained nodes by containment; if several roots remain, wrap
	// them under a synthetic projection root.
	clones := map[*xmltree.Node]*xmltree.Node{}
	var stack []*xmltree.Node
	var roots []*xmltree.Node
	for _, n := range retained {
		cl := shallowClone(n)
		clones[n] = cl
		for len(stack) > 0 && !stack[len(stack)-1].Contains(n) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			roots = append(roots, cl)
		} else {
			clones[stack[len(stack)-1]].AppendChild(cl)
		}
		stack = append(stack, n)
	}
	var root *xmltree.Node
	if len(roots) == 1 {
		root = roots[0]
	} else {
		root = xmltree.NewElement("tix_proj_root")
		for _, r := range roots {
			root.AppendChild(r)
		}
	}

	st := NewScoredTree(root)
	for n, ni := range info {
		cl := clones[n]
		if ni.isIR {
			st.Scores[cl] = ni.score
		}
		for v := range ni.vars {
			st.AddVarNode(v, cl)
		}
	}
	return st
}

package algebra

import (
	"sort"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// Select is the scored selection operator σ_P(C) of Sec. 3.2.1: it returns
// one scored witness tree per embedding of the scored pattern tree into
// each input tree. The witness tree contains exactly the bound data nodes,
// nested by their ancestor relationships in the data tree; scores are
// assigned per the scoring set (primary IR-nodes from their scoring
// function over the data node, secondary IR-nodes from their score
// expression, join scores from the full binding).
func Select(c Collection, pat *pattern.Pattern, scores *ScoreSet) Collection {
	var out Collection
	for _, t := range c {
		for _, b := range pat.Match(t.Root) {
			out = append(out, witness(b, scores))
		}
	}
	return out
}

// witness builds the scored witness tree for one embedding.
func witness(b pattern.Binding, scores *ScoreSet) *ScoredTree {
	env := scores.evalBinding(b)

	// Distinct bound data nodes in document order.
	distinct := make([]*xmltree.Node, 0, len(b))
	seen := map[*xmltree.Node]bool{}
	for _, n := range b {
		if !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i].Start < distinct[j].Start })

	// Shallow-clone each node and nest by containment with a stack; the
	// pattern root's binding contains every other bound node, so the first
	// node in document order is the witness root.
	clones := map[*xmltree.Node]*xmltree.Node{}
	var stack []*xmltree.Node // data nodes with live clone frames
	var root *xmltree.Node
	for _, n := range distinct {
		cl := shallowClone(n)
		clones[n] = cl
		for len(stack) > 0 && !stack[len(stack)-1].Contains(n) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			root = cl
		} else {
			clones[stack[len(stack)-1]].AppendChild(cl)
		}
		stack = append(stack, n)
	}

	st := NewScoredTree(root)
	// Iterate variables in ascending order so that when several variables
	// bind the same data node (an article matched by both $1 and an ad*
	// $4), the score written to the shared witness node is deterministic —
	// the highest variable's, matching the convention that later-numbered
	// variables carry the more specific scoring rule.
	vars := make([]int, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		n := b[v]
		st.AddVarNode(v, clones[n])
		if s, ok := env.Var[v]; ok {
			st.Scores[clones[n]] = s
		}
	}
	return st
}

// shallowClone copies a node without its children, preserving the
// provenance fields (Ord, Start, End, Level) that link the witness back to
// the source document.
func shallowClone(n *xmltree.Node) *xmltree.Node {
	cp := &xmltree.Node{
		Kind:  n.Kind,
		Tag:   n.Tag,
		Text:  n.Text,
		Start: n.Start,
		End:   n.End,
		Level: n.Level,
		Ord:   n.Ord,
		Src:   n.Origin(),
	}
	if len(n.Attrs) > 0 {
		cp.Attrs = append([]xmltree.Attr(nil), n.Attrs...)
	}
	return cp
}

package algebra

import "sort"

// ThresholdCond is one condition of the Threshold operator τ_{P,TC}(C)
// (Sec. 3.3.1), attached to a query IR-node (pattern variable). Exactly one
// of MinScore or TopK should be set; when both are set, both must hold.
type ThresholdCond struct {
	// Var is the query IR-node the condition applies to.
	Var int
	// MinScore keeps a tree only if at least one data IR-node matching Var
	// in it has a score strictly greater than *MinScore (the V condition).
	MinScore *float64
	// TopK keeps a tree only if at least one data IR-node matching Var in
	// it ranks within the top *TopK by score among all Var matches across
	// the whole input collection (the K condition).
	TopK *int
}

// V builds a MinScore condition.
func V(v int, min float64) ThresholdCond { return ThresholdCond{Var: v, MinScore: &min} }

// K builds a TopK condition.
func K(v int, k int) ThresholdCond { return ThresholdCond{Var: v, TopK: &k} }

// Threshold filters the collection per the conditions; a tree is kept only
// if it satisfies every condition. Rank for K conditions is computed over
// the data IR-nodes matching the condition's variable across all input
// trees, sorted by descending score; ties share the lower (better) rank's
// neighborhood deterministically by input order.
func Threshold(c Collection, conds []ThresholdCond) Collection {
	// Precompute rank cutoffs per TopK condition: the k-th highest score.
	cutoffs := map[int]float64{} // var → minimum score to be in top-K
	haveCut := map[int]bool{}
	for _, cond := range conds {
		if cond.TopK == nil || haveCut[cond.Var] {
			continue
		}
		var all []float64
		for _, t := range c {
			for _, n := range t.NodesOfVar(cond.Var) {
				if s, ok := t.Score(n); ok {
					all = append(all, s)
				}
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		k := *cond.TopK
		if k <= 0 {
			cutoffs[cond.Var] = 0
			haveCut[cond.Var] = true
			continue
		}
		if len(all) == 0 {
			haveCut[cond.Var] = true
			cutoffs[cond.Var] = 0
			continue
		}
		if k > len(all) {
			k = len(all)
		}
		cutoffs[cond.Var] = all[k-1]
		haveCut[cond.Var] = true
	}

	var out Collection
	for _, t := range c {
		keep := true
		for _, cond := range conds {
			if !satisfies(t, cond, cutoffs) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, t)
		}
	}
	return out
}

func satisfies(t *ScoredTree, cond ThresholdCond, cutoffs map[int]float64) bool {
	nodes := t.NodesOfVar(cond.Var)
	if cond.MinScore != nil {
		ok := false
		for _, n := range nodes {
			if s, has := t.Score(n); has && s > *cond.MinScore {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if cond.TopK != nil {
		if *cond.TopK <= 0 {
			return false
		}
		cut := cutoffs[cond.Var]
		ok := false
		for _, n := range nodes {
			if s, has := t.Score(n); has && s >= cut {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TopTrees returns the n highest-scoring trees by root score (a convenience
// built on SortByRootScore, corresponding to "Sortby(score) … stop after n"
// in the XQuery extension).
func TopTrees(c Collection, n int) Collection {
	sorted := c.SortByRootScore()
	if n > len(sorted) {
		n = len(sorted)
	}
	if n < 0 {
		n = 0
	}
	return sorted[:n]
}

package bench

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/storage"
)

// Ablations regenerates the design-choice ablations of DESIGN.md §5 at the
// corpus's full scale: the TermJoin stack discipline vs re-deriving
// ancestors per occurrence, the child-count index vs store navigation, and
// the histogram-assisted threshold vs an exact sort quantile.
func (c *Corpus) Ablations() (*Table, error) {
	t := &Table{
		ID:      "ablation",
		Caption: "Design-choice ablations (seconds)",
		Columns: []Method{"Optimized", "Ablated"},
	}
	a, b, err := c.PairTerms(1000)
	if err != nil {
		return nil, err
	}
	terms := []string{a, b}

	// 1. Stack discipline vs full ancestor walk per occurrence.
	row := Row{Label: "ancestor-walk"}
	for _, full := range []bool{false, true} {
		m, err := timeIt(c.runs(), func() (int, storage.AccessStats, error) {
			acc := storage.NewAccessor(c.Index.Store())
			tj := &exec.TermJoin{
				Index:            c.Index,
				Acc:              acc,
				Query:            exec.TermQuery{Terms: terms, Scorer: exec.DefaultScorer{}},
				FullAncestorWalk: full,
			}
			n := 0
			if err := tj.Run(func(exec.ScoredNode) { n++ }); err != nil {
				return 0, storage.AccessStats{}, err
			}
			return n, acc.Stats, nil
		})
		if err != nil {
			return nil, err
		}
		name := Method("Optimized")
		if full {
			name = "Ablated"
		}
		m.Method = name
		row.Cells = append(row.Cells, Cell{Method: name, M: m})
	}
	t.Rows = append(t.Rows, row)

	// 2. Child-count index vs navigation (complex scoring).
	row = Row{Label: "child-count"}
	for _, mode := range []exec.ChildCountMode{exec.ChildCountIndexed, exec.ChildCountNavigate} {
		m, err := timeIt(c.runs(), func() (int, storage.AccessStats, error) {
			acc := storage.NewAccessor(c.Index.Store())
			tj := &exec.TermJoin{
				Index:       c.Index,
				Acc:         acc,
				Query:       exec.TermQuery{Terms: terms, Complex: true, Scorer: exec.DefaultScorer{}},
				ChildCounts: mode,
			}
			n := 0
			if err := tj.Run(func(exec.ScoredNode) { n++ }); err != nil {
				return 0, storage.AccessStats{}, err
			}
			return n, acc.Stats, nil
		})
		if err != nil {
			return nil, err
		}
		name := Method("Optimized")
		if mode == exec.ChildCountNavigate {
			name = "Ablated"
		}
		m.Method = name
		row.Cells = append(row.Cells, Cell{Method: name, M: m})
	}
	t.Rows = append(t.Rows, row)

	// 3. Histogram threshold vs exact quantile over the scored output.
	tjOut, err := exec.RunTermJoin(c.Index, exec.TermQuery{Terms: terms, Scorer: exec.DefaultScorer{}}, exec.ChildCountNavigate)
	if err != nil {
		return nil, err
	}
	row = Row{Label: "pick-threshold", Extra: fmt.Sprintf("scores=%d", len(tjOut))}
	mh, err := timeIt(c.runs(), func() (int, storage.AccessStats, error) {
		h := exec.NewScoreHistogram(tjOut, 64)
		_ = h.ThresholdForTopFraction(0.05)
		return h.Total(), storage.AccessStats{}, nil
	})
	if err != nil {
		return nil, err
	}
	mh.Method = "Optimized"
	row.Cells = append(row.Cells, Cell{Method: "Optimized", M: mh})
	me, err := timeIt(c.runs(), func() (int, storage.AccessStats, error) {
		scores := make([]float64, len(tjOut))
		for i, n := range tjOut {
			scores[i] = n.Score
		}
		sort.Float64s(scores)
		_ = scores[len(scores)-1-len(scores)/20]
		return len(scores), storage.AccessStats{}, nil
	})
	if err != nil {
		return nil, err
	}
	me.Method = "Ablated"
	row.Cells = append(row.Cells, Cell{Method: "Ablated", M: me})
	t.Rows = append(t.Rows, row)
	return t, nil
}

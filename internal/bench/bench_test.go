package bench

import (
	"strings"
	"testing"
)

// smallCorpus caches the test corpus across tests.
var smallCorpus *Corpus

func corpus(t testing.TB) *Corpus {
	t.Helper()
	if smallCorpus == nil {
		c, err := Build(SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		smallCorpus = c
	}
	return smallCorpus
}

func TestBuildPlantsWorkloads(t *testing.T) {
	c := corpus(t)
	for _, f := range c.freqs() {
		a, b, err := c.PairTerms(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Index.TermFreq(a); got != f {
			t.Errorf("freq(%s) = %d, want %d", a, got, f)
		}
		if got := c.Index.TermFreq(b); got != f {
			t.Errorf("freq(%s) = %d, want %d", b, got, f)
		}
	}
	terms, err := c.Table4Terms(c.t4terms())
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range terms {
		if got := c.Index.TermFreq(term); got != Table4Freq {
			t.Errorf("freq(%s) = %d, want %d", term, got, Table4Freq)
		}
	}
	if _, _, err := c.PairTerms(999999); err == nil {
		t.Errorf("unknown frequency should error")
	}
	if _, err := c.Table4Terms(100); err == nil {
		t.Errorf("too many table-4 terms should error")
	}
}

func TestTable5PhrasesPlanted(t *testing.T) {
	c := corpus(t)
	div := c.t5divisor()
	for _, row := range Table5Rows {
		t1, t2, f1, f2, err := c.Table5Phrase(row)
		if err != nil {
			t.Fatal(err)
		}
		// Planted frequency is the scaled paper frequency, raised when the
		// planted phrase count needs more.
		if got := c.Index.TermFreq(t1); got < f1 {
			t.Errorf("freq(%s) = %d, want >= %d", t1, got, f1)
		}
		if got := c.Index.TermFreq(t2); got < f2 {
			t.Errorf("freq(%s) = %d, want >= %d", t2, got, f2)
		}
		_ = div
	}
}

func TestRunTermMethodsAgree(t *testing.T) {
	c := corpus(t)
	a, b, err := c.PairTerms(100)
	if err != nil {
		t.Fatal(err)
	}
	old := Runs
	Runs = 1
	defer func() { Runs = old }()
	var counts []int
	for _, m := range []Method{MComp1, MComp2, MGenMeet, MTermJoin} {
		meas, err := c.RunTermMethod(m, []string{a, b}, false)
		if err != nil {
			t.Fatal(err)
		}
		if meas.Results == 0 {
			t.Fatalf("%s produced no results", m)
		}
		counts = append(counts, meas.Results)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("method result counts differ: %v", counts)
		}
	}
	if _, err := c.RunTermMethod("bogus", []string{a}, false); err == nil {
		t.Errorf("unknown method should error")
	}
}

func TestRunPhraseMethodsAgree(t *testing.T) {
	c := corpus(t)
	row := Table5Rows[1] // modest result size
	t1, t2, _, _, err := c.Table5Phrase(row)
	if err != nil {
		t.Fatal(err)
	}
	old := Runs
	Runs = 1
	defer func() { Runs = old }()
	pf, err := c.RunPhraseMethod(MPhraseFinder, []string{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := c.RunPhraseMethod(MComp3, []string{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Results != c3.Results {
		t.Errorf("result sizes differ: %d vs %d", pf.Results, c3.Results)
	}
	if pf.Results == 0 {
		t.Errorf("no phrase matches; planting failed")
	}
	if _, err := c.RunPhraseMethod("bogus", []string{t1}); err == nil {
		t.Errorf("unknown method should error")
	}
}

func TestTablesRender(t *testing.T) {
	c := corpus(t)
	old := Runs
	Runs = 1
	defer func() { Runs = old }()
	t1, err := c.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != len(c.freqs()) {
		t.Errorf("table1 rows = %d", len(t1.Rows))
	}
	var sb strings.Builder
	if err := t1.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, col := range []string{"Comp1", "Comp2", "GenMeet", "TermJoin"} {
		if !strings.Contains(out, col) {
			t.Errorf("rendered table missing column %s:\n%s", col, out)
		}
	}
	// Ratio helper.
	if ratio, ok := t1.Rows[len(t1.Rows)-1].Ratio(MComp2, MTermJoin); !ok || ratio <= 0 {
		t.Errorf("ratio = %f, %v", ratio, ok)
	}
	if _, ok := t1.Rows[0].Ratio("nope", MTermJoin); ok {
		t.Errorf("unknown method ratio should fail")
	}
}

func TestPickTable(t *testing.T) {
	old := Runs
	Runs = 1
	defer func() { Runs = old }()
	pt, err := PickTable(7, []int{200, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Rows) != 2 {
		t.Fatalf("pick rows = %d", len(pt.Rows))
	}
	var sb strings.Builder
	if err := pt.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "picked=") {
		t.Errorf("pick table missing counts:\n%s", sb.String())
	}
}

func TestAblationsTable(t *testing.T) {
	c := corpus(t)
	old := Runs
	Runs = 1
	defer func() { Runs = old }()
	tbl, err := c.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("ablation rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r.Cells) != 2 {
			t.Fatalf("row %s cells = %d", r.Label, len(r.Cells))
		}
		for _, cell := range r.Cells {
			if cell.Err != nil {
				t.Errorf("row %s: %v", r.Label, cell.Err)
			}
		}
	}
	var sb strings.Builder
	if err := tbl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ancestor-walk") {
		t.Errorf("rendered ablation table wrong:\n%s", sb.String())
	}
	// CSV rendering works for every table kind.
	sb.Reset()
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x,Optimized,Ablated,extra") {
		t.Errorf("csv header wrong:\n%s", sb.String())
	}
}

func TestPickInputWellFormed(t *testing.T) {
	nodes := PickInput(5000, 3)
	if len(nodes) != 5000 {
		t.Fatalf("size = %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Start <= nodes[i-1].Start {
			t.Fatalf("not in document order at %d", i)
		}
	}
	// Regions either nest or are disjoint.
	for i := 1; i < 200; i++ {
		a, b := nodes[i-1], nodes[i]
		if b.Start < a.End && b.End > a.End {
			t.Fatalf("overlapping regions: %+v %+v", a, b)
		}
	}
}

// TestShapeHolds is the smoke test for the paper's qualitative claims on
// the small corpus: TermJoin beats Comp1 and Comp2 at the highest swept
// frequency, Comp2 is the most expensive method at low frequency, and
// PhraseFinder beats Comp3.
func TestShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	c := corpus(t)
	freqs := c.freqs()
	hi := freqs[len(freqs)-1]
	a, b, err := c.PairTerms(hi)
	if err != nil {
		t.Fatal(err)
	}
	tj, err := c.RunTermMethod(MTermJoin, []string{a, b}, false)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := c.RunTermMethod(MComp1, []string{a, b}, false)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.RunTermMethod(MComp2, []string{a, b}, false)
	if err != nil {
		t.Fatal(err)
	}
	if tj.Seconds >= c1.Seconds {
		t.Errorf("TermJoin (%.4fs) should beat Comp1 (%.4fs) at freq %d", tj.Seconds, c1.Seconds, hi)
	}
	if tj.Seconds >= c2.Seconds {
		t.Errorf("TermJoin (%.4fs) should beat Comp2 (%.4fs)", tj.Seconds, c2.Seconds)
	}
	row := Table5Rows[0]
	t1, t2, _, _, err := c.Table5Phrase(row)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := c.RunPhraseMethod(MPhraseFinder, []string{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := c.RunPhraseMethod(MComp3, []string{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Seconds >= c3.Seconds {
		t.Errorf("PhraseFinder (%.4fs) should beat Comp3 (%.4fs)", pf.Seconds, c3.Seconds)
	}
}

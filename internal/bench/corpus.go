// Package bench builds the experimental workloads of Sec. 6 and runs the
// access methods over them, regenerating every table of the paper's
// evaluation: Tables 1–4 (TermJoin vs Comp1/Comp2/Generalized Meet, with
// the Enhanced TermJoin variant under complex scoring), Table 5
// (PhraseFinder vs Comp3 over 13 phrases), and the Pick timing experiment.
//
// The INEX corpus is replaced by the synthetic corpus of internal/synth
// with control terms planted at the exact frequencies each table sweeps;
// see DESIGN.md §2 for the substitution argument. Frequencies larger than
// the corpus can absorb are scaled down by Config.Table5Divisor, and
// EXPERIMENTS.md reports ratios rather than absolute seconds.
package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/db"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/synth"
	"repro/internal/xmltree"
)

// Table1Freqs are the per-term frequencies swept by Tables 1 and 2.
var Table1Freqs = []int{20, 100, 200, 300, 500, 1000, 2000, 3000, 5500, 7000, 10000}

// Table3Term2Freqs are the second-term frequencies of Table 3 (term 1 is
// fixed at 1,000).
var Table3Term2Freqs = []int{20, 200, 1000, 3000, 7000}

// Table4MaxTerms is the largest query size of Table 4 (2..7 terms, each at
// frequency ≈ 1,500).
const Table4MaxTerms = 7

// Table4Freq is the per-term frequency of Table 4.
const Table4Freq = 1500

// Table5Row describes one of the 13 phrase queries of Table 5 with the
// paper's term frequencies and result sizes (phrase occurrence counts).
type Table5Row struct {
	Query      int
	Freq1      int
	Freq2      int
	ResultSize int
}

// Table5Rows are the paper's Table 5 workloads.
var Table5Rows = []Table5Row{
	{1, 121076, 44930, 27991},
	{2, 121076, 79677, 462},
	{3, 107269, 146477, 1219},
	{4, 107269, 79677, 1212},
	{5, 98405, 146477, 877},
	{6, 121076, 146477, 1189},
	{7, 90482, 68801, 116},
	{8, 121076, 45988, 34},
	{9, 121076, 107269, 320},
	{10, 98405, 28044, 455},
	{11, 146477, 68801, 1372},
	{12, 121076, 68801, 249},
	{13, 98405, 107269, 17},
}

// Config sizes the benchmark corpus.
type Config struct {
	// Articles is the number of synthetic articles; ~90 elements each.
	Articles int
	// Seed drives deterministic generation.
	Seed int64
	// Table1Freqs / Table3Term2Freqs / Table4Terms override the default
	// sweeps (nil keeps the paper's).
	Table1Freqs      []int
	Table3Term2Freqs []int
	Table4Terms      int
	// Table5Divisor scales down Table 5's term frequencies and result
	// sizes so they fit the corpus (the paper's corpus is 500 MB; ours is
	// memory-resident). 0 means the default of 20.
	Table5Divisor int
	// SkipTable5 omits the phrase workload (faster corpus builds for
	// term-join-only experiments).
	SkipTable5 bool
	// ShardFreq, when non-zero, plants an extra control-term pair at this
	// frequency for the sharded-speedup experiment (the paper-scale
	// "150,000-frequency" query Table 1 could not absorb). The pair is
	// reachable through PairTerms like any Table 1 frequency.
	ShardFreq int
	// Runs overrides the per-cell repetition count for this corpus's
	// experiments (0 = the package-level Runs default).
	Runs int
}

// DefaultConfig is the full-scale configuration used by cmd/tixbench.
func DefaultConfig() Config {
	return Config{Articles: 5000, Seed: 42}
}

// SmallConfig is a reduced configuration for unit tests and Go benchmarks:
// smaller corpus, truncated frequency sweep, heavier Table 5 scaling.
func SmallConfig() Config {
	return Config{
		Articles:         150,
		Seed:             42,
		Table1Freqs:      []int{20, 100, 300, 1000},
		Table3Term2Freqs: []int{20, 200, 1000},
		Table4Terms:      4,
		Table5Divisor:    200,
	}
}

// Corpus is the generated workload: the indexed store plus the control
// terms each experiment uses.
type Corpus struct {
	Cfg Config
	// DB owns the indexed corpus; Index aliases DB's index so the
	// method runners keep their direct index access.
	DB    *db.DB
	Index *index.Index
	Stats synth.Corpus
	// PairTerm returns the two control terms planted at a Table 1/2
	// frequency: pairTerm[freq] = [2]string.
	pairTerms map[int][2]string
	// table4Terms are the Table 4 terms (each at Table4Freq).
	table4Terms []string
	// table5Terms maps a paper frequency to its planted control term.
	table5Terms map[int]string
}

func (c *Corpus) freqs() []int {
	if c.Cfg.Table1Freqs != nil {
		return c.Cfg.Table1Freqs
	}
	return Table1Freqs
}

func (c *Corpus) t3freqs() []int {
	if c.Cfg.Table3Term2Freqs != nil {
		return c.Cfg.Table3Term2Freqs
	}
	return Table3Term2Freqs
}

func (c *Corpus) t4terms() int {
	if c.Cfg.Table4Terms != 0 {
		return c.Cfg.Table4Terms
	}
	return Table4MaxTerms
}

func (c *Corpus) t5divisor() int {
	if c.Cfg.Table5Divisor != 0 {
		return c.Cfg.Table5Divisor
	}
	return 20
}

// PairTerms returns the two control terms planted at the given frequency.
func (c *Corpus) PairTerms(freq int) (string, string, error) {
	p, ok := c.pairTerms[freq]
	if !ok {
		return "", "", fmt.Errorf("bench: no control terms at frequency %d", freq)
	}
	return p[0], p[1], nil
}

// Table4Terms returns the first n same-frequency terms of the Table 4
// workload.
func (c *Corpus) Table4Terms(n int) ([]string, error) {
	if n > len(c.table4Terms) {
		return nil, fmt.Errorf("bench: only %d table-4 terms planted, want %d", len(c.table4Terms), n)
	}
	return c.table4Terms[:n], nil
}

// Table5Phrase returns the planted phrase (two control terms) for a Table 5
// row, with the scaled frequencies.
func (c *Corpus) Table5Phrase(row Table5Row) (t1, t2 string, f1, f2 int, err error) {
	div := c.t5divisor()
	t1, ok1 := c.table5Terms[row.Freq1]
	t2, ok2 := c.table5Terms[row.Freq2]
	if !ok1 || !ok2 {
		return "", "", 0, 0, fmt.Errorf("bench: table 5 terms missing (corpus built with SkipTable5?)")
	}
	return t1, t2, row.Freq1 / div, row.Freq2 / div, nil
}

// Build generates and indexes the benchmark corpus.
func Build(cfg Config) (*Corpus, error) {
	c := &Corpus{
		Cfg:         cfg,
		pairTerms:   map[int][2]string{},
		table5Terms: map[int]string{},
	}
	control := map[string]int{}
	var phrases []synth.PhraseSpec

	// Tables 1–3: a pair of terms per frequency.
	for _, f := range c.freqs() {
		a := fmt.Sprintf("ta%d", f)
		b := fmt.Sprintf("tb%d", f)
		c.pairTerms[f] = [2]string{a, b}
		control[a] = f
		control[b] = f
	}
	// Table 3 reuses ta1000 as the fixed term and tb<f> as the varied one;
	// make sure the varied frequencies exist even when Table1Freqs was
	// overridden.
	for _, f := range c.t3freqs() {
		if _, ok := c.pairTerms[f]; !ok {
			a := fmt.Sprintf("ta%d", f)
			b := fmt.Sprintf("tb%d", f)
			c.pairTerms[f] = [2]string{a, b}
			control[a] = f
			control[b] = f
		}
	}
	if _, ok := c.pairTerms[1000]; !ok {
		c.pairTerms[1000] = [2]string{"ta1000", "tb1000"}
		control["ta1000"] = 1000
		control["tb1000"] = 1000
	}
	// Sharded-speedup experiment: one extra pair at a frequency beyond
	// the Table 1 sweep.
	if cfg.ShardFreq > 0 {
		if _, ok := c.pairTerms[cfg.ShardFreq]; !ok {
			a := fmt.Sprintf("ta%d", cfg.ShardFreq)
			b := fmt.Sprintf("tb%d", cfg.ShardFreq)
			c.pairTerms[cfg.ShardFreq] = [2]string{a, b}
			control[a] = cfg.ShardFreq
			control[b] = cfg.ShardFreq
		}
	}
	// Table 4: n terms at the same frequency.
	for i := 0; i < c.t4terms(); i++ {
		name := fmt.Sprintf("tg%d", i+1)
		c.table4Terms = append(c.table4Terms, name)
		control[name] = Table4Freq
	}
	// Table 5: one term per distinct paper frequency (scaled), plus the
	// planted phrase adjacencies per row (scaled result sizes).
	if !cfg.SkipTable5 {
		div := c.t5divisor()
		distinct := map[int]bool{}
		for _, row := range Table5Rows {
			distinct[row.Freq1] = true
			distinct[row.Freq2] = true
		}
		freqs := make([]int, 0, len(distinct))
		for f := range distinct {
			freqs = append(freqs, f)
		}
		sort.Ints(freqs)
		for _, f := range freqs {
			name := fmt.Sprintf("th%d", f)
			c.table5Terms[f] = name
			control[name] = f / div
		}
		// Planted adjacencies; budget check: each term's total planted
		// pairs must fit its frequency.
		need := map[string]int{}
		for _, row := range Table5Rows {
			together := row.ResultSize / div
			if together < 1 {
				together = 1
			}
			t1 := c.table5Terms[row.Freq1]
			t2 := c.table5Terms[row.Freq2]
			phrases = append(phrases, synth.PhraseSpec{T1: t1, T2: t2, Together: together})
			need[t1] += together
			need[t2] += together
		}
		needTerms := make([]string, 0, len(need))
		for term := range need {
			needTerms = append(needTerms, term)
		}
		sort.Strings(needTerms)
		for _, term := range needTerms {
			if n := need[term]; control[term] < n {
				control[term] = n
			}
		}
	}

	gen := synth.DefaultConfig()
	gen.Articles = cfg.Articles
	gen.Seed = cfg.Seed
	gen.ControlTerms = control
	gen.Phrases = phrases
	corpus, err := synth.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("bench: corpus generation: %w", err)
	}
	c.DB = db.New(db.Options{})
	if err := c.DB.LoadTree("corpus.xml", corpus.Root); err != nil {
		return nil, err
	}
	c.Index = c.DB.Index()
	c.Stats = *corpus
	c.Stats.Root = nil // the store owns the tree; avoid double retention
	return c, nil
}

// Snapshot writes the corpus database (store and index) in the v1 snapshot
// format. Because synth generation, loading, and index construction are
// all deterministic in Config.Seed, two corpora built from the same Config
// snapshot to identical bytes — the determinism test pins exactly that.
func (c *Corpus) Snapshot(w io.Writer) error {
	c.DB.Index() // persist the index too
	return c.DB.Save(w)
}

// SplitParts re-partitions the single corpus document into parts contiguous
// article-range documents (cloned and renumbered), for loading into a
// sharded database. parts must not exceed the article count.
func (c *Corpus) SplitParts(parts int) ([]*xmltree.Node, error) {
	docs := c.DB.Store().Docs()
	if len(docs) != 1 {
		return nil, fmt.Errorf("bench: corpus has %d documents, want 1", len(docs))
	}
	root := docs[0].Root
	articles := root.Children
	if parts < 1 || parts > len(articles) {
		return nil, fmt.Errorf("bench: cannot split %d articles into %d parts", len(articles), parts)
	}
	out := make([]*xmltree.Node, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * len(articles) / parts
		hi := (i + 1) * len(articles) / parts
		part := &xmltree.Node{Tag: root.Tag}
		for _, a := range articles[lo:hi] {
			child := a.Clone()
			child.Parent = part
			part.Children = append(part.Children, child)
		}
		xmltree.Number(part)
		out = append(out, part)
	}
	return out, nil
}

// ShardDB loads the corpus, split into parts documents, into a sharded
// database with the given shard count (round-robin placement for balanced
// segments) and warms every segment index. Using the same parts count for
// every shard count keeps the per-document work identical, so timing
// differences isolate the fan-out itself.
func (c *Corpus) ShardDB(shards, parts int) (*shard.DB, error) {
	roots, err := c.SplitParts(parts)
	if err != nil {
		return nil, err
	}
	s := shard.New(shard.Options{Shards: shards, Strategy: shard.RoundRobin})
	for i, r := range roots {
		if err := s.LoadTree(fmt.Sprintf("part%03d.xml", i), r); err != nil {
			return nil, err
		}
	}
	s.Warm()
	return s, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The bench gate compares a fresh hot-path run against the committed
// BENCH_10.json baseline and fails `make check` on regression. Two
// defenses keep it honest across machines and noisy CI hosts:
//
//   - timings are normalized by the Calibrate cell (a fixed loop mixing
//     scalar compute with DRAM-resident random reads — the same resource
//     blend the methods spend) of the same row before comparing, so a
//     slower or bandwidth-contended machine does not read as a
//     regression — only a change in the method's cost relative to the
//     machine's current delivered speed does;
//   - allocs/op is compared unnormalized (allocation counts are
//     machine-independent), with a small absolute slack for runtime
//     background noise;
//   - cells that regress are re-measured (up to gateAttempts, corpus
//     built once) and judged on their best attempt, so a transient
//     burst of neighbor load cannot fail the build on its own.

// GateTolerance is the allowed normalized-time regression (0.10 = 10%).
const GateTolerance = 0.10

// gateAllocSlack absorbs runtime-background allocations when comparing
// allocs/op (GC worker bookkeeping attributed to the measured interval).
const gateAllocSlack = 16.0

// GateResult is one cell comparison.
type GateResult struct {
	Table, Row, Method string
	// Ratio is current/baseline after calibration-normalization (time)
	// — 1.0 means unchanged, >1 means slower.
	Ratio float64
	// AllocRatio is current/baseline allocs/op (0 when the baseline
	// measured none).
	AllocRatio float64
	// TimeFailed/AllocFailed split Failed by cause: time failures can be
	// excused by measured run-to-run noise, allocation failures cannot
	// (allocation counts are deterministic).
	TimeFailed  bool
	AllocFailed bool
	Failed      bool
	Reason      string
}

// findTable locates a table by ID in a decoded baseline file.
func findTable(tables []TableJSON, id string) (*TableJSON, bool) {
	for i := range tables {
		if tables[i].ID == id {
			return &tables[i], true
		}
	}
	return nil, false
}

func findCell(row *RowJSON, method string) (*CellJSON, bool) {
	for i := range row.Cells {
		if row.Cells[i].Method == method {
			return &row.Cells[i], true
		}
	}
	return nil, false
}

// GateCompare checks a freshly measured hot-path table against the same
// table in the decoded baseline. Every non-calibration cell present in
// both is compared; cells missing from the baseline are reported but do
// not fail (a new workload has no history yet).
func GateCompare(baseline []TableJSON, current *Table) ([]GateResult, error) {
	base, ok := findTable(baseline, current.ID)
	if !ok {
		return nil, fmt.Errorf("bench: baseline has no table %q — regenerate the baseline first", current.ID)
	}
	var out []GateResult
	for _, row := range current.Rows {
		var baseRow *RowJSON
		for i := range base.Rows {
			if base.Rows[i].Label == row.Label {
				baseRow = &base.Rows[i]
				break
			}
		}
		// Calibration cells anchor the normalization for this row.
		var curCal, baseCal float64
		for _, c := range row.Cells {
			if c.Method == MCalibrate && c.Err == nil {
				curCal = c.M.Seconds
			}
		}
		if baseRow != nil {
			if bc, ok := findCell(baseRow, string(MCalibrate)); ok && bc.Error == "" {
				baseCal = bc.Seconds
			}
		}
		for _, c := range row.Cells {
			if c.Method == MCalibrate {
				continue
			}
			r := GateResult{Table: current.ID, Row: row.Label, Method: string(c.Method)}
			if c.Err != nil {
				r.Failed = true
				r.Reason = fmt.Sprintf("method failed: %v", c.Err)
				out = append(out, r)
				continue
			}
			var bc *CellJSON
			if baseRow != nil {
				bc, _ = findCell(baseRow, string(c.Method))
			}
			if bc == nil || bc.Error != "" || bc.Seconds == 0 {
				r.Reason = "no baseline measurement; skipped"
				out = append(out, r)
				continue
			}
			cur, basev := c.M.Seconds, bc.Seconds
			if curCal > 0 && baseCal > 0 {
				cur /= curCal
				basev /= baseCal
			}
			r.Ratio = cur / basev
			if r.Ratio > 1+GateTolerance {
				r.TimeFailed = true
				r.Failed = true
				r.Reason = fmt.Sprintf("time regressed %.0f%% (normalized)", (r.Ratio-1)*100)
			}
			if bc.AllocsPerOp > 0 {
				r.AllocRatio = c.M.AllocsPerOp / bc.AllocsPerOp
				if c.M.AllocsPerOp > bc.AllocsPerOp*(1+GateTolerance)+gateAllocSlack {
					r.AllocFailed = true
					r.Failed = true
					why := fmt.Sprintf("allocs/op regressed: %.1f -> %.1f", bc.AllocsPerOp, c.M.AllocsPerOp)
					if r.Reason != "" {
						r.Reason += "; " + why
					} else {
						r.Reason = why
					}
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// gateAttempts bounds re-measurement when cells fail. A genuine code
// regression fails every attempt; a burst of neighbor load on a shared
// host fails one and passes the next. Per cell the best attempt counts.
const gateAttempts = 3

// RunGate reads a baseline JSON file (an array of tables, as written by
// `tixbench -json`), re-measures the named tier — building the corpus
// once and re-measuring up to gateAttempts times, keeping each cell's
// best attempt — writes a report, and returns an error listing every
// failed cell (nil when the gate passes).
func RunGate(baseline io.Reader, tierName string, seed int64, report io.Writer) error {
	var tables []TableJSON
	if err := json.NewDecoder(baseline).Decode(&tables); err != nil {
		return fmt.Errorf("bench: baseline decode: %w", err)
	}
	spec, err := HotpathTier(tierName)
	if err != nil {
		return err
	}
	idx, _, err := HotpathCorpus(spec, seed)
	if err != nil {
		return err
	}
	best := map[string]GateResult{}
	ratios := map[string][]float64{}
	var order []string
	for attempt := 1; attempt <= gateAttempts; attempt++ {
		results, err := GateCompare(tables, hotpathMeasureTable(idx, spec))
		if err != nil {
			return err
		}
		anyFailed := false
		for _, r := range results {
			key := r.Table + "/" + r.Row + "/" + r.Method
			prev, seen := best[key]
			if !seen {
				order = append(order, key)
			}
			if !seen || better(r, prev) {
				best[key] = r
			}
			if r.Ratio > 0 {
				ratios[key] = append(ratios[key], r.Ratio)
			}
			if best[key].Failed {
				anyFailed = true
			}
		}
		if !anyFailed {
			break
		}
		if attempt < gateAttempts {
			fmt.Fprintf(report, "gate: regressions at attempt %d/%d; re-measuring...\n", attempt, gateAttempts)
		}
	}
	if drift := globalDrift(best, order); drift > 0 {
		fmt.Fprintf(report, "gate: whole-suite drift x%.2f vs baseline (median across cells) — credited as environmental noise\n", 1+drift)
	}
	applyNoiseFloor(best, ratios, order)
	var failed []string
	for _, key := range order {
		r := best[key]
		status := "ok"
		if r.Failed {
			status = "FAIL"
			failed = append(failed, fmt.Sprintf("%s/%s/%s: %s", r.Table, r.Row, r.Method, r.Reason))
		} else if r.Reason != "" && r.Ratio == 0 {
			status = "skip" // unmeasured (no baseline); excused cells measured fine
		}
		detail := ""
		if r.Ratio > 0 {
			detail = fmt.Sprintf(" time x%.2f", r.Ratio)
		}
		if r.AllocRatio > 0 {
			detail += fmt.Sprintf(" allocs x%.2f", r.AllocRatio)
		}
		fmt.Fprintf(report, "gate %-4s %s/%s/%s%s\n", status, r.Table, r.Row, r.Method, detail)
	}
	if len(failed) > 0 {
		return fmt.Errorf("bench gate failed:\n  %s", strings.Join(failed, "\n  "))
	}
	return nil
}

// better reports whether gate result a is a better showing for its cell
// than b: passing beats failing, then the lower time ratio wins.
func better(a, b GateResult) bool {
	if a.Failed != b.Failed {
		return !a.Failed
	}
	return a.Ratio < b.Ratio
}

// driftCap bounds the environmental-drift credit: a uniform slowdown
// beyond 50% across every cell still fails, so a genuinely global code
// regression of that size cannot hide behind the drift excuse.
const driftCap = 0.50

// globalDrift estimates the machine's epoch drift against the baseline
// recording: the median best-ratio across all measured cells. A code
// change regresses one method against the pack; a shared-host slow
// epoch moves the whole pack. Only the slow direction (median > 1) is
// credited, capped at driftCap.
func globalDrift(best map[string]GateResult, order []string) float64 {
	var rs []float64
	for _, key := range order {
		if r := best[key]; r.Ratio > 0 {
			rs = append(rs, r.Ratio)
		}
	}
	if len(rs) < 3 {
		return 0 // too few cells to call anything "the pack"
	}
	sort.Float64s(rs)
	med := rs[len(rs)/2]
	if len(rs)%2 == 0 {
		med = (med + rs[len(rs)/2-1]) / 2
	}
	drift := med - 1
	if drift < 0 {
		return 0
	}
	if drift > driftCap {
		return driftCap
	}
	return drift
}

// applyNoiseFloor excuses time failures that do not clear the measured
// noise floor: with the same binary measured several times, the
// attempt-to-attempt spread is this machine's live reproducibility, and
// the whole-suite median drift is its epoch offset from the baseline
// recording — a "regression" inside tolerance+spread+drift is
// unfalsifiable. Allocation failures are never excused — allocation
// counts do not depend on the machine's mood.
func applyNoiseFloor(best map[string]GateResult, ratios map[string][]float64, order []string) {
	drift := globalDrift(best, order)
	for _, key := range order {
		r := best[key]
		if !r.Failed || !r.TimeFailed || r.AllocFailed {
			continue
		}
		rs := ratios[key]
		if len(rs) < 2 {
			continue
		}
		lo, hi := rs[0], rs[0]
		for _, v := range rs[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spread := hi/lo - 1
		if r.Ratio <= 1+GateTolerance+spread+drift {
			r.Failed = false
			r.TimeFailed = false
			r.Reason = fmt.Sprintf("time x%.2f within measured noise (spread %.0f%%, drift %.0f%%)", r.Ratio, spread*100, drift*100)
			best[key] = r
		}
	}
}

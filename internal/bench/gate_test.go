package bench

import (
	"strings"
	"testing"
)

// gateFixture builds a matching baseline/current pair: one hotpath table
// with a join cell and a calibration cell.
func gateFixture(baseSec, baseCal, baseAllocs, curSec, curCal, curAllocs float64) ([]TableJSON, *Table) {
	baseline := []TableJSON{{
		ID: "hotpath-gate",
		Rows: []RowJSON{{
			Label: "dense",
			Cells: []CellJSON{
				{Method: string(MTermJoin), Seconds: baseSec, AllocsPerOp: baseAllocs},
				{Method: string(MCalibrate), Seconds: baseCal},
			},
		}},
	}}
	current := &Table{
		ID:      "hotpath-gate",
		Columns: []Method{MTermJoin, MCalibrate},
		Rows: []Row{{
			Label: "dense",
			Cells: []Cell{
				{Method: MTermJoin, M: Measurement{Seconds: curSec, AllocsPerOp: curAllocs}},
				{Method: MCalibrate, M: Measurement{Seconds: curCal}},
			},
		}},
	}
	return baseline, current
}

func gateFailures(t *testing.T, baseline []TableJSON, current *Table) []GateResult {
	t.Helper()
	results, err := GateCompare(baseline, current)
	if err != nil {
		t.Fatal(err)
	}
	var failed []GateResult
	for _, r := range results {
		if r.Failed {
			failed = append(failed, r)
		}
	}
	return failed
}

func TestGatePassesWithinTolerance(t *testing.T) {
	baseline, current := gateFixture(0.100, 0.010, 50, 0.105, 0.010, 50)
	if failed := gateFailures(t, baseline, current); len(failed) != 0 {
		t.Errorf("5%% drift should pass, failed: %+v", failed)
	}
}

func TestGateFailsOnTimeRegression(t *testing.T) {
	baseline, current := gateFixture(0.100, 0.010, 50, 0.125, 0.010, 50)
	failed := gateFailures(t, baseline, current)
	if len(failed) != 1 || !strings.Contains(failed[0].Reason, "time regressed") {
		t.Errorf("25%% regression should fail on time, got %+v", failed)
	}
}

// TestGateNormalizesByCalibration is the cross-machine case: everything —
// method and calibration loop alike — is 3x slower, which must read as
// "same machine-relative cost", not a regression.
func TestGateNormalizesByCalibration(t *testing.T) {
	baseline, current := gateFixture(0.100, 0.010, 50, 0.300, 0.030, 50)
	if failed := gateFailures(t, baseline, current); len(failed) != 0 {
		t.Errorf("uniformly slower machine should pass after normalization, failed: %+v", failed)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	// Time unchanged; allocs/op balloons well past 10% + the slack.
	baseline, current := gateFixture(0.100, 0.010, 200, 0.100, 0.010, 400)
	failed := gateFailures(t, baseline, current)
	if len(failed) != 1 || !strings.Contains(failed[0].Reason, "allocs/op regressed") {
		t.Errorf("doubled allocs/op should fail, got %+v", failed)
	}
}

func TestGateSkipsCellsWithoutBaseline(t *testing.T) {
	baseline, current := gateFixture(0.100, 0.010, 50, 0.100, 0.010, 50)
	current.Rows[0].Cells = append(current.Rows[0].Cells, Cell{
		Method: MPhraseFinder, M: Measurement{Seconds: 0.5},
	})
	results, err := GateCompare(baseline, current)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Method == string(MPhraseFinder) {
			if r.Failed || !strings.Contains(r.Reason, "no baseline") {
				t.Errorf("new workload without history must be skipped, got %+v", r)
			}
			return
		}
	}
	t.Error("PhraseFinder cell missing from gate results")
}

func TestGateMissingTableErrors(t *testing.T) {
	_, current := gateFixture(0.1, 0.01, 1, 0.1, 0.01, 1)
	if _, err := GateCompare(nil, current); err == nil {
		t.Error("missing baseline table should error")
	}
}

// TestHotpathTableEndToEnd runs the full rig on a miniature tier: the
// streamed corpus builds, every method measures without error, and the
// per-op measurements carry allocation data.
func TestHotpathTableEndToEnd(t *testing.T) {
	tab, err := HotpathTable(HotpathTierSpec{Name: "test", Docs: 400}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "hotpath-test" || len(tab.Rows) == 0 {
		t.Fatalf("table = %+v", tab)
	}
	for _, row := range tab.Rows {
		for _, c := range row.Cells {
			if c.Err != nil {
				t.Fatalf("row %s method %s: %v", row.Label, c.Method, c.Err)
			}
			if c.M.Seconds <= 0 {
				t.Errorf("row %s method %s: non-positive seconds", row.Label, c.Method)
			}
			if c.Method != MCalibrate && c.M.Results <= 0 {
				t.Errorf("row %s method %s: no results", row.Label, c.Method)
			}
		}
	}
}

// TestNoiseFloor pins the excuse rule: a time failure inside
// tolerance+measured-spread is excused, one beyond it is not, and
// allocation failures never are.
func TestNoiseFloor(t *testing.T) {
	mk := func(ratio float64, timeFailed, allocFailed bool) GateResult {
		return GateResult{
			Table: "hotpath-gate", Row: "dense", Method: "TermJoin",
			Ratio: ratio, TimeFailed: timeFailed, AllocFailed: allocFailed,
			Failed: timeFailed || allocFailed, Reason: "time regressed",
		}
	}
	order := []string{"k"}

	// 14% over baseline with 30% attempt spread: unfalsifiable, excused.
	best := map[string]GateResult{"k": mk(1.14, true, false)}
	applyNoiseFloor(best, map[string][]float64{"k": {1.14, 1.30, 1.48}}, order)
	if best["k"].Failed {
		t.Errorf("14%% regression under 30%% spread should be excused, got %+v", best["k"])
	}

	// 40% over baseline with a tight 2% spread: a real regression.
	best = map[string]GateResult{"k": mk(1.40, true, false)}
	applyNoiseFloor(best, map[string][]float64{"k": {1.40, 1.42, 1.43}}, order)
	if !best["k"].Failed {
		t.Error("40% regression under 2% spread must stay failed")
	}

	// Allocation failures are deterministic; spread never excuses them.
	best = map[string]GateResult{"k": mk(1.05, false, true)}
	applyNoiseFloor(best, map[string][]float64{"k": {1.05, 1.60}}, order)
	if !best["k"].Failed {
		t.Error("alloc regression must never be excused by time spread")
	}

	// A single attempt has no spread to measure; nothing is excused.
	best = map[string]GateResult{"k": mk(1.14, true, false)}
	applyNoiseFloor(best, map[string][]float64{"k": {1.14}}, order)
	if !best["k"].Failed {
		t.Error("one attempt gives no noise estimate; failure must stand")
	}
}

// TestNoiseFloorGlobalDrift pins the epoch-drift credit: when the whole
// pack of cells drifted together the gate reads it as environmental, but
// one cell regressing against a steady pack still fails, and the credit
// is capped.
func TestNoiseFloorGlobalDrift(t *testing.T) {
	pack := func(packRatio, failRatio float64) (map[string]GateResult, map[string][]float64, []string) {
		best := map[string]GateResult{}
		ratios := map[string][]float64{}
		var order []string
		for i, key := range []string{"a", "b", "c", "d", "e"} {
			r := GateResult{Table: "t", Row: "r", Method: key, Ratio: packRatio}
			if i == 0 {
				r.Ratio = failRatio
				r.TimeFailed = true
				r.Failed = true
				r.Reason = "time regressed"
			}
			best[key] = r
			ratios[key] = []float64{r.Ratio, r.Ratio * 1.02}
			order = append(order, key)
		}
		return best, ratios, order
	}

	// Whole pack at 1.3, "failing" cell at 1.35: epoch drift, excused.
	best, ratios, order := pack(1.30, 1.35)
	applyNoiseFloor(best, ratios, order)
	if best["a"].Failed {
		t.Errorf("cell at x1.35 amid pack at x1.30 is drift, got %+v", best["a"])
	}

	// Pack steady at 1.0, one cell at 1.40 with tight spread: regression.
	best, ratios, order = pack(1.00, 1.40)
	applyNoiseFloor(best, ratios, order)
	if !best["a"].Failed {
		t.Error("cell at x1.40 against a steady pack must stay failed")
	}

	// Drift credit is capped: pack at 2.2 cannot excuse a cell at 2.4.
	best, ratios, order = pack(2.20, 2.40)
	applyNoiseFloor(best, ratios, order)
	if !best["a"].Failed {
		t.Error("drift credit beyond the cap must not excuse a 2.4x cell")
	}
}

package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden suite pins the deterministic outputs of the benchmark
// pipeline — result counts per table cell at the test-scale configuration
// (seed 42) — so a regression in any access method, the corpus generator,
// or the planted workload shows up as a diff against testdata/golden.json.
// Timings are machine-dependent and are never pinned.
//
// Regenerate after an intentional workload change with:
//
//	go test ./internal/bench -run TestGoldenTables -update

var update = flag.Bool("update", false, "regenerate golden files")

// goldenRow pins one workload row: the per-method result counts.
type goldenRow struct {
	Label   string         `json:"label"`
	Results map[string]int `json:"results"`
}

// goldenTable pins one table.
type goldenTable struct {
	ID   string      `json:"id"`
	Rows []goldenRow `json:"rows"`
}

func goldenConfig() Config {
	cfg := SmallConfig()
	cfg.Runs = 1         // timings are not pinned; one run per cell suffices
	cfg.ShardFreq = 2000 // outside the small Table 1 sweep
	return cfg
}

func snapshotTables(t *testing.T, c *Corpus) []goldenTable {
	t.Helper()
	builders := []func() (*Table, error){
		c.Table1, c.Table2, c.Table3, c.Table4, c.Table5,
		func() (*Table, error) { return c.ShardTable([]int{1, 2}) },
	}
	var out []goldenTable
	for _, build := range builders {
		tab, err := build()
		if err != nil {
			t.Fatal(err)
		}
		gt := goldenTable{ID: tab.ID}
		for _, row := range tab.Rows {
			gr := goldenRow{Label: row.Label, Results: map[string]int{}}
			for _, cell := range row.Cells {
				if cell.Err != nil {
					t.Fatalf("table %s row %s method %s: %v", tab.ID, row.Label, cell.Method, cell.Err)
				}
				gr.Results[string(cell.Method)] = cell.M.Results
			}
			gt.Rows = append(gt.Rows, gr)
		}
		out = append(out, gt)
	}
	return out
}

func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden tables build the full test corpus")
	}
	c, err := Build(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotTables(t, c)

	path := filepath.Join("testdata", "golden.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []goldenTable
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d tables, golden has %d (run with -update after an intentional change)", len(got), len(want))
	}
	for i, wt := range want {
		gt := got[i]
		if gt.ID != wt.ID {
			t.Errorf("table %d id = %q, want %q", i, gt.ID, wt.ID)
			continue
		}
		if len(gt.Rows) != len(wt.Rows) {
			t.Errorf("table %s: %d rows, want %d", gt.ID, len(gt.Rows), len(wt.Rows))
			continue
		}
		for j, wr := range wt.Rows {
			gr := gt.Rows[j]
			if gr.Label != wr.Label {
				t.Errorf("table %s row %d label = %q, want %q", gt.ID, j, gr.Label, wr.Label)
				continue
			}
			for method, count := range wr.Results {
				if gr.Results[method] != count {
					t.Errorf("table %s row %s method %s: %d results, want %d",
						gt.ID, gr.Label, method, gr.Results[method], count)
				}
			}
		}
	}
}

// TestCorpusSnapshotDeterminism pins that two corpus builds from one
// Config produce byte-identical database snapshots: generation, loading,
// and index construction have no hidden nondeterminism (map iteration,
// time, pointers) leaking into the persisted form.
func TestCorpusSnapshotDeterminism(t *testing.T) {
	cfg := SmallConfig()
	cfg.Articles = 40
	var snaps [2]bytes.Buffer
	for i := range snaps {
		c, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Snapshot(&snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if snaps[0].Len() == 0 {
		t.Fatal("empty snapshot")
	}
	if !bytes.Equal(snaps[0].Bytes(), snaps[1].Bytes()) {
		t.Fatalf("two builds at seed %d differ: %d vs %d bytes (first divergence at %d)",
			cfg.Seed, snaps[0].Len(), snaps[1].Len(), firstDiff(snaps[0].Bytes(), snaps[1].Bytes()))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestShardTableConsistency checks the sharded experiment's invariant
// directly: every shard-count column reports the same result count (the
// differential suite proves element identity; this pins it at bench
// scale, split corpus included).
func TestShardTableConsistency(t *testing.T) {
	cfg := SmallConfig()
	cfg.Runs = 1
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := c.ShardTable([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if len(row.Cells) != 3 {
			t.Fatalf("row %s: %d cells", row.Label, len(row.Cells))
		}
		for _, cell := range row.Cells {
			if cell.Err != nil {
				t.Fatalf("row %s %s: %v", row.Label, cell.Method, cell.Err)
			}
			if cell.M.Results != row.Cells[0].M.Results {
				t.Errorf("row %s: %s found %d results, %s found %d — sharded counts diverge",
					row.Label, cell.Method, cell.M.Results, row.Cells[0].Method, row.Cells[0].M.Results)
			}
		}
		if row.Cells[0].M.Results == 0 {
			t.Errorf("row %s: no results", row.Label)
		}
	}
}

package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// The hot-path rig: a many-small-document corpus tier (up to one million
// documents, streamed into the store so no bulk tree is ever
// materialized) over which the three uncached hot paths — TermJoin,
// TopKTermJoin, PhraseFinder — are measured in ns/op, allocs/op and
// bytes/op. The committed BENCH_10.json holds the baseline; `make
// bench-gate` re-runs the gate tier and fails on regression (see gate.go).

// HotpathTierSpec names one corpus tier of the hot-path rig.
type HotpathTierSpec struct {
	// Name becomes the table ID suffix ("hotpath-<name>").
	Name string
	// Docs is the streamed corpus size in documents.
	Docs int
}

// HotpathTiers are the standard tiers: a small one cheap enough for the
// bench-gate run inside `make check`, and the million-document tier the
// acceptance numbers come from.
var HotpathTiers = []HotpathTierSpec{
	{Name: "gate", Docs: 20000},
	{Name: "1m", Docs: 1000000},
}

// HotpathTier resolves a tier by name.
func HotpathTier(name string) (HotpathTierSpec, error) {
	for _, t := range HotpathTiers {
		if t.Name == name {
			return t, nil
		}
	}
	return HotpathTierSpec{}, fmt.Errorf("bench: unknown hotpath tier %q", name)
}

// MCalibrate is the machine-speed reference column: a fixed CPU-bound
// loop whose ns/op lets the gate normalize timings measured on different
// hardware before comparing them.
const MCalibrate Method = "Calibrate"

// MTopKTermJoin is the top-k column of the hot-path table.
const MTopKTermJoin Method = "TopKTermJoin"

// hotpathWorkload derives the planted workload for a tier from its
// document count: per row a term pair for the joins and a
// skewed-frequency phrase (rare + common term) for PhraseFinder.
type hotpathWorkload struct {
	label                string
	pairFreq             int // per-term frequency of the join pair
	rareFreq, commonFreq int // phrase term frequencies
	together             int // planted adjacencies
	pairA, pairB, pr, pc string
}

func hotpathWorkloads(docs int) []hotpathWorkload {
	mk := func(label string, pair, rare, common, together int) hotpathWorkload {
		atLeast1 := func(n int) int {
			if n < 1 {
				return 1
			}
			return n
		}
		pair, rare, common, together = atLeast1(pair), atLeast1(rare), atLeast1(common), atLeast1(together)
		return hotpathWorkload{
			label: label, pairFreq: pair, rareFreq: rare, commonFreq: common, together: together,
			pairA: fmt.Sprintf("ja%s", label), pairB: fmt.Sprintf("jb%s", label),
			pr: fmt.Sprintf("pr%s", label), pc: fmt.Sprintf("pc%s", label),
		}
	}
	return []hotpathWorkload{
		// Sparse: posting lists well below the bitmap-adoption density.
		mk("sparse", docs/50, docs/1000, docs/20, docs/2000),
		// Dense: one posting every other document — past the adoption
		// threshold, so the joins and the phrase verifier run over the
		// dense representation where it exists.
		mk("dense", docs/2, docs/500, docs/4, docs/1000),
	}
}

// HotpathCorpus builds one tier's corpus: documents are generated and
// ingested one at a time, then indexed once.
func HotpathCorpus(spec HotpathTierSpec, seed int64) (*index.Index, *synth.StreamStats, error) {
	cfg := synth.DefaultStreamConfig(spec.Docs)
	cfg.Seed = seed
	cfg.ControlTerms = map[string]int{}
	var phrases []synth.PhraseSpec
	for _, w := range hotpathWorkloads(spec.Docs) {
		cfg.ControlTerms[w.pairA] = w.pairFreq
		cfg.ControlTerms[w.pairB] = w.pairFreq
		cfg.ControlTerms[w.pr] = w.rareFreq
		cfg.ControlTerms[w.pc] = w.commonFreq
		phrases = append(phrases, synth.PhraseSpec{T1: w.pr, T2: w.pc, Together: w.together})
	}
	cfg.Phrases = phrases

	s := storage.NewStore()
	stats, err := synth.GenerateStream(cfg, func(i int, root *xmltree.Node) error {
		_, aerr := s.AddTree(fmt.Sprintf("d%07d.xml", i), root)
		return aerr
	})
	if err != nil {
		return nil, nil, err
	}
	idx, err := index.BuildChecked(s, tokenize.New())
	if err != nil {
		return nil, nil, err
	}
	return idx, stats, nil
}

// hotpathBatches is how many timed batches each cell runs; the per-op
// numbers keep the fastest batch. Minimum-of-N is the robust estimator
// here: scheduler preemption, GC assists, and neighbor load only ever
// make a batch slower, so the minimum tracks the code while the mean
// tracks the machine's mood — and the gate needs run-to-run stability
// well inside its 10% tolerance.
const hotpathBatches = 3

// hotpathMeasure times one operation: a GC-settled warm-up run sizes the
// batch, then hotpathBatches batches are timed under runtime.MemStats
// deltas for allocs/op and bytes/op, keeping each metric's minimum.
// Results and errors come from the last run.
//
// The collector is disabled across the timed batches (each batch starts
// from a freshly collected heap). On one core a mark cycle over a
// multi-hundred-MB corpus is enormous next to a sub-millisecond op, and
// whether a given batch overlaps a cycle is phase alignment — a coin
// flip that swings per-op time several-fold and poisons any committed
// baseline. With GC off, time measures the algorithm deterministically;
// GC *pressure* is still gated, separately and machine-independently,
// through allocs/op.
func hotpathMeasure(f func() (int, error)) (Measurement, error) {
	var m Measurement
	runtime.GC()
	start := time.Now()
	n, err := f()
	warm := time.Since(start)
	if err != nil {
		return m, err
	}
	prevGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prevGC)
	// Aim for ~300ms per batch; at least 2 runs so one-off effects
	// (first-touch faults, lazily built caches) do not dominate, at most
	// 2000 so a tiny op does not stall the rig.
	runs := 2
	if warm > 0 {
		if r := int(300 * time.Millisecond / warm); r > runs {
			runs = r
		}
	}
	if runs > 2000 {
		runs = 2000
	}
	for b := 0; b < hotpathBatches; b++ {
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start = time.Now()
		for i := 0; i < runs; i++ {
			if n, err = f(); err != nil {
				return m, err
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		secs := wall.Seconds() / float64(runs)
		allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(runs)
		bytes := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(runs)
		if b == 0 || secs < m.Seconds {
			m.Seconds = secs
		}
		if b == 0 || allocs < m.AllocsPerOp {
			m.AllocsPerOp = allocs
		}
		if b == 0 || bytes < m.BytesPerOp {
			m.BytesPerOp = bytes
		}
	}
	m.Results = n
	return m, nil
}

// calArena backs the calibration loop's random reads. Allocated once, on
// the warm-up run, so it never lands inside a measured interval.
var calArena []uint64

const calArenaWords = 1 << 22 // 32 MiB — far beyond L3, so reads hit DRAM

// hotpathCalibrate is the fixed machine-speed reference. It deliberately
// mixes the two resources query execution spends: a dependent xorshift
// chain (scalar core speed) and a random read over a 32 MiB arena per
// step (memory bandwidth/latency). A pure-register spin is useless as a
// normalizer on shared hardware — noisy neighbors steal memory bandwidth
// without touching register IPC, so the methods slow down while a
// register-only reference stays flat and the gate reads contention as a
// code regression. This blend slows down with the methods.
func hotpathCalibrate() (int, error) {
	if calArena == nil {
		calArena = make([]uint64, calArenaWords)
		for i := range calArena {
			calArena[i] = uint64(i) * 0x9e3779b97f4a7c15
		}
	}
	x := uint64(0x2545f4914f6cdd1d)
	var sum uint64
	for i := 0; i < 1<<19; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		sum += calArena[x&(calArenaWords-1)]
	}
	if x == 0 && sum == 0 { // unreachable; keeps the loop live
		return 0, fmt.Errorf("bench: calibration collapsed")
	}
	return 1, nil
}

// HotpathTable builds the tier's corpus and measures every hot path over
// it. The table's per-cell Seconds are per-operation (not per-table-run),
// with AllocsPerOp/BytesPerOp filled in.
func HotpathTable(spec HotpathTierSpec, seed int64) (*Table, error) {
	idx, _, err := HotpathCorpus(spec, seed)
	if err != nil {
		return nil, err
	}
	return hotpathMeasureTable(idx, spec), nil
}

// hotpathMeasureTable measures every hot path over an already-built tier
// corpus, so a caller can re-measure without paying the build again.
func hotpathMeasureTable(idx *index.Index, spec HotpathTierSpec) *Table {
	t := &Table{
		ID:      "hotpath-" + spec.Name,
		Caption: fmt.Sprintf("Uncached hot paths, %d-document streamed tier (seconds per op)", spec.Docs),
		Columns: []Method{MTermJoin, MTopKTermJoin, MPhraseFinder, MCalibrate},
	}
	for _, w := range hotpathWorkloads(spec.Docs) {
		row := Row{Label: w.label, Extra: fmt.Sprintf("pairFreq=%d rare=%d common=%d together=%d", w.pairFreq, w.rareFreq, w.commonFreq, w.together)}
		q := exec.TermQuery{Terms: []string{w.pairA, w.pairB}, Scorer: exec.DefaultScorer{}}
		tjM, tjErr := hotpathMeasure(func() (int, error) {
			tj := &exec.TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
			n := 0
			if err := tj.Run(func(exec.ScoredNode) { n++ }); err != nil {
				return 0, err
			}
			return n, nil
		})
		row.Cells = append(row.Cells, Cell{Method: MTermJoin, M: tjM, Err: tjErr})
		tkM, tkErr := hotpathMeasure(func() (int, error) {
			tk := &exec.TopKTermJoin{Index: idx, Query: q, K: 10}
			res, err := tk.Run()
			if err != nil {
				return 0, err
			}
			return len(res), nil
		})
		row.Cells = append(row.Cells, Cell{Method: MTopKTermJoin, M: tkM, Err: tkErr})
		pfM, pfErr := hotpathMeasure(func() (int, error) {
			pf := &exec.PhraseFinder{Index: idx, Phrase: []string{w.pr, w.pc}}
			n := 0
			if err := pf.Run(func(exec.PhraseMatch) { n++ }); err != nil {
				return 0, err
			}
			return n, nil
		})
		row.Cells = append(row.Cells, Cell{Method: MPhraseFinder, M: pfM, Err: pfErr})
		calM, calErr := hotpathMeasure(hotpathCalibrate)
		row.Cells = append(row.Cells, Cell{Method: MCalibrate, M: calM, Err: calErr})
		t.Rows = append(t.Rows, row)
	}
	return t
}

package bench

import (
	"fmt"
	"time"

	"repro/internal/index"
)

// IndexTable reports the block-compressed index itself rather than a query
// workload: the postings-memory accounting (encoded versus raw bytes, the
// compression ratio the acceptance bar is measured against), full-corpus
// build time, and full-vocabulary decode throughput. Rows carry their
// numbers in Extra; Seconds holds the timed cost where one exists.
func (c *Corpus) IndexTable() (*Table, error) {
	t := &Table{
		ID:      "index",
		Caption: "Block-compressed postings: memory footprint, build and decode cost",
		Columns: []Method{"Index"},
	}
	ms := c.Index.MemStats()
	t.Rows = append(t.Rows, Row{
		Label: "memory",
		Extra: fmt.Sprintf("terms=%d postings=%d blocks=%d encoded=%dB (payload=%dB skip=%dB) raw=%dB ratio=%.2fx bitmapTerms=%d bitmapBytes=%dB",
			ms.Terms, ms.Postings, ms.Blocks, ms.EncodedBytes, ms.PayloadBytes, ms.SkipBytes, ms.RawBytes, ms.Ratio, ms.BitmapTerms, ms.BitmapBytes),
		Cells: []Cell{{Method: "Index", M: Measurement{Method: "Index", Results: int(ms.Postings)}}},
	})

	start := time.Now()
	rebuilt := index.Build(c.Index.Store(), c.Index.Tokenizer())
	buildSecs := time.Since(start).Seconds()
	if rebuilt.TotalOccurrences() != c.Index.TotalOccurrences() {
		return nil, fmt.Errorf("bench: rebuilt index has %d occurrences, corpus index %d",
			rebuilt.TotalOccurrences(), c.Index.TotalOccurrences())
	}
	t.Rows = append(t.Rows, Row{
		Label: "build",
		Extra: fmt.Sprintf("occurrences=%d", rebuilt.TotalOccurrences()),
		Cells: []Cell{{Method: "Index", M: Measurement{Method: "Index", Seconds: buildSecs, Results: rebuilt.NumTerms()}}},
	})

	start = time.Now()
	decoded := 0
	for _, term := range c.Index.TermsByFreq() {
		decoded += len(c.Index.List(term).Materialize())
	}
	decodeSecs := time.Since(start).Seconds()
	if int64(decoded) != ms.Postings {
		return nil, fmt.Errorf("bench: decoded %d of %d postings", decoded, ms.Postings)
	}
	rate := 0.0
	if decodeSecs > 0 {
		rate = float64(decoded) / decodeSecs
	}
	t.Rows = append(t.Rows, Row{
		Label: "decode",
		Extra: fmt.Sprintf("postings/s=%.0f", rate),
		Cells: []Cell{{Method: "Index", M: Measurement{Method: "Index", Seconds: decodeSecs, Results: decoded}}},
	})
	return t, nil
}

package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/db"
)

// ingestParts bounds the document count of the ingest experiment: the
// corpus is split into up to this many single-ingest documents so the
// docs/sec figures describe per-document mutation cost, not one giant
// parse.
const ingestParts = 200

// IngestTable measures the live-mutation path (see DESIGN.md §11) rather
// than a query workload: per-document Add throughput into an initially
// empty database, the same ingest run with a term search looping
// concurrently against the growing index (every Add publishes a fresh
// snapshot the search must see), and the cost of folding the resulting
// memtable + segment stack back into one flat index. Each row
// self-checks: the grown database must answer the probe query exactly
// like a bulk-loaded one.
func (c *Corpus) IngestTable() (*Table, error) {
	parts := ingestParts
	if a := c.Cfg.Articles; a < parts {
		parts = a
	}
	probeA, probeB, err := c.PairTerms(c.freqs()[0])
	if err != nil {
		return nil, err
	}
	probe := []string{probeA, probeB}

	// The oracle: bulk-load the same split (plain store appends, one
	// from-scratch index build) and remember the probe answer.
	roots, err := c.SplitParts(parts)
	if err != nil {
		return nil, err
	}
	bulk := db.New(db.Options{})
	for i, r := range roots {
		if err := bulk.LoadTree(fmt.Sprintf("part%03d.xml", i), r); err != nil {
			return nil, err
		}
	}
	want, err := bulk.TermSearch(probe, db.TermSearchOptions{})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ingest",
		Caption: "Live ingestion: per-document adds, adds under concurrent search, compaction",
		Columns: []Method{"Ingest"},
	}

	// Row 1: sequential adds, nothing else running.
	start := time.Now()
	grown, err := c.ingestDB(parts, nil)
	if err != nil {
		return nil, err
	}
	addSecs := time.Since(start).Seconds()
	if err := c.checkProbe(grown, probe, len(want)); err != nil {
		return nil, fmt.Errorf("bench: ingest row add: %w", err)
	}
	t.Rows = append(t.Rows, Row{
		Label: "add",
		Extra: fmt.Sprintf("docs=%d docs/s=%.0f", parts, rate(parts, addSecs)),
		Cells: []Cell{{Method: "Ingest", M: Measurement{Method: "Ingest", Seconds: addSecs, Results: parts}}},
	})

	// Row 2: the same adds with a reader hammering the snapshot chain.
	var (
		searches int
		qErr     error
		wg       sync.WaitGroup
		stop     = make(chan struct{})
	)
	start = time.Now()
	live, err := c.ingestDB(1, func(d *db.DB) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.TermSearch(probe, db.TermSearchOptions{}); err != nil {
					qErr = err
					return
				}
				searches++
			}
		}()
	})
	if err == nil {
		err = c.ingestInto(live, 1, parts)
	}
	close(stop)
	wg.Wait()
	mixedSecs := time.Since(start).Seconds()
	if err != nil {
		return nil, err
	}
	if qErr != nil {
		return nil, fmt.Errorf("bench: concurrent search during ingest: %w", qErr)
	}
	if err := c.checkProbe(live, probe, len(want)); err != nil {
		return nil, fmt.Errorf("bench: ingest row add+query: %w", err)
	}
	t.Rows = append(t.Rows, Row{
		Label: "add+query",
		Extra: fmt.Sprintf("docs=%d docs/s=%.0f searches=%d", parts, rate(parts, mixedSecs), searches),
		Cells: []Cell{{Method: "Ingest", M: Measurement{Method: "Ingest", Seconds: mixedSecs, Results: searches}}},
	})

	// Row 3: fold the memtable + segment stack back into one flat index.
	start = time.Now()
	grown.CompactNow()
	compactSecs := time.Since(start).Seconds()
	if err := c.checkProbe(grown, probe, len(want)); err != nil {
		return nil, fmt.Errorf("bench: ingest row compact: %w", err)
	}
	t.Rows = append(t.Rows, Row{
		Label: "compact",
		Extra: fmt.Sprintf("generation=%d", grown.Generation()),
		Cells: []Cell{{Method: "Ingest", M: Measurement{Method: "Ingest", Seconds: compactSecs, Results: parts}}},
	})
	return t, nil
}

// ingestDB builds a database holding the first n of parts split documents
// via the live Add path. onEmpty, when non-nil, runs after the empty
// database is warmed and before the first Add (the hook the concurrent
// reader starts from).
func (c *Corpus) ingestDB(n int, onEmpty func(*db.DB)) (*db.DB, error) {
	d := db.New(db.Options{})
	d.Warm()
	if onEmpty != nil {
		onEmpty(d)
	}
	if err := c.ingestInto(d, 0, n); err != nil {
		return nil, err
	}
	return d, nil
}

// ingestInto adds split documents [lo, hi) to d. The split is recomputed
// per call: stores take ownership of loaded trees, so two databases must
// never share one.
func (c *Corpus) ingestInto(d *db.DB, lo, hi int) error {
	parts := ingestParts
	if a := c.Cfg.Articles; a < parts {
		parts = a
	}
	roots, err := c.SplitParts(parts)
	if err != nil {
		return err
	}
	for i := lo; i < hi; i++ {
		if err := d.AddTree(fmt.Sprintf("part%03d.xml", i), roots[i]); err != nil {
			return err
		}
	}
	return nil
}

// checkProbe asserts the grown database answers the probe query with the
// bulk-loaded oracle's result count.
func (c *Corpus) checkProbe(d *db.DB, probe []string, want int) error {
	got, err := d.TermSearch(probe, db.TermSearchOptions{})
	if err != nil {
		return err
	}
	if len(got) != want {
		return fmt.Errorf("probe %v returned %d results, bulk oracle %d", probe, len(got), want)
	}
	return nil
}

func rate(n int, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(n) / secs
}

package bench

import "testing"

// TestIngestTable runs the live-mutation experiment at test scale. The
// table is self-checking — every row compares the grown database's probe
// answer against a bulk-loaded oracle — so the assertions here only pin
// the table's shape and that the timed paths actually ran.
func TestIngestTable(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest table re-ingests the full test corpus twice")
	}
	c := corpus(t)
	tab, err := c.IngestTable()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"add", "add+query", "compact"}
	if len(tab.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(want))
	}
	for i, label := range want {
		row := tab.Rows[i]
		if row.Label != label {
			t.Fatalf("row %d label = %q, want %q", i, row.Label, label)
		}
		if len(row.Cells) != 1 || row.Cells[0].Err != nil {
			t.Fatalf("row %q: cells %d, err %v", label, len(row.Cells), row.Cells[0].Err)
		}
	}
	if tab.Rows[1].Cells[0].M.Results == 0 {
		t.Error("add+query row recorded zero concurrent searches")
	}
}

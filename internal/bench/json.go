package bench

import (
	"encoding/json"
	"io"
)

// JSON DTOs for machine-readable benchmark output (`tixbench -json`).
// Field names are stable: future PRs diff these files to track the perf
// trajectory across changes, so renames are breaking.

// TableJSON is the JSON shape of one table.
type TableJSON struct {
	ID      string    `json:"id"`
	Caption string    `json:"caption"`
	Columns []string  `json:"columns"`
	Rows    []RowJSON `json:"rows"`
}

// RowJSON is one workload row.
type RowJSON struct {
	Label string     `json:"label"`
	Extra string     `json:"extra,omitempty"`
	Cells []CellJSON `json:"cells"`
}

// CellJSON is one method measurement; Error is set (and the measurement
// fields zero) when the method failed. AllocsPerOp and BytesPerOp are
// emitted only by workloads that measure them (the hot-path rig).
type CellJSON struct {
	Method      string    `json:"method"`
	Seconds     float64   `json:"seconds"`
	Results     int       `json:"results"`
	Stats       StatsJSON `json:"stats"`
	AllocsPerOp float64   `json:"allocsPerOp,omitempty"`
	BytesPerOp  float64   `json:"bytesPerOp,omitempty"`
	Error       string    `json:"error,omitempty"`
}

// StatsJSON mirrors storage.AccessStats.
type StatsJSON struct {
	NodeReads int64 `json:"nodeReads"`
	PageReads int64 `json:"pageReads"`
	TextReads int64 `json:"textReads"`
	NavSteps  int64 `json:"navSteps"`
}

// JSON converts the table to its JSON shape.
func (t *Table) JSON() TableJSON {
	out := TableJSON{ID: t.ID, Caption: t.Caption}
	for _, m := range t.Columns {
		out.Columns = append(out.Columns, string(m))
	}
	for _, r := range t.Rows {
		row := RowJSON{Label: r.Label, Extra: r.Extra}
		for _, c := range r.Cells {
			cell := CellJSON{Method: string(c.Method)}
			if c.Err != nil {
				cell.Error = c.Err.Error()
			} else {
				cell.Seconds = c.M.Seconds
				cell.Results = c.M.Results
				cell.AllocsPerOp = c.M.AllocsPerOp
				cell.BytesPerOp = c.M.BytesPerOp
				cell.Stats = StatsJSON{
					NodeReads: c.M.Stats.NodeReads,
					PageReads: c.M.Stats.PageReads,
					TextReads: c.M.Stats.TextReads,
					NavSteps:  c.M.Stats.NavSteps,
				}
			}
			row.Cells = append(row.Cells, cell)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// WriteJSON writes the table as one indented JSON document.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.JSON())
}

// WriteAllJSON writes several tables as one JSON array.
func WriteAllJSON(w io.Writer, tables []*Table) error {
	out := make([]TableJSON, len(tables))
	for i, t := range tables {
		out[i] = t.JSON()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/storage"
)

func TestWriteJSONRoundTrips(t *testing.T) {
	tab := &Table{
		ID:      "table1",
		Caption: "demo",
		Columns: []Method{MTermJoin, MComp1},
		Rows: []Row{{
			Label: "1000",
			Extra: "results=5",
			Cells: []Cell{
				{Method: MTermJoin, M: Measurement{
					Method: MTermJoin, Seconds: 0.125, Results: 5,
					Stats:       storage.AccessStats{NodeReads: 42, PageReads: 7, TextReads: 3, NavSteps: 1},
					AllocsPerOp: 34, BytesPerOp: 2048,
				}},
				{Method: MComp1, Err: errors.New("boom")},
			},
		}},
	}
	var b bytes.Buffer
	if err := WriteAllJSON(&b, []*Table{tab}); err != nil {
		t.Fatal(err)
	}
	var got []TableJSON
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("output is not parseable JSON: %v\n%s", err, b.String())
	}
	if len(got) != 1 || got[0].ID != "table1" || len(got[0].Rows) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	cells := got[0].Rows[0].Cells
	if cells[0].Seconds != 0.125 || cells[0].Results != 5 || cells[0].Stats.NodeReads != 42 {
		t.Errorf("measurement cell = %+v", cells[0])
	}
	if cells[0].AllocsPerOp != 34 || cells[0].BytesPerOp != 2048 {
		t.Errorf("alloc fields did not round-trip: %+v", cells[0])
	}
	// Cells that did not measure allocations omit the fields entirely, so
	// older trajectory files keep diffing cleanly.
	if bytes.Contains(b.Bytes(), []byte(`"allocsPerOp": 0`)) {
		t.Errorf("zero allocsPerOp must be omitted:\n%s", b.String())
	}
	if cells[1].Error != "boom" {
		t.Errorf("error cell = %+v", cells[1])
	}
}

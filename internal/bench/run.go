package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/exec"
	"repro/internal/shard"
	"repro/internal/storage"
)

// Method names the access methods under evaluation, matching the paper's
// table columns.
type Method string

// The methods of Tables 1–4 and Table 5.
const (
	MComp1            Method = "Comp1"
	MComp2            Method = "Comp2"
	MGenMeet          Method = "GenMeet"
	MTermJoin         Method = "TermJoin"
	MEnhancedTermJoin Method = "EnhTermJoin"
	MPhraseFinder     Method = "PhraseFinder"
	MComp3            Method = "Comp3"
)

// Measurement is one timed method execution.
type Measurement struct {
	Method  Method
	Seconds float64
	Results int
	Stats   storage.AccessStats
	// AllocsPerOp and BytesPerOp are heap-allocation costs per execution
	// (runtime.MemStats deltas over the timed runs). Only the hot-path
	// rig fills them; zero means "not measured".
	AllocsPerOp float64
	BytesPerOp  float64
}

// Runs is how many times each method executes per cell; following the
// paper's methodology the lowest and highest readings are dropped and the
// rest averaged (with fewer than 3 runs, all are averaged). Config.Runs
// overrides it per corpus.
var Runs = 3

// runs resolves the per-cell repetition count for this corpus.
func (c *Corpus) runs() int {
	if c.Cfg.Runs > 0 {
		return c.Cfg.Runs
	}
	return Runs
}

// timeIt runs f the given number of times and returns the trimmed mean of
// the wall-clock seconds along with the last run's auxiliary outputs.
func timeIt(runs int, f func() (int, storage.AccessStats, error)) (Measurement, error) {
	var m Measurement
	secs := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		runtime.GC() // keep allocation debt from a prior method out of this timing
		start := time.Now()
		n, stats, err := f()
		if err != nil {
			return m, err
		}
		secs = append(secs, time.Since(start).Seconds())
		m.Results = n
		m.Stats = stats
	}
	sort.Float64s(secs)
	if len(secs) > 2 {
		secs = secs[1 : len(secs)-1] // drop lowest and highest
	}
	sum := 0.0
	for _, s := range secs {
		sum += s
	}
	m.Seconds = sum / float64(len(secs))
	return m, nil
}

// RunTermMethod executes one term-join access method over the given terms.
func (c *Corpus) RunTermMethod(method Method, terms []string, complex bool) (Measurement, error) {
	q := exec.TermQuery{Terms: terms, Complex: complex, Scorer: exec.DefaultScorer{}}
	m, err := timeIt(c.runs(), func() (int, storage.AccessStats, error) {
		acc := storage.NewAccessor(c.Index.Store())
		var runner interface{ Run(exec.Emit) error }
		switch method {
		case MComp1:
			runner = &exec.Comp1{Index: c.Index, Acc: acc, Query: q}
		case MComp2:
			runner = &exec.Comp2{Index: c.Index, Acc: acc, Query: q}
		case MGenMeet:
			runner = &exec.GenMeet{Index: c.Index, Acc: acc, Query: q}
		case MTermJoin:
			runner = &exec.TermJoin{Index: c.Index, Acc: acc, Query: q, ChildCounts: exec.ChildCountNavigate}
		case MEnhancedTermJoin:
			runner = &exec.TermJoin{Index: c.Index, Acc: acc, Query: q, ChildCounts: exec.ChildCountIndexed}
		default:
			return 0, storage.AccessStats{}, fmt.Errorf("bench: unknown term method %q", method)
		}
		n := 0
		if err := runner.Run(func(exec.ScoredNode) { n++ }); err != nil {
			return 0, storage.AccessStats{}, err
		}
		return n, acc.Stats, nil
	})
	if err != nil {
		return m, err
	}
	m.Method = method
	return m, nil
}

// RunShardTermMethod times the sharded TermJoin fan-out (scored merge
// included) over an already-built sharded database. Store-access stats are
// not reported here — the sharded facade aggregates them into its metrics
// registry instead.
func (c *Corpus) RunShardTermMethod(s *shard.DB, terms []string, complex bool) (Measurement, error) {
	m, err := timeIt(c.runs(), func() (int, storage.AccessStats, error) {
		//tixlint:ignore ctxhygiene the bench harness is the root caller: there is no ambient context to propagate, and measured runs must not inherit one
		res, rerr := s.RunTermMethod(context.Background(), shard.MethodTermJoin, terms, complex)
		if rerr != nil {
			return 0, storage.AccessStats{}, rerr
		}
		return len(res), storage.AccessStats{}, nil
	})
	if err != nil {
		return m, err
	}
	m.Method = MTermJoin
	return m, nil
}

// RunPhraseMethod executes PhraseFinder or Comp3 over the phrase.
func (c *Corpus) RunPhraseMethod(method Method, phrase []string) (Measurement, error) {
	m, err := timeIt(c.runs(), func() (int, storage.AccessStats, error) {
		acc := storage.NewAccessor(c.Index.Store())
		n := 0
		emit := func(exec.PhraseMatch) { n++ }
		switch method {
		case MPhraseFinder:
			pf := &exec.PhraseFinder{Index: c.Index, Phrase: phrase}
			if err := pf.Run(emit); err != nil {
				return 0, storage.AccessStats{}, err
			}
		case MComp3:
			c3 := &exec.Comp3{Index: c.Index, Acc: acc, Phrase: phrase}
			if err := c3.Run(emit); err != nil {
				return 0, storage.AccessStats{}, err
			}
		default:
			return 0, storage.AccessStats{}, fmt.Errorf("bench: unknown phrase method %q", method)
		}
		return n, acc.Stats, nil
	})
	if err != nil {
		return m, err
	}
	m.Method = method
	return m, nil
}

// PickInput builds a synthetic scored-tree node stream of the given size
// for the Pick experiment (Sec. 6: input sizes 200 → 55,000 nodes). The
// stream mirrors a projected corpus subtree: a random tree in document
// order with scores attached.
func PickInput(size int, seed int64) []exec.PickNode {
	rng := rand.New(rand.NewSource(seed))
	// Build a random tree shape directly as nested spans.
	nodes := make([]exec.PickNode, 0, size)
	var build func(start uint32, level uint16, budget int) uint32
	build = func(start uint32, level uint16, budget int) uint32 {
		pos := start + 1
		self := len(nodes)
		nodes = append(nodes, exec.PickNode{Ord: int32(self), Start: start, Level: level})
		budget--
		for budget > 0 {
			kids := rng.Intn(4)
			if kids == 0 || level > 12 {
				break
			}
			take := budget / kids
			if take == 0 {
				take = budget
			}
			pos = build(pos, level+1, take)
			budget -= take
		}
		nodes[self].End = pos
		nodes[self].Score = rng.Float64() * 2
		nodes[self].HasScore = rng.Intn(4) != 0
		return pos + 1
	}
	for len(nodes) < size {
		build(uint32(len(nodes)*1000), 0, size-len(nodes))
	}
	nodes = nodes[:size]
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Start < nodes[j].Start })
	return nodes
}

// RunPick times the stack-based Pick over an input of the given size with
// the parent/child redundancy-elimination criterion.
func RunPick(size int, seed int64) (Measurement, error) {
	input := PickInput(size, seed)
	m, err := timeIt(Runs, func() (int, storage.AccessStats, error) {
		picked := exec.StackPick(input, exec.DefaultPickFuncs(0.8))
		return len(picked), storage.AccessStats{}, nil
	})
	if err != nil {
		return m, err
	}
	m.Method = "Pick"
	return m, nil
}

package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/shard"
)

// Cell is one table cell: a method's measurement for one workload row.
type Cell struct {
	Method Method
	M      Measurement
	Err    error
}

// Row is one workload row of a table.
type Row struct {
	// Label is the x-axis value (term frequency, number of terms, query
	// number, or input size).
	Label string
	// Extra carries row metadata (e.g. Table 5's result size).
	Extra string
	Cells []Cell
}

// Table is one regenerated evaluation table.
type Table struct {
	ID      string
	Caption string
	Columns []Method
	Rows    []Row
}

func (c *Corpus) runRow(label, extra string, methods []Method, terms []string, complex bool) Row {
	row := Row{Label: label, Extra: extra}
	for _, m := range methods {
		meas, err := c.RunTermMethod(m, terms, complex)
		row.Cells = append(row.Cells, Cell{Method: m, M: meas, Err: err})
	}
	return row
}

// Table1 regenerates Table 1: two-term queries with increasing term
// frequencies, simple scoring; Comp1 vs Comp2 vs Generalized Meet vs
// TermJoin.
func (c *Corpus) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Caption: "Two index terms, varying frequency, simple scoring (seconds)",
		Columns: []Method{MComp1, MComp2, MGenMeet, MTermJoin},
	}
	for _, f := range c.freqs() {
		a, b, err := c.PairTerms(f)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, c.runRow(fmt.Sprintf("%d", f), "", t.Columns, []string{a, b}, false))
	}
	return t, nil
}

// Table2 regenerates Table 2: as Table 1 but with the complex scoring
// function and the Enhanced TermJoin column.
func (c *Corpus) Table2() (*Table, error) {
	t := &Table{
		ID:      "table2",
		Caption: "Two index terms, varying frequency, complex scoring (seconds)",
		Columns: []Method{MComp1, MComp2, MGenMeet, MTermJoin, MEnhancedTermJoin},
	}
	for _, f := range c.freqs() {
		a, b, err := c.PairTerms(f)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, c.runRow(fmt.Sprintf("%d", f), "", t.Columns, []string{a, b}, true))
	}
	return t, nil
}

// Table3 regenerates Table 3: term 1 fixed at frequency 1,000, term 2
// varied; complex scoring.
func (c *Corpus) Table3() (*Table, error) {
	t := &Table{
		ID:      "table3",
		Caption: "Term1 fixed at freq 1,000, term2 varying, complex scoring (seconds)",
		Columns: []Method{MComp1, MComp2, MGenMeet, MTermJoin, MEnhancedTermJoin},
	}
	fixed, _, err := c.PairTerms(1000)
	if err != nil {
		return nil, err
	}
	for _, f := range c.t3freqs() {
		_, second, err := c.PairTerms(f)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, c.runRow(fmt.Sprintf("%d", f), "", t.Columns, []string{fixed, second}, true))
	}
	return t, nil
}

// Table4 regenerates Table 4: queries of 2..7 terms, each term at
// frequency ≈ 1,500; complex scoring.
func (c *Corpus) Table4() (*Table, error) {
	t := &Table{
		ID:      "table4",
		Caption: "Queries with 2..n terms of frequency ~1,500, complex scoring (seconds)",
		Columns: []Method{MComp1, MComp2, MGenMeet, MTermJoin, MEnhancedTermJoin},
	}
	for n := 2; n <= c.t4terms(); n++ {
		terms, err := c.Table4Terms(n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, c.runRow(fmt.Sprintf("%d", n), "", t.Columns, terms, true))
	}
	return t, nil
}

// Table5 regenerates Table 5: thirteen two-term phrases; PhraseFinder vs
// Comp3, reporting result sizes alongside.
func (c *Corpus) Table5() (*Table, error) {
	t := &Table{
		ID:      "table5",
		Caption: "Thirteen two-term phrases; PhraseFinder vs composite (seconds)",
		Columns: []Method{MComp3, MPhraseFinder},
	}
	for _, row := range Table5Rows {
		t1, t2, f1, f2, err := c.Table5Phrase(row)
		if err != nil {
			return nil, err
		}
		r := Row{Label: fmt.Sprintf("%d", row.Query)}
		phrase := []string{t1, t2}
		for _, m := range t.Columns {
			meas, err := c.RunPhraseMethod(m, phrase)
			r.Cells = append(r.Cells, Cell{Method: m, M: meas, Err: err})
		}
		size := 0
		if len(r.Cells) > 0 {
			size = r.Cells[0].M.Results
		}
		r.Extra = fmt.Sprintf("f1=%d f2=%d results=%d", f1, f2, size)
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// ShardCounts are the shard counts swept by the sharded-speedup
// experiment.
var ShardCounts = []int{1, 2, 4, 8}

// ShardParts is the number of documents the corpus is split into for the
// sharded experiment — the same split for every shard count, so timing
// differences isolate the fan-out (capped at the article count).
const ShardParts = 16

// ShardTable times the sharded TermJoin fan-out at increasing shard
// counts, over the lowest and highest Table 1 frequencies plus the
// Config.ShardFreq high-frequency pair when planted. Columns are shard
// counts rather than access methods; on a single-core host expect parity
// rather than speedup (the fan-out is still exercised).
func (c *Corpus) ShardTable(counts []int) (*Table, error) {
	if len(counts) == 0 {
		counts = ShardCounts
	}
	parts := ShardParts
	if c.Cfg.Articles < parts {
		parts = c.Cfg.Articles
	}
	t := &Table{
		ID:      "shards",
		Caption: fmt.Sprintf("TermJoin fan-out across shards, simple scoring, %d-part corpus (seconds)", parts),
	}
	dbs := make([]*shard.DB, 0, len(counts))
	for _, n := range counts {
		if n > parts {
			return nil, fmt.Errorf("bench: shard count %d exceeds the %d-part split", n, parts)
		}
		s, err := c.ShardDB(n, parts)
		if err != nil {
			return nil, err
		}
		dbs = append(dbs, s)
		t.Columns = append(t.Columns, Method(fmt.Sprintf("shards=%d", n)))
	}
	freqs := c.freqs()
	rowFreqs := []int{freqs[0], freqs[len(freqs)-1]}
	if f := c.Cfg.ShardFreq; f > 0 && f != rowFreqs[0] && f != rowFreqs[1] {
		rowFreqs = append(rowFreqs, f)
	}
	sort.Ints(rowFreqs)
	for _, f := range rowFreqs {
		a, b, err := c.PairTerms(f)
		if err != nil {
			return nil, err
		}
		row := Row{Label: fmt.Sprintf("%d", f)}
		for i, s := range dbs {
			meas, err := c.RunShardTermMethod(s, []string{a, b}, false)
			meas.Method = t.Columns[i]
			row.Cells = append(row.Cells, Cell{Method: t.Columns[i], M: meas, Err: err})
		}
		if len(row.Cells) > 0 && row.Cells[0].Err == nil {
			row.Extra = fmt.Sprintf("results=%d", row.Cells[0].M.Results)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// PickSizes are the input sizes of the Pick experiment (Sec. 6 reports the
// range 200 → 55,000 nodes).
var PickSizes = []int{200, 1000, 5000, 15000, 30000, 55000}

// PickTable regenerates the Pick timing experiment.
func PickTable(seed int64, sizes []int) (*Table, error) {
	if sizes == nil {
		sizes = PickSizes
	}
	t := &Table{
		ID:      "pick",
		Caption: "Stack-based Pick, parent/child redundancy elimination (seconds)",
		Columns: []Method{"Pick"},
	}
	for _, sz := range sizes {
		m, err := RunPick(sz, seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", sz),
			Extra: fmt.Sprintf("picked=%d", m.Results),
			Cells: []Cell{{Method: "Pick", M: m}},
		})
	}
	return t, nil
}

// Write renders the table in the paper's row/column layout.
func (t *Table) Write(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Caption)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"x"}
	for _, m := range t.Columns {
		header = append(header, string(m))
	}
	header = append(header, "")
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range t.Rows {
		cols := []string{r.Label}
		for _, cell := range r.Cells {
			if cell.Err != nil {
				cols = append(cols, "ERR")
				continue
			}
			cols = append(cols, formatSeconds(cell.M.Seconds))
		}
		cols = append(cols, r.Extra)
		fmt.Fprintln(tw, strings.Join(cols, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteAccess renders the table with store node-reads per cell instead of
// seconds — the machine-independent cost evidence behind the timings.
func (t *Table) WriteAccess(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s [node reads] ==\n", t.ID, t.Caption)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"x"}
	for _, m := range t.Columns {
		header = append(header, string(m))
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range t.Rows {
		cols := []string{r.Label}
		for _, cell := range r.Cells {
			if cell.Err != nil {
				cols = append(cols, "ERR")
				continue
			}
			cols = append(cols, fmt.Sprintf("%d", cell.M.Stats.NodeReads))
		}
		fmt.Fprintln(tw, strings.Join(cols, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (x, one column per method, extra),
// for plotting the paper's tables as figures.
func (t *Table) WriteCSV(w io.Writer) error {
	header := []string{"x"}
	for _, m := range t.Columns {
		header = append(header, string(m))
	}
	header = append(header, "extra")
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cols := []string{r.Label}
		for _, cell := range r.Cells {
			if cell.Err != nil {
				cols = append(cols, "")
				continue
			}
			cols = append(cols, fmt.Sprintf("%.6f", cell.M.Seconds))
		}
		cols = append(cols, strings.ReplaceAll(r.Extra, ",", ";"))
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	case s >= 0.001:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.6f", s)
	}
}

// Ratio returns how many times slower column a is than column b in the
// given row (for EXPERIMENTS.md's who-wins-by-what-factor reporting).
func (r *Row) Ratio(a, b Method) (float64, bool) {
	var sa, sb float64
	var okA, okB bool
	for _, c := range r.Cells {
		if c.Err != nil {
			continue
		}
		if c.Method == a {
			sa, okA = c.M.Seconds, true
		}
		if c.Method == b {
			sb, okB = c.M.Seconds, true
		}
	}
	if !okA || !okB || sb == 0 {
		return 0, false
	}
	return sa / sb, true
}

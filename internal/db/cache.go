package db

import (
	"repro/internal/rescache"
)

// Result caching. The cache sits at the facade: TermSearchContext,
// PhraseSearchContext and QueryLimited consult it before evaluating,
// keyed by (canonicalized request, effective limits, generation token).
// Only successful evaluations are cached; hits still flow through the
// normal per-op metrics with zero store accesses.
//
// The generation token gates coherence. While the live index does not
// exist yet (bulk loading before the first query, or after a
// RemoveDocument rebuild), store appends do not advance any generation
// counter, so two different corpus states would share token 0; CacheToken
// reports ok=false for that phase and the facade skips caching entirely.
// Once the live index exists every mutation advances its generation, and
// the token uniquely identifies the visible corpus (DESIGN.md §13).

// CacheToken returns the generation token cache keys are minted under,
// with ok=false while the database cannot produce a stable token (no live
// index yet).
func (d *DB) CacheToken() (uint64, bool) {
	d.mu.Lock()
	l := d.live
	d.mu.Unlock()
	if l == nil {
		return 0, false
	}
	return l.Generation(), true
}

// EnableResultCache attaches a result cache with the given byte budget.
// It is a no-op when a cache is already attached or maxBytes is not
// positive. Safe to call at any time; typically done at construction
// (Options.CacheBytes) or right after opening a snapshot.
func (d *DB) EnableResultCache(maxBytes int64) {
	c := rescache.New(rescache.Config{
		MaxBytes:   maxBytes,
		Metrics:    d.MetricsRegistry(),
		Generation: d.CacheToken,
	})
	if c == nil {
		return
	}
	if !d.cache.CompareAndSwap(nil, c) {
		c.Close()
	}
}

// ResultCache returns the attached result cache, or nil.
func (d *DB) ResultCache() *rescache.Cache { return d.cache.Load() }

// Close releases background resources (today: the result-cache sweeper).
// The database remains usable for queries afterwards.
func (d *DB) Close() {
	if c := d.cache.Load(); c != nil {
		c.Close()
	}
}

// purgeCache empties the cache; called when the generation counter may
// regress (store rebuild, snapshot adoption), so stale entries can never
// collide with keys minted under the fresh counter.
func (d *DB) purgeCache() {
	if c := d.cache.Load(); c != nil {
		c.Purge()
	}
}

// queryCache returns the cache and the generation token to key with, or
// ok=false when this call must bypass caching.
func (d *DB) queryCache() (*rescache.Cache, uint64, bool) {
	c := d.cache.Load()
	if c == nil {
		return nil, 0, false
	}
	tok, ok := d.CacheToken()
	if !ok {
		return nil, 0, false
	}
	return c, tok, true
}

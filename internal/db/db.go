// Package db is the database facade of the reproduction — the stand-in for
// the Timber system the paper ran on. It owns document loading, index
// construction, and query evaluation: extended-XQuery strings (internal/xq)
// for the paper's Query 1/2 shapes, and programmatic APIs for term search,
// phrase search, and the Query 3 similarity join.
package db

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/rescache"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
	"repro/internal/xq"
)

// DB is an XML database instance. Queries may run concurrently with the
// document mutation API (Add/Update/Delete): readers work over immutable
// index snapshots, writers are serialized by the facade's mutation lock.
type DB struct {
	store *storage.Store
	tok   *tokenize.Tokenizer
	opts  Options

	mu   sync.Mutex  // serializes mutations and live-index creation
	live *index.Live // created on first Index()/Warm()/mutation

	// cache, when set, memoizes successful term/phrase/query results per
	// generation token (see cache.go).
	cache atomic.Pointer[rescache.Cache]
}

// Options configures a database.
type Options struct {
	// Stemming enables the light plural-stripping stemmer, which the
	// paper's worked examples assume (Figures 5–8 score "search engines"
	// as an occurrence of "search engine").
	Stemming bool
	// Stopwords, when non-empty, are dropped from the index (they still
	// consume word offsets so phrase adjacency is preserved).
	Stopwords []string
	// Metrics, when non-nil, receives the per-query instrumentation
	// (latency histograms, result counts, store-access counters) instead
	// of the process-wide metrics.Default registry.
	Metrics *metrics.Registry
	// Limits is the default per-query resource budget (wall-clock
	// timeout, result cap, store-access cap) applied by every Context
	// entry point. The zero value means unlimited. Per-call budgets
	// (e.g. QueryLimited, TermSearchOptions.Limits) take precedence.
	Limits exec.Limits
	// Ingest tunes the live-index LSM behaviour (memtable seal size,
	// segment fold bound, background compaction). The zero value selects
	// the defaults; see index.LiveConfig.
	Ingest index.LiveConfig
	// CacheBytes, when positive, attaches a generation-keyed result cache
	// with that total byte budget (see internal/rescache and cache.go).
	CacheBytes int64
}

// ErrPanic marks errors produced by recovering a panic at the facade
// boundary; db.observe classifies them into tix_query_panics_total, and
// the fleet layer treats them as replica faults eligible for retry on a
// healthy twin.
var ErrPanic = errors.New("db: recovered panic")

// recoverPanic converts a panic inside the evaluation engine into a
// returned error, so injected storage faults and operator bugs degrade to
// errors instead of crashing the process. Deferred at every facade entry
// point, after the metrics defer (defers run LIFO, so the observation sees
// the recovered error).
func recoverPanic(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if ferr, ok := r.(error); ok && errors.Is(ferr, storage.ErrInjectedFault) {
		*errp = fmt.Errorf("db: storage fault: %w", ferr)
		return
	}
	*errp = fmt.Errorf("%w: %v", ErrPanic, r)
}

// SetLimits replaces the database's default per-query resource budget
// (applied by every Context entry point when no per-call budget is given).
func (d *DB) SetLimits(l exec.Limits) { d.opts.Limits = l }

// limitsOr returns the per-call budget when set, else the database default.
func (d *DB) limitsOr(limits exec.Limits) exec.Limits {
	if limits == (exec.Limits{}) {
		return d.opts.Limits
	}
	return limits
}

// New creates an empty database.
func New(opts Options) *DB {
	var tok *tokenize.Tokenizer
	switch {
	case len(opts.Stopwords) > 0:
		tok = tokenize.NewWithStopwords(opts.Stopwords)
	case opts.Stemming:
		tok = tokenize.NewStemming()
	default:
		tok = tokenize.New()
	}
	d := &DB{store: storage.NewStore(), tok: tok, opts: opts}
	if opts.CacheBytes > 0 {
		d.EnableResultCache(opts.CacheBytes)
	}
	return d
}

// Store exposes the underlying node store.
func (d *DB) Store() *storage.Store { return d.store }

// DocumentCount returns the number of live (non-deleted) documents
// without forcing index construction (the cheap health-probe counterpart
// of Stats).
func (d *DB) DocumentCount() int {
	d.mu.Lock()
	l := d.live
	d.mu.Unlock()
	n := d.store.NumDocs()
	if l != nil {
		n -= l.DeadCount()
	}
	return n
}

// Warm forces construction of every lazily-built structure (today: the
// inverted index), so that concurrent read-only use afterwards never
// triggers a build. The server and the sharded facade call it before
// accepting traffic.
func (d *DB) Warm() { d.Index() }

// Tokenizer exposes the tokenizer documents are indexed with.
func (d *DB) Tokenizer() *tokenize.Tokenizer { return d.tok }

// Options returns a copy of the options the database was created with,
// so wrappers (the sharded facade, resharding) can build compatible
// instances.
func (d *DB) Options() Options { return d.opts }

// LoadTree loads an already-parsed tree under the given document name.
// Before the index is first built this is a plain store append (bulk
// loading stays cheap: one index build at the end); once a live index
// exists the document is additionally ingested into it incrementally.
func (d *DB) LoadTree(name string, root *xmltree.Node) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, err := d.store.AddTree(name, root)
	if err != nil {
		return err
	}
	if d.live != nil {
		if ierr := d.live.IndexDoc(d.store.Doc(id)); ierr != nil {
			return fmt.Errorf("db: index %s: %w", name, ierr)
		}
	}
	return nil
}

// LoadString parses and loads an XML document.
func (d *DB) LoadString(name, src string) error {
	root, err := xmltree.ParseString(src)
	if err != nil {
		return fmt.Errorf("db: load %s: %w", name, err)
	}
	return d.LoadTree(name, root)
}

// LoadReader parses and loads an XML document from r.
func (d *DB) LoadReader(name string, r io.Reader) error {
	root, err := xmltree.Parse(r)
	if err != nil {
		return fmt.Errorf("db: load %s: %w", name, err)
	}
	return d.LoadTree(name, root)
}

// LoadFile parses and loads an XML file; the document name is the file's
// base name.
func (d *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("db: %w", err)
	}
	defer f.Close()
	return d.LoadReader(filepath.Base(path), f)
}

// RemoveDocument unloads a document by name. Because document ids are
// positional, the store is rebuilt from the remaining documents (an O(N)
// operation) and the inverted index is invalidated; ids of later documents
// shift down, exactly as if the database had been loaded without the
// removed document.
func (d *DB) RemoveDocument(name string) error {
	old := d.store
	if old.DocByName(name) == nil {
		return fmt.Errorf("db: document %q not loaded", name)
	}
	fresh := storage.NewStore()
	for _, doc := range old.Docs() {
		if doc.Name == name {
			continue
		}
		if _, err := fresh.AddTree(doc.Name, doc.Root); err != nil {
			return fmt.Errorf("db: rebuild after remove: %w", err)
		}
	}
	d.store = fresh
	d.live = nil
	// The rebuilt live index restarts its generation counter; stale
	// entries must not survive to collide with the fresh numbering.
	d.purgeCache()
	return nil
}

// Index returns an immutable snapshot of the inverted index, building the
// live index on first use after a load. Snapshots are cached per mutation
// generation: with no writes in flight repeated calls return the same
// *index.Index, and concurrent queries over one snapshot see a frozen,
// consistent corpus.
func (d *DB) Index() *index.Index {
	return d.liveIndex().Snapshot()
}

// liveIndex returns the live (mutable) index, creating it over the
// store's current contents on first use. An invariant violation during
// the initial build panics, exactly as index.Build does; the facade entry
// points recover it into a classified error.
func (d *DB) liveIndex() *index.Live {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.liveLocked()
}

func (d *DB) liveLocked() *index.Live {
	if d.live == nil {
		l, err := index.NewLive(d.store, d.tok, d.opts.Ingest)
		if err != nil {
			panic(err)
		}
		d.live = l
	}
	return d.live
}

// adoptIndex installs an already-restored flat index as the live base
// segment (the persistence load path).
func (d *DB) adoptIndex(idx *index.Index) {
	d.mu.Lock()
	d.live = index.LiveFromIndex(idx, d.opts.Ingest)
	d.mu.Unlock()
	// The adopted index restarts the generation counter: purge, as in
	// RemoveDocument.
	d.purgeCache()
}

// Stats summarizes the database contents.
type Stats struct {
	Documents   int
	Nodes       int
	Elements    int
	Terms       int
	Occurrences int64
}

// Stats returns summary statistics (forces index construction). The
// numbers describe the index snapshot's visible corpus: documents hidden
// behind tombstones are excluded.
func (d *DB) Stats() Stats {
	idx := d.Index()
	st := Stats{
		Terms:       idx.NumTerms(),
		Occurrences: idx.TotalOccurrences(),
	}
	for _, doc := range idx.Docs() {
		st.Documents++
		st.Nodes += len(doc.Nodes)
		st.Elements += len(doc.Elements())
	}
	return st
}

// Query parses and evaluates an extended-XQuery query (the Sec. 4 dialect).
func (d *DB) Query(src string) ([]xq.Result, error) {
	return d.QueryContext(context.Background(), src)
}

// QueryContext is Query with cooperative cancellation: the evaluation
// stops within one check interval of ctx being canceled or its deadline
// passing, and respects the database's default resource limits.
func (d *DB) QueryContext(ctx context.Context, src string) ([]xq.Result, error) {
	return d.QueryLimited(ctx, src, d.opts.Limits)
}

// QueryLimited is QueryContext with an explicit per-call resource budget.
func (d *DB) QueryLimited(ctx context.Context, src string, limits exec.Limits) (results []xq.Result, err error) {
	start := time.Now()
	var stats storage.AccessStats
	defer func() { d.observe(opQuery, start, len(results), stats, err) }()
	if c, tok, ok := d.queryCache(); ok {
		key := rescache.QueryKey(tok, src, limits)
		if hit, found := rescache.GetSlice[xq.Result](c, key); found {
			results = hit
			return results, nil
		}
		// Registered before recoverPanic so a recovered panic reaches err
		// first and poisoned results are never cached.
		defer func() {
			if err == nil {
				rescache.PutSlice(c, key, results)
			}
		}()
	}
	defer recoverPanic(&err)
	e := &xq.Engine{Store: d.store, Index: d.Index(), Stats: &stats, Guard: exec.NewGuard(ctx, limits)}
	results, err = e.EvalString(src)
	return results, err
}

// QueryRendered evaluates a query and renders each result through the
// query's Return template (or the canonical <result> shape when the query
// has none).
func (d *DB) QueryRendered(src string) ([]string, []xq.Result, error) {
	return d.QueryRenderedContext(context.Background(), src)
}

// QueryRenderedContext is QueryRendered with cooperative cancellation and
// the database's default resource limits.
func (d *DB) QueryRenderedContext(ctx context.Context, src string) (rendered []string, results []xq.Result, err error) {
	start := time.Now()
	var stats storage.AccessStats
	defer func() { d.observe(opQuery, start, len(results), stats, err) }()
	defer recoverPanic(&err)
	q, err := xq.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	e := &xq.Engine{Store: d.store, Index: d.Index(), Stats: &stats, Guard: exec.NewGuard(ctx, d.opts.Limits)}
	results, err = e.Eval(q)
	if err != nil {
		return nil, nil, err
	}
	rendered = make([]string, len(results))
	for i, r := range results {
		rendered[i] = q.Render(r)
	}
	return rendered, results, nil
}

// Explain renders the physical plan for a query without executing it.
func (d *DB) Explain(src string) (string, error) {
	start := time.Now()
	e := &xq.Engine{Store: d.store, Index: d.Index()}
	plan, err := e.Explain(src)
	d.observe(opExplain, start, 0, storage.AccessStats{}, err)
	return plan, err
}

// TermSearchOptions configures TermSearch.
type TermSearchOptions struct {
	// Complex selects the complex scoring function of Sec. 6.1.
	Complex bool
	// Enhanced uses the child-count index (Enhanced TermJoin); only
	// meaningful with Complex.
	Enhanced bool
	// TopK limits results to the k best scores (0 = all).
	TopK int
	// MinScore drops elements whose score is not strictly greater than
	// the given value (the Threshold operator's V condition; 0 = keep
	// all). Applied before TopK, so the k results are the k best above
	// the threshold.
	MinScore float64
	// Weights per term (defaults to 1 each).
	Weights []float64
	// Parallel partitions the evaluation across this many worker
	// goroutines, one document range each (0 = sequential).
	Parallel int
	// Limits is the per-call resource budget; the zero value falls back
	// to the database's default (Options.Limits).
	Limits exec.Limits
}

// TermSearch scores every element containing at least one of the terms,
// using the TermJoin access method, and returns results best-first.
func (d *DB) TermSearch(terms []string, opts TermSearchOptions) ([]exec.ScoredNode, error) {
	return d.TermSearchContext(context.Background(), terms, opts)
}

// TermSearchContext is TermSearch with cooperative cancellation and
// resource budgets: the scan stops within one check interval of ctx being
// canceled, the deadline passing, or a budget running out.
func (d *DB) TermSearchContext(ctx context.Context, terms []string, opts TermSearchOptions) (results []exec.ScoredNode, err error) {
	mode := exec.ChildCountNavigate
	if opts.Enhanced {
		mode = exec.ChildCountIndexed
	}
	q := exec.TermQuery{
		Terms:   terms,
		Complex: opts.Complex,
		Scorer: exec.DefaultScorer{
			SimpleFn:  scoring.SimpleScorer{Weights: opts.Weights},
			ComplexFn: scoring.ComplexScorer{Weights: opts.Weights},
		},
	}
	start := time.Now()
	eff := d.limitsOr(opts.Limits)
	var reporter exec.AccessReporter
	defer func() {
		var stats storage.AccessStats
		if reporter != nil {
			stats = reporter.AccessStats()
		}
		d.observe(opTerms, start, len(results), stats, err)
	}()
	if c, tok, ok := d.queryCache(); ok {
		key := rescache.TermKey(tok, terms, rescache.TermOpts{
			Complex: opts.Complex, TopK: opts.TopK, MinScore: opts.MinScore,
			Weights: opts.Weights, Limits: eff,
		})
		if hit, found := rescache.GetSlice[exec.ScoredNode](c, key); found {
			results = hit
			return results, nil
		}
		defer func() {
			if err == nil {
				rescache.PutSlice(c, key, results)
			}
		}()
	}
	defer recoverPanic(&err)
	guard := exec.NewGuard(ctx, eff)
	run := func(emit exec.Emit) error {
		if opts.MinScore > 0 {
			emit = exec.FilterMinScore(opts.MinScore, emit)
		}
		if opts.Parallel > 0 {
			p := &exec.ParallelTermJoin{Index: d.Index(), Query: q, Workers: opts.Parallel, ChildCounts: mode, Guard: guard}
			reporter = p
			return p.Run(emit)
		}
		tj := &exec.TermJoin{Index: d.Index(), Acc: storage.NewAccessor(d.store), Query: q, ChildCounts: mode, Guard: guard}
		reporter = tj
		return tj.Run(emit)
	}
	if opts.TopK > 0 {
		tk := exec.NewTopK(opts.TopK)
		if err = run(tk.Emit()); err != nil {
			return nil, err
		}
		results = tk.Results()
		return results, nil
	}
	out, err := exec.Collect(run)
	if err != nil {
		return nil, err
	}
	tk := exec.NewTopK(len(out))
	for _, n := range out {
		tk.Offer(n)
	}
	results = tk.Results()
	return results, nil
}

// PhraseSearch returns every occurrence of the phrase via PhraseFinder.
func (d *DB) PhraseSearch(phrase []string) ([]exec.PhraseMatch, error) {
	return d.PhraseSearchContext(context.Background(), phrase)
}

// PhraseSearchContext is PhraseSearch with cooperative cancellation and
// the database's default resource limits.
func (d *DB) PhraseSearchContext(ctx context.Context, phrase []string) (ms []exec.PhraseMatch, err error) {
	start := time.Now()
	var pf *exec.PhraseFinder
	defer func() {
		var stats storage.AccessStats
		if pf != nil {
			stats = pf.AccessStats()
		}
		d.observe(opPhrase, start, len(ms), stats, err)
	}()
	if c, tok, ok := d.queryCache(); ok {
		key := rescache.PhraseKey(tok, phrase, d.opts.Limits)
		if hit, found := rescache.GetSlice[exec.PhraseMatch](c, key); found {
			ms = hit
			return ms, nil
		}
		defer func() {
			if err == nil {
				rescache.PutSlice(c, key, ms)
			}
		}()
	}
	defer recoverPanic(&err)
	pf = &exec.PhraseFinder{Index: d.Index(), Phrase: phrase, Guard: exec.NewGuard(ctx, d.opts.Limits)}
	ms, err = exec.CollectPhrase(pf.Run)
	return ms, err
}

// Materialize returns the xmltree subtree for a result element.
func (d *DB) Materialize(doc storage.DocID, ord int32) *xmltree.Node {
	return storage.NewAccessor(d.store).Materialize(doc, ord)
}

// NameOf returns the element tag name of a scored node.
func (d *DB) NameOf(n exec.ScoredNode) string {
	doc := d.store.Doc(n.Doc)
	if doc == nil {
		return ""
	}
	return d.store.Tags.Name(doc.Nodes[n.Ord].Tag)
}

// TwigSearch runs the holistic twig join (TwigStack) for a structural tag
// pattern against every loaded document and returns matches as
// materialized subtrees of the pattern root's bindings, deduplicated and
// in document order. Use exec.Twig / exec.TwigChild to build the pattern.
func (d *DB) TwigSearch(pattern *exec.TwigNode) ([]*xmltree.Node, error) {
	return d.TwigSearchContext(context.Background(), pattern)
}

// TwigSearchContext is TwigSearch with cooperative cancellation and the
// database's default resource limits.
func (d *DB) TwigSearchContext(ctx context.Context, pattern *exec.TwigNode) (out []*xmltree.Node, err error) {
	refs, err := d.TwigRefsContext(ctx, pattern)
	if err != nil {
		return nil, err
	}
	out = make([]*xmltree.Node, 0, len(refs))
	for _, ref := range refs {
		out = append(out, d.store.Doc(ref.Doc).TreeNode(ref.Ord))
	}
	return out, nil
}

// TwigRef identifies one twig-match root element by position: the loaded
// document and the element's start ordinal within it. Unlike the
// materialized tree pointers of TwigSearch, refs are comparable across
// database instances holding the same documents — the identity the
// differential test suites (and the sharded facade) join on.
type TwigRef struct {
	Doc storage.DocID
	Ord int32
}

// TwigRefsContext runs the holistic twig join and returns the pattern
// root's bindings as refs, deduplicated, in document order.
func (d *DB) TwigRefsContext(ctx context.Context, pattern *exec.TwigNode) (out []TwigRef, err error) {
	start := time.Now()
	var stats storage.AccessStats
	defer func() { d.observe(opTwig, start, len(out), stats, err) }()
	defer recoverPanic(&err)
	guard := exec.NewGuard(ctx, d.opts.Limits)
	for _, doc := range d.Index().Docs() {
		ts := &exec.TwigStack{Store: d.store, Doc: doc.ID, Root: pattern, Guard: guard}
		matches, terr := ts.Run()
		stats.Add(ts.AccessStats())
		if terr != nil {
			return nil, terr
		}
		seen := map[int32]bool{}
		for _, m := range matches {
			root := m[0]
			if seen[root] {
				continue
			}
			seen[root] = true
			out = append(out, TwigRef{Doc: doc.ID, Ord: root})
		}
	}
	return out, nil
}

// SimilarityJoinSpec describes a Query 3-style IR join: components of the
// left document scored against query phrases, joined with right-document
// elements by text similarity between LeftKey and RightKey children, with
// root scores combined by ScoreBar.
type SimilarityJoinSpec struct {
	LeftDoc, RightDoc   string
	LeftRoot, RightRoot string // element tags bound on each side
	LeftKey, RightKey   string // tags of the similarity-compared children
	Primary, Secondary  []string
	// PickThreshold applies PickFoo-style pruning to the scored left
	// components before joining (0 disables).
	PickThreshold float64
	// MinSim drops pairs whose similarity score is not above the given
	// value (the Threshold simScore > 1 step of Query 3).
	MinSim float64
}

// JoinedResult is one similarity-join result.
type JoinedResult struct {
	// Score is the combined ScoreBar(simScore, componentScore).
	Score float64
	// Sim is the title-similarity component.
	Sim float64
	// Component is the scored left-side component subtree.
	Component *xmltree.Node
	// ComponentScore is its IR score.
	ComponentScore float64
	// Right is the joined right-side element subtree.
	Right *xmltree.Node
}

// SimilarityJoin evaluates a Query 3-style join through the TIX algebra,
// best-first.
func (d *DB) SimilarityJoin(spec SimilarityJoinSpec) ([]JoinedResult, error) {
	return d.SimilarityJoinContext(context.Background(), spec)
}

// SimilarityJoinContext is SimilarityJoin with panic recovery and an
// up-front cancellation check. The algebra path evaluates over xmltree
// values in one non-streaming pass, so cancellation is only observed at
// entry, not mid-join; use the extended-XQuery join shape (QueryContext)
// for cooperatively cancellable joins.
func (d *DB) SimilarityJoinContext(ctx context.Context, spec SimilarityJoinSpec) (results []JoinedResult, err error) {
	start := time.Now()
	// The algebra path evaluates over xmltree values directly, so there is
	// no accounting accessor; latency and result counts still record.
	defer func() { d.observe(opJoin, start, len(results), storage.AccessStats{}, err) }()
	defer recoverPanic(&err)
	if cerr := ctx.Err(); cerr != nil {
		if errors.Is(cerr, context.DeadlineExceeded) {
			return nil, exec.ErrDeadlineExceeded
		}
		return nil, exec.ErrCanceled
	}
	left := d.store.DocByName(spec.LeftDoc)
	right := d.store.DocByName(spec.RightDoc)
	if left == nil || right == nil {
		return nil, fmt.Errorf("db: similarity join needs both documents loaded")
	}

	p := pattern.NewPattern(1)
	l := p.Root.Child(2, pattern.AD)
	l.Child(3, pattern.PC)
	l.Child(6, pattern.ADStar)
	r := p.Root.Child(7, pattern.AD)
	r.Child(8, pattern.PC)
	p.Formula = pattern.Conj(
		pattern.TagEq(1, algebra.ProdRootTag),
		pattern.TagEq(2, spec.LeftRoot),
		pattern.TagEq(3, spec.LeftKey),
		pattern.IsElement(6),
		pattern.TagEq(7, spec.RightRoot),
		pattern.TagEq(8, spec.RightKey),
	)
	scores := &algebra.ScoreSet{
		Primary: map[int]algebra.NodeScorer{
			6: func(n *xmltree.Node) float64 {
				return scoring.ScoreFoo(d.tok, n, spec.Primary, spec.Secondary)
			},
		},
		Join: map[string]algebra.JoinScorer{
			"simScore": func(b pattern.Binding) float64 {
				return scoring.ScoreSim(d.tok, b[3], b[8])
			},
		},
		Secondary: map[int]algebra.ScoreExpr{
			2: algebra.VarScore(6),
			1: func(e algebra.ScoreEnv) float64 {
				return scoring.ScoreBar(e.Named["simScore"], e.Var[6])
			},
		},
	}
	joined := algebra.Join(
		algebra.FromXML(left.Root), algebra.FromXML(right.Root), p, scores)

	var out []JoinedResult
	for _, w := range joined.SortByRootScore() {
		comp := w.NodesOfVar(6)[0]
		compScore, _ := w.Score(comp)
		rootScore := w.RootScore()
		sim := 0.0
		if compScore > 0 {
			sim = rootScore - compScore
		}
		if spec.MinSim > 0 && sim <= spec.MinSim {
			continue
		}
		if rootScore <= 0 {
			continue
		}
		if spec.PickThreshold > 0 && compScore < spec.PickThreshold {
			continue
		}
		rightN := w.NodesOfVar(7)[0]
		out = append(out, JoinedResult{
			Score:          rootScore,
			Sim:            sim,
			Component:      comp.Origin(),
			ComponentScore: compScore,
			Right:          rightN.Origin(),
		})
	}
	return out, nil
}

package db

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/fixture"
)

func newFixtureDB(t testing.TB) *DB {
	t.Helper()
	d := New(Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		t.Fatal(err)
	}
	return d
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLoadFileAndStats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "articles.xml")
	if err := os.WriteFile(path, []byte(fixture.ArticlesXML), 0o644); err != nil {
		t.Fatal(err)
	}
	d := New(Options{Stemming: true})
	if err := d.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Documents != 1 || st.Nodes == 0 || st.Elements == 0 || st.Terms == 0 || st.Occurrences == 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := d.LoadFile(filepath.Join(dir, "missing.xml")); err == nil {
		t.Errorf("missing file should error")
	}
	if err := d.LoadString("bad.xml", "<a><b></a>"); err == nil {
		t.Errorf("malformed XML should error")
	}
	if err := d.LoadString("articles.xml", "<a/>"); err == nil {
		t.Errorf("duplicate name should error")
	}
}

// TestQuery2Integration runs the paper's Query 2 through the full stack:
// parser → path evaluation → PhraseFinder → TermJoin → StackPick →
// threshold. The expected top result is the chapter #a10 (Example 3.1).
func TestQuery2Integration(t *testing.T) {
	d := newFixtureDB(t)
	results, err := d.Query(`
		For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Pick $a using PickFoo($a)
		Return <result><score>$a/@score</score>{ $a }</result>
		Sortby(score)
		Threshold $a/@score > 4 stop after 5
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	if results[0].Node.Tag != "chapter" || !approx(results[0].Score, 5.0) {
		t.Errorf("top = %s[%f], want chapter[5.0]", results[0].Node.Tag, results[0].Score)
	}
	// The returned subtree is the real chapter content.
	if got := results[0].Node.FirstTag("ct"); got == nil || got.AllText() != "Search and Retrieval" {
		t.Errorf("chapter content wrong")
	}
}

// TestQuery3Integration runs the similarity join of Query 3: articles with
// relevant components joined to reviews with similar titles.
func TestQuery3Integration(t *testing.T) {
	d := newFixtureDB(t)
	results, err := d.SimilarityJoin(SimilarityJoinSpec{
		LeftDoc:   "articles.xml",
		RightDoc:  "reviews.xml",
		LeftRoot:  "article",
		RightRoot: "review",
		LeftKey:   "article-title",
		RightKey:  "title",
		Primary:   fixture.PrimaryPhrases,
		Secondary: fixture.SecondaryPhrases,
		MinSim:    1, // Threshold simScore > 1, as in Fig. 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatalf("no join results")
	}
	// Best result: the whole article (component score 5.6) with review 1
	// (identical title, sim 2) → 7.6.
	best := results[0]
	if !approx(best.Score, 7.6) || !approx(best.Sim, 2) {
		t.Errorf("best = %+v, want score 7.6 sim 2", best)
	}
	if best.Right.FirstTag("title") == nil {
		t.Errorf("right side lost title")
	}
	if id, _ := best.Right.Attr("id"); id != "1" {
		t.Errorf("best review id = %s, want 1", id)
	}
	// All results obey MinSim and are sorted.
	for i, r := range results {
		if r.Sim <= 1 {
			t.Errorf("result %d violates MinSim: %+v", i, r)
		}
		if i > 0 && r.Score > results[i-1].Score {
			t.Errorf("not sorted at %d", i)
		}
	}
	// The Fig. 7 witness — paragraph #a18 with review 1 — appears with
	// combined score 2.8.
	found := false
	for _, r := range results {
		if r.Component.Tag == "p" && approx(r.Score, 2.8) {
			found = true
		}
	}
	if !found {
		t.Errorf("Fig. 7 result (p, 2.8) missing")
	}
}

func TestTermSearch(t *testing.T) {
	d := newFixtureDB(t)
	results, err := d.TermSearch([]string{"search", "retrieval"}, TermSearchOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Errorf("not best-first")
		}
	}
	// The article root should be the global best (contains everything).
	if d.NameOf(results[0]) != "article" {
		t.Errorf("best = %s, want article", d.NameOf(results[0]))
	}
	// Complex and Enhanced agree.
	c1, err := d.TermSearch([]string{"search", "engine"}, TermSearchOptions{Complex: true})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.TermSearch([]string{"search", "engine"}, TermSearchOptions{Complex: true, Enhanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != len(c2) {
		t.Fatalf("enhanced disagrees: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("enhanced result %d differs", i)
		}
	}
}

func TestTermSearchParallelMatchesSequential(t *testing.T) {
	d := newFixtureDB(t)
	seq, err := d.TermSearch([]string{"search", "retrieval"}, TermSearchOptions{Complex: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.TermSearch([]string{"search", "retrieval"}, TermSearchOptions{Complex: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("parallel %d vs sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("result %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestPhraseSearchAndMaterialize(t *testing.T) {
	d := newFixtureDB(t)
	ms, err := d.PhraseSearch([]string{"information", "retrieval"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Errorf("matches = %d, want 3 (#a15 title, #a19, #a20)", len(ms))
	}
	n := d.Materialize(ms[0].Doc, ms[0].Node)
	if n == nil || !strings.Contains(strings.ToLower(n.AllText()), "information retrieval") {
		t.Errorf("materialized node does not contain the phrase: %v", n)
	}
}

func TestTwigSearch(t *testing.T) {
	d := newFixtureDB(t)
	// Articles that have both an author with an sname and a paragraph.
	got, err := d.TwigSearch(exec.Twig("article",
		exec.Twig("author", exec.Twig("sname")),
		exec.Twig("p")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Tag != "article" {
		t.Fatalf("twig results = %v", got)
	}
	// Chapters directly containing a ct child.
	got, err = d.TwigSearch(exec.Twig("chapter", exec.TwigChild("ct")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("chapter/ct = %d, want 3", len(got))
	}
	// No match across documents mixes nothing up.
	got, err = d.TwigSearch(exec.Twig("review", exec.Twig("sname")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 { // review 1 has reviewer/sname
		t.Errorf("review//sname = %d, want 1", len(got))
	}
}

func TestSimilarityJoinErrors(t *testing.T) {
	d := New(Options{})
	if _, err := d.SimilarityJoin(SimilarityJoinSpec{LeftDoc: "a", RightDoc: "b"}); err == nil {
		t.Errorf("missing documents should error")
	}
}

func TestStopwordsOption(t *testing.T) {
	d := New(Options{Stopwords: []string{"the", "and"}})
	if err := d.LoadString("x.xml", `<a>the cat and the hat</a>`); err != nil {
		t.Fatal(err)
	}
	idx := d.Index()
	if idx.TermFreq("the") != 0 || idx.TermFreq("and") != 0 {
		t.Errorf("stopwords indexed")
	}
	if idx.TermFreq("cat") != 1 || idx.TermFreq("hat") != 1 {
		t.Errorf("content words missing")
	}
}

func TestRemoveDocument(t *testing.T) {
	d := newFixtureDB(t)
	if d.Stats().Documents != 2 {
		t.Fatalf("documents = %d", d.Stats().Documents)
	}
	if err := d.RemoveDocument("reviews.xml"); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Documents != 1 {
		t.Fatalf("documents after remove = %d", st.Documents)
	}
	// Terms only present in reviews.xml are gone from the rebuilt index.
	if d.Index().TermFreq("anonymous") != 0 {
		t.Errorf("removed document's terms still indexed")
	}
	if d.Index().TermFreq("search") == 0 {
		t.Errorf("remaining document's terms lost")
	}
	// Queries over the remaining document still work.
	results, err := d.Query(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {})
		Sortby(score)
		Threshold $a/@score stop after 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("query after removal broken")
	}
	// Removing an unknown document errors; removing the last works.
	if err := d.RemoveDocument("nope.xml"); err == nil {
		t.Errorf("unknown removal accepted")
	}
	if err := d.RemoveDocument("articles.xml"); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Documents != 0 {
		t.Errorf("documents after removing all = %d", d.Stats().Documents)
	}
	// And the name can be reloaded afterwards.
	if err := d.LoadString("articles.xml", "<a>fresh</a>"); err != nil {
		t.Errorf("reload after removal: %v", err)
	}
}

func TestIndexInvalidationOnLoad(t *testing.T) {
	d := New(Options{})
	if err := d.LoadString("a.xml", `<a>one</a>`); err != nil {
		t.Fatal(err)
	}
	if d.Index().TermFreq("two") != 0 {
		t.Fatalf("unexpected term")
	}
	if err := d.LoadString("b.xml", `<b>two</b>`); err != nil {
		t.Fatal(err)
	}
	if d.Index().TermFreq("two") != 1 {
		t.Errorf("index not rebuilt after load")
	}
}

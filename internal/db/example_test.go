package db_test

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/fixture"
)

// Example runs the paper's Query 2 end to end: load the Figure 1 database,
// score components against the query phrases, pick the right granularity,
// and threshold.
func Example() {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		panic(err)
	}
	results, err := d.Query(`
		For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Pick $a using PickFoo($a)
		Sortby(score)
		Threshold $a/@score > 4 stop after 5
	`)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("<%s> %.1f\n", r.Node.Tag, r.Score)
	}
	// Output: <chapter> 5.0
}

func ExampleDB_TermSearch() {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		panic(err)
	}
	results, err := d.TermSearch([]string{"information", "retrieval"}, db.TermSearchOptions{TopK: 2})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("<%s> %.0f\n", d.NameOf(r), r.Score)
	}
	// Output:
	// <article> 7
	// <chapter> 7
}

func ExampleDB_PhraseSearch() {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		panic(err)
	}
	ms, err := d.PhraseSearch([]string{"information", "retrieval"})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ms), "occurrences")
	// Output: 3 occurrences
}

func ExampleDB_SimilarityJoin() {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		panic(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		panic(err)
	}
	results, err := d.SimilarityJoin(db.SimilarityJoinSpec{
		LeftDoc: "articles.xml", RightDoc: "reviews.xml",
		LeftRoot: "article", RightRoot: "review",
		LeftKey: "article-title", RightKey: "title",
		Primary:   []string{"search engine"},
		Secondary: []string{"internet", "information retrieval"},
		MinSim:    1,
	})
	if err != nil {
		panic(err)
	}
	best := results[0]
	fmt.Printf("combined %.1f (component %.1f, sim %.0f)\n", best.Score, best.ComponentScore, best.Sim)
	// Output: combined 7.6 (component 5.6, sim 2)
}

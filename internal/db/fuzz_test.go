package db

import (
	"bytes"
	"testing"

	"repro/internal/fixture"
)

// FuzzLoad drives the snapshot loader over corrupted byte streams. Load
// must either return a database or an error — never panic, hang, or
// allocate unboundedly from a lying length prefix. Seeds cover the valid
// snapshot (with and without its integrity trailer), its prefixes, and the
// bare magic, so mutation starts from structurally interesting inputs.
func FuzzLoad(f *testing.F) {
	d := New(Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		f.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		f.Fatal(err)
	}
	d.Index()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	var bufV1 bytes.Buffer
	if err := d.SaveV1(&bufV1); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-trailerLen]) // legacy, no trailer
	f.Add(valid[:len(valid)/2])
	f.Add(bufV1.Bytes()) // v1 raw-posting format
	f.Add([]byte(fileMagic))
	f.Add([]byte(fileMagicV2))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Load(bytes.NewReader(data))
		if err == nil && db == nil {
			t.Fatal("Load returned neither a database nor an error")
		}
	})
}

package db

import (
	"bytes"
	"testing"

	"repro/internal/synth"
	"repro/internal/xmltree"
)

// TestSynthCorpusEndToEnd loads a mid-sized synthetic corpus and validates
// the full query pipeline against naive recomputation: scores from the
// TermJoin-backed engine must equal ScoreFoo evaluated by scanning each
// result's subtree text, and Pick's parent/child exclusion must hold.
func TestSynthCorpusEndToEnd(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Articles = 60
	cfg.Seed = 77
	cfg.ControlTerms = map[string]int{"needle": 120, "haystack": 90, "straw": 40}
	cfg.Phrases = []synth.PhraseSpec{{T1: "needle", T2: "haystack", Together: 30}}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(Options{})
	if err := d.LoadTree("corpus.xml", corpus.Root); err != nil {
		t.Fatal(err)
	}

	results, err := d.Query(`
		For $a in document("corpus.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"needle haystack"}, {"straw"})
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	tok := d.Tokenizer()
	for i, r := range results {
		if i >= 200 {
			break // spot-check a prefix; the list is score-ordered
		}
		text := r.Node.AllText()
		want := 0.8*float64(tok.CountPhrase(text, []string{"needle", "haystack"})) +
			0.6*float64(tok.Count(text, "straw"))
		// Engine phrase matching is per text node; AllText-based naive
		// counting can only differ by phrase matches spanning node
		// boundaries, which the generator never plants. Scores must agree.
		if diff := r.Score - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("result %d (<%s>): engine score %v, naive %v", i, r.Node.Tag, r.Score, want)
		}
	}

	// With Pick, no returned component may contain another.
	picked, err := d.Query(`
		For $a in document("corpus.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"needle haystack"}, {"straw"})
		Pick $a using PickFoo($a, 0.8)
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) == 0 {
		t.Fatal("pick returned nothing")
	}
	if len(picked) >= len(results) {
		t.Errorf("pick did not reduce results: %d vs %d", len(picked), len(results))
	}
	type span struct{ start, end uint32 }
	var spans []span
	for _, r := range picked {
		spans = append(spans, span{r.Node.Start, r.Node.End})
	}
	adjacentLevels := 0
	for i, a := range spans {
		for j, b := range spans {
			if i == j {
				continue
			}
			if a.start < b.start && b.end <= a.end {
				// Containment among picked components is allowed only for
				// non-adjacent levels (grandparent/grandchild); direct
				// parent/child pairs must never both be returned.
				if picked[i].Node.Level+1 == picked[j].Node.Level {
					adjacentLevels++
				}
			}
		}
	}
	if adjacentLevels > 0 {
		t.Errorf("%d direct parent/child pairs in the picked set", adjacentLevels)
	}
}

// TestSynthCorpusPersistRoundTrip saves and reloads a synthetic-corpus
// database and checks that a ranked query returns identical results.
func TestSynthCorpusPersistRoundTrip(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Articles = 25
	cfg.Seed = 78
	cfg.ControlTerms = map[string]int{"needle": 50}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(Options{})
	if err := d.LoadTree("corpus.xml", corpus.Root); err != nil {
		t.Fatal(err)
	}
	d.Index()

	q := `
		For $a in document("corpus.xml")//sec/descendant-or-self::*
		Score $a using ScoreFoo($a, {"needle"}, {})
		Sortby(score)
		Threshold $a/@score > 0 stop after 20`
	before, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := d2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("result counts differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Ord != after[i].Ord || before[i].Score != after[i].Score {
			t.Errorf("result %d differs after reload", i)
		}
		if xmltree.XMLString(before[i].Node) != xmltree.XMLString(after[i].Node) {
			t.Errorf("result %d XML differs after reload", i)
		}
	}
}

package db

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/fixture"
)

// savedFixture returns the serialized bytes of the fixture database with
// its index, ending in the integrity trailer.
func savedFixture(t *testing.T) []byte {
	t.Helper()
	d := New(Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		t.Fatal(err)
	}
	d.Index()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

const trailerLen = len(sumMagic) + 4

func TestSnapshotRoundTripWithTrailer(t *testing.T) {
	data := savedFixture(t)
	if len(data) < trailerLen || !bytes.Contains(data[len(data)-trailerLen:], []byte(sumMagic)) {
		t.Fatalf("saved file does not end in a %q trailer", sumMagic)
	}
	d, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Documents != 2 || st.Terms == 0 {
		t.Errorf("reloaded stats = %+v", st)
	}
}

// TestSnapshotLegacyWithoutTrailer: a file written before the trailer
// existed (simulated by stripping it) still loads. This is also why a
// truncation that lands exactly on the payload boundary is accepted: it is
// byte-for-byte indistinguishable from a legacy file.
func TestSnapshotLegacyWithoutTrailer(t *testing.T) {
	data := savedFixture(t)
	legacy := data[:len(data)-trailerLen]
	d, err := Load(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if st := d.Stats(); st.Documents != 2 {
		t.Errorf("legacy reload stats = %+v", st)
	}
}

func TestSnapshotTruncation(t *testing.T) {
	data := savedFixture(t)
	payload := len(data) - trailerLen
	// Cut points spread across the payload plus every partial-trailer
	// length; all must be rejected with an error (payload cuts fail the
	// decode, partial trailers fail the integrity check).
	cuts := []int{1, 3, payload / 4, payload / 2, payload - 1}
	for i := 1; i < trailerLen; i++ {
		cuts = append(cuts, payload+i)
	}
	for _, cut := range cuts {
		_, err := Load(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Errorf("truncation at %d of %d accepted", cut, len(data))
			continue
		}
		if cut > payload && !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("partial trailer at %d: err = %v, want ErrCorruptSnapshot", cut, err)
		}
	}
}

// TestSnapshotBitFlip: corrupting a payload byte that still decodes (a
// letter inside document text) is caught only by the checksum.
func TestSnapshotBitFlip(t *testing.T) {
	data := bytes.Clone(savedFixture(t))
	at := bytes.Index(data, []byte("Internet"))
	if at < 0 {
		t.Fatal("marker text not found in snapshot")
	}
	data[at] ^= 0x20 // 'I' -> 'i': still well-formed XML, different bytes
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot (checksum mismatch)", err)
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("error does not name the checksum: %v", err)
	}
}

func TestSnapshotTrailingGarbage(t *testing.T) {
	data := savedFixture(t)
	// After the trailer.
	withExtra := append(bytes.Clone(data), 'x')
	if _, err := Load(bytes.NewReader(withExtra)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("byte after trailer: err = %v, want ErrCorruptSnapshot", err)
	}
	// Instead of the trailer: 12+ bytes that are not the trailer magic.
	legacy := data[:len(data)-trailerLen]
	bad := append(bytes.Clone(legacy), []byte("not a trailer!")...)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("garbage instead of trailer: err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestSnapshotCorruptTrailerChecksumBytes(t *testing.T) {
	data := bytes.Clone(savedFixture(t))
	data[len(data)-1] ^= 0xff // flip the checksum itself
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
}

package db

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedXMLThroughLoadPaths: malformed documents are rejected with
// an error naming the document from every load path, and a failed load
// leaves the database untouched.
func TestMalformedXMLThroughLoadPaths(t *testing.T) {
	const bad = "<article><title>unterminated"

	d := New(Options{})
	if err := d.LoadString("bad.xml", bad); err == nil {
		t.Error("LoadString accepted malformed XML")
	} else if !strings.Contains(err.Error(), "bad.xml") {
		t.Errorf("LoadString error does not name the document: %v", err)
	}

	if err := d.LoadReader("bad.xml", strings.NewReader(bad)); err == nil {
		t.Error("LoadReader accepted malformed XML")
	}

	path := filepath.Join(t.TempDir(), "bad.xml")
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadFile(path); err == nil {
		t.Error("LoadFile accepted malformed XML")
	} else if !strings.Contains(err.Error(), "bad.xml") {
		t.Errorf("LoadFile error does not name the document: %v", err)
	}

	if err := d.LoadFile(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Error("LoadFile accepted a missing file")
	}

	// The failed loads left no documents behind.
	if st := d.Stats(); st.Documents != 0 {
		t.Errorf("failed loads left %d documents", st.Documents)
	}

	// And the database still works afterwards.
	if err := d.LoadString("ok.xml", "<a><b>fine</b></a>"); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Documents != 1 {
		t.Errorf("documents = %d after recovery load", st.Documents)
	}
}

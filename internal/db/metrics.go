package db

import (
	"errors"
	"time"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Per-query metric families recorded by the DB facade. Every engine entry
// point (Query, TermSearch, PhraseSearch, SimilarityJoin, TwigSearch)
// records under its op label:
//
//	tix_query_seconds{op=...}            latency histogram (log-scale buckets)
//	tix_queries_total{op=...}            evaluations started
//	tix_query_errors_total{op=...}       evaluations that returned an error
//	tix_query_results_total{op=...}      results returned
//	tix_access_node_reads_total{op=...}  store node-record fetches
//	tix_access_page_reads_total{op=...}  distinct-page transitions
//	tix_access_text_reads_total{op=...}  text payload fetches
//	tix_access_nav_steps_total{op=...}   child/sibling navigation steps
//
// Failed evaluations are additionally classified by cause:
//
//	tix_query_timeouts_total{op=...}        deadline exceeded (exec.ErrDeadlineExceeded)
//	tix_query_canceled_total{op=...}        context canceled (exec.ErrCanceled)
//	tix_query_limit_exceeded_total{op=...}  resource budget exhausted (exec.ErrLimitExceeded)
//	tix_query_faults_total{op=...}          storage faults (storage.ErrInjectedFault)
//	tix_query_panics_total{op=...}          panics recovered at the facade boundary
//
// The access-stat counters are the paper's cost-accounting (the numbers
// behind Tables 1–5) surfaced as a runtime feature: a scrape after a
// production query shows *why* it was expensive, not only that it was.
const (
	opQuery   = "query"
	opExplain = "explain"
	opTerms   = "terms"
	opPhrase  = "phrase"
	opJoin    = "join"
	opTwig    = "twig"
)

// MetricsRegistry returns the registry this database records per-query
// metrics into: Options.Metrics when set, else the process-wide
// metrics.Default.
func (d *DB) MetricsRegistry() *metrics.Registry {
	if d.opts.Metrics != nil {
		return d.opts.Metrics
	}
	return metrics.Default
}

// observe records one engine operation: latency, outcome, result count,
// and the operator's store-access statistics.
func (d *DB) observe(op string, start time.Time, results int, stats storage.AccessStats, err error) {
	reg := d.MetricsRegistry()
	lbl := `{op="` + op + `"}`
	reg.Histogram("tix_query_seconds" + lbl).Observe(time.Since(start).Seconds())
	reg.Counter("tix_queries_total" + lbl).Inc()
	if err != nil {
		reg.Counter("tix_query_errors_total" + lbl).Inc()
		switch {
		case errors.Is(err, exec.ErrDeadlineExceeded):
			reg.Counter("tix_query_timeouts_total" + lbl).Inc()
		case errors.Is(err, exec.ErrCanceled):
			reg.Counter("tix_query_canceled_total" + lbl).Inc()
		case errors.Is(err, exec.ErrLimitExceeded):
			reg.Counter("tix_query_limit_exceeded_total" + lbl).Inc()
		case errors.Is(err, storage.ErrInjectedFault):
			reg.Counter("tix_query_faults_total" + lbl).Inc()
		case errors.Is(err, ErrPanic):
			reg.Counter("tix_query_panics_total" + lbl).Inc()
		}
		return
	}
	reg.Counter("tix_query_results_total" + lbl).Add(int64(results))
	reg.Counter("tix_access_node_reads_total" + lbl).Add(stats.NodeReads)
	reg.Counter("tix_access_page_reads_total" + lbl).Add(stats.PageReads)
	reg.Counter("tix_access_text_reads_total" + lbl).Add(stats.TextReads)
	reg.Counter("tix_access_nav_steps_total" + lbl).Add(stats.NavSteps)
}

package db

import (
	"strings"
	"testing"

	"repro/internal/fixture"
	"repro/internal/metrics"
)

func newMeteredDB(t *testing.T) (*DB, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	d := New(Options{Stemming: true, Metrics: reg})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		t.Fatal(err)
	}
	return d, reg
}

func TestQueryRecordsMetrics(t *testing.T) {
	d, reg := newMeteredDB(t)
	_, err := d.Query(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(`tix_queries_total{op="query"}`).Value(); got != 1 {
		t.Errorf("queries_total = %d, want 1", got)
	}
	if got := reg.Counter(`tix_query_results_total{op="query"}`).Value(); got == 0 {
		t.Error("query produced no recorded results")
	}
	if got := reg.Counter(`tix_access_node_reads_total{op="query"}`).Value(); got == 0 {
		t.Error("query recorded no node reads (engine stats sink not wired)")
	}
	if got := reg.Histogram(`tix_query_seconds{op="query"}`).Count(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}

	// Errors count separately and do not record results.
	if _, err := d.Query("garbage !!"); err == nil {
		t.Fatal("bad query did not error")
	}
	if got := reg.Counter(`tix_query_errors_total{op="query"}`).Value(); got != 1 {
		t.Errorf("query_errors_total = %d, want 1", got)
	}
}

func TestTermAndPhraseSearchRecordMetrics(t *testing.T) {
	d, reg := newMeteredDB(t)
	for _, parallel := range []int{0, 2} {
		if _, err := d.TermSearch([]string{"search", "engine"}, TermSearchOptions{TopK: 5, Parallel: parallel}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(`tix_queries_total{op="terms"}`).Value(); got != 2 {
		t.Errorf("terms total = %d, want 2", got)
	}
	// Both the sequential and the parallel path must surface access stats
	// through the shared AccessReporter interface.
	if got := reg.Counter(`tix_access_node_reads_total{op="terms"}`).Value(); got == 0 {
		t.Error("term search recorded no node reads")
	}

	if _, err := d.PhraseSearch([]string{"information", "retrieval"}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram(`tix_query_seconds{op="phrase"}`).Count(); got != 1 {
		t.Errorf("phrase latency observations = %d, want 1", got)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `tix_query_seconds_bucket{op="terms",le="+Inf"} 2`) {
		t.Errorf("exposition missing terms histogram:\n%s", b.String())
	}
}

package db

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/xmltree"
)

// Document mutation API: Add/Update/Delete run against the live index —
// an LSM layer of memtables and immutable block segments — so documents
// become queryable (or disappear) without a rebuild, concurrently with
// readers. Updates and re-adds allocate fresh document ids; the old id is
// tombstoned and never reused.
//
// Mutations record metrics per operation:
//
//	tix_ingest_seconds{op=add|update|delete}       latency histogram
//	tix_ingest_total{op=...}                       mutations attempted
//	tix_ingest_errors_total{op=...}                mutations that failed
//	tix_index_generation                           current mutation generation

// ErrDocumentExists marks an Add whose document name is already loaded
// (use Update to replace it).
var ErrDocumentExists = errors.New("db: document already exists")

// ErrDocumentNotFound marks an Update or Delete naming a document that is
// not loaded (or already deleted).
var ErrDocumentNotFound = errors.New("db: document not found")

const (
	opAdd    = "add"
	opUpdate = "update"
	opDelete = "delete"
)

// observeIngest records one mutation's latency and outcome.
func (d *DB) observeIngest(op string, start time.Time, err error) {
	reg := d.MetricsRegistry()
	lbl := `{op="` + op + `"}`
	reg.Histogram("tix_ingest_seconds" + lbl).Observe(time.Since(start).Seconds())
	reg.Counter("tix_ingest_total" + lbl).Inc()
	if err != nil {
		reg.Counter("tix_ingest_errors_total" + lbl).Inc()
	}
	reg.Gauge("tix_index_generation").Set(int64(d.Generation()))
}

// Generation returns the live index's mutation generation (0 before the
// index is first built). Equal generations imply an identical visible
// corpus, so clients can use it to detect staleness cheaply.
func (d *DB) Generation() uint64 {
	d.mu.Lock()
	l := d.live
	d.mu.Unlock()
	if l == nil {
		return 0
	}
	return l.Generation()
}

// Add parses src and ingests it under name into the live index. The
// document is queryable as soon as Add returns. Adding a name that is
// already loaded fails with ErrDocumentExists.
func (d *DB) Add(name, src string) (err error) {
	start := time.Now()
	defer func() { d.observeIngest(opAdd, start, err) }()
	root, err := xmltree.ParseString(src)
	if err != nil {
		return fmt.Errorf("db: add %s: %w", name, err)
	}
	return d.AddTree(name, root)
}

// AddTree ingests an already-parsed tree under name into the live index.
func (d *DB) AddTree(name string, root *xmltree.Node) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.store.DocByName(name) != nil {
		return fmt.Errorf("%w: %q", ErrDocumentExists, name)
	}
	live := d.liveLocked()
	id, err := d.store.AddTree(name, root)
	if err != nil {
		return err
	}
	if err := live.IndexDoc(d.store.Doc(id)); err != nil {
		// The document was tombstoned by the live index; release the name
		// so a corrected version can be re-added.
		d.store.ReleaseName(name)
		return fmt.Errorf("db: add %s: %w", name, err)
	}
	return nil
}

// Update replaces the named document with a fresh parse of src: the old
// version is tombstoned and the new one ingested under a new document id,
// atomically with respect to other mutations. Readers switch from old to
// new at snapshot granularity.
func (d *DB) Update(name, src string) (err error) {
	start := time.Now()
	defer func() { d.observeIngest(opUpdate, start, err) }()
	root, err := xmltree.ParseString(src)
	if err != nil {
		return fmt.Errorf("db: update %s: %w", name, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.store.DocByName(name)
	if old == nil {
		return fmt.Errorf("%w: %q", ErrDocumentNotFound, name)
	}
	live := d.liveLocked()
	live.Delete(old.ID)
	d.store.ReleaseName(name)
	id, err := d.store.AddTree(name, root)
	if err != nil {
		return fmt.Errorf("db: update %s: %w", name, err)
	}
	if err := live.IndexDoc(d.store.Doc(id)); err != nil {
		d.store.ReleaseName(name)
		return fmt.Errorf("db: update %s: %w", name, err)
	}
	return nil
}

// Delete tombstones the named document: its postings stop flowing out of
// every cursor immediately and its store space is reclaimed by the next
// full compaction (or a Save, which persists only live documents). The
// name becomes available for a future Add.
func (d *DB) Delete(name string) (err error) {
	start := time.Now()
	defer func() { d.observeIngest(opDelete, start, err) }()
	d.mu.Lock()
	defer d.mu.Unlock()
	doc := d.store.DocByName(name)
	if doc == nil {
		return fmt.Errorf("%w: %q", ErrDocumentNotFound, name)
	}
	live := d.liveLocked()
	live.Delete(doc.ID)
	d.store.ReleaseName(name)
	return nil
}

// AllocatedDocIDs returns the document-id allocation cursor: the number
// of ids ever handed out, live or tombstoned. Ids are allocated
// sequentially and never reused, so two replicas that loaded the same
// corpus in the same order number documents identically exactly when
// their cursors stay equal; the replicated fleet compares cursors to
// detect and repair numbering drift after a partial replicated mutation.
func (d *DB) AllocatedDocIDs() int {
	return d.store.NumDocs()
}

// BurnDocID consumes one document id without making a document visible:
// a placeholder record is appended to the store and immediately
// tombstoned in the live index, so the next Add allocates the id after
// it. The replicated fleet burns ids on replicas that a partially-failed
// mutation never reached, re-aligning the numbering with the replicas
// that consumed an id before the failure (see fleet.Fleet.Add). Burned
// ids never appear in query results and, like all tombstones, are
// dropped by Save.
func (d *DB) BurnDocID() error {
	root, err := xmltree.ParseString("<burned/>")
	if err != nil {
		return fmt.Errorf("db: burn doc id: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	live := d.liveLocked()
	name := fmt.Sprintf("\x00burned\x00%d", d.store.NumDocs())
	id, err := d.store.AddTree(name, root)
	if err != nil {
		return fmt.Errorf("db: burn doc id: %w", err)
	}
	live.Delete(id)
	d.store.ReleaseName(name)
	return nil
}

// CompactNow synchronously folds the live index's memtables and segments
// into a single fresh segment, dropping tombstoned postings. Queries stay
// consistent throughout; afterwards a mutation-free database serves flat,
// block-max-prunable lists again.
func (d *DB) CompactNow() {
	d.liveIndex().Compact()
}

// WaitCompaction blocks until any in-flight background compaction
// finishes — deterministic shutdown and test hook.
func (d *DB) WaitCompaction() {
	d.mu.Lock()
	l := d.live
	d.mu.Unlock()
	if l != nil {
		l.WaitCompaction()
	}
}

// CompactionBacklog returns the live index's outstanding compaction work
// (sealed memtables plus surplus segments; see index.Live.Backlog), or 0
// before the index is first built. Readiness probes use it to report
// not-ready when ingestion has outrun folding.
func (d *DB) CompactionBacklog() int {
	d.mu.Lock()
	l := d.live
	d.mu.Unlock()
	if l == nil {
		return 0
	}
	return l.Backlog()
}

// IsDeleted reports whether id is tombstoned in the live index.
func (d *DB) IsDeleted(id storage.DocID) bool {
	d.mu.Lock()
	l := d.live
	d.mu.Unlock()
	return l != nil && l.IsDead(id)
}

package db

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestMutateSentinelsAndMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	d := New(Options{Metrics: reg})
	if got := d.Generation(); got != 0 {
		t.Fatalf("fresh database generation = %d, want 0", got)
	}

	if err := d.Add("a.xml", `<d><t>alpha beta</t></d>`); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("a.xml", `<d><t>dup</t></d>`); !errors.Is(err, ErrDocumentExists) {
		t.Fatalf("duplicate Add err = %v, want ErrDocumentExists", err)
	}
	if err := d.Update("missing.xml", `<d/>`); !errors.Is(err, ErrDocumentNotFound) {
		t.Fatalf("Update of unknown doc err = %v, want ErrDocumentNotFound", err)
	}
	if err := d.Delete("missing.xml"); !errors.Is(err, ErrDocumentNotFound) {
		t.Fatalf("Delete of unknown doc err = %v, want ErrDocumentNotFound", err)
	}
	if err := d.Add("bad.xml", `<d><open`); err == nil {
		t.Fatal("Add of malformed XML succeeded")
	}

	// Update tombstones the old id and allocates a fresh one.
	oldID := d.Store().DocByName("a.xml").ID
	if err := d.Update("a.xml", `<d><t>gamma</t></d>`); err != nil {
		t.Fatal(err)
	}
	newID := d.Store().DocByName("a.xml").ID
	if newID == oldID {
		t.Fatalf("Update reused document id %d", oldID)
	}
	if !d.IsDeleted(oldID) {
		t.Fatalf("old id %d not tombstoned after Update", oldID)
	}
	if d.IsDeleted(newID) {
		t.Fatalf("fresh id %d reported deleted", newID)
	}
	if res, err := d.TermSearch([]string{"alpha"}, TermSearchOptions{}); err != nil || len(res) != 0 {
		t.Fatalf("old content after Update: %v, %v", res, err)
	}
	if res, err := d.TermSearch([]string{"gamma"}, TermSearchOptions{}); err != nil || len(res) == 0 {
		t.Fatalf("new content missing after Update: %v, %v", res, err)
	}

	gen := d.Generation()
	if gen == 0 {
		t.Fatal("mutations did not advance the generation")
	}
	if err := d.Delete("a.xml"); err != nil {
		t.Fatal(err)
	}
	if d.Generation() <= gen {
		t.Fatal("Delete did not advance the generation")
	}
	if got := d.DocumentCount(); got != 0 {
		t.Fatalf("DocumentCount = %d after deleting everything, want 0", got)
	}

	// CompactNow folds the (now empty) corpus back to a flat index.
	d.CompactNow()
	d.WaitCompaction()
	if res, err := d.TermSearch([]string{"gamma"}, TermSearchOptions{}); err != nil || len(res) != 0 {
		t.Fatalf("deleted content after compaction: %v, %v", res, err)
	}

	// Per-op counters saw every attempt, successful or not.
	wantTotals := map[string]int64{"add": 3, "update": 2, "delete": 2}
	wantErrs := map[string]int64{"add": 2, "update": 1, "delete": 1}
	ops := []string{"add", "update", "delete"}
	for _, op := range ops {
		lbl := `{op="` + op + `"}`
		if got := reg.Counter("tix_ingest_total" + lbl).Value(); got != wantTotals[op] {
			t.Errorf("tix_ingest_total%s = %d, want %d", lbl, got, wantTotals[op])
		}
		if got := reg.Counter("tix_ingest_errors_total" + lbl).Value(); got != wantErrs[op] {
			t.Errorf("tix_ingest_errors_total%s = %d, want %d", lbl, got, wantErrs[op])
		}
	}
	if got := reg.Gauge("tix_index_generation").Value(); got == 0 {
		t.Error("tix_index_generation gauge not published")
	}
}

// mutatedFixture builds a database that exercised every mutation: adds,
// an update, and a delete, leaving live documents b and c (c updated).
func mutatedFixture(t *testing.T) *DB {
	t.Helper()
	d := New(Options{Metrics: metrics.NewRegistry()})
	for _, c := range []struct{ name, src string }{
		{"a.xml", `<d><t>apple orchard</t></d>`},
		{"b.xml", `<d><t>banana grove</t></d>`},
		{"c.xml", `<d><t>cherry stand</t></d>`},
	} {
		if err := d.Add(c.name, c.src); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Update("c.xml", `<d><t>cranberry bog</t></d>`); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("a.xml"); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSaveLoadAfterMutations pins the persistence strategy for a mutated
// database: the snapshot contains only live documents (renumbered
// densely), loads into a database that answers identically, and carries a
// checked flat index.
func TestSaveLoadAfterMutations(t *testing.T) {
	d := mutatedFixture(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.DocumentCount(); got != 2 {
		t.Fatalf("reloaded DocumentCount = %d, want 2", got)
	}
	if d2.Store().DocByName("a.xml") != nil {
		t.Fatal("deleted document resurrected by reload")
	}
	// Dense renumbering: ids are 0..n-1 with no gaps.
	for i, doc := range d2.Store().Docs() {
		if int(doc.ID) != i {
			t.Fatalf("reloaded doc %d has id %d; not densely renumbered", i, doc.ID)
		}
	}
	for term, want := range map[string]int{"apple": 0, "cherry": 0, "banana": 1, "cranberry": 1} {
		res, err := d2.TermSearch([]string{term}, TermSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		if len(res) > 0 {
			got = 1
		}
		if got != want {
			t.Fatalf("term %q searchable=%d after reload, want %d", term, got, want)
		}
	}

	// A second save of the reloaded database round-trips byte-identically:
	// the rebuild path is a fixed point.
	var buf2, buf3 bytes.Buffer
	if err := d2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	snap2 := append([]byte(nil), buf2.Bytes()...)
	d3, err := Load(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d3.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap2, buf3.Bytes()) {
		t.Fatal("save → load → save is not a fixed point after mutations")
	}
}

// TestIngestWhileQueryingMatchesBuild is the LSM layer's pinnable proof:
// a large corpus ingested one document at a time — with a reader
// hammering term searches against every intermediate snapshot — must end
// up exactly equal to a from-scratch bulk build over the final corpus.
// Add-only ingestion allocates the same monotone document ids as bulk
// loading, so after compaction even the persisted snapshots must be
// byte-identical. Run under -race this is also the concurrency proof.
func TestIngestWhileQueryingMatchesBuild(t *testing.T) {
	nDocs := 100_000
	if testing.Short() {
		nDocs = 2_000
	}
	docSrc := func(i int) string {
		// Bounded vocabulary so postings lists grow long enough to span
		// many blocks; "common" appears in every document.
		return fmt.Sprintf(`<d><t>common w%d q%d</t></d>`, i%97, i%13)
	}
	probe := []string{"w3", "q7"}

	grown := New(Options{Metrics: metrics.NewRegistry()})
	grown.Warm()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := grown.TermSearch(probe, TermSearchOptions{}); err != nil {
				select {
				case errs <- err:
				default:
				}
				return
			}
		}
	}()
	for i := 0; i < nDocs; i++ {
		if err := grown.Add(fmt.Sprintf("doc%06d.xml", i), docSrc(i)); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("concurrent search failed: %v", err)
	default:
	}
	grown.WaitCompaction()

	scratch := New(Options{Metrics: metrics.NewRegistry()})
	for i := 0; i < nDocs; i++ {
		if err := scratch.LoadString(fmt.Sprintf("doc%06d.xml", i), docSrc(i)); err != nil {
			t.Fatal(err)
		}
	}

	gi, si := grown.Index(), scratch.Index()
	gTerms, sTerms := gi.TermsByFreq(), si.TermsByFreq()
	sort.Strings(gTerms)
	sort.Strings(sTerms)
	if !reflect.DeepEqual(gTerms, sTerms) {
		t.Fatalf("vocabularies differ: %d grown vs %d scratch terms", len(gTerms), len(sTerms))
	}
	for _, term := range gTerms {
		if !reflect.DeepEqual(gi.List(term).Materialize(), si.List(term).Materialize()) {
			t.Fatalf("postings for %q differ between ingested and bulk-built index", term)
		}
	}
	for _, terms := range [][]string{probe, {"common"}, {"q0", "w0"}} {
		got, err := grown.TermSearch(terms, TermSearchOptions{TopK: 25})
		if err != nil {
			t.Fatal(err)
		}
		want, err := scratch.TermSearch(terms, TermSearchOptions{TopK: 25})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TermSearch(%v) differs:\n  grown:   %v\n  scratch: %v", terms, got, want)
		}
	}

	// Byte-identical persisted snapshots: add-only ingestion compacts to
	// the exact index a bulk build produces.
	var gBuf, sBuf bytes.Buffer
	if err := grown.Save(&gBuf); err != nil {
		t.Fatal(err)
	}
	if err := scratch.Save(&sBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gBuf.Bytes(), sBuf.Bytes()) {
		t.Fatalf("snapshots differ: %d vs %d bytes", gBuf.Len(), sBuf.Len())
	}
	t.Logf("ingested %d docs concurrently with readers; snapshot %d bytes, byte-identical to bulk build", nDocs, gBuf.Len())
}

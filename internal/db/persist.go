package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

// Database file format (version 1):
//
//	magic   "TIXDB1\n"
//	options stemming byte (0/1), uvarint stopword count, stopwords
//	docs    uvarint count; per doc: name, serialized XML
//	index   presence byte; if 1: uvarint term count; per term: the term,
//	        uvarint posting count, postings as uvarint (doc, node, pos,
//	        offset) with pos delta-encoded within a (term, doc) run
//
// Strings are uvarint length + bytes. The XML serialization round-trips
// through the same parser used at load time, so the region encoding and
// node ordinals of a reloaded database are identical to the original's.
const fileMagic = "TIXDB1\n"

// Save writes the database — documents, options and the inverted index —
// to w.
func (d *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	// Options.
	stem := byte(0)
	if d.opts.Stemming {
		stem = 1
	}
	if err := bw.WriteByte(stem); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(d.opts.Stopwords)))
	for _, sw := range d.opts.Stopwords {
		writeString(bw, sw)
	}
	// Documents.
	docs := d.store.Docs()
	writeUvarint(bw, uint64(len(docs)))
	for _, doc := range docs {
		writeString(bw, doc.Name)
		writeString(bw, xmltree.XMLString(doc.Root))
	}
	// Index.
	if d.idx == nil {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	terms := d.idx.TermsByFreq()
	writeUvarint(bw, uint64(len(terms)))
	for _, term := range terms {
		writeString(bw, term)
		ps := d.idx.Postings(term)
		writeUvarint(bw, uint64(len(ps)))
		lastDoc := storage.DocID(-1)
		lastPos := uint32(0)
		for _, p := range ps {
			writeUvarint(bw, uint64(p.Doc))
			writeUvarint(bw, uint64(p.Node))
			if p.Doc != lastDoc {
				writeUvarint(bw, uint64(p.Pos))
				lastDoc, lastPos = p.Doc, p.Pos
			} else {
				writeUvarint(bw, uint64(p.Pos-lastPos))
				lastPos = p.Pos
			}
			writeUvarint(bw, uint64(p.Offset))
		}
	}
	return bw.Flush()
}

// SaveFile writes the database to path.
func (d *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("db: %w", err)
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("db: load: bad magic %q", magic)
	}
	stem, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	nStop, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	opts := Options{Stemming: stem == 1}
	for i := uint64(0); i < nStop; i++ {
		sw, err := readString(br)
		if err != nil {
			return nil, err
		}
		opts.Stopwords = append(opts.Stopwords, sw)
	}
	d := New(opts)

	nDocs, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nDocs; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		xmlSrc, err := readString(br)
		if err != nil {
			return nil, err
		}
		if err := d.LoadString(name, xmlSrc); err != nil {
			return nil, err
		}
	}

	hasIndex, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	if hasIndex == 0 {
		return d, nil
	}
	nTerms, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	postings := make(map[string][]index.Posting, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		term, err := readString(br)
		if err != nil {
			return nil, err
		}
		nPost, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		const sanity = 1 << 31
		if nPost > sanity {
			return nil, fmt.Errorf("db: load: implausible posting count %d for %q", nPost, term)
		}
		ps := make([]index.Posting, 0, nPost)
		lastDoc := storage.DocID(-1)
		lastPos := uint32(0)
		for j := uint64(0); j < nPost; j++ {
			docV, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			nodeV, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			posV, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			offV, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			doc := storage.DocID(docV)
			var pos uint32
			if doc != lastDoc {
				pos = uint32(posV)
			} else {
				pos = lastPos + uint32(posV)
			}
			lastDoc, lastPos = doc, pos
			ps = append(ps, index.Posting{
				Doc:    doc,
				Node:   int32(nodeV),
				Pos:    pos,
				Offset: uint32(offV),
			})
		}
		postings[term] = ps
	}
	idx, err := index.Restore(d.store, d.tok, postings)
	if err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	d.idx = idx
	return d, nil
}

// LoadDBFile reads a database file written by SaveFile.
func LoadDBFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("db: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("db: load: %w", err)
	}
	return v, nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 30
	if n > maxString {
		return "", fmt.Errorf("db: load: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("db: load: %w", err)
	}
	return string(buf), nil
}

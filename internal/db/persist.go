package db

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/index"
	"repro/internal/postings"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

// Database file format:
//
//	magic   "TIXDB1\n" (v1) or "TIXDB2\n" (v2)
//	options stemming byte (0/1), uvarint stopword count, stopwords
//	docs    uvarint count; per doc: name, serialized XML
//	index   presence byte; if 1 the version-specific index section
//	trailer "TIXSUM1\n" + 4-byte little-endian IEEE CRC32 of every byte
//	        before the trailer
//
// v1 index section: uvarint term count; per term: the term, uvarint
// posting count, postings as uvarint (doc, node, pos, offset) with pos
// delta-encoded within a (term, doc) run.
//
// v2 index section stores each term's encoded blocks verbatim, so loading
// adopts the bytes without re-encoding: uvarint term count; per term: the
// term, uvarint posting count, uvarint block count, then per block the
// skip entry as uvarints (posting count in block, payload byte length,
// first doc, last doc − first doc, last pos, max per-doc frequency),
// followed by the concatenated block payloads. Every block is fully
// validated by postings.NewBlockList at load, so a truncated or tampered
// v2 payload is rejected even when the trailer is missing.
//
// Strings are uvarint length + bytes. The XML serialization round-trips
// through the same parser used at load time, so the region encoding and
// node ordinals of a reloaded database are identical to the original's.
//
// The integrity trailer is backward and forward compatible: files written
// before it existed load cleanly (a file ending exactly at the payload is
// accepted as legacy), and old loaders that stop at the payload simply
// never read the trailing 12 bytes. A present-but-partial trailer, a
// checksum mismatch, or bytes after the trailer are rejected with an error
// wrapping ErrCorruptSnapshot. Load dispatches on the magic, so v1
// snapshots keep loading (their postings are block-encoded on restore);
// SaveV1 keeps writing them for older readers.
const fileMagic = "TIXDB1\n"

// fileMagicV2 marks snapshots whose index section stores encoded
// posting blocks verbatim.
const fileMagicV2 = "TIXDB2\n"

// sumMagic introduces the integrity trailer.
const sumMagic = "TIXSUM1\n"

// ErrCorruptSnapshot marks database-file integrity failures: a truncated
// trailer, a checksum mismatch, trailing garbage, or an invalid encoded
// posting block. Test with errors.Is.
var ErrCorruptSnapshot = errors.New("db: corrupt database file")

// Save writes the database — documents, options and the inverted index —
// to w in the v2 format (encoded posting blocks verbatim), followed by
// the CRC32 integrity trailer.
func (d *DB) Save(w io.Writer) error {
	return d.save(w, fileMagicV2, writeIndexV2)
}

// SaveV1 writes the database in the v1 format (raw uvarint postings), for
// readers that predate the block-compressed index section.
func (d *DB) SaveV1(w io.Writer) error {
	return d.save(w, fileMagic, writeIndexV1)
}

// persistViewLocked resolves the mutable live layer into a persistable
// (documents, flat index) pair. Caller holds d.mu, so the view is a
// consistent point-in-time cut: no mutation can land mid-save.
//
//   - Never indexed: just the documents, no index section.
//   - Mutated without deletes: fold memtables and segments into one flat
//     segment (document ids are already dense), then save its blocks
//     verbatim.
//   - With deletes: reload renumbers documents densely, so the sparse
//     surviving ids cannot be written as-is. Rebuild a fresh store holding
//     only visible documents (re-densifying ids in original order) and
//     index it from scratch.
func (d *DB) persistViewLocked() ([]*storage.Document, *index.Index, error) {
	if d.live == nil {
		return d.store.Docs(), nil, nil
	}
	if d.live.DeadCount() == 0 {
		d.live.Compact()
		return d.store.Docs(), d.live.Snapshot(), nil
	}
	fresh := storage.NewStore()
	for _, doc := range d.store.Docs() {
		if d.live.IsDead(doc.ID) {
			continue
		}
		if _, err := fresh.AddTree(doc.Name, doc.Root); err != nil {
			return nil, nil, fmt.Errorf("db: save: %w", err)
		}
	}
	idx, err := index.BuildChecked(fresh, d.tok)
	if err != nil {
		return nil, nil, fmt.Errorf("db: save: %w", err)
	}
	return fresh.Docs(), idx, nil
}

func (d *DB) save(w io.Writer, magic string, writeIndex func(*bufio.Writer, *index.Index) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	docs, idx, err := d.persistViewLocked()
	if err != nil {
		return err
	}
	h := crc32.NewIEEE()
	// Everything flushed through bw is hashed; the trailer itself is
	// written to w directly afterwards, so it stays outside its own sum.
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	finish := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		var tr [len(sumMagic) + 4]byte
		copy(tr[:], sumMagic)
		binary.LittleEndian.PutUint32(tr[len(sumMagic):], h.Sum32())
		_, err := w.Write(tr[:])
		return err
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	// Options.
	stem := byte(0)
	if d.opts.Stemming {
		stem = 1
	}
	if err := bw.WriteByte(stem); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(d.opts.Stopwords)))
	for _, sw := range d.opts.Stopwords {
		writeString(bw, sw)
	}
	// Documents.
	writeUvarint(bw, uint64(len(docs)))
	for _, doc := range docs {
		writeString(bw, doc.Name)
		writeString(bw, xmltree.XMLString(doc.Root))
	}
	// Index.
	if idx == nil {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
		return finish()
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	if err := writeIndex(bw, idx); err != nil {
		return err
	}
	return finish()
}

// writeIndexV1 emits the raw-posting index section (one uvarint tuple per
// posting, materialized from the block storage).
func writeIndexV1(bw *bufio.Writer, idx *index.Index) error {
	terms := idx.TermsByFreq()
	writeUvarint(bw, uint64(len(terms)))
	for _, term := range terms {
		writeString(bw, term)
		ps := idx.Postings(term)
		writeUvarint(bw, uint64(len(ps)))
		lastDoc := storage.DocID(-1)
		lastPos := uint32(0)
		for _, p := range ps {
			writeUvarint(bw, uint64(p.Doc))
			writeUvarint(bw, uint64(p.Node))
			if p.Doc != lastDoc {
				writeUvarint(bw, uint64(p.Pos))
				lastDoc, lastPos = p.Doc, p.Pos
			} else {
				writeUvarint(bw, uint64(p.Pos-lastPos))
				lastPos = p.Pos
			}
			writeUvarint(bw, uint64(p.Offset))
		}
	}
	return nil
}

// writeIndexV2 emits the block-compressed index section: skip tables as
// uvarints, block payloads verbatim — no re-encode at load.
func writeIndexV2(bw *bufio.Writer, idx *index.Index) error {
	terms := idx.TermsByFreq()
	writeUvarint(bw, uint64(len(terms)))
	for _, term := range terms {
		writeString(bw, term)
		bl := idx.BlockList(term)
		if bl == nil {
			// persistViewLocked always hands over a flat index; a merged
			// list here is an invariant violation, not a user error.
			return fmt.Errorf("db: save: no flat block list for %q", term)
		}
		skips := bl.Skips()
		payload := bl.Payload()
		writeUvarint(bw, uint64(bl.Len()))
		writeUvarint(bw, uint64(len(skips)))
		prevEnd := uint32(0)
		for bi, sk := range skips {
			blockEnd := len(payload)
			if bi+1 < len(skips) {
				blockEnd = int(skips[bi+1].Off)
			}
			writeUvarint(bw, uint64(sk.End-prevEnd))
			writeUvarint(bw, uint64(blockEnd)-uint64(sk.Off))
			writeUvarint(bw, uint64(sk.FirstDoc))
			writeUvarint(bw, uint64(sk.LastDoc-sk.FirstDoc))
			writeUvarint(bw, uint64(sk.LastPos))
			writeUvarint(bw, uint64(sk.MaxFreq))
			prevEnd = sk.End
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// SaveFile writes the database to path.
func (d *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("db: %w", err)
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// byteReader is the reading interface the loader consumes through: bulk
// reads for strings, single-byte reads for uvarints.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// crcReader hashes exactly the bytes its consumer reads. It must wrap the
// buffered reader (not sit underneath it): bufio's readahead would
// otherwise pull trailer bytes into the payload hash.
type crcReader struct {
	r byteReader
	h hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.h.Write([]byte{b})
	}
	return b, err
}

// verifyTrailer checks the integrity trailer after the payload has been
// fully consumed (and hashed) through the crcReader. A clean EOF right at
// the payload boundary is a legacy pre-trailer file and is accepted.
func verifyTrailer(br *bufio.Reader, h hash.Hash32) error {
	tr := make([]byte, len(sumMagic)+4)
	n, err := io.ReadFull(br, tr)
	switch {
	case errors.Is(err, io.EOF):
		return nil // legacy file without a trailer
	case err != nil:
		return fmt.Errorf("db: load: truncated integrity trailer (%d of %d bytes): %w", n, len(tr), ErrCorruptSnapshot)
	}
	if string(tr[:len(sumMagic)]) != sumMagic {
		return fmt.Errorf("db: load: unexpected data after payload (missing %q trailer): %w", sumMagic, ErrCorruptSnapshot)
	}
	want := binary.LittleEndian.Uint32(tr[len(sumMagic):])
	if got := h.Sum32(); got != want {
		return fmt.Errorf("db: load: checksum mismatch (file %08x, payload %08x): %w", want, got, ErrCorruptSnapshot)
	}
	if _, err := br.ReadByte(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("db: load: data after integrity trailer: %w", ErrCorruptSnapshot)
	}
	return nil
}

// Load reads a database written by Save or SaveV1, dispatching on the
// magic and verifying the integrity trailer when present.
func Load(r io.Reader) (*DB, error) {
	raw := bufio.NewReader(r)
	br := &crcReader{r: raw, h: crc32.NewIEEE()}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	var loadIndex func(*DB, *crcReader) error
	switch string(magic) {
	case fileMagic:
		loadIndex = loadIndexV1
	case fileMagicV2:
		loadIndex = loadIndexV2
	default:
		return nil, fmt.Errorf("db: load: bad magic %q", magic)
	}
	stem, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	nStop, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	opts := Options{Stemming: stem == 1}
	for i := uint64(0); i < nStop; i++ {
		sw, err := readString(br)
		if err != nil {
			return nil, err
		}
		opts.Stopwords = append(opts.Stopwords, sw)
	}
	d := New(opts)

	nDocs, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nDocs; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		xmlSrc, err := readString(br)
		if err != nil {
			return nil, err
		}
		if err := d.LoadString(name, xmlSrc); err != nil {
			return nil, err
		}
	}

	hasIndex, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	if hasIndex != 0 {
		if err := loadIndex(d, br); err != nil {
			return nil, err
		}
	}
	if err := verifyTrailer(raw, br.h); err != nil {
		return nil, err
	}
	return d, nil
}

// loadIndexV1 reads the raw-posting index section and block-encodes it
// via index.Restore.
func loadIndexV1(d *DB, br *crcReader) error {
	nTerms, err := readUvarint(br)
	if err != nil {
		return err
	}
	raw := make(map[string][]index.Posting, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		term, err := readString(br)
		if err != nil {
			return err
		}
		nPost, err := readUvarint(br)
		if err != nil {
			return err
		}
		const sanity = 1 << 31
		if nPost > sanity {
			return fmt.Errorf("db: load: implausible posting count %d for %q", nPost, term)
		}
		// Cap the preallocation: a lying count on a corrupted file would
		// otherwise attempt a multi-GiB make before any read fails.
		ps := make([]index.Posting, 0, min(nPost, 1<<16))
		lastDoc := storage.DocID(-1)
		lastPos := uint32(0)
		for j := uint64(0); j < nPost; j++ {
			docV, err := readUvarint(br)
			if err != nil {
				return err
			}
			nodeV, err := readUvarint(br)
			if err != nil {
				return err
			}
			posV, err := readUvarint(br)
			if err != nil {
				return err
			}
			offV, err := readUvarint(br)
			if err != nil {
				return err
			}
			doc := storage.DocID(docV)
			var pos uint32
			if doc != lastDoc {
				pos = uint32(posV)
			} else {
				pos = lastPos + uint32(posV)
			}
			lastDoc, lastPos = doc, pos
			ps = append(ps, index.Posting{
				Doc:    doc,
				Node:   int32(nodeV),
				Pos:    pos,
				Offset: uint32(offV),
			})
		}
		raw[term] = ps
	}
	idx, err := index.Restore(d.store, d.tok, raw)
	if err != nil {
		return fmt.Errorf("db: load: %w", err)
	}
	d.adoptIndex(idx)
	return nil
}

// loadIndexV2 reads the block-compressed index section: skip tables are
// reconstructed from their uvarint deltas and the payload bytes adopted
// verbatim; postings.NewBlockList fully validates every block, so a
// malformed section is rejected here rather than during query decode.
func loadIndexV2(d *DB, br *crcReader) error {
	nTerms, err := readUvarint(br)
	if err != nil {
		return err
	}
	lists := make(map[string]*postings.BlockList, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		term, err := readString(br)
		if err != nil {
			return err
		}
		nPost, err := readUvarint(br)
		if err != nil {
			return err
		}
		const sanity = 1 << 31
		if nPost > sanity {
			return fmt.Errorf("db: load: implausible posting count %d for %q", nPost, term)
		}
		nBlocks, err := readUvarint(br)
		if err != nil {
			return err
		}
		if nBlocks > nPost {
			return fmt.Errorf("db: load: %d blocks for %d postings of %q: %w", nBlocks, nPost, term, ErrCorruptSnapshot)
		}
		skips := make([]postings.Skip, 0, min(nBlocks, 1<<16))
		var off, end uint64
		for b := uint64(0); b < nBlocks; b++ {
			var v [6]uint64
			for k := range v {
				if v[k], err = readUvarint(br); err != nil {
					return err
				}
			}
			cnt, byteLen, firstDoc, docSpan, lastPos, maxFreq := v[0], v[1], v[2], v[3], v[4], v[5]
			if cnt < 1 || cnt > postings.BlockSize {
				return fmt.Errorf("db: load: block %d of %q holds %d postings: %w", b, term, cnt, ErrCorruptSnapshot)
			}
			end += cnt
			if end > nPost {
				return fmt.Errorf("db: load: blocks of %q cover more than %d postings: %w", term, nPost, ErrCorruptSnapshot)
			}
			if byteLen == 0 || off+byteLen > math.MaxUint32 {
				return fmt.Errorf("db: load: implausible block payload length %d for %q: %w", byteLen, term, ErrCorruptSnapshot)
			}
			if firstDoc+docSpan >= math.MaxInt32 {
				return fmt.Errorf("db: load: implausible document range for %q: %w", term, ErrCorruptSnapshot)
			}
			if lastPos > math.MaxUint32 || maxFreq > cnt {
				return fmt.Errorf("db: load: implausible skip entry for %q: %w", term, ErrCorruptSnapshot)
			}
			skips = append(skips, postings.Skip{
				FirstDoc: storage.DocID(firstDoc),
				LastDoc:  storage.DocID(firstDoc + docSpan),
				LastPos:  uint32(lastPos),
				MaxFreq:  uint32(maxFreq),
				Off:      uint32(off),
				End:      uint32(end),
			})
			off += byteLen
		}
		if end != nPost {
			return fmt.Errorf("db: load: blocks of %q cover %d of %d postings: %w", term, end, nPost, ErrCorruptSnapshot)
		}
		payload, err := readBytes(br, off)
		if err != nil {
			return err
		}
		bl, err := postings.NewBlockList(int(nPost), skips, payload)
		if err != nil {
			return fmt.Errorf("db: load: postings for %q: %w: %w", term, ErrCorruptSnapshot, err)
		}
		lists[term] = bl
	}
	d.adoptIndex(index.RestoreBlocks(d.store, d.tok, lists))
	return nil
}

// LoadDBFile reads a database file written by SaveFile.
func LoadDBFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("db: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readUvarint(r io.ByteReader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("db: load: %w", err)
	}
	return v, nil
}

// readBytes reads exactly n bytes in bounded chunks: a lying length on a
// corrupted file must not force a giant up-front allocation before the
// short read surfaces.
func readBytes(r byteReader, n uint64) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for remaining := n; remaining > 0; {
		k := min(remaining, chunk)
		start := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, fmt.Errorf("db: load: %w", err)
		}
		remaining -= k
	}
	return buf, nil
}

func readString(r byteReader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 30
	if n > maxString {
		return "", fmt.Errorf("db: load: implausible string length %d", n)
	}
	buf, err := readBytes(r, n)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

package db

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := newFixtureDB(t)
	d.Index() // force index construction so it is persisted

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Same statistics.
	if got, want := d2.Stats(), d.Stats(); got != want {
		t.Errorf("stats after reload = %+v, want %+v", got, want)
	}
	// Same postings for a sample of terms.
	for _, term := range []string{"search", "engine", "internet", "doe"} {
		if !reflect.DeepEqual(d2.Index().Postings(term), d.Index().Postings(term)) {
			t.Errorf("postings for %q differ after reload", term)
		}
	}
	// The reloaded database answers the paper's Query 2 identically.
	q := `
		For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Pick $a using PickFoo($a)
		Sortby(score)
		Threshold $a/@score > 4 stop after 5`
	r1, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) || len(r1) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Ord != r2[i].Ord || r1[i].Score != r2[i].Score {
			t.Errorf("result %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestSaveLoadWithoutIndex(t *testing.T) {
	d := New(Options{})
	if err := d.LoadString("a.xml", `<a>hello world</a>`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Index rebuilds lazily and matches.
	if d2.Index().TermFreq("hello") != 1 {
		t.Errorf("lazily rebuilt index wrong")
	}
}

func TestSaveLoadPreservesOptions(t *testing.T) {
	d := New(Options{Stopwords: []string{"the", "and"}})
	if err := d.LoadString("a.xml", `<a>the cat and hat</a>`); err != nil {
		t.Fatal(err)
	}
	d.Index()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Index().TermFreq("the") != 0 || d2.Index().TermFreq("cat") != 1 {
		t.Errorf("stopword option lost on reload")
	}
	// Stemming flag round-trips.
	ds := New(Options{Stemming: true})
	if err := ds.LoadString("a.xml", `<a>engines</a>`); err != nil {
		t.Fatal(err)
	}
	ds.Index()
	buf.Reset()
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Index().TermFreq("engine") != 1 {
		t.Errorf("stemming option lost on reload")
	}
}

func TestSaveFileLoadDBFile(t *testing.T) {
	d := newFixtureDB(t)
	d.Index()
	path := filepath.Join(t.TempDir(), "db.tix")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDBFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Stats() != d.Stats() {
		t.Errorf("file round trip stats differ")
	}
	if _, err := LoadDBFile(filepath.Join(t.TempDir(), "missing.tix")); err == nil {
		t.Errorf("missing file should error")
	}
}

func TestLoadCorruption(t *testing.T) {
	d := newFixtureDB(t)
	d.Index()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	if _, err := Load(strings.NewReader("NOTADB!\n")); err == nil {
		t.Errorf("bad magic accepted")
	}
	// Empty input.
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Errorf("empty input accepted")
	}
	// Truncations at various points must error, never panic.
	for _, cut := range []int{8, 20, len(full) / 4, len(full) / 2, len(full) - 3} {
		if cut >= len(full) {
			continue
		}
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Flipping a byte in the XML payload region either errors or yields a
	// database that still answers stats (no panic, no corruption crash).
	mut := append([]byte(nil), full...)
	mut[len(fileMagic)+30] ^= 0xFF
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("corrupted load panicked: %v", r)
			}
		}()
		_, _ = Load(bytes.NewReader(mut))
	}()
}

package db

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/postings"
	"repro/internal/synth"
)

// The v2 snapshot persists the block-compressed postings verbatim; v1
// stays readable (and writable via SaveV1) for old files. These tests pin
// the two-way compatibility and the v2-specific corruption defenses.

func TestSaveWritesV2Magic(t *testing.T) {
	data := savedFixture(t)
	if !bytes.HasPrefix(data, []byte(fileMagicV2)) {
		t.Fatalf("Save wrote magic %q, want %q", data[:len(fileMagicV2)], fileMagicV2)
	}
}

func TestSaveV1LoadCompat(t *testing.T) {
	d := newFixtureDB(t)
	d.Index()
	var buf bytes.Buffer
	if err := d.SaveV1(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(fileMagic)) {
		t.Fatalf("SaveV1 wrote magic %q, want %q", buf.Bytes()[:len(fileMagic)], fileMagic)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load of v1 snapshot: %v", err)
	}
	if got, want := d2.Stats(), d.Stats(); got != want {
		t.Errorf("v1 reload stats = %+v, want %+v", got, want)
	}
	for _, term := range []string{"search", "engine", "internet", "doe"} {
		if !reflect.DeepEqual(d2.Index().Postings(term), d.Index().Postings(term)) {
			t.Errorf("postings for %q differ after v1 reload", term)
		}
	}
}

// synthDB builds a database over a mid-sized synthetic corpus — long
// enough posting lists that block compression actually pays, unlike the
// tiny two-document fixture.
func synthDB(t *testing.T) *DB {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Articles = 30
	cfg.Seed = 61
	cfg.ControlTerms = map[string]int{"needle": 900, "haystack": 400}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(Options{})
	if err := d.LoadTree("corpus.xml", corpus.Root); err != nil {
		t.Fatal(err)
	}
	d.Index()
	return d
}

func TestV1AndV2SnapshotsLoadIdentically(t *testing.T) {
	d := synthDB(t)
	var v1, v2 bytes.Buffer
	if err := d.SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(&v2); err != nil {
		t.Fatal(err)
	}
	d1, err := Load(&v1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := d1.Index().TermsByFreq(), d2.Index().TermsByFreq()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("vocabularies differ between v1 and v2 loads")
	}
	for _, term := range t1 {
		if !reflect.DeepEqual(d1.Index().Postings(term), d2.Index().Postings(term)) {
			t.Errorf("postings for %q differ between v1 and v2 loads", term)
		}
	}
}

func TestV2ReloadKeepsCompression(t *testing.T) {
	d := synthDB(t)
	want := d.Index().MemStats()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := d2.Index().MemStats()
	if got != want {
		t.Errorf("reloaded MemStats = %+v, want %+v", got, want)
	}
	// The acceptance bar: block compression at least halves the postings
	// memory against the raw 16-byte representation.
	if got.Ratio < 2 {
		t.Errorf("reloaded compression ratio %.2f, want >= 2", got.Ratio)
	}
}

// TestV2TrailerlessCorruption strips the integrity trailer (the legacy
// acceptance) and then damages the postings section near the end of the
// payload: without a checksum to catch it, the per-block validation in
// NewBlockList is the defense, so every flip must either error (never
// panic) or produce a database that passed validation cleanly.
func TestV2TrailerlessCorruption(t *testing.T) {
	data := savedFixture(t)
	legacy := data[:len(data)-trailerLen]
	if _, err := Load(bytes.NewReader(legacy)); err != nil {
		t.Fatalf("trailerless v2 snapshot rejected: %v", err)
	}
	rejected := 0
	// The index section sits at the tail of the payload; walk flips across
	// it.
	start := len(legacy) * 3 / 4
	for at := start; at < len(legacy); at += 7 {
		mut := bytes.Clone(legacy)
		mut[at] ^= 0xFF
		db, err := Load(bytes.NewReader(mut))
		if err == nil {
			if db == nil {
				t.Fatalf("flip at %d: no database and no error", at)
			}
			continue
		}
		rejected++
	}
	if rejected == 0 {
		t.Error("no tail-section flip was rejected; block validation appears inert")
	}
}

// TestV2TrailerlessTruncation: cutting a trailerless v2 file inside the
// index section must fail block validation (there is no trailer left to
// catch it).
func TestV2TrailerlessTruncation(t *testing.T) {
	data := savedFixture(t)
	legacy := data[:len(data)-trailerLen]
	for _, cut := range []int{len(legacy) - 2, len(legacy) - 9, len(legacy) * 9 / 10} {
		_, err := Load(bytes.NewReader(legacy[:cut]))
		if err == nil {
			t.Errorf("trailerless truncation at %d of %d accepted", cut, len(legacy))
		}
	}
}

// TestV2CorruptSkipMetadata mangles bytes across the index tail — term
// headers, per-block metadata varints, block payloads — of a trailerless
// snapshot. Rejections must be typed: either the loader's structural
// checks (ErrCorruptSnapshot) or the block validator (postings.ErrCorrupt,
// wrapped in ErrCorruptSnapshot), and the block validator must fire for at
// least one mutation.
func TestV2CorruptSkipMetadata(t *testing.T) {
	data := savedFixture(t)
	legacy := data[:len(data)-trailerLen]
	sawBlockErr := false
	for at := len(legacy) / 2; at < len(legacy); at++ {
		mut := bytes.Clone(legacy)
		mut[at] = 0xFF // force a multi-byte/overflowing varint mid-structure
		_, err := Load(bytes.NewReader(mut))
		if err != nil && errors.Is(err, postings.ErrCorrupt) {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("flip at %d: block error %v not wrapped in ErrCorruptSnapshot", at, err)
			}
			sawBlockErr = true
		}
	}
	if !sawBlockErr {
		t.Error("no corruption surfaced through postings.ErrCorrupt block validation")
	}
}

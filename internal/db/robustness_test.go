package db

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/fixture"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// newMeteredFixtureDB loads the paper's Figure 1 database with an isolated
// metrics registry so tests can assert on exact counter values.
func newMeteredFixtureDB(t *testing.T) (*DB, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	d := New(Options{Stemming: true, Metrics: reg})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		t.Fatal(err)
	}
	return d, reg
}

func counter(reg *metrics.Registry, name, op string) int64 {
	return reg.Counter(name + `{op="` + op + `"}`).Value()
}

func TestQueryContextCanceled(t *testing.T) {
	d, reg := newMeteredFixtureDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.QueryContext(ctx, `For $a := document("articles.xml")//section Sortby(score)`)
	if !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := counter(reg, "tix_query_canceled_total", "query"); got != 1 {
		t.Errorf("tix_query_canceled_total = %d, want 1", got)
	}
}

func TestQueryLimitedDeadline(t *testing.T) {
	d, reg := newMeteredFixtureDB(t)
	_, err := d.QueryLimited(context.Background(),
		`For $a := document("articles.xml")//section Sortby(score)`,
		exec.Limits{Timeout: time.Nanosecond, CheckEvery: 1})
	if !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if got := counter(reg, "tix_query_timeouts_total", "query"); got != 1 {
		t.Errorf("tix_query_timeouts_total = %d, want 1", got)
	}
}

func TestTermSearchLimits(t *testing.T) {
	d, reg := newMeteredFixtureDB(t)
	// MaxAccesses: the fixture TermJoin walks well over 5 node records.
	_, err := d.TermSearchContext(context.Background(), []string{"search", "engine"},
		TermSearchOptions{Limits: exec.Limits{MaxAccesses: 5, CheckEvery: 1}})
	if !errors.Is(err, exec.ErrLimitExceeded) {
		t.Fatalf("MaxAccesses err = %v, want ErrLimitExceeded", err)
	}
	var le *exec.LimitError
	if !errors.As(err, &le) || le.Resource != "store accesses" {
		t.Fatalf("err = %#v, want *LimitError{store accesses}", err)
	}
	// MaxResults: the same search yields more than one scored element.
	_, err = d.TermSearchContext(context.Background(), []string{"search", "engine"},
		TermSearchOptions{Limits: exec.Limits{MaxResults: 1}})
	if !errors.As(err, &le) || le.Resource != "results" {
		t.Fatalf("MaxResults err = %#v, want *LimitError{results}", err)
	}
	if got := counter(reg, "tix_query_limit_exceeded_total", "terms"); got != 2 {
		t.Errorf("tix_query_limit_exceeded_total = %d, want 2", got)
	}
}

func TestDefaultLimitsApply(t *testing.T) {
	d, _ := newMeteredFixtureDB(t)
	d.SetLimits(exec.Limits{MaxAccesses: 5, CheckEvery: 1})
	_, err := d.TermSearchContext(context.Background(), []string{"search", "engine"}, TermSearchOptions{})
	if !errors.Is(err, exec.ErrLimitExceeded) {
		t.Fatalf("database default limit not applied: err = %v", err)
	}
	// A per-call budget overrides the default.
	res, err := d.TermSearchContext(context.Background(), []string{"search", "engine"},
		TermSearchOptions{Limits: exec.Limits{MaxAccesses: 1 << 40}})
	if err != nil {
		t.Fatalf("per-call override: %v", err)
	}
	if len(res) == 0 {
		t.Error("per-call override returned no results")
	}
}

func TestParallelTermSearchCanceled(t *testing.T) {
	d, _ := newMeteredFixtureDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.TermSearchContext(ctx, []string{"search"}, TermSearchOptions{Parallel: 4})
	if !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestFaultInjectionSurfacesAsErrors is the degradation acceptance test:
// with a fault injector failing every store access, every facade entry
// point returns a classified error instead of crashing the process.
func TestFaultInjectionSurfacesAsErrors(t *testing.T) {
	d, reg := newMeteredFixtureDB(t)
	d.Stats() // build the index before arming faults
	d.Store().SetFaults(&storage.FaultInjector{FailEvery: 1})
	ctx := context.Background()

	if _, err := d.QueryContext(ctx, `For $a := document("articles.xml")//section Sortby(score)`); !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("QueryContext err = %v, want ErrInjectedFault", err)
	}
	if _, _, err := d.QueryRenderedContext(ctx, `For $a := document("articles.xml")//section Sortby(score)`); !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("QueryRenderedContext err = %v, want ErrInjectedFault", err)
	}
	if _, err := d.TermSearchContext(ctx, []string{"search", "engine"}, TermSearchOptions{}); !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("TermSearchContext err = %v, want ErrInjectedFault", err)
	}
	if _, err := d.TermSearchContext(ctx, []string{"search", "engine"}, TermSearchOptions{Parallel: 3}); !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("parallel TermSearchContext err = %v, want ErrInjectedFault", err)
	}
	// PhraseFinder intersects posting lists by word offset without touching
	// the node store, so storage faults cannot reach it — it must keep
	// working (and must not crash).
	if _, err := d.PhraseSearchContext(ctx, []string{"information", "retrieval"}); err != nil {
		t.Errorf("PhraseSearchContext under faults: %v", err)
	}
	if _, err := d.TwigSearchContext(ctx, exec.Twig("article", exec.Twig("sname"))); !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("TwigSearchContext err = %v, want ErrInjectedFault", err)
	}
	// The similarity join evaluates over materialized trees without an
	// accounting accessor; it must simply not crash.
	if _, err := d.SimilarityJoinContext(ctx, SimilarityJoinSpec{
		LeftDoc: "articles.xml", RightDoc: "reviews.xml",
		LeftRoot: "article", RightRoot: "review",
		LeftKey: "article-title", RightKey: "title",
		Primary: fixture.PrimaryPhrases, Secondary: fixture.SecondaryPhrases,
	}); err != nil {
		t.Errorf("SimilarityJoinContext under faults: %v", err)
	}

	if got := counter(reg, "tix_query_faults_total", "query"); got != 2 {
		t.Errorf("tix_query_faults_total{op=query} = %d, want 2", got)
	}
	if got := counter(reg, "tix_query_faults_total", "terms"); got != 2 {
		t.Errorf("tix_query_faults_total{op=terms} = %d, want 2", got)
	}

	// Disarming restores normal service on the same store.
	d.Store().SetFaults(nil)
	if _, err := d.TermSearchContext(ctx, []string{"search"}, TermSearchOptions{}); err != nil {
		t.Errorf("after disarm: %v", err)
	}
}

// TestFaultSeedIsDeterministic: the same configuration fails the same
// access on every run.
func TestFaultSeedIsDeterministic(t *testing.T) {
	failedAt := func(seed int64) int64 {
		d, _ := newMeteredFixtureDB(t)
		d.Stats()
		inj := &storage.FaultInjector{FailEvery: 10, Seed: seed}
		d.Store().SetFaults(inj)
		_, err := d.TermSearchContext(context.Background(), []string{"search", "engine"}, TermSearchOptions{})
		var fe *storage.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("seed %d: err = %v, want *FaultError", seed, err)
		}
		return fe.Access
	}
	if a, b := failedAt(3), failedAt(3); a != b {
		t.Errorf("same seed failed at access %d then %d", a, b)
	}
	if a, b := failedAt(3), failedAt(4); a == b {
		t.Errorf("different seeds failed at the same access %d", a)
	}
}

// TestFaultLatencyInjection: latency-only injection slows queries without
// failing them, so deadline handling can be exercised deterministically.
func TestFaultLatencyInjection(t *testing.T) {
	d, _ := newMeteredFixtureDB(t)
	d.Stats()
	d.Store().SetFaults(&storage.FaultInjector{Latency: 5 * time.Millisecond, LatencyEvery: 1})
	_, err := d.TermSearchContext(context.Background(), []string{"search", "engine"},
		TermSearchOptions{Limits: exec.Limits{Timeout: time.Millisecond, CheckEvery: 1}})
	if !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

package db

import (
	"testing"
	"time"

	"repro/internal/synth"
)

// TestScaleSmoke exercises the full pipeline near paper-like element
// counts: a ~200k-element corpus is generated, indexed, and queried, and
// the end-to-end latency of the TermJoin-backed query must stay in
// interactive territory. Guarded by -short.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke test skipped in -short mode")
	}
	cfg := synth.ScaleToElements(synth.DefaultConfig(), 200000)
	cfg.Seed = 99
	cfg.ControlTerms = map[string]int{"needle": 5000, "haystack": 2500}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(Options{})
	if err := d.LoadTree("corpus.xml", corpus.Root); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Elements < 100000 {
		t.Fatalf("corpus too small: %d elements", st.Elements)
	}

	start := time.Now()
	results, err := d.Query(`
		For $a in document("corpus.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"needle"}, {"haystack"})
		Pick $a using PickFoo($a)
		Sortby(score)
		Threshold $a/@score stop after 20
	`)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("results = %d, want 20", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Errorf("not sorted at %d", i)
		}
	}
	// 7,500 postings over ~200k elements: a pipelined engine must answer
	// well under a second even on slow hardware; a generous bound catches
	// accidental quadratic regressions.
	if elapsed > 5*time.Second {
		t.Errorf("query took %v; pipeline regressed?", elapsed)
	}
	t.Logf("scale smoke: %d elements, query in %v, top score %.1f",
		st.Elements, elapsed, results[0].Score)

	// TopK term search at scale through the early-terminating path.
	results2, err := d.TermSearch([]string{"needle", "haystack"}, TermSearchOptions{TopK: 5, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results2) != 5 {
		t.Errorf("term search results = %d", len(results2))
	}
}

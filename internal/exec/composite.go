package exec

import (
	"sort"

	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
)

// Comp1 is the first composite-of-standard-operators baseline of Sec. 6.1:
// the direct evaluation of the operator expression
//
//	σ_P(C) = ⊔_i γ_i(σ_{P_i}(C))
//
// For each term it performs an index lookup, materializes the full
// ancestor chain of every occurrence (one record per ancestor per
// occurrence — the per-term selection), sorts and groups the
// materialization by node id (γ), then unions the per-term groups and
// scores each node. The per-occurrence ancestor materialization and the
// sort are what make Comp1 degrade as term frequency grows, in contrast
// to TermJoin's push-each-element-once stack discipline.
type Comp1 struct {
	Index *index.Index
	Acc   *storage.Accessor
	Query TermQuery
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked per materialized witness and per emitted group.
	Guard *Guard
}

// witnessRec is one materialized embedding of the per-term selection
// σ_{P_i}: the bound ancestor element and the bound text node, copied out
// of the store as the generic selection operator materializes witness
// trees (Sec. 3.2.1), plus the occurrence. The copies are the point: the
// composite plan pays for materializing one witness per (ancestor,
// occurrence) pair where TermJoin keeps a single stack frame per element.
type witnessRec struct {
	doc  storage.DocID
	ord  int32           // ancestor ordinal (the grouping key)
	anc  storage.NodeRec // materialized ancestor node
	leaf storage.NodeRec // materialized text node
	occ  scoring.Occ
}

// Run executes the baseline and emits the same result set as TermJoin
// (every element containing at least one query-term occurrence, scored),
// in (doc, ord) order.
func (c *Comp1) Run(emit Emit) error {
	if err := c.Query.validate("Comp1"); err != nil {
		return err
	}
	c.Guard.Attach(c.Acc)
	if err := c.Guard.Check(); err != nil {
		return err
	}
	nTerms := len(c.Query.Terms)
	terms := normalizeTerms(c.Index, c.Query.Terms)

	type groupKey struct {
		doc storage.DocID
		ord int32
	}
	type groupVal struct {
		counts []int
		occs   []scoring.Occ
	}
	groups := map[groupKey]*groupVal{}

	for ti := range terms {
		// Per-term "selection": materialize one witness per (ancestor,
		// occurrence) embedding, copying both bound node records.
		var recs []witnessRec
		for cur := c.Query.list(c.Index, terms, ti).Cursor(); cur.Valid(); cur.Advance() {
			p := cur.Cur()
			occ := scoring.Occ{Term: ti, Pos: p.Pos, Node: p.Node}
			leaf := *c.Acc.Node(p.Doc, p.Node)
			for a := leaf.Parent; a != storage.NoNode; {
				if err := c.Guard.Tick(); err != nil {
					return err
				}
				arec := *c.Acc.Node(p.Doc, a)
				recs = append(recs, witnessRec{doc: p.Doc, ord: a, anc: arec, leaf: leaf, occ: occ})
				a = arec.Parent
			}
		}
		// Per-term grouping γ_i: sort by node id, then run-length group.
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].doc != recs[j].doc {
				return recs[i].doc < recs[j].doc
			}
			if recs[i].ord != recs[j].ord {
				return recs[i].ord < recs[j].ord
			}
			return recs[i].occ.Pos < recs[j].occ.Pos
		})
		for i := 0; i < len(recs); {
			j := i
			k := groupKey{recs[i].doc, recs[i].ord}
			g := groups[k]
			if g == nil {
				g = &groupVal{counts: make([]int, nTerms)}
				groups[k] = g
			}
			for j < len(recs) && recs[j].doc == k.doc && recs[j].ord == k.ord {
				g.counts[ti]++
				if c.Query.Complex {
					g.occs = append(g.occs, recs[j].occ)
				}
				j++
			}
			i = j
		}
	}

	// Union and score, in document order.
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].doc != keys[j].doc {
			return keys[i].doc < keys[j].doc
		}
		return keys[i].ord < keys[j].ord
	})
	for _, k := range keys {
		g := groups[k]
		var score float64
		if c.Query.Complex {
			nz := countScoredChildren(c.Acc, k.doc, k.ord, g.occs)
			total := int(c.Acc.ChildCountNav(k.doc, k.ord))
			sort.Slice(g.occs, func(i, j int) bool { return g.occs[i].Pos < g.occs[j].Pos })
			score = c.Query.Scorer.Complex(g.counts, g.occs, nz, total)
		} else {
			score = c.Query.Scorer.Simple(g.counts)
		}
		if err := c.Guard.NoteEmit(); err != nil {
			return err
		}
		emit(ScoredNode{Doc: k.doc, Ord: k.ord, Score: score})
	}
	return nil
}

// countScoredChildren determines how many direct children of (doc, ord)
// contain at least one of the occurrences — the non-zero-scored-children
// statistic of the complex scoring function. Each occurrence requires a
// containment probe against the child list (baselines lack the stack's
// free child bookkeeping).
func countScoredChildren(acc *storage.Accessor, doc storage.DocID, ord int32, occs []scoring.Occ) int {
	rec := acc.Node(doc, ord)
	n := 0
	child := rec.FirstChild
	//tixlint:ignore guardcheck bounded by one parent's direct-child fan-out; every access still charges the caller-attached budget, and the caller checks at its next NoteEmit
	for child != storage.NoNode {
		crec := acc.Node(doc, child)
		for _, o := range occs {
			if o.Pos >= crec.Start && o.Pos <= crec.End {
				n++
				break
			}
		}
		child = crec.NextSibling
	}
	return n
}

// Comp2 is the second composite baseline ("pushing structural joins
// further down in the evaluation plan", Sec. 6.1): for each query term it
// runs a stack-based structural join between the full element extent of
// every document and the term's posting positions, producing per-element
// counts; the per-term grouped outputs are then merge-unioned and scored.
// Scanning the entire element extent once per term is what gives Comp2 its
// large, term-frequency-insensitive cost, exactly as in Table 1 (280–850 s
// nearly flat across frequencies).
type Comp2 struct {
	Index *index.Index
	Acc   *storage.Accessor
	Query TermQuery
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked per element scanned by the per-term structural
	// joins and per emitted group.
	Guard *Guard
}

// Run executes the baseline; output matches TermJoin's result set, in
// (doc, ord) order.
func (c *Comp2) Run(emit Emit) error {
	if err := c.Query.validate("Comp2"); err != nil {
		return err
	}
	c.Guard.Attach(c.Acc)
	if err := c.Guard.Check(); err != nil {
		return err
	}
	nTerms := len(c.Query.Terms)
	terms := normalizeTerms(c.Index, c.Query.Terms)
	lists := make([]index.List, nTerms)
	for i := range terms {
		lists[i] = c.Query.list(c.Index, terms, i)
	}

	for _, doc := range c.Index.Store().Docs() {
		elements := doc.Elements()
		// Per-term structural join against the full element extent.
		perTerm := make([][]OrdCount, nTerms)
		occsByOrd := map[int32][]scoring.Occ{}
		for ti := range terms {
			var positions []uint32
			for cur := lists[ti].Range(doc.ID, doc.ID+1).Cursor(); cur.Valid(); cur.Advance() {
				p := cur.Cur()
				positions = append(positions, p.Pos)
				if c.Query.Complex {
					// The composite plan tags occurrences onto every
					// containing element later via the join output; keep
					// them here for scoring.
					occsByOrd[p.Node] = append(occsByOrd[p.Node], scoring.Occ{Term: ti, Pos: p.Pos, Node: p.Node})
				}
			}
			joined, err := StructuralJoinCountGuarded(c.Acc, doc.ID, elements, positions, c.Guard)
			if err != nil {
				return err
			}
			perTerm[ti] = joined
		}
		// Merge-union the per-term grouped outputs (all in document order).
		idxs := make([]int, nTerms)
		for {
			bestOrd := int32(-1)
			for ti := range perTerm {
				if idxs[ti] < len(perTerm[ti]) {
					o := perTerm[ti][idxs[ti]].Ord
					if bestOrd < 0 || o < bestOrd {
						bestOrd = o
					}
				}
			}
			if bestOrd < 0 {
				break
			}
			counts := make([]int, nTerms)
			for ti := range perTerm {
				if idxs[ti] < len(perTerm[ti]) && perTerm[ti][idxs[ti]].Ord == bestOrd {
					counts[ti] = perTerm[ti][idxs[ti]].Count
					idxs[ti]++
				}
			}
			var score float64
			if c.Query.Complex {
				occs := collectSubtreeOccs(c.Acc, doc, bestOrd, occsByOrd)
				nz := countScoredChildren(c.Acc, doc.ID, bestOrd, occs)
				total := int(c.Acc.ChildCountNav(doc.ID, bestOrd))
				score = c.Query.Scorer.Complex(counts, occs, nz, total)
			} else {
				score = c.Query.Scorer.Simple(counts)
			}
			if err := c.Guard.NoteEmit(); err != nil {
				return err
			}
			emit(ScoredNode{Doc: doc.ID, Ord: bestOrd, Score: score})
		}
	}
	return nil
}

// collectSubtreeOccs gathers the occurrences inside the subtree of ord, in
// position order.
func collectSubtreeOccs(acc *storage.Accessor, doc *storage.Document, ord int32, occsByOrd map[int32][]scoring.Occ) []scoring.Occ {
	end := doc.SubtreeEnd(ord)
	var out []scoring.Occ
	for i := ord; i < end; i++ {
		if occs, ok := occsByOrd[i]; ok {
			out = append(out, occs...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/scoring"
)

// The block-compressed index must be observationally identical to the old
// uncompressed one: every access method, fed the same postings once as
// block-backed lists (the index default) and once as raw materialized
// slices, must produce byte-identical ranked results. The raw slice path
// bypasses all of the codec, skip-table and lazy-decode machinery, so it
// is the oracle the compressed representation is measured against.

// rawQuery returns q with the index lookup replaced by materialized raw
// posting slices for each term.
func rawQuery(idx *index.Index, q TermQuery) TermQuery {
	raw := make([][]index.Posting, len(q.Terms))
	for i, term := range q.Terms {
		raw[i] = idx.Postings(idx.Tokenizer().Normalize(term))
	}
	q.PostingLists = raw
	return q
}

func TestCompressedListsMatchRawAcrossMethods(t *testing.T) {
	idx := buildMultiDocIndex(t, 5)
	for _, complex := range []bool{false, true} {
		methods := []string{"TermJoin", "EnhTermJoin", "Comp1", "Comp2"}
		if !complex {
			methods = append(methods, "GenMeet")
		}
		for _, terms := range [][]string{
			{"ctla"},
			{"ctla", "ctlb"},
		} {
			q := TermQuery{Terms: terms, Complex: complex, Scorer: DefaultScorer{}}
			for _, m := range methods {
				compressed := runMethod(t, idx, m, q)
				raw := runMethod(t, idx, m, rawQuery(idx, q))
				if len(compressed) == 0 {
					t.Fatalf("complex=%v terms %v %s: no results", complex, terms, m)
				}
				diffScored(t, fmt.Sprintf("complex=%v terms %v %s compressed vs raw", complex, terms, m),
					compressed, raw)
			}
		}
	}
}

func TestCompressedListsMatchRawSingleDoc(t *testing.T) {
	// The single-document corpus exercises dense position-space seeks
	// (every posting in one doc run) rather than cross-document skips.
	idx := buildSynthIndex(t, map[string]int{"ctla": 45, "ctlb": 25, "ctlc": 10}, 51)
	q := TermQuery{Terms: []string{"ctla", "ctlb", "ctlc"}, Scorer: DefaultScorer{}}
	for _, m := range []string{"TermJoin", "EnhTermJoin", "Comp1", "Comp2", "GenMeet"} {
		compressed := runMethod(t, idx, m, q)
		raw := runMethod(t, idx, m, rawQuery(idx, q))
		if len(compressed) == 0 {
			t.Fatalf("%s: no results", m)
		}
		diffScored(t, m+" compressed vs raw (single doc)", compressed, raw)
	}
}

// TestTopKBlockMaxMatchesUnprunedOracle is the pruning regression test:
// the block-max path with pruning enabled must return exactly — same
// elements, same order, same scores — what the unpruned sweep and the
// full TermJoin produce on the planted-frequency corpus.
func TestTopKBlockMaxMatchesUnprunedOracle(t *testing.T) {
	idx := buildMultiDocIndex(t, 12)
	for _, complex := range []bool{false, true} {
		q := TermQuery{
			Terms:   []string{"ctla", "ctlb"},
			Complex: complex,
			Scorer: DefaultScorer{
				SimpleFn:  scoring.SimpleScorer{Weights: []float64{0.8, 0.6}},
				ComplexFn: scoring.ComplexScorer{Weights: []float64{0.8, 0.6}},
			},
		}
		full, err := RunTermJoin(idx, q, ChildCountNavigate)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 5, 20, 1000} {
			label := fmt.Sprintf("complex=%v k=%d", complex, k)

			pruned := &TopKTermJoin{Index: idx, Query: q, K: k}
			got, err := pruned.Run()
			if err != nil {
				t.Fatal(err)
			}

			oracle := &TopKTermJoin{Index: idx, Query: q, K: k, DisablePruning: true}
			want, err := oracle.Run()
			if err != nil {
				t.Fatal(err)
			}
			diffScored(t, label+" pruned vs unpruned", got, want)
			if oracle.BlocksSkipped != 0 {
				t.Errorf("%s: unpruned oracle skipped %d blocks", label, oracle.BlocksSkipped)
			}

			// The full TermJoin fed through the same heap is a second,
			// codec-independent oracle.
			tk := NewTopK(k)
			for _, n := range full {
				tk.Offer(n)
			}
			diffScored(t, label+" pruned vs full TermJoin", got, tk.Results())

			// The raw-slice exhaustive path must agree too.
			ex := &TopKTermJoin{Index: idx, Query: rawQuery(idx, q), K: k}
			exGot, err := ex.Run()
			if err != nil {
				t.Fatal(err)
			}
			diffScored(t, label+" block-max vs raw exhaustive", got, exGot)
			if ex.BlocksSkipped != 0 {
				t.Errorf("%s: raw path reported %d skipped blocks", label, ex.BlocksSkipped)
			}
		}
	}
}

// TestTopKBlockMaxSkipsBlocks pins the pruning payoff: with k=1 over a
// corpus where every document attains the same bound, the sweep must pass
// over later blocks without decoding them.
func TestTopKBlockMaxSkipsBlocks(t *testing.T) {
	idx := buildMultiDocIndex(t, 12)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Scorer: DefaultScorer{}}
	tkj := &TopKTermJoin{Index: idx, Query: q, K: 1}
	if _, err := tkj.Run(); err != nil {
		t.Fatal(err)
	}
	if tkj.BlocksSkipped == 0 {
		t.Error("block-max sweep decoded every block at k=1")
	}
	if tkj.DocsEvaluated >= 12 {
		t.Errorf("DocsEvaluated = %d, want early termination below 12", tkj.DocsEvaluated)
	}
}

func TestGuardTickN(t *testing.T) {
	// TickN(n) must observe the same cancellation cadence as n Ticks: the
	// full check runs exactly when the batch crosses a CheckEvery boundary.
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGuard(ctx, Limits{CheckEvery: 10})
	if err := g.TickN(5); err != nil {
		t.Fatalf("TickN(5): %v", err)
	}
	cancel()
	// t: 5 -> 9, same interval: only a latched failure would surface, and
	// nothing is latched yet.
	if err := g.TickN(4); err != nil {
		t.Fatalf("TickN(4) within the interval after cancel: %v", err)
	}
	// t: 9 -> 10 crosses the boundary: the full check sees the cancel.
	if err := g.TickN(1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("TickN(1) across the boundary = %v, want ErrCanceled", err)
	}
	// Once latched, every TickN reports the failure regardless of cadence.
	if err := g.TickN(1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("TickN after latch = %v, want ErrCanceled", err)
	}

	// A single batch spanning several intervals still checks.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	g2 := NewGuard(ctx2, Limits{CheckEvery: 10})
	if err := g2.TickN(25); !errors.Is(err, ErrCanceled) {
		t.Fatalf("TickN(25) over a canceled context = %v, want ErrCanceled", err)
	}

	var nilG *Guard
	if err := nilG.TickN(1000); err != nil {
		t.Fatalf("TickN on nil guard: %v", err)
	}
	if err := g.TickN(0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("TickN(0) after latch = %v, want latched error", err)
	}
}

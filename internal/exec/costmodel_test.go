package exec

import (
	"testing"

	"repro/internal/storage"
)

// These tests pin the store-traffic asymmetries that produce the paper's
// table shapes, independent of wall-clock noise: Comp2's cost is dominated
// by the element-extent scan (flat in term frequency), Comp1's ancestor
// materialization scales with occurrences × depth, and TermJoin touches
// each participating element a constant number of times.

func TestComp2TrafficIsFlatInFrequency(t *testing.T) {
	lo := buildSynthIndex(t, map[string]int{"ctla": 20, "ctlb": 20}, 31)
	hi := buildSynthIndex(t, map[string]int{"ctla": 400, "ctlb": 400}, 31)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Scorer: DefaultScorer{}}

	c2lo := &Comp2{Index: lo, Acc: storage.NewAccessor(lo.Store()), Query: q}
	if _, err := Collect(c2lo.Run); err != nil {
		t.Fatal(err)
	}
	c2hi := &Comp2{Index: hi, Acc: storage.NewAccessor(hi.Store()), Query: q}
	if _, err := Collect(c2hi.Run); err != nil {
		t.Fatal(err)
	}
	// Same corpus size, 20× the term frequency: Comp2's reads are
	// dominated by the extent scan and must grow far less than 20×.
	ratio := float64(c2hi.Acc.Stats.NodeReads) / float64(c2lo.Acc.Stats.NodeReads)
	if ratio > 3 {
		t.Errorf("Comp2 reads grew %.1f× for 20× frequency; expected near-flat", ratio)
	}
	// And the extent scan floor: at least one read per element per term.
	elements := int64(len(lo.Store().Docs()[0].Elements()))
	if c2lo.Acc.Stats.NodeReads < 2*elements {
		t.Errorf("Comp2 reads %d < 2×elements %d; extent scan missing?", c2lo.Acc.Stats.NodeReads, 2*elements)
	}
}

func TestComp1TrafficScalesWithFrequency(t *testing.T) {
	lo := buildSynthIndex(t, map[string]int{"ctla": 20, "ctlb": 20}, 32)
	hi := buildSynthIndex(t, map[string]int{"ctla": 400, "ctlb": 400}, 32)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Scorer: DefaultScorer{}}

	c1lo := &Comp1{Index: lo, Acc: storage.NewAccessor(lo.Store()), Query: q}
	if _, err := Collect(c1lo.Run); err != nil {
		t.Fatal(err)
	}
	c1hi := &Comp1{Index: hi, Acc: storage.NewAccessor(hi.Store()), Query: q}
	if _, err := Collect(c1hi.Run); err != nil {
		t.Fatal(err)
	}
	ratio := float64(c1hi.Acc.Stats.NodeReads) / float64(c1lo.Acc.Stats.NodeReads)
	// 20× the occurrences: the per-occurrence ancestor materialization
	// must grow close to proportionally (ancestor sharing causes some
	// sublinearity at the top of the tree).
	if ratio < 5 {
		t.Errorf("Comp1 reads grew only %.1f× for 20× frequency; materialization missing?", ratio)
	}
}

func TestTermJoinTrafficBeatsComp1(t *testing.T) {
	idx := buildSynthIndex(t, map[string]int{"ctla": 400, "ctlb": 400}, 33)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Scorer: DefaultScorer{}}
	tj := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if _, err := Collect(tj.Run); err != nil {
		t.Fatal(err)
	}
	c1 := &Comp1{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if _, err := Collect(c1.Run); err != nil {
		t.Fatal(err)
	}
	c2 := &Comp2{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if _, err := Collect(c2.Run); err != nil {
		t.Fatal(err)
	}
	if tj.Acc.Stats.NodeReads >= c1.Acc.Stats.NodeReads {
		t.Errorf("TermJoin reads %d ≥ Comp1 reads %d", tj.Acc.Stats.NodeReads, c1.Acc.Stats.NodeReads)
	}
	if tj.Acc.Stats.NodeReads >= c2.Acc.Stats.NodeReads {
		t.Errorf("TermJoin reads %d ≥ Comp2 reads %d", tj.Acc.Stats.NodeReads, c2.Acc.Stats.NodeReads)
	}
}

func TestGenMeetTrafficBetweenTermJoinAndComposites(t *testing.T) {
	idx := buildSynthIndex(t, map[string]int{"ctla": 300, "ctlb": 300}, 34)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Complex: true, Scorer: DefaultScorer{}}
	tj := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if _, err := Collect(tj.Run); err != nil {
		t.Fatal(err)
	}
	gm := &GenMeet{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if _, err := Collect(gm.Run); err != nil {
		t.Fatal(err)
	}
	c2 := &Comp2{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if _, err := Collect(c2.Run); err != nil {
		t.Fatal(err)
	}
	if gm.Acc.Stats.NodeReads < tj.Acc.Stats.NodeReads {
		t.Errorf("GenMeet reads %d < TermJoin reads %d; expected TermJoin minimal",
			gm.Acc.Stats.NodeReads, tj.Acc.Stats.NodeReads)
	}
	if gm.Acc.Stats.NodeReads >= c2.Acc.Stats.NodeReads {
		t.Errorf("GenMeet reads %d ≥ Comp2 reads %d; expected between",
			gm.Acc.Stats.NodeReads, c2.Acc.Stats.NodeReads)
	}
}

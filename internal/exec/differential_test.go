package exec

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/storage"
)

// The paper's own cross-algorithm oracle: TermJoin, Comp1, Comp2 and the
// Generalized Meet all compute the set of elements containing the query
// terms; under simple scoring (a sum of per-term occurrence weights, no
// cross-document state) they must agree on the result set element for
// element — (doc, ord) identities and scores alike. Any divergence is a
// bug in one of the operators, with the others as witnesses.

// runMethod executes one access method over idx and returns its results
// in the RankedBefore order.
func runMethod(t *testing.T, idx *index.Index, name string, q TermQuery) []ScoredNode {
	t.Helper()
	acc := storage.NewAccessor(idx.Store())
	var runner interface{ Run(Emit) error }
	switch name {
	case "TermJoin":
		runner = &TermJoin{Index: idx, Acc: acc, Query: q, ChildCounts: ChildCountNavigate}
	case "EnhTermJoin":
		runner = &TermJoin{Index: idx, Acc: acc, Query: q, ChildCounts: ChildCountIndexed}
	case "Comp1":
		runner = &Comp1{Index: idx, Acc: acc, Query: q}
	case "Comp2":
		runner = &Comp2{Index: idx, Acc: acc, Query: q}
	case "GenMeet":
		runner = &GenMeet{Index: idx, Acc: acc, Query: q}
	default:
		t.Fatalf("unknown method %q", name)
	}
	out, err := Collect(runner.Run)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	SortRanked(out)
	return out
}

func TestTermMethodsAgreeUnderSimpleScoring(t *testing.T) {
	methods := []string{"EnhTermJoin", "Comp1", "Comp2", "GenMeet"}
	for _, seed := range []int64{42, 43, 44} {
		idx := buildSynthIndex(t, map[string]int{"ctla": 45, "ctlb": 25, "ctlc": 10}, seed)
		for _, terms := range [][]string{
			{"ctla", "ctlb"},
			{"ctla", "ctlb", "ctlc"},
			{"ctlc"},
		} {
			q := TermQuery{Terms: terms, Scorer: DefaultScorer{}}
			want := runMethod(t, idx, "TermJoin", q)
			if len(want) == 0 {
				t.Fatalf("seed %d terms %v: oracle returned no results", seed, terms)
			}
			for _, m := range methods {
				got := runMethod(t, idx, m, q)
				diffScored(t, fmt.Sprintf("seed %d terms %v %s vs TermJoin", seed, terms, m), got, want)
			}
		}
	}
}

// TestTermMethodsAgreeUnderComplexScoring pins the complex-scoring variant
// for the operators that support it (GenMeet only scores the simple way in
// this reproduction, matching the paper's Table 2 column set).
func TestTermMethodsAgreeUnderComplexScoring(t *testing.T) {
	idx := buildSynthIndex(t, map[string]int{"ctla": 45, "ctlb": 25}, 42)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Complex: true, Scorer: DefaultScorer{}}
	want := runMethod(t, idx, "TermJoin", q)
	if len(want) == 0 {
		t.Fatal("oracle returned no results")
	}
	for _, m := range []string{"EnhTermJoin", "Comp1", "Comp2"} {
		got := runMethod(t, idx, m, q)
		diffScored(t, m+" vs TermJoin (complex)", got, want)
	}
}

// diffScored asserts two ranked result slices are identical: same
// elements, same scores, same order.
func diffScored(t *testing.T, label string, got, want []ScoredNode) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d results, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Doc != w.Doc || g.Ord != w.Ord {
			t.Errorf("%s: result %d = (doc %d, ord %d), want (doc %d, ord %d)",
				label, i, g.Doc, g.Ord, w.Doc, w.Ord)
			return
		}
		if math.Abs(g.Score-w.Score) > 1e-9 {
			t.Errorf("%s: result %d score = %v, want %v", label, i, g.Score, w.Score)
			return
		}
	}
}

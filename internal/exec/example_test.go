package exec_test

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// mustParse panics on malformed XML; examples only ever parse literals.
func mustParse(src string) *xmltree.Node {
	n, err := xmltree.ParseString(src)
	if err != nil {
		panic(err)
	}
	return n
}

func buildExampleIndex() *index.Index {
	s := storage.NewStore()
	doc := `<article>
		<sec><p>stack based join</p><p>term join scores</p></sec>
		<sec><p>unrelated content</p></sec>
	</article>`
	if _, err := s.AddTree("a.xml", mustParse(doc)); err != nil {
		panic(err)
	}
	return index.Build(s, tokenize.New())
}

// ExampleTermJoin scores every element containing query terms in one
// stack-based merge pass (Fig. 11 of the paper).
func ExampleTermJoin() {
	idx := buildExampleIndex()
	tj := &exec.TermJoin{
		Index: idx,
		Acc:   storage.NewAccessor(idx.Store()),
		Query: exec.TermQuery{
			Terms:  []string{"join", "scores"},
			Scorer: exec.DefaultScorer{SimpleFn: scoring.SimpleScorer{Weights: []float64{0.8, 0.6}}},
		},
	}
	results, err := exec.Collect(tj.Run)
	if err != nil {
		panic(err)
	}
	store := idx.Store()
	doc := store.Doc(0)
	for _, n := range results {
		fmt.Printf("<%s> %.1f\n", store.Tags.Name(doc.Nodes[n.Ord].Tag), n.Score)
	}
	// Output:
	// <p> 0.8
	// <p> 1.4
	// <sec> 2.2
	// <article> 2.2
}

// ExamplePhraseFinder verifies phrase adjacency during posting
// intersection using the word offsets kept in the index (Sec. 5.1.2).
func ExamplePhraseFinder() {
	idx := buildExampleIndex()
	pf := &exec.PhraseFinder{Index: idx, Phrase: []string{"term", "join"}}
	ms, err := exec.CollectPhrase(pf.Run)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ms), "phrase occurrence(s)")
	// "based join" is not "term join"; only the second paragraph matches.
	// Output: 1 phrase occurrence(s)
}

// ExampleStackPick eliminates granularity redundancy: a worthy parent
// subsumes its relevant children (Fig. 12).
func ExampleStackPick() {
	// A section whose two paragraphs are both relevant: the section is
	// worth returning and subsumes them.
	nodes := []exec.PickNode{
		{Ord: 0, Start: 0, End: 10, Level: 0, Score: 2.0, HasScore: true},
		{Ord: 1, Start: 1, End: 4, Level: 1, Score: 1.0, HasScore: true},
		{Ord: 2, Start: 5, End: 9, Level: 1, Score: 1.0, HasScore: true},
	}
	picked := exec.StackPick(nodes, exec.DefaultPickFuncs(0.8))
	for _, p := range picked {
		fmt.Printf("ord %d score %.1f\n", p.Ord, p.Score)
	}
	// Output: ord 0 score 2.0
}

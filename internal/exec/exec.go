// Package exec implements the physical access methods of the paper
// (Sec. 5): the score-generating methods TermJoin (Fig. 11, with its
// Enhanced variant) and PhraseFinder; the score-utilizing stack-based Pick
// (Fig. 12) and Threshold/top-k; the stack-based structural join they build
// on; and the baselines the evaluation compares against — Comp1 and Comp2
// (composites of standard operators, Sec. 6.1), Comp3 (Sec. 6.2) and
// Generalized Meet (the adaptation of Schmidt et al.'s meet operator).
//
// All methods read the database through a storage.Accessor, so experiments
// can report store touches alongside wall-clock time. Methods emit results
// through callbacks; Collect adapts a callback run into a slice for
// convenience.
package exec

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
)

// ScoredNode is one scored element produced by a score-generating access
// method: the element (doc, ord) with its relevance score.
type ScoredNode struct {
	Doc   storage.DocID
	Ord   int32
	Score float64
}

// Emit receives scored elements as an access method produces them.
type Emit func(ScoredNode)

// Collect runs f with an emitter that gathers everything into a slice.
func Collect(f func(Emit) error) ([]ScoredNode, error) {
	var out []ScoredNode
	err := f(func(n ScoredNode) { out = append(out, n) })
	return out, err
}

// Scorer computes an element's score from what TermJoin-style methods
// accumulate for it. Exactly one of the two shapes is used per run,
// selected by the Complex flag of the method: simple scorers see only the
// per-term counts; complex scorers additionally see the occurrence buffer
// and child statistics (Sec. 5.1.1, "Complex Scoring Function").
type Scorer interface {
	// Simple computes the simple score from per-term occurrence counts.
	Simple(counts []int) float64
	// Complex computes the complex score from counts, the occurrence
	// buffer, and child statistics.
	Complex(counts []int, occs []scoring.Occ, nonZeroChildren, totalChildren int) float64
}

// DefaultScorer adapts the scoring package's simple and complex scoring
// functions of Sec. 6.1 behind the Scorer interface.
type DefaultScorer struct {
	SimpleFn  scoring.SimpleScorer
	ComplexFn scoring.ComplexScorer
}

// NewDefaultScorer returns a scorer with uniform weights.
func NewDefaultScorer() DefaultScorer { return DefaultScorer{} }

// Simple applies the weighted-sum scoring function.
func (d DefaultScorer) Simple(counts []int) float64 { return d.SimpleFn.Score(counts) }

// Complex applies the proximity/child-ratio scoring function.
func (d DefaultScorer) Complex(counts []int, occs []scoring.Occ, nz, total int) float64 {
	return d.ComplexFn.Score(counts, occs, nz, total)
}

// TermQuery is a score-generation request shared by TermJoin and the
// baselines: the query terms (already normalized by the index's tokenizer)
// and the scoring mode.
type TermQuery struct {
	Terms []string
	// Lists, when non-nil, supplies the posting list for each term as a
	// zero-copy view (raw or block-compressed) instead of an index lookup.
	// Its length must equal len(Terms). Takes precedence over
	// PostingLists.
	Lists []index.List
	// PostingLists, when non-nil, supplies the posting list for each term
	// directly instead of an index lookup — this is how phrase matches
	// from PhraseFinder feed TermJoin as pseudo-terms (Sec. 5.1.2: "counts
	// of phrase occurrences are then used to generate appropriate score
	// values"). Its length must equal len(Terms); entries must be in
	// (doc, pos) order.
	PostingLists [][]index.Posting
	// Complex selects the complex scoring function (the paper's s flag,
	// inverted: Fig. 11 guards the extra bookkeeping with if(!s)).
	Complex bool
	Scorer  Scorer
}

// validate checks the query's structural invariants shared by every
// term-join-style access method.
func (q *TermQuery) validate(method string) error {
	if len(q.Terms) == 0 {
		return fmt.Errorf("exec: %s requires at least one term", method)
	}
	if q.Scorer == nil {
		return fmt.Errorf("exec: %s requires a scorer", method)
	}
	if q.Lists != nil && len(q.Lists) != len(q.Terms) {
		return fmt.Errorf("exec: %s: %d lists for %d terms", method, len(q.Lists), len(q.Terms))
	}
	if q.Lists == nil && q.PostingLists != nil && len(q.PostingLists) != len(q.Terms) {
		return fmt.Errorf("exec: %s: %d posting lists for %d terms", method, len(q.PostingLists), len(q.Terms))
	}
	return nil
}

// list resolves term i of the query to its posting-list view: explicit
// Lists first, then PostingLists (wrapped raw), then the index's
// block-compressed list.
func (q *TermQuery) list(idx *index.Index, normalized []string, i int) index.List {
	if q.Lists != nil {
		return q.Lists[i]
	}
	if q.PostingLists != nil {
		return index.NewRawList(q.PostingLists[i])
	}
	return idx.List(normalized[i])
}

// PhrasePostings converts phrase matches into a posting list usable as a
// pseudo-term in a TermQuery.
func PhrasePostings(ms []PhraseMatch) []index.Posting {
	out := make([]index.Posting, len(ms))
	for i, m := range ms {
		out[i] = index.Posting{Doc: m.Doc, Node: m.Node, Pos: m.Pos}
	}
	return out
}

// normalizeTerms maps the query terms through the index tokenizer so that
// callers may pass raw words.
func normalizeTerms(idx *index.Index, terms []string) []string {
	out := make([]string, len(terms))
	for i, t := range terms {
		out[i] = idx.Tokenizer().Normalize(t)
	}
	return out
}

package exec

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/storage"
)

// Iterator is the pull-based (Open/Next/Close) operator interface of a
// classic pipelined query engine, provided so TIX plans can be composed in
// the volcano style the paper assumes ("a set-oriented, pipelined,
// database-style query evaluation engine", Sec. 5). Score-generating
// access methods are inherently push-based single passes; BlockingSource
// adapts them by draining on Open (they are the paper's blocking
// operators), while scans, filters, limits and merges stream.
type Iterator interface {
	// Open prepares the iterator; it must be called exactly once before
	// Next.
	Open() error
	// Next returns the next element, or ok=false at end of stream.
	Next() (n ScoredNode, ok bool, err error)
	// Close releases resources; safe to call after a failed Open.
	Close() error
}

// Drain runs an iterator to completion and returns its output.
func Drain(it Iterator) ([]ScoredNode, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []ScoredNode
	for {
		n, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, n)
	}
}

// SliceSource streams a fixed slice.
type SliceSource struct {
	Nodes []ScoredNode
	pos   int
}

// Open resets the cursor.
func (s *SliceSource) Open() error { s.pos = 0; return nil }

// Next yields the next element.
func (s *SliceSource) Next() (ScoredNode, bool, error) {
	if s.pos >= len(s.Nodes) {
		return ScoredNode{}, false, nil
	}
	n := s.Nodes[s.pos]
	s.pos++
	return n, true, nil
}

// Close is a no-op.
func (s *SliceSource) Close() error { return nil }

// BlockingSource adapts a push-based access method (TermJoin, Comp1, …) to
// the iterator interface by running it to completion on Open.
type BlockingSource struct {
	Run func(Emit) error
	buf []ScoredNode
	pos int
}

// Open drains the wrapped access method.
func (b *BlockingSource) Open() error {
	if b.Run == nil {
		return fmt.Errorf("exec: BlockingSource without a Run function")
	}
	b.buf = b.buf[:0]
	b.pos = 0
	return b.Run(func(n ScoredNode) { b.buf = append(b.buf, n) })
}

// Next yields the next buffered element.
func (b *BlockingSource) Next() (ScoredNode, bool, error) {
	if b.pos >= len(b.buf) {
		return ScoredNode{}, false, nil
	}
	n := b.buf[b.pos]
	b.pos++
	return n, true, nil
}

// Close releases the buffer.
func (b *BlockingSource) Close() error { b.buf = nil; return nil }

// IndexScan streams one posting list as zero-scored occurrences (Doc/Ord
// of the containing text node; Score carries the within-node offset count
// of 1) — the leaf access path score generation starts from (Sec. 5.1).
type IndexScan struct {
	Index *index.Index
	Term  string
	// Guard, when non-nil, is ticked once per posting, so plans built over
	// long merged lists (live-index snapshots with many layers) observe
	// cancellation and budgets without a blocking operator above them.
	Guard *Guard
	cur   *index.Cursor
}

// Open resolves the term through the index tokenizer.
func (s *IndexScan) Open() error {
	if s.Index == nil {
		return fmt.Errorf("exec: IndexScan without an index")
	}
	s.cur = s.Index.List(s.Index.Tokenizer().Normalize(s.Term)).Cursor()
	return nil
}

// Next yields the next occurrence.
func (s *IndexScan) Next() (ScoredNode, bool, error) {
	if err := s.Guard.Tick(); err != nil {
		return ScoredNode{}, false, err
	}
	if !s.cur.Valid() {
		return ScoredNode{}, false, nil
	}
	p := s.cur.Cur()
	s.cur.Advance()
	return ScoredNode{Doc: p.Doc, Ord: p.Node, Score: 1}, true, nil
}

// Close is a no-op.
func (s *IndexScan) Close() error { return nil }

// ElementScan streams every element of a document in document order with a
// null (zero) score — the extent scan Comp2 pays for.
type ElementScan struct {
	Store *storage.Store
	Doc   storage.DocID
	Tag   string // optional; empty scans all elements
	list  []int32
	pos   int
}

// Open materializes the extent reference (no copying).
func (s *ElementScan) Open() error {
	doc := s.Store.Doc(s.Doc)
	if doc == nil {
		return fmt.Errorf("exec: ElementScan of unknown document %d", s.Doc)
	}
	if s.Tag == "" {
		s.list = doc.Elements()
	} else {
		tid, ok := s.Store.Tags.Lookup(s.Tag)
		if !ok {
			s.list = nil
		} else {
			s.list = doc.TagExtent(tid)
		}
	}
	s.pos = 0
	return nil
}

// Next yields the next element.
func (s *ElementScan) Next() (ScoredNode, bool, error) {
	if s.pos >= len(s.list) {
		return ScoredNode{}, false, nil
	}
	ord := s.list[s.pos]
	s.pos++
	return ScoredNode{Doc: s.Doc, Ord: ord}, true, nil
}

// Close is a no-op.
func (s *ElementScan) Close() error { return nil }

// Filter streams the elements of its input for which Pred returns true
// (the Threshold operator's V condition is Filter with a score predicate).
type Filter struct {
	Input Iterator
	Pred  func(ScoredNode) bool
}

// Open opens the input.
func (f *Filter) Open() error { return f.Input.Open() }

// Next pulls until the predicate accepts.
func (f *Filter) Next() (ScoredNode, bool, error) {
	for {
		n, ok, err := f.Input.Next()
		if err != nil || !ok {
			return n, ok, err
		}
		if f.Pred(n) {
			return n, true, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close() error { return f.Input.Close() }

// Limit passes through at most N elements.
type Limit struct {
	Input Iterator
	N     int
	seen  int
}

// Open opens the input.
func (l *Limit) Open() error { l.seen = 0; return l.Input.Open() }

// Next stops after N elements.
func (l *Limit) Next() (ScoredNode, bool, error) {
	if l.seen >= l.N {
		return ScoredNode{}, false, nil
	}
	n, ok, err := l.Input.Next()
	if ok {
		l.seen++
	}
	return n, ok, err
}

// Close closes the input.
func (l *Limit) Close() error { return l.Input.Close() }

// SortByScore is the blocking sort operator: it drains its input on Open
// and streams it back by descending score (ties by document order).
type SortByScore struct {
	Input Iterator
	buf   []ScoredNode
	pos   int
}

// Open drains and sorts.
func (s *SortByScore) Open() error {
	if err := s.Input.Open(); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	s.pos = 0
	for {
		n, ok, err := s.Input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.buf = append(s.buf, n)
	}
	sort.SliceStable(s.buf, func(i, j int) bool {
		if s.buf[i].Score != s.buf[j].Score {
			return s.buf[i].Score > s.buf[j].Score
		}
		if s.buf[i].Doc != s.buf[j].Doc {
			return s.buf[i].Doc < s.buf[j].Doc
		}
		return s.buf[i].Ord < s.buf[j].Ord
	})
	return nil
}

// Next yields the next sorted element.
func (s *SortByScore) Next() (ScoredNode, bool, error) {
	if s.pos >= len(s.buf) {
		return ScoredNode{}, false, nil
	}
	n := s.buf[s.pos]
	s.pos++
	return n, true, nil
}

// Close closes the input and releases the buffer.
func (s *SortByScore) Close() error {
	s.buf = nil
	return s.Input.Close()
}

// MergeUnion streams the score-merged union of two document-ordered inputs
// (the set-union access method of Example 5.2): elements present in both
// inputs appear once with score w1·a + w2·b; elements in one input keep
// that side's weighted score. Inputs must be ordered by (Doc, Ord).
type MergeUnion struct {
	Left, Right   Iterator
	WLeft, WRight float64
	l, r          ScoredNode
	lOK, rOK      bool
	primed        bool
}

// Open opens both inputs.
func (m *MergeUnion) Open() error {
	if m.WLeft == 0 && m.WRight == 0 {
		m.WLeft, m.WRight = 1, 1
	}
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.primed = false
	return nil
}

func (m *MergeUnion) prime() error {
	var err error
	m.l, m.lOK, err = m.Left.Next()
	if err != nil {
		return err
	}
	m.r, m.rOK, err = m.Right.Next()
	if err != nil {
		return err
	}
	m.primed = true
	return nil
}

func nodeLess(a, b ScoredNode) bool {
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.Ord < b.Ord
}

// Next yields the next merged element.
func (m *MergeUnion) Next() (ScoredNode, bool, error) {
	if !m.primed {
		if err := m.prime(); err != nil {
			return ScoredNode{}, false, err
		}
	}
	var err error
	switch {
	case !m.lOK && !m.rOK:
		return ScoredNode{}, false, nil
	case m.lOK && (!m.rOK || nodeLess(m.l, m.r)):
		out := ScoredNode{Doc: m.l.Doc, Ord: m.l.Ord, Score: m.WLeft * m.l.Score}
		m.l, m.lOK, err = m.Left.Next()
		return out, true, err
	case m.rOK && (!m.lOK || nodeLess(m.r, m.l)):
		out := ScoredNode{Doc: m.r.Doc, Ord: m.r.Ord, Score: m.WRight * m.r.Score}
		m.r, m.rOK, err = m.Right.Next()
		return out, true, err
	default: // equal keys: combine
		out := ScoredNode{Doc: m.l.Doc, Ord: m.l.Ord, Score: m.WLeft*m.l.Score + m.WRight*m.r.Score}
		m.l, m.lOK, err = m.Left.Next()
		if err != nil {
			return ScoredNode{}, false, err
		}
		m.r, m.rOK, err = m.Right.Next()
		return out, true, err
	}
}

// Close closes both inputs.
func (m *MergeUnion) Close() error {
	errL := m.Left.Close()
	errR := m.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

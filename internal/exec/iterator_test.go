package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/scoring"
	"repro/internal/storage"
)

func sn(doc, ord int, score float64) ScoredNode {
	return ScoredNode{Doc: storage.DocID(doc), Ord: int32(ord), Score: score}
}

func TestSliceSourceAndDrain(t *testing.T) {
	in := []ScoredNode{sn(0, 1, 1), sn(0, 2, 2)}
	got, err := Drain(&SliceSource{Nodes: in})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("Drain = %v", got)
	}
	// Reopening restarts.
	s := &SliceSource{Nodes: in}
	if _, err := Drain(s); err != nil {
		t.Fatal(err)
	}
	again, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 {
		t.Errorf("reopen did not reset: %v", again)
	}
}

func TestBlockingSourceWrapsTermJoin(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{Terms: []string{"search", "engine"}, Scorer: DefaultScorer{}}
	tj := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	it := &BlockingSource{Run: tj.Run}
	got, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BlockingSource output differs")
	}
	empty := &BlockingSource{}
	if err := empty.Open(); err == nil {
		t.Errorf("BlockingSource without Run should fail Open")
	}
}

func TestIndexScanAndElementScan(t *testing.T) {
	idx := buildFixtureIndex(t)
	got, err := Drain(&IndexScan{Index: idx, Term: "Engines"}) // normalized to "engine"
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != idx.TermFreq("engine") {
		t.Errorf("IndexScan = %d occurrences, want %d", len(got), idx.TermFreq("engine"))
	}
	doc := idx.Store().DocByName("articles.xml")
	all, err := Drain(&ElementScan{Store: idx.Store(), Doc: doc.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(doc.Elements()) {
		t.Errorf("ElementScan = %d, want %d", len(all), len(doc.Elements()))
	}
	chapters, err := Drain(&ElementScan{Store: idx.Store(), Doc: doc.ID, Tag: "chapter"})
	if err != nil {
		t.Fatal(err)
	}
	if len(chapters) != 3 {
		t.Errorf("chapter scan = %d, want 3", len(chapters))
	}
	none, err := Drain(&ElementScan{Store: idx.Store(), Doc: doc.ID, Tag: "nosuchtag"})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unknown tag scan = %d", len(none))
	}
	bad := &ElementScan{Store: idx.Store(), Doc: 99}
	if err := bad.Open(); err == nil {
		t.Errorf("unknown doc should fail Open")
	}
}

func TestFilterLimitSort(t *testing.T) {
	in := []ScoredNode{sn(0, 1, 5), sn(0, 2, 1), sn(0, 3, 3), sn(0, 4, 4)}
	got, err := Drain(&Limit{
		N: 2,
		Input: &SortByScore{Input: &Filter{
			Input: &SliceSource{Nodes: in},
			Pred:  func(n ScoredNode) bool { return n.Score > 1 },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Score != 5 || got[1].Score != 4 {
		t.Errorf("pipeline = %v", got)
	}
}

func TestMergeUnionAgainstAlgebraSemantics(t *testing.T) {
	left := []ScoredNode{sn(0, 1, 1), sn(0, 3, 3), sn(1, 1, 5)}
	right := []ScoredNode{sn(0, 2, 2), sn(0, 3, 4), sn(1, 9, 1)}
	got, err := Drain(&MergeUnion{
		Left:   &SliceSource{Nodes: left},
		Right:  &SliceSource{Nodes: right},
		WLeft:  2,
		WRight: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []ScoredNode{
		sn(0, 1, 2),         // left only: 2*1
		sn(0, 2, 1),         // right only: 0.5*2
		sn(0, 3, 3*2+4*0.5), // both: 8
		sn(1, 1, 10),
		sn(1, 9, 0.5),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge = %v, want %v", got, want)
	}
}

func TestMergeUnionDefaultWeights(t *testing.T) {
	got, err := Drain(&MergeUnion{
		Left:  &SliceSource{Nodes: []ScoredNode{sn(0, 1, 1)}},
		Right: &SliceSource{Nodes: []ScoredNode{sn(0, 1, 2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Score != 3 {
		t.Errorf("default weights = %v", got)
	}
}

func TestQuickMergeUnionMatchesMapUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() []ScoredNode {
			var out []ScoredNode
			ord := 0
			for i := 0; i < rng.Intn(20); i++ {
				ord += 1 + rng.Intn(3)
				out = append(out, sn(0, ord, float64(rng.Intn(10))))
			}
			return out
		}
		left, right := gen(), gen()
		got, err := Drain(&MergeUnion{
			Left:  &SliceSource{Nodes: left},
			Right: &SliceSource{Nodes: right},
		})
		if err != nil {
			return false
		}
		want := map[int32]float64{}
		for _, n := range left {
			want[n.Ord] += n.Score
		}
		for _, n := range right {
			want[n.Ord] += n.Score
		}
		if len(got) != len(want) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if !nodeLess(got[i-1], got[i]) {
				return false
			}
		}
		for _, n := range got {
			if want[n.Ord] != n.Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIteratorPlanEquivalentToTermJoinThreshold composes a full pipeline —
// TermJoin source, V-threshold filter, sort, stop-after-K — and checks it
// against the TopK access method.
func TestIteratorPlanEquivalentToTermJoinThreshold(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{
		Terms:  []string{"search", "engine", "internet"},
		Scorer: DefaultScorer{SimpleFn: scoring.SimpleScorer{Weights: []float64{0.8, 0.8, 0.6}}},
	}
	tj := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	plan := &Limit{
		N: 3,
		Input: &SortByScore{Input: &Filter{
			Input: &BlockingSource{Run: tj.Run},
			Pred:  func(n ScoredNode) bool { return n.Score > 1 },
		}},
	}
	got, err := Drain(plan)
	if err != nil {
		t.Fatal(err)
	}
	tk := NewTopK(3)
	tj2 := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if err := tj2.Run(FilterMinScore(1, tk.Emit())); err != nil {
		t.Fatal(err)
	}
	want := tk.Results()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plan = %v, want %v", got, want)
	}
}

// errIter fails on demand, for error-propagation tests.
type errIter struct {
	failOpen bool
	failNext bool
}

func (e *errIter) Open() error {
	if e.failOpen {
		return fmt.Errorf("open failed")
	}
	return nil
}

func (e *errIter) Next() (ScoredNode, bool, error) {
	if e.failNext {
		return ScoredNode{}, false, fmt.Errorf("next failed")
	}
	return ScoredNode{}, false, nil
}

func (e *errIter) Close() error { return nil }

func TestIteratorErrorPropagation(t *testing.T) {
	if _, err := Drain(&Filter{Input: &errIter{failOpen: true}, Pred: func(ScoredNode) bool { return true }}); err == nil {
		t.Errorf("open error lost")
	}
	if _, err := Drain(&SortByScore{Input: &errIter{failNext: true}}); err == nil {
		t.Errorf("next error lost in sort")
	}
	if _, err := Drain(&MergeUnion{Left: &errIter{failOpen: true}, Right: &SliceSource{}}); err == nil {
		t.Errorf("merge open error lost")
	}
	if _, err := Drain(&MergeUnion{Left: &SliceSource{}, Right: &errIter{failNext: true}}); err == nil {
		t.Errorf("merge next error lost")
	}
}

func TestSortStability(t *testing.T) {
	// Equal scores: document order breaks ties deterministically.
	in := []ScoredNode{sn(1, 5, 2), sn(0, 9, 2), sn(0, 1, 2)}
	got, err := Drain(&SortByScore{Input: &SliceSource{Nodes: in}})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []ScoredNode{sn(0, 1, 2), sn(0, 9, 2), sn(1, 5, 2)}
	if !reflect.DeepEqual(got, wantOrder) {
		t.Errorf("tie-break order = %v", got)
	}
	// And sanity: a random shuffle sorts by score desc.
	rng := rand.New(rand.NewSource(2))
	var big []ScoredNode
	for i := 0; i < 100; i++ {
		big = append(big, sn(0, i, float64(rng.Intn(20))))
	}
	sorted, err := Drain(&SortByScore{Input: &SliceSource{Nodes: big}})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool {
		return sorted[i].Score > sorted[j].Score ||
			(sorted[i].Score == sorted[j].Score && sorted[i].Ord < sorted[j].Ord)
	}) {
		t.Errorf("not sorted")
	}
}

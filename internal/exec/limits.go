package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// Typed execution-control errors. Every access method surfaces exactly one
// of these (possibly wrapped) when it stops early; callers classify with
// errors.Is.
var (
	// ErrCanceled reports that the query's context was canceled (an HTTP
	// client disconnecting, a parent operation aborting).
	ErrCanceled = errors.New("exec: query canceled")
	// ErrDeadlineExceeded reports that the query ran past its wall-clock
	// deadline (Limits.Timeout or a context deadline).
	ErrDeadlineExceeded = errors.New("exec: query deadline exceeded")
	// ErrLimitExceeded reports that the query exhausted a resource budget
	// (Limits.MaxResults or Limits.MaxAccesses). The concrete error is a
	// *LimitError naming the resource.
	ErrLimitExceeded = errors.New("exec: query resource limit exceeded")
)

// LimitError is the concrete error for an exhausted resource budget. It
// unwraps to ErrLimitExceeded.
type LimitError struct {
	Resource string // "results" or "store accesses"
	Limit    int64
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("exec: query exceeded %s limit (%d)", e.Resource, e.Limit)
}

// Unwrap makes errors.Is(err, ErrLimitExceeded) true.
func (e *LimitError) Unwrap() error { return ErrLimitExceeded }

// Limits is a per-query resource budget. The zero value means unlimited.
type Limits struct {
	// Timeout bounds the query's wall-clock time (0 = none). A context
	// deadline, when earlier, wins.
	Timeout time.Duration
	// MaxResults bounds the number of elements an access method emits
	// (0 = none). For partitioned evaluation the budget is shared: the
	// workers' combined emissions count against one limit.
	MaxResults int64
	// MaxAccesses bounds the number of node-record fetches the query may
	// perform across all of its accessors (0 = none).
	MaxAccesses int64
	// CheckEvery is the cooperative check interval in work units —
	// postings merged, nodes visited, results emitted (0 = the default,
	// DefaultCheckEvery). Smaller intervals stop runaway queries sooner
	// at slightly higher per-posting cost.
	CheckEvery int
}

// DefaultCheckEvery is the cooperative check interval used when
// Limits.CheckEvery is zero.
const DefaultCheckEvery = 256

// deadlineCheckEvery is the tightened default interval for guards with a
// wall-clock deadline: a time.Now() every few dozen work units is cheap,
// and it keeps short-but-slow queries (pathological I/O, injected latency)
// from overrunning their deadline unchecked.
const deadlineCheckEvery = 32

// Guard is the cooperative cancellation and resource-budget checker
// threaded through every access method. Operators call Tick once per unit
// of work and NoteEmit once per emitted result; every CheckEvery units the
// guard performs the full check (context done, deadline, access budget)
// and returns the typed error when the query must stop. Between checks the
// cost is one atomic add.
//
// A nil *Guard is valid and disables all checking, so unguarded callers
// pay nothing. A Guard may be shared by concurrent workers: all counters
// are atomic, and the first failure latches so that every worker observes
// the same error within one check interval.
type Guard struct {
	ctx         context.Context
	limits      Limits
	deadline    time.Time
	hasDeadline bool
	every       int64

	ticks   atomic.Int64
	emitted atomic.Int64
	budget  storage.AccessBudget
	failed  atomic.Pointer[failure]
}

type failure struct{ err error }

// NewGuard builds a guard for one query evaluation from a context and a
// budget. It returns nil — the no-op guard — when there is nothing to
// enforce (background-style context and zero limits).
func NewGuard(ctx context.Context, limits Limits) *Guard {
	if (ctx == nil || ctx.Done() == nil) && limits == (Limits{}) {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Guard{ctx: ctx, limits: limits, every: int64(limits.CheckEvery)}
	explicit := g.every > 0
	if !explicit {
		g.every = DefaultCheckEvery
	}
	if limits.Timeout > 0 {
		g.deadline = time.Now().Add(limits.Timeout)
		g.hasDeadline = true
	}
	if d, ok := ctx.Deadline(); ok && (!g.hasDeadline || d.Before(g.deadline)) {
		g.deadline = d
		g.hasDeadline = true
	}
	if !explicit {
		// The default interval amortizes the check over queries doing
		// hundreds of thousands of work units — but a query that finishes
		// in under one interval would then never be checked at all. When
		// the budget or a deadline demands finer granularity, tighten the
		// defaulted interval; an explicit CheckEvery still wins.
		if m := limits.MaxAccesses; m > 0 && m < g.every {
			g.every = m
		}
		if g.hasDeadline && g.every > deadlineCheckEvery {
			g.every = deadlineCheckEvery
		}
	}
	return g
}

// Limits returns the budget this guard enforces (zero value for nil).
func (g *Guard) Limits() Limits {
	if g == nil {
		return Limits{}
	}
	return g.limits
}

// Budget returns the shared access budget accessors should charge into,
// or nil for the no-op guard.
func (g *Guard) Budget() *storage.AccessBudget {
	if g == nil {
		return nil
	}
	return &g.budget
}

// Attach points acc's access metering at the guard's shared budget and
// returns acc, for call-site chaining. No-op on a nil guard or accessor.
func (g *Guard) Attach(acc *storage.Accessor) *storage.Accessor {
	if g != nil && acc != nil {
		acc.Budget = &g.budget
	}
	return acc
}

// NewAccessor returns a fresh accessor over s attached to the guard's
// budget. Valid on a nil guard (plain accessor).
func (g *Guard) NewAccessor(s *storage.Store) *storage.Accessor {
	return g.Attach(storage.NewAccessor(s))
}

// Emitted returns the number of results noted so far.
func (g *Guard) Emitted() int64 {
	if g == nil {
		return 0
	}
	return g.emitted.Load()
}

// fail latches the first failure and returns the latched error.
func (g *Guard) fail(err error) error {
	f := &failure{err: err}
	if !g.failed.CompareAndSwap(nil, f) {
		return g.failed.Load().err
	}
	return err
}

// Err returns the latched failure, or nil while the query may proceed.
func (g *Guard) Err() error {
	if g == nil {
		return nil
	}
	if f := g.failed.Load(); f != nil {
		return f.err
	}
	return nil
}

// Tick records one unit of work. Every CheckEvery ticks it performs the
// full Check; otherwise it only reports an already-latched failure.
func (g *Guard) Tick() error {
	if g == nil {
		return nil
	}
	if g.ticks.Add(1)%g.every != 0 {
		return g.Err()
	}
	return g.Check()
}

// TickN records n units of work at once — what batch consumers (block
// decodes, document-count scans) use so skipping work does not skip
// accountability. It preserves Tick's cadence: the full Check runs if any
// multiple of CheckEvery was crossed by the batch.
func (g *Guard) TickN(n int) error {
	if g == nil {
		return nil
	}
	if n <= 0 {
		return g.Err()
	}
	t := g.ticks.Add(int64(n))
	if (t-int64(n))/g.every == t/g.every {
		return g.Err()
	}
	return g.Check()
}

// Check performs the full cooperative check immediately: latched failure,
// context cancellation, wall-clock deadline, and the access budget. Access
// methods call it once at Run entry (so an already-dead query never starts
// scanning) and through Tick thereafter.
func (g *Guard) Check() error {
	if g == nil {
		return nil
	}
	if err := g.Err(); err != nil {
		return err
	}
	select {
	case <-g.ctx.Done():
		if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
			return g.fail(ErrDeadlineExceeded)
		}
		return g.fail(ErrCanceled)
	default:
	}
	if g.hasDeadline && time.Now().After(g.deadline) {
		return g.fail(ErrDeadlineExceeded)
	}
	if m := g.limits.MaxAccesses; m > 0 && g.budget.Used() > m {
		return g.fail(&LimitError{Resource: "store accesses", Limit: m})
	}
	return nil
}

// NoteEmit reserves one result slot, failing when the MaxResults budget is
// exhausted — callers invoke it before emitting, so exactly MaxResults
// results are delivered and the next one trips the limit. It also counts
// as a Tick.
func (g *Guard) NoteEmit() error {
	if g == nil {
		return nil
	}
	if m := g.limits.MaxResults; m > 0 && g.emitted.Add(1) > m {
		return g.fail(&LimitError{Resource: "results", Limit: m})
	}
	return g.Tick()
}

package exec

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// The planted corpus for the cancellation acceptance test: one control term
// with 150k occurrences, big enough that a TermJoin over it is genuinely
// mid-flight when the test cancels. Built once and shared (read-only).
var (
	plantedOnce  sync.Once
	plantedIdx   *index.Index
	plantedErr   error
	plantedFreq  = 150000
	plantedTerm  = "needle"
	plantedPosts int
)

func plantedIndex(t testing.TB) *index.Index {
	t.Helper()
	plantedOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Articles = 400 // ~345k word slots, enough for the planted load
		cfg.Seed = 7
		cfg.ControlTerms = map[string]int{plantedTerm: plantedFreq}
		c, err := synth.Generate(cfg)
		if err != nil {
			plantedErr = err
			return
		}
		s := storage.NewStore()
		if _, err := s.AddTree("corpus.xml", c.Root); err != nil {
			plantedErr = err
			return
		}
		plantedIdx = index.Build(s, tokenize.New())
		plantedPosts = len(plantedIdx.Postings(plantedTerm))
	})
	if plantedErr != nil {
		t.Fatal(plantedErr)
	}
	return plantedIdx
}

func TestNilGuardIsNoop(t *testing.T) {
	var g *Guard
	if err := g.Tick(); err != nil {
		t.Errorf("Tick on nil guard: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Errorf("Check on nil guard: %v", err)
	}
	if err := g.NoteEmit(); err != nil {
		t.Errorf("NoteEmit on nil guard: %v", err)
	}
	if g.Err() != nil || g.Emitted() != 0 || g.Budget() != nil {
		t.Error("nil guard should report nothing")
	}
	if acc := g.Attach(storage.NewAccessor(storage.NewStore())); acc.Budget != nil {
		t.Error("nil guard must not attach a budget")
	}
}

func TestNewGuardNoopForUnlimited(t *testing.T) {
	if g := NewGuard(context.Background(), Limits{}); g != nil {
		t.Error("background context + zero limits should yield the nil guard")
	}
	if g := NewGuard(nil, Limits{}); g != nil {
		t.Error("nil context + zero limits should yield the nil guard")
	}
	if g := NewGuard(nil, Limits{MaxResults: 1}); g == nil {
		t.Error("a real budget needs a real guard")
	}
}

// TestTermJoinCancelBoundedAccesses is the tentpole acceptance test:
// canceling mid-flight stops the scan within one cooperative check
// interval, measured in store accesses performed after the cancel.
func TestTermJoinCancelBoundedAccesses(t *testing.T) {
	idx := plantedIndex(t)
	if plantedPosts < plantedFreq/2 {
		t.Fatalf("planted corpus too small: %d postings for %q", plantedPosts, plantedTerm)
	}
	const checkEvery = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := NewGuard(ctx, Limits{CheckEvery: checkEvery})
	acc := g.NewAccessor(idx.Store())
	tj := &TermJoin{
		Index: idx,
		Acc:   acc,
		Query: TermQuery{Terms: []string{plantedTerm}, Scorer: DefaultScorer{}},
		Guard: g,
	}
	var emitted int
	var accessesAtCancel int64
	err := tj.Run(func(ScoredNode) {
		emitted++
		if emitted == 5 {
			accessesAtCancel = acc.Stats.NodeReads
			cancel()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if emitted < 5 {
		t.Fatalf("only %d emissions before cancel point", emitted)
	}
	post := acc.Stats.NodeReads - accessesAtCancel
	// One check interval is checkEvery ticks; each tick performs a small
	// bounded number of store accesses (an ancestor walk of tree depth).
	// A run that ignored the cancel would scan the remaining ~150k
	// postings; a cooperative one stops orders of magnitude earlier.
	bound := int64(checkEvery * 32)
	if post > bound {
		t.Errorf("performed %d store accesses after cancel, want <= %d", post, bound)
	}
	if post >= int64(plantedPosts)/10 {
		t.Errorf("post-cancel accesses %d not small next to %d postings", post, plantedPosts)
	}
}

func TestTermJoinDeadline(t *testing.T) {
	idx := plantedIndex(t)
	g := NewGuard(context.Background(), Limits{Timeout: time.Nanosecond})
	tj := &TermJoin{
		Index: idx,
		Acc:   g.NewAccessor(idx.Store()),
		Query: TermQuery{Terms: []string{plantedTerm}, Scorer: DefaultScorer{}},
		Guard: g,
	}
	_, err := Collect(tj.Run)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestTermJoinContextDeadline(t *testing.T) {
	idx := plantedIndex(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	g := NewGuard(ctx, Limits{})
	tj := &TermJoin{
		Index: idx,
		Acc:   g.NewAccessor(idx.Store()),
		Query: TermQuery{Terms: []string{plantedTerm}, Scorer: DefaultScorer{}},
		Guard: g,
	}
	_, err := Collect(tj.Run)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestTermJoinMaxResults(t *testing.T) {
	idx := plantedIndex(t)
	const max = 7
	g := NewGuard(context.Background(), Limits{MaxResults: max})
	tj := &TermJoin{
		Index: idx,
		Acc:   g.NewAccessor(idx.Store()),
		Query: TermQuery{Terms: []string{plantedTerm}, Scorer: DefaultScorer{}},
		Guard: g,
	}
	var emitted int
	err := tj.Run(func(ScoredNode) { emitted++ })
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err = %v, want ErrLimitExceeded", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Resource != "results" || le.Limit != max {
		t.Fatalf("err = %#v, want *LimitError{results, %d}", err, max)
	}
	// NoteEmit reserves before emitting: exactly max results delivered.
	if emitted != max {
		t.Errorf("emitted %d results, want exactly %d", emitted, max)
	}
}

func TestTermJoinMaxAccesses(t *testing.T) {
	idx := plantedIndex(t)
	const max = 50
	g := NewGuard(context.Background(), Limits{MaxAccesses: max, CheckEvery: 1})
	acc := g.NewAccessor(idx.Store())
	tj := &TermJoin{
		Index: idx,
		Acc:   acc,
		Query: TermQuery{Terms: []string{plantedTerm}, Scorer: DefaultScorer{}},
		Guard: g,
	}
	_, err := Collect(tj.Run)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err = %v, want ErrLimitExceeded", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Resource != "store accesses" {
		t.Fatalf("err = %#v, want *LimitError{store accesses}", err)
	}
	// With CheckEvery 1 the overshoot past the budget is at most the
	// handful of accesses one tick performs.
	if acc.Stats.NodeReads > max+64 {
		t.Errorf("performed %d accesses against a budget of %d", acc.Stats.NodeReads, max)
	}
}

// TestParallelTermJoinCancel verifies that one shared guard stops every
// worker: all partitions observe the same latched error.
func TestParallelTermJoinCancel(t *testing.T) {
	idx := plantedIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := NewGuard(ctx, Limits{CheckEvery: 64})
	p := &ParallelTermJoin{
		Index:   idx,
		Query:   TermQuery{Terms: []string{plantedTerm}, Scorer: DefaultScorer{}},
		Workers: 4,
		Guard:   g,
	}
	var mu sync.Mutex
	var emitted int
	err := p.Run(func(ScoredNode) {
		mu.Lock()
		emitted++
		if emitted == 3 {
			cancel()
		}
		mu.Unlock()
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestParallelTermJoinSharedResultBudget: the MaxResults budget is shared
// across workers, not per worker.
func TestParallelTermJoinSharedResultBudget(t *testing.T) {
	idx := plantedIndex(t)
	const max = 10
	g := NewGuard(context.Background(), Limits{MaxResults: max})
	p := &ParallelTermJoin{
		Index:   idx,
		Query:   TermQuery{Terms: []string{plantedTerm}, Scorer: DefaultScorer{}},
		Workers: 4,
		Guard:   g,
	}
	err := p.Run(func(ScoredNode) {})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err = %v, want ErrLimitExceeded", err)
	}
	if got := g.Emitted(); got > max+4 {
		t.Errorf("workers reserved %d result slots against a shared budget of %d", got, max)
	}
}

// TestGuardLatchIsSticky: after the first failure every subsequent call
// reports the same error, even between full checks.
func TestGuardLatchIsSticky(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGuard(ctx, Limits{CheckEvery: 1000000})
	cancel()
	if err := g.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check = %v, want ErrCanceled", err)
	}
	// Tick between check intervals still sees the latched failure.
	if err := g.Tick(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Tick after latch = %v, want ErrCanceled", err)
	}
	if err := g.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err after latch = %v, want ErrCanceled", err)
	}
}

func TestStackPickGuarded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGuard(ctx, Limits{CheckEvery: 1})
	nodes := []PickNode{
		{Ord: 0, Start: 0, End: 10, Level: 0, Score: 2.0, HasScore: true},
		{Ord: 1, Start: 1, End: 4, Level: 1, Score: 1.0, HasScore: true},
	}
	if _, err := StackPickGuarded(nodes, DefaultPickFuncs(0.5), g); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

package exec

import (
	"sort"

	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
)

// GenMeet is the Generalized Meet baseline of Sec. 6.1: the adaptation of
// the meet operator of Schmidt, Kersten and Windhouwer (ICDE 2001) to the
// term-join problem. Where the original meet finds only the lowest common
// ancestor of a term set, the generalization outputs all common ancestors
// (by traversing up the ancestor chain) as well as ancestors containing
// only a subset of the terms, with correspondingly lower scores.
//
// The implementation propagates occurrence counts level by level: the text
// nodes containing occurrences seed the deepest frontier, and each round
// groups the current frontier by parent (hash grouping on node id, as the
// meet algorithm's "grouping based on node id" prescribes) until the roots
// are reached. Every distinct ancestor is finalized and scored exactly
// once — the same output as TermJoin — but the per-level hash grouping and
// re-bucketing give it a constant-factor disadvantage that grows with the
// occurrence count, matching the up-to-4× (simple) and up-to-8× (complex)
// gaps the paper reports.
type GenMeet struct {
	Index *index.Index
	Acc   *storage.Accessor
	Query TermQuery
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked per seeded occurrence and per finalized node.
	Guard *Guard
}

// Run executes the baseline; output matches TermJoin's result set, emitted
// deepest-level-first per document, each node exactly once.
func (g *GenMeet) Run(emit Emit) error {
	if err := g.Query.validate("GenMeet"); err != nil {
		return err
	}
	g.Guard.Attach(g.Acc)
	if err := g.Guard.Check(); err != nil {
		return err
	}
	nTerms := len(g.Query.Terms)
	terms := normalizeTerms(g.Index, g.Query.Terms)
	lists := make([]index.List, nTerms)
	for i := range terms {
		lists[i] = g.Query.list(g.Index, terms, i)
	}

	for _, doc := range g.Index.Store().Docs() {
		type acc struct {
			counts         []int
			occs           []scoring.Occ
			scoredChildren int
		}
		// Bucket contributions by level, then by node.
		levels := map[uint16]map[int32]*acc{}
		maxLevel := uint16(0)
		seed := func(ord int32, ti int, occ scoring.Occ) {
			rec := g.Acc.Node(doc.ID, ord)
			lv := rec.Level
			m := levels[lv]
			if m == nil {
				m = map[int32]*acc{}
				levels[lv] = m
			}
			a := m[ord]
			if a == nil {
				a = &acc{counts: make([]int, nTerms)}
				m[ord] = a
			}
			a.counts[ti]++
			if g.Query.Complex {
				a.occs = append(a.occs, occ)
			}
			if lv > maxLevel {
				maxLevel = lv
			}
		}
		any := false
		for ti := range terms {
			for cur := lists[ti].Range(doc.ID, doc.ID+1).Cursor(); cur.Valid(); cur.Advance() {
				p := cur.Cur()
				if err := g.Guard.Tick(); err != nil {
					return err
				}
				any = true
				// The occurrence seeds the text node's parent element.
				parent := g.Acc.Node(p.Doc, p.Node).Parent
				if parent == storage.NoNode {
					continue
				}
				seed(parent, ti, scoring.Occ{Term: ti, Pos: p.Pos, Node: p.Node})
			}
		}
		if !any {
			continue
		}
		// Count distinct relevant children per node while propagating.
		for lv := maxLevel; ; lv-- {
			m := levels[lv]
			// Deterministic order within a level.
			ords := make([]int32, 0, len(m))
			for ord := range m {
				ords = append(ords, ord)
			}
			sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
			for _, ord := range ords {
				if err := g.Guard.Tick(); err != nil {
					return err
				}
				a := m[ord]
				var score float64
				if g.Query.Complex {
					// Direct text children with occurrences also count as
					// scored children.
					nz := a.scoredChildren + distinctTextChildren(g.Acc, doc.ID, ord, a.occs)
					total := int(g.Acc.ChildCountNav(doc.ID, ord))
					sort.Slice(a.occs, func(i, j int) bool { return a.occs[i].Pos < a.occs[j].Pos })
					score = g.Query.Scorer.Complex(a.counts, a.occs, nz, total)
				} else {
					score = g.Query.Scorer.Simple(a.counts)
				}
				if err := g.Guard.NoteEmit(); err != nil {
					return err
				}
				emit(ScoredNode{Doc: doc.ID, Ord: ord, Score: score})
				// Propagate to the parent's level bucket.
				parent := g.Acc.Node(doc.ID, ord).Parent
				if parent == storage.NoNode {
					continue
				}
				plv := g.Acc.Node(doc.ID, parent).Level
				pm := levels[plv]
				if pm == nil {
					pm = map[int32]*acc{}
					levels[plv] = pm
				}
				pa := pm[parent]
				if pa == nil {
					pa = &acc{counts: make([]int, nTerms)}
					pm[parent] = pa
				}
				for i, cnt := range a.counts {
					pa.counts[i] += cnt
				}
				if g.Query.Complex {
					pa.occs = append(pa.occs, a.occs...)
					pa.scoredChildren++
				}
			}
			if lv == 0 {
				break
			}
		}
	}
	return nil
}

// distinctTextChildren counts the distinct direct text children of
// (doc, ord) among the occurrence buffer.
func distinctTextChildren(a *storage.Accessor, doc storage.DocID, ord int32, occs []scoring.Occ) int {
	seen := map[int32]bool{}
	n := 0
	//tixlint:ignore guardcheck bounded by one node's occurrence buffer; accesses charge the caller-attached budget and GenMeet ticks per merged posting
	for _, o := range occs {
		if seen[o.Node] {
			continue
		}
		seen[o.Node] = true
		if a.Node(doc, o.Node).Parent == ord {
			n++
		}
	}
	return n
}

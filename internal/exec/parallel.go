package exec

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/index"
	"repro/internal/storage"
)

// ParallelTermJoin evaluates a TermJoin across worker goroutines by
// partitioning the document space — an extension beyond the paper (which
// ran single-threaded on 2003 hardware) that exploits the fact that the
// TermJoin stack never spans documents, so per-document work is
// embarrassingly parallel. Results are identical to the sequential
// TermJoin, emitted in the same (doc, pop) order after all workers finish.
type ParallelTermJoin struct {
	Index *index.Index
	Query TermQuery
	// Workers is the number of goroutines; 0 uses GOMAXPROCS.
	Workers     int
	ChildCounts ChildCountMode
	// Guard, when non-nil, is shared by every worker: cancellation and
	// the wall-clock deadline stop all partitions within one check
	// interval, and the MaxResults/MaxAccesses budgets are enforced
	// against the workers' combined counts.
	Guard *Guard
	// Stats holds the workers' combined store-access statistics of the
	// most recent Run. It is reset at Run entry, so successive Runs do
	// not accumulate; it is written without synchronization, so a
	// ParallelTermJoin must not be shared by concurrent Run calls — use
	// one value per running query (they are cheap).
	Stats storage.AccessStats
}

// Run executes the partitions and emits the merged result. Each worker
// uses its own storage accessor; per-worker access statistics are summed
// into Stats after the workers join. Run is single-use at a time: see
// Stats for the (non-)reuse contract.
func (p *ParallelTermJoin) Run(emit Emit) error {
	p.Stats.Reset()
	if err := p.Guard.Check(); err != nil {
		return err
	}
	nDocs := p.Index.Store().NumDocs()
	if nDocs == 0 {
		return nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nDocs {
		workers = nDocs
	}
	if workers == 1 {
		tj := &TermJoin{
			Index:       p.Index,
			Acc:         storage.NewAccessor(p.Index.Store()),
			Query:       p.Query,
			ChildCounts: p.ChildCounts,
			Guard:       p.Guard,
		}
		if err := tj.Run(emit); err != nil {
			return err
		}
		p.Stats.Add(tj.Acc.Stats)
		return nil
	}

	// Pre-resolve posting lists once so each worker can take its document
	// range as a zero-copy view without re-normalizing.
	terms := normalizeTerms(p.Index, p.Query.Terms)
	lists := make([]index.List, len(terms))
	for i := range terms {
		lists[i] = p.Query.list(p.Index, terms, i)
	}

	// Contiguous DocID ranges per worker.
	type part struct {
		loDoc, hiDoc storage.DocID // inclusive, exclusive
	}
	parts := make([]part, 0, workers)
	per := nDocs / workers
	extra := nDocs % workers
	lo := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		parts = append(parts, part{storage.DocID(lo), storage.DocID(lo + n)})
		lo += n
	}

	results := make([][]ScoredNode, workers)
	stats := make([]storage.AccessStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panic on a worker goroutine (an injected storage fault, an
			// operator bug) cannot be recovered by any caller-side defer;
			// convert it to a worker error here so the facade's recovery
			// and classification see it like any sequential failure.
			defer func() {
				if r := recover(); r != nil {
					if rerr, ok := r.(error); ok {
						errs[w] = fmt.Errorf("exec: parallel worker %d: %w", w, rerr)
						return
					}
					errs[w] = fmt.Errorf("exec: parallel worker %d: panic: %v", w, r)
				}
			}()
			pt := parts[w]
			sub := make([]index.List, len(lists))
			for i, l := range lists {
				sub[i] = l.Range(pt.loDoc, pt.hiDoc)
			}
			q := p.Query
			q.Lists = sub
			q.PostingLists = nil
			acc := storage.NewAccessor(p.Index.Store())
			tj := &TermJoin{Index: p.Index, Acc: acc, Query: q, ChildCounts: p.ChildCounts, Guard: p.Guard}
			out, err := Collect(tj.Run)
			if err != nil {
				errs[w] = fmt.Errorf("exec: parallel worker %d: %w", w, err)
				return
			}
			results[w] = out
			stats[w] = acc.Stats
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for w := range results {
		p.Stats.Add(stats[w])
		for _, n := range results[w] {
			emit(n)
		}
	}
	return nil
}

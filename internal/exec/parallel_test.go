package exec

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// buildMultiDocIndex loads several generated documents so parallel
// partitioning has real work per worker.
func buildMultiDocIndex(t testing.TB, docs int) *index.Index {
	t.Helper()
	s := storage.NewStore()
	for i := 0; i < docs; i++ {
		cfg := synth.DefaultConfig()
		cfg.Articles = 6
		cfg.Seed = int64(100 + i)
		cfg.ControlTerms = map[string]int{"ctla": 30, "ctlb": 20}
		c, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddTree(fmt.Sprintf("doc%02d.xml", i), c.Root); err != nil {
			t.Fatal(err)
		}
	}
	return index.Build(s, tokenize.New())
}

func TestParallelTermJoinMatchesSequential(t *testing.T) {
	idx := buildMultiDocIndex(t, 7)
	for _, complex := range []bool{false, true} {
		q := TermQuery{Terms: []string{"ctla", "ctlb"}, Complex: complex, Scorer: DefaultScorer{}}
		want, err := RunTermJoin(idx, q, ChildCountNavigate)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 7, 50} {
			p := &ParallelTermJoin{Index: idx, Query: q, Workers: workers}
			got, err := Collect(p.Run)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d complex=%v: %d results, want %d", workers, complex, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d complex=%v: result %d = %+v, want %+v",
						workers, complex, i, got[i], want[i])
				}
			}
			if p.Stats.NodeReads == 0 {
				t.Errorf("workers=%d: stats not accumulated", workers)
			}
		}
	}
}

// TestParallelTermJoinRerunStats is the regression test for the Stats
// accumulation bug: successive Runs on a reused struct must report the
// stats of the last Run only, not the running total. It also exercises
// concurrent independent joins so `go test -race` verifies the per-worker
// accessors never share state.
func TestParallelTermJoinRerunStats(t *testing.T) {
	idx := buildMultiDocIndex(t, 5)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Scorer: DefaultScorer{}}
	p := &ParallelTermJoin{Index: idx, Query: q, Workers: 3}
	if _, err := Collect(p.Run); err != nil {
		t.Fatal(err)
	}
	first := p.Stats
	if first.NodeReads == 0 {
		t.Fatal("first run recorded no node reads")
	}
	if _, err := Collect(p.Run); err != nil {
		t.Fatal(err)
	}
	if p.Stats != first {
		t.Errorf("rerun stats = %+v, want the single-run %+v (Stats must reset at Run entry)", p.Stats, first)
	}

	done := make(chan storage.AccessStats, 4)
	for i := 0; i < 4; i++ {
		go func() {
			pp := &ParallelTermJoin{Index: idx, Query: q, Workers: 3}
			if _, err := Collect(pp.Run); err != nil {
				t.Error(err)
			}
			done <- pp.Stats
		}()
	}
	for i := 0; i < 4; i++ {
		if st := <-done; st != first {
			t.Errorf("concurrent join stats = %+v, want %+v", st, first)
		}
	}
}

func TestParallelTermJoinEmptyStore(t *testing.T) {
	idx := index.Build(storage.NewStore(), tokenize.New())
	p := &ParallelTermJoin{Index: idx, Query: TermQuery{Terms: []string{"x"}, Scorer: DefaultScorer{}}}
	got, err := Collect(p.Run)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty store produced %d results", len(got))
	}
}

func TestParallelTermJoinPropagatesErrors(t *testing.T) {
	idx := buildMultiDocIndex(t, 3)
	p := &ParallelTermJoin{Index: idx, Query: TermQuery{Terms: []string{"ctla"}}, Workers: 2}
	if err := p.Run(func(ScoredNode) {}); err == nil {
		t.Errorf("missing scorer should propagate an error")
	}
}

func TestParallelTermJoinWithPhrasePseudoTerm(t *testing.T) {
	idx := buildMultiDocIndex(t, 4)
	pf := &PhraseFinder{Index: idx, Phrase: []string{"ctla"}}
	ms, err := CollectPhrase(pf.Run)
	if err != nil {
		t.Fatal(err)
	}
	q := TermQuery{
		Terms:        []string{"ctla-as-phrase"},
		PostingLists: [][]index.Posting{PhrasePostings(ms)},
		Scorer:       DefaultScorer{},
	}
	want, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	p := &ParallelTermJoin{Index: idx, Query: q, Workers: 3}
	got, err := Collect(p.Run)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pseudo-term parallel: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pseudo-term result %d differs", i)
		}
	}
}

package exec

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/storage"
)

// PhraseMatch is one phrase occurrence: the text node containing it and the
// absolute word position of its first term. A phrase match list is
// interchangeable with a term posting list, so phrase scores can feed the
// same downstream operators (e.g. TermJoin over phrases).
type PhraseMatch struct {
	Doc storage.DocID
	// Node is the text node containing the whole phrase.
	Node int32
	// Pos is the absolute position of the phrase's first word.
	Pos uint32
}

// PhraseFinder is the access method of Sec. 5.1.2: it intersects the
// posting lists of the phrase's terms and uses the word-offset information
// kept in the index to verify phrase adjacency during the intersection
// itself — no post-hoc re-fetch of document text is needed.
//
// The intersection gallops (DESIGN.md §15): the rarest term drives the
// scan, and for each of its occurrences the other terms are verified in
// ascending-frequency order with SeekPos — each verifier's skip-table (or
// bitmap-rank) seek jumps over the postings a stepwise merge would have
// decoded. A phrase containing one rare word therefore costs O(rare)
// seeks regardless of how common its other words are.
type PhraseFinder struct {
	Index *index.Index
	// Phrase is the term sequence, e.g. ["information", "retrieval"].
	Phrase []string
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked once per first-term occurrence and per match.
	Guard *Guard
}

// Run emits every occurrence of the phrase in position order.
func (p *PhraseFinder) Run(emit func(PhraseMatch)) error {
	if len(p.Phrase) == 0 {
		return fmt.Errorf("exec: PhraseFinder requires a non-empty phrase")
	}
	if err := p.Guard.Check(); err != nil {
		return err
	}
	terms := normalizeTerms(p.Index, p.Phrase)
	lists := make([]index.List, len(terms))
	for i, t := range terms {
		lists[i] = p.Index.List(t)
	}
	if len(terms) == 1 {
		for cur := lists[0].Cursor(); cur.Valid(); cur.Advance() {
			occ := cur.Cur()
			if err := p.Guard.NoteEmit(); err != nil {
				return err
			}
			emit(PhraseMatch{Doc: occ.Doc, Node: occ.Node, Pos: occ.Pos})
		}
		return nil
	}
	// Drive from the rarest term; verify the others rarest-first so a
	// non-match is rejected after the fewest (and cheapest) seeks.
	di := 0
	for i, l := range lists {
		if l.Len() < lists[di].Len() {
			di = i
		}
	}
	order := make([]int, 0, len(terms)-1)
	for i := range terms {
		if i != di {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := lists[order[a]].Len(), lists[order[b]].Len()
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	cursors := make([]*index.Cursor, len(order))
	for i, s := range order {
		if err := p.Guard.Tick(); err != nil {
			return err
		}
		cursors[i] = lists[s].Cursor()
	}
	// For each occurrence of the driver (phrase slot di) at position q, the
	// phrase matches iff slot s occurs at q+(s-di) for every other slot —
	// same document, and the same text node (adjacency in the shared
	// word-position space alone could cross a node boundary). Each verifier
	// cursor only ever moves forward: driver occurrences ascend, so its
	// target positions ascend too, which is what lets SeekPos gallop.
	for fc := lists[di].Cursor(); fc.Valid(); fc.Advance() {
		occ := fc.Cur()
		if err := p.Guard.Tick(); err != nil {
			return err
		}
		if occ.Pos < uint32(di) {
			continue // phrase would start before position 0
		}
		ok := true
		for i, c := range cursors {
			s := order[i]
			want := occ.Pos + uint32(s) - uint32(di)
			c.SeekPos(occ.Doc, want)
			if !c.Valid() {
				// An exhausted verifier stays exhausted — cursors never
				// move backward and later driver occurrences only produce
				// larger (doc, pos) targets — so no further match exists.
				return nil
			}
			cur := c.Cur()
			if cur.Doc != occ.Doc || cur.Pos != want || cur.Node != occ.Node {
				ok = false
				break
			}
		}
		if ok {
			if err := p.Guard.NoteEmit(); err != nil {
				return err
			}
			emit(PhraseMatch{Doc: occ.Doc, Node: occ.Node, Pos: occ.Pos - uint32(di)})
		}
	}
	return nil
}

// CollectPhrase runs a phrase search and returns the matches.
func CollectPhrase(f func(func(PhraseMatch)) error) ([]PhraseMatch, error) {
	var out []PhraseMatch
	err := f(func(m PhraseMatch) { out = append(out, m) })
	return out, err
}

// Comp3 is the composite baseline PhraseFinder is compared against in
// Sec. 6.2: an index access per term, an intersection of the returned
// element (text node) identifiers, and then a filter pass that re-fetches
// each candidate node's text from the store and verifies that the phrase
// terms appear exactly one offset apart, in order. The extra work at the
// filter level — re-tokenizing candidate text, which grows with the
// intersection size — is what PhraseFinder avoids.
type Comp3 struct {
	Index  *index.Index
	Acc    *storage.Accessor
	Phrase []string
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked per posting in the intersection and per candidate
	// in the filter pass.
	Guard *Guard
}

// Run emits every occurrence of the phrase, in position order.
func (c *Comp3) Run(emit func(PhraseMatch)) error {
	if len(c.Phrase) == 0 {
		return fmt.Errorf("exec: Comp3 requires a non-empty phrase")
	}
	c.Guard.Attach(c.Acc)
	if err := c.Guard.Check(); err != nil {
		return err
	}
	terms := normalizeTerms(c.Index, c.Phrase)

	type nodeKey struct {
		doc  storage.DocID
		node int32
	}
	// Index access per term: materialize the set of text nodes containing
	// the term, then intersect.
	var candidates map[nodeKey]bool
	for _, term := range terms {
		now := map[nodeKey]bool{}
		for cur := c.Index.List(term).Cursor(); cur.Valid(); cur.Advance() {
			if err := c.Guard.Tick(); err != nil {
				return err
			}
			p := cur.Cur()
			now[nodeKey{p.Doc, p.Node}] = true
		}
		if candidates == nil {
			candidates = now
			continue
		}
		for k := range candidates {
			if !now[k] {
				delete(candidates, k)
			}
		}
	}
	keys := make([]nodeKey, 0, len(candidates))
	for k := range candidates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].doc != keys[j].doc {
			return keys[i].doc < keys[j].doc
		}
		return keys[i].node < keys[j].node
	})

	// Filter: fetch each candidate's text and verify offsets.
	tok := c.Index.Tokenizer()
	for _, k := range keys {
		if err := c.Guard.Tick(); err != nil {
			return err
		}
		text := c.Acc.Text(k.doc, k.node)
		toks := tok.Tokenize(text)
		start := c.Acc.Node(k.doc, k.node).Start
		for i := 0; i+len(terms) <= len(toks); i++ {
			match := true
			for j, t := range terms {
				if toks[i+j].Term != t || toks[i+j].Offset != toks[i].Offset+uint32(j) {
					match = false
					break
				}
			}
			if match {
				if err := c.Guard.NoteEmit(); err != nil {
					return err
				}
				emit(PhraseMatch{Doc: k.doc, Node: k.node, Pos: start + toks[i].Offset})
			}
		}
	}
	return nil
}

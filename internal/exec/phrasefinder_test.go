package exec

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

func phraseKeyList(ms []PhraseMatch) [][3]int64 {
	out := make([][3]int64, len(ms))
	for i, m := range ms {
		out[i] = [3]int64{int64(m.Doc), int64(m.Node), int64(m.Pos)}
	}
	return out
}

// brutePhrase scans every text node with the tokenizer.
func brutePhrase(idx *index.Index, phrase []string) []PhraseMatch {
	tok := idx.Tokenizer()
	var out []PhraseMatch
	norm := normalizeTerms(idx, phrase)
	for _, doc := range idx.Store().Docs() {
		// Same int32 ordinal cap the build path enforces: a silent
		// narrowing here would make the oracle disagree with the index on
		// pathological corpora instead of failing loudly.
		if len(doc.Nodes) > math.MaxInt32 {
			panic("brutePhrase: node ordinal overflows int32")
		}
		for ord := range doc.Nodes {
			rec := &doc.Nodes[ord]
			if rec.Kind != xmltree.Text {
				continue
			}
			toks := tok.Tokenize(rec.Text)
			for i := 0; i+len(norm) <= len(toks); i++ {
				ok := true
				for j, term := range norm {
					if toks[i+j].Term != term || toks[i+j].Offset != toks[i].Offset+uint32(j) {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, PhraseMatch{Doc: doc.ID, Node: int32(ord), Pos: rec.Start + toks[i].Offset})
				}
			}
		}
	}
	return out
}

func TestPhraseFinderOnFixture(t *testing.T) {
	idx := buildFixtureIndex(t)
	for _, phrase := range [][]string{
		{"search", "engine"},
		{"information", "retrieval"},
		{"internet", "technologies"},
		{"search", "engine", "basics"},
	} {
		pf := &PhraseFinder{Index: idx, Phrase: phrase}
		got, err := CollectPhrase(pf.Run)
		if err != nil {
			t.Fatal(err)
		}
		want := brutePhrase(idx, phrase)
		if !reflect.DeepEqual(phraseKeyList(got), phraseKeyList(want)) {
			t.Errorf("phrase %v: got %v, want %v", phrase, got, want)
		}
		if len(want) == 0 {
			t.Errorf("phrase %v: empty workload, fixture broken?", phrase)
		}
	}
}

func TestComp3MatchesPhraseFinder(t *testing.T) {
	idx := buildFixtureIndex(t)
	for _, phrase := range [][]string{
		{"search", "engine"},
		{"information", "retrieval"},
		{"search", "engine", "basics"},
	} {
		pf := &PhraseFinder{Index: idx, Phrase: phrase}
		want, err := CollectPhrase(pf.Run)
		if err != nil {
			t.Fatal(err)
		}
		c3 := &Comp3{Index: idx, Acc: storage.NewAccessor(idx.Store()), Phrase: phrase}
		got, err := CollectPhrase(c3.Run)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(phraseKeyList(got), phraseKeyList(want)) {
			t.Errorf("phrase %v: Comp3 %v, PhraseFinder %v", phrase, got, want)
		}
	}
}

func TestPhraseFinderNoFalsePositivesAcrossNodes(t *testing.T) {
	// "alpha" at the end of one text node, "beta" at the start of the next:
	// not a phrase.
	s := storage.NewStore()
	if _, err := s.AddTree("x.xml", mustParse(`<r><p>say alpha</p><p>beta now</p><p>alpha beta</p></r>`)); err != nil {
		t.Fatal(err)
	}
	idx := index.Build(s, tokenize.New())
	pf := &PhraseFinder{Index: idx, Phrase: []string{"alpha", "beta"}}
	got, err := CollectPhrase(pf.Run)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1 (cross-node adjacency must not match)", len(got))
	}
	doc := s.DocByName("x.xml")
	if doc.Nodes[got[0].Node].Text != "alpha beta" {
		t.Errorf("matched wrong node: %q", doc.Nodes[got[0].Node].Text)
	}
}

func TestPhraseFinderRepeatedTermPhrase(t *testing.T) {
	s := storage.NewStore()
	if _, err := s.AddTree("x.xml", mustParse(`<r><p>go go go stop go go</p></r>`)); err != nil {
		t.Fatal(err)
	}
	idx := index.Build(s, tokenize.New())
	pf := &PhraseFinder{Index: idx, Phrase: []string{"go", "go"}}
	got, err := CollectPhrase(pf.Run)
	if err != nil {
		t.Fatal(err)
	}
	// "go go go stop go go": matches at offsets 0,1 and 4.
	if len(got) != 3 {
		t.Errorf("matches = %d, want 3", len(got))
	}
	want := brutePhrase(idx, []string{"go", "go"})
	if !reflect.DeepEqual(phraseKeyList(got), phraseKeyList(want)) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestPhraseFinderSingleTermAndErrors(t *testing.T) {
	idx := buildFixtureIndex(t)
	pf := &PhraseFinder{Index: idx, Phrase: []string{"internet"}}
	got, err := CollectPhrase(pf.Run)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != idx.TermFreq("internet") {
		t.Errorf("single-term phrase = %d matches, want %d", len(got), idx.TermFreq("internet"))
	}
	pf = &PhraseFinder{Index: idx}
	if err := pf.Run(func(PhraseMatch) {}); err == nil {
		t.Errorf("empty phrase should error")
	}
	c3 := &Comp3{Index: idx, Acc: storage.NewAccessor(idx.Store())}
	if err := c3.Run(func(PhraseMatch) {}); err == nil {
		t.Errorf("Comp3 empty phrase should error")
	}
}

func TestPhraseOnSynthCorpusWithPlantedPhrases(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Seed = 21
	cfg.ControlTerms = map[string]int{"pha": 60, "phb": 45}
	cfg.Phrases = []synth.PhraseSpec{{T1: "pha", T2: "phb", Together: 25}}
	c, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore()
	if _, err := s.AddTree("corpus.xml", c.Root); err != nil {
		t.Fatal(err)
	}
	idx := index.Build(s, tokenize.New())

	pf := &PhraseFinder{Index: idx, Phrase: []string{"pha", "phb"}}
	got, err := CollectPhrase(pf.Run)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 25 {
		t.Errorf("planted 25 phrases, found %d", len(got))
	}
	want := brutePhrase(idx, []string{"pha", "phb"})
	if !reflect.DeepEqual(phraseKeyList(got), phraseKeyList(want)) {
		t.Errorf("PhraseFinder disagrees with brute force: %d vs %d", len(got), len(want))
	}
	c3 := &Comp3{Index: idx, Acc: storage.NewAccessor(idx.Store()), Phrase: []string{"pha", "phb"}}
	got3, err := CollectPhrase(c3.Run)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(phraseKeyList(got3), phraseKeyList(want)) {
		t.Errorf("Comp3 disagrees with brute force")
	}
}

// TestPhraseGallopingDriverSelection pins the galloping intersection on
// skewed frequencies: the rarest term sits in the middle or at the end of
// the phrase, so the driver is not slot 0 and match starts are recovered
// by subtracting the driver's phrase offset. Every combination is checked
// against the brute-force oracle.
func TestPhraseGallopingDriverSelection(t *testing.T) {
	s := storage.NewStore()
	// "maple" is common, "quartz" rare, "ember" in between. Phrases plant
	// the rare term at each slot; decoys share prefixes/suffixes so a
	// wrong driver offset or node check would produce false matches.
	docs := []string{
		`<r><p>maple quartz ember in the grove</p><p>maple maple maple</p></r>`,
		`<r><p>maple quartz ember</p><sec><p>quartz ember maple</p><p>ember maple quartz</p></sec></r>`,
		`<r><p>maple ember quartz maple quartz ember maple</p></r>`,
		`<r><p>maple</p><p>quartz ember</p><p>maple quartz</p><p>ember</p></r>`,
		`<r><p>no match here at all just filler maple maple ember</p></r>`,
	}
	for i, d := range docs {
		if _, err := s.AddTree(fmt.Sprintf("d%d.xml", i), mustParse(d)); err != nil {
			t.Fatal(err)
		}
	}
	idx := index.Build(s, tokenize.New())
	phrases := [][]string{
		{"maple", "quartz"},
		{"quartz", "ember"},
		{"maple", "quartz", "ember"},
		{"quartz", "ember", "maple"},
		{"ember", "maple", "quartz"},
		{"maple", "ember", "quartz"},
		{"maple", "maple"},
		{"maple", "maple", "maple"},
	}
	for _, phrase := range phrases {
		pf := &PhraseFinder{Index: idx, Phrase: phrase}
		got, err := CollectPhrase(pf.Run)
		if err != nil {
			t.Fatal(err)
		}
		want := brutePhrase(idx, phrase)
		if !reflect.DeepEqual(phraseKeyList(got), phraseKeyList(want)) {
			t.Errorf("phrase %v: got %v want %v", phrase, got, want)
		}
	}
}

func TestComp3DoesMoreTextReads(t *testing.T) {
	idx := buildFixtureIndex(t)
	accPF := storage.NewAccessor(idx.Store())
	pf := &PhraseFinder{Index: idx, Phrase: []string{"search", "engine"}}
	if _, err := CollectPhrase(pf.Run); err != nil {
		t.Fatal(err)
	}
	c3 := &Comp3{Index: idx, Acc: storage.NewAccessor(idx.Store()), Phrase: []string{"search", "engine"}}
	if _, err := CollectPhrase(c3.Run); err != nil {
		t.Fatal(err)
	}
	if accPF.Stats.TextReads != 0 {
		t.Errorf("PhraseFinder must not read text (reads=%d)", accPF.Stats.TextReads)
	}
	if c3.Acc.Stats.TextReads == 0 {
		t.Errorf("Comp3 must re-fetch candidate text")
	}
}

package exec

import (
	"sort"
)

// PickNode is one node of the scored tree streamed into the stack-based
// Pick access method, in document order. HasScore distinguishes IR-nodes
// (which participate in the pick decision) from plain structural content
// (which is transparent).
type PickNode struct {
	Ord      int32
	Start    uint32
	End      uint32
	Level    uint16
	Score    float64
	HasScore bool
}

// PickFuncs is the plug-in decision logic of the Pick algorithm (Fig. 12):
// DetWorth decides whether a node is worth returning given its direct
// children, and IsSameClass decides whether two nodes belong to the same
// return class (vertical redundancy elimination drops a surviving
// candidate when an unworthy ancestor shares its class). Relevant is the
// relevance-score threshold candidates must pass.
type PickFuncs struct {
	Relevant  func(score float64) bool
	DetWorth  func(n PickNode, children []PickNode) bool
	SameClass func(a, b PickNode) bool
}

// DefaultPickFuncs mirrors algebra.DefaultCriterion: relevance means score
// ≥ threshold; an interior node is worth returning when more than half of
// its scored children are relevant (a node with no scored children falls
// back to its own relevance); two nodes share a class when their levels
// have equal parity (the Sec. 5.3 example).
func DefaultPickFuncs(threshold float64) PickFuncs {
	return PickFuncs{
		Relevant: func(s float64) bool { return s >= threshold },
		DetWorth: func(n PickNode, children []PickNode) bool {
			relevant, total := 0, 0
			for _, c := range children {
				if !c.HasScore {
					continue
				}
				total++
				if c.Score >= threshold {
					relevant++
				}
			}
			if total == 0 {
				return n.HasScore && n.Score >= threshold
			}
			return float64(relevant)/float64(total) > 0.5
		},
		SameClass: func(a, b PickNode) bool { return a.Level%2 == b.Level%2 },
	}
}

// StackPick is the stack-based evaluation of the Pick operator (Fig. 12).
// It makes a single pass over the scored tree's nodes in document order,
// maintaining a stack of open elements. When a node closes, DetWorth is
// evaluated with its direct children: a worthy node keeps its surviving
// candidates (and joins them if relevant); an unworthy node finalizes its
// survivors — those in a different return class are output, those in the
// same class are eliminated as redundant. Survivors remaining when the
// root closes are output.
//
// The pass is blocking only in the sense the paper describes: output for a
// subtree is produced as soon as an ancestor is determined not worth
// returning (or at end of input); no global materialization beyond the
// open-ancestor stack and its survivor lists is needed.
//
// The input must be in document order; the returned picked nodes are in
// document order.
func StackPick(nodes []PickNode, f PickFuncs) []PickNode {
	out, _ := StackPickGuarded(nodes, f, nil)
	return out
}

// StackPickGuarded is StackPick with a cooperative guard, checked once per
// streamed node.
func StackPickGuarded(nodes []PickNode, f PickFuncs, g *Guard) ([]PickNode, error) {
	type frame struct {
		node      PickNode
		children  []PickNode
		survivors []PickNode
	}
	var stack []*frame
	var result []PickNode

	close1 := func() {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var parent *frame
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
			parent.children = append(parent.children, e.node)
		}
		propagate := func(surv []PickNode) {
			if parent != nil {
				parent.survivors = append(parent.survivors, surv...)
				return
			}
			// Final flush (Fig. 12's ending): the remaining survivors are
			// all potentially worth returning; output the top node and the
			// nodes in its class, preserving parent/child exclusion.
			if len(surv) == 0 {
				return
			}
			rep := surv[len(surv)-1]
			result = append(result, rep)
			for _, x := range surv[:len(surv)-1] {
				if f.SameClass(x, rep) {
					result = append(result, x)
				}
			}
		}
		if !e.node.HasScore {
			propagate(e.survivors)
			return
		}
		if f.DetWorth(e.node, e.children) {
			if f.Relevant(e.node.Score) {
				e.survivors = append(e.survivors, e.node)
			}
			propagate(e.survivors)
			return
		}
		for _, x := range e.survivors {
			if !f.SameClass(x, e.node) {
				result = append(result, x)
			}
		}
	}

	for _, n := range nodes {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		for len(stack) > 0 && stack[len(stack)-1].node.End < n.Start {
			close1()
		}
		stack = append(stack, &frame{node: n})
	}
	for len(stack) > 0 {
		close1()
	}
	sort.Slice(result, func(i, j int) bool { return result[i].Start < result[j].Start })
	return result, nil
}

package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/fixture"
	"repro/internal/pattern"
	"repro/internal/scoring"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// flattenScoredTree converts an algebra scored tree into the document-
// ordered PickNode stream the physical Pick consumes.
func flattenScoredTree(t *algebra.ScoredTree) []PickNode {
	var out []PickNode
	t.Root.Walk(func(n *xmltree.Node) bool {
		s, ok := t.Score(n)
		out = append(out, PickNode{
			Ord:      n.Ord,
			Start:    n.Start,
			End:      n.End,
			Level:    n.Level,
			Score:    s,
			HasScore: ok,
		})
		return true
	})
	return out
}

// figure6Tree builds the projected scored tree of the paper's Fig. 6.
func figure6Tree(t testing.TB) *algebra.ScoredTree {
	t.Helper()
	tok := tokenize.NewStemming()
	p := pattern.NewPattern(1)
	author := p.Root.Child(2, pattern.PC)
	author.Child(3, pattern.PC)
	p.Root.Child(4, pattern.ADStar)
	p.Formula = pattern.Conj(
		pattern.TagEq(1, "article"),
		pattern.TagEq(2, "author"),
		pattern.TagEq(3, "sname"),
		pattern.ContentEq(3, "Doe"),
		pattern.IsElement(4),
	)
	scores := &algebra.ScoreSet{
		Primary: map[int]algebra.NodeScorer{
			4: func(n *xmltree.Node) float64 {
				return scoring.ScoreFoo(tok, n, fixture.PrimaryPhrases, fixture.SecondaryPhrases)
			},
		},
		Secondary: map[int]algebra.ScoreExpr{1: algebra.VarScore(4)},
	}
	out := algebra.Project(algebra.FromXML(mustParse(fixture.ArticlesXML)), p, scores,
		[]int{1, 3, 4}, algebra.ProjectOptions{DropZeroIR: true})
	if len(out) != 1 {
		t.Fatalf("projection failed")
	}
	return out[0]
}

func TestStackPickReproducesFigure8(t *testing.T) {
	pt := figure6Tree(t)
	picked := StackPick(flattenScoredTree(pt), DefaultPickFuncs(0.8))

	// Expect chapter #a10, section-title #a13, and the three paragraphs.
	ordTag := map[int32]string{}
	pt.Root.Walk(func(n *xmltree.Node) bool {
		ordTag[n.Ord] = n.Tag
		return true
	})
	var tags []string
	for _, n := range picked {
		tags = append(tags, ordTag[n.Ord])
	}
	want := []string{"chapter", "section-title", "p", "p", "p"}
	if len(tags) != len(want) {
		t.Fatalf("picked = %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("picked = %v, want %v", tags, want)
		}
	}
}

func TestStackPickMatchesAlgebraOnFixture(t *testing.T) {
	pt := figure6Tree(t)
	phys := StackPick(flattenScoredTree(pt), DefaultPickFuncs(0.8))
	logical := algebra.PickedNodes(pt, algebra.DefaultCriterion(0.8))
	if len(phys) != len(logical) {
		t.Fatalf("physical %d vs logical %d", len(phys), len(logical))
	}
	for i := range phys {
		if phys[i].Ord != logical[i].Ord {
			t.Errorf("mismatch at %d: %d vs %d", i, phys[i].Ord, logical[i].Ord)
		}
	}
}

// randomScoredTree builds a random scored tree for equivalence testing.
func randomScoredTree(rng *rand.Rand, n int) *algebra.ScoredTree {
	root := xmltree.NewElement("r")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xmltree.NewElement([]string{"a", "b", "c"}[rng.Intn(3)])
		parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	xmltree.Number(root)
	st := algebra.NewScoredTree(root)
	for _, n2 := range nodes {
		switch rng.Intn(3) {
		case 0:
			st.SetScore(n2, rng.Float64()*2) // scored node
		case 1:
			st.SetScore(n2, 0) // zero-scored IR node
		}
	}
	return st
}

func TestQuickStackPickEquivalentToLogicalPick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomScoredTree(rng, 2+rng.Intn(40))
		threshold := rng.Float64() * 1.5
		phys := StackPick(flattenScoredTree(st), DefaultPickFuncs(threshold))
		logical := algebra.PickedNodes(st, algebra.DefaultCriterion(threshold))
		if len(phys) != len(logical) {
			return false
		}
		for i := range phys {
			if phys[i].Ord != logical[i].Ord {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStackPickParentChildExclusion(t *testing.T) {
	// Property: among the picked nodes, no picked node's parent (in the
	// input tree) is also picked when DetWorth derives from the default
	// criterion — the paper's "between a parent node and a child node,
	// only one of them will be returned".
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomScoredTree(rng, 2+rng.Intn(40))
		picked := StackPick(flattenScoredTree(st), DefaultPickFuncs(0.5))
		set := map[int32]bool{}
		for _, p := range picked {
			set[p.Ord] = true
		}
		ok := true
		st.Root.Walk(func(n *xmltree.Node) bool {
			if n.Parent != nil && set[n.Ord] && set[n.Parent.Ord] {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStackPickEmptyAndUnscored(t *testing.T) {
	if got := StackPick(nil, DefaultPickFuncs(0.5)); len(got) != 0 {
		t.Errorf("empty input picked %d", len(got))
	}
	// A tree with no scores picks nothing.
	root := mustParse(`<a><b/><c/></a>`)
	st := algebra.NewScoredTree(root)
	if got := StackPick(flattenScoredTree(st), DefaultPickFuncs(0.5)); len(got) != 0 {
		t.Errorf("unscored tree picked %d", len(got))
	}
}

func TestStackPickWorthyRootFlushesAtEnd(t *testing.T) {
	// Root with two relevant children: root is worth returning, and the
	// final flush returns the root alone — its same-class survivors (none
	// at even parity besides itself) — subsuming the children, per the
	// Fig. 12 ending.
	root := mustParse(`<a><b/><c/></a>`)
	st := algebra.NewScoredTree(root)
	st.SetScore(root, 1.0)
	st.SetScore(root.Children[0], 1.0)
	st.SetScore(root.Children[1], 1.0)
	picked := StackPick(flattenScoredTree(st), DefaultPickFuncs(0.8))
	if len(picked) != 1 {
		t.Fatalf("picked = %d, want 1 (the worthy root subsumes its children)", len(picked))
	}
	if picked[0].Ord != root.Ord {
		t.Errorf("picked %d, want the root", picked[0].Ord)
	}
}

func TestScalePickInputSizes(t *testing.T) {
	// The Pick experiment of Sec. 6 runs from 200 to 55,000 input nodes;
	// verify the algorithm handles the upper end and stays linear-ish by
	// construction (single pass).
	rng := rand.New(rand.NewSource(9))
	st := randomScoredTree(rng, 55000)
	nodes := flattenScoredTree(st)
	if len(nodes) != 55000 {
		t.Fatalf("node count = %d", len(nodes))
	}
	picked := StackPick(nodes, DefaultPickFuncs(0.8))
	logical := algebra.PickedNodes(st, algebra.DefaultCriterion(0.8))
	if len(picked) != len(logical) {
		t.Fatalf("large input: physical %d vs logical %d", len(picked), len(logical))
	}
}

package exec

import "repro/internal/storage"

// AccessReporter is implemented by every access method that accounts its
// store traffic, exposing the storage.AccessStats accumulated by the most
// recent Run uniformly — so harnesses (internal/bench, internal/db's
// per-query metrics) can report store touches without knowing which
// operator ran. Methods that never touch the node store (PhraseFinder
// resolves phrases entirely from the inverted index) report zero stats.
type AccessReporter interface {
	AccessStats() storage.AccessStats
}

func accStats(a *storage.Accessor) storage.AccessStats {
	if a == nil {
		return storage.AccessStats{}
	}
	return a.Stats
}

// AccessStats reports the store traffic of the last Run.
func (t *TermJoin) AccessStats() storage.AccessStats { return accStats(t.Acc) }

// AccessStats reports the combined worker store traffic of the last Run.
func (p *ParallelTermJoin) AccessStats() storage.AccessStats { return p.Stats }

// AccessStats reports the store traffic of the last Run.
func (c *Comp1) AccessStats() storage.AccessStats { return accStats(c.Acc) }

// AccessStats reports the store traffic of the last Run.
func (c *Comp2) AccessStats() storage.AccessStats { return accStats(c.Acc) }

// AccessStats reports the store traffic of the last Run.
func (g *GenMeet) AccessStats() storage.AccessStats { return accStats(g.Acc) }

// AccessStats reports the store traffic of the last Run.
func (c *Comp3) AccessStats() storage.AccessStats { return accStats(c.Acc) }

// AccessStats reports the store traffic of the last Run.
func (t *TwigStack) AccessStats() storage.AccessStats { return t.Stats }

// AccessStats is zero by construction: PhraseFinder verifies adjacency
// from word offsets during posting intersection and never reads the store.
func (p *PhraseFinder) AccessStats() storage.AccessStats { return storage.AccessStats{} }

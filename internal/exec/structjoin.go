package exec

import (
	"sort"

	"repro/internal/storage"
)

// OrdCount pairs an element ordinal with an occurrence count, the grouped
// output of an ancestor-descendant structural join.
type OrdCount struct {
	Ord   int32
	Count int
}

// StructuralJoinCount performs the stack-based ancestor-descendant
// structural join of Al-Khalifa et al. (ICDE 2001) between an ancestor
// list (element ordinals in document order) and a descendant list (word
// positions in document order), grouped by ancestor: it returns, for every
// ancestor element whose region contains at least one of the positions,
// the number of contained positions, in document order.
//
// Every ancestor-list element is read through the accessor — this is what
// makes the Comp2 baseline's cost proportional to the extent it scans.
func StructuralJoinCount(acc *storage.Accessor, doc storage.DocID, ancestors []int32, positions []uint32) []OrdCount {
	out, _ := StructuralJoinCountGuarded(acc, doc, ancestors, positions, nil)
	return out
}

// StructuralJoinCountGuarded is StructuralJoinCount with a cooperative
// guard, checked once per ancestor element scanned and per position merged
// — the loops whose size Comp2 cannot bound ahead of time.
func StructuralJoinCountGuarded(acc *storage.Accessor, doc storage.DocID, ancestors []int32, positions []uint32, g *Guard) ([]OrdCount, error) {
	type frame struct {
		ord   int32
		end   uint32
		count int
	}
	var out []OrdCount
	var stack []frame
	ai, di := 0, 0
	pop := func() {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.count > 0 {
			if len(stack) > 0 {
				stack[len(stack)-1].count += f.count
			}
			out = append(out, OrdCount{Ord: f.ord, Count: f.count})
		}
	}
	for ai < len(ancestors) || di < len(positions) {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		if ai < len(ancestors) {
			rec := acc.Node(doc, ancestors[ai])
			if di >= len(positions) || rec.Start < positions[di] {
				for len(stack) > 0 && stack[len(stack)-1].end < rec.Start {
					pop()
				}
				stack = append(stack, frame{ord: ancestors[ai], end: rec.End})
				ai++
				continue
			}
		}
		pos := positions[di]
		di++
		for len(stack) > 0 && stack[len(stack)-1].end < pos {
			pop()
		}
		if len(stack) > 0 {
			stack[len(stack)-1].count++
		}
	}
	for len(stack) > 0 {
		pop()
	}
	// Pops are postorder; grouped structural-join output is conventionally
	// in document order of the ancestors.
	sort.Slice(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	return out, nil
}

// AncDescPairs performs the pair-producing variant of the structural join:
// it returns every (ancestor, descendant) ordinal pair where an element of
// alist contains an element of dlist. Both lists must be in document
// order. Used by the query compiler for structural predicates.
func AncDescPairs(acc *storage.Accessor, doc storage.DocID, alist, dlist []int32) [][2]int32 {
	out, _ := AncDescPairsGuarded(acc, doc, alist, dlist, nil)
	return out
}

// AncDescPairsGuarded is AncDescPairs with a cooperative guard, checked
// once per merged list element — the loop scans both full input lists, so
// an unguarded run over a large document cannot be cancelled or budgeted.
func AncDescPairsGuarded(acc *storage.Accessor, doc storage.DocID, alist, dlist []int32, g *Guard) ([][2]int32, error) {
	type frame struct {
		ord int32
		end uint32
	}
	var out [][2]int32
	var stack []frame
	ai, di := 0, 0
	for ai < len(alist) || di < len(dlist) {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		if ai < len(alist) {
			rec := acc.Node(doc, alist[ai])
			if di >= len(dlist) || rec.Start < acc.Node(doc, dlist[di]).Start {
				for len(stack) > 0 && stack[len(stack)-1].end < rec.Start {
					stack = stack[:len(stack)-1]
				}
				stack = append(stack, frame{ord: alist[ai], end: rec.End})
				ai++
				continue
			}
		}
		rec := acc.Node(doc, dlist[di])
		for len(stack) > 0 && stack[len(stack)-1].end < rec.Start {
			stack = stack[:len(stack)-1]
		}
		for _, f := range stack {
			if rec.End <= f.end {
				out = append(out, [2]int32{f.ord, dlist[di]})
			}
		}
		di++
	}
	return out, nil
}

package exec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

func TestStructuralJoinCountAgainstNaive(t *testing.T) {
	idx := buildFixtureIndex(t)
	s := idx.Store()
	doc := s.DocByName("articles.xml")
	acc := storage.NewAccessor(s)

	var positions []uint32
	for _, p := range idx.Postings("search") {
		if p.Doc == doc.ID {
			positions = append(positions, p.Pos)
		}
	}
	got := StructuralJoinCount(acc, doc.ID, doc.Elements(), positions)

	// Naive containment count.
	var want []OrdCount
	for _, ord := range doc.Elements() {
		rec := doc.Nodes[ord]
		n := 0
		for _, pos := range positions {
			if pos > rec.Start && pos <= rec.End {
				n++
			}
		}
		if n > 0 {
			want = append(want, OrdCount{Ord: ord, Count: n})
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("structural join: got %v, want %v", got, want)
	}
	if len(want) == 0 {
		t.Fatalf("empty workload")
	}
}

func TestStructuralJoinSubsetAncestors(t *testing.T) {
	idx := buildFixtureIndex(t)
	s := idx.Store()
	doc := s.DocByName("articles.xml")
	acc := storage.NewAccessor(s)
	tid, _ := s.Tags.Lookup("chapter")
	chapters := doc.TagExtent(tid)
	var positions []uint32
	for _, p := range idx.Postings("search") {
		if p.Doc == doc.ID {
			positions = append(positions, p.Pos)
		}
	}
	got := StructuralJoinCount(acc, doc.ID, chapters, positions)
	// Only the third chapter contains "search" occurrences (5 of them:
	// ct, section-title, and three paragraphs — with stemming, "search"
	// appears in ct #a11, #a13, #a18, #a19, #a20).
	if len(got) != 1 {
		t.Fatalf("got %v, want exactly the third chapter", got)
	}
	if got[0].Ord != chapters[2] {
		t.Errorf("wrong chapter: %d", got[0].Ord)
	}
	if got[0].Count != 5 {
		t.Errorf("count = %d, want 5", got[0].Count)
	}
}

func TestStructuralJoinEmptyInputs(t *testing.T) {
	idx := buildFixtureIndex(t)
	s := idx.Store()
	doc := s.DocByName("articles.xml")
	acc := storage.NewAccessor(s)
	if got := StructuralJoinCount(acc, doc.ID, nil, []uint32{5, 6}); len(got) != 0 {
		t.Errorf("no ancestors should produce nothing: %v", got)
	}
	if got := StructuralJoinCount(acc, doc.ID, doc.Elements(), nil); len(got) != 0 {
		t.Errorf("no positions should produce nothing: %v", got)
	}
}

func TestAncDescPairsAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomElemTree(rng, 3+rng.Intn(30))
		s := storage.NewStore()
		id, err := s.AddTree("t", root)
		if err != nil {
			return false
		}
		doc := s.Doc(id)
		acc := storage.NewAccessor(s)
		// Random subsets as ancestor and descendant lists (document order).
		var alist, dlist []int32
		for _, ord := range doc.Elements() {
			if rng.Intn(2) == 0 {
				alist = append(alist, ord)
			}
			if rng.Intn(2) == 0 {
				dlist = append(dlist, ord)
			}
		}
		got := AncDescPairs(acc, doc.ID, alist, dlist)
		var want [][2]int32
		for _, d := range dlist {
			for _, a := range alist {
				ra, rd := doc.Nodes[a], doc.Nodes[d]
				if ra.Start < rd.Start && rd.End <= ra.End {
					want = append(want, [2]int32{a, d})
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		gotSet := map[[2]int32]bool{}
		for _, p := range got {
			gotSet[p] = true
		}
		for _, p := range want {
			if !gotSet[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStructuralJoinRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomTextTree(rng, 3+rng.Intn(25))
		s := storage.NewStore()
		id, err := s.AddTree("t", root)
		if err != nil {
			return false
		}
		doc := s.Doc(id)
		idx := index.Build(s, tokenize.New())
		acc := storage.NewAccessor(s)
		var positions []uint32
		for _, p := range idx.Postings("tix") {
			positions = append(positions, p.Pos)
		}
		got := StructuralJoinCount(acc, doc.ID, doc.Elements(), positions)
		gotMap := map[int32]int{}
		for _, oc := range got {
			gotMap[oc.Ord] = oc.Count
		}
		for _, ord := range doc.Elements() {
			rec := doc.Nodes[ord]
			n := 0
			for _, pos := range positions {
				if pos > rec.Start && pos <= rec.End {
					n++
				}
			}
			if n != gotMap[ord] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func randomElemTree(rng *rand.Rand, n int) *xmltree.Node {
	root := xmltree.NewElement("r")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xmltree.NewElement([]string{"a", "b", "c"}[rng.Intn(3)])
		parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	xmltree.Number(root)
	return root
}

func randomTextTree(rng *rand.Rand, n int) *xmltree.Node {
	root := xmltree.NewElement("r")
	nodes := []*xmltree.Node{root}
	words := []string{"tix", "xml", "db", "tix tix", "query tix"}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xmltree.NewElement([]string{"a", "b"}[rng.Intn(2)])
		parent.AppendChild(el)
		nodes = append(nodes, el)
		if rng.Intn(2) == 0 {
			el.AppendChild(xmltree.NewText(words[rng.Intn(len(words))]))
		}
	}
	xmltree.Number(root)
	return root
}

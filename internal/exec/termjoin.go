package exec

import (
	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
)

// ChildCountMode selects how TermJoin obtains the total child count a
// complex scoring function needs.
type ChildCountMode int

const (
	// ChildCountNavigate fetches the count by navigating the child list in
	// the store — "a data access to the database ... and some navigation"
	// — the plain TermJoin of the paper.
	ChildCountNavigate ChildCountMode = iota
	// ChildCountIndexed reads the count from the parent/child-count index
	// in O(1) — the Enhanced TermJoin.
	ChildCountIndexed
)

// TermJoin is the stack-based score-generating access method of Fig. 11.
// It makes a single merge pass over the per-term posting lists (ordered by
// start position), maintains the stack of currently-open ancestor
// elements, accumulates per-term occurrence counters (and, for complex
// scoring, the occurrence buffer) on each stack entry, and emits every
// element with its score when it is popped — at which point all term
// occurrences in its subtree have been seen.
type TermJoin struct {
	Index *index.Index
	Acc   *storage.Accessor
	Query TermQuery
	// ChildCounts is consulted only for complex scoring.
	ChildCounts ChildCountMode
	// FullAncestorWalk disables the stack-discipline optimization: the
	// ancestor chain of every occurrence is re-derived all the way to the
	// root instead of stopping at the deepest element already on stack.
	// Results are identical; the extra store walks are what the ablation
	// benchmark BenchmarkAblationAncestorWalk measures.
	FullAncestorWalk bool
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget: checked once per posting merged and once per emitted
	// element, so a canceled or over-budget join stops within one check
	// interval. The guard's access budget is attached to Acc at Run.
	Guard *Guard
	// Arena, when non-nil, supplies reusable run state (cursor structs,
	// the element stack and its freelist, push scratch) so repeated Runs —
	// TopKTermJoin executes one per surviving document — stay allocation-
	// free. Runs sharing an arena must not overlap; see DESIGN.md §15 for
	// the ownership rules.
	Arena *TJArena
}

// tjPush is one pending ancestor push (ord plus region end).
type tjPush struct {
	ord int32
	end uint32
}

// TJArena holds the allocation-heavy run state of a TermJoin for reuse
// across runs. The zero value is ready. An arena is owned by exactly one
// running TermJoin at a time; it holds no pooled resources that outlive it,
// so dropping it is safe at any quiescent point.
type TJArena struct {
	cursors []index.Cursor
	curPtrs []*index.Cursor
	stack   []*tjEntry
	free    []*tjEntry
	toPush  []tjPush
	chain   []tjPush
}

// tjEntry is one stack frame: an open element with the occurrence
// statistics of the part of its subtree seen so far.
type tjEntry struct {
	ord    int32
	end    uint32
	counts []int
	// Complex-scoring bookkeeping (the if(!s) sections of Fig. 11):
	occs           []scoring.Occ
	scoredChildren int   // children known to contain ≥1 occurrence
	lastText       int32 // last direct text child credited
}

// Run executes the term join, emitting every element that contains at
// least one occurrence of any query term, with its score. Elements are
// emitted in pop order (postorder per document, documents in id order).
func (t *TermJoin) Run(emit Emit) error {
	if err := t.Query.validate("TermJoin"); err != nil {
		return err
	}
	t.Guard.Attach(t.Acc)
	if err := t.Guard.Check(); err != nil {
		return err
	}
	nTerms := len(t.Query.Terms)
	var terms []string
	if t.Query.Lists == nil && t.Query.PostingLists == nil {
		// Only the index-lookup path reads the normalized terms; skipping
		// the remap keeps repeated list-fed runs (top-k) allocation-free.
		terms = normalizeTerms(t.Index, t.Query.Terms)
	}
	ar := t.Arena
	if ar == nil {
		ar = &TJArena{}
	}
	if cap(ar.cursors) < nTerms {
		ar.cursors = make([]index.Cursor, nTerms)
		ar.curPtrs = make([]*index.Cursor, nTerms)
	}
	cs := ar.cursors[:nTerms]
	cursors := ar.curPtrs[:nTerms]
	for i := 0; i < nTerms; i++ {
		t.Query.list(t.Index, terms, i).Reset(&cs[i])
		cursors[i] = &cs[i]
	}

	stack := ar.stack[:0]
	curDoc := storage.DocID(-1)

	// Freelist: stack frames are recycled so the whole merge allocates
	// O(max depth) entries rather than one per element — and with a shared
	// arena they survive across runs entirely.
	free := ar.free
	defer func() {
		ar.stack = stack[:0]
		ar.free = free
	}()
	alloc := func(ord int32, end uint32) *tjEntry {
		if n := len(free); n > 0 {
			e := free[n-1]
			free = free[:n-1]
			e.ord, e.end = ord, end
			if len(e.counts) != nTerms {
				e.counts = make([]int, nTerms)
			} else {
				for i := range e.counts {
					e.counts[i] = 0
				}
			}
			e.occs = e.occs[:0]
			e.scoredChildren = 0
			e.lastText = storage.NoNode
			return e
		}
		return &tjEntry{ord: ord, end: end, counts: make([]int, nTerms), lastText: storage.NoNode}
	}

	pop := func() error {
		popped := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			for i, c := range popped.counts {
				top.counts[i] += c
			}
			if t.Query.Complex {
				top.occs = append(top.occs, popped.occs...)
				top.scoredChildren++
			}
		}
		var score float64
		if t.Query.Complex {
			total := t.totalChildren(curDoc, popped.ord)
			score = t.Query.Scorer.Complex(popped.counts, popped.occs, popped.scoredChildren, total)
		} else {
			score = t.Query.Scorer.Simple(popped.counts)
		}
		if err := t.Guard.NoteEmit(); err != nil {
			return err
		}
		emit(ScoredNode{Doc: curDoc, Ord: popped.ord, Score: score})
		free = append(free, popped)
		return nil
	}
	flush := func() error {
		for len(stack) > 0 {
			if err := pop(); err != nil {
				return err
			}
		}
		return nil
	}

	// Pending-push scratch, reused across occurrences (and, via the arena,
	// across runs): declaring these in the loop body would allocate once
	// per merged posting.
	toPush, chain := ar.toPush, ar.chain
	defer func() {
		ar.toPush = toPush[:0]
		ar.chain = chain[:0]
	}()

	for {
		if err := t.Guard.Tick(); err != nil {
			return err
		}
		// t-min: the cursor with the smallest (doc, pos).
		best := -1
		for i, c := range cursors {
			if !c.Valid() {
				continue
			}
			if best < 0 || c.Cur().Less(cursors[best].Cur()) {
				best = i
			}
		}
		if best < 0 {
			return flush()
		}
		p := cursors[best].Cur()
		cursors[best].Advance()

		if p.Doc != curDoc {
			if err := flush(); err != nil {
				return err
			}
			curDoc = p.Doc
		}
		// Close elements that end before this occurrence.
		for len(stack) > 0 && stack[len(stack)-1].end < p.Pos {
			if err := pop(); err != nil {
				return err
			}
		}
		// Push the ancestors of the occurrence's text node that are not yet
		// on stack (outermost first). The stack always holds a contiguous
		// ancestor chain, so the walk stops at the first element already on
		// top. Each element is pushed exactly once over the whole run; the
		// node record read during the walk supplies the region end, so no
		// second store access is needed at push time.
		toPush = toPush[:0]
		a := t.Acc.Node(p.Doc, p.Node).Parent
		if t.FullAncestorWalk {
			// Ablation mode: derive the entire chain to the root on every
			// occurrence, then discard the part already on stack.
			chain = chain[:0]
			for a != storage.NoNode {
				rec := t.Acc.Node(p.Doc, a)
				chain = append(chain, tjPush{a, rec.End})
				a = rec.Parent
			}
			for _, anc := range chain {
				if len(stack) > 0 && stack[len(stack)-1].ord == anc.ord {
					break
				}
				toPush = append(toPush, anc)
			}
		} else {
			for a != storage.NoNode && (len(stack) == 0 || stack[len(stack)-1].ord != a) {
				rec := t.Acc.Node(p.Doc, a)
				toPush = append(toPush, tjPush{a, rec.End})
				a = rec.Parent
			}
		}
		for i := len(toPush) - 1; i >= 0; i-- {
			stack = append(stack, alloc(toPush[i].ord, toPush[i].end))
		}
		// Credit the occurrence to the deepest open element.
		top := stack[len(stack)-1]
		top.counts[best]++
		if t.Query.Complex {
			top.occs = append(top.occs, scoring.Occ{Term: best, Pos: p.Pos, Node: p.Node})
			if top.lastText != p.Node {
				top.scoredChildren++
				top.lastText = p.Node
			}
		}
	}
}

func (t *TermJoin) totalChildren(doc storage.DocID, ord int32) int {
	switch t.ChildCounts {
	case ChildCountIndexed:
		_, c := t.Acc.ChildCountIndexed(doc, ord)
		return int(c)
	default:
		return int(t.Acc.ChildCountNav(doc, ord))
	}
}

// RunTermJoin is a convenience wrapper: it builds and runs a TermJoin over
// idx with a fresh accessor and returns the collected results.
func RunTermJoin(idx *index.Index, q TermQuery, mode ChildCountMode) ([]ScoredNode, error) {
	tj := &TermJoin{
		Index:       idx,
		Acc:         storage.NewAccessor(idx.Store()),
		Query:       q,
		ChildCounts: mode,
	}
	return Collect(tj.Run)
}

package exec

import (
	"math"
	"sort"
	"testing"

	"repro/internal/fixture"
	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// buildFixtureIndex loads the paper's Figure 1 database.
func buildFixtureIndex(t testing.TB) *index.Index {
	t.Helper()
	s := storage.NewStore()
	if _, err := s.AddTree("articles.xml", mustParse(fixture.ArticlesXML)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTree("reviews.xml", mustParse(fixture.ReviewsXML)); err != nil {
		t.Fatal(err)
	}
	return index.Build(s, tokenize.NewStemming())
}

// buildSynthIndex generates a small corpus with control terms.
func buildSynthIndex(t testing.TB, ctl map[string]int, seed int64) *index.Index {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.ControlTerms = ctl
	c, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore()
	if _, err := s.AddTree("corpus.xml", c.Root); err != nil {
		t.Fatal(err)
	}
	return index.Build(s, tokenize.New())
}

// key identifies a result element.
type key struct {
	doc storage.DocID
	ord int32
}

func asMap(t testing.TB, nodes []ScoredNode) map[key]float64 {
	t.Helper()
	m := make(map[key]float64, len(nodes))
	for _, n := range nodes {
		k := key{n.Doc, n.Ord}
		if _, dup := m[k]; dup {
			t.Fatalf("duplicate emission for %v", k)
		}
		m[k] = n.Score
	}
	return m
}

func sameResults(t *testing.T, name string, got, want map[key]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d results, want %d", name, len(got), len(want))
	}
	for k, ws := range want {
		gs, ok := got[k]
		if !ok {
			t.Errorf("%s: missing result %v", name, k)
			continue
		}
		if math.Abs(gs-ws) > 1e-9 {
			t.Errorf("%s: score for %v = %v, want %v", name, k, gs, ws)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected result %v", name, k)
		}
	}
}

// naiveSimple recomputes the simple term-join from first principles: for
// every element, count term occurrences in its subtree via the tokenizer.
func naiveSimple(idx *index.Index, terms []string, scorer Scorer) map[key]float64 {
	out := map[key]float64{}
	tok := idx.Tokenizer()
	for _, doc := range idx.Store().Docs() {
		acc := storage.NewAccessor(idx.Store())
		for _, ord := range doc.Elements() {
			text := acc.SubtreeText(doc.ID, ord)
			counts := make([]int, len(terms))
			any := false
			for i, term := range terms {
				counts[i] = tok.Count(text, term)
				if counts[i] > 0 {
					any = true
				}
			}
			if any {
				out[key{doc.ID, ord}] = scorer.Simple(counts)
			}
		}
	}
	return out
}

// naiveComplex recomputes the complex term-join from first principles
// using index postings for occurrence positions.
func naiveComplex(idx *index.Index, terms []string, scorer Scorer) map[key]float64 {
	out := map[key]float64{}
	norm := normalizeTerms(idx, terms)
	for _, doc := range idx.Store().Docs() {
		// All occurrences in this doc.
		var occs []scoring.Occ
		for ti, term := range norm {
			for _, p := range idx.Postings(term) {
				if p.Doc == doc.ID {
					occs = append(occs, scoring.Occ{Term: ti, Pos: p.Pos, Node: p.Node})
				}
			}
		}
		sort.Slice(occs, func(i, j int) bool { return occs[i].Pos < occs[j].Pos })
		for _, ord := range doc.Elements() {
			rec := doc.Nodes[ord]
			var sub []scoring.Occ
			counts := make([]int, len(terms))
			for _, o := range occs {
				if o.Pos > rec.Start && o.Pos <= rec.End {
					sub = append(sub, o)
					counts[o.Term]++
				}
			}
			if len(sub) == 0 {
				continue
			}
			// Children with at least one occurrence.
			nz, total := 0, 0
			child := rec.FirstChild
			for child != storage.NoNode {
				crec := doc.Nodes[child]
				total++
				for _, o := range sub {
					if o.Pos >= crec.Start && o.Pos <= crec.End {
						nz++
						break
					}
				}
				child = crec.NextSibling
			}
			out[key{doc.ID, ord}] = scorer.Complex(counts, sub, nz, total)
		}
	}
	return out
}

func runAll(t *testing.T, idx *index.Index, q TermQuery) (tj, comp1, comp2, meet map[key]float64) {
	t.Helper()
	s := idx.Store()
	got, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	tj = asMap(t, got)
	c1 := &Comp1{Index: idx, Acc: storage.NewAccessor(s), Query: q}
	r1, err := Collect(c1.Run)
	if err != nil {
		t.Fatal(err)
	}
	comp1 = asMap(t, r1)
	c2 := &Comp2{Index: idx, Acc: storage.NewAccessor(s), Query: q}
	r2, err := Collect(c2.Run)
	if err != nil {
		t.Fatal(err)
	}
	comp2 = asMap(t, r2)
	gm := &GenMeet{Index: idx, Acc: storage.NewAccessor(s), Query: q}
	rm, err := Collect(gm.Run)
	if err != nil {
		t.Fatal(err)
	}
	meet = asMap(t, rm)
	return
}

func TestTermJoinSimpleOnFixture(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{
		Terms:  []string{"search", "retrieval"},
		Scorer: DefaultScorer{SimpleFn: scoring.SimpleScorer{Weights: []float64{0.8, 0.6}}},
	}
	got, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSimple(idx, q.Terms, q.Scorer)
	sameResults(t, "TermJoin(simple)", asMap(t, got), want)
	if len(want) == 0 {
		t.Fatalf("empty workload — fixture broken")
	}
}

func TestBaselinesMatchTermJoinSimple(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{
		Terms:  []string{"search", "engine", "internet"},
		Scorer: DefaultScorer{},
	}
	tj, c1, c2, gm := runAll(t, idx, q)
	want := naiveSimple(idx, q.Terms, q.Scorer)
	sameResults(t, "TermJoin", tj, want)
	sameResults(t, "Comp1", c1, want)
	sameResults(t, "Comp2", c2, want)
	sameResults(t, "GenMeet", gm, want)
}

func TestBaselinesMatchTermJoinComplex(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{
		Terms:   []string{"search", "engine"},
		Complex: true,
		Scorer:  DefaultScorer{},
	}
	tj, c1, c2, gm := runAll(t, idx, q)
	want := naiveComplex(idx, q.Terms, q.Scorer)
	sameResults(t, "TermJoin(complex)", tj, want)
	sameResults(t, "Comp1(complex)", c1, want)
	sameResults(t, "Comp2(complex)", c2, want)
	sameResults(t, "GenMeet(complex)", gm, want)
}

func TestEnhancedTermJoinMatchesPlain(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{
		Terms:   []string{"information", "retrieval"},
		Complex: true,
		Scorer:  DefaultScorer{},
	}
	plain, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	enhanced, err := RunTermJoin(idx, q, ChildCountIndexed)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "Enhanced", asMap(t, enhanced), asMap(t, plain))
}

func TestEnhancedUsesFewerStoreReads(t *testing.T) {
	idx := buildSynthIndex(t, map[string]int{"ctla": 150, "ctlb": 150}, 5)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Complex: true, Scorer: DefaultScorer{}}
	plain := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q, ChildCounts: ChildCountNavigate}
	if _, err := Collect(plain.Run); err != nil {
		t.Fatal(err)
	}
	enh := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q, ChildCounts: ChildCountIndexed}
	if _, err := Collect(enh.Run); err != nil {
		t.Fatal(err)
	}
	if enh.Acc.Stats.NodeReads >= plain.Acc.Stats.NodeReads {
		t.Errorf("enhanced should read less: %d vs %d", enh.Acc.Stats.NodeReads, plain.Acc.Stats.NodeReads)
	}
	if plain.Acc.Stats.NavSteps == 0 {
		t.Errorf("plain TermJoin should navigate for child counts")
	}
	if enh.Acc.Stats.NavSteps != 0 {
		t.Errorf("enhanced TermJoin must not navigate (nav=%d)", enh.Acc.Stats.NavSteps)
	}
}

func TestAllMethodsAgreeOnSynthCorpus(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		idx := buildSynthIndex(t, map[string]int{"ctla": 40, "ctlb": 25, "ctlc": 10}, seed)
		for _, complex := range []bool{false, true} {
			q := TermQuery{Terms: []string{"ctla", "ctlb", "ctlc"}, Complex: complex, Scorer: DefaultScorer{}}
			tj, c1, c2, gm := runAll(t, idx, q)
			var want map[key]float64
			if complex {
				want = naiveComplex(idx, q.Terms, q.Scorer)
			} else {
				want = naiveSimple(idx, q.Terms, q.Scorer)
			}
			sameResults(t, "TermJoin", tj, want)
			sameResults(t, "Comp1", c1, want)
			sameResults(t, "Comp2", c2, want)
			sameResults(t, "GenMeet", gm, want)
			if len(tj) == 0 {
				t.Fatalf("seed %d complex=%v: no results", seed, complex)
			}
		}
	}
}

func TestTermJoinMultiDocument(t *testing.T) {
	s := storage.NewStore()
	for _, d := range []struct{ name, src string }{
		{"a.xml", `<a><p>tix rocks</p></a>`},
		{"b.xml", `<b><q><p>tix tix</p></q></b>`},
		{"c.xml", `<c>no match here</c>`},
	} {
		if _, err := s.AddTree(d.name, mustParse(d.src)); err != nil {
			t.Fatal(err)
		}
	}
	idx := index.Build(s, tokenize.New())
	q := TermQuery{Terms: []string{"tix"}, Scorer: DefaultScorer{}}
	got, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSimple(idx, q.Terms, q.Scorer)
	sameResults(t, "multidoc", asMap(t, got), want)
	// Results span two documents: a (2 elements) and b (3 elements).
	if len(got) != 5 {
		t.Errorf("results = %d, want 5", len(got))
	}
}

func TestTermJoinErrors(t *testing.T) {
	idx := buildFixtureIndex(t)
	if _, err := RunTermJoin(idx, TermQuery{Scorer: DefaultScorer{}}, ChildCountNavigate); err == nil {
		t.Errorf("no terms should error")
	}
	if _, err := RunTermJoin(idx, TermQuery{Terms: []string{"x"}}, ChildCountNavigate); err == nil {
		t.Errorf("no scorer should error")
	}
	c1 := &Comp1{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: TermQuery{}}
	if err := c1.Run(func(ScoredNode) {}); err == nil {
		t.Errorf("Comp1 without terms should error")
	}
	c2 := &Comp2{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: TermQuery{}}
	if err := c2.Run(func(ScoredNode) {}); err == nil {
		t.Errorf("Comp2 without terms should error")
	}
	gm := &GenMeet{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: TermQuery{}}
	if err := gm.Run(func(ScoredNode) {}); err == nil {
		t.Errorf("GenMeet without terms should error")
	}
}

func TestTermJoinRejectsMismatchedPostingLists(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{
		Terms:        []string{"a", "b"},
		PostingLists: [][]index.Posting{nil}, // 1 list for 2 terms
		Scorer:       DefaultScorer{},
	}
	if _, err := RunTermJoin(idx, q, ChildCountNavigate); err == nil {
		t.Errorf("mismatched posting lists accepted")
	}
	c1 := &Comp1{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	if err := c1.Run(func(ScoredNode) {}); err == nil {
		t.Errorf("Comp1 accepted mismatched posting lists")
	}
}

func TestTermJoinUnknownTerm(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{Terms: []string{"zzzznotthere"}, Scorer: DefaultScorer{}}
	got, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("unknown term produced %d results", len(got))
	}
	// Mixed known/unknown still works.
	q = TermQuery{Terms: []string{"zzzznotthere", "search"}, Scorer: DefaultScorer{}}
	got, err = RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSimple(idx, q.Terms, q.Scorer)
	sameResults(t, "mixed", asMap(t, got), want)
}

func TestFullAncestorWalkSameResultsMoreReads(t *testing.T) {
	idx := buildSynthIndex(t, map[string]int{"ctla": 200, "ctlb": 120}, 8)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Scorer: DefaultScorer{}}
	fast := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q}
	rFast, err := Collect(fast.Run)
	if err != nil {
		t.Fatal(err)
	}
	slow := &TermJoin{Index: idx, Acc: storage.NewAccessor(idx.Store()), Query: q, FullAncestorWalk: true}
	rSlow, err := Collect(slow.Run)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FullAncestorWalk", asMap(t, rSlow), asMap(t, rFast))
	if slow.Acc.Stats.NodeReads <= fast.Acc.Stats.NodeReads {
		t.Errorf("ablation mode should read more: %d vs %d",
			slow.Acc.Stats.NodeReads, fast.Acc.Stats.NodeReads)
	}
}

func TestTermJoinEmitsPostorderPerDoc(t *testing.T) {
	idx := buildFixtureIndex(t)
	q := TermQuery{Terms: []string{"search"}, Scorer: DefaultScorer{}}
	got, err := RunTermJoin(idx, q, ChildCountNavigate)
	if err != nil {
		t.Fatal(err)
	}
	// Within a document, an element must be emitted after all emitted
	// elements in its subtree (pop order).
	doc := idx.Store().DocByName("articles.xml")
	var lastEnd uint32
	for _, n := range got {
		if n.Doc != doc.ID {
			continue
		}
		end := doc.Nodes[n.Ord].End
		if end < lastEnd {
			t.Fatalf("emission not in pop order: end %d after %d", end, lastEnd)
		}
		lastEnd = end
	}
}

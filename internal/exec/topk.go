package exec

import (
	"container/heap"
	"sort"
)

// TopK retains the k highest-scoring elements of a scored-node stream — the
// physical evaluation of the Threshold operator's K condition, using the
// bounded-heap technique the paper cites for global ranking [8, 5]. The
// zero value is unusable; create with NewTopK.
type TopK struct {
	k int
	h scoredHeap
}

// NewTopK returns a TopK keeping the k best elements.
func NewTopK(k int) *TopK {
	return &TopK{k: k}
}

// Offer considers one element.
func (t *TopK) Offer(n ScoredNode) {
	if t.k <= 0 {
		return
	}
	if t.h.Len() < t.k {
		heap.Push(&t.h, n)
		return
	}
	if n.Score > t.h[0].Score {
		t.h[0] = n
		heap.Fix(&t.h, 0)
	}
}

// Results returns the retained elements in descending score order.
func (t *TopK) Results() []ScoredNode {
	out := append([]ScoredNode(nil), t.h...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Doc != out[j].Doc {
			return out[i].Doc < out[j].Doc
		}
		return out[i].Ord < out[j].Ord
	})
	return out
}

// Emit returns an Emit that feeds the TopK, for composing with the
// score-generating access methods.
func (t *TopK) Emit() Emit {
	return func(n ScoredNode) { t.Offer(n) }
}

type scoredHeap []ScoredNode

func (h scoredHeap) Len() int            { return len(h) }
func (h scoredHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h scoredHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x interface{}) { *h = append(*h, x.(ScoredNode)) }
func (h *scoredHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FilterMinScore returns an Emit that forwards only elements with score
// strictly greater than min — the Threshold operator's V condition.
func FilterMinScore(min float64, next Emit) Emit {
	return func(n ScoredNode) {
		if n.Score > min {
			next(n)
		}
	}
}

// ScoreHistogram is the auxiliary data Sec. 5.3 proposes for Pick: an
// equi-width histogram of data IR-node scores that lets users (and the
// Pick evaluator) turn a fraction — "the top 10% most relevant nodes" —
// into a concrete relevance-score threshold without sorting the input.
type ScoreHistogram struct {
	min, max float64
	buckets  []int
	total    int
}

// NewScoreHistogram builds a histogram with the given number of buckets
// over the scores of nodes. At least one bucket is always allocated.
func NewScoreHistogram(nodes []ScoredNode, buckets int) *ScoreHistogram {
	if buckets < 1 {
		buckets = 1
	}
	h := &ScoreHistogram{buckets: make([]int, buckets)}
	if len(nodes) == 0 {
		return h
	}
	h.min, h.max = nodes[0].Score, nodes[0].Score
	for _, n := range nodes {
		if n.Score < h.min {
			h.min = n.Score
		}
		if n.Score > h.max {
			h.max = n.Score
		}
	}
	for _, n := range nodes {
		h.buckets[h.bucket(n.Score)]++
		h.total++
	}
	return h
}

func (h *ScoreHistogram) bucket(s float64) int {
	if h.max == h.min {
		return 0
	}
	b := int(float64(len(h.buckets)) * (s - h.min) / (h.max - h.min))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Total returns the number of recorded scores.
func (h *ScoreHistogram) Total() int { return h.total }

// ThresholdForTopFraction returns a score threshold such that
// approximately frac of the recorded nodes score at or above it (resolution
// limited by the bucket width). frac outside (0,1] returns the minimum.
func (h *ScoreHistogram) ThresholdForTopFraction(frac float64) float64 {
	if h.total == 0 || frac <= 0 {
		return h.max
	}
	if frac >= 1 {
		return h.min
	}
	want := int(frac * float64(h.total))
	if want < 1 {
		want = 1
	}
	seen := 0
	for i := len(h.buckets) - 1; i >= 0; i-- {
		seen += h.buckets[i]
		if seen >= want {
			width := (h.max - h.min) / float64(len(h.buckets))
			return h.min + float64(i)*width
		}
	}
	return h.min
}

// CountAbove returns the number of recorded scores in buckets at or above
// the bucket containing s — the estimate Pick uses to size its candidate
// set without a scan.
func (h *ScoreHistogram) CountAbove(s float64) int {
	if h.total == 0 {
		return 0
	}
	n := 0
	for i := h.bucket(s); i < len(h.buckets); i++ {
		n += h.buckets[i]
	}
	return n
}

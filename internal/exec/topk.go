package exec

import (
	"container/heap"
	"sort"
)

// RankedBefore reports whether a ranks ahead of b in the result ordering
// contract shared by every ranked entry point: score descending, then
// document ascending, then start ordinal ascending. Because (Doc, Ord)
// identifies an element uniquely, the order is total, which makes any
// top-k selection a pure function of the result *set* — independent of
// emission order, and therefore identical across sequential, parallel and
// sharded evaluation.
func RankedBefore(a, b ScoredNode) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.Ord < b.Ord
}

// SortRanked sorts nodes in place by the RankedBefore contract.
func SortRanked(nodes []ScoredNode) {
	sort.Slice(nodes, func(i, j int) bool { return RankedBefore(nodes[i], nodes[j]) })
}

// TopK retains the k best elements of a scored-node stream under the
// RankedBefore total order — the physical evaluation of the Threshold
// operator's K condition, using the bounded-heap technique the paper cites
// for global ranking [8, 5]. Ties at the k-th score are broken by the same
// (doc, ord) contract, so the retained set does not depend on the order
// elements were offered. The zero value is unusable; create with NewTopK.
type TopK struct {
	k int
	h scoredHeap
}

// NewTopK returns a TopK keeping the k best elements.
func NewTopK(k int) *TopK {
	return &TopK{k: k}
}

// Offer considers one element.
func (t *TopK) Offer(n ScoredNode) {
	if t.k <= 0 {
		return
	}
	if t.h.Len() < t.k {
		heap.Push(&t.h, n)
		return
	}
	if RankedBefore(n, t.h[0]) {
		t.h[0] = n
		heap.Fix(&t.h, 0)
	}
}

// Threshold returns the k-th best score when the heap is full — the
// pruning cut-off — and false while fewer than k elements are retained.
func (t *TopK) Threshold() (float64, bool) {
	if t.k <= 0 || t.h.Len() < t.k {
		return 0, false
	}
	return t.h[0].Score, true
}

// Results returns the retained elements in the RankedBefore order.
func (t *TopK) Results() []ScoredNode {
	out := append([]ScoredNode(nil), t.h...)
	SortRanked(out)
	return out
}

// Emit returns an Emit that feeds the TopK, for composing with the
// score-generating access methods.
func (t *TopK) Emit() Emit {
	return func(n ScoredNode) { t.Offer(n) }
}

// scoredHeap is a min-heap under RankedBefore: the root is the retained
// element that ranks last, i.e. the first to be displaced.
type scoredHeap []ScoredNode

func (h scoredHeap) Len() int            { return len(h) }
func (h scoredHeap) Less(i, j int) bool  { return RankedBefore(h[j], h[i]) }
func (h scoredHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x interface{}) { *h = append(*h, x.(ScoredNode)) }
func (h *scoredHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FilterMinScore returns an Emit that forwards only elements with score
// strictly greater than min — the Threshold operator's V condition.
func FilterMinScore(min float64, next Emit) Emit {
	return func(n ScoredNode) {
		if n.Score > min {
			next(n)
		}
	}
}

// ScoreHistogram is the auxiliary data Sec. 5.3 proposes for Pick: an
// equi-width histogram of data IR-node scores that lets users (and the
// Pick evaluator) turn a fraction — "the top 10% most relevant nodes" —
// into a concrete relevance-score threshold without sorting the input.
type ScoreHistogram struct {
	min, max float64
	buckets  []int
	total    int
}

// NewScoreHistogram builds a histogram with the given number of buckets
// over the scores of nodes. At least one bucket is always allocated.
func NewScoreHistogram(nodes []ScoredNode, buckets int) *ScoreHistogram {
	if buckets < 1 {
		buckets = 1
	}
	h := &ScoreHistogram{buckets: make([]int, buckets)}
	if len(nodes) == 0 {
		return h
	}
	h.min, h.max = nodes[0].Score, nodes[0].Score
	for _, n := range nodes {
		if n.Score < h.min {
			h.min = n.Score
		}
		if n.Score > h.max {
			h.max = n.Score
		}
	}
	for _, n := range nodes {
		h.buckets[h.bucket(n.Score)]++
		h.total++
	}
	return h
}

func (h *ScoreHistogram) bucket(s float64) int {
	if h.max == h.min {
		return 0
	}
	b := int(float64(len(h.buckets)) * (s - h.min) / (h.max - h.min))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Total returns the number of recorded scores.
func (h *ScoreHistogram) Total() int { return h.total }

// ThresholdForTopFraction returns a score threshold such that
// approximately frac of the recorded nodes score at or above it (resolution
// limited by the bucket width). frac outside (0,1] returns the minimum.
func (h *ScoreHistogram) ThresholdForTopFraction(frac float64) float64 {
	if h.total == 0 || frac <= 0 {
		return h.max
	}
	if frac >= 1 {
		return h.min
	}
	want := int(frac * float64(h.total))
	if want < 1 {
		want = 1
	}
	seen := 0
	for i := len(h.buckets) - 1; i >= 0; i-- {
		seen += h.buckets[i]
		if seen >= want {
			width := (h.max - h.min) / float64(len(h.buckets))
			return h.min + float64(i)*width
		}
	}
	return h.min
}

// CountAbove returns the number of recorded scores in buckets at or above
// the bucket containing s — the estimate Pick uses to size its candidate
// set without a scan.
func (h *ScoreHistogram) CountAbove(s float64) int {
	if h.total == 0 {
		return 0
	}
	n := 0
	for i := h.bucket(s); i < len(h.buckets); i++ {
		n += h.buckets[i]
	}
	return n
}

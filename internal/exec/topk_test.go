package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	for i, s := range []float64{1, 5, 3, 9, 2, 7} {
		tk.Offer(ScoredNode{Ord: int32(i), Score: s})
	}
	got := tk.Results()
	if len(got) != 3 {
		t.Fatalf("results = %d", len(got))
	}
	if got[0].Score != 9 || got[1].Score != 7 || got[2].Score != 5 {
		t.Errorf("top3 = %v", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Offer(ScoredNode{Ord: 1, Score: 2})
	tk.Offer(ScoredNode{Ord: 2, Score: 1})
	got := tk.Results()
	if len(got) != 2 || got[0].Score != 2 {
		t.Errorf("results = %v", got)
	}
}

func TestTopKZero(t *testing.T) {
	tk := NewTopK(0)
	tk.Offer(ScoredNode{Score: 5})
	if len(tk.Results()) != 0 {
		t.Errorf("k=0 should keep nothing")
	}
}

func TestTopKEmitAdapter(t *testing.T) {
	tk := NewTopK(1)
	emit := tk.Emit()
	emit(ScoredNode{Ord: 1, Score: 1})
	emit(ScoredNode{Ord: 2, Score: 2})
	got := tk.Results()
	if len(got) != 1 || got[0].Ord != 2 {
		t.Errorf("results = %v", got)
	}
}

func TestQuickTopKMatchesSort(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		k := int(kRaw%20) + 1
		scores := make([]float64, n)
		tk := NewTopK(k)
		for i := range scores {
			scores[i] = float64(rng.Intn(50)) // duplicates likely
			tk.Offer(ScoredNode{Ord: int32(i), Score: scores[i]})
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		got := tk.Results()
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i, g := range got {
			if g.Score != scores[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterMinScore(t *testing.T) {
	var kept []ScoredNode
	emit := FilterMinScore(2.0, func(n ScoredNode) { kept = append(kept, n) })
	emit(ScoredNode{Ord: 1, Score: 1.0})
	emit(ScoredNode{Ord: 2, Score: 2.0}) // strictly greater required
	emit(ScoredNode{Ord: 3, Score: 2.5})
	if len(kept) != 1 || kept[0].Ord != 3 {
		t.Errorf("kept = %v", kept)
	}
}

func TestScoreHistogram(t *testing.T) {
	var nodes []ScoredNode
	for i := 0; i < 100; i++ {
		nodes = append(nodes, ScoredNode{Ord: int32(i), Score: float64(i)})
	}
	h := NewScoreHistogram(nodes, 10)
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	// Threshold for the top 10% should be around 90.
	th := h.ThresholdForTopFraction(0.1)
	if th < 80 || th > 95 {
		t.Errorf("top-10%% threshold = %f, want ≈ 90", th)
	}
	// Count above that threshold covers roughly the top bucket.
	if got := h.CountAbove(th); got < 5 || got > 25 {
		t.Errorf("CountAbove = %d", got)
	}
	if h.ThresholdForTopFraction(1.5) != 0 {
		t.Errorf("frac>1 should return min")
	}
	if h.ThresholdForTopFraction(0) != 99 {
		t.Errorf("frac<=0 should return max")
	}
}

func TestScoreHistogramDegenerate(t *testing.T) {
	h := NewScoreHistogram(nil, 8)
	if h.Total() != 0 || h.CountAbove(1) != 0 {
		t.Errorf("empty histogram misbehaves")
	}
	// All-equal scores land in one bucket.
	same := []ScoredNode{{Score: 3}, {Score: 3}, {Score: 3}}
	h = NewScoreHistogram(same, 4)
	if h.CountAbove(3) != 3 {
		t.Errorf("equal scores: CountAbove = %d", h.CountAbove(3))
	}
	if th := h.ThresholdForTopFraction(0.5); th != 3 {
		t.Errorf("equal scores threshold = %f", th)
	}
	// Bucket count below 1 is clamped.
	h = NewScoreHistogram(same, 0)
	if h.Total() != 3 {
		t.Errorf("clamped bucket histogram broken")
	}
}

func TestHistogramThresholdApproximatesExactQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var nodes []ScoredNode
	for i := 0; i < 5000; i++ {
		nodes = append(nodes, ScoredNode{Ord: int32(i), Score: rng.Float64() * 10})
	}
	h := NewScoreHistogram(nodes, 100)
	for _, frac := range []float64{0.05, 0.1, 0.25, 0.5} {
		th := h.ThresholdForTopFraction(frac)
		// Exact count of nodes >= th should be within a bucket's worth of
		// the requested fraction.
		n := 0
		for _, nd := range nodes {
			if nd.Score >= th {
				n++
			}
		}
		want := frac * float64(len(nodes))
		if float64(n) < want*0.8 || float64(n) > want*1.3+float64(len(nodes))/100 {
			t.Errorf("frac %.2f: threshold %f selects %d nodes, want ≈ %.0f", frac, th, n, want)
		}
	}
}

package exec

import (
	"sort"

	"repro/internal/index"
	"repro/internal/postings"
	"repro/internal/storage"
)

// TopKTermJoin evaluates "TermJoin then keep the k best elements" with
// early termination, in the spirit of the top-k techniques the paper cites
// for Threshold evaluation (Chang & Hwang's minimal probing and Bruno et
// al.'s upper-bound pruning, Sec. 5.3 [8, 5]).
//
// It derives an upper bound on the score any element of a document can
// attain — for the simple scoring function the weighted whole-document
// term counts; for the complex function that base plus the maximal
// proximity bonus (each adjacent occurrence pair contributes at most
// 1/(1+1), and the child ratio is at most 1) — and skips every document
// whose bound cannot displace the current k-th best score.
//
// When every posting list is block-compressed the bounds come straight
// from the skip tables (WAND-style block-max pruning): the document space
// is swept in ascending order as a sequence of intervals over which the
// set of candidate blocks is constant, each interval is bounded by the
// sum of its blocks' MaxFreq statistics, and intervals that cannot beat
// the k-th score are skipped without decoding a single block. Documents
// inside a surviving interval are still bounded exactly (via a
// document-stream-only scan) before the full per-document TermJoin runs.
// The result is exactly the full TermJoin's top k in both modes.
type TopKTermJoin struct {
	Index *index.Index
	Query TermQuery
	K     int
	// ChildCounts as in TermJoin (complex scoring only).
	ChildCounts ChildCountMode
	// DocsEvaluated reports, after Run, how many documents were actually
	// scored (the early-termination payoff).
	DocsEvaluated int
	// BlocksSkipped reports, after Run, how many encoded blocks the
	// block-max sweep passed over without decoding.
	BlocksSkipped int
	// DisablePruning evaluates every candidate document — the oracle the
	// differential tests compare the pruned paths against.
	DisablePruning bool
	// Bound overrides the per-document upper bound: given the per-term
	// whole-document counts and the total occurrence count, it must return
	// a value ≥ any element score in that document. Nil uses the default
	// described above. A custom Bound forces the document-at-a-time path
	// (block-max statistics only bound the default).
	Bound func(counts []int, totalOcc int) float64
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked during the bound-building pass, between documents,
	// and inside every per-document TermJoin.
	Guard *Guard
}

// Run evaluates and returns the top-k elements, best first.
func (t *TopKTermJoin) Run() ([]ScoredNode, error) {
	if t.K <= 0 {
		return nil, nil
	}
	if err := t.Query.validate("TopKTermJoin"); err != nil {
		return nil, err
	}
	if err := t.Guard.Check(); err != nil {
		return nil, err
	}
	t.DocsEvaluated = 0
	t.BlocksSkipped = 0

	terms := normalizeTerms(t.Index, t.Query.Terms)
	lists := make([]index.List, len(terms))
	blocked := true
	for i := range terms {
		lists[i] = t.Query.list(t.Index, terms, i)
		if lists[i].Len() > 0 && lists[i].Blocks() == nil {
			blocked = false
		}
	}
	tk := NewTopK(t.K)
	// One evaluation context for the whole run: the accessor, the inner
	// TermJoin with its arena, the per-document sub-list scratch and the
	// heap's emit closure are all shared across every document evaluated,
	// so the per-document cost is the join itself, not its setup.
	q := t.Query
	q.Lists = nil
	q.PostingLists = nil
	ev := &topkEval{
		lists: lists,
		sub:   make([]index.List, len(lists)),
		emit:  tk.Emit(),
		tj: TermJoin{
			Index:       t.Index,
			Acc:         storage.NewAccessor(t.Index.Store()),
			Query:       q,
			ChildCounts: t.ChildCounts,
			Guard:       t.Guard,
			Arena:       &TJArena{},
		},
	}
	if t.Bound == nil && blocked {
		if err := t.runBlockMax(lists, ev, tk); err != nil {
			return nil, err
		}
	} else {
		if err := t.runExhaustive(lists, ev, tk); err != nil {
			return nil, err
		}
	}
	return tk.Results(), nil
}

// topkEval is the reusable per-document evaluation state of one
// TopKTermJoin run.
type topkEval struct {
	lists []index.List
	sub   []index.List
	emit  Emit
	tj    TermJoin
}

// evalDoc runs the regular TermJoin restricted to one document, feeding
// the top-k heap.
func (t *TopKTermJoin) evalDoc(ev *topkEval, doc storage.DocID) error {
	t.DocsEvaluated++
	for i, l := range ev.lists {
		ev.sub[i] = l.Range(doc, doc+1)
	}
	ev.tj.Query.Lists = ev.sub
	return ev.tj.Run(ev.emit)
}

// runExhaustive is the document-at-a-time path: one counting pass over
// every posting, documents ordered by decreasing bound, stop at the first
// bound the k-th score beats. It serves custom Bound functions, raw
// posting lists, and the unpruned oracle (DisablePruning).
func (t *TopKTermJoin) runExhaustive(lists []index.List, ev *topkEval, tk *TopK) error {
	type docInfo struct {
		doc    storage.DocID
		counts []int
		occ    int
		bound  float64
	}
	byDoc := map[storage.DocID]*docInfo{}
	for ti, l := range lists {
		for cur := l.Cursor(); cur.Valid(); cur.Advance() {
			if err := t.Guard.Tick(); err != nil {
				return err
			}
			p := cur.Cur()
			di := byDoc[p.Doc]
			if di == nil {
				di = &docInfo{doc: p.Doc, counts: make([]int, len(lists))}
				byDoc[p.Doc] = di
			}
			di.counts[ti]++
			di.occ++
		}
	}
	docs := make([]*docInfo, 0, len(byDoc))
	bound := t.Bound
	if bound == nil {
		bound = t.defaultBound
	}
	for _, di := range byDoc {
		di.bound = bound(di.counts, di.occ)
		docs = append(docs, di)
	}
	sort.Slice(docs, func(i, j int) bool {
		if docs[i].bound != docs[j].bound {
			return docs[i].bound > docs[j].bound
		}
		return docs[i].doc < docs[j].doc
	})

	for _, di := range docs {
		if err := t.Guard.Check(); err != nil {
			return err
		}
		if !t.DisablePruning {
			if cut, full := tk.Threshold(); full && di.bound <= cut {
				break // no element of any remaining document can displace the k-th
			}
		}
		if err := t.evalDoc(ev, di.doc); err != nil {
			return err
		}
	}
	return nil
}

// runBlockMax is the block-max path: sweep the document space in
// ascending order as intervals over which every list's candidate block
// set is constant, bound each interval by skip-table MaxFreq sums alone,
// and decode only intervals that can still displace the k-th score.
//
// Exactness: documents are handled in strictly ascending order and the
// heap's tie-break prefers lower document ids, so an element from a later
// document tying the k-th score can never displace it — a skip under
// bound ≤ k-th is therefore lossless, matching the exhaustive path.
func (t *TopKTermJoin) runBlockMax(lists []index.List, ev *topkEval, tk *TopK) error {
	skips := make([][]postings.Skip, len(lists))
	ptr := make([]int, len(lists))
	for i, l := range lists {
		skips[i] = l.Blocks().Skips() // nil for empty lists
	}
	counts := make([]int, len(lists))

	// Per-interval document statistics, reused across intervals: the map
	// is cleared (not reallocated) and docInfos recycle through a freelist.
	type docInfo struct {
		counts []int
		occ    int
	}
	byDoc := map[storage.DocID]*docInfo{}
	var diUsed, diFree []*docInfo
	var docs []storage.DocID

	next := storage.DocID(0) // all documents < next are fully handled
	for {
		if err := t.Guard.Tick(); err != nil {
			return err
		}
		// Advance past blocks wholly before the frontier and find the
		// interval [d, B) on which every list's block set is constant.
		d := storage.DocID(-1)
		for i := range skips {
			for ptr[i] < len(skips[i]) && skips[i][ptr[i]].LastDoc < next {
				ptr[i]++
			}
			if ptr[i] == len(skips[i]) {
				continue
			}
			lo := skips[i][ptr[i]].FirstDoc
			if lo < next {
				lo = next
			}
			if d < 0 || lo < d {
				d = lo
			}
		}
		if d < 0 {
			return nil // every list exhausted
		}
		B := storage.DocID(-1)
		for i := range skips {
			if ptr[i] == len(skips[i]) {
				continue
			}
			sk := skips[i][ptr[i]]
			edge := sk.LastDoc + 1
			if sk.FirstDoc > d {
				edge = sk.FirstDoc
			}
			if B < 0 || edge < B {
				B = edge
			}
		}

		// Upper-bound the interval from the skip tables alone: a document
		// in [d, B) may span several consecutive blocks, so sum MaxFreq
		// over every block starting before B.
		ubOcc := 0
		for i := range skips {
			counts[i] = 0
			for j := ptr[i]; j < len(skips[i]) && skips[i][j].FirstDoc < B; j++ {
				counts[i] += int(skips[i][j].MaxFreq)
			}
			ubOcc += counts[i]
		}
		if ubOcc == 0 {
			next = B
			continue
		}
		if !t.DisablePruning {
			if cut, full := tk.Threshold(); full && t.defaultBound(counts, ubOcc) <= cut {
				// Nothing in the interval can displace the k-th: skip it
				// without decoding. Blocks wholly consumed by the skip are
				// the pruning payoff.
				for i := range skips {
					for j := ptr[i]; j < len(skips[i]) && skips[i][j].LastDoc < B; j++ {
						t.BlocksSkipped++
					}
				}
				next = B
				continue
			}
		}

		// The interval survives: resolve exact per-document counts with a
		// document-stream-only scan, then bound and evaluate each document
		// in ascending order.
		for _, di := range diUsed {
			diFree = append(diFree, di)
		}
		diUsed = diUsed[:0]
		clear(byDoc)
		docs = docs[:0]
		for i, l := range lists {
			bl := l.Blocks()
			err := bl.DocCounts(d, B, func(doc storage.DocID, n int) error {
				if err := t.Guard.TickN(n); err != nil {
					return err
				}
				di := byDoc[doc]
				if di == nil {
					if k := len(diFree); k > 0 {
						di = diFree[k-1]
						diFree = diFree[:k-1]
						clear(di.counts)
						di.occ = 0
					} else {
						di = &docInfo{counts: make([]int, len(lists))}
					}
					diUsed = append(diUsed, di)
					byDoc[doc] = di
					docs = append(docs, doc)
				}
				di.counts[i] += n
				di.occ += n
				return nil
			})
			if err != nil {
				return err
			}
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
		for _, doc := range docs {
			if err := t.Guard.Check(); err != nil {
				return err
			}
			di := byDoc[doc]
			if !t.DisablePruning {
				if cut, full := tk.Threshold(); full && t.defaultBound(di.counts, di.occ) <= cut {
					continue // exact bound says this document cannot place
				}
			}
			if err := t.evalDoc(ev, doc); err != nil {
				return err
			}
		}
		next = B
	}
}

// defaultBound upper-bounds any element score in a document.
func (t *TopKTermJoin) defaultBound(counts []int, totalOcc int) float64 {
	base := t.Query.Scorer.Simple(counts)
	if !t.Query.Complex {
		return base
	}
	// Complex score ≤ (base + proximity bonus) × 1; each of the at most
	// occ-1 adjacent pairs contributes at most 1/(1+minDistance) = 1/2.
	if totalOcc > 1 {
		base += 0.5 * float64(totalOcc-1)
	}
	return base
}

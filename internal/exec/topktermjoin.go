package exec

import (
	"sort"

	"repro/internal/index"
	"repro/internal/storage"
)

// TopKTermJoin evaluates "TermJoin then keep the k best elements" with
// early termination, in the spirit of the top-k techniques the paper cites
// for Threshold evaluation (Chang & Hwang's minimal probing and Bruno et
// al.'s upper-bound pruning, Sec. 5.3 [8, 5]).
//
// It derives, per document, an upper bound on the score any element of
// that document can attain — for the simple scoring function the weighted
// whole-document term counts; for the complex function that base plus the
// maximal proximity bonus (each adjacent occurrence pair contributes at
// most 1/(1+1), and the child ratio is at most 1). Documents are processed
// in decreasing bound order, and evaluation stops as soon as the next
// bound cannot displace the current k-th best score. The result is exactly
// the full TermJoin's top k.
type TopKTermJoin struct {
	Index *index.Index
	Query TermQuery
	K     int
	// ChildCounts as in TermJoin (complex scoring only).
	ChildCounts ChildCountMode
	// DocsEvaluated reports, after Run, how many documents were actually
	// scored (the early-termination payoff).
	DocsEvaluated int
	// Bound overrides the per-document upper bound: given the per-term
	// whole-document counts and the total occurrence count, it must return
	// a value ≥ any element score in that document. Nil uses the default
	// described above.
	Bound func(counts []int, totalOcc int) float64
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked during the bound-building pass, between documents,
	// and inside every per-document TermJoin.
	Guard *Guard
}

// Run evaluates and returns the top-k elements, best first.
func (t *TopKTermJoin) Run() ([]ScoredNode, error) {
	if t.K <= 0 {
		return nil, nil
	}
	if err := t.Query.validate("TopKTermJoin"); err != nil {
		return nil, err
	}
	if err := t.Guard.Check(); err != nil {
		return nil, err
	}
	t.DocsEvaluated = 0

	terms := normalizeTerms(t.Index, t.Query.Terms)
	lists := make([][]index.Posting, len(terms))
	for i := range terms {
		lists[i] = t.Query.postings(t.Index, terms, i)
	}

	// Per-document term counts (one pass over each posting list).
	type docInfo struct {
		doc    storage.DocID
		counts []int
		occ    int
		bound  float64
	}
	byDoc := map[storage.DocID]*docInfo{}
	for ti, ps := range lists {
		for _, p := range ps {
			if err := t.Guard.Tick(); err != nil {
				return nil, err
			}
			di := byDoc[p.Doc]
			if di == nil {
				di = &docInfo{doc: p.Doc, counts: make([]int, len(terms))}
				byDoc[p.Doc] = di
			}
			di.counts[ti]++
			di.occ++
		}
	}
	docs := make([]*docInfo, 0, len(byDoc))
	bound := t.Bound
	if bound == nil {
		bound = t.defaultBound
	}
	for _, di := range byDoc {
		di.bound = bound(di.counts, di.occ)
		docs = append(docs, di)
	}
	sort.Slice(docs, func(i, j int) bool {
		if docs[i].bound != docs[j].bound {
			return docs[i].bound > docs[j].bound
		}
		return docs[i].doc < docs[j].doc
	})

	tk := NewTopK(t.K)
	kth := func() (float64, bool) {
		res := tk.Results()
		if len(res) < t.K {
			return 0, false
		}
		return res[len(res)-1].Score, true
	}
	for _, di := range docs {
		if err := t.Guard.Check(); err != nil {
			return nil, err
		}
		if cut, full := kth(); full && di.bound <= cut {
			break // no element of any remaining document can displace the k-th
		}
		t.DocsEvaluated++
		// Run the regular TermJoin restricted to this document by slicing
		// each posting list to the document's range.
		sub := make([][]index.Posting, len(lists))
		for i, ps := range lists {
			lo := sort.Search(len(ps), func(k int) bool { return ps[k].Doc >= di.doc })
			hi := sort.Search(len(ps), func(k int) bool { return ps[k].Doc > di.doc })
			sub[i] = ps[lo:hi]
		}
		q := t.Query
		q.PostingLists = sub
		tj := &TermJoin{
			Index:       t.Index,
			Acc:         storage.NewAccessor(t.Index.Store()),
			Query:       q,
			ChildCounts: t.ChildCounts,
			Guard:       t.Guard,
		}
		if err := tj.Run(tk.Emit()); err != nil {
			return nil, err
		}
	}
	return tk.Results(), nil
}

// defaultBound upper-bounds any element score in a document.
func (t *TopKTermJoin) defaultBound(counts []int, totalOcc int) float64 {
	base := t.Query.Scorer.Simple(counts)
	if !t.Query.Complex {
		return base
	}
	// Complex score ≤ (base + proximity bonus) × 1; each of the at most
	// occ-1 adjacent pairs contributes at most 1/(1+minDistance) = 1/2.
	if totalOcc > 1 {
		base += 0.5 * float64(totalOcc-1)
	}
	return base
}

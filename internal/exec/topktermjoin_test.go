package exec

import (
	"testing"

	"repro/internal/scoring"
)

func TestTopKTermJoinMatchesFullRun(t *testing.T) {
	idx := buildMultiDocIndex(t, 8)
	for _, complex := range []bool{false, true} {
		q := TermQuery{
			Terms:   []string{"ctla", "ctlb"},
			Complex: complex,
			Scorer:  DefaultScorer{SimpleFn: scoring.SimpleScorer{Weights: []float64{0.8, 0.6}}, ComplexFn: scoring.ComplexScorer{Weights: []float64{0.8, 0.6}}},
		}
		for _, k := range []int{1, 3, 10, 1000} {
			want := NewTopK(k)
			full, err := RunTermJoin(idx, q, ChildCountNavigate)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range full {
				want.Offer(n)
			}
			tkj := &TopKTermJoin{Index: idx, Query: q, K: k}
			got, err := tkj.Run()
			if err != nil {
				t.Fatal(err)
			}
			wr := want.Results()
			if len(got) != len(wr) {
				t.Fatalf("complex=%v k=%d: %d results, want %d", complex, k, len(got), len(wr))
			}
			for i := range wr {
				// Scores must match exactly; node identity may differ only
				// among equal scores at the boundary.
				if got[i].Score != wr[i].Score {
					t.Fatalf("complex=%v k=%d: result %d score %f, want %f",
						complex, k, i, got[i].Score, wr[i].Score)
				}
			}
		}
	}
}

func TestTopKTermJoinEarlyTermination(t *testing.T) {
	idx := buildMultiDocIndex(t, 8)
	q := TermQuery{Terms: []string{"ctla", "ctlb"}, Scorer: DefaultScorer{}}
	tkj := &TopKTermJoin{Index: idx, Query: q, K: 1}
	if _, err := tkj.Run(); err != nil {
		t.Fatal(err)
	}
	// All 8 documents carry the terms; k=1 should stop after the documents
	// whose bound exceeds the best score — the per-document bounds equal
	// the whole-document counts, and the best element (each document root)
	// attains its bound, so exactly one document is evaluated.
	if tkj.DocsEvaluated != 1 {
		t.Errorf("DocsEvaluated = %d, want 1", tkj.DocsEvaluated)
	}
	// A huge k evaluates everything.
	tkj = &TopKTermJoin{Index: idx, Query: q, K: 100000}
	if _, err := tkj.Run(); err != nil {
		t.Fatal(err)
	}
	if tkj.DocsEvaluated != 8 {
		t.Errorf("DocsEvaluated = %d, want 8", tkj.DocsEvaluated)
	}
}

func TestTopKTermJoinEdgeCases(t *testing.T) {
	idx := buildMultiDocIndex(t, 2)
	if got, err := (&TopKTermJoin{Index: idx, Query: TermQuery{Terms: []string{"x"}, Scorer: DefaultScorer{}}, K: 0}).Run(); err != nil || got != nil {
		t.Errorf("k=0: %v, %v", got, err)
	}
	if _, err := (&TopKTermJoin{Index: idx, Query: TermQuery{Scorer: DefaultScorer{}}, K: 1}).Run(); err == nil {
		t.Errorf("no terms should error")
	}
	if _, err := (&TopKTermJoin{Index: idx, Query: TermQuery{Terms: []string{"x"}}, K: 1}).Run(); err == nil {
		t.Errorf("no scorer should error")
	}
	// Unknown term: empty result.
	got, err := (&TopKTermJoin{Index: idx, Query: TermQuery{Terms: []string{"zzz"}, Scorer: DefaultScorer{}}, K: 5}).Run()
	if err != nil || len(got) != 0 {
		t.Errorf("unknown term: %v, %v", got, err)
	}
}

func TestTopKTermJoinCustomBound(t *testing.T) {
	idx := buildMultiDocIndex(t, 4)
	q := TermQuery{Terms: []string{"ctla"}, Scorer: DefaultScorer{}}
	// A deliberately loose custom bound must still give correct results,
	// just without early termination.
	tkj := &TopKTermJoin{
		Index: idx, Query: q, K: 2,
		Bound: func(counts []int, occ int) float64 { return 1e18 },
	}
	got, err := tkj.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tkj.DocsEvaluated != 4 {
		t.Errorf("loose bound should evaluate all docs, got %d", tkj.DocsEvaluated)
	}
	if len(got) != 2 {
		t.Errorf("results = %d", len(got))
	}
}

package exec

import (
	"fmt"
	"math"

	"repro/internal/storage"
)

// This file implements the holistic twig join TwigStack (Bruno, Koudas,
// Srivastava: "Holistic Twig Joins: Optimal XML Pattern Matching", SIGMOD
// 2002) — reference [6] of the paper and part of the stack-based family of
// structural join access methods TermJoin generalizes. The paper's query
// engine evaluates the structural part of scored pattern trees with such
// joins; internal/xq uses binary AncDescPairs for its simple paths, and
// TwigStack is provided for whole-twig matching of tag patterns.
//
// The core algorithm covers twigs whose edges are all ancestor-descendant
// (TwigStack's optimality domain); parent-child edges are verified by
// post-filtering the merged solutions, as the original paper discusses.

// TwigNode is one node of a twig pattern: an element tag with edges to its
// children. Edges are ancestor-descendant unless PC is set on the child.
type TwigNode struct {
	Tag      string
	Children []*TwigNode
	// PC requires this node's match to be a direct child of its parent's
	// match (verified during solution merging).
	PC bool
}

// Twig builds an ancestor-descendant twig node.
func Twig(tag string, children ...*TwigNode) *TwigNode {
	return &TwigNode{Tag: tag, Children: children}
}

// TwigChild builds a parent-child twig node.
func TwigChild(tag string, children ...*TwigNode) *TwigNode {
	return &TwigNode{Tag: tag, Children: children, PC: true}
}

// TwigMatch is one complete match: the element ordinal bound to each
// pattern node, indexed by the pattern's preorder numbering.
type TwigMatch []int32

// TwigStack evaluates the twig pattern against one document and returns
// every complete match. Elements are read through an accessor, so store
// traffic is accounted like every other access method.
type TwigStack struct {
	Store *storage.Store
	Doc   storage.DocID
	Root  *TwigNode
	// Stats holds the accessor statistics after Run.
	Stats storage.AccessStats
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget, checked once per advance of the twig-join main loop.
	Guard *Guard
}

type twigState struct {
	node     *TwigNode
	parent   *twigState
	children []*twigState
	index    int // preorder index of the pattern node
	depth    int // chain depth from the pattern root

	stream []int32 // tag extent, document order
	pos    int

	// done marks a subtree that can emit no further path solutions (its
	// leaf streams are exhausted); sealed marks a node whose own stream
	// has become useless because some descendant subtree is done — no new
	// frame of a sealed node can ever participate in a complete twig, but
	// its existing stack frames remain available to sibling subtrees.
	done   bool
	sealed bool

	stack []twigFrame

	// solutions hold, for leaf states, the emitted root-to-leaf path
	// solutions: one ordinal per pattern node from the root down to this
	// leaf.
	solutions [][]int32
}

type twigFrame struct {
	ord       int32
	end       uint32
	parentTop int // len(parent.stack) at push time
}

func (s *twigState) eof() bool { return s.pos >= len(s.stream) }

// Run executes the twig join.
func (t *TwigStack) Run() ([]TwigMatch, error) {
	doc := t.Store.Doc(t.Doc)
	if doc == nil {
		return nil, fmt.Errorf("exec: TwigStack over unknown document %d", t.Doc)
	}
	if t.Root == nil {
		return nil, fmt.Errorf("exec: TwigStack without a pattern")
	}
	acc := storage.NewAccessor(t.Store)
	defer func() { t.Stats = acc.Stats }()
	t.Guard.Attach(acc)
	if err := t.Guard.Check(); err != nil {
		return nil, err
	}

	var states []*twigState
	var leaves []*twigState
	var build func(n *TwigNode, parent *twigState, depth int) *twigState
	build = func(n *TwigNode, parent *twigState, depth int) *twigState {
		st := &twigState{node: n, parent: parent, index: len(states), depth: depth}
		states = append(states, st)
		if tid, ok := t.Store.Tags.Lookup(n.Tag); ok {
			st.stream = doc.TagExtent(tid)
		}
		for _, c := range n.Children {
			st.children = append(st.children, build(c, st, depth+1))
		}
		if len(st.children) == 0 {
			leaves = append(leaves, st)
		}
		return st
	}
	root := build(t.Root, nil, 0)

	startOf := func(s *twigState) uint32 {
		if s.eof() {
			return math.MaxUint32
		}
		return acc.Node(t.Doc, s.stream[s.pos]).Start
	}
	endOf := func(s *twigState) uint32 {
		if s.eof() {
			return math.MaxUint32
		}
		return acc.Node(t.Doc, s.stream[s.pos]).End
	}

	// markDone flags a subtree as unable to emit further path solutions
	// and seals every ancestor: a sealed node's future stream elements
	// cannot appear in any complete twig (the done branch would be
	// missing), so the stream is drained; existing stack frames stay for
	// sibling subtrees.
	markDone := func(q *twigState) {
		q.done = true
		for p := q.parent; p != nil && !p.sealed; p = p.parent {
			p.sealed = true
			p.pos = len(p.stream)
		}
	}

	// getNext returns a pattern node whose head element is guaranteed to
	// contribute to some solution extension (the heart of TwigStack).
	// Subtrees already marked done are skipped; a node whose children are
	// all done becomes done itself.
	var getNext func(q *twigState) *twigState
	getNext = func(q *twigState) *twigState {
		if len(q.children) == 0 {
			return q
		}
		var nmin, nmax *twigState
		for _, qi := range q.children {
			if qi.done {
				continue
			}
			ni := getNext(qi)
			if ni != qi {
				return ni
			}
			if nmin == nil || startOf(ni) < startOf(nmin) {
				nmin = ni
			}
			if nmax == nil || startOf(ni) > startOf(nmax) {
				nmax = ni
			}
		}
		if nmin == nil { // every child subtree is done
			markDone(q)
			return q
		}
		for !q.eof() && endOf(q) < startOf(nmax) {
			q.pos++
		}
		if startOf(q) < startOf(nmin) {
			return q
		}
		return nmin
	}

	cleanStack := func(s *twigState, start uint32) {
		for len(s.stack) > 0 && s.stack[len(s.stack)-1].end < start {
			s.stack = s.stack[:len(s.stack)-1]
		}
	}

	// emitPaths records every root-to-leaf path ending at the leaf's
	// just-pushed frame, by walking parent-ward through the parentTop
	// links (each stack frame may extend through any frame at or below
	// the recorded parent top).
	var emitPaths func(leaf, s *twigState, frameIdx int, below []int32)
	emitPaths = func(leaf, s *twigState, frameIdx int, below []int32) {
		fr := s.stack[frameIdx]
		path := make([]int32, 0, len(below)+1)
		path = append(path, fr.ord)
		path = append(path, below...)
		if s.parent == nil {
			leaf.solutions = append(leaf.solutions, path)
			return
		}
		for i := 0; i < fr.parentTop; i++ {
			emitPaths(leaf, s.parent, i, path)
		}
	}

	anyLeafLive := func() bool {
		for _, l := range leaves {
			if !l.eof() {
				return true
			}
		}
		return false
	}

	for anyLeafLive() {
		if err := t.Guard.Tick(); err != nil {
			return nil, err
		}
		q := getNext(root)
		if q.done {
			continue // marked during getNext; the next call skips it
		}
		if q.eof() {
			if len(q.children) == 0 {
				markDone(q)
				continue
			}
			// An internal node is only returned when its head start is
			// smaller than a live child's, which an exhausted stream
			// (infinite start) cannot satisfy; bail out defensively.
			break
		}
		qStart := startOf(q)
		if q.parent != nil {
			cleanStack(q.parent, qStart)
		}
		if q.parent == nil || len(q.parent.stack) > 0 {
			cleanStack(q, qStart)
			parentTop := 0
			if q.parent != nil {
				parentTop = len(q.parent.stack)
			}
			q.stack = append(q.stack, twigFrame{
				ord:       q.stream[q.pos],
				end:       endOf(q),
				parentTop: parentTop,
			})
			q.pos++
			if len(q.children) == 0 {
				emitPaths(q, q, len(q.stack)-1, nil)
				q.stack = q.stack[:len(q.stack)-1] // leaves pop immediately
			}
		} else {
			q.pos++
		}
	}

	return t.merge(doc, states, leaves, acc)
}

// merge assembles complete twig matches from the per-leaf path solutions:
// a match chooses one solution per leaf such that all solutions agree on
// the ordinals of their shared pattern prefixes. Parent-child pattern
// edges are verified here.
func (t *TwigStack) merge(doc *storage.Document, states []*twigState, leaves []*twigState, acc *storage.Accessor) ([]TwigMatch, error) {
	var out []TwigMatch

	// leavesUnder[s] caches the leaf states in s's pattern subtree.
	leavesUnder := map[*twigState][]*twigState{}
	var collect func(s *twigState) []*twigState
	collect = func(s *twigState) []*twigState {
		if ls, ok := leavesUnder[s]; ok {
			return ls
		}
		var ls []*twigState
		if len(s.children) == 0 {
			ls = []*twigState{s}
		}
		for _, c := range s.children {
			ls = append(ls, collect(c)...)
		}
		leavesUnder[s] = ls
		return ls
	}

	prefixMatches := func(sol, prefix []int32) bool {
		for i, p := range prefix {
			if sol[i] != p {
				return false
			}
		}
		return true
	}

	// candidates returns the distinct ordinals state s can bind given the
	// prefix (assignments for states root..parent(s)).
	candidates := func(s *twigState, prefix []int32) []int32 {
		seen := map[int32]bool{}
		var out []int32
		for _, leaf := range collect(s) {
			for _, sol := range leaf.solutions {
				if len(sol) <= s.depth || !prefixMatches(sol, prefix) {
					continue
				}
				if o := sol[s.depth]; !seen[o] {
					seen[o] = true
					out = append(out, o)
				}
			}
		}
		return out
	}

	pcOK := func(s *twigState, childOrd, parentOrd int32) bool {
		if !s.node.PC {
			return true
		}
		return acc.Node(t.Doc, childOrd).Parent == parentOrd
	}

	assignment := make([]int32, len(states))
	var expand func(s *twigState, prefix []int32, rest func())
	expand = func(s *twigState, prefix []int32, rest func()) {
		for _, ord := range candidates(s, prefix) {
			if s.parent != nil && !pcOK(s, ord, prefix[len(prefix)-1]) {
				continue
			}
			assignment[s.index] = ord
			p2 := make([]int32, len(prefix)+1)
			copy(p2, prefix)
			p2[len(prefix)] = ord
			var kids func(i int)
			kids = func(i int) {
				if i == len(s.children) {
					rest()
					return
				}
				expand(s.children[i], p2, func() { kids(i + 1) })
			}
			kids(0)
		}
	}
	root := states[0]
	expand(root, nil, func() {
		out = append(out, append(TwigMatch(nil), assignment...))
	})
	_ = doc
	return out, nil
}

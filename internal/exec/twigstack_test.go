package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

// naiveTwig enumerates twig matches by brute force over the document.
func naiveTwig(doc *storage.Document, store *storage.Store, root *TwigNode) []TwigMatch {
	// Preorder pattern states.
	type pstate struct {
		n     *TwigNode
		index int
		kids  []int
	}
	var states []*pstate
	var build func(n *TwigNode) int
	build = func(n *TwigNode) int {
		st := &pstate{n: n, index: len(states)}
		states = append(states, st)
		for _, c := range n.Children {
			st.kids = append(st.kids, build(c))
		}
		return st.index
	}
	build(root)

	tagOf := func(ord int32) string {
		return store.Tags.Name(doc.Nodes[ord].Tag)
	}
	contains := func(a, d int32) bool {
		return doc.Nodes[a].Start < doc.Nodes[d].Start && doc.Nodes[d].End <= doc.Nodes[a].End
	}

	var out []TwigMatch
	assignment := make([]int32, len(states))
	var rec func(si int, parentOrd int32, rest func())
	rec = func(si int, parentOrd int32, rest func()) {
		st := states[si]
		for _, ord := range doc.Elements() {
			if tagOf(ord) != st.n.Tag {
				continue
			}
			if parentOrd >= 0 {
				if st.n.PC {
					if doc.Nodes[ord].Parent != parentOrd {
						continue
					}
				} else if !contains(parentOrd, ord) {
					continue
				}
			}
			assignment[st.index] = ord
			var kids func(i int)
			kids = func(i int) {
				if i == len(st.kids) {
					rest()
					return
				}
				rec(st.kids[i], ord, func() { kids(i + 1) })
			}
			kids(0)
		}
	}
	rec(0, -1, func() {
		out = append(out, append(TwigMatch(nil), assignment...))
	})
	return out
}

func sortMatches(ms []TwigMatch) {
	sort.Slice(ms, func(i, j int) bool {
		for k := range ms[i] {
			if ms[i][k] != ms[j][k] {
				return ms[i][k] < ms[j][k]
			}
		}
		return false
	})
}

func matchesEqual(a, b []TwigMatch) bool {
	if len(a) != len(b) {
		return false
	}
	sortMatches(a)
	sortMatches(b)
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

func TestTwigStackOnFixture(t *testing.T) {
	s := storage.NewStore()
	id, err := s.AddTree("articles.xml", mustParse(fixture.ArticlesXML))
	if err != nil {
		t.Fatal(err)
	}
	doc := s.Doc(id)

	cases := []struct {
		name string
		twig *TwigNode
		want int
	}{
		{"path", Twig("article", Twig("section", Twig("section-title"))), 3},
		{"branch", Twig("article", Twig("author", Twig("sname")), Twig("p")), 3},
		{"chapter-sections", Twig("chapter", Twig("section")), 3},
		{"deep", Twig("article", Twig("chapter", Twig("section", Twig("p")))), 3},
		{"nomatch", Twig("review", Twig("rating")), 0},
		{"unknown-tag", Twig("article", Twig("zzz")), 0},
	}
	for _, c := range cases {
		ts := &TwigStack{Store: s, Doc: doc.ID, Root: c.twig}
		got, err := ts.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want := naiveTwig(doc, s, c.twig)
		if len(want) != c.want {
			t.Fatalf("%s: naive found %d, expected %d — test broken", c.name, len(want), c.want)
		}
		if !matchesEqual(got, want) {
			t.Errorf("%s: TwigStack %d matches, naive %d", c.name, len(got), len(want))
		}
	}
}

func TestTwigStackParentChildPostFilter(t *testing.T) {
	s := storage.NewStore()
	id, err := s.AddTree("t.xml", mustParse(
		`<a><b><c/></b><c/><x><c/></x></a>`))
	if err != nil {
		t.Fatal(err)
	}
	doc := s.Doc(id)
	// a//c: three matches. a/c (parent-child): one.
	ad := &TwigStack{Store: s, Doc: doc.ID, Root: Twig("a", Twig("c"))}
	got, err := ad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("a//c = %d, want 3", len(got))
	}
	pc := &TwigStack{Store: s, Doc: doc.ID, Root: Twig("a", TwigChild("c"))}
	got, err = pc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("a/c = %d, want 1", len(got))
	}
}

func TestTwigStackRecursiveTags(t *testing.T) {
	// Same tag nested within itself: stacks must track multiple open
	// elements of the same pattern node.
	s := storage.NewStore()
	id, err := s.AddTree("t.xml", mustParse(
		`<a><a><b/></a><b/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	doc := s.Doc(id)
	ts := &TwigStack{Store: s, Doc: doc.ID, Root: Twig("a", Twig("b"))}
	got, err := ts.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := naiveTwig(doc, s, Twig("a", Twig("b")))
	if !matchesEqual(got, want) {
		t.Errorf("recursive tags: %d matches, naive %d", len(got), len(want))
	}
	// outer-a//inner-b, outer-a//outer-b, inner-a//inner-b = 3.
	if len(got) != 3 {
		t.Errorf("matches = %d, want 3", len(got))
	}
}

func TestTwigStackErrors(t *testing.T) {
	s := storage.NewStore()
	if _, err := (&TwigStack{Store: s, Doc: 9, Root: Twig("a")}).Run(); err == nil {
		t.Errorf("unknown doc should error")
	}
	id, _ := s.AddTree("t.xml", mustParse(`<a/>`))
	if _, err := (&TwigStack{Store: s, Doc: id}).Run(); err == nil {
		t.Errorf("nil pattern should error")
	}
}

func TestQuickTwigStackMatchesNaive(t *testing.T) {
	shapes := []*TwigNode{
		Twig("a", Twig("b")),
		Twig("a", Twig("b", Twig("c"))),
		Twig("a", Twig("b"), Twig("c")),
		Twig("r", Twig("a", Twig("c")), Twig("b")),
		Twig("a", TwigChild("b"), Twig("c")),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := xmltree.NewElement("r")
		nodes := []*xmltree.Node{root}
		for i := 1; i < 2+rng.Intn(40); i++ {
			parent := nodes[rng.Intn(len(nodes))]
			el := xmltree.NewElement([]string{"a", "b", "c", "r"}[rng.Intn(4)])
			parent.AppendChild(el)
			nodes = append(nodes, el)
		}
		xmltree.Number(root)
		s := storage.NewStore()
		id, err := s.AddTree("t", root)
		if err != nil {
			return false
		}
		doc := s.Doc(id)
		for _, shape := range shapes {
			ts := &TwigStack{Store: s, Doc: id, Root: shape}
			got, err := ts.Run()
			if err != nil {
				return false
			}
			want := naiveTwig(doc, s, shape)
			if !matchesEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTwigStackSkipsNonParticipants(t *testing.T) {
	// TwigStack's optimality: 'a' elements without a 'b' descendant are
	// never pushed. Verify via store-access accounting that the run is
	// sub-quadratic: reads scale with input, not input².
	s := storage.NewStore()
	root := xmltree.NewElement("r")
	for i := 0; i < 500; i++ {
		a := xmltree.NewElement("a")
		root.AppendChild(a) // childless a's: non-participants
	}
	withB := xmltree.NewElement("a")
	withB.AppendChild(xmltree.NewElement("b"))
	root.AppendChild(withB)
	xmltree.Number(root)
	id, err := s.AddTree("t", root)
	if err != nil {
		t.Fatal(err)
	}
	ts := &TwigStack{Store: s, Doc: id, Root: Twig("a", Twig("b"))}
	got, err := ts.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	if ts.Stats.NodeReads > 5000 {
		t.Errorf("node reads = %d; expected linear-ish traffic", ts.Stats.NodeReads)
	}
}

// Package fixture provides the example XML database of the paper's Figure 1
// (articles.xml and reviews.xml) and the phrase sets of the three example
// queries of Figure 2, shared by tests, examples and the integration suite.
// Node identities from the figure (#a1 … #a20, #r1 … #r12) are recoverable
// through the helper functions below.
package fixture

import "repro/internal/xmltree"

// ArticlesXML is the articles.xml document of Figure 1.
const ArticlesXML = `<article>
  <article-title>Internet Technologies</article-title>
  <author id="first">
    <fname>Jane</fname>
    <sname>Doe</sname>
  </author>
  <chapter>
    <ct>Caching and Replication</ct>
  </chapter>
  <chapter>
    <ct>Streaming Video</ct>
  </chapter>
  <chapter>
    <ct>Search and Retrieval</ct>
    <section>
      <section-title>Search Engine Basics</section-title>
    </section>
    <section>
      <section-title>Information Retrieval Techniques</section-title>
    </section>
    <section>
      <section-title>Examples</section-title>
      <p>Here are some IR based search engines:</p>
      <p>search engine NewsInEssence uses a new information retrieval technology</p>
      <p>semantic information retrieval techniques are also being incorporated into some search engines</p>
    </section>
  </chapter>
</article>`

// ReviewsXML is the reviews.xml document of Figure 1. Its two top-level
// review elements are wrapped under a synthetic root by the parser.
const ReviewsXML = `<review id="1">
  <title>Internet Technologies</title>
  <reviewer>
    <fname>John</fname>
    <sname>Doe</sname>
  </reviewer>
  <comments>A thorough survey of internet search technology</comments>
  <rating>5</rating>
</review>
<review id="2">
  <title>WWW Technologies</title>
  <reviewer>Anonymous</reviewer>
  <comments>Dated but solid treatment of the world wide web</comments>
  <rating>3</rating>
</review>`

// Query phrases of Figure 2: the primary phrase and the two secondary
// phrases of Queries 1 and 2 (Query 3 reuses them).
var (
	PrimaryPhrases   = []string{"search engine"}
	SecondaryPhrases = []string{"internet", "information retrieval"}
)

// Articles parses ArticlesXML. The constant is well-formed, so the error
// is nil in practice; it is returned rather than panicked on so that no
// production code path panics on XML input.
func Articles() (*xmltree.Node, error) { return xmltree.ParseString(ArticlesXML) }

// Reviews parses ReviewsXML.
func Reviews() (*xmltree.Node, error) { return xmltree.ParseString(ReviewsXML) }

// ThirdChapter returns the node the figure labels #a10 (the "Search and
// Retrieval" chapter) of a parsed articles tree.
func ThirdChapter(articles *xmltree.Node) *xmltree.Node {
	return articles.FindTag("chapter")[2]
}

// ExamplesSection returns the node labeled #a16 (the "Examples" section).
func ExamplesSection(articles *xmltree.Node) *xmltree.Node {
	return articles.FindTag("section")[2]
}

// Paragraphs returns the nodes labeled #a18, #a19, #a20.
func Paragraphs(articles *xmltree.Node) []*xmltree.Node {
	return articles.FindTag("p")
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Admission-control sentinels. The server maps them to typed JSON errors:
// ErrRateLimited → 429 with code "rate_limited", ErrOverloaded → 503 with
// code "overloaded"; both carry a Retry-After hint and retryable=true so
// clients can implement correct backoff.
var (
	// ErrRateLimited reports that the client exhausted its token bucket.
	ErrRateLimited = errors.New("fleet: client rate limit exceeded")
	// ErrOverloaded reports that the global concurrency gate is full and
	// the request was shed (queue full, or the predicted queue wait would
	// exceed the request's deadline).
	ErrOverloaded = errors.New("fleet: server overloaded, request shed")
)

// AdmissionError is the concrete error for a rejected request. It unwraps
// to ErrRateLimited or ErrOverloaded.
type AdmissionError struct {
	Sentinel error
	// RetryAfter is the suggested wait before retrying (the token-bucket
	// refill time, or the predicted drain time of the concurrency gate).
	RetryAfter time.Duration
	Reason     string
}

// Error implements error.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%v: %s (retry after %s)", e.Sentinel, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap makes errors.Is against the sentinel true.
func (e *AdmissionError) Unwrap() error { return e.Sentinel }

// AdmissionConfig tunes the admission controller. Zero-valued limits are
// disabled, so the zero config admits everything.
type AdmissionConfig struct {
	// RatePerSec is each client's sustained request rate (token-bucket
	// refill; 0 disables per-client rate limiting).
	RatePerSec float64
	// Burst is the token-bucket capacity (default max(1, ceil(RatePerSec))).
	Burst int
	// MaxInflight is the global concurrent-request gate (0 disables).
	MaxInflight int
	// MaxQueue bounds how many requests may wait for a gate slot before
	// further arrivals are shed outright (default 4×MaxInflight).
	MaxQueue int
	// MaxClients bounds the client bucket table; when full, the stalest
	// bucket is evicted (default 4096).
	MaxClients int
	// Metrics receives the admission counters and gauges (default
	// metrics.Default).
	Metrics *metrics.Registry
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Burst <= 0 {
		c.Burst = int(math.Ceil(c.RatePerSec))
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default
	}
	return c
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Admission is the serving tier's admission controller: a per-client
// token bucket in front of a global concurrency gate. Requests that pass
// both run; requests that fail either are rejected immediately with a
// typed, retryable error — the tier sheds load instead of queueing
// unboundedly, so overload degrades to fast 429/503 responses rather
// than timeouts for everyone.
//
// The gate is deadline-aware: when no slot is free, the controller
// predicts the queue wait from an EWMA of recent service times and sheds
// the request up front if the prediction exceeds the request's context
// deadline — a request that would time out in the queue never occupies
// queue space.
type Admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[string]*bucket

	sem    chan struct{} // nil when MaxInflight is 0
	queued atomic.Int64

	// ewmaServiceBits holds the float64 bits of the exponentially-weighted
	// moving average service time in seconds, updated on release.
	ewmaServiceBits atomic.Uint64
}

// NewAdmission returns an admission controller for cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg = cfg.withDefaults()
	a := &Admission{cfg: cfg, buckets: map[string]*bucket{}}
	if cfg.MaxInflight > 0 {
		a.sem = make(chan struct{}, cfg.MaxInflight)
	}
	return a
}

// reg returns the metrics registry.
func (a *Admission) reg() *metrics.Registry { return a.cfg.Metrics }

// takeToken charges one request against the client's bucket, returning
// the wait until a token is available when the bucket is empty.
func (a *Admission) takeToken(client string, now time.Time) (time.Duration, bool) {
	if a.cfg.RatePerSec <= 0 {
		return 0, true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	if b == nil {
		if len(a.buckets) >= a.cfg.MaxClients {
			a.evictStalest()
		}
		b = &bucket{tokens: float64(a.cfg.Burst), last: now}
		a.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * a.cfg.RatePerSec
	if max := float64(a.cfg.Burst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / a.cfg.RatePerSec * float64(time.Second))
		return wait, false
	}
	b.tokens--
	return 0, true
}

// refundToken returns one token to the client's bucket: a request shed
// at the concurrency gate never used the admission its token paid for,
// so charging it would double-penalize clients during overload.
func (a *Admission) refundToken(client string) {
	if a.cfg.RatePerSec <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b := a.buckets[client]; b != nil {
		if b.tokens++; b.tokens > float64(a.cfg.Burst) {
			b.tokens = float64(a.cfg.Burst)
		}
	}
}

// evictStalest drops the least-recently-used bucket. Caller holds mu.
func (a *Admission) evictStalest() {
	var stalest string
	var oldest time.Time
	for c, b := range a.buckets {
		if stalest == "" || b.last.Before(oldest) {
			stalest, oldest = c, b.last
		}
	}
	delete(a.buckets, stalest)
}

// ewmaService returns the moving-average service time (0 before any
// sample).
func (a *Admission) ewmaService() float64 {
	return math.Float64frombits(a.ewmaServiceBits.Load())
}

// noteService folds one observed service duration into the EWMA.
func (a *Admission) noteService(d time.Duration) {
	const alpha = 0.2
	s := d.Seconds()
	for {
		old := a.ewmaServiceBits.Load()
		prev := math.Float64frombits(old)
		next := s
		if prev > 0 {
			next = (1-alpha)*prev + alpha*s
		}
		if a.ewmaServiceBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// predictWait estimates how long a newly-queued request would wait for a
// gate slot given the queue length including itself: the queue drains
// MaxInflight at a time, each batch taking one average service time.
func (a *Admission) predictWait(queue int64) time.Duration {
	ewma := a.ewmaService()
	if ewma <= 0 || queue < 1 {
		return 0
	}
	batches := float64(queue) / float64(a.cfg.MaxInflight)
	return time.Duration(math.Ceil(batches) * ewma * float64(time.Second))
}

// Admit runs a request through admission control. On success it returns
// a release closure the caller must invoke exactly once when the request
// finishes. On rejection it returns an *AdmissionError unwrapping to
// ErrRateLimited or ErrOverloaded (or the context's own error when the
// client gave up while queued).
func (a *Admission) Admit(ctx context.Context, client string) (release func(), err error) {
	reg := a.reg()
	if wait, ok := a.takeToken(client, time.Now()); !ok {
		reg.Counter("tix_admission_rate_limited_total").Inc()
		return nil, &AdmissionError{
			Sentinel:   ErrRateLimited,
			RetryAfter: wait,
			Reason:     fmt.Sprintf("client %q exceeded %g requests/sec", client, a.cfg.RatePerSec),
		}
	}
	if a.sem == nil {
		return func() {}, nil
	}

	start := time.Now()
	acquired := func() func() {
		reg.Gauge("tix_admission_inflight").Add(1)
		return func() {
			<-a.sem
			a.noteService(time.Since(start))
			reg.Gauge("tix_admission_inflight").Add(-1)
		}
	}

	select {
	case a.sem <- struct{}{}:
		return acquired(), nil
	default:
	}

	// No free slot: reserve the queue slot atomically BEFORE any check, so
	// concurrent arrivals cannot all pass a check-then-act race and
	// collectively overshoot MaxQueue. A shed rejection undoes the
	// reservation and refunds the token the request never used.
	shed := func(retryAfter time.Duration, reason string) (func(), error) {
		a.queued.Add(-1)
		a.refundToken(client)
		reg.Counter("tix_admission_shed_total").Inc()
		return nil, &AdmissionError{Sentinel: ErrOverloaded, RetryAfter: retryAfter, Reason: reason}
	}
	q := a.queued.Add(1)
	predicted := a.predictWait(q)
	if int64(a.cfg.MaxQueue) < q {
		return shed(maxDuration(predicted, 50*time.Millisecond),
			fmt.Sprintf("admission queue full (%d waiting)", a.cfg.MaxQueue))
	}
	// Deadline-aware shedding: a request whose predicted queue wait cannot
	// fit inside its own deadline would only time out in line.
	if dl, ok := ctx.Deadline(); ok && predicted > 0 && time.Now().Add(predicted).After(dl) {
		return shed(predicted, fmt.Sprintf("predicted queue wait %s exceeds request deadline",
			predicted.Round(time.Millisecond)))
	}

	reg.Gauge("tix_admission_queued").Add(1)
	defer func() {
		a.queued.Add(-1)
		reg.Gauge("tix_admission_queued").Add(-1)
		reg.Histogram("tix_admission_queue_wait_seconds").Observe(time.Since(start).Seconds())
	}()
	select {
	case a.sem <- struct{}{}:
		return acquired(), nil
	case <-ctx.Done():
		reg.Counter("tix_admission_abandoned_total").Inc()
		return nil, ctx.Err()
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func newTestAdmission(cfg AdmissionConfig) *Admission {
	cfg.Metrics = metrics.NewRegistry()
	return NewAdmission(cfg)
}

func TestAdmissionZeroConfigAdmitsEverything(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{})
	for i := 0; i < 100; i++ {
		release, err := a.Admit(context.Background(), "anyone")
		if err != nil {
			t.Fatalf("zero-config Admit rejected: %v", err)
		}
		release()
	}
}

func TestAdmissionRateLimitPerClient(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{RatePerSec: 1, Burst: 2})
	// The burst admits two back-to-back requests; the third is limited.
	for i := 0; i < 2; i++ {
		release, err := a.Admit(context.Background(), "alice")
		if err != nil {
			t.Fatalf("request %d rejected within burst: %v", i, err)
		}
		release()
	}
	_, err := a.Admit(context.Background(), "alice")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third request err = %v, want ErrRateLimited", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T, want *AdmissionError", err)
	}
	if ae.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", ae.RetryAfter)
	}
	// A different client has its own bucket.
	if release, err := a.Admit(context.Background(), "bob"); err != nil {
		t.Fatalf("unrelated client limited: %v", err)
	} else {
		release()
	}
	if got := a.reg().Counter("tix_admission_rate_limited_total").Value(); got != 1 {
		t.Errorf("rate_limited_total = %d, want 1", got)
	}
}

func TestAdmissionBucketRefill(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{RatePerSec: 1000, Burst: 1})
	if release, err := a.Admit(context.Background(), "c"); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
	if _, err := a.Admit(context.Background(), "c"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second immediate request err = %v, want ErrRateLimited", err)
	}
	time.Sleep(5 * time.Millisecond) // 1000/s refills a token in 1ms
	if release, err := a.Admit(context.Background(), "c"); err != nil {
		t.Fatalf("request after refill rejected: %v", err)
	} else {
		release()
	}
}

func TestAdmissionClientTableEviction(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{RatePerSec: 100, MaxClients: 4})
	for _, c := range []string{"a", "b", "c", "d", "e", "f"} {
		if release, err := a.Admit(context.Background(), c); err != nil {
			t.Fatalf("client %s rejected: %v", c, err)
		} else {
			release()
		}
	}
	a.mu.Lock()
	n := len(a.buckets)
	a.mu.Unlock()
	if n > 4 {
		t.Fatalf("bucket table grew to %d, want ≤ MaxClients=4", n)
	}
}

func TestAdmissionConcurrencyGate(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInflight: 2, MaxQueue: 1})
	// Fill both slots.
	r1, err := a.Admit(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Admit(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}

	// One request may queue; it proceeds when a slot frees.
	var wg sync.WaitGroup
	wg.Add(1)
	queuedErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		release, err := a.Admit(context.Background(), "c")
		queuedErr <- err
		if err == nil {
			release()
		}
	}()
	// Wait until the request is actually queued before shedding the next.
	for i := 0; i < 1000 && a.queued.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.queued.Load() == 0 {
		t.Fatal("third request never queued")
	}

	// Queue is full (MaxQueue=1): the fourth arrival is shed.
	_, err = a.Admit(context.Background(), "c")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow request err = %v, want ErrOverloaded", err)
	}

	r1() // free a slot: the queued request must get it
	wg.Wait()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	r2()
	if got := a.reg().Counter("tix_admission_shed_total").Value(); got != 1 {
		t.Errorf("shed_total = %d, want 1", got)
	}
}

func TestAdmissionQueuedClientGivesUp(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInflight: 1})
	release, err := a.Admit(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, "c")
		done <- err
	}()
	for i := 0; i < 1000 && a.queued.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned request err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request did not observe cancellation")
	}
	if got := a.reg().Counter("tix_admission_abandoned_total").Value(); got != 1 {
		t.Errorf("abandoned_total = %d, want 1", got)
	}
}

func TestAdmissionDeadlineAwareShedding(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 8})
	// Teach the EWMA that requests take ~1s each.
	a.noteService(time.Second)

	release, err := a.Admit(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// A queued request would wait ≈1s; a 10ms deadline cannot fit, so the
	// request is shed up front instead of occupying queue space.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = a.Admit(ctx, "c")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("doomed request err = %v, want ErrOverloaded", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
		t.Fatalf("shed error missing RetryAfter hint: %v", err)
	}
	if a.queued.Load() != 0 {
		t.Error("shed request still counted as queued")
	}
}

// TestAdmissionQueueNeverOvershootsMaxQueue: the queue slot is reserved
// atomically, so a burst of concurrent arrivals cannot all pass a
// check-then-act race and collectively exceed MaxQueue.
func TestAdmissionQueueNeverOvershootsMaxQueue(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 2})
	release, err := a.Admit(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}

	const arrivals = 20
	outcomes := make(chan error, arrivals)
	for i := 0; i < arrivals; i++ {
		go func() {
			r, err := a.Admit(context.Background(), "c")
			outcomes <- err
			if err == nil {
				r()
			}
		}()
	}
	// All arrivals race the gate at once; exactly MaxQueue may wait, the
	// rest must shed. Wait for the sheds to land, checking the invariant.
	shedWant := int64(arrivals - 2)
	deadline := time.Now().Add(5 * time.Second)
	for a.reg().Counter("tix_admission_shed_total").Value() < shedWant && time.Now().Before(deadline) {
		if q := a.queued.Load(); q > 2 {
			t.Fatalf("queued = %d, exceeds MaxQueue=2", q)
		}
		time.Sleep(time.Millisecond)
	}
	if got := a.reg().Counter("tix_admission_shed_total").Value(); got != shedWant {
		t.Fatalf("shed_total = %d, want %d", got, shedWant)
	}
	if q := a.queued.Load(); q != 2 {
		t.Fatalf("queued = %d after sheds settled, want exactly MaxQueue=2", q)
	}
	release() // the two queued requests drain through the single slot
	served := 0
	for i := 0; i < arrivals; i++ {
		if err := <-outcomes; err == nil {
			served++
		}
	}
	if served != 2 {
		t.Fatalf("served = %d of %d queued, want 2", served, 2)
	}
}

// TestAdmissionShedRefundsToken: a request shed at the concurrency gate
// never used its rate-limit token, so the token must flow back — the
// client's next attempt is answered by the gate (503 overloaded), not
// the rate limiter (429).
func TestAdmissionShedRefundsToken(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{RatePerSec: 0.001, Burst: 1, MaxInflight: 1, MaxQueue: 8})
	a.noteService(time.Second) // queue wait prediction ≈ 1s

	release, err := a.Admit(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := a.Admit(ctx, "x") // burns x's only token, then gate-sheds
		cancel()
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("attempt %d err = %v, want ErrOverloaded (token not refunded?)", attempt, err)
		}
	}
}

func TestAdmissionEWMAConverges(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInflight: 1})
	for i := 0; i < 100; i++ {
		a.noteService(100 * time.Millisecond)
	}
	got := a.ewmaService()
	if got < 0.09 || got > 0.11 {
		t.Fatalf("EWMA after 100×100ms = %gs, want ≈0.1s", got)
	}
}

package fleet

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Sleep waits for d or until ctx is done, whichever comes first, and
// returns ctx.Err() in the latter case. It is the project's sanctioned
// replacement for bare time.Sleep in library retry/wait paths (enforced
// by tixlint's sleephygiene analyzer): a wait that ignores cancellation
// holds a request's admission slot and goroutine hostage long after the
// client has gone away.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitterRand feeds backoff jitter. A dedicated locked source (rather than
// the global one) keeps the fleet's randomness consumption from
// perturbing anything else in the process; backoff jitter has no
// determinism requirement, so seeding from the wall clock is fine here.
var jitterRand = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

// Backoff is a jittered exponential backoff schedule: attempt n (0-based)
// waits a uniformly random duration in (0, min(Base<<n, Max)], the
// "full jitter" scheme, which decorrelates retry storms from competing
// clients hitting the same degraded replica.
type Backoff struct {
	// Base is the first attempt's maximum wait (default 2ms).
	Base time.Duration
	// Max caps the exponential growth (default 250ms).
	Max time.Duration
}

// delay returns the jittered wait before retry attempt n (0-based).
func (b Backoff) delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitterRand.mu.Lock()
	n := jitterRand.r.Int63n(int64(d))
	jitterRand.mu.Unlock()
	return time.Duration(n + 1)
}

// Wait sleeps the jittered delay for retry attempt n (0-based),
// respecting ctx cancellation.
func (b Backoff) Wait(ctx context.Context, attempt int) error {
	return Sleep(ctx, b.delay(attempt))
}

package fleet

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		ceil := b.Base << attempt
		if ceil > b.Max {
			ceil = b.Max
		}
		for i := 0; i < 50; i++ {
			d := b.delay(attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("delay(%d) = %v, want in (0, %v]", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff // zero value: Base=2ms, Max=250ms
	for i := 0; i < 50; i++ {
		if d := b.delay(0); d <= 0 || d > 2*time.Millisecond {
			t.Fatalf("zero-value delay(0) = %v, want in (0, 2ms]", d)
		}
		if d := b.delay(20); d <= 0 || d > 250*time.Millisecond {
			t.Fatalf("zero-value delay(20) = %v, want in (0, 250ms]", d)
		}
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on cancellation")
	}
}

func TestSleepCompletes(t *testing.T) {
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep = %v, want nil", err)
	}
	// Non-positive durations return immediately with the ctx status.
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v, want nil", err)
	}
}

package fleet

import (
	"sync"
	"time"
)

// BreakerState is one of the three circuit-breaker states.
type BreakerState int

const (
	// StateClosed: the replica is healthy; requests flow freely.
	StateClosed BreakerState = iota
	// StateHalfOpen: the cool-down elapsed; a bounded number of probe
	// requests test whether the replica has recovered.
	StateHalfOpen
	// StateOpen: the replica exceeded the failure-rate threshold; requests
	// are routed elsewhere until the cool-down elapses.
	StateOpen
)

// String returns the conventional lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half_open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes one replica's circuit breaker. The zero value
// selects the defaults noted per field.
type BreakerConfig struct {
	// Window is the number of recent outcomes the failure rate is computed
	// over (default 32).
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// breaker may trip — a single early failure must not eject a replica
	// (default 8).
	MinSamples int
	// FailureRatio is the fraction of failures within the window that
	// opens the breaker (default 0.5).
	FailureRatio float64
	// OpenFor is the cool-down an open breaker waits before admitting
	// half-open probes (default 1s).
	OpenFor time.Duration
	// HalfOpenProbes is both the number of concurrent probe requests a
	// half-open breaker admits and the number of consecutive probe
	// successes required to close it (default 2).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	if c.MinSamples > c.Window {
		// The window can never hold MinSamples outcomes, so the trip
		// condition would be unsatisfiable and a sick replica never ejected.
		c.MinSamples = c.Window
	}
	return c
}

// Breaker is a per-replica circuit breaker over a sliding window of
// request outcomes: closed → open when the windowed failure rate crosses
// the threshold, open → half-open after a cool-down, half-open → closed
// after enough consecutive probe successes (or back to open on any probe
// failure). All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	// onTransition, when non-nil, observes every state change (metrics).
	// Called with the breaker's lock held; must not call back in.
	onTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	ring     []bool // outcome window: true = failure
	idx      int
	filled   int
	openedAt time.Time
	probes   int // half-open: probe requests in flight
	proved   int // half-open: consecutive probe successes
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State returns the current state (transitioning open → half-open lazily
// if the cool-down has elapsed, so metrics and routing agree).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// transition switches states and notifies the observer. Caller holds mu.
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// maybeHalfOpen moves an open breaker whose cool-down has elapsed into
// half-open. Caller holds mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == StateOpen && time.Since(b.openedAt) >= b.cfg.OpenFor {
		b.probes = 0
		b.proved = 0
		b.transition(StateHalfOpen)
	}
}

// Allow reports whether a request may be routed to this replica right
// now. In half-open it also reserves a probe slot, which the subsequent
// Record call releases — callers must pair every successful Allow with
// exactly one Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case StateClosed:
		return true
	case StateHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	default:
		return false
	}
}

// ReleaseProbe returns a probe slot reserved by Allow without recording
// evidence. Callers use it when an attempt's outcome carries no health
// signal — our own cancellation of a hedge loser, or a deterministic
// client-class error the replica answered correctly.
func (b *Breaker) ReleaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// Record feeds one request outcome back into the breaker.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failure {
			// The replica is still sick: reopen and restart the cool-down.
			b.openedAt = time.Now()
			b.transition(StateOpen)
			return
		}
		b.proved++
		if b.proved >= b.cfg.HalfOpenProbes {
			// Recovered: clear the window so stale failures from before the
			// outage cannot immediately re-trip the breaker.
			for i := range b.ring {
				b.ring[i] = false
			}
			b.idx, b.filled = 0, 0
			b.transition(StateClosed)
		}
	case StateClosed:
		b.recordClosedLocked(failure)
	default:
		// Open: a straggler response from before the trip; the window is
		// frozen until the half-open probes decide.
	}
}

// RecordStray feeds the outcome of an attempt that was routed without a
// successful Allow — desperation routing when every breaker rejects the
// request. A stray outcome updates a closed window exactly like Record,
// but never touches half-open probe bookkeeping: the attempt reserved no
// probe slot, so it must not release one, and a stray success must not
// count toward closing the breaker.
func (b *Breaker) RecordStray(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateClosed {
		b.recordClosedLocked(failure)
	}
}

// recordClosedLocked folds one outcome into the closed-state window,
// tripping the breaker when the failure rate crosses the threshold.
// Caller holds mu with state == StateClosed.
func (b *Breaker) recordClosedLocked(failure bool) {
	b.ring[b.idx] = failure
	b.idx = (b.idx + 1) % len(b.ring)
	if b.filled < len(b.ring) {
		b.filled++
	}
	if failure && b.filled >= b.cfg.MinSamples && b.failureRate() >= b.cfg.FailureRatio {
		b.openedAt = time.Now()
		b.transition(StateOpen)
	}
}

// failureRate returns the windowed failure fraction. Caller holds mu.
func (b *Breaker) failureRate() float64 {
	if b.filled == 0 {
		return 0
	}
	fails := 0
	for i := 0; i < b.filled; i++ {
		if b.ring[i] {
			fails++
		}
	}
	return float64(fails) / float64(b.filled)
}

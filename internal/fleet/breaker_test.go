package fleet

import (
	"testing"
	"time"
)

// testBreaker returns a breaker with a tight window and cool-down so the
// state machine can be driven quickly and deterministically.
func testBreaker() *Breaker {
	return NewBreaker(BreakerConfig{
		Window:         8,
		MinSamples:     4,
		FailureRatio:   0.5,
		OpenFor:        10 * time.Millisecond,
		HalfOpenProbes: 2,
	})
}

func TestBreakerStaysClosedBelowMinSamples(t *testing.T) {
	b := testBreaker()
	// Three straight failures: 100% failure rate but below MinSamples.
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 3 failures = %v, want closed (MinSamples gate)", got)
	}
	b.Record(true) // fourth failure reaches MinSamples
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 4 failures = %v, want open", got)
	}
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	b := testBreaker()
	// 4 successes then 4 failures: rate hits exactly 0.5 on the last.
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state at 3/7 failures = %v, want closed", got)
	}
	b.Record(true)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state at 4/8 failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	b := testBreaker()
	var transitions []BreakerState
	b.onTransition = func(_, to BreakerState) { transitions = append(transitions, to) }

	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	time.Sleep(15 * time.Millisecond) // past OpenFor
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cool-down = %v, want half_open", got)
	}
	// HalfOpenProbes=2: exactly two probe slots, the third is refused.
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused its probe quota")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a third concurrent probe")
	}
	// Two successful probes close the breaker.
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 probe successes = %v, want closed", got)
	}
	// The window was cleared on close: old failures must not re-trip.
	b.Record(true)
	if got := b.State(); got != StateClosed {
		t.Fatalf("one failure after recovery re-tripped the breaker: %v", got)
	}
	want := []BreakerState{StateOpen, StateHalfOpen, StateClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerReopensOnProbeFailure(t *testing.T) {
	b := testBreaker()
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker refused a probe")
	}
	b.Record(true) // probe failed: back to open, cool-down restarts
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request")
	}
}

func TestBreakerReleaseProbe(t *testing.T) {
	b := testBreaker()
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	time.Sleep(15 * time.Millisecond)
	b.State() // force the lazy open → half-open transition
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused its probe quota")
	}
	if b.Allow() {
		t.Fatal("probe quota not enforced")
	}
	// Releasing a slot without evidence frees it for another probe and
	// does not advance toward closing.
	b.ReleaseProbe()
	if !b.Allow() {
		t.Fatal("released probe slot not reusable")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after ReleaseProbe = %v, want half_open", got)
	}
}

// TestBreakerClampsMinSamplesToWindow: a window smaller than the
// (defaulted) MinSamples used to make the trip condition unsatisfiable —
// `filled` is capped at Window, so the breaker could never open and a
// sick replica was never ejected.
func TestBreakerClampsMinSamplesToWindow(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 4}) // default MinSamples is 8
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after a full window of failures = %v, want open (MinSamples must clamp to Window)", got)
	}
}

// TestBreakerStrayOutcomesSkipProbeBookkeeping: outcomes of attempts that
// never passed Allow (desperation routing) must not release probe slots
// they never reserved, nor count toward closing a half-open breaker.
func TestBreakerStrayOutcomesSkipProbeBookkeeping(t *testing.T) {
	b := testBreaker() // HalfOpenProbes = 2
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker refused its probe quota")
	}
	// Both slots held. Stray successes (from attempts that were refused
	// above) must neither free a slot nor advance toward closing.
	b.RecordStray(false)
	b.RecordStray(false)
	if b.Allow() {
		t.Fatal("stray outcome released a probe slot it never reserved")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after stray successes = %v, want half_open (non-probe evidence must not close)", got)
	}
	// Real probe outcomes still close the breaker.
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 probe successes = %v, want closed", got)
	}
}

// Stray evidence still feeds a closed breaker's window: a desperation
// attempt that fails is real failure data.
func TestBreakerStrayFailuresCountWhileClosed(t *testing.T) {
	b := testBreaker() // MinSamples = 4
	for i := 0; i < 4; i++ {
		b.RecordStray(true)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 4 stray failures = %v, want open", got)
	}
}

func TestBreakerIgnoresStragglersWhileOpen(t *testing.T) {
	b := testBreaker()
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	// Straggler outcomes from before the trip arrive while open: the
	// frozen window must not change state.
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != StateOpen {
		t.Fatalf("straggler successes changed open state to %v", got)
	}
}

package fleet

// Deterministic chaos drills: a replicated fleet over real databases is
// subjected to storage faults and injected latency mid-traffic, and the
// suite asserts the serving tier's contract — zero client-visible errors
// while 1-of-3 replicas is down, bounded tail latency, and the full
// breaker lifecycle (closed → open → half-open → closed) visible in
// metrics. Run under -race via `make chaos`.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/fixture"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// chaosFleet is a 3-replica fleet over fully-loaded databases, with
// breaker and retry tunings fast enough to drive the whole lifecycle in
// a test.
type chaosFleet struct {
	fleet    *Fleet
	replicas []*db.DB
	reg      *metrics.Registry
}

func newChaosFleet(t *testing.T, cfg Config) *chaosFleet {
	t.Helper()
	return newChaosFleetCached(t, cfg, 0)
}

// newChaosFleetCached builds the same fleet with a per-replica result
// cache of the given budget (0 = caching off).
func newChaosFleetCached(t *testing.T, cfg Config, cacheBytes int64) *chaosFleet {
	t.Helper()
	reg := metrics.NewRegistry()
	cf := &chaosFleet{reg: reg}
	var backends []Backend
	for i := 0; i < 3; i++ {
		d := db.New(db.Options{Metrics: metrics.NewRegistry(), CacheBytes: cacheBytes})
		if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
			t.Fatal(err)
		}
		if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
			t.Fatal(err)
		}
		d.Stats() // force the index: drills must hit the query path, not the build
		cf.replicas = append(cf.replicas, d)
		backends = append(backends, d)
	}
	cfg.Metrics = reg
	if cfg.Breaker == (BreakerConfig{}) {
		cfg.Breaker = BreakerConfig{
			Window:         8,
			MinSamples:     2,
			FailureRatio:   0.5,
			OpenFor:        30 * time.Millisecond,
			HalfOpenProbes: 1,
		}
	}
	if cfg.Backoff == (Backoff{}) {
		cfg.Backoff = Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond}
	}
	f, err := New(cfg, backends...)
	if err != nil {
		t.Fatal(err)
	}
	cf.fleet = f
	return cf
}

// drive fires n queries through w workers, returning every observed
// latency; any client-visible error fails the test immediately.
func (cf *chaosFleet) drive(t *testing.T, w, n int) []time.Duration {
	t.Helper()
	var mu sync.Mutex
	var lats []time.Duration
	errc := make(chan error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				start := time.Now()
				_, err := cf.fleet.TermSearchContext(context.Background(),
					[]string{"search", "engine"}, db.TermSearchOptions{TopK: 5})
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				mu.Lock()
				lats = append(lats, time.Since(start))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("client-visible error during drill: %v", err)
	default:
	}
	return lats
}

func p99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestChaosReplicaKilledMidTraffic is the headline drill: one of three
// replicas starts failing every storage access mid-traffic. The client
// must see zero errors (retries and routing mask the outage), the sick
// replica's breaker must open, and once the fault is lifted the breaker
// must walk half-open back to closed — all observable in the metrics
// registry.
func TestChaosReplicaKilledMidTraffic(t *testing.T) {
	cf := newChaosFleet(t, Config{HedgeAfter: -1, MaxRetries: 3})
	var lats []time.Duration

	// Healthy warm-up traffic.
	lats = append(lats, cf.drive(t, 4, 10)...)

	// Kill replica 0: every store access panics with an injected fault.
	cf.replicas[0].Store().SetFaults(&storage.FaultInjector{FailEvery: 1})
	lats = append(lats, cf.drive(t, 4, 20)...)

	if got := cf.fleet.BreakerState(0); got != StateOpen {
		t.Fatalf("killed replica's breaker = %v, want open", got)
	}
	if cf.fleet.HealthyReplicas() != 2 {
		t.Fatalf("HealthyReplicas = %d during outage, want 2", cf.fleet.HealthyReplicas())
	}
	if got := cf.reg.Counter(`tix_fleet_retries_total{op="terms"}`).Value(); got == 0 {
		t.Error("outage masked without a single retry — fault injection did not bite")
	}
	if got := cf.reg.Counter(`tix_fleet_replica_errors_total{replica="0"}`).Value(); got == 0 {
		t.Error("replica_errors_total{replica=0} = 0 during outage")
	}
	if got := cf.reg.Gauge(`tix_fleet_breaker_state{replica="0"}`).Value(); got != int64(StateOpen) {
		t.Errorf("breaker state gauge = %d, want %d (open)", got, StateOpen)
	}

	// Lift the fault; after the cool-down the breaker probes and closes.
	cf.replicas[0].Store().SetFaults(nil)
	time.Sleep(40 * time.Millisecond) // past OpenFor
	deadline := time.Now().Add(5 * time.Second)
	for cf.fleet.BreakerState(0) != StateClosed && time.Now().Before(deadline) {
		lats = append(lats, cf.drive(t, 2, 5)...)
	}
	if got := cf.fleet.BreakerState(0); got != StateClosed {
		t.Fatalf("recovered replica's breaker = %v, want closed", got)
	}

	// The full lifecycle is in the transition counters.
	for _, to := range []string{"open", "half_open", "closed"} {
		name := fmt.Sprintf(`tix_fleet_breaker_transitions_total{replica="0",to="%s"}`, to)
		if cf.reg.Counter(name).Value() == 0 {
			t.Errorf("transition counter %s never incremented", name)
		}
	}

	// Tail latency stays bounded through the whole drill: the outage costs
	// a failed attempt plus a few-ms backoff, not a timeout.
	if got := p99(lats); got > 2*time.Second {
		t.Errorf("p99 across the drill = %v, want bounded (≤ 2s)", got)
	}
}

// TestChaosSlowReplicaIsHedgedAround delays every storage access on one
// replica; hedged requests must mask the slowness (no errors, hedges
// fire and win, tail bounded well below the injected delay cost).
func TestChaosSlowReplicaIsHedgedAround(t *testing.T) {
	cf := newChaosFleet(t, Config{HedgeAfter: 5 * time.Millisecond, MaxRetries: 2})

	// Every access on replica 1 eats 20ms; a term query makes several
	// accesses, so un-hedged requests landing there would take hundreds of
	// milliseconds.
	cf.replicas[1].Store().SetFaults(&storage.FaultInjector{
		Latency: 20 * time.Millisecond, LatencyEvery: 1,
	})
	lats := cf.drive(t, 4, 15)

	if got := cf.reg.Counter(`tix_fleet_hedges_total{op="terms"}`).Value(); got == 0 {
		t.Error("no hedges fired against a slow replica")
	}
	if got := cf.reg.Counter(`tix_fleet_hedge_wins_total{op="terms"}`).Value(); got == 0 {
		t.Error("no hedge ever won against a slow replica")
	}
	if got := p99(lats); got > 2*time.Second {
		t.Errorf("p99 with a slow replica = %v, want hedged down (≤ 2s)", got)
	}
}

// driveMix fires a zipfian-flavored query mix through w workers: most
// requests repeat a small hot set (the cache-friendly head), the rest
// vary terms and top-k (the cold tail). Any client-visible error fails
// the test; the return value is every observed latency.
func (cf *chaosFleet) driveMix(t *testing.T, w, n int) []time.Duration {
	t.Helper()
	vocab := []string{"search", "engine", "information", "retrieval", "internet", "databases"}
	var mu sync.Mutex
	var lats []time.Duration
	errc := make(chan error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				var err error
				start := time.Now()
				switch {
				case (i+j)%4 != 0: // hot head: one repeated request
					_, err = cf.fleet.TermSearchContext(context.Background(),
						[]string{"search", "engine"}, db.TermSearchOptions{TopK: 5})
				case j%2 == 0: // cold tail: varying terms
					_, err = cf.fleet.TermSearchContext(context.Background(),
						[]string{vocab[j%len(vocab)], vocab[(i+j)%len(vocab)]},
						db.TermSearchOptions{TopK: 1 + j%7})
				default:
					_, err = cf.fleet.PhraseSearchContext(context.Background(),
						[]string{"search", vocab[j%len(vocab)]})
				}
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				mu.Lock()
				lats = append(lats, time.Since(start))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("client-visible error during warm-cache drill: %v", err)
	default:
	}
	return lats
}

// driveCold fires n never-before-seen requests (a unique nonce term per
// call) through w workers: guaranteed cache misses, so every one must
// reach storage on whichever replica it routes to.
func (cf *chaosFleet) driveCold(t *testing.T, w, n int, tag string) []time.Duration {
	t.Helper()
	var mu sync.Mutex
	var lats []time.Duration
	errc := make(chan error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				start := time.Now()
				_, err := cf.fleet.TermSearchContext(context.Background(),
					[]string{"search", fmt.Sprintf("%s-%d-%d", tag, i, j)},
					db.TermSearchOptions{TopK: 5})
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				mu.Lock()
				lats = append(lats, time.Since(start))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("client-visible error during cold traffic: %v", err)
	default:
	}
	return lats
}

// cacheTotals sums the result-cache counters across every replica.
func (cf *chaosFleet) cacheTotals(t *testing.T) (hits, genmiss int64) {
	t.Helper()
	for i, d := range cf.replicas {
		c := d.ResultCache()
		if c == nil {
			t.Fatalf("replica %d has no result cache; drill needs -cache-bytes wired", i)
		}
		st := c.Stats()
		hits += st.Hits
		genmiss += st.GenMiss
	}
	return hits, genmiss
}

// TestChaosWarmCacheReplicaKilled is the warm-cache drill: per-replica
// result caches are heated by zipfian traffic (with a burst of replicated
// mutations in between, so generation churn and exact invalidation are
// in play), then 1-of-3 replicas is killed mid-traffic. The contract:
// zero client-visible errors, the surviving replicas keep serving from
// their hot caches (hit counters still climbing during the outage), and
// not one request anywhere was answered from a dead generation
// (genmiss == 0) — failover never trades staleness for availability.
func TestChaosWarmCacheReplicaKilled(t *testing.T) {
	cf := newChaosFleetCached(t, Config{HedgeAfter: -1, MaxRetries: 3}, 1<<20)
	var lats []time.Duration

	// Heat every cache; routing spreads the mix across replicas.
	lats = append(lats, cf.driveMix(t, 4, 20)...)

	// Replicated mutations bump every replica's generation: the warm
	// entries die, exactly, and the next pass re-warms the new state.
	for i := 0; i < 3; i++ {
		if err := cf.fleet.Add(fmt.Sprintf("churn%d.xml", i),
			fmt.Sprintf("<doc><p>churn search engine %d</p></doc>", i)); err != nil {
			t.Fatal(err)
		}
	}
	lats = append(lats, cf.driveMix(t, 4, 20)...)

	hitsBefore, _ := cf.cacheTotals(t)
	if hitsBefore == 0 {
		t.Fatal("caches cold after warm-up traffic; drill would prove nothing")
	}

	// Kill replica 0 mid-traffic: every storage access faults. Its own
	// warm cache can still answer the hot head without touching storage
	// (caches mask storage death for cached traffic — by design), so cold
	// nonce queries are mixed in to force storage accesses and trip the
	// breaker; retries and routing must mask every fault from the client.
	cf.replicas[0].Store().SetFaults(&storage.FaultInjector{FailEvery: 1})
	lats = append(lats, cf.driveCold(t, 4, 10, "outage")...)
	lats = append(lats, cf.driveMix(t, 4, 30)...)

	if got := cf.fleet.BreakerState(0); got != StateOpen {
		t.Fatalf("killed replica's breaker = %v, want open", got)
	}
	hitsAfter, genmiss := cf.cacheTotals(t)
	if hitsAfter <= hitsBefore {
		t.Errorf("cache hits flat through the outage (%d -> %d); survivors served cold", hitsBefore, hitsAfter)
	}
	if genmiss != 0 {
		t.Errorf("genmiss = %d; a stale-generation entry was touched — results may have been stale", genmiss)
	}
	if got := p99(lats); got > 2*time.Second {
		t.Errorf("p99 across the warm-cache drill = %v, want bounded (≤ 2s)", got)
	}
}

// TestChaosAdmissionShedsUnderOverload pairs the fleet with an admission
// controller and overloads it: excess traffic is shed with typed errors
// instead of queueing into timeouts, and admitted traffic still succeeds.
func TestChaosAdmissionShedsUnderOverload(t *testing.T) {
	cf := newChaosFleet(t, Config{HedgeAfter: -1})
	adm := NewAdmission(AdmissionConfig{
		MaxInflight: 2, MaxQueue: 2, Metrics: cf.reg,
	})

	// Slow every replica a little so inflight slots stay occupied.
	for _, d := range cf.replicas {
		d.Store().SetFaults(&storage.FaultInjector{
			Latency: time.Millisecond, LatencyEvery: 4,
		})
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	served, shed := 0, 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			release, err := adm.Admit(ctx, fmt.Sprintf("client-%d", i%4))
			if err != nil {
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			defer release()
			if _, err := cf.fleet.TermSearchContext(ctx, []string{"search"}, db.TermSearchOptions{TopK: 3}); err != nil {
				t.Errorf("admitted request failed: %v", err)
				return
			}
			mu.Lock()
			served++
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if served == 0 {
		t.Fatal("overload shed everything; admitted traffic must still be served")
	}
	if shed > 0 && cf.reg.Counter("tix_admission_shed_total").Value() == 0 {
		t.Error("requests shed without incrementing tix_admission_shed_total")
	}
	if got := cf.reg.Gauge("tix_admission_inflight").Value(); got != 0 {
		t.Errorf("inflight gauge = %d after drain, want 0 (leaked slot)", got)
	}
}

package fleet

// TestFaultDrillTable reproduces the EXPERIMENTS.md fault-drill table:
// a 3-replica fleet serves a fixed amount of term-search traffic with
// 0, 1, and 2 replicas force-failing every storage access, and the
// drill reports the client-visible error rate and latency tail per
// scenario. Gated behind FLEET_DRILL=1 so the regular suite stays fast:
//
//	FLEET_DRILL=1 go test -run TestFaultDrillTable -v ./internal/fleet

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/storage"
)

func runDrillScenario(t *testing.T, degraded int) (errRate float64, p50, p99v time.Duration) {
	t.Helper()
	cf := newChaosFleet(t, Config{MaxRetries: 3})
	for i := 0; i < degraded; i++ {
		cf.replicas[i].Store().SetFaults(&storage.FaultInjector{FailEvery: 1})
	}

	const workers, perWorker = 4, 50
	var mu sync.Mutex
	var lats []time.Duration
	errs := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				start := time.Now()
				_, err := cf.fleet.TermSearchContext(context.Background(),
					[]string{"search", "engine"}, db.TermSearchOptions{TopK: 5})
				el := time.Since(start)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					lats = append(lats, el)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	total := workers * perWorker
	sortedP := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		s := append([]time.Duration(nil), lats...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		idx := int(float64(len(s)) * q)
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return float64(errs) / float64(total), sortedP(0.50), sortedP(0.99)
}

func TestFaultDrillTable(t *testing.T) {
	if os.Getenv("FLEET_DRILL") == "" {
		t.Skip("set FLEET_DRILL=1 to run the measured fault drill")
	}
	fmt.Println("| degraded replicas | client error rate | p50 | p99 |")
	fmt.Println("|---:|---:|---:|---:|")
	for _, degraded := range []int{0, 1, 2} {
		errRate, p50, p99v := runDrillScenario(t, degraded)
		fmt.Printf("| %d of 3 | %.2f%% | %s | %s |\n",
			degraded, errRate*100, p50.Round(10*time.Microsecond), p99v.Round(10*time.Microsecond))
	}
}

// Package fleet is the replicated, self-healing serving tier: it fronts
// N identical backend replicas (each a *db.DB or sharded *shard.DB
// loaded with the same corpus in the same order) and makes the query
// surface degrade gracefully instead of failing when a replica stalls or
// dies.
//
// Three mechanisms compose:
//
//   - Health-checked routing. Every replica carries a circuit breaker fed
//     by its request outcomes, classified through the exec error taxonomy:
//     storage faults (storage.ErrInjectedFault), recovered panics
//     (db.ErrPanic/shard.ErrPanic), and attempt-level deadline overruns
//     count against the replica; client-caused errors (parse failures,
//     resource-budget exhaustion, the caller's own cancellation) do not.
//     A replica whose windowed failure rate crosses the threshold is
//     ejected (breaker open), probed after a cool-down (half-open), and
//     re-admitted automatically once probes succeed (closed).
//
//   - Retries and hedges. Replica faults are retried on a healthy twin
//     under a per-request retry budget with jittered exponential backoff.
//     Independently, when the first replica's response exceeds an adaptive
//     hedge delay — the configured quantile of its own live latency
//     histogram, floored by Config.HedgeAfter — a hedge request fires to a
//     second replica; the first response wins and the loser is cancelled
//     through its context, which exec.Guard turns into a cooperative abort
//     within one check interval.
//
//   - Admission control (see Admission): per-client token buckets plus a
//     global concurrency gate with deadline-aware queue shedding, applied
//     by the HTTP layer before requests reach the fleet.
//
// The fleet implements the same surface as its replicas (server.Backend
// and the Ingestor mutation interface), so internal/server fronts a
// *Fleet exactly as it fronts a single database.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/xmltree"
	"repro/internal/xq"
)

// Backend is the replica surface the fleet routes over — structurally
// identical to server.Backend, so *db.DB and *shard.DB satisfy both, and
// *Fleet itself satisfies server.Backend.
type Backend interface {
	Stats() db.Stats
	DocumentCount() int
	MetricsRegistry() *metrics.Registry
	QueryContext(ctx context.Context, src string) ([]xq.Result, error)
	Explain(src string) (string, error)
	TermSearchContext(ctx context.Context, terms []string, opts db.TermSearchOptions) ([]exec.ScoredNode, error)
	PhraseSearchContext(ctx context.Context, phrase []string) ([]exec.PhraseMatch, error)
	Materialize(doc storage.DocID, ord int32) *xmltree.Node
	NameOf(n exec.ScoredNode) string
}

// Ingestor is the replica mutation surface (mirrors server.Ingestor).
type Ingestor interface {
	Add(name, src string) error
	Update(name, src string) error
	Delete(name string) error
	Generation() uint64
}

// ErrNoReplicas reports that no replica was available to serve a request
// (the fleet is empty — a construction error, not a runtime state: with
// every breaker open the fleet still routes as a last resort).
var ErrNoReplicas = errors.New("fleet: no replicas configured")

// Config tunes the fleet. The zero value selects the defaults noted per
// field.
type Config struct {
	// HedgeAfter is the hedge-delay floor and cold-start fallback: a hedge
	// fires to a second replica when the first has been silent this long
	// and the latency histograms cannot yet vote (default 25ms; negative
	// disables hedging).
	HedgeAfter time.Duration
	// HedgeQuantile is the latency quantile of the primary replica's live
	// histogram used as the adaptive hedge delay once HedgeMinSamples
	// observations exist (default 0.95).
	HedgeQuantile float64
	// HedgeMinSamples gates the adaptive delay (default 20).
	HedgeMinSamples int
	// MaxRetries bounds the sequential re-attempts after a replica fault
	// (default 2; the hedge does not consume retry budget).
	MaxRetries int
	// Backoff is the jittered exponential backoff schedule between
	// retries.
	Backoff Backoff
	// Breaker tunes every replica's circuit breaker.
	Breaker BreakerConfig
	// Metrics receives the fleet's own instrumentation (default
	// metrics.Default).
	Metrics *metrics.Registry
	// PanicErrors are additional sentinels (beyond db.ErrPanic and
	// storage.ErrInjectedFault) classified as hard replica faults —
	// retried on a twin and counted against the breaker. A sharded
	// backend adds shard.ErrPanic here; fleet itself cannot import the
	// shard package (shard's tests exercise the server, which fronts a
	// fleet, and Go rejects the resulting test-only cycle).
	PanicErrors []error
}

func (c Config) withDefaults() Config {
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 25 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 20
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default
	}
	return c
}

// replica is one backend plus its health machinery.
type replica struct {
	id       int
	backend  Backend
	breaker  *Breaker
	latency  *metrics.Histogram
	inflight atomic.Int64
}

// Fleet fronts N replicas. It must be constructed over fully-loaded,
// identical replicas: the corpus (and its load order, hence document
// numbering) must match across them, so any replica can serve any
// request and Materialize/NameOf agree with query results regardless of
// which replica produced them.
type Fleet struct {
	cfg      Config
	replicas []*replica
	rr       atomic.Uint64 // round-robin cursor

	// ingestMu serializes replicated mutations fleet-wide: every replica
	// observes Add/Update/Delete in one total order, so deterministic
	// document-id allocation stays in lockstep across replicas even under
	// concurrent ingest requests.
	ingestMu sync.Mutex

	// degraded latches when a partial mutation may have left the replicas
	// non-identical and the damage could not be repaired; Ready() then
	// reports not-ready so operators re-sync instead of serving silently
	// inconsistent Materialize/NameOf answers.
	degraded       atomic.Bool
	degradedMu     sync.Mutex
	degradedReason string
}

// New builds a fleet over the given replicas.
func New(cfg Config, backends ...Backend) (*Fleet, error) {
	if len(backends) == 0 {
		return nil, ErrNoReplicas
	}
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg}
	for i, b := range backends {
		rep := &replica{
			id:      i,
			backend: b,
			latency: cfg.Metrics.Histogram(fmt.Sprintf(`tix_fleet_replica_seconds{replica="%d"}`, i)),
		}
		rep.breaker = NewBreaker(cfg.Breaker)
		rep.breaker.onTransition = f.observeTransition(i)
		cfg.Metrics.Gauge(fmt.Sprintf(`tix_fleet_breaker_state{replica="%d"}`, i)).Set(int64(StateClosed))
		f.replicas = append(f.replicas, rep)
	}
	cfg.Metrics.Gauge("tix_fleet_degraded").Set(0)
	return f, nil
}

// observeTransition publishes one replica's breaker state changes.
func (f *Fleet) observeTransition(id int) func(from, to BreakerState) {
	reg := f.cfg.Metrics
	state := reg.Gauge(fmt.Sprintf(`tix_fleet_breaker_state{replica="%d"}`, id))
	return func(from, to BreakerState) {
		state.Set(int64(to))
		reg.Counter(fmt.Sprintf(`tix_fleet_breaker_transitions_total{replica="%d",to="%s"}`, id, to)).Inc()
	}
}

// Size returns the number of replicas.
func (f *Fleet) Size() int { return len(f.replicas) }

// Replica exposes one backend (tests, fault drills).
func (f *Fleet) Replica(i int) Backend { return f.replicas[i].backend }

// BreakerState returns replica i's current breaker state.
func (f *Fleet) BreakerState(i int) BreakerState { return f.replicas[i].breaker.State() }

// HealthyReplicas counts replicas whose breaker admits traffic (closed or
// half-open).
func (f *Fleet) HealthyReplicas() int {
	n := 0
	for _, r := range f.replicas {
		if r.breaker.State() != StateOpen {
			n++
		}
	}
	return n
}

// Ready implements the server's readiness probe: the fleet serves once at
// least one replica is healthy and the replicas are not known to have
// diverged.
func (f *Fleet) Ready() (bool, string) {
	if bad, reason := f.Degraded(); bad {
		return false, "replicas diverged: " + reason
	}
	if h := f.HealthyReplicas(); h == 0 {
		return false, fmt.Sprintf("no healthy replicas (0/%d breakers admit traffic)", len(f.replicas))
	}
	return true, ""
}

// Degraded reports whether a partial replicated mutation left the
// replicas potentially non-identical (and irreparable), with the first
// recorded reason. A degraded fleet keeps serving best-effort but
// reports not-ready, so orchestration drains it for a re-sync.
func (f *Fleet) Degraded() (bool, string) {
	if !f.degraded.Load() {
		return false, ""
	}
	f.degradedMu.Lock()
	defer f.degradedMu.Unlock()
	return true, f.degradedReason
}

// markDegraded latches the degraded state, keeping the first reason
// (later failures are usually consequences of the first divergence).
func (f *Fleet) markDegraded(format string, args ...any) {
	f.degradedMu.Lock()
	if f.degradedReason == "" {
		f.degradedReason = fmt.Sprintf(format, args...)
	}
	f.degradedMu.Unlock()
	f.degraded.Store(true)
	f.cfg.Metrics.Gauge("tix_fleet_degraded").Set(1)
}

// MetricsRegistry returns the fleet's registry (shared with the HTTP
// middleware when the server fronts the fleet).
func (f *Fleet) MetricsRegistry() *metrics.Registry { return f.cfg.Metrics }

// pick selects the next replica for an attempt, round-robin from a
// shared cursor so concurrent requests spread across the fleet. First
// choice: an untried replica the breaker admits (Allow reserves a probe
// slot in half-open, released again when the attempt's outcome is
// recorded; such picks return reserved=true). Fallback: any untried
// replica even if its breaker refused the attempt — when the whole fleet
// looks dead, trying beats certain failure (availability over ejection).
// Fallback picks return reserved=false: no probe slot was taken, so the
// attempt's outcome must bypass probe bookkeeping (see recordOutcome).
// Returns nil only when tried covers the fleet.
func (f *Fleet) pick(tried map[int]bool) (rep *replica, reserved bool) {
	start := int(f.rr.Add(1))
	n := len(f.replicas)
	for i := 0; i < n; i++ {
		r := f.replicas[(start+i)%n]
		if !tried[r.id] && r.breaker.Allow() {
			return r, true
		}
	}
	for i := 0; i < n; i++ {
		r := f.replicas[(start+i)%n]
		if !tried[r.id] {
			return r, false
		}
	}
	return nil, false
}

// hedgeDelay computes the adaptive hedge delay for a primary replica:
// the configured quantile of its live latency histogram once enough
// samples exist, floored by HedgeAfter; before that, HedgeAfter alone.
func (f *Fleet) hedgeDelay(rep *replica) time.Duration {
	d := f.cfg.HedgeAfter
	if rep.latency.Count() >= int64(f.cfg.HedgeMinSamples) {
		if q := rep.latency.Quantile(f.cfg.HedgeQuantile); q > 0 {
			if qd := time.Duration(q * float64(time.Second)); qd > d {
				d = qd
			}
		}
	}
	return d
}

// hardFault reports errors that indict the replica's storage or engine
// regardless of timing: injected storage faults and recovered panics
// (db.ErrPanic plus any configured PanicErrors sentinels).
func (f *Fleet) hardFault(err error) bool {
	if errors.Is(err, storage.ErrInjectedFault) || errors.Is(err, db.ErrPanic) {
		return true
	}
	for _, sentinel := range f.cfg.PanicErrors {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// replicaFault reports whether err indicts the replica (retry on a twin,
// count against its breaker) rather than the request. ctx is the
// caller's context: its own cancellation or deadline is never the
// replica's fault.
func (f *Fleet) replicaFault(ctx context.Context, err error) bool {
	switch {
	case err == nil:
		return false
	case ctx.Err() != nil:
		return false
	case f.hardFault(err):
		return true
	case errors.Is(err, exec.ErrDeadlineExceeded), errors.Is(err, exec.ErrCanceled):
		// The caller's context is alive, so this deadline/cancel came from
		// the replica's own per-query budget: the replica was too slow.
		return true
	}
	// Parse errors, resource-budget exhaustion, validation: deterministic
	// client-visible outcomes a twin would reproduce.
	return false
}

// outcome is one attempt's result.
type outcome[T any] struct {
	v        T
	err      error
	rep      *replica
	hedged   bool
	reserved bool // Allow admitted the attempt (probe slot may be held)
	elapsed  time.Duration
}

// recordOutcome feeds one attempt's result into its replica's health
// state: successes and faults are evidence, everything else (client-class
// errors, our own loser cancellation) only releases the probe slot Allow
// may have reserved. Desperation attempts (reserved=false) never passed
// Allow, so they bypass probe bookkeeping entirely — releasing a slot
// they never took would let a half-open breaker admit more concurrent
// probes than configured, and their successes must not count toward
// closing it. fault is pre-classified by the caller because the
// classification differs between live outcomes (replicaFault, which sees
// the caller's context) and drained losers (hardFault only).
func recordOutcome[T any](out outcome[T], fault bool) {
	if !out.reserved {
		switch {
		case out.err == nil:
			out.rep.breaker.RecordStray(false)
			out.rep.latency.Observe(out.elapsed.Seconds())
		case fault:
			out.rep.breaker.RecordStray(true)
		}
		return
	}
	switch {
	case out.err == nil:
		out.rep.breaker.Record(false)
		out.rep.latency.Observe(out.elapsed.Seconds())
	case fault:
		out.rep.breaker.Record(true)
	default:
		out.rep.breaker.ReleaseProbe()
	}
}

// call routes one idempotent read through the fleet: primary attempt on
// the picked replica, an optional hedge when the adaptive delay expires,
// sequential retries with jittered backoff on replica faults, first
// success wins with loser cancellation. Methods cannot be generic, so
// this is a free function over the fleet.
func call[T any](f *Fleet, ctx context.Context, op string, fn func(context.Context, Backend) (T, error)) (T, error) {
	var zero T
	reg := f.cfg.Metrics
	lbl := `{op="` + op + `"}`
	reg.Counter("tix_fleet_requests_total" + lbl).Inc()
	if err := ctx.Err(); err != nil {
		return zero, ctxError(err)
	}

	// Buffered for every possible attempt so losers never block on send.
	resc := make(chan outcome[T], len(f.replicas)+f.cfg.MaxRetries+2)
	tried := make(map[int]bool, len(f.replicas))
	var cancels []context.CancelFunc
	inflight := 0
	defer func() {
		// Cancel the losers, then drain their outcomes off-path so every
		// breaker probe slot is released and genuine faults discovered by
		// a loser still count. Loser cancellation errors carry no health
		// evidence (the parent context may be alive, so replicaFault would
		// misread them); only hard faults do.
		for _, c := range cancels {
			c()
		}
		if inflight > 0 {
			go func(n int) {
				for i := 0; i < n; i++ {
					out := <-resc
					recordOutcome(out, f.hardFault(out.err))
				}
			}(inflight)
		}
	}()

	launch := func(rep *replica, hedged, reserved bool) {
		tried[rep.id] = true
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		rep.inflight.Add(1)
		inflight++
		go func() {
			start := time.Now()
			v, err := fn(actx, rep.backend)
			rep.inflight.Add(-1)
			resc <- outcome[T]{v: v, err: err, rep: rep, hedged: hedged, reserved: reserved, elapsed: time.Since(start)}
		}()
	}

	primary, reserved := f.pick(tried)
	if primary == nil {
		return zero, ErrNoReplicas
	}
	launch(primary, false, reserved)

	var hedgeC <-chan time.Time
	if f.cfg.HedgeAfter >= 0 && len(f.replicas) > 1 {
		t := time.NewTimer(f.hedgeDelay(primary))
		defer t.Stop()
		hedgeC = t.C
	}

	retries := 0
	var lastErr error
	for {
		select {
		case out := <-resc:
			inflight--
			fault := f.replicaFault(ctx, out.err)
			recordOutcome(out, fault)
			if out.err == nil {
				if out.hedged {
					reg.Counter("tix_fleet_hedge_wins_total" + lbl).Inc()
				}
				return out.v, nil
			}
			reg.Counter(fmt.Sprintf(`tix_fleet_replica_errors_total{replica="%d"}`, out.rep.id)).Inc()
			lastErr = out.err
			if !fault {
				// Deterministic client-visible error (parse failure,
				// resource budget, the caller's own cancellation); a twin
				// would answer identically, so return it now.
				return zero, out.err
			}
			if inflight > 0 {
				// A hedge is still racing; let it finish before retrying.
				continue
			}
			if retries >= f.cfg.MaxRetries {
				return zero, lastErr
			}
			if err := f.cfg.Backoff.Wait(ctx, retries); err != nil {
				return zero, ctxError(err)
			}
			retries++
			reg.Counter("tix_fleet_retries_total" + lbl).Inc()
			next, res := f.pick(tried)
			if next == nil {
				// Every replica has been tried this request; clear the
				// history so the retry can re-probe the least-bad one.
				clear(tried)
				next, res = f.pick(tried)
			}
			if next == nil {
				return zero, lastErr
			}
			launch(next, false, res)
		case <-hedgeC:
			hedgeC = nil
			if sec, res := f.pick(tried); sec != nil {
				reg.Counter("tix_fleet_hedges_total" + lbl).Inc()
				launch(sec, true, res)
			}
		case <-ctx.Done():
			return zero, ctxError(ctx.Err())
		}
	}
}

// ctxError maps a context error to the exec taxonomy the server already
// classifies (408 timeout / 503 canceled).
func ctxError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return exec.ErrDeadlineExceeded
	}
	if errors.Is(err, context.Canceled) {
		return exec.ErrCanceled
	}
	return err
}

// ---- Backend surface -------------------------------------------------

// QueryContext evaluates an extended-XQuery string on a healthy replica,
// with retry and hedging.
func (f *Fleet) QueryContext(ctx context.Context, src string) ([]xq.Result, error) {
	return call(f, ctx, "query", func(ctx context.Context, b Backend) ([]xq.Result, error) {
		return b.QueryContext(ctx, src)
	})
}

// TermSearchContext runs a term search on a healthy replica, with retry
// and hedging.
func (f *Fleet) TermSearchContext(ctx context.Context, terms []string, opts db.TermSearchOptions) ([]exec.ScoredNode, error) {
	return call(f, ctx, "terms", func(ctx context.Context, b Backend) ([]exec.ScoredNode, error) {
		return b.TermSearchContext(ctx, terms, opts)
	})
}

// PhraseSearchContext runs a phrase search on a healthy replica, with
// retry and hedging.
func (f *Fleet) PhraseSearchContext(ctx context.Context, phrase []string) ([]exec.PhraseMatch, error) {
	return call(f, ctx, "phrase", func(ctx context.Context, b Backend) ([]exec.PhraseMatch, error) {
		return b.PhraseSearchContext(ctx, phrase)
	})
}

// Explain renders the query plan from any admitted replica (plans are
// deterministic across identical replicas).
func (f *Fleet) Explain(src string) (string, error) {
	return f.anyReplica().Explain(src)
}

// Stats reports the statistics of one replica (replicas are identical by
// construction).
func (f *Fleet) Stats() db.Stats { return f.anyReplica().Stats() }

// DocumentCount reports one replica's live-document count.
func (f *Fleet) DocumentCount() int { return f.anyReplica().DocumentCount() }

// Materialize resolves a result element on an admitted replica. Document
// numbering is identical across replicas, so any replica's answer is
// authoritative.
func (f *Fleet) Materialize(doc storage.DocID, ord int32) *xmltree.Node {
	return f.anyReplica().Materialize(doc, ord)
}

// NameOf resolves a scored node's element tag on an admitted replica.
func (f *Fleet) NameOf(n exec.ScoredNode) string { return f.anyReplica().NameOf(n) }

// anyReplica returns a closed-breaker replica for cheap deterministic
// reads, falling back to the round-robin choice when none is closed.
// State() is consulted without Allow(): these reads gather no health
// evidence and must not consume half-open probe slots.
func (f *Fleet) anyReplica() Backend {
	start := int(f.rr.Add(1))
	for i := 0; i < len(f.replicas); i++ {
		r := f.replicas[(start+i)%len(f.replicas)]
		if r.breaker.State() == StateClosed {
			return r.backend
		}
	}
	return f.replicas[start%len(f.replicas)].backend
}

// CompactionBacklog sums the replicas' outstanding compaction work, for
// the readiness probe (0 when replicas don't expose it).
func (f *Fleet) CompactionBacklog() int {
	var n int
	for _, r := range f.replicas {
		if cb, ok := r.backend.(interface{ CompactionBacklog() int }); ok {
			n += cb.CompactionBacklog()
		}
	}
	return n
}

// ---- Ingestor surface ------------------------------------------------
//
// Mutations are replicated to every replica in replica order, serialized
// by a fleet-wide mutex so all replicas observe mutations in one total
// order (each backend has only its own lock; without the fleet-level
// order, two concurrent Adds could apply in different orders on
// different replicas and allocate different document ids). The replicas
// apply the same deterministic operation, so success everywhere keeps
// them identical.
//
// Partial failures threaten the numbering invariant directly: document
// ids are allocated sequentially and never reused, and a replica that
// applied (or tombstoned a half-indexed document) consumed an id that
// the replicas the loop never reached did not. After any partial
// mutation the fleet re-aligns the allocation cursors by burning
// placeholder ids on the lagging replicas (see realignLocked); damage
// that cannot be repaired — a failed rollback, content drift from a
// partially-applied Update/Delete, a replica that hides its allocation
// cursor — latches the degraded state instead, so Ready() stops
// advertising a fleet whose replicas may disagree.

// idAllocator is the optional replica surface the numbering repair
// needs: AllocatedDocIDs exposes the document-id allocation cursor (ids
// ever handed out, live or tombstoned) and BurnDocID consumes one id
// without adding a document. *db.DB and *shard.DB both implement it.
type idAllocator interface {
	AllocatedDocIDs() int
	BurnDocID() error
}

// ingestorOf asserts one replica's mutation surface.
func (f *Fleet) ingestorOf(i int) (Ingestor, error) {
	ing, ok := f.replicas[i].backend.(Ingestor)
	if !ok {
		return nil, fmt.Errorf("fleet: replica %d does not support ingestion", i)
	}
	return ing, nil
}

// realignLocked re-equalizes the replicas' document-id allocation
// cursors after a partially-applied mutation: replicas that consumed an
// id for the failed operation sit ahead of replicas the loop never
// reached, and every subsequent Add would allocate differently per
// replica — queries score on one replica while Materialize/NameOf
// resolve on another, so diverged numbering silently returns the wrong
// document. Burning placeholder ids on the laggards restores identical
// numbering. A replica that does not expose its cursor (or whose burn
// fails) leaves the divergence unverifiable, so the fleet degrades.
// Caller holds ingestMu.
func (f *Fleet) realignLocked() {
	allocs := make([]idAllocator, len(f.replicas))
	cursors := make([]int, len(f.replicas))
	maxCur := -1
	for i, r := range f.replicas {
		a, ok := r.backend.(idAllocator)
		if !ok {
			f.markDegraded("replica %d does not expose id allocation; numbering cannot be verified", i)
			return
		}
		allocs[i] = a
		cursors[i] = a.AllocatedDocIDs()
		if cursors[i] > maxCur {
			maxCur = cursors[i]
		}
	}
	for i, n := range cursors {
		for ; n < maxCur; n++ {
			if err := allocs[i].BurnDocID(); err != nil {
				f.markDegraded("id realignment failed on replica %d: %v", i, err)
				return
			}
			f.cfg.Metrics.Counter("tix_fleet_id_realign_total").Inc()
		}
	}
}

// Add replicates an Add to every replica, rolling back on mid-fleet
// failure so no replica keeps a document the client was told failed, and
// re-aligning id allocation so the failure leaves the numbering
// invariant intact.
func (f *Fleet) Add(name, src string) error {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	for i := range f.replicas {
		ing, err := f.ingestorOf(i)
		if err == nil {
			err = ing.Add(name, src)
		}
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				prev, perr := f.ingestorOf(j)
				if perr == nil {
					perr = prev.Delete(name)
				}
				if perr != nil {
					f.markDegraded("rollback of add %q failed on replica %d: %v", name, j, perr)
				}
			}
			f.realignLocked()
			return err
		}
	}
	return nil
}

// Update replicates a document replacement to every replica. A partial
// application cannot be rolled back (the old version is already gone on
// the replicas that applied), so beyond re-aligning id allocation the
// fleet degrades: the replicas now disagree on the document's content.
func (f *Fleet) Update(name, src string) error {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	var first error
	failures := 0
	for i := range f.replicas {
		ing, err := f.ingestorOf(i)
		if err == nil {
			err = ing.Update(name, src)
		}
		if err != nil {
			failures++
			if first == nil {
				first = err
			}
		}
	}
	if failures > 0 && failures < len(f.replicas) {
		f.markDegraded("update %q applied on %d of %d replicas: %v",
			name, len(f.replicas)-failures, len(f.replicas), first)
		f.realignLocked()
	}
	return first
}

// Delete replicates a document deletion to every replica. A partial
// application leaves the document live on some replicas, so the fleet
// degrades (deletes allocate no ids; numbering needs no repair).
func (f *Fleet) Delete(name string) error {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	var first error
	failures := 0
	for i := range f.replicas {
		ing, err := f.ingestorOf(i)
		if err == nil {
			err = ing.Delete(name)
		}
		if err != nil {
			failures++
			if first == nil {
				first = err
			}
		}
	}
	if failures > 0 && failures < len(f.replicas) {
		f.markDegraded("delete %q applied on %d of %d replicas: %v",
			name, len(f.replicas)-failures, len(f.replicas), first)
	}
	return first
}

// Generation returns the maximum replica generation — a staleness token
// that changes whenever any replica applies a mutation.
func (f *Fleet) Generation() uint64 {
	var g uint64
	for i := range f.replicas {
		if ing, err := f.ingestorOf(i); err == nil {
			if ig := ing.Generation(); ig > g {
				g = ig
			}
		}
	}
	return g
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/xmltree"
	"repro/internal/xq"
)

// fakeBackend is a scriptable replica: per-call error injection, fixed
// latency, and a served counter for routing assertions.
type fakeBackend struct {
	id     int
	served atomic.Int64
	// failFor returns the error for the n-th QueryContext call (1-based);
	// nil means success. Nil failFor always succeeds.
	failFor func(call int64) error
	delay   time.Duration
}

func (f *fakeBackend) query(ctx context.Context) error {
	n := f.served.Add(1)
	if f.delay > 0 {
		if err := Sleep(ctx, f.delay); err != nil {
			return exec.ErrCanceled
		}
	}
	if f.failFor != nil {
		return f.failFor(n)
	}
	return nil
}

func (f *fakeBackend) QueryContext(ctx context.Context, src string) ([]xq.Result, error) {
	if err := f.query(ctx); err != nil {
		return nil, err
	}
	return []xq.Result{{Doc: storage.DocID(f.id), Score: 1}}, nil
}

func (f *fakeBackend) TermSearchContext(ctx context.Context, terms []string, opts db.TermSearchOptions) ([]exec.ScoredNode, error) {
	if err := f.query(ctx); err != nil {
		return nil, err
	}
	return nil, nil
}

func (f *fakeBackend) PhraseSearchContext(ctx context.Context, phrase []string) ([]exec.PhraseMatch, error) {
	if err := f.query(ctx); err != nil {
		return nil, err
	}
	return nil, nil
}

func (f *fakeBackend) Stats() db.Stats                    { return db.Stats{Documents: 1} }
func (f *fakeBackend) DocumentCount() int                 { return 1 }
func (f *fakeBackend) MetricsRegistry() *metrics.Registry { return metrics.NewRegistry() }
func (f *fakeBackend) Explain(src string) (string, error) { return "plan", nil }
func (f *fakeBackend) NameOf(n exec.ScoredNode) string    { return "node" }
func (f *fakeBackend) Materialize(doc storage.DocID, ord int32) *xmltree.Node {
	return nil
}

// newTestFleet builds a fleet over the given backends with fast breaker
// and retry tunings and an isolated registry.
func newTestFleet(t *testing.T, cfg Config, backends ...*fakeBackend) *Fleet {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Breaker == (BreakerConfig{}) {
		cfg.Breaker = BreakerConfig{
			Window:         8,
			MinSamples:     2,
			FailureRatio:   0.5,
			OpenFor:        20 * time.Millisecond,
			HalfOpenProbes: 1,
		}
	}
	if cfg.Backoff == (Backoff{}) {
		cfg.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	}
	bs := make([]Backend, len(backends))
	for i, b := range backends {
		b.id = i
		bs[i] = b
	}
	f, err := New(cfg, bs...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFleetRequiresReplicas(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("New with no backends = %v, want ErrNoReplicas", err)
	}
}

func TestFleetServesFromHealthyReplica(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	f := newTestFleet(t, Config{HedgeAfter: -1}, a, b)
	for i := 0; i < 10; i++ {
		if _, err := f.QueryContext(context.Background(), "q"); err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	// Round-robin spreads load over both replicas.
	if a.served.Load() == 0 || b.served.Load() == 0 {
		t.Errorf("round-robin skipped a replica: a=%d b=%d", a.served.Load(), b.served.Load())
	}
}

func TestFleetRetriesReplicaFaultOnTwin(t *testing.T) {
	sick := &fakeBackend{failFor: func(int64) error { return storage.ErrInjectedFault }}
	well := &fakeBackend{}
	f := newTestFleet(t, Config{HedgeAfter: -1}, sick, well)
	for i := 0; i < 10; i++ {
		if _, err := f.QueryContext(context.Background(), "q"); err != nil {
			t.Fatalf("query %d surfaced a replica fault: %v", i, err)
		}
	}
	if well.served.Load() == 0 {
		t.Fatal("healthy twin never served")
	}
	reg := f.cfg.Metrics
	if got := reg.Counter(`tix_fleet_retries_total{op="query"}`).Value(); got == 0 {
		t.Error("retries_total = 0, want > 0")
	}
	if got := reg.Counter(`tix_fleet_replica_errors_total{replica="0"}`).Value(); got == 0 {
		t.Error("replica_errors_total{replica=0} = 0, want > 0")
	}
}

func TestFleetBreakerEjectsSickReplica(t *testing.T) {
	sick := &fakeBackend{failFor: func(int64) error { return db.ErrPanic }}
	well := &fakeBackend{}
	f := newTestFleet(t, Config{HedgeAfter: -1}, sick, well)
	for i := 0; i < 20; i++ {
		if _, err := f.QueryContext(context.Background(), "q"); err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	if got := f.BreakerState(0); got != StateOpen {
		t.Fatalf("sick replica breaker = %v, want open", got)
	}
	// With the breaker open, traffic flows only to the twin.
	before := sick.served.Load()
	for i := 0; i < 10; i++ {
		if _, err := f.QueryContext(context.Background(), "q"); err != nil {
			t.Fatal(err)
		}
	}
	if sick.served.Load() != before {
		t.Errorf("open-breaker replica still served %d requests", sick.served.Load()-before)
	}
}

func TestFleetBreakerRecovers(t *testing.T) {
	var healed atomic.Bool
	flaky := &fakeBackend{failFor: func(int64) error {
		if healed.Load() {
			return nil
		}
		return storage.ErrInjectedFault
	}}
	well := &fakeBackend{}
	f := newTestFleet(t, Config{HedgeAfter: -1}, flaky, well)

	for i := 0; i < 20; i++ {
		if _, err := f.QueryContext(context.Background(), "q"); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.BreakerState(0); got != StateOpen {
		t.Fatalf("flaky replica breaker = %v, want open", got)
	}

	healed.Store(true)
	time.Sleep(25 * time.Millisecond) // past OpenFor → half-open probes
	deadline := time.Now().Add(2 * time.Second)
	for f.BreakerState(0) != StateClosed && time.Now().Before(deadline) {
		if _, err := f.QueryContext(context.Background(), "q"); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.BreakerState(0); got != StateClosed {
		t.Fatalf("healed replica breaker = %v, want closed", got)
	}
	// The transitions were published to metrics.
	reg := f.cfg.Metrics
	for _, to := range []string{"open", "half_open", "closed"} {
		name := fmt.Sprintf(`tix_fleet_breaker_transitions_total{replica="0",to="%s"}`, to)
		if reg.Counter(name).Value() == 0 {
			t.Errorf("transition counter %s = 0, want > 0", name)
		}
	}
}

func TestFleetClientErrorsAreNotRetried(t *testing.T) {
	parseErr := errors.New("xq: parse error")
	sick := &fakeBackend{failFor: func(int64) error { return parseErr }}
	f := newTestFleet(t, Config{HedgeAfter: -1}, sick, sick)
	_, err := f.QueryContext(context.Background(), "q(")
	if !errors.Is(err, parseErr) {
		t.Fatalf("err = %v, want the parse error surfaced verbatim", err)
	}
	if got := sick.served.Load(); got != 1 {
		t.Fatalf("client-class error was retried: %d attempts, want 1", got)
	}
	if got := f.cfg.Metrics.Counter(`tix_fleet_retries_total{op="query"}`).Value(); got != 0 {
		t.Errorf("retries_total = %d, want 0", got)
	}
	// The breaker saw no fault: deterministic errors are the request's
	// problem, not the replica's.
	if got := f.BreakerState(0); got != StateClosed {
		t.Errorf("breaker = %v after client errors, want closed", got)
	}
}

func TestFleetHedgesSlowPrimary(t *testing.T) {
	slow := &fakeBackend{delay: 200 * time.Millisecond}
	fast := &fakeBackend{}
	f := newTestFleet(t, Config{HedgeAfter: 5 * time.Millisecond}, slow, fast)

	start := time.Now()
	hedged := false
	// Round-robin decides which replica goes first; run a few queries so
	// at least one lands on the slow primary and must hedge to win fast.
	for i := 0; i < 4; i++ {
		if _, err := f.QueryContext(context.Background(), "q"); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) > 400*time.Millisecond {
		t.Errorf("4 queries took %v; hedging should mask the slow replica", time.Since(start))
	}
	reg := f.cfg.Metrics
	if reg.Counter(`tix_fleet_hedges_total{op="query"}`).Value() > 0 &&
		reg.Counter(`tix_fleet_hedge_wins_total{op="query"}`).Value() > 0 {
		hedged = true
	}
	if !hedged {
		t.Error("no hedge fired or won against a 200ms-slow primary")
	}
}

func TestFleetExhaustedRetriesSurfaceLastError(t *testing.T) {
	sick := &fakeBackend{failFor: func(int64) error { return storage.ErrInjectedFault }}
	f := newTestFleet(t, Config{HedgeAfter: -1, MaxRetries: 1}, sick)
	_, err := f.QueryContext(context.Background(), "q")
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault after retry budget", err)
	}
}

func TestFleetHonorsCallerContext(t *testing.T) {
	slow := &fakeBackend{delay: time.Second}
	f := newTestFleet(t, Config{HedgeAfter: -1}, slow)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.QueryContext(ctx, "q")
	if !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want exec.ErrDeadlineExceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("fleet held the request long past the caller's deadline")
	}
}

func TestFleetReadiness(t *testing.T) {
	sick := &fakeBackend{failFor: func(int64) error { return storage.ErrInjectedFault }}
	f := newTestFleet(t, Config{HedgeAfter: -1, MaxRetries: 0}, sick)
	if ok, _ := f.Ready(); !ok {
		t.Fatal("fresh fleet not ready")
	}
	for i := 0; i < 20; i++ {
		f.QueryContext(context.Background(), "q") //nolint:errcheck — driving the breaker open
	}
	if got := f.BreakerState(0); got != StateOpen {
		t.Fatalf("breaker = %v, want open", got)
	}
	ok, reason := f.Ready()
	if ok {
		t.Fatal("fleet with every breaker open reported ready")
	}
	if reason == "" {
		t.Error("not-ready fleet gave no reason")
	}
	if f.HealthyReplicas() != 0 {
		t.Errorf("HealthyReplicas = %d, want 0", f.HealthyReplicas())
	}
}

func TestFleetDeterministicReadsPreferHealthy(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	f := newTestFleet(t, Config{HedgeAfter: -1}, a, b)
	if got := f.DocumentCount(); got != 1 {
		t.Fatalf("DocumentCount = %d, want 1", got)
	}
	if plan, err := f.Explain("q"); err != nil || plan != "plan" {
		t.Fatalf("Explain = %q, %v", plan, err)
	}
	if st := f.Stats(); st.Documents != 1 {
		t.Fatalf("Stats.Documents = %d, want 1", st.Documents)
	}
}

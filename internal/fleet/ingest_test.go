package fleet

// Replicated-mutation tests: the fleet's ingest path must keep document
// numbering identical across replicas — through partial failures (the
// rollback + id-realignment path) and under concurrent mutations (the
// fleet-wide total order) — or visibly degrade when it cannot.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// scriptedIngestor wraps a real database replica so one replicated
// mutation can be forced to fail, optionally consuming a document id
// first (mimicking a half-indexed document that the live index
// tombstoned before surfacing the error).
type scriptedIngestor struct {
	*db.DB
	failAdd       error
	consumeOnFail bool
	failUpdate    error
	failDelete    error
}

func (s *scriptedIngestor) Add(name, src string) error {
	if s.failAdd != nil {
		if s.consumeOnFail {
			_ = s.DB.BurnDocID()
		}
		return s.failAdd
	}
	return s.DB.Add(name, src)
}

func (s *scriptedIngestor) Update(name, src string) error {
	if s.failUpdate != nil {
		return s.failUpdate
	}
	return s.DB.Update(name, src)
}

func (s *scriptedIngestor) Delete(name string) error {
	if s.failDelete != nil {
		return s.failDelete
	}
	return s.DB.Delete(name)
}

// newIngestFleet builds a fleet over three real database replicas, each
// loaded with the same seed document, wrapped in scriptedIngestors.
func newIngestFleet(t *testing.T) (*Fleet, []*scriptedIngestor) {
	t.Helper()
	wraps := make([]*scriptedIngestor, 3)
	backends := make([]Backend, 3)
	for i := range wraps {
		d := db.New(db.Options{Metrics: metrics.NewRegistry()})
		if err := d.LoadString("seed.xml", "<doc><p>seed text</p></doc>"); err != nil {
			t.Fatal(err)
		}
		d.Stats() // build the index up front
		wraps[i] = &scriptedIngestor{DB: d}
		backends[i] = wraps[i]
	}
	f, err := New(Config{HedgeAfter: -1, Metrics: metrics.NewRegistry()}, backends...)
	if err != nil {
		t.Fatal(err)
	}
	return f, wraps
}

// assertAligned checks every replica assigned the same id to name and
// that the allocation cursors agree.
func assertAligned(t *testing.T, wraps []*scriptedIngestor, name string) {
	t.Helper()
	wantID, wantCur := storage.DocID(0), -1
	for i, w := range wraps {
		doc := w.Store().DocByName(name)
		if doc == nil {
			t.Fatalf("replica %d is missing %q", i, name)
		}
		if i == 0 {
			wantID, wantCur = doc.ID, w.AllocatedDocIDs()
			continue
		}
		if doc.ID != wantID {
			t.Errorf("replica %d numbered %q as %d, replica 0 as %d", i, name, doc.ID, wantID)
		}
		if cur := w.AllocatedDocIDs(); cur != wantCur {
			t.Errorf("replica %d allocation cursor = %d, replica 0 = %d", i, cur, wantCur)
		}
	}
}

func TestFleetAddReplicatesWithIdenticalNumbering(t *testing.T) {
	f, wraps := newIngestFleet(t)
	for _, name := range []string{"a.xml", "b.xml"} {
		if err := f.Add(name, "<doc><p>payload</p></doc>"); err != nil {
			t.Fatalf("Add %s: %v", name, err)
		}
		assertAligned(t, wraps, name)
	}
	if bad, reason := f.Degraded(); bad {
		t.Fatalf("clean replication degraded the fleet: %s", reason)
	}
}

// TestFleetAddRollbackRealignsNumbering is the regression test for the
// silent cross-replica numbering drift: a mid-fleet Add failure used to
// leave the rolled-back appliers one allocation ahead of the replicas
// the loop never reached, so every subsequent Add numbered differently
// per replica and Materialize/NameOf (resolved on an arbitrary replica)
// could silently return the wrong document.
func TestFleetAddRollbackRealignsNumbering(t *testing.T) {
	for _, consumed := range []bool{false, true} {
		t.Run(fmt.Sprintf("failedReplicaConsumedID=%v", consumed), func(t *testing.T) {
			f, wraps := newIngestFleet(t)
			boom := errors.New("replica 1 exploded")
			wraps[1].failAdd = boom
			wraps[1].consumeOnFail = consumed

			if err := f.Add("doomed.xml", "<doc><p>x</p></doc>"); !errors.Is(err, boom) {
				t.Fatalf("Add err = %v, want the injected failure", err)
			}
			// The rollback removed the document from the replica that applied.
			for i, w := range wraps {
				if w.DocumentCount() != 1 {
					t.Errorf("replica %d holds %d live documents after rollback, want 1", i, w.DocumentCount())
				}
			}
			// Allocation cursors were re-equalized...
			for i, w := range wraps {
				if got, want := w.AllocatedDocIDs(), wraps[0].AllocatedDocIDs(); got != want {
					t.Errorf("replica %d cursor = %d, replica 0 = %d", i, got, want)
				}
			}
			// ...so the next Add numbers identically everywhere.
			wraps[1].failAdd = nil
			if err := f.Add("next.xml", "<doc><p>y</p></doc>"); err != nil {
				t.Fatal(err)
			}
			assertAligned(t, wraps, "next.xml")
			if bad, reason := f.Degraded(); bad {
				t.Fatalf("repairable failure degraded the fleet: %s", reason)
			}
			if f.MetricsRegistry().Counter("tix_fleet_id_realign_total").Value() == 0 {
				t.Error("id_realign_total = 0, want > 0 after a partial add")
			}
		})
	}
}

// TestFleetConcurrentAddsKeepNumberingAligned exercises the fleet-wide
// mutation order: without it, two concurrent Adds can apply in opposite
// orders on different replicas and swap their document ids.
func TestFleetConcurrentAddsKeepNumberingAligned(t *testing.T) {
	f, wraps := newIngestFleet(t)
	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("doc-%02d.xml", i)
			if err := f.Add(name, "<doc><p>concurrent</p></doc>"); err != nil {
				t.Errorf("Add %s: %v", name, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		assertAligned(t, wraps, fmt.Sprintf("doc-%02d.xml", i))
	}
}

func TestFleetPartialUpdateDegrades(t *testing.T) {
	f, wraps := newIngestFleet(t)
	boom := errors.New("update failed on replica 2")
	wraps[2].failUpdate = boom
	if err := f.Update("seed.xml", "<doc><p>v2</p></doc>"); !errors.Is(err, boom) {
		t.Fatalf("Update err = %v, want the injected failure", err)
	}
	bad, reason := f.Degraded()
	if !bad {
		t.Fatal("partial update did not degrade the fleet")
	}
	if reason == "" {
		t.Error("degraded fleet gave no reason")
	}
	if ok, why := f.Ready(); ok || why == "" {
		t.Errorf("degraded fleet Ready() = %v %q, want not-ready with a reason", ok, why)
	}
	if f.MetricsRegistry().Gauge("tix_fleet_degraded").Value() != 1 {
		t.Error("tix_fleet_degraded gauge not set")
	}
}

func TestFleetPartialDeleteDegrades(t *testing.T) {
	f, wraps := newIngestFleet(t)
	boom := errors.New("delete failed on replica 0")
	wraps[0].failDelete = boom
	if err := f.Delete("seed.xml"); !errors.Is(err, boom) {
		t.Fatalf("Delete err = %v, want the injected failure", err)
	}
	if bad, _ := f.Degraded(); !bad {
		t.Fatal("partial delete did not degrade the fleet")
	}
}

func TestFleetFailedRollbackDegrades(t *testing.T) {
	f, wraps := newIngestFleet(t)
	// Replica 1 rejects the add; replica 0 applied but refuses to roll
	// back — its copy of the doomed document cannot be removed.
	wraps[1].failAdd = errors.New("no room")
	wraps[0].failDelete = errors.New("stuck")
	if err := f.Add("doomed.xml", "<doc><p>x</p></doc>"); err == nil {
		t.Fatal("Add succeeded, want failure")
	}
	if bad, _ := f.Degraded(); !bad {
		t.Fatal("failed rollback did not degrade the fleet")
	}
}

// TestFleetUniformUpdateFailureDoesNotDegrade: a deterministic
// client-class failure on every replica (unknown document) is not
// divergence — the replicas still agree.
func TestFleetUniformUpdateFailureDoesNotDegrade(t *testing.T) {
	f, _ := newIngestFleet(t)
	if err := f.Update("missing.xml", "<doc/>"); !errors.Is(err, db.ErrDocumentNotFound) {
		t.Fatalf("Update err = %v, want ErrDocumentNotFound", err)
	}
	if bad, reason := f.Degraded(); bad {
		t.Fatalf("uniform failure degraded the fleet: %s", reason)
	}
}

package index

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// benchStore generates a mid-sized synthetic corpus once per benchmark —
// Build cost is dominated by tokenization plus posting accumulation, the
// paths the per-node dedup rework touched.
func benchStore(b *testing.B) *storage.Store {
	b.Helper()
	cfg := synth.DefaultConfig()
	cfg.Articles = 60
	cfg.Seed = 17
	cfg.ControlTerms = map[string]int{"needle": 500, "haystack": 300}
	c, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := storage.NewStore()
	if _, err := s.AddTree("corpus.xml", c.Root); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkBuild measures full index construction: tokenize, accumulate,
// sort-check, block-encode. The satellite fix this pins removed the
// per-text-node seen map from the ancestor walk; regressions show up here
// as allocs/op.
func BenchmarkBuild(b *testing.B) {
	s := benchStore(b)
	tok := tokenize.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := Build(s, tok)
		if idx.NumTerms() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkMaterialize measures full-list decode throughput, the cost the
// lazy cursor avoids paying upfront.
func BenchmarkMaterialize(b *testing.B) {
	s := benchStore(b)
	idx := Build(s, tokenize.New())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(idx.List("needle").Materialize()); got == 0 {
			b.Fatal("empty list")
		}
	}
}

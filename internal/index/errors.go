package index

import (
	"errors"
	"fmt"
	"math"
)

// ErrPostingOrder marks a posting stream that violates the (Doc, Pos)
// document-order invariant the block encoder and every merge-based
// operator depend on. It used to be silently repaired by a re-sort in
// Build, which masked upstream numbering bugs; now it surfaces as a
// classified error naming the offending term.
var ErrPostingOrder = errors.New("index: posting stream out of document order")

// ErrOrdinalOverflow marks a document whose node count does not fit the
// int32 ordinal a Posting records; the silent narrowing it replaces would
// have wrapped and produced postings pointing at the wrong nodes.
var ErrOrdinalOverflow = errors.New("index: node ordinal overflows int32")

// BuildError is the classified failure of a fallible index build or a
// memtable append: it carries the invariant that broke and, when known,
// the term and document where it was first observed.
type BuildError struct {
	Term string // offending term ("" when not term-specific)
	Doc  string // offending document name ("" when not known)
	Err  error  // ErrPostingOrder or ErrOrdinalOverflow
}

func (e *BuildError) Error() string {
	msg := e.Err.Error()
	if e.Term != "" {
		msg += fmt.Sprintf(" (term %q)", e.Term)
	}
	if e.Doc != "" {
		msg += fmt.Sprintf(" (document %q)", e.Doc)
	}
	return msg
}

func (e *BuildError) Unwrap() error { return e.Err }

// checkOrdinalCap validates that a document with n nodes can be indexed
// at all: node ordinals are recorded as int32 in every posting, so a
// pathological node count must be rejected before the cast, not wrapped
// by it.
func checkOrdinalCap(n int, doc string) error {
	if int64(n) > int64(math.MaxInt32) {
		return &BuildError{Doc: doc, Err: ErrOrdinalOverflow}
	}
	return nil
}

// Package index implements the positional inverted index used by every
// score-generating access method in the paper: TermJoin and its variants
// scan per-term posting lists ordered by start position; PhraseFinder
// additionally uses the word offsets kept with each posting to verify phrase
// adjacency during the intersection itself (Sec. 5.1.2).
//
// A posting records one occurrence of a term: the document, the text node
// that holds it, the absolute word position (which is a key in the same
// space as the region encoding of internal/xmltree, so containment tests
// against element regions work directly), and the word offset within the
// text node.
//
// Storage is block-compressed (internal/postings): each term's list is
// encoded into 128-posting delta+varint blocks with a skip table, cutting
// postings memory several-fold. Cursors decode lazily and seek via the
// skip table; the legacy []Posting surface remains available through
// Postings (which materializes) and NewRawList/NewCursor (which wrap raw
// slices), so both representations flow through the same operators.
package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/postings"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Posting is one occurrence of a term.
type Posting = postings.Posting

// Cursor iterates a posting list in document order with one-posting
// lookahead, as the merge-based access methods need. See
// internal/postings for the seek semantics.
type Cursor = postings.Cursor

// List is a read-only view over one term's postings, raw or
// block-compressed.
type List = postings.List

// NewCursor returns a cursor over a raw, (Doc, Pos)-sorted posting slice.
func NewCursor(ps []Posting) *Cursor { return postings.NewCursor(ps) }

// NewRawList wraps a raw, (Doc, Pos)-sorted posting slice as a List
// without copying.
func NewRawList(ps []Posting) List { return postings.NewRawList(ps) }

// Index is a positional inverted index over every document of a store.
type Index struct {
	store *storage.Store
	tok   *tokenize.Tokenizer
	lists map[string]*postings.BlockList
	total int64 // total occurrences across all terms
}

// Build tokenizes every text node of every document in s and returns the
// index. The same tokenizer must be used later for query phrases.
func Build(s *storage.Store, tok *tokenize.Tokenizer) *Index {
	idx := &Index{
		store: s,
		tok:   tok,
	}
	raw := make(map[string][]Posting)
	for _, doc := range s.Docs() {
		for ord := range doc.Nodes {
			rec := &doc.Nodes[ord]
			if rec.Kind != xmltree.Text {
				continue
			}
			for _, t := range tok.Tokenize(rec.Text) {
				raw[t.Term] = append(raw[t.Term], Posting{
					Doc:    doc.ID,
					Node:   int32(ord),
					Pos:    rec.Start + t.Offset,
					Offset: t.Offset,
				})
				idx.total++
			}
		}
	}
	// Text nodes are visited in document order per document and documents in
	// DocID order, so posting lists are already sorted; assert cheaply in
	// debug-style by re-sorting only if needed. Node frequency falls out of
	// the sorted stream during encoding ((doc, node) run transitions), so no
	// per-text-node dedup set is needed on the hot build path.
	idx.lists = make(map[string]*postings.BlockList, len(raw))
	//tixlint:ignore mapiter per-key encode writing only idx.lists[term]; no cross-key state, so iteration order cannot leak
	for term, ps := range raw {
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Less(ps[j]) }) {
			sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
		}
		idx.lists[term] = postings.Encode(ps)
	}
	return idx
}

// Restore reconstitutes an index from previously-built raw posting lists
// (the v1 persistence path of internal/db): it validates ordering,
// recomputes the derived statistics, and block-encodes each list.
func Restore(s *storage.Store, tok *tokenize.Tokenizer, raw map[string][]Posting) (*Index, error) {
	idx := &Index{
		store: s,
		tok:   tok,
		lists: make(map[string]*postings.BlockList, len(raw)),
	}
	// Validate in sorted term order so a corrupt snapshot reports the
	// same first offender on every run.
	terms := make([]string, 0, len(raw))
	for term := range raw {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for _, term := range terms {
		ps := raw[term]
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Less(ps[j]) }) {
			return nil, fmt.Errorf("index: restored postings for %q are out of order", term)
		}
		idx.total += int64(len(ps))
		idx.lists[term] = postings.Encode(ps)
	}
	return idx, nil
}

// RestoreBlocks reconstitutes an index from already-validated block lists
// (the v2 persistence path of internal/db). The map is adopted, not
// copied; every BlockList must come from postings.NewBlockList or Encode.
func RestoreBlocks(s *storage.Store, tok *tokenize.Tokenizer, lists map[string]*postings.BlockList) *Index {
	idx := &Index{
		store: s,
		tok:   tok,
		lists: lists,
	}
	//tixlint:ignore mapiter integer accumulation over list lengths is order-independent
	for _, bl := range lists {
		idx.total += int64(bl.Len())
	}
	return idx
}

// Store returns the store the index was built over.
func (idx *Index) Store() *storage.Store { return idx.store }

// Tokenizer returns the tokenizer the index was built with.
func (idx *Index) Tokenizer() *tokenize.Tokenizer { return idx.tok }

// List returns the posting list for term (lowercased exact match) as a
// zero-copy view, ordered by (Doc, Pos). Unknown terms yield an empty
// list. This is the access method operators should use: cursors over it
// decode lazily.
func (idx *Index) List(term string) List {
	return idx.lists[term].All()
}

// BlockList exposes term's encoded blocks for persistence and block-max
// pruning; nil for unknown terms.
func (idx *Index) BlockList(term string) *postings.BlockList {
	return idx.lists[term]
}

// Postings returns the posting list for term (lowercased exact match),
// ordered by (Doc, Pos). It materializes (decodes) the block-compressed
// list on every call — use List for query execution and keep Postings
// for compatibility and tests. The returned slice must not be modified.
func (idx *Index) Postings(term string) []Posting {
	return idx.lists[term].All().Materialize()
}

// TermFreq returns the total number of occurrences of term.
func (idx *Index) TermFreq(term string) int {
	return idx.lists[term].Len()
}

// NodeFreq returns the number of distinct text nodes containing term.
func (idx *Index) NodeFreq(term string) int {
	return idx.lists[term].NodeFreq()
}

// IDF returns the inverse document frequency of term over text nodes:
// log(1 + N/nf), where N is the total number of indexed text nodes with at
// least one token and nf the node frequency of the term. Unknown terms get
// the maximum IDF.
func (idx *Index) IDF(term string) float64 {
	totalNodes := idx.totalTextNodes()
	nf := idx.lists[term].NodeFreq()
	if nf == 0 {
		nf = 1
	}
	return math.Log(1 + float64(totalNodes)/float64(nf))
}

func (idx *Index) totalTextNodes() int {
	n := 0
	for _, doc := range idx.store.Docs() {
		for ord := range doc.Nodes {
			if doc.Nodes[ord].Kind == xmltree.Text {
				n++
			}
		}
	}
	return n
}

// NumTerms returns the vocabulary size.
func (idx *Index) NumTerms() int { return len(idx.lists) }

// TotalOccurrences returns the total number of indexed occurrences.
func (idx *Index) TotalOccurrences() int64 { return idx.total }

// TermsByFreq returns all terms sorted by descending total frequency; ties
// break lexicographically. Useful for workload construction.
func (idx *Index) TermsByFreq() []string {
	terms := make([]string, 0, len(idx.lists))
	for t := range idx.lists {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		fi, fj := idx.lists[terms[i]].Len(), idx.lists[terms[j]].Len()
		if fi != fj {
			return fi > fj
		}
		return terms[i] < terms[j]
	})
	return terms
}

// TermNearFreq returns an indexed term whose total frequency is as close as
// possible to want, excluding any terms in the exclude set. It returns an
// error if the index is empty.
func (idx *Index) TermNearFreq(want int, exclude map[string]bool) (string, error) {
	best := ""
	bestDiff := math.MaxFloat64
	//tixlint:ignore mapiter result is order-independent: strict (diff, lexicographic) tie-break picks the same winner whatever order the map yields
	for t, bl := range idx.lists {
		if exclude[t] {
			continue
		}
		d := math.Abs(float64(bl.Len() - want))
		if d < bestDiff || (d == bestDiff && t < best) {
			best, bestDiff = t, d
		}
	}
	if best == "" {
		return "", fmt.Errorf("index: no candidate term near frequency %d", want)
	}
	return best, nil
}

// MemStats summarizes the index's postings-memory footprint: encoded
// (payload + skip-table) bytes versus what the same postings would cost
// as raw 16-byte structs, and the resulting compression ratio.
type MemStats struct {
	Terms        int     // vocabulary size
	Postings     int64   // total encoded postings
	Blocks       int     // total encoded blocks
	PayloadBytes int64   // block payload bytes
	SkipBytes    int64   // skip-table bytes
	EncodedBytes int64   // PayloadBytes + SkipBytes
	RawBytes     int64   // baseline: Postings * 16
	Ratio        float64 // RawBytes / EncodedBytes (0 when empty)
}

// MemStats reports the compression accounting over every term's list.
func (idx *Index) MemStats() MemStats {
	ms := MemStats{Terms: len(idx.lists)}
	//tixlint:ignore mapiter integer accumulation over per-list sizes is order-independent
	for _, bl := range idx.lists {
		ms.Postings += int64(bl.Len())
		ms.Blocks += bl.NumBlocks()
		ms.PayloadBytes += int64(bl.PayloadBytes())
		ms.SkipBytes += int64(bl.SkipBytes())
		ms.RawBytes += int64(bl.RawBytes())
	}
	ms.EncodedBytes = ms.PayloadBytes + ms.SkipBytes
	if ms.EncodedBytes > 0 {
		ms.Ratio = float64(ms.RawBytes) / float64(ms.EncodedBytes)
	}
	return ms
}

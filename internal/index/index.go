// Package index implements the positional inverted index used by every
// score-generating access method in the paper: TermJoin and its variants
// scan per-term posting lists ordered by start position; PhraseFinder
// additionally uses the word offsets kept with each posting to verify phrase
// adjacency during the intersection itself (Sec. 5.1.2).
//
// A posting records one occurrence of a term: the document, the text node
// that holds it, the absolute word position (which is a key in the same
// space as the region encoding of internal/xmltree, so containment tests
// against element regions work directly), and the word offset within the
// text node.
package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Posting is one occurrence of a term.
type Posting struct {
	Doc    storage.DocID
	Node   int32  // ordinal of the containing text node
	Pos    uint32 // absolute word position (region-encoding key space)
	Offset uint32 // word offset within the text node
}

// Less orders postings by (Doc, Pos) — document order.
func (p Posting) Less(q Posting) bool {
	if p.Doc != q.Doc {
		return p.Doc < q.Doc
	}
	return p.Pos < q.Pos
}

// Index is a positional inverted index over every document of a store.
type Index struct {
	store    *storage.Store
	tok      *tokenize.Tokenizer
	postings map[string][]Posting
	nodeFreq map[string]int // number of distinct text nodes containing the term
	total    int64          // total occurrences across all terms
}

// Build tokenizes every text node of every document in s and returns the
// index. The same tokenizer must be used later for query phrases.
func Build(s *storage.Store, tok *tokenize.Tokenizer) *Index {
	idx := &Index{
		store:    s,
		tok:      tok,
		postings: make(map[string][]Posting),
		nodeFreq: make(map[string]int),
	}
	for _, doc := range s.Docs() {
		for ord := range doc.Nodes {
			rec := &doc.Nodes[ord]
			if rec.Kind != xmltree.Text {
				continue
			}
			seen := map[string]bool{}
			for _, t := range tok.Tokenize(rec.Text) {
				idx.postings[t.Term] = append(idx.postings[t.Term], Posting{
					Doc:    doc.ID,
					Node:   int32(ord),
					Pos:    rec.Start + t.Offset,
					Offset: t.Offset,
				})
				idx.total++
				if !seen[t.Term] {
					seen[t.Term] = true
					idx.nodeFreq[t.Term]++
				}
			}
		}
	}
	// Text nodes are visited in document order per document and documents in
	// DocID order, so posting lists are already sorted; assert cheaply in
	// debug-style by re-sorting only if needed.
	//tixlint:ignore mapiter per-key normalization writing only idx.postings[term]; no cross-key state, so iteration order cannot leak
	for term, ps := range idx.postings {
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Less(ps[j]) }) {
			sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
			idx.postings[term] = ps
		}
	}
	return idx
}

// Restore reconstitutes an index from previously-built posting lists (the
// persistence path of internal/db): it validates ordering and recomputes
// the derived statistics. The posting map is adopted, not copied.
func Restore(s *storage.Store, tok *tokenize.Tokenizer, postings map[string][]Posting) (*Index, error) {
	idx := &Index{
		store:    s,
		tok:      tok,
		postings: postings,
		nodeFreq: make(map[string]int, len(postings)),
	}
	// Validate in sorted term order so a corrupt snapshot reports the
	// same first offender on every run.
	terms := make([]string, 0, len(postings))
	for term := range postings {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for _, term := range terms {
		ps := postings[term]
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Less(ps[j]) }) {
			return nil, fmt.Errorf("index: restored postings for %q are out of order", term)
		}
		idx.total += int64(len(ps))
		lastNode := int32(-1)
		lastDoc := storage.DocID(-1)
		for _, p := range ps {
			if p.Doc != lastDoc || p.Node != lastNode {
				idx.nodeFreq[term]++
				lastDoc, lastNode = p.Doc, p.Node
			}
		}
	}
	return idx, nil
}

// Store returns the store the index was built over.
func (idx *Index) Store() *storage.Store { return idx.store }

// Tokenizer returns the tokenizer the index was built with.
func (idx *Index) Tokenizer() *tokenize.Tokenizer { return idx.tok }

// Postings returns the posting list for term (lowercased exact match),
// ordered by (Doc, Pos). The returned slice must not be modified.
func (idx *Index) Postings(term string) []Posting {
	return idx.postings[term]
}

// TermFreq returns the total number of occurrences of term.
func (idx *Index) TermFreq(term string) int {
	return len(idx.postings[term])
}

// NodeFreq returns the number of distinct text nodes containing term.
func (idx *Index) NodeFreq(term string) int {
	return idx.nodeFreq[term]
}

// IDF returns the inverse document frequency of term over text nodes:
// log(1 + N/nf), where N is the total number of indexed text nodes with at
// least one token and nf the node frequency of the term. Unknown terms get
// the maximum IDF.
func (idx *Index) IDF(term string) float64 {
	totalNodes := idx.totalTextNodes()
	nf := idx.nodeFreq[term]
	if nf == 0 {
		nf = 1
	}
	return math.Log(1 + float64(totalNodes)/float64(nf))
}

func (idx *Index) totalTextNodes() int {
	n := 0
	for _, doc := range idx.store.Docs() {
		for ord := range doc.Nodes {
			if doc.Nodes[ord].Kind == xmltree.Text {
				n++
			}
		}
	}
	return n
}

// NumTerms returns the vocabulary size.
func (idx *Index) NumTerms() int { return len(idx.postings) }

// TotalOccurrences returns the total number of indexed occurrences.
func (idx *Index) TotalOccurrences() int64 { return idx.total }

// TermsByFreq returns all terms sorted by descending total frequency; ties
// break lexicographically. Useful for workload construction.
func (idx *Index) TermsByFreq() []string {
	terms := make([]string, 0, len(idx.postings))
	for t := range idx.postings {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		fi, fj := len(idx.postings[terms[i]]), len(idx.postings[terms[j]])
		if fi != fj {
			return fi > fj
		}
		return terms[i] < terms[j]
	})
	return terms
}

// TermNearFreq returns an indexed term whose total frequency is as close as
// possible to want, excluding any terms in the exclude set. It returns an
// error if the index is empty.
func (idx *Index) TermNearFreq(want int, exclude map[string]bool) (string, error) {
	best := ""
	bestDiff := math.MaxFloat64
	//tixlint:ignore mapiter result is order-independent: strict (diff, lexicographic) tie-break picks the same winner whatever order the map yields
	for t, ps := range idx.postings {
		if exclude[t] {
			continue
		}
		d := math.Abs(float64(len(ps) - want))
		if d < bestDiff || (d == bestDiff && t < best) {
			best, bestDiff = t, d
		}
	}
	if best == "" {
		return "", fmt.Errorf("index: no candidate term near frequency %d", want)
	}
	return best, nil
}

// Cursor iterates a posting list in document order with one-posting
// lookahead, as the merge-based access methods need.
type Cursor struct {
	list []Posting
	pos  int
}

// NewCursor returns a cursor over ps.
func NewCursor(ps []Posting) *Cursor { return &Cursor{list: ps} }

// Valid reports whether the cursor is positioned on a posting.
func (c *Cursor) Valid() bool { return c.pos < len(c.list) }

// Cur returns the current posting; it must not be called when !Valid().
func (c *Cursor) Cur() Posting { return c.list[c.pos] }

// Advance moves to the next posting.
func (c *Cursor) Advance() { c.pos++ }

// Remaining returns the number of postings at or after the cursor.
func (c *Cursor) Remaining() int { return len(c.list) - c.pos }

// SeekPos advances the cursor to the first posting in doc with Pos >= pos
// (or to a later document). Postings before the cursor are never revisited.
func (c *Cursor) SeekPos(doc storage.DocID, pos uint32) {
	i := c.pos + sort.Search(len(c.list)-c.pos, func(i int) bool {
		p := c.list[c.pos+i]
		if p.Doc != doc {
			return p.Doc > doc
		}
		return p.Pos >= pos
	})
	c.pos = i
}

// Package index implements the positional inverted index used by every
// score-generating access method in the paper: TermJoin and its variants
// scan per-term posting lists ordered by start position; PhraseFinder
// additionally uses the word offsets kept with each posting to verify phrase
// adjacency during the intersection itself (Sec. 5.1.2).
//
// A posting records one occurrence of a term: the document, the text node
// that holds it, the absolute word position (which is a key in the same
// space as the region encoding of internal/xmltree, so containment tests
// against element regions work directly), and the word offset within the
// text node.
//
// Storage is block-compressed (internal/postings): each term's list is
// encoded into 128-posting delta+varint blocks with a skip table, cutting
// postings memory several-fold. Cursors decode lazily and seek via the
// skip table; the legacy []Posting surface remains available through
// Postings (which materializes) and NewRawList/NewCursor (which wrap raw
// slices), so both representations flow through the same operators.
package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/postings"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Posting is one occurrence of a term.
type Posting = postings.Posting

// Cursor iterates a posting list in document order with one-posting
// lookahead, as the merge-based access methods need. See
// internal/postings for the seek semantics.
type Cursor = postings.Cursor

// List is a read-only view over one term's postings, raw or
// block-compressed.
type List = postings.List

// NewCursor returns a cursor over a raw, (Doc, Pos)-sorted posting slice.
func NewCursor(ps []Posting) *Cursor { return postings.NewCursor(ps) }

// NewRawList wraps a raw, (Doc, Pos)-sorted posting slice as a List
// without copying.
func NewRawList(ps []Posting) List { return postings.NewRawList(ps) }

// Index is a positional inverted index over the documents of a store. A
// static index (Build/Restore) is a single flat segment of block lists. A
// live snapshot (Live.Snapshot) additionally unions extra immutable
// segments, frozen/active memtable runs and a tombstone set behind the
// same surface: every read-side method works over either shape, and a
// snapshot is immutable — safe to share across queries without locks.
type Index struct {
	store *storage.Store
	tok   *tokenize.Tokenizer
	lists map[string]*postings.BlockList // base segment (term → blocks)
	total int64                          // total occurrences across all segments

	// Live-snapshot extensions; all nil/zero for a static index.
	extra  []*segment           // immutable segments beyond the base, doc-ascending
	mems   []*memView           // memtable runs, oldest first
	tomb   *postings.Tombstones // deleted documents, filtered at the cursor layer
	capped bool                 // limit visible documents to docCap
	docCap int                  // visible document count when capped
	gen    uint64               // generation the snapshot was built at
}

// live reports whether the index is a multi-part live snapshot rather
// than a single flat segment.
func (idx *Index) live() bool {
	return idx.extra != nil || idx.mems != nil || idx.tomb != nil || idx.capped
}

// Build tokenizes every text node of every document in s and returns the
// index. The same tokenizer must be used later for query phrases. Build
// panics on an invariant violation (see BuildChecked for the fallible
// path); the violations are programming errors — a correctly numbered
// store cannot produce them.
func Build(s *storage.Store, tok *tokenize.Tokenizer) *Index {
	idx, err := BuildChecked(s, tok)
	if err != nil {
		panic(err)
	}
	return idx
}

// BuildChecked tokenizes every text node of every document in s and
// returns the index, surfacing invariant violations as a classified
// *BuildError instead of repairing them: an out-of-order posting stream
// (ErrPostingOrder, naming the offending term) or a document whose node
// count overflows the int32 posting ordinal (ErrOrdinalOverflow). The
// previous behaviour — silently re-sorting a disordered stream — masked
// upstream numbering bugs that every merge-based operator depends on not
// having.
func BuildChecked(s *storage.Store, tok *tokenize.Tokenizer) (*Index, error) {
	idx := &Index{
		store: s,
		tok:   tok,
	}
	raw := make(map[string][]Posting)
	for _, doc := range s.Docs() {
		if err := checkOrdinalCap(len(doc.Nodes), doc.Name); err != nil {
			return nil, err
		}
		for ord := range doc.Nodes {
			rec := &doc.Nodes[ord]
			if rec.Kind != xmltree.Text {
				continue
			}
			for _, t := range tok.Tokenize(rec.Text) {
				raw[t.Term] = append(raw[t.Term], Posting{
					Doc:    doc.ID,
					Node:   int32(ord),
					Pos:    rec.Start + t.Offset,
					Offset: t.Offset,
				})
				idx.total++
			}
		}
	}
	// Text nodes are visited in document order per document and documents
	// in DocID order, so posting lists must already be sorted; a violation
	// means the region numbering upstream is broken and is surfaced, not
	// repaired. The lexicographically smallest offender is reported so a
	// corrupt store names the same term on every run. Node frequency falls
	// out of the sorted stream during encoding ((doc, node) run
	// transitions), so no per-text-node dedup set is needed.
	bad := ""
	//tixlint:ignore mapiter strict lexicographic minimum over offenders is order-independent
	for term, ps := range raw {
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Less(ps[j]) }) {
			if bad == "" || term < bad {
				bad = term
			}
		}
	}
	if bad != "" {
		return nil, &BuildError{Term: bad, Err: ErrPostingOrder}
	}
	idx.lists = make(map[string]*postings.BlockList, len(raw))
	//tixlint:ignore mapiter per-key encode writing only idx.lists[term]; no cross-key state, so iteration order cannot leak
	for term, ps := range raw {
		bl := postings.Encode(ps)
		bl.MaybeBitmap() // pre-publication: the list is still exclusively ours
		idx.lists[term] = bl
	}
	return idx, nil
}

// Restore reconstitutes an index from previously-built raw posting lists
// (the v1 persistence path of internal/db): it validates ordering,
// recomputes the derived statistics, and block-encodes each list.
func Restore(s *storage.Store, tok *tokenize.Tokenizer, raw map[string][]Posting) (*Index, error) {
	idx := &Index{
		store: s,
		tok:   tok,
		lists: make(map[string]*postings.BlockList, len(raw)),
	}
	// Validate in sorted term order so a corrupt snapshot reports the
	// same first offender on every run.
	terms := make([]string, 0, len(raw))
	for term := range raw {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for _, term := range terms {
		ps := raw[term]
		if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Less(ps[j]) }) {
			return nil, fmt.Errorf("index: restored postings for %q are out of order", term)
		}
		idx.total += int64(len(ps))
		bl := postings.Encode(ps)
		bl.MaybeBitmap()
		idx.lists[term] = bl
	}
	return idx, nil
}

// RestoreBlocks reconstitutes an index from already-validated block lists
// (the v2 persistence path of internal/db). The map is adopted, not
// copied; every BlockList must come from postings.NewBlockList or Encode.
func RestoreBlocks(s *storage.Store, tok *tokenize.Tokenizer, lists map[string]*postings.BlockList) *Index {
	idx := &Index{
		store: s,
		tok:   tok,
		lists: lists,
	}
	// Adoption here covers the snapshot-load path: the lists were just
	// validated by NewBlockList and are not yet visible to any reader.
	//tixlint:ignore mapiter per-list accumulation and adoption; no cross-key state, so iteration order cannot leak
	for _, bl := range lists {
		idx.total += int64(bl.Len())
		bl.MaybeBitmap()
	}
	return idx
}

// Store returns the store the index was built over.
func (idx *Index) Store() *storage.Store { return idx.store }

// Tokenizer returns the tokenizer the index was built with.
func (idx *Index) Tokenizer() *tokenize.Tokenizer { return idx.tok }

// Generation returns the live generation the snapshot was built at; 0 for
// a static index.
func (idx *Index) Generation() uint64 { return idx.gen }

// Docs returns the documents visible to this index snapshot, in DocID
// order: the store's table capped at the snapshot's document count, with
// tombstoned documents removed. Operators that walk the corpus (twig
// matching, composite baselines) iterate these so deleted documents
// vanish from their results too.
func (idx *Index) Docs() []*storage.Document {
	var docs []*storage.Document
	if idx.capped {
		docs = idx.store.DocsPrefix(idx.docCap)
	} else {
		docs = idx.store.Docs()
	}
	if idx.tomb.Len() == 0 {
		return docs
	}
	live := docs[:0]
	for _, d := range docs {
		if !idx.tomb.Dead(d.ID) {
			live = append(live, d)
		}
	}
	return live
}

// List returns the posting list for term (lowercased exact match) as a
// zero-copy view, ordered by (Doc, Pos). Unknown terms yield an empty
// list. This is the access method operators should use: cursors over it
// decode lazily; over a live snapshot the view merges every segment and
// memtable run with tombstoned documents filtered out.
func (idx *Index) List(term string) List {
	if !idx.live() {
		return idx.lists[term].All()
	}
	parts := make([]postings.List, 0, 1+len(idx.extra)+len(idx.mems))
	if bl := idx.lists[term]; bl != nil {
		parts = append(parts, bl.All())
	}
	for _, seg := range idx.extra {
		if bl := seg.lists[term]; bl != nil {
			parts = append(parts, bl.All())
		}
	}
	for _, mv := range idx.mems {
		if run := mv.lists[term]; len(run.ps) > 0 {
			parts = append(parts, postings.NewRawList(run.ps))
		}
	}
	return postings.Union(idx.tomb, parts...)
}

// BlockList exposes term's encoded blocks for persistence and block-max
// pruning; nil for unknown terms. Only a flat (static) index has a single
// block list per term — live snapshots return nil, which makes top-k fall
// back to its exhaustive path and persistence flatten first.
func (idx *Index) BlockList(term string) *postings.BlockList {
	if idx.live() {
		return nil
	}
	return idx.lists[term]
}

// Postings returns the posting list for term (lowercased exact match),
// ordered by (Doc, Pos). It materializes (decodes) the block-compressed
// list on every call — use List for query execution and keep Postings
// for compatibility and tests. The returned slice must not be modified.
func (idx *Index) Postings(term string) []Posting {
	return idx.List(term).Materialize()
}

// TermFreq returns the total number of occurrences of term. Over a live
// snapshot with deletions this counts tombstone-suppressed occurrences
// too (an upper bound), matching the List.Len contract.
func (idx *Index) TermFreq(term string) int {
	if !idx.live() {
		return idx.lists[term].Len()
	}
	return idx.List(term).Len()
}

// NodeFreq returns the number of distinct text nodes containing term
// (an upper bound under tombstones: segments are document-disjoint, so
// the per-part sum is otherwise exact).
func (idx *Index) NodeFreq(term string) int {
	if !idx.live() {
		return idx.lists[term].NodeFreq()
	}
	n := 0
	if bl := idx.lists[term]; bl != nil {
		n += bl.NodeFreq()
	}
	for _, seg := range idx.extra {
		if bl := seg.lists[term]; bl != nil {
			n += bl.NodeFreq()
		}
	}
	for _, mv := range idx.mems {
		n += mv.lists[term].nodeFreq
	}
	return n
}

// IDF returns the inverse document frequency of term over text nodes:
// log(1 + N/nf), where N is the total number of indexed text nodes with at
// least one token and nf the node frequency of the term. Unknown terms get
// the maximum IDF.
func (idx *Index) IDF(term string) float64 {
	totalNodes := idx.totalTextNodes()
	nf := idx.NodeFreq(term)
	if nf == 0 {
		nf = 1
	}
	return math.Log(1 + float64(totalNodes)/float64(nf))
}

func (idx *Index) totalTextNodes() int {
	n := 0
	for _, doc := range idx.Docs() {
		for ord := range doc.Nodes {
			if doc.Nodes[ord].Kind == xmltree.Text {
				n++
			}
		}
	}
	return n
}

// termFreqs returns the union vocabulary with per-term occurrence counts
// (upper bounds under tombstones).
func (idx *Index) termFreqs() map[string]int {
	freqs := make(map[string]int, len(idx.lists))
	//tixlint:ignore mapiter integer accumulation keyed by term is order-independent
	for term, bl := range idx.lists {
		freqs[term] += bl.Len()
	}
	for _, seg := range idx.extra {
		//tixlint:ignore mapiter integer accumulation keyed by term is order-independent
		for term, bl := range seg.lists {
			freqs[term] += bl.Len()
		}
	}
	for _, mv := range idx.mems {
		for term, run := range mv.lists {
			freqs[term] += len(run.ps)
		}
	}
	return freqs
}

// NumTerms returns the vocabulary size (union across segments and
// memtable runs).
func (idx *Index) NumTerms() int {
	if !idx.live() {
		return len(idx.lists)
	}
	return len(idx.termFreqs())
}

// TotalOccurrences returns the total number of indexed occurrences
// (including tombstone-suppressed ones on a live snapshot).
func (idx *Index) TotalOccurrences() int64 { return idx.total }

// TermsByFreq returns all terms sorted by descending total frequency; ties
// break lexicographically. Useful for workload construction.
func (idx *Index) TermsByFreq() []string {
	freqs := idx.termFreqs()
	terms := make([]string, 0, len(freqs))
	for t := range freqs {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		fi, fj := freqs[terms[i]], freqs[terms[j]]
		if fi != fj {
			return fi > fj
		}
		return terms[i] < terms[j]
	})
	return terms
}

// TermNearFreq returns an indexed term whose total frequency is as close as
// possible to want, excluding any terms in the exclude set. It returns an
// error if the index is empty.
func (idx *Index) TermNearFreq(want int, exclude map[string]bool) (string, error) {
	best := ""
	bestDiff := math.MaxFloat64
	//tixlint:ignore mapiter result is order-independent: strict (diff, lexicographic) tie-break picks the same winner whatever order the map yields
	for t, freq := range idx.termFreqs() {
		if exclude[t] {
			continue
		}
		d := math.Abs(float64(freq - want))
		if d < bestDiff || (d == bestDiff && t < best) {
			best, bestDiff = t, d
		}
	}
	if best == "" {
		return "", fmt.Errorf("index: no candidate term near frequency %d", want)
	}
	return best, nil
}

// MemStats summarizes the index's postings-memory footprint: encoded
// (payload + skip-table) bytes versus what the same postings would cost
// as raw 16-byte structs, and the resulting compression ratio.
type MemStats struct {
	Terms         int   // vocabulary size
	Postings      int64 // total encoded postings
	Blocks        int   // total encoded blocks
	PayloadBytes  int64 // block payload bytes
	SkipBytes     int64 // skip-table bytes
	MemtableBytes int64 // raw bytes held in uncompressed memtable runs
	// The adaptive dense representation (postings.MaybeBitmap) is an
	// accelerator layered over the encoded form, not a replacement for it,
	// so its resident cost is reported separately and does not enter the
	// compression ratio — the encoded payload stays authoritative for
	// persistence either way.
	BitmapTerms  int     // lists carrying the adopted dense representation
	BitmapBytes  int64   // resident bytes of the dense representation
	EncodedBytes int64   // PayloadBytes + SkipBytes + MemtableBytes
	RawBytes     int64   // baseline: Postings * 16
	Ratio        float64 // RawBytes / EncodedBytes (0 when empty)
}

// MemStats reports the compression accounting over every term's list,
// spanning all segments plus (uncompressed) memtable runs.
func (idx *Index) MemStats() MemStats {
	ms := MemStats{Terms: idx.NumTerms()}
	segs := make([]map[string]*postings.BlockList, 0, 1+len(idx.extra))
	if idx.lists != nil {
		segs = append(segs, idx.lists)
	}
	for _, seg := range idx.extra {
		segs = append(segs, seg.lists)
	}
	for _, lists := range segs {
		//tixlint:ignore mapiter integer accumulation over per-list sizes is order-independent
		for _, bl := range lists {
			ms.Postings += int64(bl.Len())
			ms.Blocks += bl.NumBlocks()
			ms.PayloadBytes += int64(bl.PayloadBytes())
			ms.SkipBytes += int64(bl.SkipBytes())
			ms.RawBytes += int64(bl.RawBytes())
			if bl.HasBitmap() {
				ms.BitmapTerms++
				ms.BitmapBytes += int64(bl.BitmapBytes())
			}
		}
	}
	for _, mv := range idx.mems {
		//tixlint:ignore mapiter integer accumulation over per-run sizes is order-independent
		for _, run := range mv.lists {
			n := int64(len(run.ps))
			ms.Postings += n
			ms.MemtableBytes += n * rawPostingBytes
			ms.RawBytes += n * rawPostingBytes
		}
	}
	ms.EncodedBytes = ms.PayloadBytes + ms.SkipBytes + ms.MemtableBytes
	if ms.EncodedBytes > 0 {
		ms.Ratio = float64(ms.RawBytes) / float64(ms.EncodedBytes)
	}
	return ms
}

// rawPostingBytes mirrors the in-memory footprint of one uncompressed
// Posting used by the compression baseline in internal/postings.
const rawPostingBytes = 16

package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

func buildIndex(t testing.TB, docs map[string]string) (*storage.Store, *Index) {
	t.Helper()
	s := storage.NewStore()
	for name, src := range docs {
		if _, err := s.AddTree(name, mustParse(src)); err != nil {
			t.Fatalf("AddTree(%s): %v", name, err)
		}
	}
	return s, Build(s, tokenize.New())
}

func TestBuildCountsOccurrences(t *testing.T) {
	_, idx := buildIndex(t, map[string]string{
		"a.xml": `<a><b>search engine</b><c>search engine search</c></a>`,
	})
	if got := idx.TermFreq("search"); got != 3 {
		t.Errorf("TermFreq(search) = %d, want 3", got)
	}
	if got := idx.TermFreq("engine"); got != 2 {
		t.Errorf("TermFreq(engine) = %d, want 2", got)
	}
	if got := idx.TermFreq("missing"); got != 0 {
		t.Errorf("TermFreq(missing) = %d, want 0", got)
	}
	if got := idx.NodeFreq("search"); got != 2 {
		t.Errorf("NodeFreq(search) = %d, want 2", got)
	}
	if idx.TotalOccurrences() != 5 {
		t.Errorf("TotalOccurrences = %d, want 5", idx.TotalOccurrences())
	}
	if idx.NumTerms() != 2 {
		t.Errorf("NumTerms = %d, want 2", idx.NumTerms())
	}
}

func TestPostingsOrderAndPositions(t *testing.T) {
	s, idx := buildIndex(t, map[string]string{
		"a.xml": `<a><b>one two</b><c>two one two</c></a>`,
	})
	doc := s.DocByName("a.xml")
	ps := idx.Postings("two")
	if len(ps) != 3 {
		t.Fatalf("postings = %d, want 3", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if !ps[i-1].Less(ps[i]) {
			t.Errorf("postings out of order at %d", i)
		}
	}
	// Positions must sit inside the containing text node's region and be
	// consistent with the recorded offset.
	for _, p := range ps {
		rec := doc.Nodes[p.Node]
		if rec.Kind != xmltree.Text {
			t.Fatalf("posting node %d is not text", p.Node)
		}
		if p.Pos != rec.Start+p.Offset {
			t.Errorf("pos %d != node start %d + offset %d", p.Pos, rec.Start, p.Offset)
		}
		if p.Pos < rec.Start || p.Pos > rec.End {
			t.Errorf("pos %d outside text region [%d,%d]", p.Pos, rec.Start, rec.End)
		}
	}
}

func TestPositionsContainedInAncestors(t *testing.T) {
	s, idx := buildIndex(t, map[string]string{
		"a.xml": `<article><chapter><p>tix is a bulk algebra</p></chapter><p>algebra again</p></article>`,
	})
	doc := s.DocByName("a.xml")
	for _, p := range idx.Postings("algebra") {
		// Every ancestor element region must contain the position.
		acc := storage.NewAccessor(s)
		for _, anc := range acc.Ancestors(doc.ID, p.Node) {
			rec := doc.Nodes[anc]
			if p.Pos <= rec.Start || p.Pos > rec.End {
				t.Errorf("occurrence pos %d not inside ancestor region [%d,%d]", p.Pos, rec.Start, rec.End)
			}
		}
	}
}

func TestMultiDocOrdering(t *testing.T) {
	_, idx := buildIndex(t, map[string]string{
		"a.xml": `<a>shared term</a>`,
		"b.xml": `<b>shared again shared</b>`,
	})
	ps := idx.Postings("shared")
	if len(ps) != 3 {
		t.Fatalf("postings = %d, want 3", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if !ps[i-1].Less(ps[i]) {
			t.Errorf("cross-doc postings out of order")
		}
	}
}

func TestIDFMonotonic(t *testing.T) {
	_, idx := buildIndex(t, map[string]string{
		"a.xml": `<a><p>rare</p><p>common x</p><p>common y</p><p>common z</p></a>`,
	})
	if idx.IDF("rare") <= idx.IDF("common") {
		t.Errorf("IDF(rare)=%f should exceed IDF(common)=%f", idx.IDF("rare"), idx.IDF("common"))
	}
	if idx.IDF("nonexistent") < idx.IDF("rare") {
		t.Errorf("unknown terms should get maximal IDF")
	}
}

func TestTermsByFreqAndNearFreq(t *testing.T) {
	_, idx := buildIndex(t, map[string]string{
		"a.xml": `<a>x x x y y z</a>`,
	})
	terms := idx.TermsByFreq()
	if len(terms) != 3 || terms[0] != "x" || terms[1] != "y" || terms[2] != "z" {
		t.Fatalf("TermsByFreq = %v", terms)
	}
	got, err := idx.TermNearFreq(2, nil)
	if err != nil || got != "y" {
		t.Errorf("TermNearFreq(2) = %q, %v", got, err)
	}
	got, err = idx.TermNearFreq(2, map[string]bool{"y": true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "x" && got != "z" {
		t.Errorf("TermNearFreq(2, excl y) = %q", got)
	}
	empty := Build(storage.NewStore(), tokenize.New())
	if _, err := empty.TermNearFreq(1, nil); err == nil {
		t.Errorf("empty index should error")
	}
}

func TestCursor(t *testing.T) {
	_, idx := buildIndex(t, map[string]string{
		"a.xml": `<a>w a w b w c w</a>`,
	})
	c := NewCursor(idx.Postings("w"))
	if c.Remaining() != 4 {
		t.Fatalf("Remaining = %d", c.Remaining())
	}
	var seen []uint32
	for c.Valid() {
		seen = append(seen, c.Cur().Pos)
		c.Advance()
	}
	if len(seen) != 4 {
		t.Fatalf("iterated %d", len(seen))
	}
	// SeekPos lands on the first posting at or after the target.
	c2 := NewCursor(idx.Postings("w"))
	c2.SeekPos(0, seen[2])
	if !c2.Valid() || c2.Cur().Pos != seen[2] {
		t.Errorf("SeekPos exact failed")
	}
	c2.SeekPos(0, seen[3]+100)
	if c2.Valid() {
		t.Errorf("SeekPos past end should invalidate")
	}
}

func TestCursorSeekAcrossDocuments(t *testing.T) {
	_, idx := buildIndex(t, map[string]string{
		"a.xml": `<a>w w w</a>`,
		"b.xml": `<b>w w</b>`,
		"c.xml": `<c>w</c>`,
	})
	ps := idx.Postings("w")
	if len(ps) != 6 {
		t.Fatalf("postings = %d", len(ps))
	}
	c := NewCursor(ps)
	// Seek straight into the second document.
	c.SeekPos(1, 0)
	if !c.Valid() || c.Cur().Doc != 1 {
		t.Fatalf("seek to doc 1 landed on %+v", c.Cur())
	}
	// Seek within the second document past its last posting rolls into
	// the third.
	c.SeekPos(1, ps[len(ps)-1].Pos+100)
	if !c.Valid() || c.Cur().Doc != 2 {
		t.Fatalf("roll-over seek landed on %+v", c.Cur())
	}
	// Seek past everything invalidates.
	c.SeekPos(5, 0)
	if c.Valid() {
		t.Errorf("seek past end still valid")
	}
}

func TestRestoreValidation(t *testing.T) {
	s, idx := buildIndex(t, map[string]string{"a.xml": `<a>x y x</a>`})
	// A valid restore reproduces the statistics.
	postings := map[string][]Posting{
		"x": append([]Posting(nil), idx.Postings("x")...),
		"y": append([]Posting(nil), idx.Postings("y")...),
	}
	r, err := Restore(s, idx.Tokenizer(), postings)
	if err != nil {
		t.Fatal(err)
	}
	if r.TermFreq("x") != 2 || r.NodeFreq("x") != 1 || r.TotalOccurrences() != 3 {
		t.Errorf("restored stats wrong: %d %d %d", r.TermFreq("x"), r.NodeFreq("x"), r.TotalOccurrences())
	}
	// Out-of-order postings are rejected.
	bad := map[string][]Posting{
		"x": {{Doc: 0, Pos: 9}, {Doc: 0, Pos: 1}},
	}
	if _, err := Restore(s, idx.Tokenizer(), bad); err == nil {
		t.Errorf("out-of-order restore accepted")
	}
}

func TestQuickIndexMatchesNaiveCount(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := xmltree.NewElement("r")
		want := map[string]int{}
		for i := 0; i < 1+rng.Intn(8); i++ {
			el := xmltree.NewElement("p")
			var text string
			for j := 0; j < rng.Intn(6); j++ {
				w := words[rng.Intn(len(words))]
				want[w]++
				if text != "" {
					text += " "
				}
				text += w
			}
			if text != "" {
				el.AppendChild(xmltree.NewText(text))
			}
			root.AppendChild(el)
		}
		xmltree.Number(root)
		s := storage.NewStore()
		if _, err := s.AddTree("t", root); err != nil {
			return false
		}
		idx := Build(s, tokenize.New())
		for _, w := range words {
			if idx.TermFreq(w) != want[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/postings"
	"repro/internal/storage"
	"repro/internal/tokenize"
)

// LiveConfig tunes the LSM behaviour of a live index. The zero value
// means: seal the active memtable every 32k postings, fold once more than
// 8 segments accumulate, compact in the background.
type LiveConfig struct {
	// SealPostings is the active-memtable size (in postings) that triggers
	// a seal. <=0 selects the default.
	SealPostings int
	// MaxSegments is the immutable-segment count above which a background
	// fold collapses them into one. <=0 selects the default.
	MaxSegments int
	// ManualCompact disables background folding; sealed memtables then
	// accumulate until Compact is called. Tests use this for determinism.
	ManualCompact bool
}

const (
	defaultSealPostings = 32 << 10
	defaultMaxSegments  = 8
)

// Live is the mutable layer over the immutable block-segment index: an
// LSM tree of one active memtable, zero or more sealed (frozen)
// memtables, and encoded segments, plus the tombstone set of deleted
// documents. Writers are serialized by the caller or by Live's own lock;
// readers take immutable snapshots (Snapshot) and never block writers.
//
// Document ids are allocated by the store monotonically and never reused,
// so every layer covers a disjoint ascending id range; an update is a
// tombstone plus a fresh id. Compaction folds sealed memtables and
// segments into fresh block lists under a generation counter — a snapshot
// is rebuilt only when the generation moved.
type Live struct {
	store *storage.Store
	tok   *tokenize.Tokenizer
	cfg   LiveConfig

	mu      sync.Mutex
	segs    []*segment  // immutable encoded segments, doc-ascending
	frozen  []*memtable // sealed memtables, oldest first (immutable)
	active  *memtable
	tomb    *postings.Tombstones
	indexed int // documents visible to snapshots (contiguous id prefix)

	gen  atomic.Uint64
	snap atomic.Pointer[Index]

	foldMu      sync.Mutex // serializes folds (background and Compact)
	foldPending atomic.Bool
	wg          sync.WaitGroup
}

// NewLive builds the base segment over the store's current documents and
// returns the live index. Invariant violations surface as *BuildError,
// exactly as BuildChecked reports them.
func NewLive(s *storage.Store, tok *tokenize.Tokenizer, cfg LiveConfig) (*Live, error) {
	if cfg.SealPostings <= 0 {
		cfg.SealPostings = defaultSealPostings
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = defaultMaxSegments
	}
	idx, err := BuildChecked(s, tok)
	if err != nil {
		return nil, err
	}
	return liveFromFlat(idx, cfg), nil
}

// LiveFromIndex adopts an already-built flat index (e.g. restored from a
// snapshot file) as the base segment of a live index.
func LiveFromIndex(idx *Index, cfg LiveConfig) *Live {
	if cfg.SealPostings <= 0 {
		cfg.SealPostings = defaultSealPostings
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = defaultMaxSegments
	}
	return liveFromFlat(idx, cfg)
}

func liveFromFlat(idx *Index, cfg LiveConfig) *Live {
	l := &Live{
		store:   idx.store,
		tok:     idx.tok,
		cfg:     cfg,
		segs:    []*segment{{lists: idx.lists, total: idx.total}},
		active:  newMemtable(),
		indexed: idx.store.NumDocs(),
	}
	l.snap.Store(idx)
	return l
}

// Store returns the document store the live index indexes.
func (l *Live) Store() *storage.Store { return l.store }

// Tokenizer returns the tokenizer documents are ingested with.
func (l *Live) Tokenizer() *tokenize.Tokenizer { return l.tok }

// Generation returns the current mutation generation. Every document add,
// delete and compaction fold advances it; equal generations imply an
// identical visible index.
func (l *Live) Generation() uint64 { return l.gen.Load() }

// IndexDoc ingests one already-stored document into the active memtable.
// Documents must be indexed in id order (the facade's mutation lock
// guarantees this). On an invariant violation the document is tombstoned —
// a half-indexed document never becomes visible — and the classified
// error is returned.
func (l *Live) IndexDoc(doc *storage.Document) error {
	l.mu.Lock()
	err := l.active.addDoc(doc, l.tok)
	if err != nil {
		l.tomb = l.tomb.WithDead(doc.ID)
	}
	if n := int(doc.ID) + 1; n > l.indexed {
		l.indexed = n
	}
	seal := l.active.total >= int64(l.cfg.SealPostings)
	if seal {
		l.frozen = append(l.frozen, l.active)
		l.active = newMemtable()
	}
	l.gen.Add(1)
	l.mu.Unlock()
	if seal {
		l.maybeCompact()
	}
	return err
}

// Delete tombstones a document. Its postings stop flowing out of every
// cursor immediately; the space is reclaimed when a fold next touches the
// layers that hold them.
func (l *Live) Delete(id storage.DocID) {
	l.mu.Lock()
	l.tomb = l.tomb.WithDead(id)
	l.gen.Add(1)
	l.mu.Unlock()
}

// IsDead reports whether id is tombstoned.
func (l *Live) IsDead(id storage.DocID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tomb.Dead(id)
}

// DeadCount returns the number of tombstoned documents.
func (l *Live) DeadCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tomb.Len()
}

// Snapshot returns an immutable index over the current visible state.
// Snapshots are cached per generation: an unchanged live index hands out
// the same *Index, and a live index that has seen no mutations since its
// last fold hands out a flat one — preserving the static fast paths
// (block-max pruning, direct persistence).
func (l *Live) Snapshot() *Index {
	if s := l.snap.Load(); s != nil && s.gen == l.gen.Load() {
		return s
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	gen := l.gen.Load()
	if s := l.snap.Load(); s != nil && s.gen == gen {
		return s
	}
	s := l.buildSnapshotLocked(gen)
	l.snap.Store(s)
	return s
}

func (l *Live) buildSnapshotLocked(gen uint64) *Index {
	storeDocs := l.store.NumDocs()
	if len(l.segs) == 1 && len(l.frozen) == 0 && l.active.total == 0 &&
		l.tomb.Len() == 0 && l.indexed == storeDocs {
		return &Index{
			store: l.store, tok: l.tok,
			lists: l.segs[0].lists, total: l.segs[0].total,
			gen: gen,
		}
	}
	idx := &Index{
		store: l.store, tok: l.tok,
		tomb: l.tomb, capped: true, docCap: l.indexed, gen: gen,
	}
	if len(l.segs) > 0 {
		idx.lists = l.segs[0].lists
		idx.total = l.segs[0].total
	} else {
		idx.lists = map[string]*postings.BlockList{}
	}
	idx.extra = make([]*segment, 0, len(l.segs))
	for _, seg := range l.segs[min(1, len(l.segs)):] {
		idx.extra = append(idx.extra, seg)
		idx.total += seg.total
	}
	idx.mems = make([]*memView, 0, len(l.frozen)+1)
	for _, mt := range l.frozen {
		v := mt.view() // frozen memtables are immutable; safe without their writer
		idx.mems = append(idx.mems, v)
		idx.total += v.total
	}
	if l.active.total > 0 {
		v := l.active.view()
		idx.mems = append(idx.mems, v)
		idx.total += v.total
	}
	return idx
}

// maybeCompact spawns one background fold unless one is already pending.
func (l *Live) maybeCompact() {
	if l.cfg.ManualCompact {
		return
	}
	if !l.foldPending.CompareAndSwap(false, true) {
		return
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.foldMu.Lock()
		defer l.foldMu.Unlock()
		l.foldPending.Store(false)
		l.fold(false)
	}()
}

// WaitCompaction blocks until any in-flight background fold finishes.
func (l *Live) WaitCompaction() { l.wg.Wait() }

// Backlog returns the amount of compaction work outstanding: sealed
// memtables waiting to be folded plus segments beyond the single flat
// list a fully-compacted index serves from. Readiness probes compare it
// against a threshold — a large backlog means queries are paying for
// many-way merge cursors and block-max pruning is disabled.
func (l *Live) Backlog() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.frozen)
	if len(l.segs) > 1 {
		n += len(l.segs) - 1
	}
	return n
}

// Compact synchronously folds everything — sealed memtables, the active
// memtable, and all segments — into a single fresh segment, dropping
// postings of documents tombstoned at the start of the fold. Reads stay
// consistent throughout: the fold only ever swaps equivalent
// representations under the generation counter.
func (l *Live) Compact() {
	l.foldMu.Lock()
	defer l.foldMu.Unlock()
	l.mu.Lock()
	if l.active.total > 0 {
		l.frozen = append(l.frozen, l.active)
		l.active = newMemtable()
		l.gen.Add(1)
	}
	l.mu.Unlock()
	l.fold(true)
}

// fold drains sealed memtables into encoded segments and, when the
// segment count exceeds the configured bound (or full is set), collapses
// all segments into one. It loops until no work remains, so seals that
// land mid-fold are picked up before the fold goroutine exits. Callers
// hold foldMu; only fold mutates l.segs or removes from l.frozen, and
// writers only append to l.frozen, which is what makes the splice at the
// end of each pass safe.
func (l *Live) fold(full bool) {
	for {
		l.mu.Lock()
		frozen := append([]*memtable(nil), l.frozen...)
		segs := append([]*segment(nil), l.segs...)
		tomb := l.tomb
		l.mu.Unlock()

		collapse := full || len(segs)+len(frozen) > l.cfg.MaxSegments
		if len(frozen) == 0 && (!collapse || len(segs) <= 1) {
			return
		}

		next := segs
		for _, mt := range frozen {
			if seg := mt.view().encode(tomb); len(seg.lists) > 0 {
				next = append(next, seg)
			}
		}
		if collapse && len(next) > 1 {
			next = []*segment{foldSegments(next, tomb)}
		}

		l.mu.Lock()
		l.segs = next
		l.frozen = l.frozen[len(frozen):]
		l.gen.Add(1)
		l.mu.Unlock()

		if full {
			full = false // one full pass; later passes only drain stragglers
		}
	}
}

// foldSegments merges segments (document-disjoint, ascending) into one
// fresh segment, filtering documents tombstoned in tomb. The per-term
// merge reuses the same Union cursor the read path runs on, so fold
// output is byte-identical to what queries were already seeing.
func foldSegments(segs []*segment, tomb *postings.Tombstones) *segment {
	vocab := make(map[string]struct{})
	for _, seg := range segs {
		//tixlint:ignore mapiter set union; the keys are sorted below before any ordered use
		for term := range seg.lists {
			vocab[term] = struct{}{}
		}
	}
	terms := make([]string, 0, len(vocab))
	for term := range vocab {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	out := &segment{lists: make(map[string]*postings.BlockList, len(terms))}
	for _, term := range terms {
		parts := make([]postings.List, 0, len(segs))
		for _, seg := range segs {
			if bl := seg.lists[term]; bl != nil {
				parts = append(parts, bl.All())
			}
		}
		ps := postings.Union(tomb, parts...).Materialize()
		if len(ps) == 0 {
			continue
		}
		bl := postings.Encode(ps)
		bl.MaybeBitmap() // the fresh segment is unpublished until the swap below
		out.lists[term] = bl
		out.total += int64(len(ps))
	}
	return out
}

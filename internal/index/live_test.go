package index

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// corruptStarts swaps the Start keys of the first two text nodes of doc,
// breaking the (Doc, Pos) invariant for any term both nodes contain.
func corruptStarts(t *testing.T, doc *storage.Document) {
	t.Helper()
	var texts []int
	for ord := range doc.Nodes {
		if doc.Nodes[ord].Kind == xmltree.Text {
			texts = append(texts, ord)
		}
	}
	if len(texts) < 2 {
		t.Fatal("need at least two text nodes to corrupt")
	}
	i, j := texts[0], texts[1]
	doc.Nodes[i].Start, doc.Nodes[j].Start = doc.Nodes[j].Start, doc.Nodes[i].Start
}

func TestBuildCheckedRejectsDisorderedPostings(t *testing.T) {
	s := storage.NewStore()
	if _, err := s.AddTree("bad.xml", mustParse(`<d><t>alpha beta</t><t>alpha</t></d>`)); err != nil {
		t.Fatal(err)
	}
	corruptStarts(t, s.DocByName("bad.xml"))

	_, err := BuildChecked(s, tokenize.New())
	if err == nil {
		t.Fatal("BuildChecked accepted a disordered posting stream")
	}
	if !errors.Is(err, ErrPostingOrder) {
		t.Fatalf("err = %v, want ErrPostingOrder", err)
	}
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("err %T is not a *BuildError", err)
	}
	if be.Term != "alpha" {
		t.Fatalf("offending term = %q, want %q", be.Term, "alpha")
	}
	if !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("error message %q does not name the term", err)
	}
}

func TestBuildPanicsOnDisorderedPostings(t *testing.T) {
	s := storage.NewStore()
	if _, err := s.AddTree("bad.xml", mustParse(`<d><t>zz yy</t><t>zz</t></d>`)); err != nil {
		t.Fatal(err)
	}
	corruptStarts(t, s.DocByName("bad.xml"))
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on a disordered posting stream")
		}
	}()
	Build(s, tokenize.New())
}

func TestCheckOrdinalCap(t *testing.T) {
	if err := checkOrdinalCap(math.MaxInt32, "ok.xml"); err != nil {
		t.Fatalf("cap rejected a representable node count: %v", err)
	}
	err := checkOrdinalCap(math.MaxInt32+1, "huge.xml")
	if !errors.Is(err, ErrOrdinalOverflow) {
		t.Fatalf("err = %v, want ErrOrdinalOverflow", err)
	}
	if !strings.Contains(err.Error(), "huge.xml") {
		t.Fatalf("error %q does not name the document", err)
	}
}

// newLiveOver builds a Live over the given documents with test-friendly
// thresholds (tiny memtables, manual compaction unless auto is set).
func newLiveOver(t *testing.T, docs []string, cfg LiveConfig) (*storage.Store, *Live) {
	t.Helper()
	s := storage.NewStore()
	l, err := NewLive(s, tokenize.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range docs {
		addLiveDoc(t, s, l, fmt.Sprintf("doc%03d.xml", i), src)
	}
	return s, l
}

func addLiveDoc(t *testing.T, s *storage.Store, l *Live, name, src string) storage.DocID {
	t.Helper()
	id, err := s.AddTree(name, mustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.IndexDoc(s.Doc(id)); err != nil {
		t.Fatal(err)
	}
	return id
}

// assertSameIndex checks that every term of want yields byte-identical
// postings and matching statistics from got.
func assertSameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	terms := want.TermsByFreq()
	if gotTerms := got.TermsByFreq(); !reflect.DeepEqual(gotTerms, terms) {
		t.Fatalf("vocabularies differ: got %d terms, want %d", len(gotTerms), len(terms))
	}
	for _, term := range terms {
		if !reflect.DeepEqual(got.Postings(term), want.Postings(term)) {
			t.Fatalf("postings for %q differ", term)
		}
		if got.TermFreq(term) != want.TermFreq(term) {
			t.Fatalf("TermFreq(%q) = %d, want %d", term, got.TermFreq(term), want.TermFreq(term))
		}
		if got.NodeFreq(term) != want.NodeFreq(term) {
			t.Fatalf("NodeFreq(%q) = %d, want %d", term, got.NodeFreq(term), want.NodeFreq(term))
		}
	}
	if got.TotalOccurrences() != want.TotalOccurrences() {
		t.Fatalf("TotalOccurrences = %d, want %d", got.TotalOccurrences(), want.TotalOccurrences())
	}
}

func TestLiveIngestMatchesFromScratchBuild(t *testing.T) {
	var docs []string
	for i := 0; i < 60; i++ {
		docs = append(docs, fmt.Sprintf(`<d><t>tix w%d shared</t><t>again w%d</t></d>`, i%7, i%5))
	}
	// Tiny memtable so the run exercises seal + multi-segment merge.
	s, l := newLiveOver(t, docs, LiveConfig{SealPostings: 16, ManualCompact: true})

	fresh := Build(s, tokenize.New())
	assertSameIndex(t, l.Snapshot(), fresh)

	// Folding everything must not change what queries see.
	l.Compact()
	assertSameIndex(t, l.Snapshot(), fresh)
	if snap := l.Snapshot(); snap.live() {
		t.Fatal("fully compacted, mutation-free snapshot should be flat")
	}
}

func TestLiveSnapshotCachedPerGeneration(t *testing.T) {
	s, l := newLiveOver(t, []string{`<d><t>one two</t></d>`}, LiveConfig{ManualCompact: true})
	s1, s2 := l.Snapshot(), l.Snapshot()
	if s1 != s2 {
		t.Fatal("unchanged generation rebuilt the snapshot")
	}
	gen := l.Generation()
	addLiveDoc(t, s, l, "extra.xml", `<d><t>three</t></d>`)
	if l.Generation() == gen {
		t.Fatal("mutation did not advance the generation")
	}
	s3 := l.Snapshot()
	if s3 == s1 {
		t.Fatal("stale snapshot returned after mutation")
	}
	if s3.Generation() != l.Generation() {
		t.Fatalf("snapshot generation %d, live %d", s3.Generation(), l.Generation())
	}
}

func TestLiveDeleteAndReAdd(t *testing.T) {
	s, l := newLiveOver(t, []string{
		`<d><t>keep alpha</t></d>`,
		`<d><t>drop alpha</t></d>`,
	}, LiveConfig{ManualCompact: true})

	id := s.DocByName("doc001.xml").ID
	l.Delete(id)
	s.ReleaseName("doc001.xml")

	snap := l.Snapshot()
	for _, p := range snap.Postings("alpha") {
		if p.Doc == id {
			t.Fatalf("tombstoned doc %d still visible", id)
		}
	}
	if got := len(snap.Postings("drop")); got != 0 {
		t.Fatalf("term of a deleted doc yields %d postings", got)
	}
	if docs := snap.Docs(); len(docs) != 1 || docs[0].Name != "doc000.xml" {
		t.Fatalf("visible docs = %v, want only doc000.xml", docs)
	}

	// Re-add under the same name within the same generation stream: fresh
	// id, old one stays dead.
	nid := addLiveDoc(t, s, l, "doc001.xml", `<d><t>drop alpha back</t></d>`)
	if nid == id {
		t.Fatalf("re-added doc reused id %d", id)
	}
	snap = l.Snapshot()
	ps := snap.Postings("alpha")
	if len(ps) != 2 || ps[0].Doc == id || ps[1].Doc == id {
		t.Fatalf("postings after re-add = %+v", ps)
	}
	if got := len(snap.Postings("back")); got != 1 {
		t.Fatalf("re-added content invisible: %d postings for 'back'", got)
	}

	// Compaction physically drops the tombstoned postings; results are
	// unchanged.
	before := snap.Postings("alpha")
	l.Compact()
	after := l.Snapshot().Postings("alpha")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("compaction changed results: %+v -> %+v", before, after)
	}
	if l.DeadCount() != 1 {
		t.Fatalf("DeadCount = %d, want 1", l.DeadCount())
	}
}

func TestLiveBackgroundCompactionConverges(t *testing.T) {
	var docs []string
	for i := 0; i < 200; i++ {
		docs = append(docs, fmt.Sprintf(`<d><t>bulk w%d</t></d>`, i%11))
	}
	s, l := newLiveOver(t, docs, LiveConfig{SealPostings: 8, MaxSegments: 2})
	l.WaitCompaction()
	fresh := Build(s, tokenize.New())
	assertSameIndex(t, l.Snapshot(), fresh)
}

func TestLiveIndexDocFailureTombstonesDoc(t *testing.T) {
	s := storage.NewStore()
	l, err := NewLive(s, tokenize.New(), LiveConfig{ManualCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.AddTree("bad.xml", mustParse(`<d><t>qq rr</t><t>qq</t></d>`))
	if err != nil {
		t.Fatal(err)
	}
	corruptStarts(t, s.Doc(id))
	if err := l.IndexDoc(s.Doc(id)); !errors.Is(err, ErrPostingOrder) {
		t.Fatalf("IndexDoc err = %v, want ErrPostingOrder", err)
	}
	if !l.IsDead(id) {
		t.Fatal("half-indexed document was not tombstoned")
	}
	if got := len(l.Snapshot().Postings("qq")); got != 0 {
		t.Fatalf("half-indexed doc leaked %d postings", got)
	}
}

func TestLiveFromIndexAdoptsFlatBase(t *testing.T) {
	s, idx := buildIndex(t, map[string]string{
		"a.xml": `<a><b>seed text</b></a>`,
	})
	l := LiveFromIndex(idx, LiveConfig{ManualCompact: true})
	if l.Snapshot() != idx {
		t.Fatal("adopted index should be the generation-0 snapshot")
	}
	addLiveDoc(t, s, l, "b.xml", `<a><b>more text</b></a>`)
	if got := l.Snapshot().TermFreq("text"); got != 2 {
		t.Fatalf("TermFreq(text) = %d after incremental add, want 2", got)
	}
	assertSameIndex(t, l.Snapshot(), Build(s, tokenize.New()))
}

package index

import (
	"repro/internal/postings"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// segment is one immutable encoded index segment: a term → block-list map
// over a contiguous, ascending document-id range. The base segment of a
// static index and the outputs of memtable seals and compaction folds all
// share this shape.
type segment struct {
	lists map[string]*postings.BlockList
	total int64
}

// memList is one term's in-memory append buffer. Appends arrive in
// (Doc, Pos) order because document ids are allocated monotonically and
// text nodes are tokenized in document order; addDoc verifies rather than
// trusts this, reusing the build-path invariant.
type memList struct {
	ps       []postings.Posting
	nodeFreq int
	lastDoc  storage.DocID
	lastNode int32
}

// memtable is the mutable in-memory index layer documents are ingested
// into. It is single-writer (the Live mutation lock); readers never touch
// a memtable directly — they go through the immutable view a snapshot
// captures.
type memtable struct {
	lists map[string]*memList
	total int64
	docs  int
}

func newMemtable() *memtable {
	return &memtable{lists: make(map[string]*memList)}
}

// addDoc tokenizes every text node of doc into the append buffers,
// enforcing the same invariants as BuildChecked: int32-safe node ordinals
// and (Doc, Pos)-ordered posting streams. On error the memtable may hold a
// partial document; the caller is expected to tombstone it.
func (m *memtable) addDoc(doc *storage.Document, tok *tokenize.Tokenizer) error {
	if err := checkOrdinalCap(len(doc.Nodes), doc.Name); err != nil {
		return err
	}
	for ord := range doc.Nodes {
		rec := &doc.Nodes[ord]
		if rec.Kind != xmltree.Text {
			continue
		}
		for _, t := range tok.Tokenize(rec.Text) {
			p := postings.Posting{
				Doc:    doc.ID,
				Node:   int32(ord),
				Pos:    rec.Start + t.Offset,
				Offset: t.Offset,
			}
			ml := m.lists[t.Term]
			if ml == nil {
				ml = &memList{}
				m.lists[t.Term] = ml
			}
			if n := len(ml.ps); n > 0 && !ml.ps[n-1].Less(p) {
				return &BuildError{Term: t.Term, Doc: doc.Name, Err: ErrPostingOrder}
			}
			if len(ml.ps) == 0 || ml.lastDoc != p.Doc || ml.lastNode != p.Node {
				ml.nodeFreq++
				ml.lastDoc, ml.lastNode = p.Doc, p.Node
			}
			ml.ps = append(ml.ps, p)
			m.total++
		}
	}
	m.docs++
	return nil
}

// memRun is one term's postings as captured by a snapshot: a stable
// prefix of the append buffer plus its node frequency at capture time.
type memRun struct {
	ps       []postings.Posting
	nodeFreq int
}

// memView is an immutable snapshot of a memtable: per-term slice headers
// copied at their capture-time lengths. Later appends write beyond every
// captured length (possibly reallocating), so readers of a view never
// observe them.
type memView struct {
	lists map[string]memRun
	total int64
}

// view captures the memtable's current contents. Callers must hold the
// Live mutation lock so no append races the header copies.
func (m *memtable) view() *memView {
	v := &memView{lists: make(map[string]memRun, len(m.lists)), total: m.total}
	//tixlint:ignore mapiter per-key header copy writing only v.lists[term]; no cross-key state
	for term, ml := range m.lists {
		v.lists[term] = memRun{ps: ml.ps, nodeFreq: ml.nodeFreq}
	}
	return v
}

// encode seals the memtable's contents into an immutable segment,
// dropping postings of documents in tomb. Terms whose postings are all
// tombstoned disappear from the segment (the tombstone set still hides
// them everywhere else).
func (v *memView) encode(tomb *postings.Tombstones) *segment {
	seg := &segment{lists: make(map[string]*postings.BlockList, len(v.lists))}
	//tixlint:ignore mapiter per-key encode writing only seg.lists[term]; no cross-key state
	for term, run := range v.lists {
		ps := run.ps
		if tomb.Len() > 0 {
			kept := make([]postings.Posting, 0, len(ps))
			for _, p := range ps {
				if !tomb.Dead(p.Doc) {
					kept = append(kept, p)
				}
			}
			ps = kept
		}
		if len(ps) == 0 {
			continue
		}
		seg.lists[term] = postings.Encode(ps)
		seg.total += int64(len(ps))
	}
	return seg
}

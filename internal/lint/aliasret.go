package lint

import (
	"go/ast"
	"go/types"
)

// AliasRet mechanizes the PR 6 Store.Docs() bug: an exported accessor in
// the storage tier returned the store's internal map, so a caller
// iterating it raced every concurrent ingest despite the store's own
// locking being correct. The fix was to copy under the lock; this
// analyzer makes the copy mandatory.
//
// It flags exported functions and methods in the data-owning packages
// (storage, index, db, shard, rescache) that return a slice- or
// map-typed expression rooted at the receiver or at a package-level
// variable — a direct field selection or a reslice of one, neither of
// which copies. Genuinely zero-copy accessors are legitimate in hot
// paths, but they must say so: suppress with a directive whose reason
// names the caller contract that makes the aliasing safe.
var AliasRet = &Analyzer{
	Name: "aliasret",
	Doc:  "exported accessor returns an internal slice/map without copying",
	Run:  runAliasRet,
}

// aliasRetSegs are the packages that own long-lived mutable state behind
// locks; aliasing their internals out is what made the PR 6 bug a race.
var aliasRetSegs = map[string]bool{
	"storage": true, "index": true, "db": true, "shard": true, "rescache": true,
}

func runAliasRet(pass *Pass) {
	if !aliasRetSegs[pass.Pkg.Segment()] {
		return
	}
	forEachNonTestFile(pass, func(file *ast.File) {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			var recvObj types.Object
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recvObj = pass.ObjectOf(fd.Recv.List[0].Names[0])
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // a literal's return is not the accessor's return
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					checkAliasedResult(pass, fd, recvObj, res)
				}
				return true
			})
		}
	})
}

// checkAliasedResult flags res when it evaluates to a slice or map that
// aliases state owned by the receiver or by a package-level variable.
func checkAliasedResult(pass *Pass, fd *ast.FuncDecl, recvObj types.Object, res ast.Expr) {
	t := pass.TypeOf(res)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return
	}

	e := ast.Unparen(res)
	for {
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(sl.X) // reslicing shares the backing array
			continue
		}
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X) // m[k] of slice/map element type aliases too
			continue
		}
		break
	}
	var obj types.Object
	var desc string
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if fieldVarOf(pass, x) == nil {
			return
		}
		root := rootIdent(x.X)
		if root == nil {
			return
		}
		obj = pass.ObjectOf(root)
		desc = describeAlias(x)
	case *ast.Ident:
		// A bare identifier only aliases owned state when it is a
		// package-level variable (locals are the caller's problem, and
		// returning the receiver itself hands back nothing new).
		obj = pass.ObjectOf(x)
		if obj == recvObj {
			return
		}
		desc = x.Name
	default:
		return
	}
	if obj == nil {
		return
	}
	owned := obj == recvObj && recvObj != nil
	if !owned {
		// Package-level variable: same aliasing hazard, no receiver.
		if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			owned = true
		}
	}
	if !owned {
		return
	}
	pass.Reportf(res.Pos(), SeverityError,
		"exported %s returns internal %s without copying: callers can read and mutate it outside the owner's lock (the PR 6 Store.Docs aliasing race) — return a copy, or suppress with the caller contract that makes zero-copy safe",
		fd.Name.Name, desc)
}

// rootIdent unwraps a selector/index chain to its base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// describeAlias renders the selected field for the message ("s.docs").
func describeAlias(sel *ast.SelectorExpr) string {
	if root := rootIdent(sel.X); root != nil {
		return root.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

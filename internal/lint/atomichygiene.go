package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicHygiene flags struct fields that are accessed through sync/atomic
// in one code path and plainly in another. Mixing the two publishes the
// field through incompatible memory models: the atomic path establishes
// ordering the plain path never observes, so the race detector fires and
// — worse — on weakly-ordered hardware the plain reader can see a torn
// or stale value forever.
//
// The project convention (index.Live's snapshot cache, the rescache
// counters, exec.Guard) is typed atomics — atomic.Uint64, atomic.Pointer
// — which make plain access a compile error. This analyzer covers the
// remaining hole: a field of plain type reached via the function-style
// API (atomic.LoadInt64(&s.n)) in one method and via ordinary
// read/write in another. Every access must go through sync/atomic; the
// durable fix is migrating the field to its typed equivalent.
//
// Pre-publication initialization (a constructor writing the field before
// the value escapes) is a real pattern; it takes a //tixlint:ignore
// naming that argument.
var AtomicHygiene = &Analyzer{
	Name: "atomichygiene",
	Doc:  "struct field accessed via sync/atomic on one path and plainly on another",
	Run:  runAtomicHygiene,
}

func runAtomicHygiene(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}

	// Phase 1: find fields addressed into sync/atomic calls, remembering
	// the selector nodes consumed by those calls so phase 2 does not
	// count them as plain accesses.
	atomicFields := map[*types.Var]token.Pos{}
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	forEachNonTestFile(pass, func(file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _, ok := pkgFuncCall(pass, call)
			if !ok || pkg != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldVarOf(pass, sel)
			if field == nil {
				return true
			}
			inAtomicCall[sel] = true
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = sel.Pos()
			}
			return true
		})
	})
	if len(atomicFields) == 0 {
		return
	}

	// Phase 2: any other selector reaching one of those fields is a
	// plain access.
	forEachNonTestFile(pass, func(file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			field := fieldVarOf(pass, sel)
			if field == nil {
				return true
			}
			first, isAtomic := atomicFields[field]
			if !isAtomic {
				return true
			}
			atomicAt := pass.Fset().Position(first)
			pass.Reportf(sel.Pos(), SeverityError,
				"field %s is accessed via sync/atomic at %s:%d but plainly here: mixed access races — route every access through sync/atomic, or migrate the field to its typed atomic equivalent",
				fieldDesc(field), relModule(pass.Prog, atomicAt.Filename), atomicAt.Line)
			return true
		})
	})
}

// fieldVarOf resolves sel to the struct-field variable it selects, or nil
// when sel is not a field selection.
func fieldVarOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// fieldDesc renders "Type.field" for a struct-field variable.
func fieldDesc(v *types.Var) string {
	name := v.Name()
	if v.Pkg() != nil {
		return lastSegment(v.Pkg().Path()) + "." + name
	}
	return name
}

// forEachNonTestFile applies fn to every non-test file of the pass's
// package.
func forEachNonTestFile(pass *Pass, fn func(*ast.File)) {
	for _, file := range pass.Pkg.Files {
		if isTestFilename(pass.Filename(file.Pos())) {
			continue
		}
		fn(file)
	}
}

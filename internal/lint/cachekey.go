package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CacheKey enforces the result-cache coherence contract from PR 8: every
// exported field of every struct that is baked into a rescache key must
// be consumed by the key encoder. A field that callers can set but the
// encoder ignores makes two semantically different requests collide on
// one cache entry, and the cache silently serves the first request's
// results to the second — a correctness bug that no crash, race, or
// timeout ever surfaces.
//
// Seeds are found structurally so the check survives refactors: any
// struct-typed parameter of an exported function in the rescache package
// that returns the package's Key type participates in keying, and so
// does every exported struct-typed field reachable from it (TermOpts
// embeds exec.Limits, so the Limits fields are part of the contract
// too). Consumption means a selection of the field somewhere in the
// package's non-test code — in practice, the keyEnc methods.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc:  "exported fields of cache-key option structs must be consumed by the key encoder",
	Run:  runCacheKey,
}

func runCacheKey(pass *Pass) {
	if pass.Pkg.Segment() != "rescache" || pass.Pkg.Types == nil {
		return
	}

	// A keyed field, with the seed function's position as the diagnostic
	// anchor when the owning struct lives in another package (export-data
	// objects have no stable position in our file set).
	type keyedField struct {
		field *types.Var
		owner string
		seed  token.Pos
	}
	var required []keyedField
	seen := map[*types.Named]bool{}
	var collect func(n *types.Named, seed token.Pos)
	collect = func(n *types.Named, seed token.Pos) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			required = append(required, keyedField{field: f, owner: n.Obj().Name(), seed: seed})
			collect(namedOf(f.Type()), seed)
		}
	}

	forEachNonTestFile(pass, func(file *ast.File) {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Results == nil {
				continue
			}
			returnsKey := false
			for _, res := range fd.Type.Results.List {
				if n := namedOf(pass.TypeOf(res.Type)); n != nil &&
					n.Obj().Pkg() == pass.Pkg.Types && n.Obj().Name() == "Key" {
					returnsKey = true
				}
			}
			if !returnsKey || fd.Type.Params == nil {
				continue
			}
			for _, par := range fd.Type.Params.List {
				if n := namedOf(pass.TypeOf(par.Type)); n != nil {
					if _, isStruct := n.Underlying().(*types.Struct); isStruct {
						collect(n, fd.Name.Pos())
					}
				}
			}
		}
	})
	if len(required) == 0 {
		return
	}

	consumed := map[*types.Var]bool{}
	forEachNonTestFile(pass, func(file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if f := fieldVarOf(pass, sel); f != nil {
					consumed[f] = true
				}
			}
			return true
		})
	})

	for _, r := range required {
		if consumed[r.field] {
			continue
		}
		pos := r.seed
		if r.field.Pkg() == pass.Pkg.Types && r.field.Pos().IsValid() {
			pos = r.field.Pos()
		}
		pass.Reportf(pos, SeverityError,
			"exported field %s.%s is baked into cache keys but never consumed by the key encoder: option values differing only in this field collide on one cache entry and serve each other's results — extend the key encoding (or unexport the field)",
			r.owner, r.field.Name())
	}
}

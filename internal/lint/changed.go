package lint

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
)

// Changed-file mode (`tixlint -changed <ref>`): the full suite still runs
// over the whole module — cross-package analyzers need the whole program
// — but only diagnostics landing in files that differ from ref (plus
// untracked files) are reported. This keeps pre-merge lint output scoped
// to the change under review while preserving whole-program soundness.

// ChangedFiles returns the module-relative, slash-separated paths of
// files that differ from ref, plus untracked files, for the git work
// tree containing dir. Paths outside the module are dropped.
func ChangedFiles(dir, ref string) (map[string]bool, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	top, err := gitLines(absDir, "rev-parse", "--show-toplevel")
	if err != nil {
		return nil, fmt.Errorf("lint: resolving git root: %w", err)
	}
	if len(top) == 0 {
		return nil, fmt.Errorf("lint: %s is not inside a git work tree", absDir)
	}
	root := top[0]
	diff, err := gitLines(absDir, "diff", "--name-only", ref, "--")
	if err != nil {
		return nil, fmt.Errorf("lint: diffing against %s: %w", ref, err)
	}
	untracked, err := gitLines(absDir, "ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, fmt.Errorf("lint: listing untracked files: %w", err)
	}
	set := map[string]bool{}
	for _, line := range append(diff, untracked...) {
		rel, err := filepath.Rel(absDir, filepath.Join(root, filepath.FromSlash(line)))
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		set[filepath.ToSlash(rel)] = true
	}
	return set, nil
}

// gitLines runs one git command in dir and returns its non-empty output
// lines.
func gitLines(dir string, args ...string) ([]string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("git %s: %w\n%s", strings.Join(args, " "), err, strings.TrimSpace(stderr.String()))
	}
	var lines []string
	for _, l := range strings.Split(string(out), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}

// FilterChanged keeps the diagnostics whose file is in the changed set.
func FilterChanged(diags []Diagnostic, changed map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if changed[d.Pos.Filename] {
			out = append(out, d)
		}
	}
	return out
}

// FilterStaleChanged keeps the stale directives whose file is in the
// changed set.
func FilterStaleChanged(stale []StaleDirective, changed map[string]bool) []StaleDirective {
	var out []StaleDirective
	for _, s := range stale {
		if changed[s.File] {
			out = append(out, s)
		}
	}
	return out
}

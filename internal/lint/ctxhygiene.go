package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxHygiene enforces context propagation in library packages (everything
// outside package main; test files are exempt — tests are root callers).
//
// PR 2 threaded cancellation through every layer; a library function that
// conjures its own context.Background() (or accepts a ctx and ignores it)
// silently detaches everything below it from the caller's deadline and
// cancellation — the exact hole the Guard work closed.
//
// Three rules:
//
//   - a function that receives a context.Context must not call
//     context.Background()/TODO(), except to default a nil ctx inside an
//     `if ctx == nil` guard (error otherwise);
//   - a function without a ctx parameter may use context.Background()
//     only as an argument to a *Context-suffixed call — the documented
//     compat-wrapper shape (Query delegating to QueryContext); anything
//     else warns;
//   - a named context.Context parameter that the body never references
//     warns: either propagate it or drop it.
//
// Detached lifetimes that must outlive the caller (a server's drain
// context during shutdown) are real but rare; they take a
// //tixlint:ignore naming that intent.
var CtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "context.Background()/TODO() in library code, or a context parameter that is never propagated",
	Run:  runCtxHygiene,
}

func runCtxHygiene(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		if isTestFilename(pass.Filename(file.Pos())) {
			continue
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkBackgroundCall(pass, node, stack)
			case *ast.FuncDecl:
				if node.Body != nil {
					checkUnusedCtxParam(pass, node, node.Body)
				}
			}
			return true
		})
	}
}

// checkBackgroundCall applies the first two rules to one
// context.Background()/TODO() call site.
func checkBackgroundCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	var what string
	switch {
	case isPkgFunc(pass, call, "context", "Background"):
		what = "context.Background()"
	case isPkgFunc(pass, call, "context", "TODO"):
		what = "context.TODO()"
	default:
		return
	}

	for _, fn := range enclosingFuncs(stack) {
		params := ctxParamObjects(pass, fn)
		if len(params) == 0 {
			continue
		}
		if nilGuarded(pass, stack, fn, params) {
			return // `if ctx == nil { ctx = context.Background() }` defaulting
		}
		pass.Reportf(call.Pos(), SeverityError,
			"%s constructed in a function that already receives a context.Context: this detaches the call tree from the caller's cancellation and deadline — propagate the parameter", what)
		return
	}

	// No enclosing function takes a context. The compat-wrapper shape —
	// Background passed straight into a *Context variant — is the
	// sanctioned bridge from the context-free convenience API.
	if i := len(stack) - 1; i >= 0 {
		if parent, ok := stack[i].(*ast.CallExpr); ok && calleeNameEndsWithContext(parent) {
			for _, arg := range parent.Args {
				if ast.Unparen(arg) == ast.Expr(call) {
					return
				}
			}
		}
	}
	pass.Reportf(call.Pos(), SeverityWarning,
		"%s in library code outside a *Context compat wrapper: accept a context.Context from the caller instead of minting a root context", what)
}

// nilGuarded reports whether the stack (within fn) passes through an
// if-statement whose condition compares one of fn's context parameters
// to nil.
func nilGuarded(pass *Pass, stack []ast.Node, fn ast.Node, params []types.Object) bool {
	inFn := false
	for _, anc := range stack {
		if anc == fn {
			inFn = true
			continue
		}
		if !inFn {
			continue
		}
		ifst, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		be, ok := ast.Unparen(ifst.Cond).(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			continue
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			id, ok := ast.Unparen(side).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.ObjectOf(id)
			for _, p := range params {
				if obj == p {
					return true
				}
			}
		}
	}
	return false
}

// checkUnusedCtxParam applies the third rule to one function declaration.
func checkUnusedCtxParam(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt) {
	for _, param := range ctxParamObjects(pass, fd) {
		used := false
		ast.Inspect(body, func(n ast.Node) bool {
			if used {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == param {
				used = true
			}
			return true
		})
		if !used {
			pass.Reportf(fd.Pos(), SeverityWarning,
				"context parameter %q is accepted but never used: propagate it to downstream calls or remove it", param.Name())
		}
	}
}

// calleeNameEndsWithContext reports whether the call's callee identifier
// ends in "Context" (QueryContext, TermSearchContext, WithContext, ...).
func calleeNameEndsWithContext(call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return len(name) > len("Context") && name[len(name)-len("Context"):] == "Context"
}

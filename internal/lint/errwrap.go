package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ErrWrap enforces PR 2's error-taxonomy invariant in every package:
// typed sentinel errors (exec.ErrCanceled, exec.ErrLimitExceeded,
// storage.ErrInjectedFault, db.ErrCorruptSnapshot, ...) must stay
// classifiable with errors.Is through arbitrary wrapping.
//
// Two patterns silently break that chain:
//
//   - fmt.Errorf("...: %v", err) — formats the error's text but severs
//     Unwrap, so errors.Is(wrapped, Sentinel) turns false; use %w;
//   - err == Sentinel / err != Sentinel — identity comparison misses
//     every wrapped occurrence; use errors.Is.
//
// Both are flagged wherever they appear, tests included — the
// differential suites classify errors too. Intentional flattening (an
// API boundary that must not expose its internals) takes a
// //tixlint:ignore with that justification.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "error wrapped with %v/%s instead of %w, or ==/!= against a sentinel error instead of errors.Is",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, node)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, node)
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf verbs that format an error value
// without wrapping it.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed or otherwise exotic format; stay silent
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		arg := call.Args[argIdx]
		if t := pass.TypeOf(arg); implementsError(t) {
			pass.Reportf(arg.Pos(), SeverityError,
				"error formatted with %%%c loses its wrap chain: use %%w so callers can classify it with errors.Is/errors.As", verb)
		}
	}
}

// formatVerbs returns the verb letter for each argument a Printf-style
// format consumes, in order. A '*' width/precision consumes an argument
// and is recorded as '*'. Explicit argument indexes (%[n]d) make the
// mapping positional-unsafe, so the check bails out (ok=false).
func formatVerbs(format string) ([]rune, bool) {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs, true
}

// checkSentinelCompare flags ==/!= where one side is an error value and
// the other is a package-level error variable (a sentinel).
func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(pass, x) || isNilIdent(pass, y) {
		return
	}
	if !implementsError(pass.TypeOf(x)) || !implementsError(pass.TypeOf(y)) {
		return
	}
	name := sentinelName(pass, x)
	if name == "" {
		name = sentinelName(pass, y)
	}
	if name == "" {
		return
	}
	pass.Reportf(be.OpPos, SeverityError,
		"comparison against sentinel error %s with %s: wrapped errors never match — use errors.Is",
		name, be.Op)
}

// sentinelName returns the name of e when it denotes a package-level
// error variable, else "".
func sentinelName(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return ""
	}
	obj, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "" // not package-level
	}
	if !implementsError(obj.Type()) {
		return ""
	}
	return obj.Name()
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.ObjectOf(id).(*types.Nil)
	return isNil
}

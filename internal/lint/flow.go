package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The flow-lite layer: a module-wide, standard-library-only approximation
// of the facts the concurrency analyzers need — which functions call
// which, which mutexes a function may acquire (directly or transitively),
// which mutexes are held at each call site, and whether a function's body
// ever observes a shutdown signal (a context, a channel, a WaitGroup).
//
// It is deliberately *lite*. Statements are scanned in source order with
// a held-lock multiset; branches are scanned against a copy of the
// incoming state and the state is restored afterwards, so an unlock on an
// early-return path never leaks into the fallthrough path and a lock
// taken in only one arm never poisons its sibling. Function literals are
// scanned with an empty held set (a closure runs when its caller decides,
// not where it is written), and `go`/`defer` bodies likewise. The net
// effect is an under-approximation: every (outer, inner) pair the layer
// reports corresponds to a syntactic path that really acquires inner
// while outer is held, while patterns it cannot prove are simply not
// reported. Analyzers built on it therefore err toward silence, and the
// fixture module pins the shapes they must still catch.
//
// Cross-package resolution is by symbol string ("pkg/path.Func" or
// "pkg/path.(Type).Method"): every package in the program is type-checked
// independently, so object identity does not survive package boundaries
// but symbol names do. Interface calls stay unresolved — the layer tracks
// the static call graph only.

// lockID names one mutex at type granularity: every instance of
// db.DB.mu is the same node in the acquisition graph. seg is the owning
// package's import-path segment (so the fixture module matches the real
// one), typ the named struct owning the field, or "" for a package-level
// mutex var.
type lockID struct {
	seg   string
	typ   string
	field string
}

// String renders "seg.Type.field" (or "seg.field" for package vars).
func (l lockID) String() string {
	if l.typ == "" {
		return l.seg + "." + l.field
	}
	return l.seg + "." + l.typ + "." + l.field
}

func (l lockID) valid() bool { return l.field != "" }

// funcKey is the cross-package symbol name of a function or method.
type funcKey string

// callSite is one static call with the tracked locks held at that point.
type callSite struct {
	callee funcKey
	held   []lockID
	pos    token.Pos
}

// lockPair is one direct ordering witness: inner was acquired at pos
// while outer was held.
type lockPair struct {
	outer, inner lockID
	pos          token.Pos
}

// goSpawn is one `go` statement in a non-main, non-test file.
type goSpawn struct {
	pos    token.Pos
	seg    string
	pkg    *Package
	signal bool      // the spawned body itself observes a shutdown signal
	callee funcKey   // static callee when the spawn is `go f(...)`, else ""
	calls  []funcKey // static callees inside a spawned func literal
}

// funcSummary is the per-function fact base.
type funcSummary struct {
	key      funcKey
	pkg      *Package
	acquires map[lockID]token.Pos // direct acquisitions (first witness)
	pairs    []lockPair           // direct (outer held, inner acquired)
	calls    []callSite
	signal   bool // body observes ctx / channel / WaitGroup.Done directly
}

// flowInfo is the module-wide result, built once per Program and shared
// by every analyzer that needs it.
type flowInfo struct {
	funcs  map[funcKey]*funcSummary
	order  []funcKey // deterministic iteration order
	spawns []goSpawn

	transAcq    map[funcKey]map[lockID]token.Pos // transitive acquisitions
	transSignal map[funcKey]bool                 // transitive shutdown signal
}

// flowTrackedSegs are the package segments whose mutexes participate in
// the acquisition graph: the mutation and serving tier whose lock
// discipline PRs 6–8 established. Locks elsewhere (metrics registry,
// local test scaffolding) are deliberately invisible.
var flowTrackedSegs = map[string]bool{
	"db": true, "shard": true, "fleet": true, "index": true, "rescache": true,
}

// flow returns the program's flow facts, building them on first use.
func (prog *Program) flow() *flowInfo {
	prog.flowOnce.Do(func() {
		prog.flowInfo = buildFlow(prog)
	})
	return prog.flowInfo
}

func buildFlow(prog *Program) *flowInfo {
	fi := &flowInfo{funcs: map[funcKey]*funcSummary{}}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			if isTestFilename(prog.Fset.Position(file.Pos()).Filename) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b := &flowBuilder{prog: prog, pkg: pkg, fi: fi}
				b.scanFunc(fd)
			}
		}
	}
	for k := range fi.funcs {
		fi.order = append(fi.order, k)
	}
	sort.Slice(fi.order, func(i, j int) bool { return fi.order[i] < fi.order[j] })
	fi.propagate()
	return fi
}

// propagate runs the two fixpoints: transitive lock acquisition and
// transitive shutdown-signal observation over the static call graph.
func (fi *flowInfo) propagate() {
	fi.transAcq = map[funcKey]map[lockID]token.Pos{}
	fi.transSignal = map[funcKey]bool{}
	for _, k := range fi.order {
		s := fi.funcs[k]
		acq := map[lockID]token.Pos{}
		for id, pos := range s.acquires {
			acq[id] = pos
		}
		fi.transAcq[k] = acq
		fi.transSignal[k] = s.signal
	}
	for changed := true; changed; {
		changed = false
		for _, k := range fi.order {
			s := fi.funcs[k]
			acq := fi.transAcq[k]
			for _, c := range s.calls {
				for id, pos := range fi.transAcq[c.callee] {
					if _, ok := acq[id]; !ok {
						acq[id] = pos
						changed = true
					}
				}
				if !fi.transSignal[k] && fi.transSignal[c.callee] {
					fi.transSignal[k] = true
					changed = true
				}
			}
		}
	}
}

// flowBuilder scans one function declaration.
type flowBuilder struct {
	prog *Program
	pkg  *Package
	fi   *flowInfo
}

// pending is one deferred body scan: function literals, `go` bodies and
// `defer` bodies all start from an empty held set.
type pending struct {
	body *ast.BlockStmt
}

func (b *flowBuilder) scanFunc(fd *ast.FuncDecl) {
	key := b.declKey(fd)
	sum := &funcSummary{key: key, pkg: b.pkg, acquires: map[lockID]token.Pos{}}
	b.fi.funcs[key] = sum

	if hasCtxParam(b.pkg, fd.Type) {
		sum.signal = true
	}

	var held []lockID
	queue := []pending{}
	b.scanStmt(fd.Body, &held, sum, &queue)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		var fresh []lockID
		b.scanStmt(p.body, &fresh, sum, &queue)
	}
}

// declKey builds the symbol name for a declaration in this package.
func (b *flowBuilder) declKey(fd *ast.FuncDecl) funcKey {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return funcKey(b.pkg.PkgPath + "." + fd.Name.Name)
	}
	t := pkgTypeOf(b.pkg, fd.Recv.List[0].Type)
	if n := namedOf(t); n != nil {
		return funcKey(fmt.Sprintf("%s.(%s).%s", b.pkg.PkgPath, n.Obj().Name(), fd.Name.Name))
	}
	return funcKey(b.pkg.PkgPath + "." + fd.Name.Name)
}

// calleeKey resolves a call's static target to a symbol, or "".
func calleeKey(pkg *Package, call *ast.CallExpr) funcKey {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkgObjectOf(pkg, fun)
	case *ast.SelectorExpr:
		obj = pkgObjectOf(pkg, fun.Sel)
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		// Interface methods have no body to resolve to.
		if types.IsInterface(recv.Type()) {
			return ""
		}
		if n := namedOf(recv.Type()); n != nil {
			return funcKey(fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), n.Obj().Name(), fn.Name()))
		}
		return ""
	}
	return funcKey(fn.Pkg().Path() + "." + fn.Name())
}

// scanStmt walks one statement in source order, threading the held set.
func (b *flowBuilder) scanStmt(st ast.Stmt, held *[]lockID, sum *funcSummary, queue *[]pending) {
	switch s := st.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range s.List {
			b.scanStmt(inner, held, sum, queue)
		}
	case *ast.IfStmt:
		b.scanStmt(s.Init, held, sum, queue)
		b.scanExpr(s.Cond, held, sum, queue)
		snap := append([]lockID(nil), *held...)
		branch := append([]lockID(nil), snap...)
		b.scanStmt(s.Body, &branch, sum, queue)
		if s.Else != nil {
			branch = append([]lockID(nil), snap...)
			b.scanStmt(s.Else, &branch, sum, queue)
		}
		*held = snap
	case *ast.ForStmt:
		b.scanStmt(s.Init, held, sum, queue)
		b.scanExpr(s.Cond, held, sum, queue)
		snap := append([]lockID(nil), *held...)
		branch := append([]lockID(nil), snap...)
		b.scanStmt(s.Body, &branch, sum, queue)
		b.scanStmt(s.Post, &branch, sum, queue)
		*held = snap
	case *ast.RangeStmt:
		b.scanExpr(s.X, held, sum, queue)
		snap := append([]lockID(nil), *held...)
		branch := append([]lockID(nil), snap...)
		b.scanStmt(s.Body, &branch, sum, queue)
		*held = snap
	case *ast.SwitchStmt:
		b.scanStmt(s.Init, held, sum, queue)
		b.scanExpr(s.Tag, held, sum, queue)
		b.scanClauses(s.Body, held, sum, queue)
	case *ast.TypeSwitchStmt:
		b.scanStmt(s.Init, held, sum, queue)
		b.scanStmt(s.Assign, held, sum, queue)
		b.scanClauses(s.Body, held, sum, queue)
	case *ast.SelectStmt:
		b.scanClauses(s.Body, held, sum, queue)
	case *ast.LabeledStmt:
		b.scanStmt(s.Stmt, held, sum, queue)
	case *ast.ExprStmt:
		b.scanExpr(s.X, held, sum, queue)
	case *ast.SendStmt:
		b.scanExpr(s.Chan, held, sum, queue)
		b.scanExpr(s.Value, held, sum, queue)
		sum.signal = true
	case *ast.IncDecStmt:
		b.scanExpr(s.X, held, sum, queue)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			b.scanExpr(e, held, sum, queue)
		}
		for _, e := range s.Lhs {
			b.scanExpr(e, held, sum, queue)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			b.scanExpr(e, held, sum, queue)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						b.scanExpr(e, held, sum, queue)
					}
				}
			}
		}
	case *ast.DeferStmt:
		b.scanDeferred(s.Call, sum, queue)
	case *ast.GoStmt:
		b.scanGo(s, sum, queue)
	}
}

func (b *flowBuilder) scanClauses(body *ast.BlockStmt, held *[]lockID, sum *funcSummary, queue *[]pending) {
	snap := append([]lockID(nil), *held...)
	for _, cl := range body.List {
		branch := append([]lockID(nil), snap...)
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				b.scanExpr(e, &branch, sum, queue)
			}
			for _, st := range c.Body {
				b.scanStmt(st, &branch, sum, queue)
			}
		case *ast.CommClause:
			sum.signal = true // select participates in a channel protocol
			b.scanStmt(c.Comm, &branch, sum, queue)
			for _, st := range c.Body {
				b.scanStmt(st, &branch, sum, queue)
			}
		}
	}
	*held = snap
}

// scanDeferred handles `defer f(...)`: a deferred mutex Unlock keeps the
// lock held to the end of the function (which is exactly what the pair
// bookkeeping wants), a deferred literal runs under an unknown held set,
// and any other deferred call is recorded with no locks held.
func (b *flowBuilder) scanDeferred(call *ast.CallExpr, sum *funcSummary, queue *[]pending) {
	if op, _ := b.mutexOp(call); op != mutexNone {
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		*queue = append(*queue, pending{body: lit.Body})
		return
	}
	if key := calleeKey(b.pkg, call); key != "" {
		sum.calls = append(sum.calls, callSite{callee: key, pos: call.Pos()})
	}
}

// scanGo records the spawn for goroleak and scans the body with an empty
// held set — the goroutine runs concurrently, so the spawner's locks
// impose no ordering on it.
func (b *flowBuilder) scanGo(s *ast.GoStmt, sum *funcSummary, queue *[]pending) {
	sp := goSpawn{pos: s.Pos(), seg: b.pkg.Segment(), pkg: b.pkg}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		sp.signal = bodySignals(b.pkg, lit)
		sp.calls = bodyCallees(b.pkg, lit.Body)
		*queue = append(*queue, pending{body: lit.Body})
	} else {
		sp.callee = calleeKey(b.pkg, s.Call)
		for _, arg := range s.Call.Args {
			if typeFromPkg(pkgTypeOf(b.pkg, arg), "context", "Context") {
				sp.signal = true
			}
		}
	}
	b.fi.spawns = append(b.fi.spawns, sp)
}

// scanExpr walks an expression in source order.
func (b *flowBuilder) scanExpr(e ast.Expr, held *[]lockID, sum *funcSummary, queue *[]pending) {
	switch x := e.(type) {
	case nil:
	case *ast.FuncLit:
		*queue = append(*queue, pending{body: x.Body})
	case *ast.CallExpr:
		b.scanExpr(x.Fun, held, sum, queue)
		for _, arg := range x.Args {
			b.scanExpr(arg, held, sum, queue)
		}
		b.classifyCall(x, held, sum)
	case *ast.ParenExpr:
		b.scanExpr(x.X, held, sum, queue)
	case *ast.SelectorExpr:
		b.scanExpr(x.X, held, sum, queue)
	case *ast.StarExpr:
		b.scanExpr(x.X, held, sum, queue)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			sum.signal = true
		}
		b.scanExpr(x.X, held, sum, queue)
	case *ast.BinaryExpr:
		b.scanExpr(x.X, held, sum, queue)
		b.scanExpr(x.Y, held, sum, queue)
	case *ast.IndexExpr:
		b.scanExpr(x.X, held, sum, queue)
		b.scanExpr(x.Index, held, sum, queue)
	case *ast.SliceExpr:
		b.scanExpr(x.X, held, sum, queue)
		b.scanExpr(x.Low, held, sum, queue)
		b.scanExpr(x.High, held, sum, queue)
		b.scanExpr(x.Max, held, sum, queue)
	case *ast.TypeAssertExpr:
		b.scanExpr(x.X, held, sum, queue)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			b.scanExpr(el, held, sum, queue)
		}
	case *ast.KeyValueExpr:
		b.scanExpr(x.Value, held, sum, queue)
	}
}

type mutexOpKind int

const (
	mutexNone mutexOpKind = iota
	mutexAcquire
	mutexRelease
)

var mutexAcquireNames = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var mutexReleaseNames = map[string]bool{"Unlock": true, "RUnlock": true}

// mutexOp classifies call as an acquisition or release of a tracked
// mutex, returning the lock's identity.
func (b *flowBuilder) mutexOp(call *ast.CallExpr) (mutexOpKind, lockID) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexNone, lockID{}
	}
	var kind mutexOpKind
	switch {
	case mutexAcquireNames[sel.Sel.Name]:
		kind = mutexAcquire
	case mutexReleaseNames[sel.Sel.Name]:
		kind = mutexRelease
	default:
		return mutexNone, lockID{}
	}
	rt := pkgTypeOf(b.pkg, sel.X)
	if !typeFromPkg(rt, "sync", "Mutex") && !typeFromPkg(rt, "sync", "RWMutex") {
		return mutexNone, lockID{}
	}
	return kind, b.lockIDOf(sel.X)
}

// lockIDOf names the mutex expression: a struct field keyed by its
// owner's named type, or a package-level var. Local mutexes and mutexes
// owned by untracked packages return the invalid id.
func (b *flowBuilder) lockIDOf(e ast.Expr) lockID {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		owner := namedOf(pkgTypeOf(b.pkg, x.X))
		if owner == nil || owner.Obj().Pkg() == nil {
			return lockID{}
		}
		seg := lastSegment(owner.Obj().Pkg().Path())
		if !flowTrackedSegs[seg] {
			return lockID{}
		}
		return lockID{seg: seg, typ: owner.Obj().Name(), field: x.Sel.Name}
	case *ast.Ident:
		obj := pkgObjectOf(b.pkg, x)
		if obj == nil || obj.Pkg() == nil {
			return lockID{}
		}
		// Package-level mutex var only; locals are invisible to callers.
		if obj.Parent() != obj.Pkg().Scope() {
			return lockID{}
		}
		seg := lastSegment(obj.Pkg().Path())
		if !flowTrackedSegs[seg] {
			return lockID{}
		}
		return lockID{seg: seg, field: obj.Name()}
	}
	return lockID{}
}

// classifyCall updates the held set on mutex operations and records any
// other static call with the locks held at that point.
func (b *flowBuilder) classifyCall(call *ast.CallExpr, held *[]lockID, sum *funcSummary) {
	op, id := b.mutexOp(call)
	switch op {
	case mutexAcquire:
		if !id.valid() {
			return
		}
		if _, seen := sum.acquires[id]; !seen {
			sum.acquires[id] = call.Pos()
		}
		for _, outer := range *held {
			sum.pairs = append(sum.pairs, lockPair{outer: outer, inner: id, pos: call.Pos()})
		}
		*held = append(*held, id)
		return
	case mutexRelease:
		if !id.valid() {
			return
		}
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i] == id {
				*held = append((*held)[:i], (*held)[i+1:]...)
				break
			}
		}
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isWaitGroupDone(b.pkg, sel) {
			sum.signal = true
		}
	}
	if key := calleeKey(b.pkg, call); key != "" {
		sum.calls = append(sum.calls, callSite{
			callee: key,
			held:   append([]lockID(nil), *held...),
			pos:    call.Pos(),
		})
	}
}

// pkgTypeOf is Pass.TypeOf without a Pass — flow runs before any
// analyzer-specific pass exists.
func pkgTypeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkgObjectOf(pkg, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// pkgObjectOf is Pass.ObjectOf without a Pass.
func pkgObjectOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pkg *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if typeFromPkg(pkgTypeOf(pkg, field.Type), "context", "Context") {
			return true
		}
	}
	return false
}

// isWaitGroupDone reports whether sel is (*sync.WaitGroup).Done.
func isWaitGroupDone(pkg *Package, sel *ast.SelectorExpr) bool {
	return sel.Sel.Name == "Done" && typeFromPkg(pkgTypeOf(pkg, sel.X), "sync", "WaitGroup")
}

// bodySignals reports whether a function literal's body directly observes
// a shutdown signal: it references a context, performs any channel
// operation (receive, send, select, range-over-channel, close), or calls
// Done on a WaitGroup. Nested literals are included — a signal anywhere
// under the spawned body still bounds the goroutine.
func bodySignals(pkg *Package, lit *ast.FuncLit) bool {
	if hasCtxParam(pkg, lit.Type) {
		return true
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if typeFromPkg(pkgTypeOf(pkg, x), "context", "Context") {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pkgTypeOf(pkg, x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && isWaitGroupDone(pkg, sel) {
				found = true
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, isB := pkgObjectOf(pkg, id).(*types.Builtin); isB && b.Name() == "close" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// bodyCallees collects the static callees invoked anywhere under body.
func bodyCallees(pkg *Package, body *ast.BlockStmt) []funcKey {
	var out []funcKey
	seen := map[funcKey]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key := calleeKey(pkg, call); key != "" && !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lockEdges assembles the module-wide acquisition graph: an edge
// outer→inner for every direct pair and for every lock transitively
// acquirable by a callee invoked while outer was held. The witness
// position is the smallest-position evidence for that edge.
func (fi *flowInfo) lockEdges(fset *token.FileSet) map[lockID]map[lockID]token.Pos {
	edges := map[lockID]map[lockID]token.Pos{}
	add := func(outer, inner lockID, pos token.Pos) {
		m := edges[outer]
		if m == nil {
			m = map[lockID]token.Pos{}
			edges[outer] = m
		}
		old, ok := m[inner]
		if !ok || posLess(fset, pos, old) {
			m[inner] = pos
		}
	}
	for _, k := range fi.order {
		s := fi.funcs[k]
		for _, p := range s.pairs {
			add(p.outer, p.inner, p.pos)
		}
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			for inner := range fi.transAcq[c.callee] {
				for _, outer := range c.held {
					add(outer, inner, c.pos)
				}
			}
		}
	}
	return edges
}

// posLess orders positions by (file, line, column) so witness selection
// is deterministic across runs.
func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}

// sortedLockIDs returns the map's keys in lexical order.
func sortedLockIDs[V any](m map[lockID]V) []lockID {
	out := make([]lockID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// joinLockPath renders "a → b → c".
func joinLockPath(ids []lockID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, " -> ")
}

package lint

// GoroLeak flags goroutine launches in library packages that have no
// visible shutdown path. A library goroutine that nothing can stop
// outlives its owner: it pins memory, keeps timers firing, and — the
// shape PR 7/8 guard against — keeps touching a store or cache after
// Close, which the race detector reports only if a test happens to
// overlap the window.
//
// A spawn is considered bounded when the flow-lite layer can see any of:
//
//   - the spawned body (or its callee, transitively through the static
//     call graph) observes a context;
//   - it performs a channel operation — receive, send, select, range
//     over a channel, or close — meaning some peer can signal it;
//   - it calls (*sync.WaitGroup).Done, meaning an owner Waits for it;
//   - a context.Context is passed as an argument at the spawn site.
//
// This is deliberately generous: any plausible shutdown protocol
// silences the check, so a finding means no protocol is visible at all.
// Fire-and-forget goroutines that are intentionally process-lifetime
// (in a cmd/ main, say) are out of scope — main packages are skipped —
// and a deliberate library exception takes a directive naming who
// guarantees termination.
var GoroLeak = &Analyzer{
	Name:         "goroleak",
	Doc:          "library goroutine launched without a ctx/channel/WaitGroup shutdown path",
	Run:          runGoroLeak,
	ProgramScope: true,
}

func runGoroLeak(pass *Pass) {
	fi := pass.Prog.flow()
	for _, sp := range fi.spawns {
		if sp.pkg.Name == "main" {
			continue
		}
		if sp.signal {
			continue
		}
		if sp.callee != "" && fi.transSignal[sp.callee] {
			continue
		}
		bounded := false
		for _, callee := range sp.calls {
			if fi.transSignal[callee] {
				bounded = true
				break
			}
		}
		if bounded {
			continue
		}
		pass.Reportf(sp.pos, SeverityWarning,
			"goroutine launched with no visible shutdown path: the spawned body observes no context, performs no channel operation, and signals no WaitGroup, so nothing can stop it after its owner closes — plumb a ctx or stop channel, or register it with the owner's WaitGroup")
	}
}

package lint

import (
	"go/ast"
)

// GuardCheck flags loops in the execution packages that fetch node
// records through storage/index accessors — or step postings cursors
// through compressed blocks — without consulting the query's exec.Guard.
//
// PR 2's invariant: every access method charges its storage touches
// against one cooperative Guard (Tick/NoteEmit/Check), so cancellation,
// deadlines, and the shared access budget latch within one check
// interval. A loop that fetches records but never consults the guard
// reopens the runaway-query hole — it keeps reading after the budget is
// exhausted or the client has gone away.
//
// A loop counts as guarded when its outermost enclosing loop body
// mentions the guard machinery at all: a *exec.Guard value (method call,
// argument, capture) or a *storage.AccessBudget. Bounded result-assembly
// loops that genuinely need no guard take a //tixlint:ignore with the
// bound as the reason.
var GuardCheck = &Analyzer{
	Name: "guardcheck",
	Doc:  "storage-access loop without exec.Guard consultation in internal/exec or internal/shard",
	Run:  runGuardCheck,
}

var guardcheckPkgs = map[string]bool{"exec": true, "shard": true}

// accessorMethods lists index accessors charged per call; storage.Accessor
// methods all charge, so any method on it counts.
var indexAccessorMethods = map[string]bool{"Postings": true}

// Postings consumption is charged the same way: cursor methods that
// decode or step through compressed blocks, and the whole-list decoders.
// (exec aliases index.Cursor/List to these, so the named types resolve
// to package postings.)
var postingsCursorMethods = map[string]bool{"Cur": true, "Advance": true, "SeekPos": true}
var postingsListMethods = map[string]bool{"Materialize": true, "DocCounts": true, "Each": true}

func runGuardCheck(pass *Pass) {
	if !guardcheckPkgs[pass.Pkg.Segment()] {
		return
	}
	for _, file := range pass.Pkg.Files {
		if isTestFilename(pass.Filename(file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcGuarded := mentionsGuard(pass, fd.Body)
			walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				if !isLoop(n) {
					return true
				}
				// Only outermost loops: an inner loop is covered by
				// its enclosing loop's verdict (a guard consult per
				// outer iteration bounds the whole nest's exposure).
				for _, anc := range stack {
					if isLoop(anc) {
						return true
					}
				}
				body := loopBody(n)
				acc := firstAccessorCall(pass, body)
				if acc == "" || mentionsGuard(pass, body) {
					return true
				}
				sev := SeverityError
				hint := "no guard is in scope — thread the query's *exec.Guard in and Tick per iteration"
				if funcGuarded {
					sev = SeverityWarning
					hint = "the function consults a guard elsewhere, but not within this loop"
				}
				pass.Reportf(n.Pos(), sev,
					"loop calls storage accessor %s without consulting exec.Guard: cancellation and the access budget are unenforced here (%s)",
					acc, hint)
				return true
			})
		}
	}
}

func isLoop(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// firstAccessorCall returns the printed name of the first charged
// accessor call in n, or "".
func firstAccessorCall(pass *Pass, n ast.Node) string {
	found := ""
	ast.Inspect(n, func(node ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := pass.TypeOf(sel.X)
		switch {
		case typeFromPkg(recv, "storage", "Accessor"):
			found = "Accessor." + sel.Sel.Name
		case typeFromPkg(recv, "index", "Index") && indexAccessorMethods[sel.Sel.Name]:
			found = "Index." + sel.Sel.Name
		case typeFromPkg(recv, "postings", "Cursor") && postingsCursorMethods[sel.Sel.Name]:
			found = "Cursor." + sel.Sel.Name
		case typeFromPkg(recv, "postings", "List") && postingsListMethods[sel.Sel.Name]:
			found = "List." + sel.Sel.Name
		}
		return true
	})
	return found
}

// mentionsGuard reports whether n's subtree references the guard
// machinery: any expression of type exec.Guard or storage.AccessBudget
// (method calls on a guard, a guard passed as an argument or captured by
// a worker closure, a budget charge).
func mentionsGuard(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		e, ok := node.(ast.Expr)
		if !ok {
			return true
		}
		t := pass.TypeOf(e)
		if typeFromPkg(t, "exec", "Guard") || typeFromPkg(t, "storage", "AccessBudget") {
			found = true
			return false
		}
		return true
	})
	return found
}

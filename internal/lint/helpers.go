package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errorIface is the universe error interface, for Implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether a value of type t satisfies error.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeFromPkg reports whether t (through pointers) is the named type
// typeName declared in a package whose import path's last segment is
// pkgSeg. Matching by segment rather than full path keeps the analyzers
// applicable to lint's fixture module, which mirrors the real package
// layout under a different module path.
func typeFromPkg(t types.Type, pkgSeg, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && lastSegment(n.Obj().Pkg().Path()) == pkgSeg
}

// lastSegment returns the final element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isTestFilename reports whether name is a _test.go file.
func isTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// calleeObject resolves the object a call invokes (function, method, or
// builtin), or nil for indirect calls through expressions.
func calleeObject(p *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.ObjectOf(fun)
	case *ast.SelectorExpr:
		return p.ObjectOf(fun.Sel)
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (exact import path match, for standard-library packages).
func isPkgFunc(p *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(p, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != pkgPath || obj.Name() != name {
		return false
	}
	// A package-level function, not a method: selector base must be the
	// package name itself when written as a selector.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := p.ObjectOf(base).(*types.PkgName); isPkg {
				return true
			}
		}
		return false
	}
	return true
}

// pkgFuncCall returns (import path, func name, true) when call invokes a
// package-level function via a package selector, e.g. rand.Intn.
func pkgFuncCall(p *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.ObjectOf(base).(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// walkStack walks root depth-first, calling fn with each node and the
// stack of its ancestors (outermost first, not including n). Returning
// false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	v := &stackVisitor{fn: fn}
	ast.Walk(v, root)
}

type stackVisitor struct {
	stack []ast.Node
	fn    func(ast.Node, []ast.Node) bool
}

func (v *stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	if !v.fn(n, v.stack) {
		return nil
	}
	v.stack = append(v.stack, n)
	return v
}

// enclosingFuncs returns the functions on the stack from innermost to
// outermost (both declarations and literals).
func enclosingFuncs(stack []ast.Node) []ast.Node {
	var out []ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			out = append(out, stack[i])
		}
	}
	return out
}

// ctxParamObjects returns the objects of every context.Context parameter
// of fn (a FuncDecl or FuncLit), excluding blanks.
func ctxParamObjects(p *Pass, fn ast.Node) []types.Object {
	var ft *ast.FuncType
	switch f := fn.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	default:
		return nil
	}
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !typeFromPkg(p.TypeOf(field.Type), "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := p.ObjectOf(name); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

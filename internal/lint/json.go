package lint

import (
	"encoding/json"
	"io"
)

// JSON output for `tixlint -json`: one object per run, findings sorted by
// (file, line, col, analyzer, message) so CI diffs are byte-stable. Field
// names are part of the tool's contract; renames are breaking.

// FindingJSON is one finding.
type FindingJSON struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// StaleJSON is one suppression directive that matched no finding,
// surfaced structurally so CI artifacts capture directive rot with its
// location and the reason that no longer applies.
type StaleJSON struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Names  []string `json:"names"`
	Reason string   `json:"reason"`
}

// ReportJSON is the top-level document.
type ReportJSON struct {
	Findings []FindingJSON `json:"findings"`
	Count    int           `json:"count"`
	// Stale lists suppression directives that matched no finding
	// (populated when the full registry runs with unused-checking).
	Stale []StaleJSON `json:"stale_directives"`
	// Errors lists load/type-check failures; non-empty means the
	// findings may be incomplete (tixlint exits 2).
	Errors []string `json:"errors,omitempty"`
}

// Report converts sorted diagnostics into the JSON document shape.
func Report(diags []Diagnostic, loadErrors []string) ReportJSON {
	return ReportAll(diags, nil, loadErrors)
}

// ReportAll is Report plus the structured stale-directive audit.
func ReportAll(diags []Diagnostic, stale []StaleDirective, loadErrors []string) ReportJSON {
	rep := ReportJSON{Findings: []FindingJSON{}, Count: len(diags), Stale: []StaleJSON{}, Errors: loadErrors}
	for _, s := range stale {
		rep.Stale = append(rep.Stale, StaleJSON{File: s.File, Line: s.Line, Names: s.Names, Reason: s.Reason})
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, FindingJSON{
			Analyzer: d.Analyzer,
			Severity: d.Severity.String(),
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	return rep
}

// WriteJSON writes the report as one indented JSON document.
func WriteJSON(w io.Writer, rep ReportJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

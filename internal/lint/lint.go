// Package lint is tixlint's engine: a standard-library-only static
// analysis suite over go/ast and go/types that mechanically enforces the
// project invariants previous PRs established by convention —
// deterministic iteration in packages whose output must replay
// bit-for-bit, exec.Guard consultation on every storage-access loop,
// errors.Is-compatible error handling, and context hygiene.
//
// The motivating case study is the PR-3 synth bug: control terms were
// planted in map-iteration order, consuming the seeded RNG
// run-dependently, and only a byte-identical golden test caught it. The
// mapiter analyzer turns that lucky catch into a mechanical one.
//
// Findings can be suppressed per line with a justified directive:
//
//	//tixlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or alone on the line above it. The reason
// is mandatory, unknown analyzer names are rejected, and directives that
// suppress nothing are themselves reported, so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Severity classifies a finding. tixlint exits nonzero when any finding
// reaches the threshold severity (default warning).
type Severity int

const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

// String returns the lowercase name used in text and JSON output.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity parses "info", "warning", or "error".
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return SeverityInfo, nil
	case "warning":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want info, warning, or error)", name)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Severity, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects a single package and reports
// findings through the pass — unless ProgramScope is set, in which case
// Run is invoked exactly once with a package-less pass and walks
// prog.Pkgs itself (cross-package graphs: lock ordering, metric-name
// ownership).
type Analyzer struct {
	Name         string
	Doc          string
	Run          func(*Pass)
	ProgramScope bool
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	diags    *[]Diagnostic
}

// Fset returns the program-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// Filename returns the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Prog.Fset.Position(pos).Filename
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, sev Severity, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full registry sorted by name, so -list output
// and the ratchet file are byte-stable across builds.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		MapIter, GuardCheck, ErrWrap, CtxHygiene, NoDeterm, SleepHygiene,
		LockOrder, AtomicHygiene, CacheKey, AliasRet, GoroLeak, MetricReg,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// WriteList renders the registry one analyzer per line, sorted by name,
// so `tixlint -list` output is byte-stable across builds.
func WriteList(w io.Writer) {
	for _, a := range Analyzers() {
		fmt.Fprintf(w, "%-14s %s\n", a.Name, a.Doc)
	}
}

// metaAnalyzer names the pseudo-analyzer that reports problems with
// suppression directives themselves.
const metaAnalyzer = "tixlint"

// Runner executes a set of analyzers over a loaded program.
type Runner struct {
	Analyzers []*Analyzer
	// CheckUnused reports suppression directives that matched no
	// finding. Enable only when the full registry runs; with a filtered
	// analyzer set a directive may legitimately sit idle.
	CheckUnused bool
}

// StaleDirective is a //tixlint:ignore comment that suppressed nothing —
// surfaced both as a tixlint finding and structurally in -json output so
// CI artifacts capture directive rot.
type StaleDirective struct {
	File   string
	Line   int
	Names  []string
	Reason string
}

// Run executes every analyzer over every package, applies suppression
// directives, and returns the surviving diagnostics sorted by position.
// File paths are reported relative to the module root.
func (r *Runner) Run(prog *Program) []Diagnostic {
	diags, _ := r.RunAll(prog)
	return diags
}

// RunAll is Run plus the structured list of stale suppression
// directives (empty unless CheckUnused is set).
func (r *Runner) RunAll(prog *Program) ([]Diagnostic, []StaleDirective) {
	known := map[string]bool{metaAnalyzer: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	var raw []Diagnostic
	for _, a := range r.Analyzers {
		if a.ProgramScope {
			a.Run(&Pass{Analyzer: a, Prog: prog, diags: &raw})
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, a := range r.Analyzers {
			if !a.ProgramScope {
				a.Run(&Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &raw})
			}
		}
	}

	dirs := collectDirectives(prog, known)
	var out []Diagnostic
	for _, d := range raw {
		if !suppress(dirs, d) {
			out = append(out, d)
		}
	}
	var stale []StaleDirective
	for _, dir := range dirs {
		if dir.malformed != "" {
			out = append(out, Diagnostic{
				Analyzer: metaAnalyzer,
				Severity: SeverityError,
				Pos:      prog.Fset.Position(dir.pos),
				Message:  dir.malformed,
			})
		} else if r.CheckUnused && !dir.used {
			pos := prog.Fset.Position(dir.pos)
			out = append(out, Diagnostic{
				Analyzer: metaAnalyzer,
				Severity: SeverityWarning,
				Pos:      pos,
				Message:  fmt.Sprintf("suppression for %s matches no finding; delete the stale directive", strings.Join(dir.names, ",")),
			})
			stale = append(stale, StaleDirective{
				File:   relModule(prog, pos.Filename),
				Line:   pos.Line,
				Names:  append([]string(nil), dir.names...),
				Reason: dir.reason,
			})
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].File != stale[j].File {
			return stale[i].File < stale[j].File
		}
		return stale[i].Line < stale[j].Line
	})

	for i := range out {
		out[i].Pos.Filename = relModule(prog, out[i].Pos.Filename)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, stale
}

// relModule rewrites an absolute filename relative to the module root
// (slash-separated); paths outside the module pass through unchanged.
func relModule(prog *Program, filename string) string {
	if rel, err := filepath.Rel(prog.ModuleDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

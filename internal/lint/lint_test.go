package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

const fixtureDir = "testdata/src/fixture"

// fixtureRun loads and analyzes the fixture module once; every test that
// inspects fixture diagnostics shares the result.
var fixtureRun struct {
	once  sync.Once
	prog  *Program
	diags []Diagnostic
	stale []StaleDirective
	err   error
}

func loadFixture(t *testing.T) (*Program, []Diagnostic) {
	t.Helper()
	fixtureRun.once.Do(func() {
		prog, err := Load(fixtureDir, "./...")
		if err != nil {
			fixtureRun.err = err
			return
		}
		if len(prog.LoadErrors) > 0 {
			fixtureRun.err = fmt.Errorf("fixture load errors: %s", strings.Join(prog.LoadErrors, "; "))
			return
		}
		runner := &Runner{Analyzers: Analyzers(), CheckUnused: true}
		fixtureRun.prog = prog
		fixtureRun.diags, fixtureRun.stale = runner.RunAll(prog)
	})
	if fixtureRun.err != nil {
		t.Fatalf("loading fixture module: %v", fixtureRun.err)
	}
	return fixtureRun.prog, fixtureRun.diags
}

// loadFixtureStale returns the stale-directive audit from the shared
// fixture run.
func loadFixtureStale(t *testing.T) []StaleDirective {
	t.Helper()
	loadFixture(t)
	return fixtureRun.stale
}

// wantRe extracts the quoted pattern from a `// want "..."` expectation
// comment in fixture source.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string // fixture-relative, slash-separated
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans the fixture sources for expectation comments. The
// suppress package is excluded: its directives occupy the comment position,
// so its expectations live in TestSuppressionDirectives instead.
func collectWants(t *testing.T) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.Walk(fixtureDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(fixtureDir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, "suppress/") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %w", rel, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: rel, line: i + 1, pattern: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture wants: %v", err)
	}
	if len(wants) == 0 {
		t.Fatal("no want expectations found in fixture sources")
	}
	return wants
}

// TestFixtureDiagnostics runs the full registry over the fixture module
// and checks the findings against the // want comments: every expectation
// must be met at its exact file:line, and no unexpected finding may appear.
func TestFixtureDiagnostics(t *testing.T) {
	_, diags := loadFixture(t)
	wants := collectWants(t)

	for _, d := range diags {
		if strings.HasPrefix(d.Pos.Filename, "suppress/") {
			continue
		}
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d: %s", d.Pos.Filename, d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected finding at %s:%d matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// TestPR3SynthBugFlagged pins the acceptance criterion directly: the
// re-created PR-3 map-order planting bug in fixture synth must be flagged
// by mapiter as an error.
func TestPR3SynthBugFlagged(t *testing.T) {
	_, diags := loadFixture(t)
	for _, d := range diags {
		if d.Analyzer == "mapiter" && d.Pos.Filename == "synth/synth.go" && d.Severity == SeverityError &&
			strings.Contains(d.Message, "PR-3 synth bug") {
			return
		}
	}
	t.Fatal("mapiter did not flag the PR-3 map-order planting bug in fixture synth")
}

// TestSuppressionDirectives checks the directive machinery on the suppress
// fixture package: valid standalone and trailing directives suppress their
// line, a missing reason and an unknown analyzer are malformed (and
// suppress nothing), and a directive matching no finding is reported stale.
func TestSuppressionDirectives(t *testing.T) {
	_, diags := loadFixture(t)
	var got []Diagnostic
	for _, d := range diags {
		if strings.HasPrefix(d.Pos.Filename, "suppress/") {
			got = append(got, d)
		}
	}

	type exp struct {
		line     int
		analyzer string
		severity Severity
		substr   string
	}
	expected := []exp{
		{31, metaAnalyzer, SeverityError, "missing its mandatory reason"},
		{32, "errwrap", SeverityError, "loses its wrap chain"},
		{37, metaAnalyzer, SeverityError, `unknown analyzer "nosuchlint"`},
		{38, "errwrap", SeverityError, "loses its wrap chain"},
		{43, metaAnalyzer, SeverityWarning, "matches no finding"},
		// An unknown analyzer anywhere in a multi-name list voids the
		// whole directive, so the errwrap finding it would have covered
		// surfaces alongside the malformed-directive error.
		{58, metaAnalyzer, SeverityError, `unknown analyzer "nosuchlint"`},
		{59, "errwrap", SeverityError, "loses its wrap chain"},
	}
	for _, e := range expected {
		found := false
		for _, d := range got {
			if d.Pos.Line == e.line && d.Analyzer == e.analyzer && d.Severity == e.severity &&
				strings.Contains(d.Message, e.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected diagnostic at suppress/suppress.go:%d [%s] ~%q", e.line, e.analyzer, e.substr)
		}
	}
	// The well-formed directives on lines 19, 25, and 50 must have
	// suppressed the errwrap findings on lines 20, 25, and 51 — line 50's
	// directive names two analyzers and only errwrap fires, which still
	// marks it used rather than stale.
	for _, d := range got {
		if d.Analyzer == "errwrap" && (d.Pos.Line == 20 || d.Pos.Line == 25 || d.Pos.Line == 51) {
			t.Errorf("directive failed to suppress finding at suppress/suppress.go:%d: %s", d.Pos.Line, d.Message)
		}
	}
	if len(got) != len(expected) {
		var lines []string
		for _, d := range got {
			lines = append(lines, d.String())
		}
		t.Errorf("suppress package: got %d diagnostics, want %d:\n%s", len(got), len(expected), strings.Join(lines, "\n"))
	}
}

// TestJSONOutput checks the -json document schema and that rendering is
// byte-stable across repeated encodings of the same run.
func TestJSONOutput(t *testing.T) {
	prog, diags := loadFixture(t)
	stale := loadFixtureStale(t)

	var a, b bytes.Buffer
	if err := WriteJSON(&a, ReportAll(diags, stale, prog.LoadErrors)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := WriteJSON(&b, ReportAll(diags, stale, prog.LoadErrors)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON output is not byte-stable across renders of the same run")
	}

	var doc struct {
		Findings []map[string]any `json:"findings"`
		Count    int              `json:"count"`
		Stale    []StaleJSON      `json:"stale_directives"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Count != len(diags) || len(doc.Findings) != len(diags) {
		t.Errorf("count = %d, findings = %d, want both %d", doc.Count, len(doc.Findings), len(diags))
	}
	if len(doc.Findings) == 0 {
		t.Fatal("fixture run produced no findings to check the schema against")
	}
	for _, key := range []string{"analyzer", "severity", "file", "line", "col", "message"} {
		if _, ok := doc.Findings[0][key]; !ok {
			t.Errorf("finding object is missing contract field %q", key)
		}
	}

	// Findings must arrive sorted by (file, line) so CI diffs are stable.
	for i := 1; i < len(diags); i++ {
		prev, cur := diags[i-1], diags[i]
		if prev.Pos.Filename > cur.Pos.Filename ||
			(prev.Pos.Filename == cur.Pos.Filename && prev.Pos.Line > cur.Pos.Line) {
			t.Errorf("findings out of order: %s:%d before %s:%d",
				prev.Pos.Filename, prev.Pos.Line, cur.Pos.Filename, cur.Pos.Line)
		}
	}

	// The stale-directive audit must appear structurally with file:line:
	// the suppress fixture's deliberately stale mapiter directive is the
	// known instance.
	foundStale := false
	for _, s := range doc.Stale {
		if s.File == "suppress/suppress.go" && s.Line == 43 && len(s.Names) == 1 && s.Names[0] == "mapiter" {
			foundStale = true
			if s.Reason == "" {
				t.Error("stale directive lost its recorded reason in JSON output")
			}
		}
	}
	if !foundStale {
		t.Errorf("stale_directives missing the suppress fixture's known stale entry; got %+v", doc.Stale)
	}
}

// TestListOutput checks that -list rendering is sorted by analyzer name
// and byte-stable across renders.
func TestListOutput(t *testing.T) {
	var a, b bytes.Buffer
	WriteList(&a)
	WriteList(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteList output is not byte-stable across renders")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != len(Analyzers()) {
		t.Fatalf("WriteList rendered %d lines, want one per analyzer (%d)", len(lines), len(Analyzers()))
	}
	var names []string
	for _, line := range lines {
		names = append(names, strings.Fields(line)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("WriteList analyzers are not sorted by name: %v", names)
	}
}

// TestRatchet covers the count/compare/round-trip cycle: every analyzer
// appears in the counts even at zero, regressions are detected against
// both explicit and absent baselines, and counts at or below baseline
// pass.
func TestRatchet(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "errwrap"}, {Analyzer: "errwrap"}, {Analyzer: "lockorder"},
	}
	counts := CountByAnalyzer(diags)
	if counts["errwrap"] != 2 || counts["lockorder"] != 1 {
		t.Fatalf("CountByAnalyzer = %v, want errwrap=2 lockorder=1", counts)
	}
	for _, a := range Analyzers() {
		if _, ok := counts[a.Name]; !ok {
			t.Errorf("CountByAnalyzer omits %s; the ratchet file must be a complete inventory", a.Name)
		}
	}

	base := &Ratchet{Counts: map[string]int{"errwrap": 2}}
	regressions := CheckRatchet(base, counts)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "lockorder") {
		t.Errorf("CheckRatchet = %v, want exactly one lockorder regression (absent baseline entries count as zero)", regressions)
	}
	if got := CheckRatchet(&Ratchet{Counts: map[string]int{"errwrap": 5, "lockorder": 1}}, counts); len(got) != 0 {
		t.Errorf("CheckRatchet flagged counts at or below baseline: %v", got)
	}

	path := filepath.Join(t.TempDir(), "ratchet.json")
	if err := WriteRatchet(path, counts); err != nil {
		t.Fatalf("WriteRatchet: %v", err)
	}
	loaded, err := ReadRatchet(path)
	if err != nil {
		t.Fatalf("ReadRatchet: %v", err)
	}
	if got := CheckRatchet(loaded, counts); len(got) != 0 {
		t.Errorf("round-tripped baseline rejects its own counts: %v", got)
	}
}

// TestFilterChanged checks the -changed diagnostic scoping against a
// changed-file set.
func TestFilterChanged(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "errwrap", Pos: token.Position{Filename: "a/a.go", Line: 3}},
		{Analyzer: "mapiter", Pos: token.Position{Filename: "b/b.go", Line: 9}},
	}
	stale := []StaleDirective{
		{File: "a/a.go", Line: 5, Names: []string{"errwrap"}},
		{File: "c/c.go", Line: 7, Names: []string{"mapiter"}},
	}
	changed := map[string]bool{"a/a.go": true}
	if got := FilterChanged(diags, changed); len(got) != 1 || got[0].Pos.Filename != "a/a.go" {
		t.Errorf("FilterChanged = %v, want only a/a.go", got)
	}
	if got := FilterStaleChanged(stale, changed); len(got) != 1 || got[0].File != "a/a.go" {
		t.Errorf("FilterStaleChanged = %v, want only a/a.go", got)
	}
	if got := FilterChanged(diags, map[string]bool{}); got != nil {
		t.Errorf("FilterChanged with empty set = %v, want none", got)
	}
}

// TestRepoLintClean is the dogfood gate: the repository itself must lint
// clean with the full registry, including the unused-suppression check.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	if len(prog.LoadErrors) > 0 {
		t.Fatalf("repository load errors:\n%s", strings.Join(prog.LoadErrors, "\n"))
	}
	runner := &Runner{Analyzers: Analyzers(), CheckUnused: true}
	diags := runner.Run(prog)
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}

func TestParseSeverity(t *testing.T) {
	cases := []struct {
		in   string
		want Severity
		ok   bool
	}{
		{"info", SeverityInfo, true},
		{"warning", SeverityWarning, true},
		{"error", SeverityError, true},
		{"ERROR", 0, false},
		{"", 0, false},
		{"fatal", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSeverity(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseSeverity(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestSegment(t *testing.T) {
	cases := []struct {
		path, want string
	}{
		{"repro/internal/synth", "synth"},
		{"repro/internal/shard_test", "shard"},
		{"fixture/exec", "exec"},
		{"single", "single"},
	}
	for _, c := range cases {
		p := &Package{PkgPath: c.path}
		if got := p.Segment(); got != c.want {
			t.Errorf("Segment(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

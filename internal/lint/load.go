package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Program is a loaded, type-checked view of one Go module — the unit
// tixlint analyzes. Loading shells out to `go list -export` so the
// toolchain resolves imports and produces export data, then parses and
// type-checks the module's own packages with go/parser + go/types. No
// dependencies beyond the standard library and the go command.
type Program struct {
	Fset      *token.FileSet
	Pkgs      []*Package
	ModuleDir string
	// LoadErrors collects go list, parse, and type-check problems.
	// Analyzers still run over whatever loaded, but a non-empty list
	// means results may be incomplete and tixlint exits 2.
	LoadErrors []string

	// The flow-lite layer (flow.go) is built lazily on first use and
	// shared by every analyzer that consumes it.
	flowOnce sync.Once
	flowInfo *flowInfo
}

// Package is one type-checked package (possibly a test variant, which
// includes the package's _test.go files).
type Package struct {
	ImportPath string // raw go list path, e.g. "repro/internal/shard [repro/internal/shard.test]"
	PkgPath    string // cleaned import path without the test-variant suffix
	Dir        string
	Name       string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Segment returns the last import-path element with any "_test" external
// test suffix stripped — the name analyzers use for package-set matching
// ("synth", "shard", "bench", "index", ...), so the rules apply equally
// to the real module and to lint's fixture module.
func (p *Package) Segment() string {
	seg := p.PkgPath
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	return strings.TrimSuffix(seg, "_test")
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	Standard   bool
	ForTest    string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// cleanImportPath strips the " [pkg.test]" variant suffix go list appends
// to test-augmented packages.
func cleanImportPath(p string) string {
	if i := strings.IndexByte(p, ' '); i >= 0 {
		return p[:i]
	}
	return p
}

// Load lists, parses, and type-checks the module rooted at (or containing)
// dir, restricted to patterns (typically "./..."). Test files are included
// via go list's test variants: the augmented "p [p.test]" package replaces
// the plain "p", and external "p_test" packages load separately.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,ImportMap,Standard,ForTest,Module,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	prog := &Program{Fset: token.NewFileSet(), ModuleDir: dir}
	meta := map[string]*listPkg{}
	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if derr := dec.Decode(lp); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", derr)
		}
		meta[lp.ImportPath] = lp
		order = append(order, lp)
	}

	// The test-augmented variant supersedes the plain package: same
	// non-test files plus the in-package tests, so analyzing both would
	// duplicate every diagnostic.
	augmented := map[string]bool{}
	for _, lp := range order {
		if lp.ForTest != "" && cleanImportPath(lp.ImportPath) == lp.ForTest {
			augmented[lp.ForTest] = true
		}
	}

	for _, lp := range order {
		clean := cleanImportPath(lp.ImportPath)
		switch {
		case lp.Module == nil || lp.Standard:
			continue // dependency outside the module
		case strings.HasSuffix(clean, ".test"):
			continue // synthesized test main
		case lp.ForTest == "" && augmented[clean]:
			continue // plain package shadowed by its test variant
		}
		if lp.Error != nil {
			prog.LoadErrors = append(prog.LoadErrors, fmt.Sprintf("%s: %s", clean, lp.Error.Err))
		}
		if prog.ModuleDir == dir && lp.Module.Dir != "" {
			prog.ModuleDir = lp.Module.Dir
		}
		pkg, perr := typeCheck(prog, lp, meta)
		if perr != nil {
			prog.LoadErrors = append(prog.LoadErrors, fmt.Sprintf("%s: %v", clean, perr))
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].ImportPath < prog.Pkgs[j].ImportPath })
	return prog, nil
}

// typeCheck parses lp's files and type-checks them against export data
// for every import, resolved through lp.ImportMap so test variants see
// their augmented dependencies.
func typeCheck(prog *Program, lp *listPkg, meta map[string]*listPkg) (*Package, error) {
	var files []*ast.File
	for _, f := range lp.GoFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		af, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		return nil, nil
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		dep, ok := meta[path]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: importer.ForCompiler(prog.Fset, "gc", lookup),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	clean := cleanImportPath(lp.ImportPath)
	tpkg, _ := conf.Check(clean, prog.Fset, files, info)
	pkg := &Package{
		ImportPath: lp.ImportPath,
		PkgPath:    clean,
		Dir:        lp.Dir,
		Name:       lp.Name,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	if len(typeErrs) > 0 {
		return pkg, fmt.Errorf("type errors: %s", strings.Join(typeErrs, "; "))
	}
	return pkg, nil
}

package lint

import (
	"go/token"
)

// LockOrder builds the module-wide mutex acquisition graph over the
// mutation and serving tier (db, shard, fleet, index, rescache) from the
// flow-lite layer and flags two discipline violations:
//
//   - a cycle in the graph — two code paths that acquire the same pair
//     of locks in opposite orders deadlock the first time they race, and
//     a self-loop (a lock acquired while a path that already holds it is
//     live) deadlocks without any help;
//   - an acquisition of the fleet ingest mutex while any other tracked
//     lock is held. PR 8's replicated-ingest discipline makes
//     fleet.Fleet.ingestMu the outermost lock of the whole mutation
//     path: it serializes fleet-wide id allocation, so taking it under a
//     facade or index lock inverts the only ordering that keeps
//     replicated mutation deadlock-free.
//
// Locks are identified at type granularity (every db.DB instance's mu is
// one node), which is the standard static approximation: it can conflate
// hand-over-hand locking of two instances of one type, so that shape —
// should it ever appear — takes a //tixlint:ignore explaining why the
// instances are provably distinct and ordered.
var LockOrder = &Analyzer{
	Name:         "lockorder",
	Doc:          "mutex acquisition cycles or fleet-ingest-mutex ordering violations across db/shard/fleet/index/rescache",
	Run:          runLockOrder,
	ProgramScope: true,
}

// outermostLocks must never be acquired while any other tracked lock is
// held.
var outermostLocks = map[lockID]string{
	{seg: "fleet", typ: "Fleet", field: "ingestMu"}: "it serializes replicated ingest fleet-wide and must be the outermost lock of the mutation path (PR 8)",
}

func runLockOrder(pass *Pass) {
	fi := pass.Prog.flow()
	edges := fi.lockEdges(pass.Fset())

	// Outermost-lock discipline: any inbound edge is a violation.
	for _, outer := range sortedLockIDs(edges) {
		for _, inner := range sortedLockIDs(edges[outer]) {
			why, isOutermost := outermostLocks[inner]
			if !isOutermost || outer == inner {
				continue
			}
			pass.Reportf(edges[outer][inner], SeverityError,
				"%s acquired while %s is held: %s — release the held lock (or hoist the %s acquisition) before entering the ingest path",
				inner, outer, why, inner)
		}
	}

	reportCycles(pass, edges)
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports one diagnostic per component, anchored at the
// smallest witness position among the component's edges so suppression
// and // want fixtures have a stable line to target.
func reportCycles(pass *Pass, edges map[lockID]map[lockID]token.Pos) {
	ids := sortedLockIDs(edges)
	index := map[lockID]int{}
	low := map[lockID]int{}
	onStack := map[lockID]bool{}
	var stack []lockID
	next := 0
	var sccs [][]lockID

	var strongconnect func(v lockID)
	strongconnect = func(v lockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedLockIDs(edges[v]) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range ids {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		selfLoop := len(scc) == 1 && hasEdge(edges, scc[0], scc[0])
		if len(scc) < 2 && !selfLoop {
			continue
		}
		member := map[lockID]bool{}
		for _, id := range scc {
			member[id] = true
		}
		// Witness: smallest-position edge inside the component.
		var witness token.Pos
		haveWitness := false
		for _, a := range sortedLockIDs(edges) {
			if !member[a] {
				continue
			}
			for _, bID := range sortedLockIDs(edges[a]) {
				if !member[bID] {
					continue
				}
				pos := edges[a][bID]
				if !haveWitness || posLess(pass.Fset(), pos, witness) {
					witness = pos
					haveWitness = true
				}
			}
		}
		if !haveWitness {
			continue
		}
		if selfLoop {
			pass.Reportf(witness, SeverityError,
				"lock %s may be acquired while a path already holding it is live (self-deadlock): the callee locks the same mutex its caller holds — split out a *Locked variant that asserts rather than acquires",
				scc[0])
			continue
		}
		cycle := sortedLockIDs(member)
		path := append(append([]lockID(nil), cycle...), cycle[0])
		pass.Reportf(witness, SeverityError,
			"lock-order cycle %s: these locks are acquired in inconsistent orders on different paths and will deadlock under contention — pick one global order and restructure the offenders",
			joinLockPath(path))
	}
}

func hasEdge(edges map[lockID]map[lockID]token.Pos, a, b lockID) bool {
	m, ok := edges[a]
	if !ok {
		return false
	}
	_, ok = m[b]
	return ok
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `for range` over a map in determinism-critical packages.
//
// Go randomizes map iteration order per run. In packages whose output
// must replay bit-for-bit for a fixed seed — corpus synthesis, snapshot
// writing, benchmark tables, index construction — a raw map range either
// perturbs downstream state (the PR-3 bug: synth planted control terms in
// map order, consuming the seeded RNG run-dependently) or emits bytes in
// a different order each run.
//
// Two demonstrably order-insensitive shapes are allowed without a
// directive:
//
//   - collect-then-sort: the body only appends to slices that a later
//     statement in the same block passes to sort.* or slices.Sort*;
//   - integer accumulation: the body is a single x++/x--/x op= e with an
//     integer target and a call-free right-hand side (integer addition
//     commutes; float accumulation does not and stays flagged).
//
// Anything else needs a sort first or a justified //tixlint:ignore.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "range over map in a determinism-critical package (synth, shard, bench, index, db, postings)",
	Run:  runMapIter,
}

// mapiterPkgs are the determinism-critical package segments: corpus
// generation, sharded execution + snapshot container, benchmark/golden
// emission, index + snapshot persistence (db owns the snapshot writers),
// and the postings codec (block encoding must be byte-stable for the v2
// snapshot format and the differential tests). Non-test files only; tests
// assert on artifacts rather than produce them.
var mapiterPkgs = map[string]bool{
	"synth":    true,
	"shard":    true,
	"bench":    true,
	"index":    true,
	"db":       true,
	"postings": true,
}

func runMapIter(pass *Pass) {
	if !mapiterPkgs[pass.Pkg.Segment()] {
		return
	}
	for _, file := range pass.Pkg.Files {
		if isTestFilename(pass.Filename(file.Pos())) {
			continue
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if mapRangeIsOrderInsensitive(pass, rs, stack) {
				return true
			}
			pass.Reportf(rs.For, SeverityError,
				"range over map in determinism-critical package %q: iteration order is randomized per run — sort the keys first (the PR-3 synth bug planted terms in map order and consumed the RNG run-dependently)",
				pass.Pkg.Segment())
			return true
		})
	}
}

// mapRangeIsOrderInsensitive recognizes the two allowed shapes.
func mapRangeIsOrderInsensitive(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	return isIntegerAccumulation(pass, rs.Body) || isCollectThenSort(pass, rs, stack)
}

// isIntegerAccumulation accepts a single-statement body of the form
// x++ / x-- / x op= e where x has integer type and e makes no calls
// other than len.
func isIntegerAccumulation(pass *Pass, body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	switch st := body.List[0].(type) {
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, st.X)
	case *ast.AssignStmt:
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		default:
			return false
		}
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		return isIntegerExpr(pass, st.Lhs[0]) && isCallFree(pass, st.Rhs[0])
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isCallFree reports that e contains no function calls except builtin len.
func isCallFree(pass *Pass, e ast.Expr) bool {
	clean := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && b.Name() == "len" {
				return true
			}
		}
		clean = false
		return false
	})
	return clean
}

// isCollectThenSort accepts a body whose statements all append to local
// slices, each of which is passed to a sort call by a later statement in
// the block enclosing the range.
func isCollectThenSort(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	var targets []types.Object
	for _, st := range rs.Body.List {
		obj := appendTarget(pass, st)
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	if len(stack) == 0 {
		return false
	}
	block, ok := stack[len(stack)-1].(*ast.BlockStmt)
	if !ok {
		return false
	}
	idx := -1
	for i, st := range block.List {
		if st == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, obj := range targets {
		sorted := false
		for _, st := range block.List[idx+1:] {
			if stmtSorts(pass, st, obj) {
				sorted = true
				break
			}
		}
		if !sorted {
			return false
		}
	}
	return true
}

// appendTarget returns the slice variable when st is `v = append(v, ...)`.
func appendTarget(pass *Pass, st ast.Stmt) types.Object {
	as, ok := st.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, isBuiltin := pass.ObjectOf(fn).(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return nil
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.ObjectOf(lhs)
	if obj == nil || pass.ObjectOf(first) != obj {
		return nil
	}
	return obj
}

// sortFuncs are the recognized sorting entry points in sort and slices.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// stmtSorts reports whether st contains a sort.*/slices.Sort* call whose
// first argument is obj.
func stmtSorts(pass *Pass, st ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, name, ok := pkgFuncCall(pass, call)
		if !ok || !sortFuncs[pkg][name] {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.ObjectOf(arg) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

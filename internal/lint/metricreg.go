package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// MetricReg audits every metrics.Registry registration call in the
// module. The metrics surface is the operational contract PRs 4–8 built
// up (tix_query_seconds, tix_fleet_*, tix_rescache_*); dashboards and
// the load driver grep it by name, so three properties must hold
// statically:
//
//   - every registered name has a statically-derivable family — a
//     string literal or constant, a constant prefix joined to a dynamic
//     label suffix, or an fmt.Sprintf whose format is a literal. A name
//     computed entirely at runtime cannot be audited, documented, or
//     grepped;
//   - the family matches tix_ snake_case
//     (^tix_[a-z0-9]+(_[a-z0-9]+)*$);
//   - a fully-static name is registered by exactly one package. The
//     Registry get-or-create API makes repeat calls within a package
//     the normal idiom, but the same literal name appearing in two
//     packages means two subsystems silently share (and double-count)
//     one time series. Label-suffixed families are exempt — db and
//     shard intentionally record the same per-op families into
//     caller-provided registries.
var MetricReg = &Analyzer{
	Name:         "metricreg",
	Doc:          "tix_* metric names must be static, snake_case, and owned by one package",
	Run:          runMetricReg,
	ProgramScope: true,
}

// metricRegMethods are the Registry get-or-create registration entry
// points.
var metricRegMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

var metricFamilyRE = regexp.MustCompile(`^tix_[a-z0-9]+(_[a-z0-9]+)*$`)

// metricSite is one registration call with its resolved name.
type metricSite struct {
	family string
	full   string // complete name when fully static, else ""
	static bool
	known  bool // family could be derived at all
	pkg    *Package
	pos    token.Pos
}

func runMetricReg(pass *Pass) {
	var sites []metricSite
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			if isTestFilename(pass.Fset().Position(file.Pos()).Filename) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !metricRegMethods[sel.Sel.Name] || len(call.Args) == 0 {
					return true
				}
				if !typeFromPkg(pkgTypeOf(pkg, sel.X), "metrics", "Registry") {
					return true
				}
				site := metricNameOf(pkg, call.Args[0])
				site.pkg = pkg
				site.pos = call.Args[0].Pos()
				sites = append(sites, site)
				return true
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return posLess(pass.Fset(), sites[i].pos, sites[j].pos) })

	// Per-site shape checks.
	for _, s := range sites {
		if !s.known {
			pass.Reportf(s.pos, SeverityError,
				"metric name is computed at runtime: registrations must have a statically-derivable tix_* family (literal, constant, constant prefix + label suffix, or Sprintf with a literal format) so the metrics surface can be audited")
			continue
		}
		if !metricFamilyRE.MatchString(s.family) {
			pass.Reportf(s.pos, SeverityError,
				"metric family %q does not match tix_* snake_case (^tix_[a-z0-9]+(_[a-z0-9]+)*$): the tix_ prefix namespaces this module's metrics and dashboards depend on it",
				s.family)
		}
	}

	// Cross-package ownership of fully-static names. Sites are in
	// position order, so the first registration in the module owns the
	// name and later foreign registrations are the findings.
	owner := map[string]metricSite{}
	for _, s := range sites {
		if !s.static {
			continue
		}
		first, seen := owner[s.full]
		if !seen {
			owner[s.full] = s
			continue
		}
		if first.pkg.PkgPath == s.pkg.PkgPath {
			continue // within-package repeat: the get-or-create idiom
		}
		firstAt := pass.Fset().Position(first.pos)
		pass.Reportf(s.pos, SeverityError,
			"metric %q is already registered by package %s (%s:%d): a fully-static tix_* name has one owning package — reuse that subsystem's registration or rename",
			s.full, first.pkg.PkgPath, relModule(pass.Prog, firstAt.Filename), firstAt.Line)
	}
}

// metricNameOf derives the registered name from the argument expression.
func metricNameOf(pkg *Package, e ast.Expr) metricSite {
	e = ast.Unparen(e)

	// Fully constant (literal, const ident, constant concatenation).
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		full := constant.StringVal(tv.Value)
		return metricSite{family: metricFamily(full), full: full, static: true, known: true}
	}

	switch x := e.(type) {
	case *ast.BinaryExpr:
		// Constant prefix + dynamic label suffix: "tix_query_seconds" + lbl.
		// Concatenation is left-associative, so recurse down the left
		// spine until the constant prefix surfaces.
		if x.Op == token.ADD {
			if left := metricNameOf(pkg, x.X); left.known {
				return metricSite{family: left.family, known: true}
			}
		}
	case *ast.CallExpr:
		// fmt.Sprintf(`tix_x{replica="%d"}`, i): family is the format up
		// to the first label brace or verb.
		if p, name, ok := pkgFuncCallOf(pkg, x); ok && p == "fmt" && name == "Sprintf" && len(x.Args) > 0 {
			if tv, ok := pkg.Info.Types[ast.Unparen(x.Args[0])]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				return metricSite{family: metricFamily(constant.StringVal(tv.Value)), known: true}
			}
		}
	}
	return metricSite{}
}

// metricFamily truncates a name at its label block or first format verb
// and trims a trailing separator left by the cut.
func metricFamily(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if i := strings.IndexByte(name, '%'); i >= 0 {
		name = name[:i]
	}
	return strings.TrimRight(name, "_")
}

// pkgFuncCallOf is pkgFuncCall without a Pass, for program-scope use.
func pkgFuncCallOf(pkg *Package, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pkgObjectOf(pkg, base).(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

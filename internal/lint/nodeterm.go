package lint

import (
	"go/ast"
)

// NoDeterm flags nondeterminism sources — wall-clock reads and the
// process-global math/rand generator — inside packages whose output must
// replay bit-for-bit for a fixed seed: corpus synthesis (synth), index
// construction (index), and the block-postings codec (postings). Tables
// 1–5 of the paper reproduction and the golden snapshot tests depend on
// Generate(seed), index building, and block encoding being pure functions
// of their inputs.
//
// Seeded generator construction (rand.New, rand.NewSource, rand.NewZipf,
// rand.NewPCG, rand.NewChaCha8) is the sanctioned pattern and stays
// silent; methods on a threaded *rand.Rand are likewise fine. Test files
// are checked too — a fixture that depends on the wall clock flakes.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "time.Now or global math/rand inside a deterministic package (synth, index, postings)",
	Run:  runNoDeterm,
}

var nodetermPkgs = map[string]bool{"synth": true, "index": true, "postings": true}

// wallClockFuncs are the time-package reads that break replayability.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededCtors are the math/rand entry points that construct an explicit,
// seedable generator rather than consuming the global source.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoDeterm(pass *Pass) {
	if !nodetermPkgs[pass.Pkg.Segment()] {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFuncCall(pass, call)
			if !ok {
				return true
			}
			switch {
			case pkg == "time" && wallClockFuncs[name]:
				pass.Reportf(call.Pos(), SeverityError,
					"wall-clock read time.%s in deterministic package %q: output must replay bit-for-bit for a fixed seed — inject timestamps from the caller or drop them", name, pass.Pkg.Segment())
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !seededCtors[name]:
				pass.Reportf(call.Pos(), SeverityError,
					"global rand.%s consumes the process-wide source in deterministic package %q: thread a seeded *rand.Rand (rand.New(rand.NewSource(cfg.Seed))) instead", name, pass.Pkg.Segment())
			}
			return true
		})
	}
}

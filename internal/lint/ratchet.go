package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The ratchet file pins per-analyzer finding counts so the suite can only
// get cleaner: a run whose count for any analyzer exceeds the committed
// baseline fails, while runs at or below it pass. The repository's
// baseline is all zeros — every analyzer clean — and `-ratchet-write`
// re-records the counts after a deliberate change.

// Ratchet is the on-disk baseline (.tixlint-ratchet.json).
type Ratchet struct {
	Counts map[string]int `json:"findings_per_analyzer"`
}

// CountByAnalyzer tallies diagnostics per analyzer, with every
// registered analyzer (and the directive meta-analyzer) present even at
// zero so the ratchet file is a complete inventory.
func CountByAnalyzer(diags []Diagnostic) map[string]int {
	counts := map[string]int{metaAnalyzer: 0}
	for _, a := range Analyzers() {
		counts[a.Name] = 0
	}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	return counts
}

// ReadRatchet loads a baseline file.
func ReadRatchet(path string) (*Ratchet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading ratchet: %w", err)
	}
	var r Ratchet
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lint: parsing ratchet %s: %w", path, err)
	}
	if r.Counts == nil {
		r.Counts = map[string]int{}
	}
	return &r, nil
}

// WriteRatchet records counts as the new baseline. encoding/json sorts
// map keys, so the file is byte-stable for a given count set.
func WriteRatchet(path string, counts map[string]int) error {
	data, err := json.MarshalIndent(Ratchet{Counts: counts}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckRatchet compares a run against the baseline and returns one
// message per regressed analyzer (count above baseline), sorted by
// analyzer name. An analyzer absent from the baseline has baseline zero.
func CheckRatchet(base *Ratchet, counts map[string]int) []string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		if n, b := counts[name], base.Counts[name]; n > b {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d findings, ratchet allows %d — fix the new findings or consciously re-baseline with -ratchet-write", name, n, b))
		}
	}
	return regressions
}

package lint

import (
	"go/ast"
)

// SleepHygiene flags bare time.Sleep calls in the serving tier's library
// packages. A bare sleep in a retry or wait path ignores cancellation: it
// holds the request's goroutine — and, behind admission control, its
// concurrency slot — hostage after the client has gone away, turning a
// transient stall into queue growth. Library code must wait through a
// context-aware helper (fleet.Sleep, or an explicit timer + select on
// ctx.Done()); jittered retry delays go through fleet.Backoff.Wait.
//
// Test files are exempt — a test pacing itself with time.Sleep holds no
// client's resources. Legitimate library sleeps (deterministic latency
// injection in the fault injector) carry a justified //tixlint:ignore.
var SleepHygiene = &Analyzer{
	Name: "sleephygiene",
	Doc:  "bare time.Sleep in a library retry/wait path (use a ctx-aware wait: fleet.Sleep or timer+select)",
	Run:  runSleepHygiene,
}

// sleepPkgs are the request-path packages where an uncancellable wait
// blocks a live client: the serving tier, the engines behind it, and the
// storage layer they read.
var sleepPkgs = map[string]bool{
	"fleet": true, "server": true, "db": true,
	"shard": true, "exec": true, "storage": true,
}

func runSleepHygiene(pass *Pass) {
	if !sleepPkgs[pass.Pkg.Segment()] {
		return
	}
	for _, file := range pass.Pkg.Files {
		if isTestFilename(pass.Filename(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFuncCall(pass, call)
			if !ok {
				return true
			}
			if pkg == "time" && name == "Sleep" {
				pass.Reportf(call.Pos(), SeverityError,
					"bare time.Sleep in library package %q ignores cancellation and holds the caller's goroutine (and admission slot) hostage: wait via a ctx-aware helper (fleet.Sleep, or a time.Timer select against ctx.Done())", pass.Pkg.Segment())
			}
			return true
		})
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//tixlint:ignore analyzer1[,analyzer2] reason text
const directivePrefix = "//tixlint:ignore"

// directive is one parsed suppression comment. It targets the source line
// it shares with code, or — when it sits on a line of its own — the next
// line that has code.
type directive struct {
	file      string
	target    int // line the directive suppresses
	pos       token.Pos
	names     []string
	analyzers map[string]bool
	reason    string
	malformed string // non-empty: reported instead of applied
	used      bool
}

// collectDirectives parses every tixlint:ignore comment in the program.
// known is the set of valid analyzer names; a directive naming anything
// else is malformed and suppresses nothing.
func collectDirectives(prog *Program, known map[string]bool) []*directive {
	var dirs []*directive
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			codeLines := fileCodeLines(prog.Fset, file)
			for _, group := range file.Comments {
				for _, c := range group.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					d := parseDirective(c, known)
					d.file = prog.Fset.Position(c.Pos()).Filename
					line := prog.Fset.Position(c.Pos()).Line
					d.target = targetLine(codeLines, line)
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs
}

// parseDirective validates one comment's analyzer list and reason.
func parseDirective(c *ast.Comment, known map[string]bool) *directive {
	d := &directive{pos: c.Pos(), analyzers: map[string]bool{}}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		d.malformed = fmt.Sprintf("malformed suppression %q: want %q", c.Text, directivePrefix+" <analyzer> <reason>")
		return d
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.malformed = "suppression names no analyzer: want //tixlint:ignore <analyzer> <reason>"
		return d
	}
	d.names = strings.Split(fields[0], ",")
	for _, name := range d.names {
		if !known[name] {
			d.malformed = fmt.Sprintf("suppression names unknown analyzer %q", name)
			return d
		}
		d.analyzers[name] = true
	}
	d.reason = strings.Join(fields[1:], " ")
	if d.reason == "" {
		d.malformed = fmt.Sprintf("suppression for %s is missing its mandatory reason", fields[0])
	}
	return d
}

// fileCodeLines returns the sorted set of lines on which code (any AST
// node) begins, used to decide which line a standalone directive targets.
func fileCodeLines(fset *token.FileSet, file *ast.File) []int {
	seen := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		if n.Pos().IsValid() {
			seen[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	lines := make([]int, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	return lines
}

// targetLine maps a directive's own line to the line it suppresses: the
// same line when it trails code, otherwise the next code line below it.
func targetLine(codeLines []int, line int) int {
	i := sort.SearchInts(codeLines, line)
	if i < len(codeLines) && codeLines[i] == line {
		return line
	}
	if i < len(codeLines) {
		return codeLines[i]
	}
	return line
}

// suppress reports whether d is covered by a directive, marking any
// matching directive used.
func suppress(dirs []*directive, d Diagnostic) bool {
	hit := false
	for _, dir := range dirs {
		if dir.malformed != "" {
			continue
		}
		if dir.file == d.Pos.Filename && dir.target == d.Pos.Line && dir.analyzers[d.Analyzer] {
			dir.used = true
			hit = true
		}
	}
	return hit
}

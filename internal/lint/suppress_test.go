package lint

import (
	"go/ast"
	"reflect"
	"strings"
	"testing"
)

// TestParseDirective pins the directive grammar edge cases at the unit
// level: multi-analyzer lists, unknown names in any list position, the
// mandatory reason, and prefix strictness.
func TestParseDirective(t *testing.T) {
	known := map[string]bool{"errwrap": true, "mapiter": true, "lockorder": true}
	cases := []struct {
		name      string
		text      string
		wantNames []string
		wantWhy   string
		malformed string // substring of the malformed message, "" = well-formed
	}{
		{
			name:      "single analyzer",
			text:      "//tixlint:ignore errwrap sentinel never travels wrapped",
			wantNames: []string{"errwrap"},
			wantWhy:   "sentinel never travels wrapped",
		},
		{
			name:      "multi analyzer list",
			text:      "//tixlint:ignore errwrap,mapiter one reason covers both analyzers",
			wantNames: []string{"errwrap", "mapiter"},
			wantWhy:   "one reason covers both analyzers",
		},
		{
			name:      "three-name list",
			text:      "//tixlint:ignore errwrap,mapiter,lockorder shared justification",
			wantNames: []string{"errwrap", "mapiter", "lockorder"},
			wantWhy:   "shared justification",
		},
		{
			name:      "unknown analyzer alone",
			text:      "//tixlint:ignore nosuch reason text",
			malformed: `unknown analyzer "nosuch"`,
		},
		{
			name:      "unknown analyzer mid-list",
			text:      "//tixlint:ignore errwrap,nosuch,mapiter reason text",
			malformed: `unknown analyzer "nosuch"`,
		},
		{
			name:      "unknown analyzer last in list",
			text:      "//tixlint:ignore errwrap,nosuch reason text",
			malformed: `unknown analyzer "nosuch"`,
		},
		{
			name:      "missing reason single",
			text:      "//tixlint:ignore errwrap",
			malformed: "missing its mandatory reason",
		},
		{
			name:      "missing reason multi",
			text:      "//tixlint:ignore errwrap,mapiter",
			malformed: "missing its mandatory reason",
		},
		{
			name:      "no analyzer at all",
			text:      "//tixlint:ignore",
			malformed: "names no analyzer",
		},
		{
			name:      "prefix must be followed by a separator",
			text:      "//tixlint:ignoreerrwrap reason",
			malformed: "malformed suppression",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := parseDirective(&ast.Comment{Text: c.text}, known)
			if c.malformed != "" {
				if d.malformed == "" || !strings.Contains(d.malformed, c.malformed) {
					t.Fatalf("parseDirective(%q).malformed = %q, want substring %q", c.text, d.malformed, c.malformed)
				}
				return
			}
			if d.malformed != "" {
				t.Fatalf("parseDirective(%q) unexpectedly malformed: %s", c.text, d.malformed)
			}
			if !reflect.DeepEqual(d.names, c.wantNames) {
				t.Errorf("names = %v, want %v", d.names, c.wantNames)
			}
			for _, name := range c.wantNames {
				if !d.analyzers[name] {
					t.Errorf("analyzer set is missing %q", name)
				}
			}
			if d.reason != c.wantWhy {
				t.Errorf("reason = %q, want %q", d.reason, c.wantWhy)
			}
		})
	}
}

// TestTargetLine pins the directive targeting rule: a directive sharing
// a line with code suppresses that line; a directive alone on a line
// suppresses the next code line below it; a directive below all code
// targets its own (necessarily finding-free) line.
func TestTargetLine(t *testing.T) {
	codeLines := []int{5, 10, 11}
	cases := []struct {
		line, want int
	}{
		{5, 5},   // trailing directive: same line
		{3, 5},   // standalone: next code line
		{10, 10}, // trailing on a dense run
		{6, 10},  // standalone between code lines
		{12, 12}, // below all code: targets itself
	}
	for _, c := range cases {
		if got := targetLine(codeLines, c.line); got != c.want {
			t.Errorf("targetLine(%v, %d) = %d, want %d", codeLines, c.line, got, c.want)
		}
	}
}

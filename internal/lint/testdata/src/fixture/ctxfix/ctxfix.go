// Package ctxfix exercises ctxhygiene: dropped caller contexts, the
// compat-wrapper allowance, nil-defaulting, and ignored ctx parameters.
package ctxfix

import "context"

// DB stands in for the real context-accepting facade.
type DB struct{}

// QueryContext is the context-accepting core API.
func (d *DB) QueryContext(ctx context.Context, q string) error {
	return ctx.Err()
}

// Query is the sanctioned compat wrapper: Background flows straight into
// the *Context variant.
func (d *DB) Query(q string) error {
	return d.QueryContext(context.Background(), q)
}

// Drops receives a context and mints a fresh one anyway, detaching the
// call tree from the caller's cancellation.
func (d *DB) Drops(ctx context.Context, q string) error { // want "ctxhygiene: context parameter .ctx. is accepted but never used"
	return d.QueryContext(context.Background(), q) // want "ctxhygiene: context.Background.. constructed in a function that already receives"
}

// NilDefault only backfills a nil context, which is allowed.
func (d *DB) NilDefault(ctx context.Context, q string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return d.QueryContext(ctx, q)
}

// Mint returns a root context from library code outside any wrapper.
func Mint() context.Context {
	return context.TODO() // want "ctxhygiene: context.TODO.. in library code outside"
}

// Ignored takes a context it never touches.
func Ignored(ctx context.Context, q string) error { // want "ctxhygiene: context parameter .ctx. is accepted but never used"
	return discard(q)
}

func discard(q string) error { return nil }

// Package db mirrors the mutation tier's lock shapes so lockorder has
// cycles, self-deadlocks, sanctioned orderings, and a justified
// suppression to classify.
package db

import "sync"

// A holds two locks whose acquisition order differs across methods:
// LockAB takes mu before aux, LockBA takes aux before mu. Under
// contention the two paths deadlock; lockorder reports the cycle once,
// anchored at the earliest edge witness.
type A struct {
	mu  sync.Mutex
	aux sync.Mutex
}

func (a *A) LockAB() {
	a.mu.Lock()
	a.aux.Lock() // want "lock-order cycle db.A.aux -> db.A.mu -> db.A.aux"
	a.aux.Unlock()
	a.mu.Unlock()
}

func (a *A) LockBA() {
	a.aux.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	a.aux.Unlock()
}

// R reproduces the classic helper-relock: Outer still holds mu (the
// deferred unlock runs at return) when it calls refresh, which acquires
// the same mutex again.
type R struct {
	mu sync.Mutex
}

func (r *R) Outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refresh() // want "self-deadlock"
}

func (r *R) refresh() {
	r.mu.Lock()
	defer r.mu.Unlock()
}

// N locks parent before child on every path — the sanctioned single
// global order. No finding.
type N struct {
	parent sync.Mutex
	child  sync.Mutex
}

func (n *N) First() {
	n.parent.Lock()
	n.child.Lock()
	n.child.Unlock()
	n.parent.Unlock()
}

func (n *N) Second() {
	n.parent.Lock()
	defer n.parent.Unlock()
	n.child.Lock()
	defer n.child.Unlock()
}

// Either acquires the same lock in both arms of a branch. The flow
// walker scans each arm against a copy of the incoming held set, so the
// arms must not be mistaken for a nested (self-pair) acquisition.
func (n *N) Either(flag bool) {
	if flag {
		n.parent.Lock()
		n.parent.Unlock()
	} else {
		n.parent.Lock()
		n.parent.Unlock()
	}
}

// S's inverted orders are tolerated by an outer protocol; the
// suppression on the witness line records that justification.
type S struct {
	c sync.Mutex
	d sync.Mutex
}

func (s *S) LockCD() {
	s.c.Lock()
	//tixlint:ignore lockorder callers of LockCD and LockDC are serialized by the fixture's outer protocol, so the inverted orders never race
	s.d.Lock()
	s.d.Unlock()
	s.c.Unlock()
}

func (s *S) LockDC() {
	s.d.Lock()
	s.c.Lock()
	s.c.Unlock()
	s.d.Unlock()
}

// Package errwrap exercises both halves of the errwrap analyzer: lossy
// fmt.Errorf verbs and identity comparisons against sentinel errors.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrBudget is a sentinel in the style of exec.ErrLimitExceeded.
var ErrBudget = errors.New("errwrap: budget exhausted")

// WrapV severs the unwrap chain.
func WrapV(err error) error {
	return fmt.Errorf("query failed: %v", err) // want "errwrap: error formatted with %v loses its wrap chain"
}

// WrapS does the same through the string verb.
func WrapS(err error) error {
	return fmt.Errorf("query failed: %s", err) // want "errwrap: error formatted with %s loses its wrap chain"
}

// WrapW preserves classification.
func WrapW(err error) error {
	return fmt.Errorf("query failed: %w", err)
}

// WrapValue formats a non-error with %v, which is fine.
func WrapValue(n int) error {
	return fmt.Errorf("bad count: %v", n)
}

// IsBudget misses every wrapped occurrence.
func IsBudget(err error) bool {
	return err == ErrBudget // want "errwrap: comparison against sentinel error ErrBudget"
}

// NotBudget has the same hole through negation.
func NotBudget(err error) bool {
	return err != ErrBudget // want "errwrap: comparison against sentinel error ErrBudget"
}

// IsNil compares against nil, which is not a sentinel.
func IsNil(err error) bool { return err == nil }

// Classify is the sanctioned form.
func Classify(err error) bool { return errors.Is(err, ErrBudget) }

// Package exec mirrors the real execution package: a Guard type whose
// consultation guardcheck demands around every storage-access loop.
package exec

import (
	"errors"

	"fixture/postings"
	"fixture/storage"
)

var errStop = errors.New("exec: budget exhausted")

// Guard is a minimal cooperative budget checker.
type Guard struct {
	ticks  int64
	budget int64
}

// Tick records one unit of work.
func (g *Guard) Tick() error {
	if g == nil {
		return nil
	}
	g.ticks++
	if g.budget > 0 && g.ticks > g.budget {
		return errStop
	}
	return nil
}

// SumUnguarded fetches records in a loop with no guard anywhere in scope.
func SumUnguarded(acc *storage.Accessor, ords []int32) int32 {
	var total int32
	for _, o := range ords { // want "guardcheck: loop calls storage accessor Accessor.Node without consulting exec.Guard"
		total += acc.Node(o).Parent
	}
	return total
}

// SumHalfGuarded ticks in its first loop but forgets the second.
func SumHalfGuarded(g *Guard, acc *storage.Accessor, ords []int32) (int32, error) {
	var total int32
	for _, o := range ords {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		total += acc.Node(o).Parent
	}
	for _, o := range ords { // want "guardcheck: loop calls storage accessor Accessor.Node without consulting exec.Guard"
		total += acc.Node(o).Parent
	}
	return total, nil
}

// Delegated passes the guard down with every access, which counts as
// consultation.
func Delegated(g *Guard, acc *storage.Accessor, ords []int32) int32 {
	var total int32
	for _, o := range ords {
		total += fetch(g, acc, o)
	}
	return total
}

func fetch(g *Guard, acc *storage.Accessor, o int32) int32 {
	if g.Tick() != nil {
		return 0
	}
	return acc.Node(o).Parent
}

// ScanUnguarded drains a postings cursor with no guard anywhere in scope:
// each Cur/Advance may decode a compressed block.
func ScanUnguarded(l postings.List) uint32 {
	var total uint32
	for cur := postings.NewCursor(l); cur.Valid(); cur.Advance() { // want "guardcheck: loop calls storage accessor Cursor.Cur without consulting exec.Guard"
		total += cur.Cur().Pos
	}
	return total
}

// ScanGuarded ticks per cursor step — the sanctioned pattern.
func ScanGuarded(g *Guard, l postings.List) (uint32, error) {
	var total uint32
	for cur := postings.NewCursor(l); cur.Valid(); cur.Advance() {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		total += cur.Cur().Pos
	}
	return total, nil
}

// DecodeUnguarded materializes whole lists inside a loop without a guard.
func DecodeUnguarded(lists []postings.List) int {
	total := 0
	for _, l := range lists { // want "guardcheck: loop calls storage accessor List.Materialize without consulting exec.Guard"
		total += len(l.Materialize())
	}
	return total
}

// EachUnguarded streams merged views inside a loop without a guard: Each
// walks the whole view, decoding blocks as it goes.
func EachUnguarded(lists []postings.List) uint32 {
	var total uint32
	for _, l := range lists { // want "guardcheck: loop calls storage accessor List.Each without consulting exec.Guard"
		l.Each(func(p postings.Posting) bool {
			total += p.Pos
			return true
		})
	}
	return total
}

// EachGuarded ticks once per streamed posting inside the callback, which
// counts as consultation for the enclosing loop.
func EachGuarded(g *Guard, lists []postings.List) uint32 {
	var total uint32
	for _, l := range lists {
		l.Each(func(p postings.Posting) bool {
			if g.Tick() != nil {
				return false
			}
			total += p.Pos
			return true
		})
	}
	return total
}

// GallopUnguarded mirrors the galloping phrase intersection: a driver
// cursor scanned occurrence by occurrence, verifier cursors skipped
// forward with SeekPos. The verifier seeks may each decode a block (or
// rank into a bitmap), so the loop is charged and must tick.
func GallopUnguarded(driver, verifier *postings.Cursor) uint32 {
	var hits uint32
	for ; driver.Valid(); driver.Advance() { // want "guardcheck: loop calls storage accessor Cursor.Cur without consulting exec.Guard"
		want := driver.Cur().Pos + 1
		verifier.SeekPos(want)
		if verifier.Valid() && verifier.Cur().Pos == want {
			hits++
		}
	}
	return hits
}

// GallopGuarded ticks once per driver occurrence — the sanctioned
// pattern: each tick bounds one driver step plus its verifier seeks.
func GallopGuarded(g *Guard, driver, verifier *postings.Cursor) (uint32, error) {
	var hits uint32
	for ; driver.Valid(); driver.Advance() {
		if err := g.Tick(); err != nil {
			return 0, err
		}
		want := driver.Cur().Pos + 1
		verifier.SeekPos(want)
		if verifier.Valid() && verifier.Cur().Pos == want {
			hits++
		}
	}
	return hits, nil
}

// LenLoop only reads uncharged metadata; no guard is required.
func LenLoop(lists []postings.List) int {
	total := 0
	for _, l := range lists {
		total += l.Len()
	}
	return total
}

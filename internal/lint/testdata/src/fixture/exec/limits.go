package exec

import "time"

// Limits mirrors the real execution budget struct that rescache bakes
// into its cache keys; cachekey requires every exported field here to be
// consumed by the fixture key encoder.
type Limits struct {
	Timeout    time.Duration
	MaxResults int64
}

// Package fleet mirrors the serving tier's retry/wait paths so
// sleephygiene has both offending and sanctioned shapes to classify.
package fleet

import (
	"context"
	"errors"
	"time"
)

var errUnavailable = errors.New("fleet: replica unavailable")

// Sleep is the sanctioned ctx-aware wait: a timer raced against
// cancellation. Nothing here calls time.Sleep, so the analyzer is quiet.
func Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RetryBare backs off between attempts with a bare sleep: the wait cannot
// be cancelled, so a departed client still holds its goroutine.
func RetryBare(attempts int, try func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = try(); err == nil {
			return nil
		}
		time.Sleep(time.Duration(i+1) * time.Millisecond) // want "sleephygiene: bare time.Sleep in library package"
	}
	return err
}

// HedgeBare pauses before duplicating a request — again uncancellable.
func HedgeBare(delay time.Duration, primary, hedge func() error) error {
	if err := primary(); err == nil {
		return nil
	}
	time.Sleep(delay) // want "sleephygiene: bare time.Sleep in library package"
	return hedge()
}

// RetryCtx is the sanctioned retry loop: every wait goes through the
// ctx-aware helper and aborts the moment the caller gives up.
func RetryCtx(ctx context.Context, attempts int, try func() error) error {
	err := errUnavailable
	for i := 0; i < attempts; i++ {
		if err = try(); err == nil {
			return nil
		}
		if werr := Sleep(ctx, time.Duration(i+1)*time.Millisecond); werr != nil {
			return werr
		}
	}
	return err
}

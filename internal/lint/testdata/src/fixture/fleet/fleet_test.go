package fleet

import (
	"testing"
	"time"
)

// TestPacing sleeps to pace itself — test files hold no client's
// resources, so sleephygiene must stay quiet here.
func TestPacing(t *testing.T) {
	time.Sleep(time.Microsecond)
	if err := RetryBare(1, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

package fleet

import "context"

// SpawnLeaky launches a worker that observes no context, no channel, and
// no WaitGroup: nothing can ever stop it.
func SpawnLeaky() {
	go func() { // want "no visible shutdown path"
		for i := 0; ; i++ {
			step(i)
		}
	}()
}

func step(int) {}

// SpawnStop's worker drains a stop channel — bounded.
func SpawnStop(stop <-chan struct{}) {
	go func() {
		<-stop
	}()
}

// SpawnCtx hands its context to a callee that honors it; the shutdown
// signal is visible transitively through the static call graph.
func SpawnCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

// SpawnPump is deliberately process-lifetime; the directive records who
// guarantees termination.
func SpawnPump() {
	//tixlint:ignore goroleak process-lifetime telemetry pump by design: the fixture harness owns it and exits with the process
	go func() {
		for i := 0; ; i++ {
			step(i)
		}
	}()
}

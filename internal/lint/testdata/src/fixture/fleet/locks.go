package fleet

import "sync"

// Fleet mirrors the real serving tier's lock fields: ingestMu is the
// fleet-wide mutation lock that the lockorder analyzer pins as
// outermost.
type Fleet struct {
	ingestMu sync.Mutex
	routeMu  sync.Mutex
	statsMu  sync.Mutex
}

// BadNesting acquires the ingest mutex while holding the routing lock —
// the inversion the outermost-lock rule exists to catch.
func (f *Fleet) BadNesting() {
	f.routeMu.Lock()
	defer f.routeMu.Unlock()
	f.ingestMu.Lock() // want "fleet.Fleet.ingestMu acquired while fleet.Fleet.routeMu is held"
	f.ingestMu.Unlock()
}

// GoodNesting holds ingestMu outermost, as the discipline requires; the
// stats lock nests under it without complaint.
func (f *Fleet) GoodNesting() {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	f.statsMu.Lock()
	f.statsMu.Unlock()
}

package index

import "sync/atomic"

// Stats mixes function-style atomics with plain access: hits is
// incremented atomically but read plainly, which races; miss is atomic
// on every path and stays quiet.
type Stats struct {
	hits int64
	miss int64
}

func (s *Stats) IncHits() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stats) ReadHits() int64 {
	return s.hits // want "field index.hits is accessed via sync/atomic at .* but plainly here"
}

func (s *Stats) IncMiss() {
	atomic.AddInt64(&s.miss, 1)
}

func (s *Stats) ReadMiss() int64 {
	return atomic.LoadInt64(&s.miss)
}

// boot's plain write happens before the value escapes its constructor —
// the sanctioned pre-publication exception, recorded by the directive.
type boot struct {
	ready int32
}

func newBoot() *boot {
	b := new(boot)
	//tixlint:ignore atomichygiene pre-publication write: b has not escaped newBoot yet, so no other goroutine can observe it
	b.ready = 1
	return b
}

func (b *boot) markReady() {
	atomic.StoreInt32(&b.ready, 1)
}

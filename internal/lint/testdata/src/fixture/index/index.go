// Package index mirrors the real index builder's shape; its path segment
// puts it in nodeterm's deterministic set.
package index

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock, which breaks bit-for-bit replay.
func Stamp() int64 {
	return time.Now().UnixNano() // want "nodeterm: wall-clock read time.Now"
}

// Elapsed is equally wall-clock dependent.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "nodeterm: wall-clock read time.Since"
}

// Jitter consumes the process-global math/rand source.
func Jitter() int {
	return rand.Intn(10) // want "nodeterm: global rand.Intn consumes the process-wide source"
}

// Seeded constructs an explicit generator — the sanctioned pattern.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Package metrics mirrors the real registry's get-or-create API so
// metricreg's receiver-type matching works against the fixture module.
package metrics

// Counter is a monotonically increasing series.
type Counter struct{}

func (c *Counter) Inc()      {}
func (c *Counter) Add(int64) {}

// Gauge is a point-in-time series.
type Gauge struct{}

func (g *Gauge) Set(int64) {}

// Histogram records a distribution.
type Histogram struct{}

func (h *Histogram) Observe(float64) {}

// Registry hands out named series, creating them on first use.
type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

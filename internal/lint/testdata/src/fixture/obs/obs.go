// Package obs exercises metricreg's name-shape rules: static literals,
// constant-prefix concatenation, Sprintf families, a malformed name, a
// fully dynamic name, and a justified suppression.
package obs

import (
	"fmt"

	"fixture/metrics"
)

// Register records every sanctioned and offending name shape.
func Register(reg *metrics.Registry, shard int) {
	reg.Counter("tix_obs_requests_total").Inc()
	reg.Histogram("tix_obs_seconds" + shardLabel(shard)).Observe(0)
	reg.Gauge(fmt.Sprintf(`tix_obs_depth{shard="%d"}`, shard)).Set(0)
	reg.Counter("Tix-Obs-Bad").Inc()     // want "metric family .Tix-Obs-Bad. does not match tix_"
	reg.Counter(shardLabel(shard)).Inc() // want "metric name is computed at runtime"
	//tixlint:ignore metricreg legacy dashboard series kept under its historical name for graph continuity
	reg.Counter("legacy_obs_total").Inc()
}

func shardLabel(shard int) string {
	return fmt.Sprintf(`{shard="%d"}`, shard)
}

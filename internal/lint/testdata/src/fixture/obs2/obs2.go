// Package obs2 re-registers a series that fixture/obs already owns:
// metricreg's cross-package ownership rule flags the second registration
// and names the first.
package obs2

import "fixture/metrics"

// Register duplicates obs's request counter from a second package.
func Register(reg *metrics.Registry) {
	reg.Counter("tix_obs_requests_total").Inc() // want "already registered by package fixture/obs"
}

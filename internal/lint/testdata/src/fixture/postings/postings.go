// Package postings mirrors the real block-compressed postings package's
// accessor shape so guardcheck's receiver-type matching works against the
// fixture module: Cursor methods step through (and lazily decode) blocks,
// List methods decode whole lists.
package postings

// Posting is a minimal posting record.
type Posting struct {
	Doc int32
	Pos uint32
}

// List is a decoded-on-demand postings view.
type List struct {
	ps []Posting
}

// NewList wraps ps.
func NewList(ps []Posting) List { return List{ps: ps} }

// Len reports the posting count without decoding; uncharged.
func (l List) Len() int { return len(l.ps) }

// Materialize decodes the whole list; charged.
func (l List) Materialize() []Posting { return l.ps }

// Each streams every posting through fn, stopping when fn returns false;
// charged — it walks (and decodes) the whole view.
func (l List) Each(fn func(Posting) bool) {
	for _, p := range l.ps {
		if !fn(p) {
			return
		}
	}
}

// DocCounts decodes per-document frequencies; charged.
func (l List) DocCounts() map[int32]int {
	m := make(map[int32]int)
	for _, p := range l.ps {
		m[p.Doc]++
	}
	return m
}

// Cursor steps through a list, decoding blocks lazily.
type Cursor struct {
	l List
	i int
}

// NewCursor returns a cursor positioned at the first posting.
func NewCursor(l List) *Cursor { return &Cursor{l: l} }

// Valid reports whether the cursor is positioned on a posting; uncharged.
func (c *Cursor) Valid() bool { return c.i < len(c.l.ps) }

// Cur returns the current posting; charged (it may decode a block).
func (c *Cursor) Cur() Posting { return c.l.ps[c.i] }

// Advance steps to the next posting; charged.
func (c *Cursor) Advance() { c.i++ }

// SeekPos skips forward to the first posting at or past pos; charged.
func (c *Cursor) SeekPos(pos uint32) {
	for c.i < len(c.l.ps) && c.l.ps[c.i].Pos < pos {
		c.i++
	}
}

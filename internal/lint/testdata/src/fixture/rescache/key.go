// Package rescache mirrors the result cache's key surface: option
// structs baked into cache keys whose every exported field the key
// encoder must consume. The Extra field below is the acceptance-
// criterion proof — a field added to TermOpts without extending the
// encoder is flagged at its declaration.
package rescache

import (
	"fmt"

	"fixture/exec"
)

// Key is the cache key type; returning it from an exported function is
// what marks that function's struct parameters as key inputs.
type Key string

// TermOpts feeds TermKey. Complex, TopK, and Limits are consumed by the
// encoder; Extra is not — the exact hole that makes two different
// requests collide on one cache entry.
type TermOpts struct {
	Complex bool
	TopK    int
	Extra   string // want "exported field TermOpts.Extra is baked into cache keys but never consumed"
	Limits  exec.Limits

	// Debug is observational only and deliberately excluded from keying.
	//tixlint:ignore cachekey debug output does not change query results, so keying on it would only fragment the cache
	Debug bool

	legacy bool // unexported: not part of the public key contract
}

// TermKey encodes every key-relevant field of o.
func TermKey(term string, o TermOpts) Key {
	tag := ""
	if o.legacy {
		tag = "L"
	}
	return Key(fmt.Sprintf("t|%s|%v|%d|%s|%s", term, o.Complex, o.TopK, encodeLimits(o.Limits), tag))
}

func encodeLimits(l exec.Limits) string {
	return fmt.Sprintf("%d|%d", l.Timeout, l.MaxResults)
}

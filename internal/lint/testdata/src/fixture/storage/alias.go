package storage

// Table mirrors the PR 6 Store.Docs() bug surface: accessors that hand
// out the owner's backing slices and maps without copying.
type Table struct {
	rows  []int32
	byTag map[int32][]int32
}

// Rows aliases the internal slice directly.
func (t *Table) Rows() []int32 {
	return t.rows // want "exported Rows returns internal t.rows without copying"
}

// RowsPrefix reslices, which still shares the backing array.
func (t *Table) RowsPrefix(n int) []int32 {
	return t.rows[:n] // want "exported RowsPrefix returns internal t.rows without copying"
}

// ByTag indexes into an internal map of slices; the element aliases too.
func (t *Table) ByTag(tag int32) []int32 {
	return t.byTag[tag] // want "exported ByTag returns internal t.byTag without copying"
}

// RowsCopy returns a fresh slice — the sanctioned shape.
func (t *Table) RowsCopy() []int32 {
	out := make([]int32, len(t.rows))
	copy(out, t.rows)
	return out
}

// tagIndex is package-level state; handing out its buckets aliases just
// as badly as a receiver field.
var tagIndex = map[int32][]int32{}

func TagsFor(tag int32) []int32 {
	return tagIndex[tag] // want "exported TagsFor returns internal tagIndex without copying"
}

// RowsView is a documented zero-copy accessor; the directive names the
// contract that makes the aliasing safe.
func (t *Table) RowsView() []int32 {
	//tixlint:ignore aliasret documented read-only view: Table rows are immutable after construction and callers must not modify the slice
	return t.rows
}

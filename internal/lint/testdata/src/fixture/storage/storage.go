// Package storage mirrors the real store's accessor shape so guardcheck's
// receiver-type matching works against the fixture module.
package storage

// NodeRec is a minimal node record.
type NodeRec struct {
	Parent int32
	Text   string
}

// Store holds node records.
type Store struct {
	nodes []NodeRec
}

// Accessor is the charged access path; any method on it counts as a
// storage access for guardcheck.
type Accessor struct {
	store *Store
}

// NewAccessor returns an accessor over s.
func NewAccessor(s *Store) *Accessor { return &Accessor{store: s} }

// Node fetches one record.
func (a *Accessor) Node(ord int32) *NodeRec { return &a.store.nodes[ord] }

// Text fetches one record's text.
func (a *Accessor) Text(ord int32) string { return a.store.nodes[ord].Text }

// Package suppress exercises the //tixlint:ignore directive machinery:
// well-formed standalone and trailing suppressions, a missing reason, an
// unknown analyzer name, and a stale directive that matches nothing. Its
// expectations live in TestSuppressionDirectives rather than want
// comments, since the directives occupy the comment position.
package suppress

import (
	"errors"
	"fmt"
)

// ErrGone is a sentinel for the identity-comparison case.
var ErrGone = errors.New("suppress: gone")

// Flatten intentionally hides the cause; the directive above the call
// carries the justification.
func Flatten(err error) error {
	//tixlint:ignore errwrap the public API intentionally flattens causes; classification happens a layer up
	return fmt.Errorf("gone: %v", err)
}

// Identity uses a trailing directive on the offending line itself.
func Identity(err error) bool {
	return err == ErrGone //tixlint:ignore errwrap identity check is deliberate: this sentinel never travels wrapped
}

// MissingReason's directive is malformed (no reason), so it suppresses
// nothing: both the errwrap finding and the tixlint error surface.
func MissingReason(err error) error {
	//tixlint:ignore errwrap
	return fmt.Errorf("gone: %v", err)
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer(err error) error {
	//tixlint:ignore nosuchlint a typo'd analyzer must not silently suppress
	return fmt.Errorf("gone: %v", err)
}

// Stale suppresses a line that has no finding at all.
func Stale() int {
	//tixlint:ignore mapiter nothing ranges over a map here
	return 1
}

// Multi names two analyzers on one directive; the errwrap match marks
// the directive used even though sleephygiene never fires on this line.
func Multi(err error) error {
	//tixlint:ignore errwrap,sleephygiene the facade flattens deliberately; the second name documents a paired wait shim
	return fmt.Errorf("multi: %v", err)
}

// MultiUnknown hides a typo inside a multi-name list: the whole
// directive is malformed and suppresses nothing, so both the tixlint
// error and the unsuppressed errwrap finding surface.
func MultiUnknown(err error) error {
	//tixlint:ignore errwrap,nosuchlint a typo in any position must not silently suppress
	return fmt.Errorf("multi: %v", err)
}

// Package synth mirrors the real corpus generator's shape; its path
// segment puts it in mapiter's determinism-critical set. PlantBad is the
// PR-3 nondeterminism bug, re-created so the analyzer provably catches it.
package synth

import (
	"math/rand"
	"sort"
)

// PlantBad plants control terms in map-iteration order, consuming the
// seeded RNG run-dependently — the exact bug PR 3's golden test caught by
// luck.
func PlantBad(rng *rand.Rand, control map[string]int, slots []string) {
	for term, freq := range control { // want "mapiter: range over map in determinism-critical package"
		for i := 0; i < freq; i++ {
			slots[rng.Intn(len(slots))] = term
		}
	}
}

// PlantSorted is the fixed shape: collect, sort, then consume the RNG in
// a stable order. The collect loop is allowed without a directive.
func PlantSorted(rng *rand.Rand, control map[string]int, slots []string) {
	terms := make([]string, 0, len(control))
	for term := range control {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for _, term := range terms {
		for i := 0; i < control[term]; i++ {
			slots[rng.Intn(len(slots))] = term
		}
	}
}

// Total is order-insensitive integer accumulation, allowed as-is.
func Total(control map[string]int) int {
	n := 0
	for _, freq := range control {
		n += freq
	}
	return n
}

// Labels collects keys but never sorts them, so the emission order of the
// returned slice varies per run.
func Labels(control map[string]int) []string {
	var out []string
	for term := range control { // want "mapiter: range over map in determinism-critical package"
		out = append(out, term)
	}
	return out
}

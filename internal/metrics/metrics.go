// Package metrics is a lock-cheap metrics registry for the TIX runtime:
// atomic counters, gauges, and fixed-bucket log-scale latency histograms,
// with a Prometheus-compatible text exposition format.
//
// The hot path (Inc/Add/Set/Observe) is a single atomic operation once the
// instrument exists; instrument lookup takes a read lock only. Instruments
// are identified by name, optionally with baked-in labels in the
// conventional brace syntax:
//
//	reg.Counter(`tix_queries_total{op="query"}`).Inc()
//	reg.Histogram(`tix_query_seconds{op="terms"}`).Observe(0.0041)
//
// Instruments sharing a family name (the part before '{') are grouped
// under one # TYPE line in the exposition.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry used when no explicit registry is
// configured. internal/db and internal/server record here by default, so a
// plain `tixserve` exposes query metrics with zero wiring.
var Default = NewRegistry()

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistogramBuckets is the fixed log-scale bucket layout shared by every
// histogram: upper bounds doubling from 1µs to ~8.4s (24 buckets), plus an
// implicit +Inf bucket. Latencies are recorded in seconds.
var HistogramBuckets = func() []float64 {
	b := make([]float64, 24)
	ub := 1e-6
	for i := range b {
		b[i] = ub
		ub *= 2
	}
	return b
}()

// Histogram is a fixed-bucket log-scale histogram of float64 observations
// (by convention, seconds). All updates are atomic; Observe is wait-free.
type Histogram struct {
	counts  []atomic.Int64 // one per bucket in HistogramBuckets, +Inf last
	sumBits atomic.Uint64  // float64 bits of the running sum
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(HistogramBuckets)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(HistogramBuckets, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// of the recorded observations: the upper edge of the first bucket whose
// cumulative count covers q of the total. It returns 0 when the histogram
// is empty, and the top finite bucket bound when the quantile falls in the
// +Inf bucket. The bucket counts are read without a snapshot, so the
// estimate may lag concurrent Observe calls by a few observations — fine
// for its consumer, adaptive latency policies (hedge delays).
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 || q > 1 {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i, ub := range HistogramBuckets {
		cum += h.counts[i].Load()
		if cum >= need {
			return ub
		}
	}
	return HistogramBuckets[len(HistogramBuckets)-1]
}

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// family returns the metric family name: the instrument name up to the
// label block, if any.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labeled splits an instrument name into family and label block ("" when
// unlabeled, otherwise `key="v",...` without braces).
func labeled(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WriteText writes every instrument in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # TYPE line per
// family, instruments of a family sorted by label block. Histograms expand
// into cumulative _bucket series plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	type inst struct {
		name string
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	fams := map[string][]inst{}
	for n, c := range r.counters {
		fams[family(n)] = append(fams[family(n)], inst{name: n, c: c})
	}
	for n, g := range r.gauges {
		fams[family(n)] = append(fams[family(n)], inst{name: n, g: g})
	}
	for n, h := range r.histograms {
		fams[family(n)] = append(fams[family(n)], inst{name: n, h: h})
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(fams))
	for f := range fams {
		names = append(names, f)
	}
	sort.Strings(names)

	for _, f := range names {
		insts := fams[f]
		sort.Slice(insts, func(i, j int) bool { return insts[i].name < insts[j].name })
		typ := "counter"
		switch {
		case insts[0].g != nil:
			typ = "gauge"
		case insts[0].h != nil:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, typ); err != nil {
			return err
		}
		for _, in := range insts {
			var err error
			switch {
			case in.c != nil:
				_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.c.Value())
			case in.g != nil:
				_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.g.Value())
			case in.h != nil:
				err = writeHistogram(w, in.name, in.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	fam, labels := labeled(name)
	series := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le=%q}`, fam, le)
		}
		return fmt.Sprintf(`%s_bucket{%s,le=%q}`, fam, labels, le)
	}
	cum := int64(0)
	for i, ub := range HistogramBuckets {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", series(fmt.Sprintf("%g", ub)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(HistogramBuckets)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", series("+Inf"), cum); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", fam, suffix, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, cum)
	return err
}

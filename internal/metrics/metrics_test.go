package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Error("Counter is not idempotent per name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds")
	h.Observe(1e-6) // exactly the first bound → first bucket (le semantics)
	h.Observe(3e-6) // between 2µs and 4µs
	h.Observe(1e9)  // beyond the last bound → +Inf
	h.Observe(5e-7) // below the first bound
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got, want := h.Sum(), 1e-6+3e-6+1e9+5e-7; math.Abs(got-want) > 1e-9*want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if got := h.counts[0].Load(); got != 2 { // 5e-7 and 1e-6 both land in le=1e-06
		t.Errorf("first bucket = %d, want 2", got)
	}
	if got := h.counts[len(HistogramBuckets)].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	// 90 fast observations in the le=0.001024 bucket, 10 slow ones in the
	// le=0.016384 bucket: the p50 reports the fast bound, the p99 the slow.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.010)
	}
	if got := h.Quantile(0.50); got != 0.001024 {
		t.Errorf("p50 = %g, want 0.001024", got)
	}
	if got := h.Quantile(0.99); got != 0.016384 {
		t.Errorf("p99 = %g, want 0.016384", got)
	}
	// Out-of-range q and +Inf-bucket observations degrade safely.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 quantile = %g, want 0", got)
	}
	if got := h.Quantile(1.5); got != 0 {
		t.Errorf("q>1 quantile = %g, want 0", got)
	}
	h.Observe(1e9)
	top := HistogramBuckets[len(HistogramBuckets)-1]
	if got := h.Quantile(1); got != top {
		t.Errorf("+Inf quantile = %g, want top bound %g", got, top)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Histogram("h_seconds").Observe(0.001)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %d, want 8000", got)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter(`q_total{op="query"}`).Add(3)
	r.Counter(`q_total{op="terms"}`).Add(1)
	r.Gauge("in_flight").Set(2)
	r.Histogram(`lat_seconds{op="query"}`).Observe(0.01)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE q_total counter\n",
		"q_total{op=\"query\"} 3\n",
		"q_total{op=\"terms\"} 1\n",
		"# TYPE in_flight gauge\n",
		"in_flight 2\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{op="query",le="+Inf"} 1` + "\n",
		`lat_seconds_count{op="query"} 1` + "\n",
		`lat_seconds_sum{op="query"} 0.01` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families must appear sorted, with labeled instruments grouped under
	// one TYPE line.
	if strings.Count(out, "# TYPE q_total") != 1 {
		t.Errorf("q_total family emitted more than one TYPE line\n%s", out)
	}
	if strings.Index(out, "# TYPE in_flight") > strings.Index(out, "# TYPE lat_seconds") {
		t.Errorf("families not sorted\n%s", out)
	}
	// Cumulative bucket counts: every bucket at or above 0.01 holds the
	// observation.
	if !strings.Contains(out, `lat_seconds_bucket{op="query",le="0.016384"} 1`) {
		t.Errorf("cumulative bucket missing\n%s", out)
	}
}

func TestHistogramBucketsShape(t *testing.T) {
	if len(HistogramBuckets) != 24 {
		t.Fatalf("bucket count = %d, want 24", len(HistogramBuckets))
	}
	if HistogramBuckets[0] != 1e-6 {
		t.Errorf("first bound = %g, want 1e-6", HistogramBuckets[0])
	}
	for i := 1; i < len(HistogramBuckets); i++ {
		if HistogramBuckets[i] != HistogramBuckets[i-1]*2 {
			t.Errorf("bounds not doubling at %d: %g vs %g", i, HistogramBuckets[i], HistogramBuckets[i-1])
		}
	}
}

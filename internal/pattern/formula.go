package pattern

import (
	"fmt"
	"strings"

	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Formula is the boolean formula F of a scored pattern tree: a boolean
// combination of predicates applicable to nodes (Definition 2).
type Formula interface {
	// Eval evaluates the formula under a complete binding.
	Eval(b Binding) bool
	// String renders the formula for diagnostics.
	String() string
}

// True is the vacuously-true formula.
type True struct{}

// Eval always returns true.
func (True) Eval(Binding) bool { return true }

// String returns "true".
func (True) String() string { return "true" }

// And is conjunction.
type And struct{ L, R Formula }

// Eval short-circuits.
func (a And) Eval(b Binding) bool { return a.L.Eval(b) && a.R.Eval(b) }

// String renders the conjunction.
func (a And) String() string { return fmt.Sprintf("(%s & %s)", a.L, a.R) }

// Or is disjunction.
type Or struct{ L, R Formula }

// Eval short-circuits.
func (o Or) Eval(b Binding) bool { return o.L.Eval(b) || o.R.Eval(b) }

// String renders the disjunction.
func (o Or) String() string { return fmt.Sprintf("(%s | %s)", o.L, o.R) }

// Not is negation.
type Not struct{ F Formula }

// Eval negates.
func (n Not) Eval(b Binding) bool { return !n.F.Eval(b) }

// String renders the negation.
func (n Not) String() string { return fmt.Sprintf("!(%s)", n.F) }

// Pred is a predicate over a single variable's bound node. Predicates that
// appear as top-level conjuncts are pushed into candidate enumeration by
// the matcher.
type Pred struct {
	Var  int
	Test func(*xmltree.Node) bool
	Desc string
}

// Eval applies the test to the bound node; an unbound variable fails.
func (p Pred) Eval(b Binding) bool {
	n, ok := b[p.Var]
	return ok && p.Test(n)
}

// String renders the predicate description.
func (p Pred) String() string { return fmt.Sprintf("$%d.%s", p.Var, p.Desc) }

// Pred2 is a predicate over two variables (a join condition).
type Pred2 struct {
	VarA, VarB int
	Test       func(a, d *xmltree.Node) bool
	Desc       string
}

// Eval applies the test to both bound nodes; unbound variables fail.
func (p Pred2) Eval(b Binding) bool {
	a, okA := b[p.VarA]
	d, okB := b[p.VarB]
	return okA && okB && p.Test(a, d)
}

// String renders the join predicate description.
func (p Pred2) String() string { return fmt.Sprintf("$%d,$%d.%s", p.VarA, p.VarB, p.Desc) }

// Conj folds a list of formulas into a right-nested conjunction; an empty
// list yields True.
func Conj(fs ...Formula) Formula {
	if len(fs) == 0 {
		return True{}
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = And{L: fs[i], R: out}
	}
	return out
}

// TagEq matches element nodes with the given tag ($v.tag = tag).
func TagEq(v int, tag string) Pred {
	return Pred{
		Var:  v,
		Test: func(n *xmltree.Node) bool { return n.Kind == xmltree.Element && n.Tag == tag },
		Desc: fmt.Sprintf("tag=%q", tag),
	}
}

// IsElement matches any element node.
func IsElement(v int) Pred {
	return Pred{
		Var:  v,
		Test: func(n *xmltree.Node) bool { return n.Kind == xmltree.Element },
		Desc: "element",
	}
}

// ContentEq matches nodes whose whole-subtree text equals s exactly
// ($v.content = s).
func ContentEq(v int, s string) Pred {
	return Pred{
		Var:  v,
		Test: func(n *xmltree.Node) bool { return n.AllText() == s },
		Desc: fmt.Sprintf("content=%q", s),
	}
}

// ContentContains matches nodes whose subtree text contains the substring s
// (case-insensitive).
func ContentContains(v int, s string) Pred {
	ls := strings.ToLower(s)
	return Pred{
		Var:  v,
		Test: func(n *xmltree.Node) bool { return strings.Contains(strings.ToLower(n.AllText()), ls) },
		Desc: fmt.Sprintf("contains=%q", s),
	}
}

// HasPhrase matches nodes whose subtree text contains the word phrase at
// adjacent word offsets (an IR containment predicate).
func HasPhrase(v int, tok *tokenize.Tokenizer, phrase string) Pred {
	terms := tok.SplitPhrase(phrase)
	return Pred{
		Var: v,
		Test: func(n *xmltree.Node) bool {
			switch len(terms) {
			case 0:
				return false
			case 1:
				return tok.Count(n.AllText(), terms[0]) > 0
			default:
				return tok.CountPhrase(n.AllText(), terms) > 0
			}
		},
		Desc: fmt.Sprintf("hasPhrase=%q", phrase),
	}
}

// AttrEq matches element nodes with attribute name equal to value.
func AttrEq(v int, name, value string) Pred {
	return Pred{
		Var: v,
		Test: func(n *xmltree.Node) bool {
			got, ok := n.Attr(name)
			return ok && got == value
		},
		Desc: fmt.Sprintf("@%s=%q", name, value),
	}
}

// Package pattern implements TIX scored pattern trees (Definition 2 of the
// paper) and their matching against data trees.
//
// A scored pattern tree is a triple P = (T, F, S): a tree T whose nodes are
// labeled with distinct integers (the $1, $2, … variables of the paper's
// figures) and whose edges are labeled pc (parent-child), ad (ancestor-
// descendant) or ad* (self-or-descendant); a boolean formula F of
// predicates over the variables; and a set S of scoring rules. This package
// owns T and F and the matcher; the evaluation of S is performed by the
// algebra operators in internal/algebra, which own score propagation.
//
// Match enumerates every embedding of the pattern into a data tree: an
// assignment of data nodes to variables that respects the edge labels and
// satisfies F. Single-variable conjuncts of F are applied during the
// search; the full formula is verified on each complete candidate
// embedding.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// EdgeType is the label on a pattern tree edge.
type EdgeType uint8

const (
	// PC requires the child variable to bind to a child of the parent
	// variable's node.
	PC EdgeType = iota
	// AD requires a proper descendant.
	AD
	// ADStar requires the same node or a descendant (the paper's ad*,
	// written descendant-or-self::* in the XQuery extension).
	ADStar
)

// String returns "pc", "ad" or "ad*".
func (e EdgeType) String() string {
	switch e {
	case PC:
		return "pc"
	case AD:
		return "ad"
	case ADStar:
		return "ad*"
	default:
		return fmt.Sprintf("EdgeType(%d)", uint8(e))
	}
}

// PNode is a node of the pattern tree. Var labels must be distinct within a
// pattern and positive.
type PNode struct {
	Var      int
	Edge     EdgeType // label of the edge from the parent; ignored on the root
	Children []*PNode
}

// Child appends a child pattern node connected by the given edge and
// returns the receiver for chaining.
func (p *PNode) Child(v int, edge EdgeType) *PNode {
	c := &PNode{Var: v, Edge: edge}
	p.Children = append(p.Children, c)
	return c
}

// Binding assigns a data node to each pattern variable.
type Binding map[int]*xmltree.Node

// Clone copies the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Pattern is the (T, F) part of a scored pattern tree; S lives with the
// algebra (see internal/algebra.ScoreSet).
type Pattern struct {
	Root    *PNode
	Formula Formula
}

// NewPattern returns a pattern rooted at a node labeled v, with a
// vacuously-true formula.
func NewPattern(v int) *Pattern {
	return &Pattern{Root: &PNode{Var: v}, Formula: True{}}
}

// Vars returns the sorted variable labels of the pattern tree.
func (p *Pattern) Vars() []int {
	var out []int
	var rec func(*PNode)
	rec = func(n *PNode) {
		out = append(out, n.Var)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
	sort.Ints(out)
	return out
}

// Validate checks that variable labels are distinct and positive.
func (p *Pattern) Validate() error {
	seen := map[int]bool{}
	var rec func(*PNode) error
	rec = func(n *PNode) error {
		if n.Var <= 0 {
			return fmt.Errorf("pattern: variable label %d must be positive", n.Var)
		}
		if seen[n.Var] {
			return fmt.Errorf("pattern: duplicate variable $%d", n.Var)
		}
		seen[n.Var] = true
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(p.Root)
}

// String renders the pattern tree structure for diagnostics.
func (p *Pattern) String() string {
	var sb strings.Builder
	var rec func(n *PNode, depth int)
	rec = func(n *PNode, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if depth > 0 {
			fmt.Fprintf(&sb, "-%s- ", n.Edge)
		}
		fmt.Fprintf(&sb, "$%d\n", n.Var)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return sb.String()
}

// Match returns every embedding of p into the data tree rooted at root, in
// a deterministic order (document order of the bound nodes, outermost
// variable first). The data tree must be numbered.
func (p *Pattern) Match(root *xmltree.Node) []Binding {
	if err := p.Validate(); err != nil {
		return nil
	}
	local := collectLocalPreds(p.Formula)
	var results []Binding
	b := Binding{}

	var assign func(pn *PNode, candidates []*xmltree.Node, rest func()) // bind pn then continue
	assign = func(pn *PNode, candidates []*xmltree.Node, rest func()) {
		for _, cand := range candidates {
			if !passesLocal(local[pn.Var], cand) {
				continue
			}
			b[pn.Var] = cand
			// Bind children left to right, then call rest.
			var bindKids func(i int)
			bindKids = func(i int) {
				if i == len(pn.Children) {
					rest()
					return
				}
				child := pn.Children[i]
				assign(child, edgeCandidates(cand, child.Edge), func() { bindKids(i + 1) })
			}
			bindKids(0)
			delete(b, pn.Var)
		}
	}

	rootCands := allNodes(root)
	assign(p.Root, rootCands, func() {
		if p.Formula == nil || p.Formula.Eval(b) {
			results = append(results, b.Clone())
		}
	})
	return results
}

func allNodes(root *xmltree.Node) []*xmltree.Node {
	return xmltree.Nodes(root)
}

func edgeCandidates(parent *xmltree.Node, e EdgeType) []*xmltree.Node {
	switch e {
	case PC:
		return parent.Children
	case AD:
		var out []*xmltree.Node
		for _, c := range parent.Children {
			c.Walk(func(n *xmltree.Node) bool {
				out = append(out, n)
				return true
			})
		}
		return out
	case ADStar:
		var out []*xmltree.Node
		parent.Walk(func(n *xmltree.Node) bool {
			out = append(out, n)
			return true
		})
		return out
	default:
		return nil
	}
}

func passesLocal(preds []Pred, n *xmltree.Node) bool {
	for _, p := range preds {
		if !p.Test(n) {
			return false
		}
	}
	return true
}

// collectLocalPreds gathers single-variable predicates that appear as
// top-level conjuncts of f; these can be applied during candidate
// enumeration. Or / Not subtrees are left to the final formula check.
func collectLocalPreds(f Formula) map[int][]Pred {
	out := map[int][]Pred{}
	var rec func(Formula)
	rec = func(f Formula) {
		switch t := f.(type) {
		case And:
			rec(t.L)
			rec(t.R)
		case Pred:
			out[t.Var] = append(out[t.Var], t)
		}
	}
	rec(f)
	return out
}

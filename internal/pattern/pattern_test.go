package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// query2Pattern builds the scored pattern tree of Figure 3: $1 (article)
// with a pc child $2 (author) which has a pc child $3 (sname, content
// "Doe"), and an ad* child $4 (the unit to be scored).
func query2Pattern() *Pattern {
	p := NewPattern(1)
	author := p.Root.Child(2, PC)
	author.Child(3, PC)
	p.Root.Child(4, ADStar)
	p.Formula = Conj(
		TagEq(1, "article"),
		TagEq(2, "author"),
		TagEq(3, "sname"),
		ContentEq(3, "Doe"),
	)
	return p
}

func TestEdgeTypeString(t *testing.T) {
	if PC.String() != "pc" || AD.String() != "ad" || ADStar.String() != "ad*" {
		t.Errorf("edge names wrong: %s %s %s", PC, AD, ADStar)
	}
}

func TestValidate(t *testing.T) {
	p := NewPattern(1)
	p.Root.Child(2, PC)
	if err := p.Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	dup := NewPattern(1)
	dup.Root.Child(1, PC)
	if err := dup.Validate(); err == nil {
		t.Errorf("duplicate variable accepted")
	}
	neg := NewPattern(0)
	if err := neg.Validate(); err == nil {
		t.Errorf("non-positive variable accepted")
	}
}

func TestVars(t *testing.T) {
	p := query2Pattern()
	got := p.Vars()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestMatchQuery2OnFigure1(t *testing.T) {
	articles := mustParse(fixture.ArticlesXML)
	p := query2Pattern()
	matches := p.Match(articles)
	// $1, $2, $3 are forced; $4 ranges over every node of the article
	// subtree (ad* from the article root) — one embedding per node.
	wantEmbeddings := articles.Size()
	if len(matches) != wantEmbeddings {
		t.Fatalf("embeddings = %d, want %d", len(matches), wantEmbeddings)
	}
	seen := map[*xmltree.Node]bool{}
	for _, b := range matches {
		if b[1].Tag != "article" {
			t.Errorf("$1 bound to %v", b[1])
		}
		if b[2].Tag != "author" {
			t.Errorf("$2 bound to %v", b[2])
		}
		if b[3].AllText() != "Doe" {
			t.Errorf("$3 bound to %v", b[3])
		}
		if !b[1].Contains(b[4]) {
			t.Errorf("$4 %v not within $1", b[4])
		}
		seen[b[4]] = true
	}
	if len(seen) != wantEmbeddings {
		t.Errorf("distinct $4 bindings = %d, want %d", len(seen), wantEmbeddings)
	}
}

func TestMatchRejectsWrongAuthor(t *testing.T) {
	doc := mustParse(`<article><author><sname>Smith</sname></author><p>x</p></article>`)
	p := query2Pattern()
	if got := p.Match(doc); len(got) != 0 {
		t.Errorf("expected no matches for author Smith, got %d", len(got))
	}
}

func TestEdgeSemantics(t *testing.T) {
	doc := mustParse(`<a><b><c/></b></a>`)
	// pc: c is not a child of a.
	pc := NewPattern(1)
	pc.Root.Child(2, PC)
	pc.Formula = Conj(TagEq(1, "a"), TagEq(2, "c"))
	if got := pc.Match(doc); len(got) != 0 {
		t.Errorf("pc matched grandchild: %d", len(got))
	}
	// ad: c is a proper descendant of a.
	ad := NewPattern(1)
	ad.Root.Child(2, AD)
	ad.Formula = Conj(TagEq(1, "a"), TagEq(2, "c"))
	if got := ad.Match(doc); len(got) != 1 {
		t.Errorf("ad embeddings = %d, want 1", len(got))
	}
	// ad does not match self.
	adSelf := NewPattern(1)
	adSelf.Root.Child(2, AD)
	adSelf.Formula = Conj(TagEq(1, "a"), TagEq(2, "a"))
	if got := adSelf.Match(doc); len(got) != 0 {
		t.Errorf("ad matched self: %d", len(got))
	}
	// ad* matches self.
	adStar := NewPattern(1)
	adStar.Root.Child(2, ADStar)
	adStar.Formula = Conj(TagEq(1, "a"), TagEq(2, "a"))
	if got := adStar.Match(doc); len(got) != 1 {
		t.Errorf("ad* self embeddings = %d, want 1", len(got))
	}
}

func TestFormulaCombinators(t *testing.T) {
	doc := mustParse(`<a><b/><c/></a>`)
	p := NewPattern(1)
	p.Formula = Or{L: TagEq(1, "b"), R: TagEq(1, "c")}
	if got := p.Match(doc); len(got) != 2 {
		t.Errorf("Or matches = %d, want 2", len(got))
	}
	p.Formula = Not{F: Or{L: TagEq(1, "b"), R: TagEq(1, "c")}}
	// Matches <a> and the zero text nodes.
	if got := p.Match(doc); len(got) != 1 {
		t.Errorf("Not matches = %d, want 1", len(got))
	}
	if (True{}).Eval(nil) != true {
		t.Errorf("True failed")
	}
	if (And{L: True{}, R: Not{F: True{}}}).Eval(Binding{}) {
		t.Errorf("And/Not failed")
	}
}

func TestPred2JoinCondition(t *testing.T) {
	doc := mustParse(`<r><x>k</x><y>k</y><y>m</y></r>`)
	p := NewPattern(1)
	p.Root.Child(2, PC)
	p.Root.Child(3, PC)
	p.Formula = Conj(
		TagEq(1, "r"), TagEq(2, "x"), TagEq(3, "y"),
		Pred2{VarA: 2, VarB: 3, Desc: "sametext",
			Test: func(a, b *xmltree.Node) bool { return a.AllText() == b.AllText() }},
	)
	got := p.Match(doc)
	if len(got) != 1 {
		t.Fatalf("join matches = %d, want 1", len(got))
	}
	if got[0][3].AllText() != "k" {
		t.Errorf("joined wrong node: %v", got[0][3])
	}
}

func TestPredicateHelpers(t *testing.T) {
	tok := tokenize.New()
	doc := mustParse(`<a id="5"><p>search engine basics</p></a>`)
	pNode := doc.FirstTag("p")
	b := Binding{1: pNode}
	if !HasPhrase(1, tok, "search engine").Eval(b) {
		t.Errorf("HasPhrase failed")
	}
	if HasPhrase(1, tok, "vector space").Eval(b) {
		t.Errorf("HasPhrase false positive")
	}
	if !ContentContains(1, "ENGINE").Eval(b) {
		t.Errorf("ContentContains should be case-insensitive")
	}
	if !AttrEq(1, "id", "5").Eval(Binding{1: doc}) {
		t.Errorf("AttrEq failed")
	}
	if AttrEq(1, "id", "6").Eval(Binding{1: doc}) {
		t.Errorf("AttrEq false positive")
	}
	if !IsElement(1).Eval(Binding{1: doc}) {
		t.Errorf("IsElement failed on element")
	}
	if IsElement(1).Eval(Binding{1: pNode.Children[0]}) {
		t.Errorf("IsElement matched a text node")
	}
	// Eval with unbound var fails closed.
	if TagEq(2, "a").Eval(b) {
		t.Errorf("unbound var must fail")
	}
	if (Pred2{VarA: 1, VarB: 2, Test: func(a, b *xmltree.Node) bool { return true }}).Eval(b) {
		t.Errorf("Pred2 with unbound var must fail")
	}
}

func TestPatternString(t *testing.T) {
	p := query2Pattern()
	s := p.String()
	if s == "" {
		t.Errorf("empty pattern string")
	}
	fs := p.Formula.String()
	if fs == "" {
		t.Errorf("empty formula string")
	}
}

// TestQuickMatchAgainstBruteForce cross-checks the matcher against a naive
// O(n^2) enumeration for single-edge patterns on random trees.
func TestQuickMatchAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomTree(rng, 2+rng.Intn(25))
		for _, edge := range []EdgeType{PC, AD, ADStar} {
			p := NewPattern(1)
			p.Root.Child(2, edge)
			p.Formula = Conj(TagEq(1, "a"), TagEq(2, "b"))
			got := len(p.Match(root))
			want := 0
			nodes := xmltree.Nodes(root)
			for _, x := range nodes {
				if x.Kind != xmltree.Element || x.Tag != "a" {
					continue
				}
				for _, y := range nodes {
					if y.Kind != xmltree.Element || y.Tag != "b" {
						continue
					}
					switch edge {
					case PC:
						if y.Parent == x {
							want++
						}
					case AD:
						if x.IsAncestorOf(y) {
							want++
						}
					case ADStar:
						if x.Contains(y) {
							want++
						}
					}
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(rng *rand.Rand, n int) *xmltree.Node {
	root := xmltree.NewElement("a")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xmltree.NewElement([]string{"a", "b", "c"}[rng.Intn(3)])
		parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	xmltree.Number(root)
	return root
}

package postings

import (
	"encoding/binary"

	"repro/internal/storage"
)

// Batch block decode: the post-validation fast path behind mustDecodeBlock.
//
// The scalar decodeBlock makes four separate passes over the block (one per
// stream) and pays an error check plus a slice re-header (`data[o:]` inside
// binary.Uvarint) for every varint. After Encode or NewBlockList has proven
// the block well-formed none of those checks can fire, so this path drops
// them: one merged loop walks all four streams in lockstep with plain integer
// offsets, and the varint read is a tiny inlinable helper whose single-byte
// case — the overwhelming majority of deltas — never leaves the caller's
// frame. decodeBlock remains the differential oracle; TestBatchDecode and
// FuzzBatchDecode pin the two byte-identical.

// uv decodes one uvarint at data[o]. The single-byte case is small enough
// for the inliner, so hot decode loops pay one bounds check and one compare
// per delta; multi-byte varints take the outlined slow path. Callers must
// have validated the stream (uv has no error return).
func uv(data []byte, o int) (uint64, int) {
	if b := data[o]; b < 0x80 {
		return uint64(b), 1
	}
	return uvSlow(data, o)
}

// uvSlow is the multi-byte continuation of uv, outlined to keep uv under
// the inlining budget.
func uvSlow(data []byte, o int) (uint64, int) {
	v, n := binary.Uvarint(data[o:])
	if n <= 0 {
		panic("postings: validated stream has malformed varint")
	}
	return v, n
}

// decodeBlockFast decodes block i into dst in one merged pass over the four
// streams. It assumes the block has been validated (Encode and NewBlockList
// guarantee this before a BlockList is published), so structural errors are
// impossible and range checks collapse to the final int32/uint32 narrowing.
func (b *BlockList) decodeBlockFast(i int, dst []Posting) []Posting {
	sk := b.skips[i]
	count := int(sk.End) - b.blockStart(i)
	data := b.blockBytes(i)

	docLen, n0 := uv(data, 0)
	nodeLen, n1 := uv(data, n0)
	posLen, n2 := uv(data, n0+n1)
	o := n0 + n1 + n2
	docS := data[o : o+int(docLen)]
	o += int(docLen)
	nodeS := data[o : o+int(nodeLen)]
	o += int(nodeLen)
	posS := data[o : o+int(posLen)]
	offS := data[o+int(posLen):]

	base := len(dst)
	dst = append(dst, make([]Posting, count)...)
	out := dst[base : base+count : base+count]

	doc := uint64(sk.FirstDoc)
	var node int64
	var pos uint64
	do, no, po, oo := 0, 0, 0, 0
	for j := range out {
		gap, n := uv(docS, do)
		do += n
		zzn, n := uv(nodeS, no)
		no += n
		pv, n := uv(posS, po)
		po += n
		ov, n := uv(offS, oo)
		oo += n
		nd := int64(zzn>>1) ^ -int64(zzn&1)
		if gap != 0 || j == 0 {
			// Document change: node and position restart absolute.
			doc += gap
			node = nd
			pos = pv
		} else {
			node += nd
			pos += pv
		}
		out[j] = Posting{
			Doc:    storage.DocID(doc),
			Node:   int32(node),
			Pos:    uint32(pos),
			Offset: uint32(ov),
		}
	}
	return dst
}

package postings

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBatchDecodeMatchesScalar pins the batch decoder byte-identical to the
// scalar oracle across randomized lists of many shapes: single-doc runs,
// sparse doc gaps, multi-byte deltas, partial tail blocks.
func TestBatchDecodeMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1007))
	sizes := []int{1, 2, BlockSize - 1, BlockSize, BlockSize + 1, 3*BlockSize + 17, 2000}
	for _, n := range sizes {
		for trial := 0; trial < 8; trial++ {
			ps := genList(r, n)
			bl := Encode(ps)
			for i := 0; i < bl.NumBlocks(); i++ {
				want, err := bl.decodeBlock(i, nil)
				if err != nil {
					t.Fatalf("n=%d trial=%d: scalar decode of block %d: %v", n, trial, i, err)
				}
				got := bl.decodeBlockFast(i, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d trial=%d block=%d: batch decode differs from scalar\n got %v\nwant %v", n, trial, i, got, want)
				}
			}
		}
	}
}

// TestBatchDecodeAppends checks the dst-append contract: decoding into a
// non-empty dst must extend it without touching the prefix.
func TestBatchDecodeAppends(t *testing.T) {
	r := rand.New(rand.NewSource(1008))
	ps := genList(r, 300)
	bl := Encode(ps)
	prefix := []Posting{{Doc: 99, Node: 7, Pos: 3, Offset: 1}}
	got := bl.decodeBlockFast(1, append([]Posting(nil), prefix...))
	if got[0] != prefix[0] {
		t.Fatalf("prefix clobbered: %v", got[0])
	}
	want := bl.mustDecodeBlock(1, nil)
	if !reflect.DeepEqual(got[1:], want) {
		t.Fatalf("appended decode differs from fresh decode")
	}
}

// TestBatchDecodeWideValues exercises multi-byte varints in every stream:
// large doc gaps, node deltas in both signs, positions and offsets beyond
// the one-byte range.
func TestBatchDecodeWideValues(t *testing.T) {
	ps := []Posting{
		{Doc: 0, Node: 1 << 20, Pos: 1 << 25, Offset: 1 << 30},
		{Doc: 0, Node: 1<<20 + 5, Pos: 1<<25 + 1000, Offset: 12},
		{Doc: 0, Node: 1 << 21, Pos: 1<<25 + 2000, Offset: 0},
		{Doc: 1 << 29, Node: 0, Pos: 0, Offset: 1},
		{Doc: 1<<29 + 1000, Node: 3, Pos: 7, Offset: 1 << 16},
	}
	bl := Encode(ps)
	want, err := bl.decodeBlock(0, nil)
	if err != nil {
		t.Fatalf("scalar decode: %v", err)
	}
	got := bl.decodeBlockFast(0, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch decode differs on wide values:\n got %v\nwant %v", got, want)
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	bl := Encode(genList(r, 64*BlockSize))
	buf := make([]Posting, 0, BlockSize)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = bl.decodeBlock(i%bl.NumBlocks(), buf[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = bl.decodeBlockFast(i%bl.NumBlocks(), buf[:0])
		}
	})
}

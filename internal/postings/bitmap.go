package postings

import (
	"math/bits"
	"sort"

	"repro/internal/storage"
)

// Adaptive bitmap representation (DESIGN.md §15): very high-frequency
// terms — the ones whose cursors the merge operators drive hardest — trade
// the block-decode path for a resident, roaring-style dense form: a
// document-membership bitmap with a rank directory, per-document cumulative
// posting counts, and the node/pos/offset columns decoded once at adoption
// time. Advance is an index increment, document seek is a rank lookup
// (O(1) popcount) instead of a skip-table binary search plus block decode,
// and within-document position seek is a binary search over a flat column.
//
// The accelerator is strictly additive: the encoded payload and skip table
// stay resident and authoritative, so persistence (TIXDB2 writes the
// payload verbatim) and WAND block-max pruning (Skips/MaxFreq) are
// untouched, and the cursor contract is unchanged. Adoption must happen
// before the BlockList is published to readers — Build/Restore/fold call
// MaybeBitmap while they still own the list exclusively.

const (
	// BitmapMinPostings is the posting-count floor below which a list never
	// adopts the bitmap representation: short lists decode in a block or two
	// and the resident columns would be all cost, no win.
	BitmapMinPostings = 4096
	// BitmapMaxSpread bounds sparsity: adopt only when the spanned document
	// range is at most this multiple of the distinct-document count, i.e. at
	// least 1/BitmapMaxSpread of the documents in the span contain the term.
	// Sparser lists would pay long zero-word scans on bitmap iteration.
	BitmapMaxSpread = 8
)

// bitmapRep is the adopted dense form. All slices are immutable after
// construction.
type bitmapRep struct {
	base     storage.DocID // first present document (== skips[0].FirstDoc)
	last     storage.DocID // last present document
	distinct int           // present-document count
	words    []uint64      // membership bit per document in [base, last]
	rank     []int32       // rank[w] = set bits in words[:w]
	cum      []int32       // cum[r]..cum[r+1]: posting-index range of the rank-r doc
	node     []int32       // decoded columns, one entry per posting
	pos      []uint32
	off      []uint32
}

// MaybeBitmap attaches the dense representation if the list qualifies
// (BitmapMinPostings, BitmapMaxSpread), reporting whether it did. It must
// only be called while the caller still owns the BlockList exclusively —
// i.e. before the list is reachable by any concurrent reader; the index
// build, snapshot-restore and compaction-fold paths satisfy this.
func (b *BlockList) MaybeBitmap() bool {
	if b == nil || b.n < BitmapMinPostings || b.bitmap != nil {
		return false
	}
	base := b.skips[0].FirstDoc
	last := b.skips[len(b.skips)-1].LastDoc
	// Distinct-document count from the doc streams alone — cheap enough to
	// probe every candidate without committing to a full decode.
	distinct := 0
	prev := storage.DocID(-1)
	var docs []storage.DocID
	for i := range b.skips {
		docs = b.decodeDocs(i, docs[:0])
		for _, d := range docs {
			if d != prev {
				distinct++
				prev = d
			}
		}
	}
	if int64(last-base)+1 > int64(distinct)*BitmapMaxSpread {
		return false
	}
	b.bitmap = buildBitmap(b, distinct, base, last)
	return true
}

// HasBitmap reports whether the list carries the dense representation.
func (b *BlockList) HasBitmap() bool { return b != nil && b.bitmap != nil }

// BitmapBytes returns the resident size of the dense representation, zero
// when absent — the per-representation accounting MemStats reports.
func (b *BlockList) BitmapBytes() int {
	if b == nil || b.bitmap == nil {
		return 0
	}
	bm := b.bitmap
	return len(bm.words)*8 + len(bm.rank)*4 + len(bm.cum)*4 +
		len(bm.node)*4 + len(bm.pos)*4 + len(bm.off)*4
}

func buildBitmap(b *BlockList, distinct int, base, last storage.DocID) *bitmapRep {
	span := int(last-base) + 1
	bm := &bitmapRep{
		base:     base,
		last:     last,
		distinct: distinct,
		words:    make([]uint64, (span+63)/64),
		cum:      make([]int32, 0, distinct+1),
		node:     make([]int32, 0, b.n),
		pos:      make([]uint32, 0, b.n),
		off:      make([]uint32, 0, b.n),
	}
	prev := storage.DocID(-1)
	var dec []Posting
	idx := 0
	for i := range b.skips {
		dec = b.decodeBlockFast(i, dec[:0])
		for _, p := range dec {
			if p.Doc != prev {
				rel := uint(p.Doc - base)
				bm.words[rel>>6] |= 1 << (rel & 63)
				bm.cum = append(bm.cum, int32(idx))
				prev = p.Doc
			}
			bm.node = append(bm.node, p.Node)
			bm.pos = append(bm.pos, p.Pos)
			bm.off = append(bm.off, p.Offset)
			idx++
		}
	}
	bm.cum = append(bm.cum, int32(b.n))
	bm.rank = make([]int32, len(bm.words))
	r := int32(0)
	for w, word := range bm.words {
		bm.rank[w] = r
		r += int32(bits.OnesCount64(word))
	}
	return bm
}

// rankOf returns the number of present documents strictly before doc, and
// whether doc itself is present. doc must be in [base, last].
func (bm *bitmapRep) rankOf(doc storage.DocID) (int, bool) {
	rel := uint(doc - bm.base)
	word := bm.words[rel>>6]
	bit := uint64(1) << (rel & 63)
	r := int(bm.rank[rel>>6]) + bits.OnesCount64(word&(bit-1))
	return r, word&bit != 0
}

// selectDoc returns the document with rank r (0 <= r < distinct).
func (bm *bitmapRep) selectDoc(r int) storage.DocID {
	w := sort.Search(len(bm.rank), func(k int) bool { return int(bm.rank[k]) > r }) - 1
	word := bm.words[w]
	for rem := r - int(bm.rank[w]); rem > 0; rem-- {
		word &= word - 1
	}
	return bm.base + storage.DocID(w<<6+bits.TrailingZeros64(word))
}

// nextDoc returns the smallest present document > d, or last+1 if none.
func (bm *bitmapRep) nextDoc(d storage.DocID) storage.DocID {
	if d < bm.base {
		d = bm.base - 1
	}
	rel := uint(d-bm.base) + 1
	w := int(rel >> 6)
	if w >= len(bm.words) {
		return bm.last + 1
	}
	word := bm.words[w] &^ (1<<(rel&63) - 1)
	for word == 0 {
		w++
		if w == len(bm.words) {
			return bm.last + 1
		}
		word = bm.words[w]
	}
	return bm.base + storage.DocID(w<<6+bits.TrailingZeros64(word))
}

// docCounts is the bitmap fast path of BlockList.DocCounts: iterate set
// bits in [lo, hi), posting counts straight from the cum boundaries.
func (bm *bitmapRep) docCounts(lo, hi storage.DocID, fn func(doc storage.DocID, n int) error) error {
	d := lo - 1
	if d < bm.base-1 {
		d = bm.base - 1
	}
	for d = bm.nextDoc(d); d < hi && d <= bm.last; d = bm.nextDoc(d) {
		r, _ := bm.rankOf(d)
		if err := fn(d, int(bm.cum[r+1]-bm.cum[r])); err != nil {
			return err
		}
	}
	return nil
}

// bmSync establishes (bmDoc, bmRank) for the cursor's current posting
// index. Callers guarantee c.i < len(bm.node). The common sequential case
// — still inside the current document, or stepped into the next — avoids
// the binary search.
func (c *Cursor) bmSync() {
	bm := c.bm
	i := int32(c.i)
	if r := c.bmRank; r >= 0 {
		if i >= bm.cum[r] && i < bm.cum[r+1] {
			return
		}
		if r+1 < bm.distinct && i >= bm.cum[r+1] && i < bm.cum[r+2] {
			c.bmRank = r + 1
			c.bmDoc = bm.nextDoc(c.bmDoc)
			return
		}
	}
	r := sort.Search(bm.distinct, func(k int) bool { return bm.cum[k+1] > i })
	c.bmRank = r
	c.bmDoc = bm.selectDoc(r)
}

// bmCur returns the current posting from the resident columns.
func (c *Cursor) bmCur() Posting {
	c.bmSync()
	bm := c.bm
	return Posting{Doc: c.bmDoc, Node: bm.node[c.i], Pos: bm.pos[c.i], Offset: bm.off[c.i]}
}

// bmSeek implements SeekPos on the dense representation: rank lookup to
// the target document, binary search in its position column. The caller
// has checked c.i < c.hi.
func (c *Cursor) bmSeek(doc storage.DocID, pos uint32) {
	bm := c.bm
	c.bmSync()
	if c.bmDoc > doc {
		return
	}
	if c.bmDoc == doc {
		lo, hi := c.i, int(bm.cum[c.bmRank+1])
		j := lo + sort.Search(hi-lo, func(k int) bool { return bm.pos[lo+k] >= pos })
		if j < hi {
			c.bmClamp(j)
			return
		}
		c.bmJump(hi, c.bmRank+1, bm.nextDoc(doc))
		return
	}
	if doc > bm.last {
		c.i = c.hi
		return
	}
	r, present := bm.rankOf(doc)
	if !present {
		// The rank-r present document is the first one past doc.
		c.bmJump(int(bm.cum[r]), r, bm.nextDoc(doc))
		return
	}
	lo, hi := int(bm.cum[r]), int(bm.cum[r+1])
	j := lo + sort.Search(hi-lo, func(k int) bool { return bm.pos[lo+k] >= pos })
	if j < hi {
		c.bmRank, c.bmDoc = r, doc
		c.bmClamp(j)
		return
	}
	c.bmJump(hi, r+1, bm.nextDoc(doc))
}

// bmClamp moves the cursor to posting index i, bounded by the window end.
func (c *Cursor) bmClamp(i int) {
	if i > c.hi {
		i = c.hi
	}
	c.i = i
}

// bmJump positions the cursor at posting index i, the first posting of the
// rank-r document d, or exhausts the window if i falls beyond it.
func (c *Cursor) bmJump(i, r int, d storage.DocID) {
	if i >= c.hi {
		c.i = c.hi
		return
	}
	c.i = i
	c.bmRank = r
	c.bmDoc = d
}

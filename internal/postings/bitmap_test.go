package postings

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/storage"
)

// denseList builds a high-frequency list that qualifies for bitmap
// adoption: ~every document in a contiguous range, a few postings each.
func denseList(r *rand.Rand, docs int) []Posting {
	var ps []Posting
	for d := 0; d < docs; d++ {
		if r.Intn(8) == 0 {
			continue // leave some holes so absent-doc seeks are exercised
		}
		node := int32(r.Intn(5))
		pos := uint32(r.Intn(30))
		occ := 1 + r.Intn(4)
		for k := 0; k < occ; k++ {
			ps = append(ps, Posting{Doc: storage.DocID(d), Node: node, Pos: pos, Offset: uint32(r.Intn(64))})
			pos += 1 + uint32(r.Intn(12))
			if r.Intn(3) == 0 {
				node++
			}
		}
	}
	return ps
}

// bitmapPair encodes ps twice and adopts the bitmap on one copy, failing
// the test if the list unexpectedly fails the adoption criteria.
func bitmapPair(t *testing.T, ps []Posting) (plain, dense *BlockList) {
	t.Helper()
	plain = Encode(ps)
	dense = Encode(ps)
	if !dense.MaybeBitmap() {
		t.Fatalf("list with %d postings did not adopt bitmap", len(ps))
	}
	return plain, dense
}

func TestBitmapAdoptionCriteria(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	if Encode(genList(r, BitmapMinPostings/2)).MaybeBitmap() {
		t.Fatal("short list adopted bitmap")
	}
	// Sparse: same posting count spread over a huge doc range.
	var sparse []Posting
	for d := 0; d < 2*BitmapMinPostings; d++ {
		sparse = append(sparse, Posting{Doc: storage.DocID(d * (2 * BitmapMaxSpread)), Pos: 1})
	}
	if Encode(sparse).MaybeBitmap() {
		t.Fatal("sparse list adopted bitmap")
	}
	bl := Encode(denseList(r, 3000))
	if bl.Len() < BitmapMinPostings {
		t.Fatalf("dense corpus too small: %d", bl.Len())
	}
	if !bl.MaybeBitmap() {
		t.Fatal("dense list did not adopt bitmap")
	}
	if !bl.HasBitmap() || bl.BitmapBytes() == 0 {
		t.Fatal("adopted list reports no bitmap")
	}
	if bl.MaybeBitmap() {
		t.Fatal("second adoption reported true")
	}
}

// TestBitmapCursorDifferential drives the bitmap cursor and the block
// cursor through identical full iterations and randomized SeekPos
// sequences — every Cur, Valid and Remaining must agree exactly.
func TestBitmapCursorDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		ps := denseList(r, 2500+r.Intn(2000))
		plain, dense := bitmapPair(t, ps)
		maxDoc := ps[len(ps)-1].Doc

		// Full iteration.
		a, b := plain.All().Cursor(), dense.All().Cursor()
		for a.Valid() || b.Valid() {
			if a.Valid() != b.Valid() {
				t.Fatalf("trial %d: Valid mismatch mid-iteration", trial)
			}
			if a.Cur() != b.Cur() {
				t.Fatalf("trial %d: Cur mismatch: %+v vs %+v", trial, a.Cur(), b.Cur())
			}
			if a.Remaining() != b.Remaining() {
				t.Fatalf("trial %d: Remaining %d vs %d", trial, a.Remaining(), b.Remaining())
			}
			a.Advance()
			b.Advance()
		}

		// Randomized interleaving of Advance and SeekPos.
		a, b = plain.All().Cursor(), dense.All().Cursor()
		for step := 0; step < 4000 && (a.Valid() || b.Valid()); step++ {
			if a.Valid() != b.Valid() {
				t.Fatalf("trial %d step %d: Valid mismatch", trial, step)
			}
			if a.Cur() != b.Cur() {
				t.Fatalf("trial %d step %d: Cur %+v vs %+v", trial, step, a.Cur(), b.Cur())
			}
			if r.Intn(3) == 0 {
				a.Advance()
				b.Advance()
				continue
			}
			doc := storage.DocID(r.Intn(int(maxDoc) + 3))
			pos := uint32(r.Intn(200))
			a.SeekPos(doc, pos)
			b.SeekPos(doc, pos)
		}
		if a.Valid() != b.Valid() {
			t.Fatalf("trial %d: terminal Valid mismatch", trial)
		}
	}
}

// TestBitmapRangeDifferential pins windowed views: Range results, their
// cursors, lowerBound boundaries and DocCounts must match the block path.
func TestBitmapRangeDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	ps := denseList(r, 4000)
	plain, dense := bitmapPair(t, ps)
	maxDoc := int(ps[len(ps)-1].Doc)

	for trial := 0; trial < 50; trial++ {
		lo := storage.DocID(r.Intn(maxDoc + 2))
		hi := lo + storage.DocID(r.Intn(maxDoc/2+2))
		pw := plain.All().Range(lo, hi)
		dw := dense.All().Range(lo, hi)
		if pw.Len() != dw.Len() {
			t.Fatalf("Range(%d,%d): Len %d vs %d", lo, hi, pw.Len(), dw.Len())
		}
		if !reflect.DeepEqual(pw.Materialize(), dw.Materialize()) {
			t.Fatalf("Range(%d,%d): Materialize differs", lo, hi)
		}
		a, b := pw.Cursor(), dw.Cursor()
		for a.Valid() || b.Valid() {
			if a.Valid() != b.Valid() || a.Cur() != b.Cur() {
				t.Fatalf("Range(%d,%d): windowed cursor mismatch", lo, hi)
			}
			a.Advance()
			b.Advance()
		}

		var pc, dc []int
		collect := func(dst *[]int) func(storage.DocID, int) error {
			return func(d storage.DocID, n int) error {
				*dst = append(*dst, int(d), n)
				return nil
			}
		}
		if err := plain.DocCounts(lo, hi, collect(&pc)); err != nil {
			t.Fatal(err)
		}
		if err := dense.DocCounts(lo, hi, collect(&dc)); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pc, dc) {
			t.Fatalf("DocCounts(%d,%d) differ:\n block %v\nbitmap %v", lo, hi, pc, dc)
		}
	}
}

// TestBitmapUnionDifferential checks bitmap-backed sub-cursors inside
// merged views with tombstones — the live-index read path.
func TestBitmapUnionDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	ps := denseList(r, 6000)
	split := len(ps) / 2
	// Document-disjoint halves, as live segments are.
	for ps[split].Doc == ps[split-1].Doc {
		split++
	}
	plainA, denseA := bitmapPair(t, ps[:split])
	plainB := Encode(ps[split:])

	var tomb *Tombstones
	for i := 0; i < 40; i++ {
		tomb = tomb.WithDead(storage.DocID(r.Intn(int(ps[len(ps)-1].Doc))))
	}
	u1 := Union(tomb, plainA.All(), plainB.All())
	u2 := Union(tomb, denseA.All(), plainB.All())
	if !reflect.DeepEqual(u1.Materialize(), u2.Materialize()) {
		t.Fatal("merged Materialize differs with bitmap sub-list")
	}
	a, b := u1.Cursor(), u2.Cursor()
	for a.Valid() || b.Valid() {
		if a.Valid() != b.Valid() || a.Cur() != b.Cur() {
			t.Fatal("merged cursor mismatch with bitmap sub-list")
		}
		if r.Intn(4) == 0 {
			doc := a.Cur().Doc + storage.DocID(r.Intn(5))
			pos := uint32(r.Intn(100))
			a.SeekPos(doc, pos)
			b.SeekPos(doc, pos)
			continue
		}
		a.Advance()
		b.Advance()
	}
}

package postings

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/storage"
)

// ErrCorrupt marks a block payload or skip table that fails validation.
// Test with errors.Is; the concrete errors name the first offending block.
var ErrCorrupt = errors.New("postings: corrupt block data")

// BlockList is one term's immutable block-compressed posting list: the
// concatenated block payloads plus the skip table. Construct with Encode
// (from sorted postings) or NewBlockList (from snapshot bytes, which
// validates every block so later cursor decodes cannot fail).
type BlockList struct {
	buf      []byte
	skips    []Skip
	n        int
	nodeFreq int // distinct (doc, node) pairs, computed while encoding/validating

	// bitmap is the optional dense representation for very high-frequency
	// terms (see bitmap.go). Attached by MaybeBitmap strictly before the
	// list is published to readers; nil for the overwhelming majority of
	// terms.
	bitmap *bitmapRep
}

// Block payload layout (per block, count postings known from the skip
// table):
//
//	uvarint docLen, uvarint nodeLen, uvarint posLen
//	docStream  docLen bytes:  per posting, uvarint gap from the previous
//	           document (the first gap, from Skip.FirstDoc, is zero)
//	nodeStream nodeLen bytes: per posting, zigzag varint — absolute node
//	           on a document change, delta from the previous node within
//	           a document run
//	posStream  posLen bytes:  per posting, uvarint — absolute position on
//	           a document change, gap from the previous position within a
//	           document run
//	offStream  (rest):        per posting, uvarint word offset
//
// The streams are columnar so a document-only scan (top-k counting,
// Range boundary resolution) decodes just the doc stream.

// Encode block-compresses a posting list. ps must be sorted by (Doc, Pos)
// — the builder and the validated restore path guarantee it — and is not
// retained. Encode panics on unsorted input: every caller validates or
// sorts first, so disorder here is a programming error, not bad data.
func Encode(ps []Posting) *BlockList {
	bl := &BlockList{n: len(ps)}
	if len(ps) == 0 {
		return bl
	}
	var docB, nodeB, posB, offB []byte
	for start := 0; start < len(ps); start += BlockSize {
		end := start + BlockSize
		if end > len(ps) {
			end = len(ps)
		}
		blk := ps[start:end]
		docB, nodeB, posB, offB = docB[:0], nodeB[:0], posB[:0], offB[:0]
		prev := Posting{Doc: blk[0].Doc}
		var maxFreq, runFreq uint32
		for i, p := range blk {
			if i > 0 && p.Less(prev) {
				panic(fmt.Sprintf("postings: Encode on unsorted input at index %d", start+i))
			}
			docB = binary.AppendUvarint(docB, uint64(p.Doc-prev.Doc))
			if i == 0 || p.Doc != prev.Doc {
				nodeB = appendZigzag(nodeB, int64(p.Node))
				posB = binary.AppendUvarint(posB, uint64(p.Pos))
				runFreq = 1
			} else {
				nodeB = appendZigzag(nodeB, int64(p.Node)-int64(prev.Node))
				posB = binary.AppendUvarint(posB, uint64(p.Pos-prev.Pos))
				runFreq++
			}
			if runFreq > maxFreq {
				maxFreq = runFreq
			}
			offB = binary.AppendUvarint(offB, uint64(p.Offset))
			prev = p
		}
		bl.skips = append(bl.skips, Skip{
			FirstDoc: blk[0].Doc,
			LastDoc:  prev.Doc,
			LastPos:  prev.Pos,
			MaxFreq:  maxFreq,
			Off:      uint32(len(bl.buf)),
			End:      uint32(end),
		})
		bl.buf = binary.AppendUvarint(bl.buf, uint64(len(docB)))
		bl.buf = binary.AppendUvarint(bl.buf, uint64(len(nodeB)))
		bl.buf = binary.AppendUvarint(bl.buf, uint64(len(posB)))
		bl.buf = append(bl.buf, docB...)
		bl.buf = append(bl.buf, nodeB...)
		bl.buf = append(bl.buf, posB...)
		bl.buf = append(bl.buf, offB...)
	}
	bl.nodeFreq = nodeFreqOf(ps)
	return bl
}

// nodeFreqOf counts distinct (doc, node) pairs over a sorted list by run
// transitions — node ordinals are non-decreasing within a document's
// position order, so adjacent comparison suffices.
func nodeFreqOf(ps []Posting) int {
	nf := 0
	lastDoc := storage.DocID(-1)
	lastNode := int32(-1)
	for _, p := range ps {
		if p.Doc != lastDoc || p.Node != lastNode {
			nf++
			lastDoc, lastNode = p.Doc, p.Node
		}
	}
	return nf
}

// NewBlockList reconstitutes a block list from snapshot data: n postings,
// the skip table, and the concatenated block payloads (adopted, not
// copied). Every block is structurally checked and fully decoded here —
// bad counts, offsets, stream lengths, overflowing deltas or disordered
// postings are rejected — so the lazy cursor decode downstream operates
// on proven-good bytes. MaxFreq entries are recomputed from the payload
// rather than trusted.
func NewBlockList(n int, skips []Skip, buf []byte) (*BlockList, error) {
	if n == 0 {
		if len(skips) != 0 || len(buf) != 0 {
			return nil, fmt.Errorf("postings: empty list with %d skips and %d payload bytes: %w", len(skips), len(buf), ErrCorrupt)
		}
		return &BlockList{}, nil
	}
	if len(skips) == 0 {
		return nil, fmt.Errorf("postings: %d postings but no blocks: %w", n, ErrCorrupt)
	}
	prevEnd := uint32(0)
	for i, sk := range skips {
		cnt := int(sk.End) - int(prevEnd)
		if cnt < 1 || cnt > BlockSize {
			return nil, fmt.Errorf("postings: block %d count %d outside [1, %d]: %w", i, cnt, BlockSize, ErrCorrupt)
		}
		if i == 0 && sk.Off != 0 {
			return nil, fmt.Errorf("postings: first block payload at offset %d: %w", sk.Off, ErrCorrupt)
		}
		if i > 0 && sk.Off <= skips[i-1].Off {
			return nil, fmt.Errorf("postings: block %d payload offset %d not after block %d: %w", i, sk.Off, i-1, ErrCorrupt)
		}
		if int(sk.Off) > len(buf) {
			return nil, fmt.Errorf("postings: block %d payload offset %d beyond %d payload bytes: %w", i, sk.Off, len(buf), ErrCorrupt)
		}
		prevEnd = sk.End
	}
	if int(prevEnd) != n {
		return nil, fmt.Errorf("postings: skip table covers %d of %d postings: %w", prevEnd, n, ErrCorrupt)
	}
	bl := &BlockList{buf: buf, skips: skips, n: n}
	// Full decode validation: the one pass that makes every later decode
	// infallible. It also recomputes the block-max statistics and the
	// node frequency, so a tampered skip table cannot skew scoring.
	var prev Posting
	first := true
	dec := make([]Posting, 0, BlockSize)
	lastDoc := storage.DocID(-1)
	lastNode := int32(-1)
	for i := range skips {
		var err error
		dec, err = bl.decodeBlock(i, dec[:0])
		if err != nil {
			return nil, err
		}
		var maxFreq, runFreq uint32
		for j, p := range dec {
			if !first && p.Less(prev) {
				return nil, fmt.Errorf("postings: block %d posting %d out of (doc, pos) order: %w", i, j, ErrCorrupt)
			}
			if j == 0 || p.Doc != prev.Doc {
				runFreq = 1
			} else {
				runFreq++
			}
			if runFreq > maxFreq {
				maxFreq = runFreq
			}
			if p.Doc != lastDoc || p.Node != lastNode {
				bl.nodeFreq++
				lastDoc, lastNode = p.Doc, p.Node
			}
			prev, first = p, false
		}
		skips[i].MaxFreq = maxFreq
	}
	return bl, nil
}

// Len returns the number of postings (nil-safe).
func (b *BlockList) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// NumBlocks returns the block count (nil-safe).
func (b *BlockList) NumBlocks() int {
	if b == nil {
		return 0
	}
	return len(b.skips)
}

// Skips exposes the skip table for seek planning and block-max pruning.
// The returned slice must not be modified.
func (b *BlockList) Skips() []Skip {
	if b == nil {
		return nil
	}
	return b.skips
}

// Payload exposes the concatenated encoded block payloads, for snapshot
// writers that persist them verbatim. It must not be modified.
func (b *BlockList) Payload() []byte {
	if b == nil {
		return nil
	}
	return b.buf
}

// NodeFreq returns the number of distinct (doc, node) pairs in the list.
func (b *BlockList) NodeFreq() int {
	if b == nil {
		return 0
	}
	return b.nodeFreq
}

// PayloadBytes returns the encoded payload size in bytes.
func (b *BlockList) PayloadBytes() int {
	if b == nil {
		return 0
	}
	return len(b.buf)
}

// SkipBytes returns the in-memory size of the skip table.
func (b *BlockList) SkipBytes() int { return b.NumBlocks() * skipEntryBytes }

// RawBytes returns what the same postings cost uncompressed, the baseline
// compression ratios are reported against.
func (b *BlockList) RawBytes() int { return b.Len() * rawPostingBytes }

// blockStart returns the absolute index of block i's first posting.
func (b *BlockList) blockStart(i int) int {
	if i == 0 {
		return 0
	}
	return int(b.skips[i-1].End)
}

// blockBytes returns block i's payload slice.
func (b *BlockList) blockBytes(i int) []byte {
	if i+1 < len(b.skips) {
		return b.buf[b.skips[i].Off:b.skips[i+1].Off]
	}
	return b.buf[b.skips[i].Off:]
}

// blockFor returns the index of the block containing absolute posting
// index i (which must be in range).
func (b *BlockList) blockFor(i int) int {
	lo, hi := 0, len(b.skips)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(b.skips[mid].End) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// decodeBlock decodes block i's four streams into dst, returning the
// extended slice. All structural and range errors are reported; after
// NewBlockList/Encode has validated the list, decode cannot fail.
func (b *BlockList) decodeBlock(i int, dst []Posting) ([]Posting, error) {
	sk := b.skips[i]
	count := int(sk.End) - b.blockStart(i)
	data := b.blockBytes(i)
	o := 0
	var lens [3]int
	for s := range lens {
		v, n, err := uvarintAt(data, o, i)
		if err != nil {
			return nil, err
		}
		if v > uint64(len(data)) {
			return nil, fmt.Errorf("postings: block %d stream %d length %d exceeds %d payload bytes: %w", i, s, v, len(data), ErrCorrupt)
		}
		lens[s], o = int(v), o+n
	}
	if rem := len(data) - o; lens[0]+lens[1]+lens[2] > rem {
		return nil, fmt.Errorf("postings: block %d streams need %d of %d remaining bytes: %w", i, lens[0]+lens[1]+lens[2], rem, ErrCorrupt)
	}
	docS := data[o : o+lens[0]]
	nodeS := data[o+lens[0] : o+lens[0]+lens[1]]
	posS := data[o+lens[0]+lens[1] : o+lens[0]+lens[1]+lens[2]]
	offS := data[o+lens[0]+lens[1]+lens[2]:]

	base := len(dst)
	dst = append(dst, make([]Posting, count)...)
	out := dst[base:]

	// Document stream: cumulative gaps from FirstDoc; the first gap must
	// be zero so FirstDoc is authoritative.
	doc := uint64(sk.FirstDoc)
	if sk.FirstDoc < 0 || sk.FirstDoc > sk.LastDoc {
		return nil, fmt.Errorf("postings: block %d document range [%d, %d] invalid: %w", i, sk.FirstDoc, sk.LastDoc, ErrCorrupt)
	}
	o = 0
	for j := 0; j < count; j++ {
		gap, n, err := uvarintAt(docS, o, i)
		if err != nil {
			return nil, err
		}
		o += n
		if j == 0 && gap != 0 {
			return nil, fmt.Errorf("postings: block %d first document gap %d (want 0): %w", i, gap, ErrCorrupt)
		}
		doc += gap
		// Stay clear of the DocID ceiling so doc+1 range bounds cannot
		// overflow downstream.
		if doc >= math.MaxInt32 {
			return nil, fmt.Errorf("postings: block %d document id %d overflows: %w", i, doc, ErrCorrupt)
		}
		out[j].Doc = storage.DocID(doc)
	}
	if o != len(docS) {
		return nil, fmt.Errorf("postings: block %d document stream has %d trailing bytes: %w", i, len(docS)-o, ErrCorrupt)
	}
	if out[count-1].Doc != sk.LastDoc {
		return nil, fmt.Errorf("postings: block %d ends at document %d, skip says %d: %w", i, out[count-1].Doc, sk.LastDoc, ErrCorrupt)
	}

	// Node stream: absolute on document change, signed delta within a run.
	o = 0
	node := int64(0)
	for j := 0; j < count; j++ {
		d, n, err := zigzagAt(nodeS, o, i)
		if err != nil {
			return nil, err
		}
		o += n
		if j == 0 || out[j].Doc != out[j-1].Doc {
			node = d
		} else {
			node += d
		}
		if node < 0 || node > math.MaxInt32 {
			return nil, fmt.Errorf("postings: block %d node ordinal %d overflows: %w", i, node, ErrCorrupt)
		}
		out[j].Node = int32(node)
	}
	if o != len(nodeS) {
		return nil, fmt.Errorf("postings: block %d node stream has %d trailing bytes: %w", i, len(nodeS)-o, ErrCorrupt)
	}

	// Position stream: absolute on document change, gap within a run.
	o = 0
	pos := uint64(0)
	for j := 0; j < count; j++ {
		v, n, err := uvarintAt(posS, o, i)
		if err != nil {
			return nil, err
		}
		o += n
		if j == 0 || out[j].Doc != out[j-1].Doc {
			pos = v
		} else {
			pos += v
		}
		if pos > math.MaxUint32 {
			return nil, fmt.Errorf("postings: block %d position %d overflows: %w", i, pos, ErrCorrupt)
		}
		out[j].Pos = uint32(pos)
	}
	if o != len(posS) {
		return nil, fmt.Errorf("postings: block %d position stream has %d trailing bytes: %w", i, len(posS)-o, ErrCorrupt)
	}
	if out[count-1].Pos != sk.LastPos {
		return nil, fmt.Errorf("postings: block %d ends at position %d, skip says %d: %w", i, out[count-1].Pos, sk.LastPos, ErrCorrupt)
	}

	// Offset stream: raw uvarints, must consume the rest exactly.
	o = 0
	for j := 0; j < count; j++ {
		v, n, err := uvarintAt(offS, o, i)
		if err != nil {
			return nil, err
		}
		o += n
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("postings: block %d offset %d overflows: %w", i, v, ErrCorrupt)
		}
		out[j].Offset = uint32(v)
	}
	if o != len(offS) {
		return nil, fmt.Errorf("postings: block %d offset stream has %d trailing bytes: %w", i, len(offS)-o, ErrCorrupt)
	}
	return dst, nil
}

// mustDecodeBlock is the post-validation decode path: Encode and
// NewBlockList prove every block decodable, so the batch decoder can skip
// the scalar path's structural checks entirely. A malformed block here is a
// corrupted-memory-level invariant violation, not bad input, and surfaces
// as a panic from the decoder itself.
func (b *BlockList) mustDecodeBlock(i int, dst []Posting) []Posting {
	return b.decodeBlockFast(i, dst)
}

// decodeDocs decodes only block i's document stream, appending one DocID
// per posting to dst — the cheap scan top-k counting and range boundary
// resolution use.
func (b *BlockList) decodeDocs(i int, dst []storage.DocID) []storage.DocID {
	sk := b.skips[i]
	count := int(sk.End) - b.blockStart(i)
	data := b.blockBytes(i)
	// Skip the three stream-length headers; the doc stream follows them.
	// The block is validated, so the unchecked reader is safe here.
	docLen, n0 := uv(data, 0)
	_, n1 := uv(data, n0)
	_, n2 := uv(data, n0+n1)
	hdr := n0 + n1 + n2
	docS := data[hdr : hdr+int(docLen)]
	o := 0
	doc := uint64(sk.FirstDoc)
	for j := 0; j < count; j++ {
		gap, n := uv(docS, o)
		o += n
		doc += gap
		dst = append(dst, storage.DocID(doc))
	}
	return dst
}

// DocCounts calls fn once per document in [lo, hi) that has at least one
// posting, in ascending document order, with that document's posting
// count — decoding only the document streams of the overlapping blocks.
// fn returning an error aborts the scan with that error.
func (b *BlockList) DocCounts(lo, hi storage.DocID, fn func(doc storage.DocID, n int) error) error {
	if b == nil || b.n == 0 || lo >= hi {
		return nil
	}
	if b.bitmap != nil {
		return b.bitmap.docCounts(lo, hi, fn)
	}
	// First block that can contain lo.
	i := sort.Search(len(b.skips), func(k int) bool { return b.skips[k].LastDoc >= lo })
	var docs []storage.DocID
	curDoc := storage.DocID(-1)
	cnt := 0
	for ; i < len(b.skips) && b.skips[i].FirstDoc < hi; i++ {
		docs = b.decodeDocs(i, docs[:0])
		for _, d := range docs {
			if d < lo {
				continue
			}
			if d >= hi {
				break
			}
			if d != curDoc {
				if cnt > 0 {
					if err := fn(curDoc, cnt); err != nil {
						return err
					}
				}
				curDoc, cnt = d, 0
			}
			cnt++
		}
	}
	if cnt > 0 {
		return fn(curDoc, cnt)
	}
	return nil
}

// appendZigzag appends v in zigzag varint encoding.
func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64((v<<1)^(v>>63)))
}

// uvarintAt reads one uvarint from data at offset o, reporting block for
// error context.
func uvarintAt(data []byte, o, block int) (uint64, int, error) {
	if o >= len(data) {
		return 0, 0, fmt.Errorf("postings: block %d truncated at byte %d: %w", block, o, ErrCorrupt)
	}
	v, n := binary.Uvarint(data[o:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("postings: block %d malformed varint at byte %d: %w", block, o, ErrCorrupt)
	}
	return v, n, nil
}

// zigzagAt reads one zigzag-encoded signed varint.
func zigzagAt(data []byte, o, block int) (int64, int, error) {
	u, n, err := uvarintAt(data, o, block)
	if err != nil {
		return 0, 0, err
	}
	return int64(u>>1) ^ -int64(u&1), n, nil
}

package postings

import (
	"sort"

	"repro/internal/storage"
)

// Cursor iterates a posting list in document order with positional seek.
// It operates over either representation: raw slices advance an index;
// block-backed cursors decode lazily, one block at a time, seeking via
// the skip table and galloping within the decoded block.
//
// The contract matches the original uncompressed cursor exactly:
// Valid/Cur/Advance/Remaining/SeekPos with (Doc, Pos) ordering.
type Cursor struct {
	raw []Posting

	bl     *BlockList
	lo, hi int // posting-index window into bl
	i      int // current absolute posting index

	blk  int       // decoded block index, -1 if none
	base int       // absolute index of dec[0]
	dec  []Posting // decoded postings of block blk

	// Bitmap mode (see bitmap.go): bm points at the list's adopted dense
	// representation and the cursor walks its resident columns instead of
	// decoding blocks. bmDoc/bmRank track the current document lazily;
	// bmRank == -1 means unsynced.
	bm     *bitmapRep
	bmDoc  storage.DocID
	bmRank int

	// Merged mode (see Union): the cursor is a settled k-way merge over
	// sub-cursors with tombstoned documents skipped.
	subs []*Cursor
	tomb *Tombstones
	cur  int // index of the sub-cursor holding the minimum, -1 if exhausted
}

// NewCursor returns a cursor over a raw posting slice (sorted by
// (Doc, Pos)), preserving the historical constructor.
func NewCursor(ps []Posting) *Cursor {
	return &Cursor{raw: ps, hi: len(ps)}
}

// Valid reports whether the cursor points at a posting.
func (c *Cursor) Valid() bool {
	if c.subs != nil {
		return c.mergedValid()
	}
	return c.i < c.hi
}

// Cur returns the current posting. Call only when Valid.
func (c *Cursor) Cur() Posting {
	if c.subs != nil {
		return c.mergedCur()
	}
	if c.bm != nil {
		return c.bmCur()
	}
	if c.bl == nil {
		return c.raw[c.i]
	}
	if c.blk < 0 || c.i < c.base || c.i >= c.base+len(c.dec) {
		c.loadBlock(c.bl.blockFor(c.i))
	}
	return c.dec[c.i-c.base]
}

// Advance moves to the next posting.
func (c *Cursor) Advance() {
	if c.subs != nil {
		c.mergedAdvance()
		return
	}
	c.i++
}

// Remaining returns the number of postings left, including the current.
// Merged cursors report an upper bound when tombstones are in play.
func (c *Cursor) Remaining() int {
	if c.subs != nil {
		return c.mergedRemaining()
	}
	return c.hi - c.i
}

// loadBlock decodes block b into the cursor's buffer.
func (c *Cursor) loadBlock(b int) {
	c.dec = c.bl.mustDecodeBlock(b, c.dec[:0])
	c.base = c.bl.blockStart(b)
	c.blk = b
}

// SeekPos advances the cursor to the first posting p at or after the
// current position with p.Doc > doc, or p.Doc == doc and p.Pos >= pos.
// The cursor never moves backward.
func (c *Cursor) SeekPos(doc storage.DocID, pos uint32) {
	if c.subs != nil {
		c.mergedSeekPos(doc, pos)
		return
	}
	if c.i >= c.hi {
		return
	}
	if c.bm != nil {
		c.bmSeek(doc, pos)
		return
	}
	ge := func(p Posting) bool {
		return p.Doc > doc || (p.Doc == doc && p.Pos >= pos)
	}
	if c.bl == nil {
		c.i += sort.Search(c.hi-c.i, func(k int) bool { return ge(c.raw[c.i+k]) })
		return
	}
	skips := c.bl.skips
	// First block, at or after the one holding c.i, whose final posting
	// is not before the target — found on the skip table alone.
	lo, hi := c.bl.blockFor(c.i), len(skips)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		sk := skips[mid]
		if sk.LastDoc < doc || (sk.LastDoc == doc && sk.LastPos < pos) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(skips) {
		c.i = c.hi
		return
	}
	if start := c.bl.blockStart(lo); start > c.i {
		c.i = start
	}
	if c.i >= c.hi {
		c.i = c.hi
		return
	}
	if c.blk != lo {
		c.loadBlock(lo)
	}
	// Gallop from the current offset, then binary search the bracketed
	// range — cheap for the short hops merge joins make.
	rel := c.i - c.base
	n := len(c.dec)
	if rel < n && ge(c.dec[rel]) {
		return
	}
	step := 1
	loR, hiR := rel, n
	for loR+step < n && !ge(c.dec[loR+step]) {
		loR += step
		step <<= 1
	}
	if loR+step < n {
		hiR = loR + step + 1
	}
	j := loR + sort.Search(hiR-loR, func(k int) bool { return ge(c.dec[loR+k]) })
	c.i = c.base + j
	if c.i > c.hi {
		c.i = c.hi
	}
}

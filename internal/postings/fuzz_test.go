package postings

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/storage"
)

// encodeFuzzInput serializes a block list into the self-describing byte
// format FuzzBlockDecode parses, so valid encodings can seed the corpus.
func encodeFuzzInput(bl *BlockList) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(bl.Len()))
	out = binary.AppendUvarint(out, uint64(bl.NumBlocks()))
	for _, sk := range bl.Skips() {
		out = binary.AppendUvarint(out, uint64(sk.FirstDoc))
		out = binary.AppendUvarint(out, uint64(sk.LastDoc))
		out = binary.AppendUvarint(out, uint64(sk.LastPos))
		out = binary.AppendUvarint(out, uint64(sk.MaxFreq))
		out = binary.AppendUvarint(out, uint64(sk.Off))
		out = binary.AppendUvarint(out, uint64(sk.End))
	}
	return append(out, bl.Payload()...)
}

// FuzzBlockDecode feeds arbitrary skip tables and payloads through
// NewBlockList: it must either reject them with ErrCorrupt or produce a
// list whose decode paths (Materialize, cursor iteration, DocCounts) are
// self-consistent — and it must never panic or allocate proportionally to
// claimed (rather than actual) sizes.
func FuzzBlockDecode(f *testing.F) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, BlockSize, 2*BlockSize + 7} {
		f.Add(encodeFuzzInput(Encode(genList(r, n))))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		o := 0
		readUv := func() (uint64, bool) {
			if o >= len(data) {
				return 0, false
			}
			v, n := binary.Uvarint(data[o:])
			if n <= 0 {
				return 0, false
			}
			o += n
			return v, true
		}
		nPost, ok := readUv()
		if !ok || nPost > 1<<20 {
			return
		}
		nBlocks, ok := readUv()
		// A real table needs at least one posting per block; anything the
		// input cannot back with bytes is not worth allocating for.
		if !ok || nBlocks > nPost || nBlocks > uint64(len(data)) {
			return
		}
		skips := make([]Skip, 0, nBlocks)
		for i := uint64(0); i < nBlocks; i++ {
			var vs [6]uint64
			for j := range vs {
				v, ok := readUv()
				if !ok {
					return
				}
				vs[j] = v
			}
			skips = append(skips, Skip{
				FirstDoc: storage.DocID(int32(vs[0])),
				LastDoc:  storage.DocID(int32(vs[1])),
				LastPos:  uint32(vs[2]),
				MaxFreq:  uint32(vs[3]),
				Off:      uint32(vs[4]),
				End:      uint32(vs[5]),
			})
		}
		payload := data[o:]

		bl, err := NewBlockList(int(nPost), skips, payload)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not marked ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted: every downstream decode must agree with itself.
		ps := bl.All().Materialize()
		if len(ps) != int(nPost) {
			t.Fatalf("accepted list materializes %d of %d postings", len(ps), nPost)
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].Less(ps[i-1]) {
				t.Fatalf("accepted list out of order at %d", i)
			}
		}
		i := 0
		for c := bl.All().Cursor(); c.Valid(); c.Advance() {
			if c.Cur() != ps[i] {
				t.Fatalf("cursor posting %d = %+v, want %+v", i, c.Cur(), ps[i])
			}
			i++
		}
		if i != len(ps) {
			t.Fatalf("cursor streamed %d of %d postings", i, len(ps))
		}
		if len(ps) > 0 {
			total := 0
			err := bl.DocCounts(0, ps[len(ps)-1].Doc+1, func(d storage.DocID, n int) error {
				total += n
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if total != len(ps) {
				t.Fatalf("DocCounts covered %d of %d postings", total, len(ps))
			}
		}
	})
}

// parseFuzzBlockList decodes the FuzzBlockDecode input format into a
// validated BlockList, or nil if the bytes are rejected (shared by the
// decode and batch-differential fuzz targets).
func parseFuzzBlockList(t *testing.T, data []byte) *BlockList {
	o := 0
	readUv := func() (uint64, bool) {
		if o >= len(data) {
			return 0, false
		}
		v, n := binary.Uvarint(data[o:])
		if n <= 0 {
			return 0, false
		}
		o += n
		return v, true
	}
	nPost, ok := readUv()
	if !ok || nPost > 1<<20 {
		return nil
	}
	nBlocks, ok := readUv()
	if !ok || nBlocks > nPost || nBlocks > uint64(len(data)) {
		return nil
	}
	skips := make([]Skip, 0, nBlocks)
	for i := uint64(0); i < nBlocks; i++ {
		var vs [6]uint64
		for j := range vs {
			v, ok := readUv()
			if !ok {
				return nil
			}
			vs[j] = v
		}
		skips = append(skips, Skip{
			FirstDoc: storage.DocID(int32(vs[0])),
			LastDoc:  storage.DocID(int32(vs[1])),
			LastPos:  uint32(vs[2]),
			MaxFreq:  uint32(vs[3]),
			Off:      uint32(vs[4]),
			End:      uint32(vs[5]),
		})
	}
	bl, err := NewBlockList(int(nPost), skips, data[o:])
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("rejection not marked ErrCorrupt: %v", err)
		}
		return nil
	}
	return bl
}

// FuzzBatchDecode is the batch-vs-scalar differential: any list NewBlockList
// accepts must decode byte-identically through the batch fast path
// (mustDecodeBlock → decodeBlockFast) and the scalar oracle (decodeBlock),
// block by block, and the doc-only scan must agree with the doc column.
func FuzzBatchDecode(f *testing.F) {
	r := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 3, BlockSize, 2*BlockSize + 7, 5 * BlockSize} {
		f.Add(encodeFuzzInput(Encode(genList(r, n))))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		bl := parseFuzzBlockList(t, data)
		if bl == nil || bl.Len() == 0 {
			return
		}
		var scalar, batch []Posting
		var docs []storage.DocID
		for i := 0; i < bl.NumBlocks(); i++ {
			var err error
			scalar, err = bl.decodeBlock(i, scalar[:0])
			if err != nil {
				t.Fatalf("scalar decode failed on accepted block %d: %v", i, err)
			}
			batch = bl.decodeBlockFast(i, batch[:0])
			if !reflect.DeepEqual(batch, scalar) {
				t.Fatalf("block %d: batch decode differs from scalar\n got %v\nwant %v", i, batch, scalar)
			}
			docs = bl.decodeDocs(i, docs[:0])
			if len(docs) != len(scalar) {
				t.Fatalf("block %d: decodeDocs returned %d of %d docs", i, len(docs), len(scalar))
			}
			for j := range docs {
				if docs[j] != scalar[j].Doc {
					t.Fatalf("block %d doc %d: decodeDocs %d, scalar %d", i, j, docs[j], scalar[j].Doc)
				}
			}
		}
	})
}

package postings

import (
	"sort"

	"repro/internal/storage"
)

// List is a read-only view over a posting list — a raw []Posting slice, a
// window of a block-compressed BlockList, or a merged union of several
// such views with tombstone filtering (see Union). The zero value is an
// empty list. Lists are values: cheap to copy, safe to share.
type List struct {
	raw    []Posting
	bl     *BlockList
	lo, hi int // posting-index window into bl (block mode only)

	sub  []List      // merged mode: the unioned parts (non-nil)
	tomb *Tombstones // merged mode: documents filtered out of the union
}

// NewRawList wraps an already-materialized posting slice (which must be
// sorted by (Doc, Pos)) without copying.
func NewRawList(ps []Posting) List {
	return List{raw: ps}
}

// All returns a List over the whole block list (nil-safe).
func (b *BlockList) All() List {
	if b == nil || b.n == 0 {
		return List{}
	}
	return List{bl: b, lo: 0, hi: b.n}
}

// Len returns the number of postings in the view. Merged views count
// tombstone-suppressed postings too, so under deletions Len is an upper
// bound on what a cursor will yield.
func (l List) Len() int {
	if l.sub != nil {
		return l.mergedLen()
	}
	if l.bl != nil {
		return l.hi - l.lo
	}
	return len(l.raw)
}

// Blocks returns the underlying BlockList when the view is block-backed
// and spans the entire list — the precondition for skip-table pruning —
// and nil otherwise.
func (l List) Blocks() *BlockList {
	if l.bl != nil && l.lo == 0 && l.hi == l.bl.n {
		return l.bl
	}
	return nil
}

// Cursor returns a fresh cursor positioned at the first posting.
func (l List) Cursor() *Cursor {
	if l.sub != nil {
		return l.mergedCursor()
	}
	if l.bl != nil {
		return &Cursor{bl: l.bl, lo: l.lo, hi: l.hi, i: l.lo, blk: -1, bm: l.bl.bitmap, bmRank: -1}
	}
	return &Cursor{raw: l.raw, hi: len(l.raw)}
}

// Reset repositions an existing cursor at the first posting of l, reusing
// the decode buffer it accumulated in earlier runs — the arena-reuse hook
// for operators that run many short cursor passes (one per document in
// top-k evaluation). Merged views fall back to a fresh cursor structure.
func (l List) Reset(c *Cursor) {
	if l.sub != nil {
		*c = *l.mergedCursor()
		return
	}
	dec := c.dec
	*c = Cursor{}
	if l.bl != nil {
		c.bl, c.lo, c.hi, c.i, c.blk = l.bl, l.lo, l.hi, l.lo, -1
		c.dec = dec[:0]
		c.bm = l.bl.bitmap
		c.bmRank = -1
		return
	}
	c.raw = l.raw
	c.hi = len(l.raw)
	c.dec = dec[:0]
}

// Range narrows the view to postings with lo <= Doc < hi. Block-backed
// views resolve the boundaries via the skip table plus a document-stream
// scan of at most one block per edge — no full decode.
func (l List) Range(lo, hi storage.DocID) List {
	if l.sub != nil {
		return l.mergedRange(lo, hi)
	}
	if l.bl == nil {
		a := sort.Search(len(l.raw), func(i int) bool { return l.raw[i].Doc >= lo })
		b := a + sort.Search(len(l.raw)-a, func(i int) bool { return l.raw[a+i].Doc >= hi })
		return List{raw: l.raw[a:b]}
	}
	a := l.bl.lowerBound(lo)
	b := l.bl.lowerBound(hi)
	if a < l.lo {
		a = l.lo
	}
	if b > l.hi {
		b = l.hi
	}
	if a >= b {
		return List{}
	}
	return List{bl: l.bl, lo: a, hi: b}
}

// lowerBound returns the index of the first posting with Doc >= doc, or
// b.n if none.
func (b *BlockList) lowerBound(doc storage.DocID) int {
	if bm := b.bitmap; bm != nil {
		if doc <= bm.base {
			return 0
		}
		if doc > bm.last {
			return b.n
		}
		// Whether doc is present or not, the first posting with Doc >= doc
		// is the first posting of the rank-r document.
		r, _ := bm.rankOf(doc)
		return int(bm.cum[r])
	}
	// First block whose LastDoc >= doc.
	lo, hi := 0, len(b.skips)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.skips[mid].LastDoc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(b.skips) {
		return b.n
	}
	if b.skips[lo].FirstDoc >= doc {
		return b.blockStart(lo)
	}
	// The boundary falls inside block lo: resolve with a doc-only decode.
	docs := b.decodeDocs(lo, nil)
	start := b.blockStart(lo)
	j := sort.Search(len(docs), func(k int) bool { return docs[k] >= doc })
	return start + j
}

// Materialize returns the postings as a flat slice. Raw-backed views
// return the underlying slice (callers must not modify it); block-backed
// and merged views allocate and decode, and merged views exclude
// tombstoned documents.
func (l List) Materialize() []Posting {
	if l.sub != nil {
		return l.mergedMaterialize()
	}
	if l.bl == nil {
		return l.raw
	}
	if l.lo == l.hi {
		return nil
	}
	out := make([]Posting, 0, l.hi-l.lo)
	first := l.bl.blockFor(l.lo)
	last := l.bl.blockFor(l.hi - 1)
	for i := first; i <= last; i++ {
		out = l.bl.mustDecodeBlock(i, out)
	}
	// Trim the partial edge blocks down to the window.
	start := l.bl.blockStart(first)
	out = out[l.lo-start:]
	return out[:l.hi-l.lo]
}

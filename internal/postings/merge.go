package postings

import (
	"sort"

	"repro/internal/storage"
)

// This file adds the LSM read path: a merged List view that unions the
// postings of several underlying views (immutable block segments plus
// in-memory memtable runs) behind the exact cursor contract of a single
// list, with tombstone filtering applied during the merge so deleted
// documents vanish from every operator without the operators changing.
//
// Segments produced by the live index cover disjoint, ascending document
// ranges (document ids are allocated monotonically and never reused), so
// the k-way merge is effectively a concatenation with cheap min-scans; the
// implementation nevertheless handles arbitrary interleaving, which the
// fuzz target exercises.

// Tombstones is an immutable set of deleted documents. A nil *Tombstones
// is a valid empty set. Mutation is copy-on-write (WithDead), so readers
// holding a snapshot never observe changes.
type Tombstones struct {
	dead map[storage.DocID]struct{}
}

// NewTombstones returns a set containing ids (nil when ids is empty).
func NewTombstones(ids ...storage.DocID) *Tombstones {
	return (*Tombstones)(nil).WithDead(ids...)
}

// Dead reports whether doc is tombstoned. Safe on a nil receiver.
func (t *Tombstones) Dead(doc storage.DocID) bool {
	if t == nil {
		return false
	}
	_, ok := t.dead[doc]
	return ok
}

// Len returns the number of tombstoned documents. Safe on a nil receiver.
func (t *Tombstones) Len() int {
	if t == nil {
		return 0
	}
	return len(t.dead)
}

// WithDead returns a set additionally containing ids. The receiver is not
// modified; when ids adds nothing new the receiver is returned unchanged.
func (t *Tombstones) WithDead(ids ...storage.DocID) *Tombstones {
	fresh := 0
	for _, id := range ids {
		if !t.Dead(id) {
			fresh++
		}
	}
	if fresh == 0 {
		return t
	}
	dead := make(map[storage.DocID]struct{}, t.Len()+fresh)
	if t != nil {
		//tixlint:ignore mapiter set copy; insertion order does not affect the resulting set
		for id := range t.dead {
			dead[id] = struct{}{}
		}
	}
	for _, id := range ids {
		dead[id] = struct{}{}
	}
	return &Tombstones{dead: dead}
}

// IDs returns the tombstoned documents in ascending order.
func (t *Tombstones) IDs() []storage.DocID {
	if t == nil {
		return nil
	}
	out := make([]storage.DocID, 0, len(t.dead))
	for id := range t.dead {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union returns a view over the (Doc, Pos)-ordered union of parts with
// documents in tomb filtered out. Empty parts are dropped and nested
// unions with a compatible tombstone set are flattened; a single surviving
// part with no tombstones is returned directly, so a live index that has
// seen no mutations keeps the block-backed fast paths (Blocks, skip-table
// seeks, block-max pruning) of a static one.
//
// Under tombstones, Len and Remaining count suppressed postings too — they
// become upper bounds, which is the same contract block-max pruning already
// assumes of its statistics.
func Union(tomb *Tombstones, parts ...List) List {
	kept := make([]List, 0, len(parts))
	for _, p := range parts {
		if p.Len() == 0 {
			continue
		}
		if p.sub != nil && (p.tomb == nil || p.tomb == tomb) {
			kept = append(kept, p.sub...)
			continue
		}
		kept = append(kept, p)
	}
	if tomb.Len() == 0 {
		tomb = nil
	}
	switch {
	case len(kept) == 0:
		return List{}
	case len(kept) == 1 && tomb == nil:
		return kept[0]
	}
	return List{sub: kept, tomb: tomb}
}

// mergedLen sums the part sizes (an upper bound under tombstones).
func (l List) mergedLen() int {
	n := 0
	for _, p := range l.sub {
		n += p.Len()
	}
	return n
}

// mergedCursor builds the k-way merge cursor and settles it on the first
// live posting.
func (l List) mergedCursor() *Cursor {
	subs := make([]*Cursor, len(l.sub))
	for i, p := range l.sub {
		subs[i] = p.Cursor()
	}
	c := &Cursor{subs: subs, tomb: l.tomb}
	c.settle()
	return c
}

// mergedRange narrows every part and re-unions, keeping the tombstone set.
func (l List) mergedRange(lo, hi storage.DocID) List {
	parts := make([]List, 0, len(l.sub))
	for _, p := range l.sub {
		parts = append(parts, p.Range(lo, hi))
	}
	return Union(l.tomb, parts...)
}

// mergedMaterialize drains the merge cursor into a fresh slice.
func (l List) mergedMaterialize() []Posting {
	out := make([]Posting, 0, l.mergedLen())
	for c := l.mergedCursor(); c.Valid(); c.Advance() {
		out = append(out, c.Cur())
	}
	return out
}

// Each calls fn for every posting in the view in (Doc, Pos) order,
// stopping early when fn returns false. It is the bulk consumption path
// for merged views: unlike Materialize it never allocates the full slice,
// and tombstoned documents are already filtered out.
func (l List) Each(fn func(Posting) bool) {
	for c := l.Cursor(); c.Valid(); c.Advance() {
		if !fn(c.Cur()) {
			return
		}
	}
}

// settle positions the merge cursor on the minimum live posting across the
// sub-cursors, skipping whole tombstoned documents via SeekPos so a dead
// run costs one skip-table seek per sub-cursor instead of a posting-by-
// posting walk.
func (c *Cursor) settle() {
	for {
		best := -1
		for i, s := range c.subs {
			if !s.Valid() {
				continue
			}
			if best < 0 || s.Cur().Less(c.subs[best].Cur()) {
				best = i
			}
		}
		c.cur = best
		if best < 0 {
			return
		}
		doc := c.subs[best].Cur().Doc
		if !c.tomb.Dead(doc) {
			return
		}
		for _, s := range c.subs {
			if s.Valid() && s.Cur().Doc <= doc {
				s.SeekPos(doc+1, 0)
			}
		}
	}
}

func (c *Cursor) mergedValid() bool { return c.cur >= 0 }

func (c *Cursor) mergedCur() Posting { return c.subs[c.cur].Cur() }

func (c *Cursor) mergedAdvance() {
	if c.cur < 0 {
		return
	}
	c.subs[c.cur].Advance()
	c.settle()
}

// mergedRemaining sums the sub-cursor remainders — exact without
// tombstones, an upper bound with them.
func (c *Cursor) mergedRemaining() int {
	n := 0
	for _, s := range c.subs {
		n += s.Remaining()
	}
	return n
}

func (c *Cursor) mergedSeekPos(doc storage.DocID, pos uint32) {
	if c.cur < 0 {
		return
	}
	for _, s := range c.subs {
		s.SeekPos(doc, pos)
	}
	c.settle()
}

package postings

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/storage"
)

// splitParts deals a sorted posting stream into k sorted sub-streams the
// way the live index produces them (each part is a subsequence, so it
// stays sorted), optionally block-encoding alternate parts to mix
// representations.
func splitParts(ps []Posting, k int, encodeEven bool) []List {
	raw := make([][]Posting, k)
	for i, p := range ps {
		j := i % k
		raw[j] = append(raw[j], p)
	}
	parts := make([]List, 0, k)
	for j, sub := range raw {
		if encodeEven && j%2 == 0 {
			parts = append(parts, Encode(sub).All())
		} else {
			parts = append(parts, NewRawList(sub))
		}
	}
	return parts
}

// filterDead is the merge oracle: the sorted input with tombstoned
// documents removed.
func filterDead(ps []Posting, tomb *Tombstones) []Posting {
	out := []Posting{}
	for _, p := range ps {
		if !tomb.Dead(p.Doc) {
			out = append(out, p)
		}
	}
	return out
}

func drain(c *Cursor) []Posting {
	out := []Posting{}
	for ; c.Valid(); c.Advance() {
		out = append(out, c.Cur())
	}
	return out
}

func TestUnionMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ps := genList(r, r.Intn(600))
		k := 1 + r.Intn(5)
		var dead []storage.DocID
		for _, p := range ps {
			if r.Intn(10) == 0 {
				dead = append(dead, p.Doc)
			}
		}
		tomb := NewTombstones(dead...)
		u := Union(tomb, splitParts(ps, k, trial%2 == 0)...)
		want := filterDead(ps, tomb)

		if got := append([]Posting{}, u.Materialize()...); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Materialize yields %d postings, want %d", trial, len(got), len(want))
		}
		if got := drain(u.Cursor()); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: cursor drain mismatch", trial)
		}
		if u.Len() < len(want) {
			t.Fatalf("trial %d: Len() = %d below live count %d", trial, u.Len(), len(want))
		}
		if tomb == nil && u.Len() != len(want) {
			t.Fatalf("trial %d: Len() = %d, want exact %d without tombstones", trial, u.Len(), len(want))
		}
	}
}

func TestUnionEmptyMemtablePreservesBlockFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	base := Encode(genList(r, 300))
	u := Union(nil, base.All(), NewRawList(nil))
	if u.Blocks() != base {
		t.Fatalf("union with empty memtable part lost the block-backed fast path")
	}
	u = Union(NewTombstones(), base.All())
	if u.Blocks() != base {
		t.Fatalf("union with empty tombstone set lost the block-backed fast path")
	}
}

func TestUnionTombstoneOnlyTerm(t *testing.T) {
	ps := []Posting{{Doc: 3, Node: 1, Pos: 2}, {Doc: 3, Node: 1, Pos: 9}, {Doc: 7, Node: 2, Pos: 1}}
	tomb := NewTombstones(3, 7)
	u := Union(tomb, Encode(ps).All())
	if c := u.Cursor(); c.Valid() {
		t.Fatalf("cursor over fully tombstoned term is valid at %+v", c.Cur())
	}
	if got := u.Materialize(); len(got) != 0 {
		t.Fatalf("Materialize over fully tombstoned term yields %d postings", len(got))
	}
	if u.Len() != 3 {
		t.Fatalf("Len() = %d, want the suppressed-posting upper bound 3", u.Len())
	}
}

func TestUnionDeleteThenReAdd(t *testing.T) {
	// Document 2 is deleted and re-added under a fresh id (5, allocated
	// monotonically) within the same generation: the old postings live in
	// the base segment, the new ones in the memtable, and only the new id
	// may surface.
	base := Encode([]Posting{
		{Doc: 1, Node: 1, Pos: 4}, {Doc: 2, Node: 1, Pos: 3}, {Doc: 2, Node: 1, Pos: 8},
	})
	mem := []Posting{{Doc: 5, Node: 1, Pos: 3}, {Doc: 5, Node: 1, Pos: 8}}
	u := Union(NewTombstones(2), base.All(), NewRawList(mem))
	want := []Posting{{Doc: 1, Node: 1, Pos: 4}, {Doc: 5, Node: 1, Pos: 3}, {Doc: 5, Node: 1, Pos: 8}}
	if got := drain(u.Cursor()); !reflect.DeepEqual(got, want) {
		t.Fatalf("delete+re-add merge = %+v, want %+v", got, want)
	}
}

func TestMergedSeekPosInsideTombstonedRun(t *testing.T) {
	// Docs 0..9, one posting each at Pos 1..3; docs 4..6 tombstoned. A seek
	// landing inside the dead run must come out at the first live posting
	// after it.
	var ps []Posting
	for d := storage.DocID(0); d < 10; d++ {
		for pos := uint32(1); pos <= 3; pos++ {
			ps = append(ps, Posting{Doc: d, Node: 1, Pos: pos})
		}
	}
	tomb := NewTombstones(4, 5, 6)
	u := Union(tomb, splitParts(ps, 3, true)...)

	c := u.Cursor()
	c.SeekPos(5, 2)
	if !c.Valid() || c.Cur().Doc != 7 || c.Cur().Pos != 1 {
		t.Fatalf("seek into tombstoned run landed at %+v, want doc 7 pos 1", c.Cur())
	}
	// Seeking within a live doc still honors positions.
	c = u.Cursor()
	c.SeekPos(7, 3)
	if !c.Valid() || c.Cur().Doc != 7 || c.Cur().Pos != 3 {
		t.Fatalf("positional seek landed at %+v, want doc 7 pos 3", c.Cur())
	}
	// Seeking past the end exhausts the cursor.
	c.SeekPos(42, 0)
	if c.Valid() {
		t.Fatalf("seek past end left cursor valid at %+v", c.Cur())
	}
}

func TestMergedRangeMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ps := genList(r, 400)
	tomb := NewTombstones(ps[len(ps)/2].Doc)
	u := Union(tomb, splitParts(ps, 3, true)...)
	maxDoc := ps[len(ps)-1].Doc
	for lo := storage.DocID(0); lo <= maxDoc; lo += 3 {
		hi := lo + 5
		want := []Posting{}
		for _, p := range filterDead(ps, tomb) {
			if p.Doc >= lo && p.Doc < hi {
				want = append(want, p)
			}
		}
		got := append([]Posting{}, u.Range(lo, hi).Materialize()...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Range(%d,%d): got %d postings, want %d", lo, hi, len(got), len(want))
		}
	}
}

func TestListEachStopsEarly(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	ps := genList(r, 200)
	u := Union(nil, splitParts(ps, 2, true)...)
	seen := 0
	u.Each(func(Posting) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("Each visited %d postings after early stop, want 10", seen)
	}
}

func TestTombstonesCopyOnWrite(t *testing.T) {
	var t0 *Tombstones
	if t0.Dead(1) || t0.Len() != 0 {
		t.Fatal("nil Tombstones not an empty set")
	}
	t1 := t0.WithDead(1, 2)
	t2 := t1.WithDead(2)
	if t2 != t1 {
		t.Fatal("adding an existing id should return the receiver")
	}
	t3 := t1.WithDead(3)
	if t1.Dead(3) {
		t.Fatal("WithDead mutated its receiver")
	}
	if !t3.Dead(1) || !t3.Dead(3) || t3.Len() != 3 {
		t.Fatalf("t3 = %v, want {1,2,3}", t3.IDs())
	}
}

// FuzzMemtableMerge drives the memtable/segment merge path with arbitrary
// posting streams, part counts, tombstone sets and seek targets: the
// merged cursor must yield exactly the sorted input minus tombstoned
// documents, in order, under iteration, seeking and ranging alike.
func FuzzMemtableMerge(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint32(0), uint16(0), uint16(0))
	f.Add([]byte{1, 2, 3, 4, 200, 201, 202}, uint8(3), uint32(0b1010), uint16(2), uint16(1))
	f.Add([]byte{255, 254, 0, 0, 0, 7, 9}, uint8(5), uint32(1<<31), uint16(9), uint16(300))

	f.Fuzz(func(t *testing.T, data []byte, nParts uint8, tombMask uint32, seekDoc, seekPos uint16) {
		if len(data) > 1<<12 {
			return
		}
		// Decode a strictly (Doc, Pos)-increasing stream: byte high bits
		// advance the document, low bits advance the position. Strict
		// position increase keeps the merge order unambiguous.
		var ps []Posting
		doc, pos := storage.DocID(0), uint32(0)
		for _, b := range data {
			if d := storage.DocID(b >> 5); d > 0 {
				doc += d
				pos = 0
			}
			pos += uint32(b&31) + 1
			ps = append(ps, Posting{Doc: doc, Node: int32(b % 7), Pos: pos, Offset: uint32(b % 11)})
		}
		tomb := NewTombstones()
		for d := storage.DocID(0); d <= doc; d++ {
			if tombMask>>(uint(d)%32)&1 == 1 {
				tomb = tomb.WithDead(d)
			}
		}
		k := int(nParts%6) + 1
		u := Union(tomb, splitParts(ps, k, true)...)
		want := filterDead(ps, tomb)

		got := drain(u.Cursor())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merged drain: %d postings, want %d", len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Less(got[i-1]) {
				t.Fatalf("merged output out of order at %d", i)
			}
		}
		if u.Len() < len(want) {
			t.Fatalf("Len() = %d below live posting count %d", u.Len(), len(want))
		}

		// A fresh-cursor seek must land exactly where a linear scan would.
		target := Posting{Doc: storage.DocID(seekDoc % 64), Pos: uint32(seekPos)}
		c := u.Cursor()
		c.SeekPos(target.Doc, target.Pos)
		wantIdx := sort.Search(len(want), func(i int) bool {
			p := want[i]
			return p.Doc > target.Doc || (p.Doc == target.Doc && p.Pos >= target.Pos)
		})
		if wantIdx == len(want) {
			if c.Valid() {
				t.Fatalf("seek past end valid at %+v", c.Cur())
			}
		} else if !c.Valid() || c.Cur() != want[wantIdx] {
			t.Fatalf("seek (%d,%d) landed wrong: want %+v", target.Doc, target.Pos, want[wantIdx])
		}
		// Remaining never under-reports.
		if c.Valid() && c.Remaining() < len(want)-wantIdx {
			t.Fatalf("Remaining() = %d below live remainder %d", c.Remaining(), len(want)-wantIdx)
		}

		// Range by document window agrees with the oracle.
		lo, hi := storage.DocID(seekDoc%32), storage.DocID(seekDoc%32)+storage.DocID(seekPos%8)
		wantRange := []Posting{}
		for _, p := range want {
			if p.Doc >= lo && p.Doc < hi {
				wantRange = append(wantRange, p)
			}
		}
		gotRange := append([]Posting{}, u.Range(lo, hi).Materialize()...)
		if !reflect.DeepEqual(gotRange, wantRange) {
			t.Fatalf("Range(%d,%d): %d postings, want %d", lo, hi, len(gotRange), len(wantRange))
		}
	})
}

// Package postings implements the block-compressed posting-list storage
// the inverted index (internal/index) is built on.
//
// A posting list is immutable once encoded: postings are grouped into
// fixed-size blocks of BlockSize entries, each block delta+varint encoded
// as four columnar streams (document gaps, node deltas, position gaps,
// offsets) so that document-only scans never pay for full decode. A
// per-block skip entry carries the block's document range, last position,
// byte offset and cumulative posting count — enough to seek without
// touching the payload — plus the block's maximum per-document occurrence
// count, the block-max statistic top-k pruning consults to skip blocks
// that cannot beat the current k-th score.
//
// Cursors decode lazily, one block at a time, and preserve the exact
// Valid/Cur/Advance/Remaining/SeekPos contract of the uncompressed
// cursor, so the merge-based access methods of internal/exec run
// unchanged over either representation.
package postings

import "repro/internal/storage"

// Posting is one occurrence of a term.
type Posting struct {
	Doc    storage.DocID
	Node   int32  // ordinal of the containing text node
	Pos    uint32 // absolute word position (region-encoding key space)
	Offset uint32 // word offset within the text node
}

// Less orders postings by (Doc, Pos) — document order.
func (p Posting) Less(q Posting) bool {
	if p.Doc != q.Doc {
		return p.Doc < q.Doc
	}
	return p.Pos < q.Pos
}

// BlockSize is the number of postings per encoded block. 128 keeps the
// skip table small (one entry per 2 KiB of raw postings) while a full
// block decode stays within one cache-friendly burst.
const BlockSize = 128

// rawPostingBytes is the in-memory footprint of one uncompressed Posting,
// the baseline compression ratios are reported against.
const rawPostingBytes = 16

// skipEntryBytes is the in-memory footprint of one Skip entry.
const skipEntryBytes = 24

// Skip is the per-block skip-table entry: everything a seek or a top-k
// bound needs to know about a block without decoding it.
type Skip struct {
	// FirstDoc and LastDoc bound the documents in the block (inclusive).
	FirstDoc storage.DocID
	LastDoc  storage.DocID
	// LastPos is the position of the block's final posting, so a
	// (doc, pos) seek can decide block membership exactly.
	LastPos uint32
	// MaxFreq is the maximum number of postings any single document
	// contributes within this block — the block-max statistic. A document
	// spanning several blocks is bounded by the sum of their MaxFreqs.
	MaxFreq uint32
	// Off is the byte offset of the block's payload in the list buffer.
	Off uint32
	// End is the cumulative posting count through this block, so binary
	// search maps absolute posting indexes to blocks.
	End uint32
}

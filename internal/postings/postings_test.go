package postings

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/storage"
)

// genList produces a sorted multi-document posting list with clustered
// positions, the shape the tokenizer emits: several postings per document,
// consecutive node ordinals, monotonically increasing positions.
func genList(r *rand.Rand, n int) []Posting {
	ps := make([]Posting, 0, n)
	doc := storage.DocID(r.Intn(3))
	for len(ps) < n {
		node := int32(r.Intn(4))
		pos := uint32(r.Intn(50))
		run := 1 + r.Intn(6)
		for k := 0; k < run && len(ps) < n; k++ {
			ps = append(ps, Posting{
				Doc:    doc,
				Node:   node,
				Pos:    pos,
				Offset: uint32(r.Intn(200)),
			})
			pos += 1 + uint32(r.Intn(9))
			if r.Intn(3) == 0 {
				node += int32(1 + r.Intn(2))
			}
		}
		doc += storage.DocID(1 + r.Intn(4))
	}
	return ps
}

func roundtrip(t *testing.T, ps []Posting) *BlockList {
	t.Helper()
	bl := Encode(ps)
	got := bl.All().Materialize()
	if len(got) == 0 && len(ps) == 0 {
		return bl
	}
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("roundtrip mismatch: %d postings in, %d out", len(ps), len(got))
	}
	return bl
}

func TestEncodeRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, BlockSize - 1, BlockSize, BlockSize + 1, 3*BlockSize + 17, 1000} {
		ps := genList(r, n)
		bl := roundtrip(t, ps)
		if bl.Len() != n {
			t.Errorf("n=%d: Len() = %d", n, bl.Len())
		}
		wantBlocks := (n + BlockSize - 1) / BlockSize
		if bl.NumBlocks() != wantBlocks {
			t.Errorf("n=%d: NumBlocks() = %d, want %d", n, bl.NumBlocks(), wantBlocks)
		}
		if got, want := bl.NodeFreq(), nodeFreqOf(ps); got != want {
			t.Errorf("n=%d: NodeFreq() = %d, want %d", n, got, want)
		}
		if bl.RawBytes() != n*rawPostingBytes {
			t.Errorf("n=%d: RawBytes() = %d", n, bl.RawBytes())
		}
	}
}

func TestEncodeSingleDocManyBlocks(t *testing.T) {
	// One document spanning several blocks: doc gaps stay zero across
	// block boundaries and positions keep increasing.
	n := 3*BlockSize + 5
	ps := make([]Posting, n)
	for i := range ps {
		ps[i] = Posting{Doc: 7, Node: int32(i / 40), Pos: uint32(i * 2), Offset: uint32(i % 13)}
	}
	bl := roundtrip(t, ps)
	for i, sk := range bl.Skips() {
		if sk.FirstDoc != 7 || sk.LastDoc != 7 {
			t.Fatalf("block %d doc range [%d, %d], want [7, 7]", i, sk.FirstDoc, sk.LastDoc)
		}
	}
}

func TestEncodePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode on unsorted input did not panic")
		}
	}()
	Encode([]Posting{{Doc: 2, Pos: 1}, {Doc: 1, Pos: 9}})
}

func TestSnapshotRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ps := genList(r, 4*BlockSize+9)
	bl := Encode(ps)

	// Reconstitute from the persisted representation with zeroed MaxFreq:
	// NewBlockList must recompute it rather than trust the table.
	skips := make([]Skip, len(bl.Skips()))
	copy(skips, bl.Skips())
	for i := range skips {
		skips[i].MaxFreq = 0
	}
	got, err := NewBlockList(bl.Len(), skips, bl.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.All().Materialize(), ps) {
		t.Fatal("snapshot roundtrip decoded different postings")
	}
	if got.NodeFreq() != bl.NodeFreq() {
		t.Errorf("NodeFreq %d, want %d", got.NodeFreq(), bl.NodeFreq())
	}
	for i := range skips {
		if got.Skips()[i].MaxFreq != bl.Skips()[i].MaxFreq {
			t.Errorf("block %d MaxFreq %d, want %d", i, got.Skips()[i].MaxFreq, bl.Skips()[i].MaxFreq)
		}
	}
}

func TestNewBlockListRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ps := genList(r, 2*BlockSize+3)
	bl := Encode(ps)
	n, skips, buf := bl.Len(), bl.Skips(), bl.Payload()

	clone := func() (int, []Skip, []byte) {
		s := make([]Skip, len(skips))
		copy(s, skips)
		b := make([]byte, len(buf))
		copy(b, buf)
		return n, s, b
	}

	cases := []struct {
		name   string
		mutate func(n int, s []Skip, b []byte) (int, []Skip, []byte)
	}{
		{"truncated payload", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			return n, s, b[:len(b)-1]
		}},
		{"empty payload", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			return n, s, nil
		}},
		{"count too big", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[0].End = BlockSize + 1
			return n, s, b
		}},
		{"count zero", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[1].End = s[0].End
			return n, s, b
		}},
		{"skip undercount", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			return n + 1, s, b
		}},
		{"first offset nonzero", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[0].Off = 1
			return n, s, b
		}},
		{"offsets not increasing", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[1].Off = 0
			return n, s, b
		}},
		{"offset beyond payload", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[1].Off = uint32(len(b)) + 10
			return n, s, b
		}},
		{"skips without postings", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			return 0, s, b
		}},
		{"postings without skips", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			return n, nil, nil
		}},
		{"wrong last doc", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[0].LastDoc += 5
			return n, s, b
		}},
		{"wrong first doc", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[0].FirstDoc += 1
			return n, s, b
		}},
		{"wrong last pos", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[0].LastPos += 1
			return n, s, b
		}},
		{"negative first doc", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			s[0].FirstDoc = -1
			return n, s, b
		}},
		{"flipped payload byte", func(n int, s []Skip, b []byte) (int, []Skip, []byte) {
			b[len(b)/2] ^= 0xFF
			return n, s, b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cn, cs, cb := tc.mutate(clone())
			got, err := NewBlockList(cn, cs, cb)
			if err == nil {
				// A flipped byte can, rarely, still decode to a valid list;
				// everything structural must fail hard.
				if tc.name == "flipped payload byte" && reflect.DeepEqual(got.All().Materialize(), ps) {
					t.Skip("bit flip produced an equivalent encoding")
				}
				t.Fatalf("NewBlockList accepted %s", tc.name)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v is not ErrCorrupt", err)
			}
		})
	}
}

// TestCursorMatchesRaw drives a block-backed cursor and a raw cursor with
// an identical randomized sequence of Advance and SeekPos operations and
// requires byte-identical observations throughout.
func TestCursorMatchesRaw(t *testing.T) {
	for seed := int64(10); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(4 * BlockSize)
		ps := genList(r, n)
		bl := Encode(ps)
		cb := bl.All().Cursor()
		cr := NewCursor(ps)
		maxDoc := storage.DocID(1)
		if n > 0 {
			maxDoc = ps[n-1].Doc + 2
		}
		for step := 0; step < 400; step++ {
			if cb.Valid() != cr.Valid() {
				t.Fatalf("seed %d step %d: Valid %v vs raw %v", seed, step, cb.Valid(), cr.Valid())
			}
			if cb.Remaining() != cr.Remaining() {
				t.Fatalf("seed %d step %d: Remaining %d vs raw %d", seed, step, cb.Remaining(), cr.Remaining())
			}
			if !cr.Valid() {
				// Past the end: further seeks and advances must stay there.
				cb.SeekPos(maxDoc, 0)
				cr.SeekPos(maxDoc, 0)
				if cb.Valid() || cr.Valid() {
					t.Fatalf("seed %d step %d: cursor revived after end", seed, step)
				}
				break
			}
			if got, want := cb.Cur(), cr.Cur(); got != want {
				t.Fatalf("seed %d step %d: Cur %+v vs raw %+v", seed, step, got, want)
			}
			if r.Intn(3) == 0 {
				d := storage.DocID(r.Intn(int(maxDoc) + 1))
				p := uint32(r.Intn(600))
				cb.SeekPos(d, p)
				cr.SeekPos(d, p)
			} else {
				cb.Advance()
				cr.Advance()
			}
		}
	}
}

func TestCursorEmptyList(t *testing.T) {
	for _, c := range []*Cursor{Encode(nil).All().Cursor(), NewCursor(nil)} {
		if c.Valid() {
			t.Fatal("empty cursor is valid")
		}
		if c.Remaining() != 0 {
			t.Fatalf("empty cursor Remaining = %d", c.Remaining())
		}
		c.SeekPos(100, 5)
		c.Advance()
		if c.Valid() {
			t.Fatal("empty cursor became valid")
		}
	}
}

func TestCursorSeekPastEnd(t *testing.T) {
	ps := []Posting{{Doc: 1, Pos: 3}, {Doc: 1, Pos: 9}, {Doc: 4, Pos: 0}}
	c := Encode(ps).All().Cursor()
	c.SeekPos(4, 1) // beyond the last posting of the last doc
	if c.Valid() {
		t.Fatalf("cursor valid after seek past end: %+v", c.Cur())
	}
	c.SeekPos(0, 0) // cursors never move backward
	if c.Valid() {
		t.Fatal("cursor moved backward")
	}
}

// TestRangeMatchesRaw cross-checks windowed views (Range) against the raw
// slice for every document boundary, including empty windows.
func TestRangeMatchesRaw(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ps := genList(r, 3*BlockSize+21)
	bl := Encode(ps)
	all := bl.All()
	raw := NewRawList(ps)
	maxDoc := ps[len(ps)-1].Doc + 3
	for lo := storage.DocID(0); lo <= maxDoc; lo++ {
		for _, span := range []storage.DocID{0, 1, 2, 7, maxDoc} {
			hi := lo + span
			got := all.Range(lo, hi)
			want := raw.Range(lo, hi).Materialize()
			if got.Len() != len(want) {
				t.Fatalf("Range(%d, %d): Len %d, want %d", lo, hi, got.Len(), len(want))
			}
			gm := got.Materialize()
			if len(want) == 0 {
				if len(gm) != 0 {
					t.Fatalf("Range(%d, %d): non-empty materialization of empty window", lo, hi)
				}
				continue
			}
			if !reflect.DeepEqual(gm, want) {
				t.Fatalf("Range(%d, %d): materialized mismatch", lo, hi)
			}
			// A windowed cursor must stream exactly the window.
			var streamed []Posting
			for c := got.Cursor(); c.Valid(); c.Advance() {
				streamed = append(streamed, c.Cur())
			}
			if !reflect.DeepEqual(streamed, want) {
				t.Fatalf("Range(%d, %d): cursor mismatch", lo, hi)
			}
		}
	}
}

func TestWindowedCursorSeekStaysClamped(t *testing.T) {
	// Seeking a narrowed view past its window must park at the window end,
	// not run into later postings of the underlying list.
	r := rand.New(rand.NewSource(5))
	ps := genList(r, 2*BlockSize+40)
	bl := Encode(ps)
	mid := ps[len(ps)/2].Doc
	w := bl.All().Range(0, mid)
	c := w.Cursor()
	c.SeekPos(ps[len(ps)-1].Doc+1, 0)
	if c.Valid() {
		t.Fatalf("windowed cursor escaped its window: %+v", c.Cur())
	}
}

func TestBlocksPrecondition(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ps := genList(r, 2*BlockSize)
	bl := Encode(ps)
	if bl.All().Blocks() != bl {
		t.Fatal("full view did not expose its BlockList")
	}
	if NewRawList(ps).Blocks() != nil {
		t.Fatal("raw list exposed a BlockList")
	}
	sub := bl.All().Range(ps[0].Doc, ps[len(ps)-1].Doc) // trims at least the tail
	if sub.Len() != bl.Len() && sub.Blocks() != nil {
		t.Fatal("partial window exposed a BlockList")
	}
}

// TestDocCountsMatchesRaw checks the doc-stream-only counting scan against
// a naive count over the raw slice for every window.
func TestDocCountsMatchesRaw(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ps := genList(r, 3*BlockSize+11)
	bl := Encode(ps)
	maxDoc := ps[len(ps)-1].Doc + 2
	for lo := storage.DocID(0); lo <= maxDoc; lo++ {
		for _, span := range []storage.DocID{0, 1, 3, maxDoc} {
			hi := lo + span
			want := map[storage.DocID]int{}
			for _, p := range ps {
				if p.Doc >= lo && p.Doc < hi {
					want[p.Doc]++
				}
			}
			var gotDocs []storage.DocID
			got := map[storage.DocID]int{}
			err := bl.DocCounts(lo, hi, func(d storage.DocID, n int) error {
				gotDocs = append(gotDocs, d)
				got[d] = n
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("DocCounts(%d, %d) = %v, want %v", lo, hi, got, want)
			}
			for i := 1; i < len(gotDocs); i++ {
				if gotDocs[i] <= gotDocs[i-1] {
					t.Fatalf("DocCounts(%d, %d) out of order: %v", lo, hi, gotDocs)
				}
			}
		}
	}
}

func TestDocCountsAbortsOnError(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	ps := genList(r, BlockSize)
	bl := Encode(ps)
	sentinel := errors.New("stop")
	calls := 0
	err := bl.DocCounts(0, ps[len(ps)-1].Doc+1, func(storage.DocID, int) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times after error", calls)
	}
}

func TestMaxFreqIsPerDocumentMaximum(t *testing.T) {
	// 5 postings in doc 1, 2 in doc 2 → one block with MaxFreq 5.
	ps := []Posting{
		{Doc: 1, Pos: 0}, {Doc: 1, Pos: 1}, {Doc: 1, Pos: 2}, {Doc: 1, Pos: 3}, {Doc: 1, Pos: 4},
		{Doc: 2, Pos: 0}, {Doc: 2, Pos: 1},
	}
	bl := Encode(ps)
	if got := bl.Skips()[0].MaxFreq; got != 5 {
		t.Fatalf("MaxFreq = %d, want 5", got)
	}
}

func TestCompressionRatio(t *testing.T) {
	// The acceptance bar: a realistic clustered list must compress at
	// least 2x against the 16-byte raw representation.
	r := rand.New(rand.NewSource(9))
	ps := genList(r, 20*BlockSize)
	bl := Encode(ps)
	enc := bl.PayloadBytes() + bl.SkipBytes()
	if ratio := float64(bl.RawBytes()) / float64(enc); ratio < 2 {
		t.Fatalf("compression ratio %.2f < 2 (raw %d, encoded %d)", ratio, bl.RawBytes(), enc)
	}
}

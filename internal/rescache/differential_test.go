package rescache_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rescache"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/xmltree"
	"repro/internal/xq"
)

// The differential suite proves the tentpole property end to end: with
// the result cache enabled, every cached query family returns results
// byte-identical to an uncached oracle database driven through the exact
// same mutation history, at every generation — after bulk build, adds,
// updates, deletes, and compaction. Each family is issued twice per
// stage on the cached database so the second call is answered from the
// cache (asserted via the hit counter), which is the path that would
// expose a stale or corrupted entry.

// backend is the common surface of db.DB and shard.DB the suite drives.
type backend interface {
	LoadString(name, src string) error
	Warm()
	Add(name, src string) error
	Update(name, src string) error
	Delete(name string) error
	CompactNow()
	WaitCompaction()
	TermSearchContext(ctx context.Context, terms []string, opts db.TermSearchOptions) ([]exec.ScoredNode, error)
	PhraseSearchContext(ctx context.Context, phrase []string) ([]exec.PhraseMatch, error)
	QueryContext(ctx context.Context, src string) ([]xq.Result, error)
	ResultCache() *rescache.Cache
}

func diffDocName(i int) string { return fmt.Sprintf("doc%06d.xml", i) }

// diffDocSrc plants a guaranteed phrase ("alpha beta") in every document
// and spreads terms over residues so queries hit overlapping subsets.
func diffDocSrc(i int) string {
	return fmt.Sprintf("<d><t>common w%d q%d</t><s>alpha beta w%d</s></d>", i%97, i%13, i%7)
}

// diffQuery exercises the full pipeline (Score, Pick, Sortby, Threshold)
// against one document, the per-document-routed family the shard facade
// supports. Doc 3 is never updated or deleted by the stages below, so
// the query stays valid at every generation.
func diffQuery(name string) string {
	return fmt.Sprintf(`
		For $a in document(%q)//d/descendant-or-self::*
		Score $a using ScoreFoo($a, {"alpha beta"}, {"common"})
		Pick $a using PickFoo($a, 0.1)
		Sortby(score)
		Threshold $a/@score stop after 10`, name)
}

// qsig projects an xq.Result into a comparable value so results from two
// independent database instances can be compared byte-for-byte (the Node
// pointers differ across instances; their serialized form must not).
type qsig struct {
	Doc         storage.DocID
	Ord         int32
	Score       float64
	Sim         float64
	Node, Right string
}

func qsigs(rs []xq.Result) []qsig {
	xs := func(n *xmltree.Node) string {
		if n == nil {
			return ""
		}
		return xmltree.XMLString(n)
	}
	out := make([]qsig, len(rs))
	for i, r := range rs {
		out[i] = qsig{Doc: r.Doc, Ord: r.Ord, Score: r.Score, Sim: r.Sim, Node: xs(r.Node), Right: xs(r.Right)}
	}
	return out
}

// diffFamilies returns every query family the cache covers, each
// producing a cross-instance-comparable projection.
func diffFamilies() []struct {
	name string
	run  func(ctx context.Context, b backend) (any, error)
} {
	return []struct {
		name string
		run  func(ctx context.Context, b backend) (any, error)
	}{
		{"terms-simple", func(ctx context.Context, b backend) (any, error) {
			return b.TermSearchContext(ctx, []string{"common", "w3"}, db.TermSearchOptions{})
		}},
		{"terms-complex-topk", func(ctx context.Context, b backend) (any, error) {
			return b.TermSearchContext(ctx, []string{"common", "alpha"}, db.TermSearchOptions{Complex: true, TopK: 10})
		}},
		{"terms-weights-minscore", func(ctx context.Context, b backend) (any, error) {
			return b.TermSearchContext(ctx, []string{"w3", "q7"}, db.TermSearchOptions{
				TopK: 25, MinScore: 0.0001, Weights: []float64{2, 0.5},
			})
		}},
		{"phrase", func(ctx context.Context, b backend) (any, error) {
			return b.PhraseSearchContext(ctx, []string{"alpha", "beta"})
		}},
		{"query", func(ctx context.Context, b backend) (any, error) {
			rs, err := b.QueryContext(ctx, diffQuery(diffDocName(3)))
			if err != nil {
				return nil, err
			}
			return qsigs(rs), nil
		}},
	}
}

// diffStages is the generation ladder both databases climb in lockstep.
func diffStages() []struct {
	name  string
	apply func(t *testing.T, b backend)
} {
	must := func(t *testing.T, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	return []struct {
		name  string
		apply func(t *testing.T, b backend)
	}{
		{"build", func(t *testing.T, b backend) {
			for i := 0; i < 30; i++ {
				must(t, b.LoadString(diffDocName(i), diffDocSrc(i)))
			}
			b.Warm()
		}},
		{"adds", func(t *testing.T, b backend) {
			for i := 30; i < 40; i++ {
				must(t, b.Add(diffDocName(i), diffDocSrc(i)))
			}
		}},
		{"updates", func(t *testing.T, b backend) {
			for i := 5; i < 10; i++ {
				must(t, b.Update(diffDocName(i), diffDocSrc(i+1000)))
			}
		}},
		{"deletes", func(t *testing.T, b backend) {
			for i := 10; i < 15; i++ {
				must(t, b.Delete(diffDocName(i)))
			}
		}},
		{"compaction", func(t *testing.T, b backend) {
			b.CompactNow()
			b.WaitCompaction()
		}},
	}
}

// runDifferential climbs the generation ladder on a cached backend and
// its uncached oracle twin, requiring byte-identical results from the
// computed (first) and cached (second) call of every family at every
// stage, and that the cache genuinely served the repeats.
func runDifferential(t *testing.T, cached, oracle backend) {
	t.Helper()
	ctx := context.Background()
	c := cached.ResultCache()
	if c == nil {
		t.Fatal("cached backend has no result cache")
	}
	if oracle.ResultCache() != nil {
		t.Fatal("oracle backend unexpectedly has a result cache")
	}
	fams := diffFamilies()
	for _, st := range diffStages() {
		st.apply(t, cached)
		st.apply(t, oracle)
		for _, fam := range fams {
			want, err := fam.run(ctx, oracle)
			if err != nil {
				t.Fatalf("%s/%s: oracle: %v", st.name, fam.name, err)
			}
			if reflect.ValueOf(want).Len() == 0 {
				t.Fatalf("%s/%s: oracle returned no results; family is vacuous", st.name, fam.name)
			}
			before := c.Stats()
			got1, err := fam.run(ctx, cached)
			if err != nil {
				t.Fatalf("%s/%s: cached (compute): %v", st.name, fam.name, err)
			}
			got2, err := fam.run(ctx, cached)
			if err != nil {
				t.Fatalf("%s/%s: cached (hit): %v", st.name, fam.name, err)
			}
			after := c.Stats()
			if after.Hits <= before.Hits {
				t.Errorf("%s/%s: repeat call not served from cache (hits %d -> %d)",
					st.name, fam.name, before.Hits, after.Hits)
			}
			if !reflect.DeepEqual(got1, want) {
				t.Errorf("%s/%s: computed result diverges from oracle:\n got  %v\n want %v",
					st.name, fam.name, got1, want)
			}
			if !reflect.DeepEqual(got2, want) {
				t.Errorf("%s/%s: cached result diverges from oracle:\n got  %v\n want %v",
					st.name, fam.name, got2, want)
			}
		}
	}
	if st := c.Stats(); st.GenMiss != 0 {
		t.Errorf("stale-generation lookups served a miss path %d times; keys must make this impossible", st.GenMiss)
	}
}

func TestDifferentialMonolithic(t *testing.T) {
	cached := db.New(db.Options{CacheBytes: 1 << 20, Metrics: metrics.NewRegistry()})
	defer cached.Close()
	oracle := db.New(db.Options{Metrics: metrics.NewRegistry()})
	runDifferential(t, cached, oracle)
}

func TestDifferentialSharded(t *testing.T) {
	cached := shard.New(shard.Options{Shards: 3, CacheBytes: 1 << 20, Metrics: metrics.NewRegistry()})
	defer cached.Close()
	oracle := shard.New(shard.Options{Shards: 3, Metrics: metrics.NewRegistry()})
	runDifferential(t, cached, oracle)
}

// TestDifferentialShardedVsMonolithic closes the triangle on a static
// corpus: the cached sharded facade must agree with an uncached
// monolithic oracle (global-id rewriting happens before results enter
// the cache, so cached entries must already be in facade coordinates).
// Static only — after updates the facade's name table reuses freed
// global-id slots while the monolithic store allocates fresh ids, so
// cross-topology id equality is only guaranteed for identical load
// histories (same scope as the shard equivalence suite).
func TestDifferentialShardedVsMonolithic(t *testing.T) {
	cached := shard.New(shard.Options{Shards: 1, CacheBytes: 1 << 20, Metrics: metrics.NewRegistry()})
	defer cached.Close()
	oracle := db.New(db.Options{Metrics: metrics.NewRegistry()})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		for _, b := range []backend{cached, oracle} {
			if err := b.LoadString(diffDocName(i), diffDocSrc(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cached.Warm()
	oracle.Warm()
	c := cached.ResultCache()
	for _, fam := range diffFamilies() {
		want, err := fam.run(ctx, oracle)
		if err != nil {
			t.Fatalf("%s: oracle: %v", fam.name, err)
		}
		before := c.Stats()
		got1, err := fam.run(ctx, cached)
		if err != nil {
			t.Fatalf("%s: cached (compute): %v", fam.name, err)
		}
		got2, err := fam.run(ctx, cached)
		if err != nil {
			t.Fatalf("%s: cached (hit): %v", fam.name, err)
		}
		if after := c.Stats(); after.Hits <= before.Hits {
			t.Errorf("%s: repeat call not served from cache", fam.name)
		}
		if !reflect.DeepEqual(got1, want) || !reflect.DeepEqual(got2, want) {
			t.Errorf("%s: sharded cached results diverge from monolithic oracle", fam.name)
		}
	}
}

// TestDifferentialIngestWhileQuerying is the concurrent variant, modeled
// on db.TestIngestWhileQueryingMatchesBuild: readers hammer the cached
// database with a fixed set of repeat queries (so the cache is serving
// hits continuously) while a writer streams in 100k documents. Every
// result a reader observes must be error-free; after the dust settles
// the cached database must agree with a scratch bulk build, and the
// stale-generation counter must be zero — no reader ever saw a result
// from a dead generation.
func TestDifferentialIngestWhileQuerying(t *testing.T) {
	nDocs := 100_000
	if testing.Short() {
		nDocs = 2_000
	}
	cached := db.New(db.Options{CacheBytes: 8 << 20, Metrics: metrics.NewRegistry()})
	defer cached.Close()
	// Seed one document and warm so the live index (and with it the
	// cache's generation token) exists before readers start.
	if err := cached.LoadString(diffDocName(0), diffDocSrc(0)); err != nil {
		t.Fatal(err)
	}
	cached.Warm()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readerErr := make(chan error, 4)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch (i + r) % 3 {
				case 0:
					_, err = cached.TermSearchContext(ctx, []string{"w3", "q7"}, db.TermSearchOptions{TopK: 25})
				case 1:
					_, err = cached.TermSearchContext(ctx, []string{"common"}, db.TermSearchOptions{Complex: true, TopK: 10})
				case 2:
					_, err = cached.PhraseSearchContext(ctx, []string{"alpha", "beta"})
				}
				if err != nil {
					select {
					case readerErr <- fmt.Errorf("reader %d iter %d: %w", r, i, err):
					default:
					}
					return
				}
			}
		}(r)
	}
	for i := 1; i < nDocs; i++ {
		if err := cached.Add(diffDocName(i), diffDocSrc(i)); err != nil {
			close(stop)
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
	cached.WaitCompaction()

	scratch := db.New(db.Options{Metrics: metrics.NewRegistry()})
	for i := 0; i < nDocs; i++ {
		if err := scratch.LoadString(diffDocName(i), diffDocSrc(i)); err != nil {
			t.Fatal(err)
		}
	}
	scratch.Warm()

	probes := []struct {
		terms []string
		opts  db.TermSearchOptions
	}{
		{[]string{"w3", "q7"}, db.TermSearchOptions{TopK: 25}},
		{[]string{"common"}, db.TermSearchOptions{Complex: true, TopK: 10}},
	}
	for _, p := range probes {
		want, err := scratch.TermSearchContext(ctx, p.terms, p.opts)
		if err != nil {
			t.Fatal(err)
		}
		// Twice: once computed at the final generation, once from cache.
		for pass := 0; pass < 2; pass++ {
			got, err := cached.TermSearchContext(ctx, p.terms, p.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("terms %v pass %d: %d results diverge from scratch build (%d)", p.terms, pass, len(got), len(want))
			}
		}
	}
	wantPh, err := scratch.PhraseSearchContext(ctx, []string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	gotPh, err := cached.PhraseSearchContext(ctx, []string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPh, wantPh) {
		t.Fatalf("phrase results diverge from scratch build: %d vs %d", len(gotPh), len(wantPh))
	}

	st := cached.ResultCache().Stats()
	if st.GenMiss != 0 {
		t.Errorf("readers touched %d dead-generation entries; generation keying failed", st.GenMiss)
	}
	if st.Hits == 0 {
		t.Error("no cache hits during concurrent ingest; the test exercised nothing")
	}
	t.Logf("ingest-while-querying cache stats: %+v", st)
}
